// Unit tests for the work-stealing layer (support/sched/): Chase-Lev deque
// semantics (owner LIFO, thief FIFO, growth, concurrent stealing) and the
// WorkStealingScheduler (task completion, spawn, stats, steal policies,
// exception propagation). The TSan CI tier runs these too — the deque's
// memory orders are exactly what it exists to check.
//
// Flakiness audit notes: every assertion here is schedule-independent by
// design — worker counts are explicit (run() honours opts.threads without
// clamping to hardware threads), the random steal policy draws from a
// per-worker deterministically seeded RNG, and the concurrent-deque test
// checks a checksum rather than any particular interleaving. Keep it that
// way: no assertion may depend on which worker ran a task or how long a
// task took.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "support/error.hpp"
#include "support/sched/chase_lev.hpp"
#include "support/sched/scheduler.hpp"

namespace apgre {
namespace {

TEST(ChaseLevDeque, OwnerPopsLifo) {
  ChaseLevDeque<int> d;
  d.push(1);
  d.push(2);
  d.push(3);
  int v = 0;
  EXPECT_TRUE(d.pop(v));
  EXPECT_EQ(v, 3);
  EXPECT_TRUE(d.pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(d.pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_FALSE(d.pop(v));
}

TEST(ChaseLevDeque, ThiefStealsFifo) {
  ChaseLevDeque<int> d;
  d.push(1);
  d.push(2);
  d.push(3);
  int v = 0;
  EXPECT_TRUE(d.steal(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(d.steal(v));
  EXPECT_EQ(v, 2);
  // Owner takes the last element from the other end.
  EXPECT_TRUE(d.pop(v));
  EXPECT_EQ(v, 3);
  EXPECT_FALSE(d.steal(v));
  EXPECT_TRUE(d.empty());
}

TEST(ChaseLevDeque, GrowsPastInitialCapacity) {
  ChaseLevDeque<int> d;
  constexpr int kCount = 10000;  // far past the initial ring
  for (int i = 0; i < kCount; ++i) d.push(i);
  EXPECT_EQ(d.size_estimate(), static_cast<std::size_t>(kCount));
  for (int i = kCount - 1; i >= 0; --i) {
    int v = -1;
    ASSERT_TRUE(d.pop(v));
    EXPECT_EQ(v, i);
  }
}

// Owner pushes and pops while several thieves hammer steal(): every element
// is consumed exactly once. The checksum (sum over consumed values) catches
// duplicated and lost elements alike.
TEST(ChaseLevDeque, ConcurrentStealsConsumeEachElementOnce) {
  constexpr int kItems = 20000;
  constexpr int kThieves = 3;
  ChaseLevDeque<int> d;
  std::atomic<long long> stolen_sum{0};
  std::atomic<int> stolen_count{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      int v = 0;
      while (!done.load(std::memory_order_acquire)) {
        if (d.steal(v)) {
          stolen_sum.fetch_add(v, std::memory_order_relaxed);
          stolen_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // Drain whatever is left after the owner stopped.
      while (d.steal(v)) {
        stolen_sum.fetch_add(v, std::memory_order_relaxed);
        stolen_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  long long own_sum = 0;
  int own_count = 0;
  int v = 0;
  for (int i = 1; i <= kItems; ++i) {
    d.push(i);
    if (i % 3 == 0 && d.pop(v)) {
      own_sum += v;
      ++own_count;
    }
  }
  while (d.pop(v)) {
    own_sum += v;
    ++own_count;
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : thieves) t.join();

  const long long expected =
      static_cast<long long>(kItems) * (kItems + 1) / 2;
  EXPECT_EQ(own_count + stolen_count.load(), kItems);
  EXPECT_EQ(own_sum + stolen_sum.load(), expected);
  EXPECT_TRUE(d.empty());
}

TEST(StealPolicy, NamesRoundTrip) {
  EXPECT_EQ(steal_policy_from_name("random"), StealPolicy::kRandom);
  EXPECT_EQ(steal_policy_from_name("sequential"), StealPolicy::kSequential);
  EXPECT_EQ(steal_policy_name(StealPolicy::kRandom), "random");
  EXPECT_EQ(steal_policy_name(StealPolicy::kSequential), "sequential");
  EXPECT_THROW(steal_policy_from_name("bogus"), OptionError);
}

TEST(WorkStealingScheduler, RunsEveryTaskExactlyOnce) {
  for (int workers : {1, 2, 4}) {
    SchedulerOptions opts;
    opts.threads = workers;
    WorkStealingScheduler sched(opts);
    ASSERT_EQ(sched.num_workers(), workers);

    constexpr int kTasks = 64;
    std::vector<std::atomic<int>> hits(kTasks);
    std::vector<WorkStealingScheduler::Task> tasks;
    for (int i = 0; i < kTasks; ++i) {
      tasks.push_back([&hits, i](int worker) {
        EXPECT_GE(worker, 0);
        hits[static_cast<std::size_t>(i)].fetch_add(1,
                                                    std::memory_order_relaxed);
      });
    }
    const SchedulerStats stats = sched.run(std::move(tasks));
    EXPECT_EQ(stats.tasks, static_cast<std::uint64_t>(kTasks));
    EXPECT_EQ(stats.workers, workers);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(WorkStealingScheduler, SpawnedSubtasksComplete) {
  SchedulerOptions opts;
  opts.threads = 2;
  WorkStealingScheduler sched(opts);
  std::atomic<int> executed{0};
  std::vector<WorkStealingScheduler::Task> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back([&](int worker) {
      executed.fetch_add(1, std::memory_order_relaxed);
      for (int j = 0; j < 8; ++j) {
        sched.spawn(worker, [&](int) {
          executed.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  const SchedulerStats stats = sched.run(std::move(tasks));
  EXPECT_EQ(executed.load(), 4 + 4 * 8);
  EXPECT_EQ(stats.tasks, 4u + 4u * 8u);
}

TEST(WorkStealingScheduler, BothStealPoliciesDrainSkewedLoad) {
  for (StealPolicy policy : {StealPolicy::kRandom, StealPolicy::kSequential}) {
    SchedulerOptions opts;
    opts.threads = 4;
    opts.steal_policy = policy;
    WorkStealingScheduler sched(opts);
    std::atomic<long long> sum{0};
    std::vector<WorkStealingScheduler::Task> tasks;
    // Skew: one heavy task plus many light ones, so idle workers must steal.
    for (int i = 1; i <= 200; ++i) {
      tasks.push_back([&sum, i](int) {
        long long local = 0;
        const int spins = (i == 1) ? 200000 : 100;
        for (int j = 0; j < spins; ++j) local += j % 7;
        sum.fetch_add(i + local * 0, std::memory_order_relaxed);
      });
    }
    const SchedulerStats stats = sched.run(std::move(tasks));
    EXPECT_EQ(sum.load(), 200LL * 201 / 2) << steal_policy_name(policy);
    EXPECT_EQ(stats.tasks, 200u);
  }
}

TEST(WorkStealingScheduler, FirstTaskExceptionIsRethrownAfterDraining) {
  SchedulerOptions opts;
  opts.threads = 2;
  WorkStealingScheduler sched(opts);
  std::atomic<int> executed{0};
  std::vector<WorkStealingScheduler::Task> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back([&executed, i](int) {
      executed.fetch_add(1, std::memory_order_relaxed);
      if (i == 3) throw Error("task 3 failed");
    });
  }
  EXPECT_THROW(sched.run(std::move(tasks)), Error);
  // The failure does not cancel the rest of the run.
  EXPECT_EQ(executed.load(), 16);
}

TEST(WorkStealingScheduler, DefaultsFollowThreadBudget) {
  WorkStealingScheduler sched;  // threads = 0
  EXPECT_GE(sched.num_workers(), 1);
  const SchedulerStats stats = sched.run({});
  EXPECT_EQ(stats.tasks, 0u);
}

TEST(WorkStealingScheduler, SlotSpaceCoversExternalParticipants) {
  SchedulerOptions opts;
  opts.threads = 3;
  WorkStealingScheduler sched(opts);
  // Pool workers plus at least a few participant slots for caller threads.
  EXPECT_GE(sched.num_slots(), sched.num_workers());
}

// The reentrancy guarantee the service relies on: several caller threads
// drive run() on the SAME scheduler at once, each with its own task set and
// its own join group. Every task of every group executes exactly once and
// each run() returns its own group's count.
TEST(WorkStealingScheduler, ConcurrentRunsFromDifferentThreadsAllComplete) {
  SchedulerOptions opts;
  opts.threads = 2;
  WorkStealingScheduler sched(opts);

  constexpr int kCallers = 4;
  constexpr int kTasksPerCaller = 48;
  std::vector<std::atomic<int>> hits(kCallers * kTasksPerCaller);
  std::atomic<int> failures{0};

  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&sched, &hits, &failures, c] {
      std::vector<WorkStealingScheduler::Task> tasks;
      for (int i = 0; i < kTasksPerCaller; ++i) {
        const int id = c * kTasksPerCaller + i;
        tasks.push_back([&hits, id](int) {
          hits[static_cast<std::size_t>(id)].fetch_add(
              1, std::memory_order_relaxed);
        });
      }
      const SchedulerStats stats = sched.run(std::move(tasks));
      if (stats.tasks != static_cast<std::uint64_t>(kTasksPerCaller)) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : callers) t.join();

  EXPECT_EQ(failures.load(), 0);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// parallel_for from several external threads at once, each summing its own
// disjoint accumulator array: every index processed exactly once per caller.
TEST(WorkStealingScheduler, ConcurrentParallelForsCoverTheirRanges) {
  SchedulerOptions opts;
  opts.threads = 2;
  WorkStealingScheduler sched(opts);

  constexpr int kCallers = 3;
  constexpr std::int64_t kN = 10000;
  std::vector<std::vector<std::atomic<int>>> counts(kCallers);
  for (auto& c : counts) {
    c = std::vector<std::atomic<int>>(static_cast<std::size_t>(kN));
  }

  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&sched, &counts, c] {
      sched.parallel_for(0, kN, 64,
                         [&counts, c](std::int64_t lo, std::int64_t hi, int) {
                           for (std::int64_t i = lo; i < hi; ++i) {
                             counts[static_cast<std::size_t>(c)]
                                   [static_cast<std::size_t>(i)]
                                       .fetch_add(1, std::memory_order_relaxed);
                           }
                         });
    });
  }
  for (std::thread& t : callers) t.join();

  for (const auto& caller : counts) {
    for (const auto& h : caller) ASSERT_EQ(h.load(), 1);
  }
}

// A task body opens a nested parallel_for (the shape of APGRE's dedicated
// sub-graph tasks): the loop completes from inside the task, slot ids stay
// in [0, num_slots()), and every element is visited exactly once.
TEST(WorkStealingScheduler, NestedParallelForInsideTasksCompletes) {
  SchedulerOptions opts;
  opts.threads = 2;
  WorkStealingScheduler sched(opts);

  constexpr int kTasks = 6;
  constexpr std::int64_t kN = 4000;
  std::vector<std::vector<std::atomic<int>>> counts(kTasks);
  for (auto& c : counts) {
    c = std::vector<std::atomic<int>>(static_cast<std::size_t>(kN));
  }
  std::atomic<int> bad_slots{0};
  const int slots = sched.num_slots();

  std::vector<WorkStealingScheduler::Task> tasks;
  for (int t = 0; t < kTasks; ++t) {
    tasks.push_back([&sched, &counts, &bad_slots, slots, t](int) {
      sched.parallel_for(
          0, kN, 128,
          [&counts, &bad_slots, slots, t](std::int64_t lo, std::int64_t hi,
                                          int slot) {
            if (slot < 0 || slot >= slots) {
              bad_slots.fetch_add(1, std::memory_order_relaxed);
            }
            for (std::int64_t i = lo; i < hi; ++i) {
              counts[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)]
                  .fetch_add(1, std::memory_order_relaxed);
            }
          });
    });
  }
  sched.run(std::move(tasks));

  EXPECT_EQ(bad_slots.load(), 0);
  for (const auto& task : counts) {
    for (const auto& h : task) ASSERT_EQ(h.load(), 1);
  }
}

// With one worker everything runs inline on the caller: parallel_for chunks
// execute in ascending order, which is what makes 1-thread solver runs
// bitwise deterministic.
TEST(WorkStealingScheduler, SingleWorkerParallelForIsInlineAndOrdered) {
  SchedulerOptions opts;
  opts.threads = 1;
  WorkStealingScheduler sched(opts);
  std::vector<std::int64_t> visited;
  sched.parallel_for(0, 100, 16,
                     [&visited](std::int64_t lo, std::int64_t hi, int slot) {
                       EXPECT_EQ(slot, 0);
                       for (std::int64_t i = lo; i < hi; ++i) {
                         visited.push_back(i);
                       }
                     });
  ASSERT_EQ(visited.size(), 100u);
  for (std::int64_t i = 0; i < 100; ++i) EXPECT_EQ(visited[i], i);
}

}  // namespace
}  // namespace apgre
