// Golden-file tests of the apgre_serve binary (path injected by CMake,
// same popen pattern as cli_test.cpp): write a request transcript, pipe it
// through the server, and compare the response stream. Responses serialize
// key-sorted and without timing fields by default, so whole transcripts
// compare byte-exact; assertions fall back to substrings only where a
// value (e.g. an affected-source count) is an algorithm detail rather than
// part of the protocol contract. All golden runs use --workers 1 so batch
// sub-requests execute in a deterministic order.
#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "graph/update.hpp"

#ifndef APGRE_SERVE_PATH
#error "APGRE_SERVE_PATH must be defined by the build"
#endif

namespace apgre {
namespace {

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult run_serve(const std::string& args,
                        const std::string& stdin_path = "") {
  std::string command = std::string(APGRE_SERVE_PATH) + " " + args;
  command += stdin_path.empty() ? " < /dev/null" : " < " + stdin_path;
  command += " 2>&1";
  std::array<char, 4096> buffer{};
  CommandResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    transcript_path_ = ::testing::TempDir() + "/serve_requests_" +
                       std::to_string(static_cast<long>(getpid())) + ".jsonl";
  }

  void TearDown() override { std::remove(transcript_path_.c_str()); }

  /// Writes one request per line and runs the server over the file.
  CommandResult serve(const std::vector<std::string>& requests,
                      const std::string& args = "--workers 1") {
    std::ofstream out(transcript_path_);
    for (const std::string& line : requests) out << line << "\n";
    out.close();
    return run_serve(args, transcript_path_);
  }

  std::string transcript_path_;
};

// P4 path graph 0-1-2-3: serial BC is exactly [0, 4, 4, 0].
const char kRegisterPath[] =
    R"({"op":"register","graph":"p","edges":[[0,1],[1,2],[2,3]]})";

TEST_F(ServeTest, HelpExitsZero) {
  const CommandResult r = run_serve("--help");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("--capacity"), std::string::npos);
  EXPECT_NE(r.output.find("--workers"), std::string::npos);
}

TEST_F(ServeTest, UnknownFlagFails) {
  const CommandResult r = run_serve("--frobnicate");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown flag"), std::string::npos);
}

TEST_F(ServeTest, PositionalArgumentFails) {
  const CommandResult r = run_serve("graph.snap");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("no positional arguments"), std::string::npos);
}

TEST_F(ServeTest, EmptyInputExitsZero) {
  const CommandResult r = run_serve("--workers 1");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_TRUE(r.output.empty()) << r.output;
}

TEST_F(ServeTest, RegisterSolveTopKGolden) {
  const CommandResult r = serve({
      kRegisterPath,
      R"({"op":"solve","graph":"p","algorithm":"serial"})",
      R"({"op":"solve","graph":"p","algorithm":"serial"})",
      R"({"op":"top_k","graph":"p","algorithm":"serial","k":2})",
  });
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(
      r.output,
      "{\"arcs\":6,\"graph\":\"p\",\"ok\":true,\"op\":\"register\","
      "\"vertices\":4}\n"
      "{\"graph\":\"p\",\"ok\":true,\"op\":\"solve\",\"scores\":[0,4,4,0],"
      "\"session_hit\":false}\n"
      "{\"graph\":\"p\",\"ok\":true,\"op\":\"solve\",\"scores\":[0,4,4,0],"
      "\"session_hit\":true}\n"
      "{\"graph\":\"p\",\"ok\":true,\"op\":\"top_k\",\"session_hit\":true,"
      "\"top\":[{\"score\":4,\"vertex\":1},{\"score\":4,\"vertex\":2}]}\n");
}

TEST_F(ServeTest, ApgreAndSerialAgreeOnScores) {
  const CommandResult serial = serve({
      kRegisterPath,
      R"({"op":"solve","graph":"p","algorithm":"serial"})",
  });
  const CommandResult apgre = serve({
      kRegisterPath,
      R"({"op":"solve","graph":"p","algorithm":"apgre"})",
  });
  ASSERT_EQ(serial.exit_code, 0);
  ASSERT_EQ(apgre.exit_code, 0);
  const std::string want = "\"scores\":[0,4,4,0]";
  EXPECT_NE(serial.output.find(want), std::string::npos) << serial.output;
  EXPECT_NE(apgre.output.find(want), std::string::npos) << apgre.output;
}

TEST_F(ServeTest, UpdateLocalityGolden) {
  // C4 cycle: the chord 0-2 lands strictly inside the single block (no
  // endpoint is an articulation point) -> local insert, affecting the whole
  // 4-vertex block. Removing 1-2 afterwards strips vertex 1 to degree one,
  // dissolving the block -> structural. The post-update solve sees the
  // mutated graph: edges {0,1},{0,2},{0,3},{2,3} give BC [4,0,0,0].
  const CommandResult r = serve({
      R"({"op":"register","graph":"c","edges":[[0,1],[1,2],[2,3],[3,0]]})",
      R"({"op":"update","graph":"c","u":0,"v":2,"insert":true})",
      R"({"op":"update","graph":"c","u":1,"v":2,"insert":false})",
      R"({"op":"solve","graph":"c","algorithm":"serial"})",
  });
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(
      r.output.find("{\"affected_sources\":4,\"graph\":\"c\",\"locality\":"
                    "\"local_insert\",\"ok\":true,\"op\":\"update\"}"),
      std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"locality\":\"structural\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"scores\":[4,0,0,0]"), std::string::npos)
      << r.output;
}

TEST_F(ServeTest, BatchGolden) {
  const CommandResult r = serve({
      kRegisterPath,
      R"({"op":"batch","requests":[)"
      R"({"op":"solve","graph":"p","algorithm":"serial"},)"
      R"({"op":"top_k","graph":"p","algorithm":"serial","k":1}]})",
  });
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(
      r.output.find(
          "{\"ok\":true,\"op\":\"batch\",\"responses\":["
          "{\"graph\":\"p\",\"ok\":true,\"op\":\"solve\","
          "\"scores\":[0,4,4,0],\"session_hit\":false},"
          "{\"graph\":\"p\",\"ok\":true,\"op\":\"top_k\","
          "\"session_hit\":true,\"top\":[{\"score\":4,\"vertex\":1}]}]}"),
      std::string::npos)
      << r.output;
}

TEST_F(ServeTest, MalformedLineKeepsServing) {
  const CommandResult r = serve({
      "{not json at all",
      R"({"op":"graphs"})",
  });
  EXPECT_EQ(r.exit_code, 0);
  // First reply is an error, second still succeeds.
  const std::size_t newline = r.output.find('\n');
  ASSERT_NE(newline, std::string::npos);
  const std::string first = r.output.substr(0, newline);
  EXPECT_NE(first.find("\"ok\":false"), std::string::npos) << first;
  EXPECT_NE(r.output.find("{\"graphs\":[],\"ok\":true,\"op\":\"graphs\"}"),
            std::string::npos)
      << r.output;
}

TEST_F(ServeTest, UnknownOpAndUnknownGraphAreErrors) {
  const CommandResult r = serve({
      R"({"op":"bogus"})",
      R"({"op":"solve","graph":"missing"})",
      R"({"op":"update","graph":"missing","u":0,"v":1})",
  });
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(
      r.output.find("{\"error\":\"unknown op: bogus\",\"ok\":false}"),
      std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("unknown graph: missing"), std::string::npos)
      << r.output;
}

TEST_F(ServeTest, InvalidUpdateReportsErrorAndKeepsState) {
  // Inserting an edge that already exists must fail without wedging the
  // graph: the follow-up solve still answers with the original scores.
  const CommandResult r = serve({
      kRegisterPath,
      R"({"op":"update","graph":"p","u":0,"v":1,"insert":true})",
      R"({"op":"solve","graph":"p","algorithm":"serial"})",
  });
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("\"ok\":false"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"scores\":[0,4,4,0]"), std::string::npos)
      << r.output;
}

TEST_F(ServeTest, RegistryOpsGolden) {
  const CommandResult r = serve({
      kRegisterPath,
      R"({"op":"graphs"})",
      R"({"op":"unregister","graph":"p"})",
      R"({"op":"unregister","graph":"p"})",
      R"({"op":"graphs"})",
  });
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("{\"graphs\":[\"p\"],\"ok\":true,\"op\":\"graphs\"}"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find(
                "{\"existed\":true,\"graph\":\"p\",\"ok\":true,"
                "\"op\":\"unregister\"}"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find(
                "{\"existed\":false,\"graph\":\"p\",\"ok\":true,"
                "\"op\":\"unregister\"}"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("{\"graphs\":[],\"ok\":true,\"op\":\"graphs\"}"),
            std::string::npos)
      << r.output;
}

TEST_F(ServeTest, StatsAndEvictShape) {
  const CommandResult r = serve({
      kRegisterPath,
      R"({"op":"solve","graph":"p","algorithm":"serial"})",
      R"({"op":"evict"})",
      R"({"op":"stats"})",
  });
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("{\"dropped\":1,\"ok\":true,\"op\":\"evict\"}"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"op\":\"stats\""), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"hit_rate\":"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"sessions\":0"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"requests\":1"), std::string::npos) << r.output;
}

TEST_F(ServeTest, QuitStopsProcessing) {
  const CommandResult r = serve({
      R"({"op":"quit"})",
      kRegisterPath,  // must never be processed
  });
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, "{\"ok\":true,\"op\":\"quit\"}\n");
}

// K4: one biconnected block, no articulation points. Deleting the two
// disjoint chords 0-2 and 1-3 leaves the C4 cycle — still one block, so
// the batch classifies local with deterministic counters.
const char kRegisterK4[] =
    R"({"op":"register","graph":"k",)"
    R"("edges":[[0,1],[0,2],[0,3],[1,2],[1,3],[2,3]]})";

TEST_F(ServeTest, BatchUpdateGoldenV1) {
  const CommandResult r = serve({
      kRegisterK4,
      R"({"op":"batch_update","graph":"k","ops":[)"
      R"({"u":0,"v":2,"insert":false,"t":0},)"
      R"({"u":1,"v":3,"insert":false,"t":1}]})",
      R"({"op":"solve","graph":"k","algorithm":"serial"})",
  });
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(
      r.output.find(
          "{\"affected_sources\":4,\"batch_edges\":2,\"blocks_resolved\":1,"
          "\"coalesced_away\":0,\"downgraded\":false,\"graph\":\"k\","
          "\"ok\":true,\"op\":\"batch_update\"}"),
      std::string::npos)
      << r.output;
  // K4 minus both chords is C4: every vertex mediates one antipodal pair
  // in each direction, half-credit each -> [1,1,1,1] (ordered pairs).
  EXPECT_NE(r.output.find("\"scores\":[1,1,1,1]"), std::string::npos)
      << r.output;
}

TEST_F(ServeTest, BatchUpdateGoldenV2EchoesVersion) {
  const CommandResult r = serve({
      kRegisterK4,
      R"({"v":2,"op":"batch_update","graph":"k","ops":[)"
      R"({"u":0,"v":2,"insert":false},{"u":1,"v":3,"insert":false}]})",
  });
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(
      r.output.find(
          "{\"affected_sources\":4,\"batch_edges\":2,\"blocks_resolved\":1,"
          "\"coalesced_away\":0,\"downgraded\":false,\"graph\":\"k\","
          "\"ok\":true,\"op\":\"batch_update\",\"v\":2}"),
      std::string::npos)
      << r.output;
}

TEST_F(ServeTest, BatchUpdateCoalescesAndDowngrades) {
  // Insert+delete of the same edge cancels; deleting a P4 edge is
  // structural (the path's blocks are bridges).
  const CommandResult r = serve({
      kRegisterPath,
      R"({"op":"batch_update","graph":"p","ops":[)"
      R"({"u":0,"v":2,"insert":true,"t":0},)"
      R"({"u":0,"v":2,"insert":false,"t":1}]})",
      R"({"op":"batch_update","graph":"p","ops":[)"
      R"({"u":2,"v":3,"insert":false}]})",
  });
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(
      r.output.find(
          "{\"affected_sources\":0,\"batch_edges\":2,\"blocks_resolved\":0,"
          "\"coalesced_away\":2,\"downgraded\":false,\"graph\":\"p\","
          "\"ok\":true,\"op\":\"batch_update\"}"),
      std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"downgraded\":true"), std::string::npos)
      << r.output;
}

TEST_F(ServeTest, MalformedBatchUpdatesAreErrorsAndKeepServing) {
  const CommandResult r = serve({
      kRegisterK4,
      R"({"op":"batch_update","graph":"k"})",                 // no ops/path
      R"({"v":3,"op":"batch_update","graph":"k","ops":[]})",  // bad version
      R"({"op":"batch_update","graph":"k","ops":[)"
      R"({"u":0,"v":1,"insert":true}]})",                     // already present
      R"({"op":"batch_update","graph":"k",)"
      R"("ops":[{"u":0,"v":1,"insert":false,"t":-4}]})",      // negative time
      R"({"op":"batch_update","graph":"missing","ops":[]})",  // unknown graph
      R"({"op":"graphs"})",
  });
  // Malformed batches answer errors; the server keeps serving (exit 0).
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("unsupported protocol version: 3"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("arc already present"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("timestamps must be non-negative"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("unknown graph: missing"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("{\"graphs\":[\"k\"],\"ok\":true,\"op\":\"graphs\"}"),
            std::string::npos)
      << r.output;
  // Five errors before the surviving graphs reply.
  std::size_t errors = 0;
  for (std::size_t at = r.output.find("\"ok\":false");
       at != std::string::npos; at = r.output.find("\"ok\":false", at + 1)) {
    ++errors;
  }
  EXPECT_EQ(errors, 5u) << r.output;
}

TEST_F(ServeTest, BatchUpdateReplaysBinaryFrames) {
  // Two frames recorded with the library writer: delete both K4 chords,
  // then re-insert them. Each frame applies as one batch.
  const std::string frames_path =
      ::testing::TempDir() + "/serve_frames_" +
      std::to_string(static_cast<long>(getpid())) + ".apgb";
  {
    std::vector<UpdateRequest> frames(2);
    EdgeOp del02;
    del02.u = 0;
    del02.v = 2;
    del02.insert = false;
    EdgeOp del13 = del02;
    del13.u = 1;
    del13.v = 3;
    frames[0].ops = {del02, del13};
    EdgeOp ins02 = del02;
    ins02.insert = true;
    EdgeOp ins13 = del13;
    ins13.insert = true;
    frames[1].ops = {ins02, ins13};
    write_edge_batch_file(frames_path, frames);
  }
  const CommandResult r = serve({
      kRegisterK4,
      R"({"op":"batch_update","graph":"k","path":")" + frames_path + R"("})",
      R"({"op":"batch_update","graph":"k","path":"/no/such/file.apgb"})",
  });
  std::remove(frames_path.c_str());
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(
      r.output.find(
          "{\"affected_sources\":8,\"batch_edges\":4,\"blocks_resolved\":2,"
          "\"coalesced_away\":0,\"downgraded\":false,\"frames\":2,"
          "\"graph\":\"k\",\"ok\":true,\"op\":\"batch_update\"}"),
      std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"ok\":false"), std::string::npos) << r.output;
}

TEST_F(ServeTest, TimingFlagAddsSeconds) {
  const CommandResult r = serve(
      {
          kRegisterPath,
          R"({"op":"solve","graph":"p","algorithm":"serial"})",
      },
      "--workers 1 --timing");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("\"seconds\":"), std::string::npos) << r.output;
}

}  // namespace
}  // namespace apgre
