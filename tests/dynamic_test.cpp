#include <gtest/gtest.h>

#include "bc/brandes.hpp"
#include "bc/dynamic.hpp"
#include "graph/generators.hpp"
#include "support/prng.hpp"
#include "test_util.hpp"

namespace apgre {
namespace {

void expect_matches_scratch(const DynamicBc& dynamic) {
  testing::expect_scores_near(brandes_bc(dynamic.graph()), dynamic.scores());
}

TEST(DynamicBc, InitialScoresAreExact) {
  const CsrGraph g = barbell(5, 2);
  const DynamicBc dynamic(g);
  expect_matches_scratch(dynamic);
}

TEST(DynamicBc, InsertingAShortcutUpdatesScores) {
  // Path 0-1-2-3-4 becomes C5 after adding 0-4: every vertex now carries
  // exactly one ordered pair in each direction (BC = 2), down from the
  // path profile 2 * i * (4 - i).
  DynamicBc dynamic(path(5));
  EXPECT_DOUBLE_EQ(dynamic.scores()[2], 8.0);
  const Vertex affected = dynamic.insert_edge(0, 4);
  EXPECT_GT(affected, 0u);
  expect_matches_scratch(dynamic);
  for (Vertex v = 0; v < 5; ++v) EXPECT_DOUBLE_EQ(dynamic.scores()[v], 2.0);
}

TEST(DynamicBc, RemovalRestoresPreviousScores) {
  const CsrGraph g = cycle(8);
  DynamicBc dynamic(g);
  const auto before = dynamic.scores();
  dynamic.insert_edge(0, 4);
  dynamic.remove_edge(0, 4);
  EXPECT_EQ(dynamic.graph(), g);
  testing::expect_scores_near(before, dynamic.scores());
}

TEST(DynamicBc, DirectedArcUpdates) {
  const CsrGraph g = CsrGraph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}}, true);
  DynamicBc dynamic(g);
  dynamic.insert_edge(0, 2);
  expect_matches_scratch(dynamic);
  EXPECT_TRUE(dynamic.graph().directed());
  dynamic.remove_edge(1, 2);
  expect_matches_scratch(dynamic);
}

TEST(DynamicBc, RejectsInvalidUpdates) {
  DynamicBc dynamic(path(4));
  EXPECT_THROW(dynamic.insert_edge(0, 1), Error);  // already present
  EXPECT_THROW(dynamic.remove_edge(0, 2), Error);  // absent
  EXPECT_THROW(dynamic.insert_edge(1, 1), Error);  // self-loop
}

TEST(DynamicBc, ConnectsTwoComponents) {
  const CsrGraph g = CsrGraph::undirected_from_edges(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  DynamicBc dynamic(g);
  dynamic.insert_edge(2, 3);
  expect_matches_scratch(dynamic);
  EXPECT_GT(dynamic.scores()[2], 0.0);  // now brokers the join
}

TEST(DynamicBc, DisconnectsViaBridgeRemoval) {
  DynamicBc dynamic(barbell(4, 0));
  dynamic.remove_edge(3, 4);  // the bridge
  expect_matches_scratch(dynamic);
  for (double score : dynamic.scores()) EXPECT_DOUBLE_EQ(score, 0.0);
}

TEST(DynamicBc, AffectedSetIsSmallForLocalEdits) {
  // Adding a pendant-ish edge deep inside one clique of a barbell must not
  // touch sources in the other clique.
  DynamicBc dynamic(barbell(20, 6));
  const Vertex n = dynamic.graph().num_vertices();
  // Arc between two bridge vertices that are not adjacent.
  const Vertex affected = dynamic.insert_edge(21, 23);
  expect_matches_scratch(dynamic);
  EXPECT_LT(affected, n);  // strictly fewer than all sources
}

class DynamicSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DynamicSweep, RandomEditSequencesStayExact) {
  for (const auto& gc : testing::graph_family(GetParam(), /*tiny=*/true)) {
    SCOPED_TRACE(gc.name);
    DynamicBc dynamic(gc.graph);
    Xoshiro256 rng(GetParam());
    const Vertex n = gc.graph.num_vertices();
    int edits = 0;
    for (int attempt = 0; attempt < 40 && edits < 8; ++attempt) {
      const auto u = static_cast<Vertex>(rng.bounded(n));
      const auto v = static_cast<Vertex>(rng.bounded(n));
      if (u == v) continue;
      const auto outs = dynamic.graph().out_neighbors(u);
      const bool present = std::binary_search(outs.begin(), outs.end(), v);
      try {
        if (present) {
          dynamic.remove_edge(u, v);
        } else {
          dynamic.insert_edge(u, v);
        }
        ++edits;
      } catch (const Error&) {
        continue;  // e.g. asymmetric remove on an undirected graph
      }
    }
    ASSERT_GT(edits, 0);
    expect_matches_scratch(dynamic);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicSweep, ::testing::Values(301, 311, 321));

}  // namespace
}  // namespace apgre
