#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/flags.hpp"

namespace apgre {
namespace {

FlagParser make_parser() {
  FlagParser flags("test tool");
  flags.add_string("format", "snap", "input format")
      .add_int("threads", 0, "thread budget")
      .add_double("scale", 1.5, "size scale")
      .add_bool("directed", false, "directed input");
  return flags;
}

std::vector<std::string> parse(FlagParser& flags,
                               std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"tool"};
  argv.insert(argv.end(), args.begin(), args.end());
  return flags.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagParser, DefaultsApplyWithoutArguments) {
  FlagParser flags = make_parser();
  parse(flags, {});
  EXPECT_EQ(flags.get_string("format"), "snap");
  EXPECT_EQ(flags.get_int("threads"), 0);
  EXPECT_DOUBLE_EQ(flags.get_double("scale"), 1.5);
  EXPECT_FALSE(flags.get_bool("directed"));
}

TEST(FlagParser, SpaceSeparatedValues) {
  FlagParser flags = make_parser();
  parse(flags, {"--format", "dimacs", "--threads", "8"});
  EXPECT_EQ(flags.get_string("format"), "dimacs");
  EXPECT_EQ(flags.get_int("threads"), 8);
}

TEST(FlagParser, EqualsSeparatedValues) {
  FlagParser flags = make_parser();
  parse(flags, {"--scale=2.25", "--directed=true"});
  EXPECT_DOUBLE_EQ(flags.get_double("scale"), 2.25);
  EXPECT_TRUE(flags.get_bool("directed"));
}

TEST(FlagParser, BareBooleanFlag) {
  FlagParser flags = make_parser();
  parse(flags, {"--directed"});
  EXPECT_TRUE(flags.get_bool("directed"));
}

TEST(FlagParser, NumericBooleans) {
  FlagParser flags = make_parser();
  parse(flags, {"--directed=1"});
  EXPECT_TRUE(flags.get_bool("directed"));
  FlagParser flags2 = make_parser();
  parse(flags2, {"--directed=0"});
  EXPECT_FALSE(flags2.get_bool("directed"));
}

TEST(FlagParser, PositionalArgumentsPreserved) {
  FlagParser flags = make_parser();
  const auto positional = parse(flags, {"graph.txt", "--threads", "2", "extra"});
  EXPECT_EQ(positional, (std::vector<std::string>{"graph.txt", "extra"}));
}

TEST(FlagParser, UnknownFlagThrows) {
  FlagParser flags = make_parser();
  EXPECT_THROW(parse(flags, {"--bogus", "1"}), Error);
}

TEST(FlagParser, MalformedValuesThrow) {
  FlagParser flags = make_parser();
  EXPECT_THROW(parse(flags, {"--threads", "eight"}), Error);
  FlagParser flags2 = make_parser();
  EXPECT_THROW(parse(flags2, {"--scale", "big"}), Error);
  FlagParser flags3 = make_parser();
  EXPECT_THROW(parse(flags3, {"--directed=maybe"}), Error);
}

TEST(FlagParser, BareBoolDoesNotConsumeNextToken) {
  // gflags-style: booleans only take values through `=`; the next token is
  // a positional argument.
  FlagParser flags = make_parser();
  const auto positional = parse(flags, {"--directed", "maybe"});
  EXPECT_TRUE(flags.get_bool("directed"));
  EXPECT_EQ(positional, (std::vector<std::string>{"maybe"}));
}

TEST(FlagParser, MissingValueThrows) {
  FlagParser flags = make_parser();
  EXPECT_THROW(parse(flags, {"--threads"}), Error);
}

TEST(FlagParser, HelpRequested) {
  FlagParser flags = make_parser();
  parse(flags, {"--help"});
  EXPECT_TRUE(flags.help_requested());
  const std::string help = flags.help();
  EXPECT_NE(help.find("--format"), std::string::npos);
  EXPECT_NE(help.find("input format"), std::string::npos);
}

TEST(FlagParser, TypeMismatchOnAccessThrows) {
  FlagParser flags = make_parser();
  parse(flags, {});
  EXPECT_THROW(flags.get_int("format"), Error);
  EXPECT_THROW(flags.get_string("missing"), Error);
}

TEST(FlagParser, PartialNumbersRejected) {
  FlagParser flags = make_parser();
  EXPECT_THROW(parse(flags, {"--threads", "3x"}), Error);
}

}  // namespace
}  // namespace apgre
