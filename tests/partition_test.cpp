#include <gtest/gtest.h>

#include <map>
#include <set>

#include "bcc/partition.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"
#include "test_util.hpp"

namespace apgre {
namespace {

/// Invariants of a valid decomposition (paper §3.1 properties 3-4 plus the
/// BUILDSUBGRAPH bookkeeping).
void check_invariants(const CsrGraph& g, const PartitionOptions& opts) {
  const Decomposition dec = decompose(g, opts);
  const CsrGraph u = undirected_projection(g);

  // 1. Every original arc is assigned to exactly one sub-graph.
  std::map<Edge, int> arc_count;
  for (const Edge& e : g.arcs()) arc_count[e] = 0;
  for (const Subgraph& sg : dec.subgraphs) {
    for (const Edge& local : sg.graph.arcs()) {
      const Edge global{sg.to_global[local.src], sg.to_global[local.dst]};
      ASSERT_TRUE(arc_count.contains(global));
      ++arc_count[global];
    }
  }
  for (const auto& [e, count] : arc_count) {
    EXPECT_EQ(count, 1) << "arc " << e.src << "->" << e.dst;
  }

  // 2. Every non-isolated vertex appears in >= 1 sub-graph; non-boundary
  //    vertices in exactly one.
  std::vector<int> membership(g.num_vertices(), 0);
  std::vector<int> boundary_membership(g.num_vertices(), 0);
  for (const Subgraph& sg : dec.subgraphs) {
    for (Vertex local = 0; local < sg.num_vertices(); ++local) {
      ++membership[sg.to_global[local]];
      if (sg.is_boundary_ap[local]) ++boundary_membership[sg.to_global[local]];
    }
  }
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (u.out_degree(v) == 0) {
      EXPECT_EQ(membership[v], 0);
    } else if (membership[v] > 1) {
      // Shared vertices must be boundary APs everywhere they appear.
      EXPECT_EQ(boundary_membership[v], membership[v]) << "vertex " << v;
    }
  }

  // 3. Roots + removed = all sub-graph vertices; gamma sums to removed.
  for (const Subgraph& sg : dec.subgraphs) {
    Vertex gamma_sum = 0;
    Vertex removed_count = 0;
    for (Vertex local = 0; local < sg.num_vertices(); ++local) {
      gamma_sum += sg.gamma[local];
      removed_count += sg.removed[local];
      if (sg.removed[local]) EXPECT_EQ(sg.gamma[local], 0u);
    }
    EXPECT_EQ(gamma_sum, removed_count);
    EXPECT_EQ(sg.roots.size() + removed_count, sg.num_vertices());
    for (Vertex root : sg.roots) EXPECT_FALSE(sg.removed[root]);
  }

  // 4. alpha sums: for each sub-graph, the alphas of its boundary APs add
  //    up to the vertices of its component outside the sub-graph.
  const ComponentLabels comp = connected_components(u);
  std::vector<std::uint64_t> comp_size(comp.num_components, 0);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (u.out_degree(v) > 0) ++comp_size[comp.component[v]];
  }
  if (!g.directed()) {
    for (const Subgraph& sg : dec.subgraphs) {
      if (sg.num_vertices() == 0) continue;
      std::uint64_t alpha_sum = 0;
      for (Vertex a : sg.boundary_aps) {
        alpha_sum += sg.alpha[a];
        EXPECT_EQ(sg.alpha[a], sg.beta[a]);  // undirected symmetry
        EXPECT_GE(sg.alpha[a], 1u);          // something hangs off a boundary AP
      }
      const Vertex c = comp.component[sg.to_global[0]];
      EXPECT_EQ(alpha_sum + sg.num_vertices(), comp_size[c]);
    }
  }

  // 5. Pendant accounting matches graph degrees when enabled.
  if (opts.total_redundancy) {
    Vertex expected_pendants = 0;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if (g.directed()) {
        if (g.in_degree(v) == 0 && g.out_degree(v) == 1) ++expected_pendants;
      } else if (g.out_degree(v) == 1) {
        const Vertex host = g.out_neighbors(v)[0];
        if (g.out_degree(host) != 1 || host < v) ++expected_pendants;
      }
    }
    EXPECT_EQ(dec.num_pendants_removed, expected_pendants);
  } else {
    EXPECT_EQ(dec.num_pendants_removed, 0u);
  }
}

TEST(Partition, CycleIsSingleSubgraph) {
  const Decomposition dec = decompose(cycle(10));
  ASSERT_EQ(dec.subgraphs.size(), 1u);
  EXPECT_TRUE(dec.subgraphs[0].boundary_aps.empty());
  EXPECT_EQ(dec.subgraphs[0].roots.size(), 10u);
}

TEST(Partition, StarMergesIntoOneSubgraph) {
  // Every block is a single edge attached to the top block -> all merged.
  const Decomposition dec = decompose(star(20));
  ASSERT_EQ(dec.subgraphs.size(), 1u);
  const Subgraph& sg = dec.subgraphs[0];
  EXPECT_TRUE(sg.boundary_aps.empty());
  // All 19 leaves are pendants; only the centre remains a root.
  EXPECT_EQ(dec.num_pendants_removed, 19u);
  EXPECT_EQ(sg.roots.size(), 1u);
  EXPECT_EQ(sg.gamma[sg.roots[0]], 19u);
}

TEST(Partition, BarbellSplitsAtThreshold) {
  // Large cliques stay separate when the threshold is small.
  PartitionOptions opts;
  opts.merge_threshold = 3;
  const Decomposition dec = decompose(barbell(8, 0), opts);
  EXPECT_GE(dec.subgraphs.size(), 2u);
  EXPECT_EQ(dec.num_articulation_points, 2u);
}

TEST(Partition, LargeThresholdMergesChainsButNotTopChildren) {
  // Paper Algorithm 1: below-threshold groups merge into their parent, but
  // a group hanging directly off the top block only merges when its size
  // is <= 2. barbell(8, 4) therefore collapses to exactly two sub-graphs:
  // the top clique, and the bridge chain + far clique merged together.
  PartitionOptions opts;
  opts.merge_threshold = 1000;
  const Decomposition dec = decompose(barbell(8, 4), opts);
  ASSERT_EQ(dec.subgraphs.size(), 2u);
  std::vector<Vertex> sizes{dec.subgraphs[0].num_vertices(),
                            dec.subgraphs[1].num_vertices()};
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<Vertex>{8, 13}));  // share one AP
}

TEST(Partition, PaperFigure3Decomposition) {
  PartitionOptions opts;
  opts.merge_threshold = 3;  // keep the three blocks apart (paper Fig. 3e)
  const Decomposition dec = decompose(paper_figure3(), opts);
  // Blocks {2..6}, {6,7,8,9}, {3,10,12}; pendant bridges {0,2}, {1,2} merge
  // into the top block. Pendants 0 and 1 are removed with gamma(2) = 2.
  EXPECT_EQ(dec.num_pendants_removed, 2u);
  bool found_gamma2 = false;
  for (const Subgraph& sg : dec.subgraphs) {
    for (Vertex local = 0; local < sg.num_vertices(); ++local) {
      if (sg.to_global[local] == 2 && sg.gamma[local] == 2) found_gamma2 = true;
    }
  }
  EXPECT_TRUE(found_gamma2);
}

TEST(Partition, TopSubgraphIsLargest) {
  const CsrGraph g = testing::graph_family(5, false)[5].graph;  // BA + pendants
  const Decomposition dec = decompose(g);
  for (const Subgraph& sg : dec.subgraphs) {
    EXPECT_LE(sg.num_arcs(), dec.subgraphs[dec.top_subgraph].num_arcs());
  }
}

TEST(Partition, WorkModelBoundsAreSane) {
  const CsrGraph g =
      attach_pendants(barabasi_albert(300, 2, 3), 100, 4);
  const Decomposition dec = decompose(g);
  const auto model = dec.work_model(g.num_arcs());
  EXPECT_GT(model.brandes, 0.0);
  EXPECT_GT(model.apgre, 0.0);
  EXPECT_LE(model.apgre, model.brandes);
  EXPECT_GE(model.partial_redundancy, 0.0);
  EXPECT_GE(model.total_redundancy, 0.0);
  EXPECT_LE(model.partial_redundancy + model.total_redundancy, 1.0);
  // Heavy pendant decoration must show substantial total redundancy.
  EXPECT_GT(model.total_redundancy, 0.05);
}

TEST(Partition, GammaDisabledKeepsAllRoots) {
  PartitionOptions opts;
  opts.total_redundancy = false;
  const Decomposition dec = decompose(star(10), opts);
  ASSERT_EQ(dec.subgraphs.size(), 1u);
  EXPECT_EQ(dec.subgraphs[0].roots.size(), 10u);
}

TEST(Partition, K2KeepsLowerIdAsRoot) {
  const CsrGraph g = path(2);
  const Decomposition dec = decompose(g);
  ASSERT_EQ(dec.subgraphs.size(), 1u);
  const Subgraph& sg = dec.subgraphs[0];
  ASSERT_EQ(sg.roots.size(), 1u);
  EXPECT_EQ(sg.to_global[sg.roots[0]], 0u);
}

class PartitionSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, Vertex, bool>> {};

TEST_P(PartitionSweep, InvariantsHoldOnRandomGraphs) {
  const auto [seed, threshold, total_redundancy] = GetParam();
  PartitionOptions opts;
  opts.merge_threshold = threshold;
  opts.total_redundancy = total_redundancy;
  for (const auto& gc : testing::graph_family(seed, /*tiny=*/true)) {
    SCOPED_TRACE(gc.name);
    check_invariants(gc.graph, opts);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(3, 13, 23),
                       ::testing::Values<Vertex>(2, 8, 64),
                       ::testing::Bool()));

}  // namespace
}  // namespace apgre
