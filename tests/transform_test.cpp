#include <gtest/gtest.h>

#include <numeric>

#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"

namespace apgre {
namespace {

TEST(UndirectedProjection, SymmetrisesDirectedArcs) {
  const CsrGraph g = CsrGraph::from_edges(3, {{0, 1}, {1, 2}}, true);
  const CsrGraph u = undirected_projection(g);
  EXPECT_FALSE(u.directed());
  EXPECT_TRUE(u.is_symmetric());
  EXPECT_EQ(u.num_arcs(), 4u);
}

TEST(UndirectedProjection, IdentityOnUndirected) {
  const CsrGraph g = cycle(5);
  EXPECT_EQ(undirected_projection(g), g);
}

TEST(Relabel, PermutesAdjacency) {
  const CsrGraph g = CsrGraph::from_edges(3, {{0, 1}, {1, 2}}, true);
  const CsrGraph r = relabel(g, {2, 0, 1});  // 0->2, 1->0, 2->1
  EXPECT_EQ(r.out_degree(2), 1u);
  EXPECT_EQ(r.out_neighbors(2)[0], 0u);
  EXPECT_EQ(r.out_neighbors(0)[0], 1u);
}

TEST(Relabel, RejectsNonPermutation) {
  const CsrGraph g = path(3);
  EXPECT_THROW(relabel(g, {0, 0, 1}), std::logic_error);
  EXPECT_THROW(relabel(g, {0, 1}), std::logic_error);
}

TEST(Relabel, IdentityIsNoop) {
  const CsrGraph g = erdos_renyi(40, 100, true, 3);
  std::vector<Vertex> id(40);
  std::iota(id.begin(), id.end(), 0);
  EXPECT_EQ(relabel(g, id), g);
}

TEST(InducedSubgraph, KeepsInternalEdgesOnly) {
  //  0-1-2-3 path; induce {1, 2, 3}.
  const CsrGraph g = path(4);
  const InducedSubgraph sub = induced_subgraph(g, {1, 2, 3});
  EXPECT_EQ(sub.graph.num_vertices(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 2u);  // 1-2 and 2-3
  EXPECT_EQ(sub.to_global, (std::vector<Vertex>{1, 2, 3}));
}

TEST(InducedSubgraph, PreservesDirection) {
  const CsrGraph g = CsrGraph::from_edges(4, {{0, 1}, {1, 2}, {2, 0}, {3, 0}}, true);
  const InducedSubgraph sub = induced_subgraph(g, {0, 1, 2});
  EXPECT_TRUE(sub.graph.directed());
  EXPECT_EQ(sub.graph.num_arcs(), 3u);
}

TEST(InducedSubgraph, RejectsDuplicates) {
  const CsrGraph g = path(4);
  EXPECT_THROW(induced_subgraph(g, {1, 1}), std::logic_error);
}

TEST(LargestComponent, PicksBiggest) {
  // Two components: triangle {0,1,2} and edge {3,4}.
  const CsrGraph g =
      CsrGraph::undirected_from_edges(5, {{0, 1}, {1, 2}, {2, 0}, {3, 4}});
  const InducedSubgraph lc = largest_component(g);
  EXPECT_EQ(lc.graph.num_vertices(), 3u);
  EXPECT_EQ(lc.to_global, (std::vector<Vertex>{0, 1, 2}));
  EXPECT_TRUE(is_connected(lc.graph));
}

TEST(AttachPendants, UndirectedAddsDegreeOneVertices) {
  const CsrGraph g = cycle(10);
  const CsrGraph decorated = attach_pendants(g, 5, 42);
  EXPECT_EQ(decorated.num_vertices(), 15u);
  EXPECT_EQ(decorated.num_edges(), 15u);
  for (Vertex v = 10; v < 15; ++v) {
    EXPECT_EQ(decorated.out_degree(v), 1u);
  }
  EXPECT_TRUE(decorated.is_symmetric());
}

TEST(AttachPendants, DirectedPendantsHaveNoInArcs) {
  const CsrGraph g = erdos_renyi(10, 30, true, 1);
  const CsrGraph decorated = attach_pendants(g, 4, 42);
  for (Vertex v = 10; v < 14; ++v) {
    EXPECT_EQ(decorated.out_degree(v), 1u);
    EXPECT_EQ(decorated.in_degree(v), 0u);
  }
}

TEST(AttachPendants, Deterministic) {
  const CsrGraph g = cycle(8);
  EXPECT_EQ(attach_pendants(g, 3, 9), attach_pendants(g, 3, 9));
}

TEST(AttachCommunities, AddsCliquesBridgedByOneEdge) {
  const CsrGraph g = attach_communities(cycle(10), 3, 5, 7);
  EXPECT_EQ(g.num_vertices(), 25u);
  // 10 cycle edges + 3 * (C(5,2) clique + 1 bridge) edges.
  EXPECT_EQ(g.num_edges(), 10u + 3u * (10u + 1u));
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(g.is_symmetric());
}

TEST(AttachCommunities, DirectedHostStaysDirected) {
  const CsrGraph g = attach_communities(erdos_renyi(20, 60, true, 1), 2, 4, 3);
  EXPECT_TRUE(g.directed());
  EXPECT_EQ(g.num_vertices(), 28u);
  // Community vertices are symmetric even in a directed host.
  EXPECT_EQ(g.out_degree(20), g.in_degree(20));
}

TEST(AttachChains, AddsTendrils) {
  const CsrGraph g = attach_chains(cycle(6), 2, 4, 5);
  EXPECT_EQ(g.num_vertices(), 14u);
  EXPECT_EQ(g.num_edges(), 6u + 8u);
  EXPECT_TRUE(is_connected(g));
  // Chain tips have degree 1, interiors degree 2.
  EXPECT_EQ(g.out_degree(9), 1u);
  EXPECT_EQ(g.out_degree(13), 1u);
  EXPECT_EQ(g.out_degree(8), 2u);
}

TEST(AttachDecorators, Deterministic) {
  const CsrGraph g = cycle(9);
  EXPECT_EQ(attach_communities(g, 2, 4, 11), attach_communities(g, 2, 4, 11));
  EXPECT_EQ(attach_chains(g, 2, 3, 11), attach_chains(g, 2, 3, 11));
}

}  // namespace
}  // namespace apgre
