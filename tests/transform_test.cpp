#include <gtest/gtest.h>

#include <numeric>

#include "bc/apgre.hpp"
#include "bc/brandes.hpp"
#include "bcc/partition.hpp"
#include "bcc/reach.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"
#include "test_util.hpp"

namespace apgre {
namespace {

// Solve the peeled reduction with plain Brandes and re-expand — the flat
// reduction is exact under any exact algorithm, so this must equal
// brandes_bc on the original graph.
std::vector<double> peel_then_brandes(const CsrGraph& g) {
  const PeelResult peel = two_core_peel(g);
  const CsrGraph reduced = peeled_reduction(g, peel);
  std::vector<double> scores = brandes_bc(reduced);
  expand_peeled_scores(peel, scores);
  return scores;
}

TEST(UndirectedProjection, SymmetrisesDirectedArcs) {
  const CsrGraph g = CsrGraph::from_edges(3, {{0, 1}, {1, 2}}, true);
  const CsrGraph u = undirected_projection(g);
  EXPECT_FALSE(u.directed());
  EXPECT_TRUE(u.is_symmetric());
  EXPECT_EQ(u.num_arcs(), 4u);
}

TEST(UndirectedProjection, IdentityOnUndirected) {
  const CsrGraph g = cycle(5);
  EXPECT_EQ(undirected_projection(g), g);
}

TEST(Relabel, PermutesAdjacency) {
  const CsrGraph g = CsrGraph::from_edges(3, {{0, 1}, {1, 2}}, true);
  const CsrGraph r = relabel(g, {2, 0, 1});  // 0->2, 1->0, 2->1
  EXPECT_EQ(r.out_degree(2), 1u);
  EXPECT_EQ(r.out_neighbors(2)[0], 0u);
  EXPECT_EQ(r.out_neighbors(0)[0], 1u);
}

TEST(Relabel, RejectsNonPermutation) {
  const CsrGraph g = path(3);
  EXPECT_THROW(relabel(g, {0, 0, 1}), std::logic_error);
  EXPECT_THROW(relabel(g, {0, 1}), std::logic_error);
}

TEST(Relabel, IdentityIsNoop) {
  const CsrGraph g = erdos_renyi(40, 100, true, 3);
  std::vector<Vertex> id(40);
  std::iota(id.begin(), id.end(), 0);
  EXPECT_EQ(relabel(g, id), g);
}

TEST(InducedSubgraph, KeepsInternalEdgesOnly) {
  //  0-1-2-3 path; induce {1, 2, 3}.
  const CsrGraph g = path(4);
  const InducedSubgraph sub = induced_subgraph(g, {1, 2, 3});
  EXPECT_EQ(sub.graph.num_vertices(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 2u);  // 1-2 and 2-3
  EXPECT_EQ(sub.to_global, (std::vector<Vertex>{1, 2, 3}));
}

TEST(InducedSubgraph, PreservesDirection) {
  const CsrGraph g = CsrGraph::from_edges(4, {{0, 1}, {1, 2}, {2, 0}, {3, 0}}, true);
  const InducedSubgraph sub = induced_subgraph(g, {0, 1, 2});
  EXPECT_TRUE(sub.graph.directed());
  EXPECT_EQ(sub.graph.num_arcs(), 3u);
}

TEST(InducedSubgraph, RejectsDuplicates) {
  const CsrGraph g = path(4);
  EXPECT_THROW(induced_subgraph(g, {1, 1}), std::logic_error);
}

TEST(LargestComponent, PicksBiggest) {
  // Two components: triangle {0,1,2} and edge {3,4}.
  const CsrGraph g =
      CsrGraph::undirected_from_edges(5, {{0, 1}, {1, 2}, {2, 0}, {3, 4}});
  const InducedSubgraph lc = largest_component(g);
  EXPECT_EQ(lc.graph.num_vertices(), 3u);
  EXPECT_EQ(lc.to_global, (std::vector<Vertex>{0, 1, 2}));
  EXPECT_TRUE(is_connected(lc.graph));
}

TEST(AttachPendants, UndirectedAddsDegreeOneVertices) {
  const CsrGraph g = cycle(10);
  const CsrGraph decorated = attach_pendants(g, 5, 42);
  EXPECT_EQ(decorated.num_vertices(), 15u);
  EXPECT_EQ(decorated.num_edges(), 15u);
  for (Vertex v = 10; v < 15; ++v) {
    EXPECT_EQ(decorated.out_degree(v), 1u);
  }
  EXPECT_TRUE(decorated.is_symmetric());
}

TEST(AttachPendants, DirectedPendantsHaveNoInArcs) {
  const CsrGraph g = erdos_renyi(10, 30, true, 1);
  const CsrGraph decorated = attach_pendants(g, 4, 42);
  for (Vertex v = 10; v < 14; ++v) {
    EXPECT_EQ(decorated.out_degree(v), 1u);
    EXPECT_EQ(decorated.in_degree(v), 0u);
  }
}

TEST(AttachPendants, Deterministic) {
  const CsrGraph g = cycle(8);
  EXPECT_EQ(attach_pendants(g, 3, 9), attach_pendants(g, 3, 9));
}

TEST(AttachCommunities, AddsCliquesBridgedByOneEdge) {
  const CsrGraph g = attach_communities(cycle(10), 3, 5, 7);
  EXPECT_EQ(g.num_vertices(), 25u);
  // 10 cycle edges + 3 * (C(5,2) clique + 1 bridge) edges.
  EXPECT_EQ(g.num_edges(), 10u + 3u * (10u + 1u));
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(g.is_symmetric());
}

TEST(AttachCommunities, DirectedHostStaysDirected) {
  const CsrGraph g = attach_communities(erdos_renyi(20, 60, true, 1), 2, 4, 3);
  EXPECT_TRUE(g.directed());
  EXPECT_EQ(g.num_vertices(), 28u);
  // Community vertices are symmetric even in a directed host.
  EXPECT_EQ(g.out_degree(20), g.in_degree(20));
}

TEST(AttachChains, AddsTendrils) {
  const CsrGraph g = attach_chains(cycle(6), 2, 4, 5);
  EXPECT_EQ(g.num_vertices(), 14u);
  EXPECT_EQ(g.num_edges(), 6u + 8u);
  EXPECT_TRUE(is_connected(g));
  // Chain tips have degree 1, interiors degree 2.
  EXPECT_EQ(g.out_degree(9), 1u);
  EXPECT_EQ(g.out_degree(13), 1u);
  EXPECT_EQ(g.out_degree(8), 2u);
}

TEST(AttachDecorators, Deterministic) {
  const CsrGraph g = cycle(9);
  EXPECT_EQ(attach_communities(g, 2, 4, 11), attach_communities(g, 2, 4, 11));
  EXPECT_EQ(attach_chains(g, 2, 3, 11), attach_chains(g, 2, 3, 11));
}

TEST(TwoCorePeel, EmptyGraph) {
  const CsrGraph g;
  const PeelResult peel = two_core_peel(g);
  EXPECT_TRUE(peel.applied);
  EXPECT_EQ(peel.num_peeled, 0u);
  EXPECT_EQ(peel.core_count(), 0u);
  EXPECT_DOUBLE_EQ(peel.core_fraction(), 1.0);
  EXPECT_EQ(peeled_reduction(g, peel), g);
  std::vector<double> scores;
  expand_peeled_scores(peel, scores);  // no-op, must not assert
  EXPECT_TRUE(scores.empty());
}

TEST(TwoCorePeel, CycleIsAFixpoint) {
  const CsrGraph g = cycle(9);
  const PeelResult peel = two_core_peel(g);
  EXPECT_TRUE(peel.applied);
  EXPECT_EQ(peel.num_peeled, 0u);
  EXPECT_DOUBLE_EQ(peel.core_fraction(), 1.0);
  for (Vertex v = 0; v < 9; ++v) EXPECT_TRUE(peel.in_core[v]);
  // Peeling a 2-core is a no-op: the reduction is the graph itself.
  EXPECT_EQ(peeled_reduction(g, peel), g);
}

TEST(TwoCorePeel, DirectedInputBypassesConservatively) {
  const CsrGraph g = CsrGraph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}}, true);
  const PeelResult peel = two_core_peel(g);
  EXPECT_FALSE(peel.applied);
  EXPECT_EQ(peel.num_peeled, 0u);
  for (Vertex v = 0; v < 4; ++v) EXPECT_TRUE(peel.in_core[v]);
  EXPECT_EQ(peeled_reduction(g, peel), g);
  std::vector<double> scores(4, 7.0);
  expand_peeled_scores(peel, scores);
  EXPECT_EQ(scores, std::vector<double>(4, 7.0));
}

TEST(TwoCorePeel, PureTreesPeelCompletelyWithExactScores) {
  for (const CsrGraph& g : {path(7), star(9), binary_tree(15),
                            random_tree(40, 11), CsrGraph::undirected_from_edges(2, {{0, 1}})}) {
    const PeelResult peel = two_core_peel(g);
    EXPECT_TRUE(peel.applied);
    EXPECT_EQ(peel.num_peeled, g.num_vertices());
    EXPECT_EQ(peel.core_count(), 0u);
    // Empty core: the reduction is edgeless and every score is closed-form.
    const CsrGraph reduced = peeled_reduction(g, peel);
    EXPECT_EQ(reduced.num_arcs(), 0u);
    EXPECT_EQ(reduced.num_vertices(), g.num_vertices());
    testing::expect_scores_near(brandes_bc(g), peel_then_brandes(g));
  }
}

TEST(TwoCorePeel, DisconnectedGraphWithTreeComponents) {
  // Triangle {0,1,2}, path {3,4,5}, isolated {6}.
  const CsrGraph g = CsrGraph::undirected_from_edges(
      7, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}});
  const PeelResult peel = two_core_peel(g);
  EXPECT_EQ(peel.num_peeled, 4u);
  EXPECT_EQ(peel.core_count(), 3u);
  for (Vertex v : {0u, 1u, 2u}) EXPECT_TRUE(peel.in_core[v]);
  for (Vertex v : {3u, 4u, 5u, 6u}) EXPECT_FALSE(peel.in_core[v]);
  // Component sizes stay component-local: vertex 4 is the centre of its own
  // 3-vertex path, not of the whole graph.
  testing::expect_scores_near(brandes_bc(g), peel_then_brandes(g));
}

TEST(TwoCorePeel, AnchorBookkeepingOnHangingChain) {
  // Triangle {0,1,2} with the chain 0-3-4 hanging off vertex 0.
  const CsrGraph g = CsrGraph::undirected_from_edges(
      5, {{0, 1}, {1, 2}, {2, 0}, {0, 3}, {3, 4}});
  const PeelResult peel = two_core_peel(g);
  ASSERT_EQ(peel.num_peeled, 2u);
  // FIFO ascending: the tip 4 first, then 3 once its degree drops.
  EXPECT_EQ(peel.forest[0].vertex, 4u);
  EXPECT_EQ(peel.forest[0].parent, 3u);
  EXPECT_EQ(peel.forest[0].anchor, 0u);
  EXPECT_EQ(peel.forest[0].subtree_size, 1u);
  EXPECT_EQ(peel.forest[1].vertex, 3u);
  EXPECT_EQ(peel.forest[1].parent, 0u);
  EXPECT_EQ(peel.forest[1].anchor, 0u);
  EXPECT_EQ(peel.forest[1].subtree_size, 2u);
  // Ordered pairs through 3: (4 <-> {0,1,2}) = 2 * 1 * 3 = 6.
  EXPECT_DOUBLE_EQ(peel.forest[1].score, 6.0);
  EXPECT_DOUBLE_EQ(peel.forest[0].score, 0.0);
  // Anchor 0 absorbs both vertices; flat overcount is sq - r = 4 - 2.
  EXPECT_EQ(peel.anchor_weight[0], 2u);
  EXPECT_DOUBLE_EQ(peel.core_correction[0], -2.0);
  testing::expect_scores_near(brandes_bc(g), peel_then_brandes(g));
}

TEST(TwoCorePeel, ReductionFlattensSubtreesToPendants) {
  const CsrGraph g =
      attach_pendants(attach_chains(cycle(8), 3, 4, 5), 4, 6);
  const PeelResult peel = two_core_peel(g);
  EXPECT_EQ(peel.num_peeled, g.num_vertices() - 8);
  const CsrGraph reduced = peeled_reduction(g, peel);
  EXPECT_EQ(reduced.num_vertices(), g.num_vertices());
  // Every peeled vertex is anchored (the host cycle survives) and becomes a
  // depth-1 pendant of its anchor.
  for (const PeeledVertex& p : peel.forest) {
    ASSERT_NE(p.anchor, kInvalidVertex);
    EXPECT_TRUE(peel.in_core[p.anchor]);
    EXPECT_EQ(reduced.out_degree(p.vertex), 1u);
    EXPECT_EQ(reduced.out_neighbors(p.vertex)[0], p.anchor);
  }
  EXPECT_EQ(reduced.num_arcs(),
            static_cast<EdgeId>(2 * 8 + 2 * peel.num_peeled));
  testing::expect_scores_near(brandes_bc(g), peel_then_brandes(g));
}

TEST(TwoCorePeel, CoreReductionIsolatesTheFringe) {
  const CsrGraph g = attach_pendants(attach_chains(cycle(8), 3, 4, 5), 4, 6);
  const PeelResult peel = two_core_peel(g);
  const CsrGraph core = peeled_core_reduction(g, peel);
  EXPECT_EQ(core.num_vertices(), g.num_vertices());
  // Only the host cycle's edges survive; no pendant arcs at all.
  EXPECT_EQ(core.num_arcs(), static_cast<EdgeId>(2 * 8));
  for (const PeeledVertex& p : peel.forest) {
    EXPECT_EQ(core.out_degree(p.vertex), 0u);
  }
  // Fixpoint graphs come back as an identity copy.
  const CsrGraph ring = cycle(5);
  EXPECT_EQ(peeled_core_reduction(ring, two_core_peel(ring)), ring);
}

TEST(TwoCorePeel, InjectedWeightsLandInExactlyOneHome) {
  // Triangles {0,1,2} and {2,3,4} share the articulation point 2, which
  // also anchors the peeled chain 2-5-6 — its weight must land in exactly
  // one of the two groups containing 2, not both. Vertex 1 anchors a plain
  // pendant and lives in a single group.
  const CsrGraph g = CsrGraph::undirected_from_edges(
      8, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}, {2, 5}, {5, 6}, {1, 7}});
  const PeelResult peel = two_core_peel(g);
  ASSERT_EQ(peel.num_peeled, 3u);
  const CsrGraph core = peeled_core_reduction(g, peel);
  PartitionOptions popts;
  popts.compute_reach = false;
  Decomposition dec = decompose(core, popts);
  const Vertex pendants_before = dec.num_pendants_removed;
  inject_pendant_weights(dec, peel.anchor_weight);
  EXPECT_EQ(dec.num_pendants_removed, pendants_before + 3);
  // Each anchor's weight lands in exactly one sub-graph, gamma included.
  for (Vertex global : {1u, 2u}) {
    double total_weight = 0.0;
    for (const Subgraph& sg : dec.subgraphs) {
      for (Vertex local = 0; local < sg.num_vertices(); ++local) {
        if (sg.to_global[local] != global || sg.pendant_weight.empty()) continue;
        total_weight += sg.pendant_weight[local];
        if (sg.pendant_weight[local] > 0.0) {
          EXPECT_GE(sg.gamma[local], sg.pendant_weight[local]);
        }
      }
    }
    EXPECT_DOUBLE_EQ(total_weight,
                     static_cast<double>(peel.anchor_weight[global]));
  }
}

TEST(TwoCorePeel, WeightedCoreSolveMatchesBrandesUnderBothReachMethods) {
  // Full weighted pipeline on the core-only reduction: decompose, inject
  // the anchor multiplicities, weighted reach counts, score, re-expand.
  const CsrGraph g =
      attach_pendants(attach_chains(caveman(3, 4, 7), 3, 3, 8), 5, 9);
  const std::vector<double> expected = brandes_bc(g);
  const PeelResult peel = two_core_peel(g);
  ASSERT_GT(peel.num_peeled, 0u);
  const CsrGraph core = peeled_core_reduction(g, peel);
  for (ReachMethod method : {ReachMethod::kTreeDp, ReachMethod::kBfs}) {
    SCOPED_TRACE(method == ReachMethod::kTreeDp ? "tree-dp" : "bfs");
    PartitionOptions popts;
    popts.compute_reach = false;
    Decomposition dec = decompose(core, popts);
    inject_pendant_weights(dec, peel.anchor_weight);
    compute_reach_counts(core, dec, method, &peel.anchor_weight);
    ApgreOptions opts;
    opts.partition = popts;
    std::vector<double> scores = apgre_bc_with_decomposition(core, dec, opts);
    expand_peeled_scores(peel, scores);
    testing::expect_scores_near(expected, scores);
  }
}

TEST(TwoCorePeel, Deterministic) {
  const CsrGraph g = attach_chains(barabasi_albert(60, 2, 3), 5, 3, 9);
  const PeelResult a = two_core_peel(g);
  const PeelResult b = two_core_peel(g);
  ASSERT_EQ(a.forest.size(), b.forest.size());
  for (std::size_t i = 0; i < a.forest.size(); ++i) {
    EXPECT_EQ(a.forest[i].vertex, b.forest[i].vertex);
    EXPECT_EQ(a.forest[i].anchor, b.forest[i].anchor);
    EXPECT_EQ(a.forest[i].subtree_size, b.forest[i].subtree_size);
    EXPECT_DOUBLE_EQ(a.forest[i].score, b.forest[i].score);
  }
  EXPECT_EQ(a.in_core, b.in_core);
  EXPECT_EQ(a.anchor_weight, b.anchor_weight);
}

TEST(TwoCorePeel, ExactAcrossSeededCorpus) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    for (const auto& gc : testing::graph_family(seed, /*tiny=*/false)) {
      if (gc.graph.directed()) continue;
      SCOPED_TRACE(gc.name + " seed " + std::to_string(seed));
      testing::expect_scores_near(brandes_bc(gc.graph),
                                  peel_then_brandes(gc.graph));
    }
  }
}

}  // namespace
}  // namespace apgre
