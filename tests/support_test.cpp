#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "support/bitset.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/prng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace apgre {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, BoundedStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
}

TEST(Xoshiro256, BoundedOneAlwaysZero) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, BoundedIsRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.bounded(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
}

TEST(HashCombine, MixesBothArguments) {
  EXPECT_NE(hash_combine64(1, 2), hash_combine64(2, 1));
  EXPECT_NE(hash_combine64(1, 2), hash_combine64(1, 3));
  EXPECT_EQ(hash_combine64(5, 9), hash_combine64(5, 9));
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
}

TEST(RunningStats, MergeMatchesSequentialAccumulation) {
  const std::vector<double> samples = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0,
                                       -1.0, 0.25, 13.5};
  for (std::size_t split = 0; split <= samples.size(); ++split) {
    RunningStats left;
    RunningStats right;
    RunningStats reference;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      (i < split ? left : right).add(samples[i]);
      reference.add(samples[i]);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), reference.count()) << "split " << split;
    EXPECT_NEAR(left.mean(), reference.mean(), 1e-12) << "split " << split;
    EXPECT_NEAR(left.variance(), reference.variance(), 1e-12) << "split " << split;
    EXPECT_DOUBLE_EQ(left.sum(), reference.sum()) << "split " << split;
    EXPECT_DOUBLE_EQ(left.min(), reference.min()) << "split " << split;
    EXPECT_DOUBLE_EQ(left.max(), reference.max()) << "split " << split;
  }
}

TEST(RunningStats, MergeWithEmptySidesIsIdentity) {
  RunningStats filled;
  filled.add(1.0);
  filled.add(3.0);

  RunningStats empty;
  filled.merge(empty);  // empty right side: no-op
  EXPECT_EQ(filled.count(), 2u);
  EXPECT_DOUBLE_EQ(filled.mean(), 2.0);

  RunningStats target;
  target.merge(filled);  // empty left side: copies the other accumulator
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
  EXPECT_DOUBLE_EQ(target.min(), 1.0);
  EXPECT_DOUBLE_EQ(target.max(), 3.0);
  EXPECT_NEAR(target.variance(), filled.variance(), 1e-15);

  RunningStats a;
  RunningStats b;
  a.merge(b);  // both empty
  EXPECT_EQ(a.count(), 0u);
}

TEST(Log2Histogram, BucketsPowersOfTwo) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  h.add(1000);
  const auto buckets = h.buckets();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], (std::pair<std::uint64_t, std::uint64_t>{1, 2}));  // 0 and 1
  EXPECT_EQ(buckets[1], (std::pair<std::uint64_t, std::uint64_t>{2, 2}));  // 2, 3
  EXPECT_EQ(buckets[2], (std::pair<std::uint64_t, std::uint64_t>{4, 1}));
  EXPECT_EQ(buckets[3], (std::pair<std::uint64_t, std::uint64_t>{512, 1}));
  EXPECT_EQ(h.total(), 6u);
}

TEST(GeometricMean, MatchesClosedForm) {
  EXPECT_NEAR(geometric_mean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geometric_mean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Bitset, SetTestClear) {
  Bitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_FALSE(b.test(0));
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_EQ(b.count(), 3u);
  b.clear(64);
  EXPECT_FALSE(b.test(64));
  b.reset();
  EXPECT_EQ(b.count(), 0u);
}

TEST(AtomicBitset, SetReportsFirstClaim) {
  AtomicBitset b(100);
  EXPECT_TRUE(b.set(42));
  EXPECT_FALSE(b.set(42));
  EXPECT_TRUE(b.test(42));
  EXPECT_FALSE(b.test(41));
  b.reset();
  EXPECT_FALSE(b.test(42));
  EXPECT_TRUE(b.set(42));
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(t.millis(), 5.0);
  t.reset();
  EXPECT_LT(t.millis(), 5.0);
}

TEST(ScopedTimer, AccumulatesIntoSink) {
  double sink = 0.0;
  {
    ScopedTimer t(sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const double first = sink;
  EXPECT_GT(first, 0.0);
  {
    ScopedTimer t(sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(sink, first);
}

TEST(ErrorMacros, AssertThrowsLogicError) {
  EXPECT_NO_THROW(APGRE_ASSERT(1 + 1 == 2));
  EXPECT_THROW(APGRE_ASSERT(1 + 1 == 3), std::logic_error);
  EXPECT_THROW(APGRE_ASSERT_MSG(false, "boom"), std::logic_error);
}

TEST(ErrorMacros, RequireThrowsApgreError) {
  EXPECT_NO_THROW(APGRE_REQUIRE(true, "fine"));
  EXPECT_THROW(APGRE_REQUIRE(false, "bad input"), Error);
}

TEST(ParseError, FormatsLocation) {
  try {
    throw ParseError("graph.txt", 12, "bad edge");
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "graph.txt:12: bad edge");
  }
}

TEST(Table, RendersAlignedColumns) {
  Table t({"Graph", "Time", "MTEPS"});
  t.row().cell("enron").cell(1.5).cell(std::uint64_t{291});
  t.row().cell("wiki").dash().cell(std::uint64_t{2437});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Graph"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("-"), std::string::npos);
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| Graph"), std::string::npos);
}

TEST(Table, CellBeforeRowIsAnError) {
  Table t({"a"});
  EXPECT_THROW(t.cell("x"), std::logic_error);
}

TEST(Parallel, ThreadBudgetRestores) {
  const int original = num_threads();
  {
    ThreadBudget budget(2);
    EXPECT_EQ(num_threads(), 2);
  }
  EXPECT_EQ(num_threads(), original);
}

TEST(Parallel, PerThreadHasOneSlotPerThread) {
  PerThread<int> counters(0);
  EXPECT_EQ(counters.size(), static_cast<std::size_t>(num_threads()));
  counters.local() = 5;
  EXPECT_EQ(counters[static_cast<std::size_t>(thread_id())], 5);
}

}  // namespace
}  // namespace apgre
