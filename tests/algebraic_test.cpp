#include <gtest/gtest.h>

#include "bc/algebraic.hpp"
#include "bc/brandes.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"
#include "test_util.hpp"

namespace apgre {
namespace {

TEST(AlgebraicBc, Shapes) {
  for (const CsrGraph& g : {path(9), star(12), cycle(10), complete(7),
                            barbell(5, 2), binary_tree(31)}) {
    testing::expect_scores_near(brandes_bc(g), algebraic_bc(g));
  }
}

TEST(AlgebraicBc, EmptyAndTrivial) {
  EXPECT_TRUE(algebraic_bc(CsrGraph::from_edges(0, {}, false)).empty());
  const auto one = algebraic_bc(CsrGraph::from_edges(1, {}, false));
  EXPECT_DOUBLE_EQ(one[0], 0.0);
}

TEST(AlgebraicBc, ExactlyBatchSizedGraph) {
  // n == 64: one full batch, no remainder lane handling.
  const CsrGraph g = barabasi_albert(64, 2, 7);
  testing::expect_scores_near(brandes_bc(g), algebraic_bc(g));
}

TEST(AlgebraicBc, BatchBoundaryGraphSizes) {
  // 63 / 65 / 128 / 130 vertices exercise partial batches on both sides.
  for (Vertex n : {63u, 65u, 128u, 130u}) {
    const CsrGraph g = barabasi_albert(n, 2, n);
    SCOPED_TRACE(n);
    testing::expect_scores_near(brandes_bc(g), algebraic_bc(g));
  }
}

TEST(AlgebraicBc, DirectedPaperFigure3) {
  const CsrGraph g = paper_figure3();
  testing::expect_scores_near(brandes_bc(g), algebraic_bc(g));
}

TEST(AlgebraicBc, DisconnectedGraph) {
  const CsrGraph g = CsrGraph::undirected_from_edges(
      70, {{0, 1}, {1, 2}, {2, 0}, {40, 41}, {68, 69}});
  testing::expect_scores_near(brandes_bc(g), algebraic_bc(g));
}

class AlgebraicSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AlgebraicSweep, MatchesBrandesOnRandomGraphs) {
  for (const auto& gc : testing::graph_family(GetParam(), /*tiny=*/true)) {
    SCOPED_TRACE(gc.name);
    testing::expect_scores_near(brandes_bc(gc.graph), algebraic_bc(gc.graph));
  }
}

TEST_P(AlgebraicSweep, MatchesBrandesOnMediumGraphs) {
  // Medium graphs span several batches.
  const auto cases = testing::graph_family(GetParam(), /*tiny=*/false);
  const auto& gc = cases[GetParam() % cases.size()];
  SCOPED_TRACE(gc.name);
  testing::expect_scores_near(brandes_bc(gc.graph), algebraic_bc(gc.graph));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraicSweep, ::testing::Values(171, 181, 191));

}  // namespace
}  // namespace apgre
