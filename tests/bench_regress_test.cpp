// End-to-end tests of the bench_regress harness: spawn the real binary
// (path injected by CMake), check the JSON report schema and the exit-code
// contract of the --baseline gate (0 clean, 1 regression, 2 malformed).
#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "support/json.hpp"

#ifndef APGRE_BENCH_REGRESS_PATH
#error "APGRE_BENCH_REGRESS_PATH must be defined by the build"
#endif

namespace apgre {
namespace {

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult run_tool(const std::string& args) {
  const std::string command =
      std::string(APGRE_BENCH_REGRESS_PATH) + " " + args + " 2>&1";
  std::array<char, 4096> buffer{};
  CommandResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

/// A fast measurement everybody reuses: 1 rep, no warmup, two algorithms,
/// the seeded corpus only.
std::string fast_flags() {
  return "--repeat 1 --warmup 0 --algo-set serial,apgre --seed 3";
}

class BenchRegressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    report_path_ = ::testing::TempDir() + "/bench_report_" +
                   std::to_string(static_cast<long>(getpid())) + ".json";
  }
  void TearDown() override { std::remove(report_path_.c_str()); }

  JsonValue read_report() const {
    std::ifstream in(report_path_);
    std::stringstream buf;
    buf << in.rdbuf();
    return JsonValue::parse(buf.str());
  }

  void write_file(const std::string& text) const {
    std::ofstream out(report_path_);
    out << text;
  }

  std::string report_path_;
};

TEST_F(BenchRegressTest, HelpExitsZero) {
  const CommandResult r = run_tool("--help");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("--baseline"), std::string::npos);
}

TEST_F(BenchRegressTest, UnknownFlagIsUsageError) {
  EXPECT_EQ(run_tool("--frobnicate").exit_code, 2);
  EXPECT_EQ(run_tool("--graphs nonsense").exit_code, 2);
  EXPECT_EQ(run_tool("--repeat 0").exit_code, 2);
}

TEST_F(BenchRegressTest, ReportMatchesSchema) {
  const CommandResult r =
      run_tool(fast_flags() + " --revision testrev --out " + report_path_);
  ASSERT_EQ(r.exit_code, 0) << r.output;

  const JsonValue report = read_report();
  EXPECT_EQ(report.at("schema_version").as_double(), 1.0);
  EXPECT_EQ(report.at("revision").as_string(), "testrev");
  EXPECT_TRUE(report.at("host").is_object());
  EXPECT_EQ(report.at("config").at("repeat").as_double(), 1.0);

  const auto& results = report.at("results").as_array();
  ASSERT_FALSE(results.empty());
  bool saw_skewed = false;
  for (const JsonValue& result : results) {
    // --graphs corpus, plus the skewed scheduler-stress workload that
    // rides along in every set.
    const std::string graph = result.at("graph").as_string();
    if (graph == "workload/skewed*") saw_skewed = true;
    EXPECT_TRUE(graph.find("corpus/") != std::string::npos ||
                graph == "workload/skewed*")
        << graph;
    EXPECT_GT(result.at("vertices").as_double(), 0.0);
    const auto& algorithms = result.at("algorithms").as_object();
    ASSERT_EQ(algorithms.size(), 2u);
    for (const auto& [name, stats] : algorithms) {
      EXPECT_TRUE(name == "serial" || name == "apgre") << name;
      EXPECT_GE(stats.at("seconds_median").as_double(), 0.0);
      EXPECT_GE(stats.at("seconds_p90").as_double(),
                stats.at("seconds_min").as_double());
      EXPECT_GT(stats.at("mteps_median").as_double(), 0.0);
      EXPECT_TRUE(stats.at("metrics").is_object());
      EXPECT_TRUE(stats.at("spans").is_object());
      // The kernels report into the registry under their own prefix.
      const std::string prefix = name == "serial" ? "bc.serial." : "bc.apgre.";
      EXPECT_TRUE(stats.at("metrics").contains(prefix + "traversed_arcs"));
    }
  }
  EXPECT_TRUE(saw_skewed) << "skewed scheduler workload missing from report";
}

TEST_F(BenchRegressTest, ServiceWorkloadReportsThroughput) {
  const CommandResult r = run_tool(
      "--workload service --clients 2 --requests 5 --seed 3 --threads 2 "
      "--out " +
      report_path_);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("service workload:"), std::string::npos) << r.output;

  const JsonValue report = read_report();
  EXPECT_EQ(report.at("schema_version").as_double(), 1.0);
  EXPECT_EQ(report.at("config").at("workload").as_string(), "service");

  const JsonValue& service = report.at("service");
  EXPECT_EQ(service.at("clients").as_double(), 2.0);
  EXPECT_EQ(service.at("requests_per_client").as_double(), 5.0);
  EXPECT_EQ(service.at("requests").as_double(), 10.0);
  EXPECT_GT(service.at("requests_per_second").as_double(), 0.0);
  const double hit_rate = service.at("hit_rate").as_double();
  EXPECT_GE(hit_rate, 0.0);
  EXPECT_LE(hit_rate, 1.0);
  const JsonValue& counters = service.at("counters");
  EXPECT_TRUE(counters.contains("session_hits"));
  EXPECT_TRUE(counters.contains("session_misses"));
  EXPECT_TRUE(counters.contains("updates_local"));
  EXPECT_TRUE(counters.contains("updates_structural"));
  // The kernels benchmark section is skipped in service mode.
  EXPECT_TRUE(report.at("results").as_array().empty());
}

TEST_F(BenchRegressTest, ServiceWorkloadFlagValidation) {
  EXPECT_EQ(run_tool("--workload nonsense").exit_code, 2);
  EXPECT_EQ(run_tool("--workload service --clients 0").exit_code, 2);
  EXPECT_EQ(run_tool("--workload service --requests 0").exit_code, 2);
}

TEST_F(BenchRegressTest, ServiceParallelWorkloadReportsLatencyPercentiles) {
  const CommandResult r = run_tool(
      "--workload service_parallel --clients 2 --requests 6 --seed 3 "
      "--threads 2 --out " +
      report_path_);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("service_parallel workload:"), std::string::npos)
      << r.output;

  const JsonValue report = read_report();
  EXPECT_EQ(report.at("schema_version").as_double(), 1.0);
  EXPECT_EQ(report.at("config").at("workload").as_string(), "service_parallel");

  const JsonValue& service = report.at("service");
  EXPECT_EQ(service.at("clients").as_double(), 2.0);
  EXPECT_EQ(service.at("requests_per_client").as_double(), 6.0);
  // Solves never fail on registered graphs; every request reports latency.
  EXPECT_EQ(service.at("failed").as_double(), 0.0);
  EXPECT_EQ(service.at("requests").as_double(), 12.0);
  EXPECT_GT(service.at("requests_per_second").as_double(), 0.0);
  EXPECT_GT(service.at("solve_seconds_p50").as_double(), 0.0);
  EXPECT_GE(service.at("solve_seconds_p90").as_double(),
            service.at("solve_seconds_p50").as_double());
  // Per-algorithm breakdown carries the same percentile fields.
  for (const auto& [name, entry] : service.at("algorithms").as_object()) {
    EXPECT_GT(entry.at("requests").as_double(), 0.0) << name;
    EXPECT_GE(entry.at("solve_seconds_p90").as_double(),
              entry.at("solve_seconds_p50").as_double())
        << name;
  }
  EXPECT_TRUE(report.at("results").as_array().empty());
}

TEST_F(BenchRegressTest, DecomposeWorkloadGatesExactnessAndReportsThroughput) {
  const CommandResult r = run_tool(
      "--workload decompose --repeat 2 --scale 0.05 --seed 3 --out " +
      report_path_);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("decompose workload:"), std::string::npos)
      << r.output;

  const JsonValue report = read_report();
  EXPECT_EQ(report.at("schema_version").as_double(), 1.0);
  EXPECT_EQ(report.at("config").at("workload").as_string(), "decompose");

  const JsonValue& decompose = report.at("decompose");
  EXPECT_GT(decompose.at("graph_vertices").as_double(), 0.0);
  // The fringe-heavy geometry guarantees thousands of bridge blocks.
  EXPECT_GT(decompose.at("blocks").as_double(), 100.0);
  EXPECT_EQ(decompose.at("reps").as_double(), 2.0);
  EXPECT_GT(decompose.at("serial_seconds_median").as_double(), 0.0);
  EXPECT_GT(decompose.at("parallel_seconds_median").as_double(), 0.0);
  EXPECT_GT(decompose.at("serial_blocks_per_second").as_double(), 0.0);
  EXPECT_GT(decompose.at("parallel_blocks_per_second").as_double(), 0.0);
  EXPECT_GT(decompose.at("speedup").as_double(), 0.0);
  // The kernels benchmark section is skipped in decompose mode.
  EXPECT_TRUE(report.at("results").as_array().empty());
}

TEST_F(BenchRegressTest, SelfBaselineComparesClean) {
  ASSERT_EQ(run_tool(fast_flags() + " --out " + report_path_).exit_code, 0);
  // Identical build, generous threshold: the gate must pass.
  const CommandResult r = run_tool(fast_flags() + " --threshold 1000 --baseline " +
                                   report_path_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 regressions"), std::string::npos) << r.output;
}

TEST_F(BenchRegressTest, RegressionExitsOne) {
  ASSERT_EQ(run_tool(fast_flags() + " --out " + report_path_).exit_code, 0);
  // Shrink every baseline timing to ~zero: everything now "regresses".
  JsonValue report = read_report();
  for (JsonValue& result : report["results"].as_array()) {
    for (auto& [name, stats] : result["algorithms"].as_object()) {
      stats["seconds_min"] = JsonValue(1e-9);
    }
  }
  write_file(report.dump(2));
  const CommandResult r =
      run_tool(fast_flags() + " --min-delta 0 --baseline " + report_path_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("REGRESSION"), std::string::npos);
}

TEST_F(BenchRegressTest, MalformedBaselineExitsTwo) {
  write_file("this is not json");
  EXPECT_EQ(run_tool(fast_flags() + " --baseline " + report_path_).exit_code, 2);
}

TEST_F(BenchRegressTest, WrongSchemaVersionExitsTwo) {
  write_file("{\"schema_version\": 999, \"results\": []}");
  EXPECT_EQ(run_tool(fast_flags() + " --baseline " + report_path_).exit_code, 2);
}

TEST_F(BenchRegressTest, MissingBaselineFileExitsTwo) {
  EXPECT_EQ(
      run_tool(fast_flags() + " --baseline /nonexistent/base.json").exit_code, 2);
}

}  // namespace
}  // namespace apgre
