// End-to-end pipelines: generate -> serialise -> parse -> decompose ->
// score -> compare, mirroring how a downstream user drives the library.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "bc/bc.hpp"
#include "bc/brandes.hpp"
#include "graph/degree.hpp"
#include "graph/generators.hpp"
#include "graph/io_dimacs.hpp"
#include "graph/io_snap.hpp"
#include "graph/transform.hpp"
#include "test_util.hpp"

namespace apgre {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "/" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(Integration, SnapFilePipeline) {
  const CsrGraph original = attach_pendants(barabasi_albert(150, 2, 21), 40, 22);
  TempFile file("pipeline.snap");
  write_snap_file(file.path(), original);
  const SnapGraph loaded = read_snap_file(file.path(), /*directed=*/false);
  ASSERT_EQ(loaded.graph.num_vertices(), original.num_vertices());

  const auto expected = brandes_bc(loaded.graph);
  const BcResult result = betweenness(loaded.graph);
  testing::expect_scores_near(expected, result.scores);
  EXPECT_GT(result.apgre_stats.num_pendants_removed, 0u);
}

TEST(Integration, DimacsRoadPipeline) {
  const CsrGraph original = road_grid(12, 12, 0.25, 0.05, 23);
  TempFile file("road.gr");
  write_dimacs_file(file.path(), original);
  const CsrGraph loaded = read_dimacs_file(file.path(), /*directed=*/false);
  EXPECT_EQ(loaded, original);
  testing::expect_scores_near(brandes_bc(loaded), betweenness(loaded).scores);
}

TEST(Integration, LargestComponentThenBc) {
  // Sparse ER has several components; restrict to the biggest, then rank.
  const CsrGraph g = erdos_renyi(400, 280, false, 25);
  const InducedSubgraph lc = largest_component(g);
  ASSERT_GT(lc.graph.num_vertices(), 10u);
  const auto scores = betweenness(lc.graph).scores;
  testing::expect_scores_near(brandes_bc(lc.graph), scores);
}

TEST(Integration, DecompositionStatsMatchStructureAnalysis) {
  const CsrGraph g = attach_pendants(caveman(8, 10, 26), 60, 27);
  const DegreeStats degrees = degree_stats(g);
  ApgreStats stats;
  apgre_bc(g, {}, &stats);
  // Every degree-1 vertex is a removable pendant here (no K2 components).
  EXPECT_EQ(stats.num_pendants_removed, degrees.pendant_count);
  EXPECT_GT(stats.num_articulation_points, 0u);
}

TEST(Integration, DirectedSnapStreamPipeline) {
  std::stringstream stream;
  write_snap(stream, paper_figure3());
  const SnapGraph loaded = read_snap(stream, /*directed=*/true);
  ASSERT_EQ(loaded.graph.num_vertices(), 13u);
  testing::expect_scores_near(brandes_bc(loaded.graph),
                              betweenness(loaded.graph).scores);
}

TEST(Integration, RankingAgreesAcrossAlgorithms) {
  // The practical downstream use: top-k extraction must be stable across
  // the exact algorithms.
  const CsrGraph g = attach_pendants(barabasi_albert(300, 2, 29), 80, 30);
  auto top_vertex = [](const std::vector<double>& scores) {
    return std::distance(scores.begin(),
                         std::max_element(scores.begin(), scores.end()));
  };
  const auto expected = top_vertex(betweenness(g, {Algorithm::kBrandesSerial}).scores);
  for (Algorithm a : {Algorithm::kApgre, Algorithm::kHybrid, Algorithm::kCoarse}) {
    BcOptions opts;
    opts.algorithm = a;
    EXPECT_EQ(top_vertex(betweenness(g, opts).scores), expected)
        << algorithm_name(a);
  }
}

}  // namespace
}  // namespace apgre
