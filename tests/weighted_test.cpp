#include <gtest/gtest.h>

#include <sstream>

#include "bc/brandes.hpp"
#include "bc/weighted.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"
#include "graph/weighted.hpp"
#include "test_util.hpp"

namespace apgre {
namespace {

TEST(WeightedCsr, BuildAndLookup) {
  const WeightedCsrGraph g = WeightedCsrGraph::from_edges(
      3, {{0, 1, 2.0}, {1, 2, 3.0}, {0, 2, 10.0}}, /*directed=*/true);
  EXPECT_EQ(g.num_arcs(), 3u);
  EXPECT_DOUBLE_EQ(g.arc_weight(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(g.arc_weight(1, 2), 3.0);
  EXPECT_DOUBLE_EQ(g.arc_weight(0, 2), 10.0);
  const auto weights = g.out_weights(0);
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_DOUBLE_EQ(weights[0], 2.0);
  EXPECT_DOUBLE_EQ(weights[1], 10.0);
}

TEST(WeightedCsr, DuplicateArcsKeepLightest) {
  const WeightedCsrGraph g = WeightedCsrGraph::from_edges(
      2, {{0, 1, 5.0}, {0, 1, 2.0}, {0, 1, 9.0}}, true);
  EXPECT_EQ(g.num_arcs(), 1u);
  EXPECT_DOUBLE_EQ(g.arc_weight(0, 1), 2.0);
}

TEST(WeightedCsr, SelfLoopsDropped) {
  const WeightedCsrGraph g =
      WeightedCsrGraph::from_edges(2, {{0, 0, 1.0}, {0, 1, 1.0}}, true);
  EXPECT_EQ(g.num_arcs(), 1u);
}

TEST(WeightedCsr, NegativeWeightRejected) {
  EXPECT_THROW(WeightedCsrGraph::from_edges(2, {{0, 1, -1.0}}, true), Error);
}

TEST(WeightedCsr, UndirectedSymmetrises) {
  const WeightedCsrGraph g =
      WeightedCsrGraph::undirected_from_edges(3, {{0, 1, 4.0}, {1, 2, 6.0}});
  EXPECT_DOUBLE_EQ(g.arc_weight(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(g.arc_weight(2, 1), 6.0);
}

TEST(WeightDecorators, UnitWeightsPreserveStructure) {
  const CsrGraph base = cycle(6);
  const WeightedCsrGraph g = with_unit_weights(base);
  EXPECT_EQ(g.structure(), base);
  for (const WeightedEdge& e : g.arcs()) EXPECT_DOUBLE_EQ(e.weight, 1.0);
}

TEST(WeightDecorators, RandomWeightsAreSymmetricAndBounded) {
  const WeightedCsrGraph g = with_random_weights(cycle(12), 2, 9, 7);
  for (const WeightedEdge& e : g.arcs()) {
    EXPECT_GE(e.weight, 2.0);
    EXPECT_LE(e.weight, 9.0);
    EXPECT_DOUBLE_EQ(e.weight, g.arc_weight(e.dst, e.src));
  }
  EXPECT_EQ(with_random_weights(cycle(12), 2, 9, 7),
            with_random_weights(cycle(12), 2, 9, 7));
}

TEST(WeightedDimacs, ReadsWeights) {
  std::istringstream in("p sp 3 2\na 1 2 7\na 2 3 4\n");
  const WeightedCsrGraph g = read_dimacs_weighted(in, /*directed=*/true);
  EXPECT_DOUBLE_EQ(g.arc_weight(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(g.arc_weight(1, 2), 4.0);
}

// ---- Algorithm correctness ------------------------------------------------

TEST(WeightedNaive, WeightedPathChangesRouting) {
  // Triangle where the two-hop route (total 2) beats the direct edge (5):
  // vertex 1 is on the single shortest 0->2 path.
  const WeightedCsrGraph g = WeightedCsrGraph::undirected_from_edges(
      3, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 5.0}});
  const auto bc = weighted_naive_bc(g);
  EXPECT_DOUBLE_EQ(bc[1], 2.0);  // both directions
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[2], 0.0);
}

TEST(WeightedNaive, TiedWeightedPathsSplit) {
  // 0 -> {1, 2} -> 3 with equal total weights: each middle carries 0.5.
  const WeightedCsrGraph g = WeightedCsrGraph::from_edges(
      4, {{0, 1, 2.0}, {0, 2, 1.0}, {1, 3, 1.0}, {2, 3, 2.0}}, true);
  const auto bc = weighted_naive_bc(g);
  EXPECT_DOUBLE_EQ(bc[1], 0.5);
  EXPECT_DOUBLE_EQ(bc[2], 0.5);
}

TEST(WeightedBrandes, UnitWeightsMatchUnweightedBrandes) {
  for (const auto& gc : testing::graph_family(42, /*tiny=*/true)) {
    SCOPED_TRACE(gc.name);
    testing::expect_scores_near(brandes_bc(gc.graph),
                                weighted_brandes_bc(with_unit_weights(gc.graph)));
  }
}

TEST(WeightedBrandes, RejectsZeroWeights) {
  const WeightedCsrGraph g =
      WeightedCsrGraph::from_edges(2, {{0, 1, 0.0}}, true);
  EXPECT_THROW(weighted_brandes_bc(g), Error);
}

TEST(WeightedApgre, PendantAndApShapes) {
  // Weighted variants of the unweighted regression shapes.
  const CsrGraph shape = CsrGraph::undirected_from_edges(
      8, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}, {2, 7}});
  const WeightedCsrGraph g = with_random_weights(shape, 1, 5, 3);
  ApgreOptions opts;
  opts.partition.merge_threshold = 2;
  testing::expect_scores_near(weighted_naive_bc(g), weighted_apgre_bc(g, opts));
}

class WeightedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WeightedSweep, BrandesMatchesNaiveOracle) {
  for (const auto& gc : testing::graph_family(GetParam(), /*tiny=*/true)) {
    SCOPED_TRACE(gc.name);
    const WeightedCsrGraph g = with_random_weights(gc.graph, 1, 7, GetParam());
    testing::expect_scores_near(weighted_naive_bc(g), weighted_brandes_bc(g));
  }
}

TEST_P(WeightedSweep, ApgreMatchesBrandes) {
  for (const auto& gc : testing::graph_family(GetParam(), /*tiny=*/true)) {
    SCOPED_TRACE(gc.name);
    const WeightedCsrGraph g = with_random_weights(gc.graph, 1, 7, GetParam() + 1);
    testing::expect_scores_near(weighted_brandes_bc(g), weighted_apgre_bc(g));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedSweep, ::testing::Values(51, 61, 71, 81));

TEST(WeightedApgre, StatsFilled) {
  const WeightedCsrGraph g = with_random_weights(
      attach_pendants(caveman(6, 8, 3), 20, 4), 1, 9, 5);
  ApgreStats stats;
  weighted_apgre_bc(g, {}, &stats);
  EXPECT_GT(stats.num_subgraphs, 0u);
  EXPECT_EQ(stats.num_pendants_removed, 20u);
}

}  // namespace
}  // namespace apgre
