#include <gtest/gtest.h>

#include "bc/brandes.hpp"
#include "bc/stress.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace apgre {
namespace {

TEST(StressCentrality, PathEqualsBetweenness) {
  // On a path every pair has exactly one shortest path, so stress == BC.
  const CsrGraph g = path(7);
  testing::expect_scores_near(brandes_bc(g), stress_centrality(g));
}

TEST(StressCentrality, StarCentreCountsAllPairs) {
  const auto stress = stress_centrality(star(8));
  EXPECT_DOUBLE_EQ(stress[0], 7.0 * 6.0);
  for (Vertex v = 1; v < 8; ++v) EXPECT_DOUBLE_EQ(stress[v], 0.0);
}

TEST(StressCentrality, CountsWholePathsNotFractions) {
  // Diamond 0 -> {1,2} -> 3: each middle vertex lies on ONE whole path of
  // the pair (0,3): stress 1 each, where BC gives 0.5.
  const CsrGraph g = CsrGraph::from_edges(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}}, true);
  const auto stress = stress_centrality(g);
  EXPECT_DOUBLE_EQ(stress[1], 1.0);
  EXPECT_DOUBLE_EQ(stress[2], 1.0);
  const auto bc = brandes_bc(g);
  EXPECT_DOUBLE_EQ(bc[1], 0.5);
}

TEST(StressCentrality, DominatesBetweenness) {
  // sigma_st(v) >= sigma_st(v)/sigma_st, so stress >= BC everywhere.
  for (const auto& gc : testing::graph_family(441, /*tiny=*/true)) {
    SCOPED_TRACE(gc.name);
    const auto stress = stress_centrality(gc.graph);
    const auto bc = brandes_bc(gc.graph);
    for (Vertex v = 0; v < gc.graph.num_vertices(); ++v) {
      EXPECT_GE(stress[v] + 1e-9, bc[v]) << "vertex " << v;
    }
  }
}

TEST(StressCentrality, EmptyGraph) {
  EXPECT_TRUE(stress_centrality(CsrGraph::from_edges(0, {}, false)).empty());
}

class StressSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressSweep, MatchesNaiveOracle) {
  for (const auto& gc : testing::graph_family(GetParam(), /*tiny=*/true)) {
    SCOPED_TRACE(gc.name);
    testing::expect_scores_near(stress_centrality_naive(gc.graph),
                                stress_centrality(gc.graph));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressSweep, ::testing::Values(451, 461, 471));

}  // namespace
}  // namespace apgre
