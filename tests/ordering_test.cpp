#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "bc/brandes.hpp"
#include "graph/ordering.hpp"
#include "test_util.hpp"

namespace apgre {
namespace {

void expect_is_permutation(const std::vector<Vertex>& p) {
  std::vector<Vertex> sorted = p;
  std::sort(sorted.begin(), sorted.end());
  for (Vertex i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(VertexOrder, AllStrategiesYieldPermutations) {
  const CsrGraph g = testing::graph_family(231, /*tiny=*/true)[4].graph;  // BA
  for (VertexOrder order :
       {VertexOrder::kNatural, VertexOrder::kDegreeDescending, VertexOrder::kBfs,
        VertexOrder::kDfs, VertexOrder::kRandom}) {
    const auto p = vertex_order(g, order, 3);
    ASSERT_EQ(p.size(), g.num_vertices());
    expect_is_permutation(p);
  }
}

TEST(VertexOrder, NaturalIsIdentity) {
  const CsrGraph g = path(8);
  const auto p = vertex_order(g, VertexOrder::kNatural);
  for (Vertex v = 0; v < 8; ++v) EXPECT_EQ(p[v], v);
}

TEST(VertexOrder, DegreeDescendingPutsHubFirst) {
  const CsrGraph g = star(10);
  const auto p = vertex_order(g, VertexOrder::kDegreeDescending);
  EXPECT_EQ(p[0], 0u);  // the centre keeps position 0
}

TEST(VertexOrder, BfsStartsAtHighestDegree) {
  // Star with an offset centre: BFS must root at the hub, giving it new
  // id 0 and its leaves the following ids.
  const CsrGraph g = CsrGraph::undirected_from_edges(
      5, {{3, 0}, {3, 1}, {3, 2}, {3, 4}});
  const auto p = vertex_order(g, VertexOrder::kBfs);
  EXPECT_EQ(p[3], 0u);
}

TEST(VertexOrder, RandomIsSeedDeterministic) {
  const CsrGraph g = cycle(30);
  EXPECT_EQ(vertex_order(g, VertexOrder::kRandom, 5),
            vertex_order(g, VertexOrder::kRandom, 5));
  EXPECT_NE(vertex_order(g, VertexOrder::kRandom, 5),
            vertex_order(g, VertexOrder::kRandom, 6));
}

TEST(ApplyOrder, InverseMappingRoundTrips) {
  const CsrGraph g = testing::graph_family(241, /*tiny=*/true)[0].graph;
  const OrderedGraph ordered = apply_order(g, VertexOrder::kBfs);
  ASSERT_EQ(ordered.graph.num_vertices(), g.num_vertices());
  ASSERT_EQ(ordered.graph.num_arcs(), g.num_arcs());
  // to_original composed with the forward permutation is the identity.
  const auto p = vertex_order(g, VertexOrder::kBfs);
  for (Vertex old_id = 0; old_id < g.num_vertices(); ++old_id) {
    EXPECT_EQ(ordered.to_original[p[old_id]], old_id);
  }
}

TEST(ApplyOrder, BcScoresAreOrderInvariant) {
  // Relabelling must not change BC, only the id under which it is reported.
  for (VertexOrder order : {VertexOrder::kDegreeDescending, VertexOrder::kBfs,
                            VertexOrder::kDfs, VertexOrder::kRandom}) {
    const CsrGraph g = testing::graph_family(251, /*tiny=*/true)[5].graph;
    const auto original = brandes_bc(g);
    const OrderedGraph ordered = apply_order(g, order, 7);
    const auto relabelled = brandes_bc(ordered.graph);
    for (Vertex new_id = 0; new_id < g.num_vertices(); ++new_id) {
      EXPECT_NEAR(relabelled[new_id], original[ordered.to_original[new_id]], 1e-9);
    }
  }
}

TEST(ApplyOrder, DirectedGraphsSupported) {
  const CsrGraph g = testing::graph_family(261, /*tiny=*/true)[1].graph;
  const OrderedGraph ordered = apply_order(g, VertexOrder::kDfs);
  EXPECT_TRUE(ordered.graph.directed());
  EXPECT_EQ(ordered.graph.num_arcs(), g.num_arcs());
}

}  // namespace
}  // namespace apgre
