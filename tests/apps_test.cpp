#include <gtest/gtest.h>

#include "apps/girvan_newman.hpp"
#include "apps/vulnerability.hpp"
#include "graph/generators.hpp"
#include "support/error.hpp"

namespace apgre {
namespace {

using apps::AttackStrategy;
using apps::CommunityResult;
using apps::GirvanNewmanOptions;

TEST(GirvanNewman, RecoversCavemanCommunities) {
  const CsrGraph g = caveman(5, 6, 11);
  GirvanNewmanOptions opts;
  opts.target_communities = 5;
  const CommunityResult result = apps::girvan_newman(g, opts);
  EXPECT_EQ(result.num_communities, 5u);
  EXPECT_EQ(result.removed_edges.size(), 4u);  // exactly the 4 bridges
  // Every community is one clique: members with equal v / 6 share labels.
  for (Vertex v = 0; v < 30; ++v) {
    EXPECT_EQ(result.community[v], result.community[(v / 6) * 6]);
  }
  EXPECT_GT(result.modularity, 0.5);  // strong community structure
}

TEST(GirvanNewman, SplitsBarbellAtTheBridge) {
  const CsrGraph g = barbell(5, 0);
  GirvanNewmanOptions opts;
  opts.target_communities = 2;
  const CommunityResult result = apps::girvan_newman(g, opts);
  EXPECT_EQ(result.num_communities, 2u);
  ASSERT_EQ(result.removed_edges.size(), 1u);
  EXPECT_EQ(result.removed_edges[0], (Edge{4, 5}));
}

TEST(GirvanNewman, MaxCutsGuardsTermination) {
  const CsrGraph g = complete(6);
  GirvanNewmanOptions opts;
  opts.target_communities = 6;
  opts.max_cuts = 3;
  const CommunityResult result = apps::girvan_newman(g, opts);
  EXPECT_EQ(result.removed_edges.size(), 3u);
}

TEST(GirvanNewman, RejectsDirectedGraphs) {
  const CsrGraph g = CsrGraph::from_edges(3, {{0, 1}, {1, 2}}, true);
  EXPECT_THROW(apps::girvan_newman(g, {}), Error);
}

TEST(Modularity, SingleCommunityIsZero) {
  const CsrGraph g = complete(5);
  const std::vector<Vertex> one(5, 0);
  EXPECT_NEAR(apps::modularity(g, one), 0.0, 1e-12);
}

TEST(Modularity, PlantedPartitionBeatsRandomLabels) {
  const CsrGraph g = caveman(4, 6, 3);
  std::vector<Vertex> planted(24);
  for (Vertex v = 0; v < 24; ++v) planted[v] = v / 6;
  std::vector<Vertex> scrambled(24);
  for (Vertex v = 0; v < 24; ++v) scrambled[v] = v % 4;
  EXPECT_GT(apps::modularity(g, planted), apps::modularity(g, scrambled));
}

TEST(Dismantle, BetweennessAttackShattersBarbell) {
  const CsrGraph g = barbell(6, 1);  // bridge vertex 6
  const auto curve = apps::dismantle(g, 1, AttackStrategy::kBetweenness);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_EQ(curve[0].removed, 6u);  // the broker goes first
  EXPECT_EQ(curve[0].largest_component, 6u);
  EXPECT_EQ(curve[0].num_components, 2u);
  EXPECT_GT(curve[0].betweenness, 0.0);
}

TEST(Dismantle, DegreeAttackPicksHub) {
  const CsrGraph g = star(10);
  const auto curve = apps::dismantle(g, 1, AttackStrategy::kDegree);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_EQ(curve[0].removed, 0u);
  EXPECT_EQ(curve[0].largest_component, 1u);
  EXPECT_EQ(curve[0].num_components, 9u);
}

TEST(Dismantle, RandomAttackIsSeededAndValid) {
  const CsrGraph g = cycle(12);
  const auto a = apps::dismantle(g, 4, AttackStrategy::kRandom, 5);
  const auto b = apps::dismantle(g, 4, AttackStrategy::kRandom, 5);
  ASSERT_EQ(a.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(a[i].removed, b[i].removed);
  // No duplicates.
  EXPECT_NE(a[0].removed, a[1].removed);
}

TEST(Dismantle, BetweennessAttackBeatsRandomOnBrokeredNetworks) {
  const CsrGraph g = caveman(6, 6, 7);
  const auto targeted = apps::dismantle(g, 5, AttackStrategy::kBetweenness);
  const auto random = apps::dismantle(g, 5, AttackStrategy::kRandom, 3);
  EXPECT_LT(apps::robustness_index(g, targeted),
            apps::robustness_index(g, random) + 1e-9);
}

TEST(Dismantle, RejectsTooManySteps) {
  EXPECT_THROW(apps::dismantle(path(3), 4, AttackStrategy::kDegree), Error);
}

TEST(RobustnessIndex, EmptyCurveIsOne) {
  EXPECT_DOUBLE_EQ(apps::robustness_index(cycle(5), {}), 1.0);
}

}  // namespace
}  // namespace apgre
