// Seeded property sweep over the check subsystem: the differential oracle
// across every exact algorithm, the metamorphic rules, and the
// decomposition / ApgreStats invariants, each over the random-graph corpus
// (all generator classes, directed and undirected, plus the weighted
// family). A failing case prints its (seed, case) pair; reproduce it with
//   apgre_diff --seed <seed> --cases <case> --verbose
// as described in docs/TESTING.md.
#include <gtest/gtest.h>

#include <set>

#include "bc/bc.hpp"
#include "bc/brandes.hpp"
#include "check/corpus.hpp"
#include "check/dynamic_metamorphic.hpp"
#include "check/invariants.hpp"
#include "check/metamorphic.hpp"
#include "check/oracle.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"
#include "test_util.hpp"

namespace apgre {
namespace {

constexpr std::uint64_t kDifferentialSeeds = 6;
constexpr std::uint64_t kMetamorphicSeeds = 3;
constexpr std::uint64_t kInvariantSeeds = 3;
constexpr std::uint64_t kWeightedSeeds = 4;

// ---- Differential oracle -------------------------------------------------

TEST(CheckSweep, EveryExactAlgorithmMatchesBrandesOnEveryCorpusCase) {
  for (std::uint64_t seed = 1; seed <= kDifferentialSeeds; ++seed) {
    for (const CorpusCase& c : graph_corpus(seed, /*tiny=*/true)) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " " + c.name);
      const OracleReport report = differential_check(c.graph);
      EXPECT_TRUE(report.ok) << report.summary();
    }
  }
}

TEST(CheckSweep, WeightedFamilyMatchesWeightedBrandes) {
  for (std::uint64_t seed = 1; seed <= kWeightedSeeds; ++seed) {
    for (const WeightedCorpusCase& c : weighted_corpus(seed, /*tiny=*/true)) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " " + c.name);
      const OracleReport report = weighted_differential_check(c.graph);
      EXPECT_TRUE(report.ok) << report.summary();
    }
  }
}

TEST(CheckOracle, ExactAlgorithmSetIncludesNaiveOnlyWhenSmall) {
  const CsrGraph small = path(10);
  const auto with_naive = exact_algorithm_set(small);
  EXPECT_EQ(with_naive.front(), Algorithm::kNaive);
  const auto without = exact_algorithm_set(small, /*max_naive_vertices=*/5);
  for (Algorithm a : without) EXPECT_NE(a, Algorithm::kNaive);
  EXPECT_EQ(with_naive.size(), without.size() + 1);
}

TEST(CheckOracle, CompareScoresBlamesTheWorstVertex) {
  const std::vector<double> expected{1.0, 2.0, 3.0, 4.0};
  std::vector<double> actual = expected;
  actual[1] += 0.5;   // small offence
  actual[3] += 10.0;  // worst offence
  const ScoreComparison cmp = compare_scores(expected, actual, 1e-7, 1e-6);
  EXPECT_FALSE(cmp.ok);
  EXPECT_EQ(cmp.num_violations, 2u);
  EXPECT_EQ(cmp.worst_vertex, 3u);
  EXPECT_DOUBLE_EQ(cmp.expected_score, 4.0);
  EXPECT_DOUBLE_EQ(cmp.actual_score, 14.0);
  EXPECT_DOUBLE_EQ(cmp.max_divergence, 10.0);
  EXPECT_GT(cmp.actual_norm, cmp.expected_norm);
}

TEST(CheckOracle, CompareScoresAcceptsAccumulationNoise) {
  const std::vector<double> expected{100.0, 0.0, 1e6};
  std::vector<double> actual = expected;
  actual[2] += 1e-2;  // within 1e-7 relative of 1e6... no: 0.1 tolerance
  EXPECT_TRUE(compare_scores(expected, actual, 1e-7, 1e-6).ok);
}

// ---- Dynamic differential (DynamicBc vs static oracle) -------------------

TEST(CheckSweep, DynamicUpdatesMatchStaticRecomputeAcrossCorpus) {
  constexpr std::uint64_t kDynamicSeeds = 3;
  constexpr std::size_t kStepsPerGraph = 6;
  for (std::uint64_t seed = 1; seed <= kDynamicSeeds; ++seed) {
    for (const CorpusCase& c : graph_corpus(seed, /*tiny=*/true)) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " " + c.name);
      const std::vector<DynamicStep> steps =
          random_dynamic_steps(c.graph, kStepsPerGraph, seed * 131 + 7);
      const OracleReport report = dynamic_differential_check(c.graph, steps);
      EXPECT_TRUE(report.ok) << report.summary();
    }
  }
}

TEST(CheckOracle, RandomDynamicStepsAreAlwaysApplicable) {
  // Every generated step must be valid against the evolving graph: inserts
  // name absent edges, removals name present ones. DynamicBc throws on a
  // violation, which dynamic_differential_check would report as a failure,
  // so an exception-free ok run is the assertion.
  const CsrGraph g = attach_pendants(caveman(3, 5, 21), 6, 22);
  const std::vector<DynamicStep> steps = random_dynamic_steps(g, 12, 99);
  EXPECT_EQ(steps.size(), 12u);
  const OracleReport report = dynamic_differential_check(g, steps);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.algorithms.size(), 12u) << "one report entry per step";
}

TEST(CheckOracle, DynamicStepsAreDeterministicPerSeed) {
  const CsrGraph g = caveman(4, 4, 13);
  const auto a = random_dynamic_steps(g, 8, 5);
  const auto b = random_dynamic_steps(g, 8, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].u, b[i].u);
    EXPECT_EQ(a[i].v, b[i].v);
    EXPECT_EQ(a[i].inserting, b[i].inserting);
  }
}

// ---- Metamorphic rules ---------------------------------------------------

TEST(CheckSweep, MetamorphicRulesHoldForEveryExactAlgorithm) {
  std::size_t applied = 0;
  std::size_t graphs = 0;
  for (std::uint64_t seed = 1; seed <= kMetamorphicSeeds; ++seed) {
    for (const CorpusCase& c : graph_corpus(seed, /*tiny=*/true)) {
      // Rotate the algorithm under test so the sweep covers the whole
      // family without rerunning every rule 8 times per graph.
      const auto pool = exact_algorithm_set(c.graph, /*max_naive_vertices=*/0);
      BcOptions opts;
      opts.algorithm = pool[graphs++ % pool.size()];
      SCOPED_TRACE("seed " + std::to_string(seed) + " " + c.name + " " +
                   algorithm_name(opts.algorithm));
      for (const MetamorphicResult& r :
           run_metamorphic_rules(c.graph, opts, seed)) {
        if (!r.applied) continue;
        ++applied;
        EXPECT_TRUE(r.ok) << r.rule << ": " << r.detail;
      }
    }
  }
  // 4 rules always apply (relabel, pendant, isolated, union); subdivision
  // needs an undirected graph with a bridge.
  EXPECT_GE(applied, graphs * 4);
}

// ---- Dynamic metamorphic rules -------------------------------------------
// Closed-form score predictions across a graph *mutation*, checked against
// the incremental engine (check/dynamic_metamorphic.hpp).

TEST(CheckSweep, DynamicMetamorphicRulesHoldOnTheCorpus) {
  std::size_t applied = 0;
  for (std::uint64_t seed = 1; seed <= kMetamorphicSeeds; ++seed) {
    for (const CorpusCase& c : graph_corpus(seed, /*tiny=*/true)) {
      if (c.graph.num_vertices() == 0) continue;
      SCOPED_TRACE("seed " + std::to_string(seed) + " " + c.name);
      BcOptions opts;
      for (const MetamorphicResult& r :
           run_dynamic_metamorphic_rules(c.graph, opts, seed)) {
        if (!r.applied) continue;
        ++applied;
        EXPECT_TRUE(r.ok) << r.rule << ": " << r.detail;
      }
    }
  }
  EXPECT_GT(applied, 0u) << "no dynamic rule ever applied";
}

TEST(CheckDynamicMetamorphic, PendantAttachAppliesEverywhere) {
  BcOptions opts;
  const MetamorphicResult r =
      check_dynamic_pendant_attach(caveman(3, 4, 5), opts, /*seed=*/5);
  EXPECT_TRUE(r.applied);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(CheckDynamicMetamorphic, BridgeDeleteNeedsABridge) {
  BcOptions opts;
  const MetamorphicResult r =
      check_dynamic_bridge_delete(caveman(3, 4, 5), opts, /*seed=*/5);
  EXPECT_TRUE(r.applied) << "caveman bridges exist";
  EXPECT_TRUE(r.ok) << r.detail;
  const MetamorphicResult none =
      check_dynamic_bridge_delete(complete(5), opts, /*seed=*/5);
  EXPECT_FALSE(none.applied);  // biconnected: no bridge
}

TEST(CheckDynamicMetamorphic, ChordRoundtripStaysLocal) {
  BcOptions opts;
  // Two cycles sharing an articulation point: plenty of chord candidates.
  const CsrGraph g = CsrGraph::undirected_from_edges(
      9, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0},
          {0, 6}, {6, 7}, {7, 8}, {8, 0}});
  const MetamorphicResult r =
      check_dynamic_chord_roundtrip(g, opts, /*seed=*/3);
  EXPECT_TRUE(r.applied);
  EXPECT_TRUE(r.ok) << r.detail;
  const MetamorphicResult directed = check_dynamic_chord_roundtrip(
      erdos_renyi(8, 16, true, 2), opts, /*seed=*/3);
  EXPECT_FALSE(directed.applied);  // directed graphs never classify local
}

TEST(CheckMetamorphic, SubdivisionAppliesOnBridgeHeavyGraphs) {
  BcOptions opts;
  opts.algorithm = Algorithm::kBrandesSerial;
  const MetamorphicResult r =
      check_bridge_subdivision(caveman(4, 5, 7), opts, /*seed=*/7);
  EXPECT_TRUE(r.applied);
  EXPECT_TRUE(r.ok) << r.detail;
  const MetamorphicResult none =
      check_bridge_subdivision(complete(6), opts, /*seed=*/7);
  EXPECT_FALSE(none.applied);  // biconnected: no bridge to subdivide
}

TEST(CheckMetamorphic, PendantRuleCoversDirectedGraphs) {
  BcOptions opts;
  opts.algorithm = Algorithm::kApgre;
  const CsrGraph g = rmat(5, 4, 0.45, 0.2, 0.2, false, 11);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const MetamorphicResult r = check_pendant_attachment(g, opts, seed);
    EXPECT_TRUE(r.applied);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.detail;
  }
}

TEST(CheckMetamorphic, UnionRejectsMixedDirectedness) {
  BcOptions opts;
  const MetamorphicResult r = check_disjoint_union(
      path(4), erdos_renyi(6, 10, true, 1), opts);
  EXPECT_FALSE(r.applied);
}

TEST(CheckMetamorphic, RulesDetectABrokenAlgorithm) {
  // The sampling estimator is intentionally not exact: the relabel rule
  // must flag it (different permutations sample different sources), which
  // proves the harness can fail at all.
  BcOptions opts;
  opts.algorithm = Algorithm::kSampling;
  opts.num_samples = 5;
  const CsrGraph g = barabasi_albert(80, 2, 3);
  bool any_failure = false;
  for (std::uint64_t seed = 1; seed <= 4 && !any_failure; ++seed) {
    const MetamorphicResult r = check_relabel_invariance(g, opts, seed);
    any_failure = r.applied && !r.ok;
  }
  EXPECT_TRUE(any_failure);
}

// ---- 2-core peel rules ---------------------------------------------------

TEST(CheckMetamorphic, PeelAttachPredictsDecoratedScores) {
  BcOptions opts;
  opts.algorithm = Algorithm::kBrandesSerial;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const MetamorphicResult r =
        check_peel_attachment(caveman(3, 5, seed), opts, seed);
    EXPECT_TRUE(r.applied);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.detail;
  }
  const MetamorphicResult directed =
      check_peel_attachment(erdos_renyi(8, 16, true, 2), opts, /*seed=*/3);
  EXPECT_FALSE(directed.applied);  // two_core_peel bypasses directed inputs
}

TEST(CheckMetamorphic, PeelSolveCoversTreesCyclesAndDirectedBypass) {
  BcOptions opts;
  opts.algorithm = Algorithm::kBrandesSerial;
  // Pure tree: the core is empty and every score is closed-form.
  const MetamorphicResult tree =
      check_peel_solve_equivalence(random_tree(40, 3), opts);
  EXPECT_TRUE(tree.applied);
  EXPECT_TRUE(tree.ok) << tree.detail;
  // 2-core fixpoint: peeling removes nothing.
  const MetamorphicResult fixpoint =
      check_peel_solve_equivalence(cycle(12), opts);
  EXPECT_TRUE(fixpoint.applied);
  EXPECT_TRUE(fixpoint.ok) << fixpoint.detail;
  // Directed input: the knob must be a bypassed no-op, not a wrong answer.
  const MetamorphicResult directed =
      check_peel_solve_equivalence(erdos_renyi(10, 24, true, 5), opts);
  EXPECT_TRUE(directed.applied);
  EXPECT_TRUE(directed.ok) << directed.detail;
}

TEST(CheckSweep, SolverPeelMatchesUnpeeledAcrossCorpus) {
  // The peel knob must be score-invisible on every corpus case (tree-heavy,
  // biconnected, directed, empty) under the full Solver path — weighted
  // core reduction, gamma/reach injection, closed-form re-expansion.
  BcOptions off;
  off.algorithm = Algorithm::kApgre;
  BcOptions on = off;
  on.apgre.partition.peel_two_core = true;
  for (std::uint64_t seed = 1; seed <= kMetamorphicSeeds; ++seed) {
    for (const CorpusCase& c : graph_corpus(seed, /*tiny=*/true)) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " " + c.name);
      const BcResult a = betweenness(c.graph, off);
      const BcResult b = betweenness(c.graph, on);
      ASSERT_TRUE(a.status.ok() && b.status.ok());
      const ScoreComparison cmp = compare_scores(a.scores, b.scores);
      EXPECT_TRUE(cmp.ok) << "worst vertex " << cmp.worst_vertex << ": "
                          << cmp.expected_score << " vs " << cmp.actual_score;
    }
  }
}

TEST(CheckSweep, IncrementalTrajectoriesStayExactWithPeelEnabled) {
  // Drive the incremental engine with peeling enabled through random
  // insert/remove trajectories: updates that touch the peeled forest must
  // route structural (re-peel) and still match the static oracle.
  BcOptions peeled;
  peeled.algorithm = Algorithm::kApgre;
  peeled.apgre.partition.peel_two_core = true;
  constexpr std::size_t kStepsPerGraph = 4;
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    for (const CorpusCase& c : graph_corpus(seed, /*tiny=*/true)) {
      if (c.graph.num_vertices() < 2) continue;
      SCOPED_TRACE("seed " + std::to_string(seed) + " " + c.name);
      const std::vector<DynamicStep> steps =
          random_dynamic_steps(c.graph, kStepsPerGraph, seed * 211 + 17);
      const OracleReport report =
          incremental_differential_check(c.graph, steps, peeled);
      EXPECT_TRUE(report.ok) << report.summary();
    }
  }
}

// ---- Decomposition / stats invariants -----------------------------------

TEST(CheckSweep, DecompositionInvariantsHoldAcrossCorpusAndReachMethods) {
  for (std::uint64_t seed = 1; seed <= kInvariantSeeds; ++seed) {
    for (const CorpusCase& c : graph_corpus(seed, /*tiny=*/true)) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " " + c.name);
      PartitionOptions popts;
      popts.reach = ReachMethod::kBfs;
      const Decomposition by_bfs = decompose(c.graph, popts);
      for (const std::string& v :
           check_decomposition_invariants(c.graph, by_bfs)) {
        ADD_FAILURE() << "kBfs: " << v;
      }
      if (!c.graph.directed()) {
        popts.reach = ReachMethod::kTreeDp;
        const Decomposition by_tree = decompose(c.graph, popts);
        for (const std::string& v :
             check_decomposition_invariants(c.graph, by_tree)) {
          ADD_FAILURE() << "kTreeDp: " << v;
        }
      }
    }
  }
}

TEST(CheckSweep, DecompositionAgreementHoldsForBothBiconnectivityPasses) {
  // Same sweep apgre_diff runs with --parallel-bcc on/off: the selected
  // pass's blocks against the standalone AP finder, the edge-partition
  // property, the forest shape — and, parallel side, the canonicalized
  // serial structures.
  for (std::uint64_t seed = 1; seed <= kInvariantSeeds; ++seed) {
    for (const CorpusCase& c : graph_corpus(seed, /*tiny=*/true)) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " " + c.name);
      for (const std::string& v : check_decomposition_agreement(
               c.graph, ParallelDecomposition::kOff)) {
        ADD_FAILURE() << "serial: " << v;
      }
      for (const std::string& v : check_decomposition_agreement(
               c.graph, ParallelDecomposition::kOn)) {
        ADD_FAILURE() << "parallel: " << v;
      }
    }
  }
}

TEST(CheckInvariants, AgreementHoldsOnDirectedAndDegenerateShapes) {
  // Directed inputs route through the projection (and the parallel pass's
  // serial fallback); degenerate shapes exercise the empty-block edges.
  EXPECT_TRUE(check_decomposition_agreement(paper_figure3(),
                                            ParallelDecomposition::kOn)
                  .empty());
  EXPECT_TRUE(check_decomposition_agreement(
                  CsrGraph::undirected_from_edges(3, {}),
                  ParallelDecomposition::kOn)
                  .empty());
  EXPECT_TRUE(check_decomposition_agreement(caveman(3, 5, 4),
                                            ParallelDecomposition::kAuto)
                  .empty());
}

TEST(CheckSweep, ApgreStatsInvariantsHoldAcrossCorpus) {
  for (std::uint64_t seed = 1; seed <= kInvariantSeeds; ++seed) {
    for (const CorpusCase& c : graph_corpus(seed, /*tiny=*/true)) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " " + c.name);
      BcOptions opts;
      opts.algorithm = Algorithm::kApgre;
      const BcResult result = betweenness(c.graph, opts);
      for (const std::string& v :
           check_stats_invariants(c.graph, result.apgre_stats)) {
        ADD_FAILURE() << v;
      }
    }
  }
}

TEST(CheckInvariants, CorruptedStatsAreFlagged) {
  const CsrGraph g = attach_pendants(caveman(4, 6, 2), 10, 3);
  BcOptions opts;
  opts.algorithm = Algorithm::kApgre;
  ApgreStats stats = betweenness(g, opts).apgre_stats;
  ASSERT_TRUE(check_stats_invariants(g, stats).empty());

  ApgreStats wrong_subgraphs = stats;
  wrong_subgraphs.num_subgraphs += 1;
  EXPECT_FALSE(check_stats_invariants(g, wrong_subgraphs).empty());

  ApgreStats wrong_pendants = stats;
  wrong_pendants.num_pendants_removed += 1;
  EXPECT_FALSE(check_stats_invariants(g, wrong_pendants).empty());

  ApgreStats wrong_redundancy = stats;
  wrong_redundancy.total_redundancy = 1.5;
  EXPECT_FALSE(check_stats_invariants(g, wrong_redundancy).empty());

  ApgreStats wrong_timing = stats;
  wrong_timing.partition_seconds = wrong_timing.total_seconds + 1.0;
  EXPECT_FALSE(check_stats_invariants(g, wrong_timing).empty());
}

TEST(CheckInvariants, CorruptedDecompositionIsFlagged) {
  const CsrGraph g = caveman(4, 6, 5);
  Decomposition dec = decompose(g);
  ASSERT_TRUE(check_decomposition_invariants(g, dec).empty());

  Decomposition wrong_alpha = dec;
  for (Subgraph& sg : wrong_alpha.subgraphs) {
    if (!sg.boundary_aps.empty()) {
      sg.alpha[sg.boundary_aps.front()] += 1;
      break;
    }
  }
  EXPECT_FALSE(check_decomposition_invariants(g, wrong_alpha).empty());

  Decomposition wrong_counter = dec;
  wrong_counter.num_articulation_points += 1;
  EXPECT_FALSE(check_decomposition_invariants(g, wrong_counter).empty());
}

TEST(CheckInvariants, PendantCensusMatchesDegreeStructure) {
  EXPECT_EQ(pendant_census(path(2)), 1u);   // K2 keeps the lower id as root
  EXPECT_EQ(pendant_census(star(5)), 4u);   // every leaf is a pendant
  EXPECT_EQ(pendant_census(cycle(6)), 0u);  // biconnected: none
  const CsrGraph decorated = attach_pendants(cycle(8), 5, 1);
  EXPECT_EQ(pendant_census(decorated), 5u);
}

// ---- Satellite: algorithm name round-trips -------------------------------

TEST(CheckNames, EveryAlgorithmRoundTripsAndNamesAreUnique) {
  const Algorithm all[] = {
      Algorithm::kNaive,         Algorithm::kBrandesSerial,
      Algorithm::kParallelPreds, Algorithm::kParallelSuccs,
      Algorithm::kLockFree,      Algorithm::kCoarse,
      Algorithm::kHybrid,        Algorithm::kApgre,
      Algorithm::kAlgebraic,     Algorithm::kSampling,
  };
  std::set<std::string> names;
  for (Algorithm a : all) {
    const std::string name = algorithm_name(a);
    EXPECT_NE(name, "?");
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
    EXPECT_EQ(algorithm_from_name(name), a);
  }
  EXPECT_EQ(names.size(), 10u);
  // Documented aliases resolve; near-misses do not.
  EXPECT_EQ(algorithm_from_name("async"), Algorithm::kCoarse);
  EXPECT_EQ(algorithm_from_name("batched"), Algorithm::kAlgebraic);
  for (const char* bad : {"", "bogus", "APGRE", " apgre", "apgre ", "brandes"}) {
    EXPECT_THROW(algorithm_from_name(bad), OptionError) << "`" << bad << "`";
  }
}

// ---- Satellite: undirected halving across the family ---------------------

TEST(CheckHalving, HalvingIsConsistentAcrossEveryExactAlgorithm) {
  const CsrGraph g = attach_pendants(caveman(4, 6, 9), 8, 4);
  ASSERT_FALSE(g.directed());
  const auto full = brandes_bc(g);
  std::vector<double> halved_reference(full.size());
  for (std::size_t v = 0; v < full.size(); ++v) {
    halved_reference[v] = 0.5 * full[v];
  }
  for (Algorithm a : exact_algorithm_set(g)) {
    SCOPED_TRACE(algorithm_name(a));
    BcOptions opts;
    opts.algorithm = a;
    opts.undirected_halving = true;
    testing::expect_scores_near(halved_reference, betweenness(g, opts).scores);
  }
}

TEST(CheckHalving, HalvingIsIgnoredOnDirectedInputsForEveryAlgorithm) {
  const CsrGraph g = paper_figure3();
  ASSERT_TRUE(g.directed());
  const auto full = brandes_bc(g);
  for (Algorithm a : exact_algorithm_set(g)) {
    SCOPED_TRACE(algorithm_name(a));
    BcOptions opts;
    opts.algorithm = a;
    opts.undirected_halving = true;
    testing::expect_scores_near(full, betweenness(g, opts).scores);
  }
}

}  // namespace
}  // namespace apgre
