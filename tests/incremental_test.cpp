// IncrementalBc (bc/incremental.hpp): the iCentral-style localized update
// path. The tests pin the routing (local updates must NOT re-decompose;
// "bcc.decompositions" is the witness), check the pendant closed forms,
// and replay randomized insert/delete/attach/detach trajectories over the
// seeded corpus, diffing against a fresh static Brandes solve after EVERY
// step — whatever path an update took, the scores must be exact.
#include <gtest/gtest.h>

#include <vector>

#include "bc/brandes.hpp"
#include "bc/incremental.hpp"
#include "check/oracle.hpp"
#include "graph/generators.hpp"
#include "graph/mutate.hpp"
#include "support/metrics.hpp"
#include "support/prng.hpp"
#include "test_util.hpp"

namespace apgre {
namespace {

using testing::expect_scores_near;

std::uint64_t decompositions() {
  return metrics().counter("bcc.decompositions").value();
}

/// K5 on {0..4} sharing articulation point 0 with the triangle {0,5,6}:
/// two blocks, one dense enough that chord deletes stay biconnected.
CsrGraph k5_plus_triangle() {
  return CsrGraph::undirected_from_edges(
      7, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4},
          {2, 3}, {2, 4}, {3, 4}, {0, 5}, {5, 6}, {6, 0}});
}

/// One sub-graph per block, so "localized" demonstrably means one block.
BcOptions per_block_options() {
  BcOptions opts;
  opts.apgre.partition.merge_threshold = 2;
  return opts;
}

// The acceptance criterion: an intra-block biconnectivity-preserving
// delete completes without incrementing bcc.decompositions, and the
// incremental scores still match a fresh static solve.
TEST(IncrementalBc, LocalDeleteAvoidsRedecomposition) {
  IncrementalBc engine(k5_plus_triangle(), per_block_options());
  const std::uint64_t after_init = decompositions();

  // K5 minus {1,2} is still one biconnected component.
  EXPECT_EQ(engine.remove_edge(1, 2), UpdateLocality::kLocalDelete);
  EXPECT_EQ(decompositions(), after_init)
      << "a biconnectivity-preserving delete must not re-decompose";
  expect_scores_near(brandes_bc(engine.graph()), engine.scores());

  // Restoring the edge is a chord insert — also local.
  EXPECT_EQ(engine.insert_edge(1, 2), UpdateLocality::kLocalInsert);
  EXPECT_EQ(decompositions(), after_init);
  expect_scores_near(brandes_bc(engine.graph()), engine.scores());

  EXPECT_EQ(engine.stats().local_deletes, 1u);
  EXPECT_EQ(engine.stats().local_inserts, 1u);
  EXPECT_EQ(engine.stats().structural_resolves, 0u);
}

TEST(IncrementalBc, StructuralUpdatesFallBackToFullSolve) {
  IncrementalBc engine(k5_plus_triangle(), per_block_options());
  const std::uint64_t after_init = decompositions();

  // Deleting a triangle edge dissolves the {0,5,6} block into bridges.
  EXPECT_EQ(engine.remove_edge(5, 6), UpdateLocality::kStructural);
  EXPECT_EQ(engine.stats().structural_resolves, 1u);
  EXPECT_EQ(decompositions(), after_init + 1);
  expect_scores_near(brandes_bc(engine.graph()), engine.scores());

  // Re-inserting it has an articulation-point endpoint on each side of the
  // now-split tree — structural again.
  EXPECT_EQ(engine.insert_edge(5, 6), UpdateLocality::kStructural);
  EXPECT_EQ(engine.stats().structural_resolves, 2u);
  expect_scores_near(brandes_bc(engine.graph()), engine.scores());
}

TEST(IncrementalBc, PendantAttachDetachUsesClosedFormOnly) {
  IncrementalBc engine(k5_plus_triangle(), per_block_options());
  const std::uint64_t after_init = decompositions();

  const Vertex pendant = engine.attach_pendant(3);
  EXPECT_EQ(pendant, 7u);
  EXPECT_EQ(engine.graph().num_vertices(), 8u);
  EXPECT_EQ(decompositions(), after_init)
      << "pendant attach is a closed-form delta, not a solve";
  EXPECT_DOUBLE_EQ(engine.scores()[pendant], 0.0);
  expect_scores_near(brandes_bc(engine.graph()), engine.scores());

  engine.detach_vertex(pendant);
  EXPECT_EQ(decompositions(), after_init)
      << "pendant detach is the closed-form inverse";
  EXPECT_DOUBLE_EQ(engine.scores()[pendant], 0.0);
  expect_scores_near(brandes_bc(engine.graph()), engine.scores());

  EXPECT_EQ(engine.stats().pendant_attaches, 1u);
  EXPECT_EQ(engine.stats().pendant_detaches, 1u);
  EXPECT_EQ(engine.stats().structural_resolves, 0u);

  // Detaching an interior vertex reshapes shortest paths — full re-solve.
  engine.detach_vertex(1);
  EXPECT_EQ(engine.stats().structural_resolves, 1u);
  EXPECT_DOUBLE_EQ(engine.scores()[1], 0.0);
  expect_scores_near(brandes_bc(engine.graph()), engine.scores());
  // Detaching it again is a no-op.
  engine.detach_vertex(1);
  EXPECT_EQ(engine.stats().structural_resolves, 1u);
}

// Satellite regression: directed graphs route every edge update through
// the conservative structural path (the block-cut machinery is
// undirected), and the scores still come out exact.
TEST(IncrementalBc, DirectedUpdatesAreConservativelyStructural) {
  const CsrGraph g =
      CsrGraph::from_edges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}, true);
  IncrementalBc engine(g);
  EXPECT_EQ(engine.insert_edge(0, 2), UpdateLocality::kStructural);
  EXPECT_EQ(engine.remove_edge(0, 2), UpdateLocality::kStructural);
  EXPECT_EQ(engine.stats().structural_resolves, 2u);
  EXPECT_EQ(engine.stats().local_inserts, 0u);
  EXPECT_EQ(engine.stats().local_deletes, 0u);
  expect_scores_near(brandes_bc(engine.graph()), engine.scores());
}

TEST(IncrementalBc, IllegalUpdatesThrowBeforeAnyStateChange) {
  IncrementalBc engine(k5_plus_triangle(), per_block_options());
  const std::vector<double> before = engine.scores();
  const CsrGraph graph_before = engine.graph();

  EXPECT_THROW(engine.insert_edge(0, 1), Error) << "edge already present";
  EXPECT_THROW(engine.remove_edge(1, 5), Error) << "edge not present";
  EXPECT_THROW(engine.insert_edge(2, 2), Error) << "self-loop";

  EXPECT_EQ(engine.graph(), graph_before);
  EXPECT_EQ(engine.scores(), before);
  EXPECT_EQ(engine.stats().structural_resolves, 0u);
}

// Randomized trajectories over the seeded corpus: mixed inserts, deletes,
// pendant attaches and detaches, scores diffed against a fresh static
// solve after EVERY step. Also pins the routing invariant: the engine
// re-decomposes exactly once per structural resolve, never for local
// updates or pendant closed forms.
class IncrementalTrajectory : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalTrajectory, MatchesStaticOracleAfterEveryStep) {
  const std::uint64_t seed = GetParam();
  for (const auto& gc : testing::graph_family(seed, /*tiny=*/true)) {
    if (gc.graph.num_vertices() < 4) continue;
    SCOPED_TRACE(gc.name);
    IncrementalBc engine(gc.graph);
    const std::uint64_t after_init = decompositions();

    Xoshiro256 rng(hash_combine64(seed, 0x7a7e));
    constexpr int kSteps = 10;
    for (int step = 0; step < kSteps; ++step) {
      switch (rng.bounded(8)) {
        case 0: {  // pendant attach
          const auto host =
              static_cast<Vertex>(rng.bounded(engine.graph().num_vertices()));
          engine.attach_pendant(host);
          break;
        }
        case 1: {  // detach (pendant closed form or interior re-solve)
          const auto v =
              static_cast<Vertex>(rng.bounded(engine.graph().num_vertices()));
          engine.detach_vertex(v);
          break;
        }
        default: {  // edge insert or delete, whatever is currently valid
          const std::vector<DynamicStep> steps =
              random_dynamic_steps(engine.graph(), 1, rng());
          if (steps.empty()) continue;
          if (steps[0].inserting) {
            engine.insert_edge(steps[0].u, steps[0].v);
          } else {
            engine.remove_edge(steps[0].u, steps[0].v);
          }
          break;
        }
      }
      expect_scores_near(brandes_bc(engine.graph()), engine.scores());
    }
    EXPECT_EQ(decompositions() - after_init,
              engine.stats().structural_resolves)
        << "only structural resolves may re-decompose";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalTrajectory,
                         ::testing::Values(7, 17, 27));

}  // namespace
}  // namespace apgre
