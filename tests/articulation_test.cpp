#include <gtest/gtest.h>

#include "bcc/articulation.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace apgre {
namespace {

std::vector<Vertex> ap_list(const CsrGraph& g) {
  std::vector<Vertex> out;
  const auto flags = articulation_points(g);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (flags[v]) out.push_back(v);
  }
  return out;
}

TEST(ArticulationPoints, PathInteriorVerticesOnly) {
  EXPECT_EQ(ap_list(path(5)), (std::vector<Vertex>{1, 2, 3}));
}

TEST(ArticulationPoints, CycleHasNone) {
  EXPECT_TRUE(ap_list(cycle(8)).empty());
}

TEST(ArticulationPoints, CompleteGraphHasNone) {
  EXPECT_TRUE(ap_list(complete(6)).empty());
}

TEST(ArticulationPoints, StarCentre) {
  EXPECT_EQ(ap_list(star(6)), (std::vector<Vertex>{0}));
}

TEST(ArticulationPoints, TreeInternalVertices) {
  // Binary tree on 7 vertices: internal vertices 0, 1, 2 cut their subtrees.
  EXPECT_EQ(ap_list(binary_tree(7)), (std::vector<Vertex>{0, 1, 2}));
}

TEST(ArticulationPoints, BarbellBridgeEndsAndPath) {
  // barbell(4, 1): cliques {0..3}, {5..8}, bridge vertex 4 between 3 and 5.
  EXPECT_EQ(ap_list(barbell(4, 1)), (std::vector<Vertex>{3, 4, 5}));
}

TEST(ArticulationPoints, PaperFigure3HasVertices2_3_6) {
  // Paper §2.2: "vertex 2, vertex 3 and vertex 6 are articulation points".
  EXPECT_EQ(ap_list(paper_figure3()), (std::vector<Vertex>{2, 3, 6}));
}

TEST(ArticulationPoints, DisconnectedComponentsAnalysedSeparately) {
  // Two paths: 0-1-2 and 3-4-5.
  const CsrGraph g =
      CsrGraph::undirected_from_edges(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  EXPECT_EQ(ap_list(g), (std::vector<Vertex>{1, 4}));
}

TEST(ArticulationPoints, K2HasNone) {
  EXPECT_TRUE(ap_list(path(2)).empty());
}

TEST(ArticulationPoints, DirectedGraphUsesUndirectedProjection) {
  // 0 -> 1 -> 2: undirected projection is a path with AP 1.
  const CsrGraph g = CsrGraph::from_edges(3, {{0, 1}, {1, 2}}, true);
  EXPECT_EQ(ap_list(g), (std::vector<Vertex>{1}));
}

// --- Property sweep: iterative Tarjan vs brute-force vertex removal ------

class ArticulationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArticulationSweep, MatchesBruteForceOnRandomGraphs) {
  for (const auto& gc : testing::graph_family(GetParam(), /*tiny=*/true)) {
    SCOPED_TRACE(gc.name);
    EXPECT_EQ(articulation_points(gc.graph),
              articulation_points_bruteforce(gc.graph));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArticulationSweep,
                         ::testing::Values(1, 11, 21, 31, 41, 51, 61, 71));

}  // namespace
}  // namespace apgre
