#include <gtest/gtest.h>

#include <numeric>

#include "bc/brandes.hpp"
#include "bc/edge_bc.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace apgre {
namespace {

TEST(EdgeBc, PathArcCarriesCrossingPairs) {
  // Arc (i -> i+1) of an n-path carries every ordered pair (s <= i, t > i).
  const CsrGraph g = path(6);
  const auto scores = edge_betweenness_bc(g);
  for (Vertex i = 0; i + 1 < 6; ++i) {
    const double expected = static_cast<double>((i + 1) * (5 - i));
    EXPECT_DOUBLE_EQ(arc_score(g, scores, i, i + 1), expected);
    EXPECT_DOUBLE_EQ(arc_score(g, scores, i + 1, i), expected);
  }
}

TEST(EdgeBc, StarArcs) {
  // Arc (0 -> leaf v) carries pairs (s, v) for every s != v: n-1 of them.
  const CsrGraph g = star(7);
  const auto scores = edge_betweenness_bc(g);
  for (Vertex v = 1; v < 7; ++v) {
    EXPECT_DOUBLE_EQ(arc_score(g, scores, 0, v), 6.0);
    EXPECT_DOUBLE_EQ(arc_score(g, scores, v, 0), 6.0);
  }
}

TEST(EdgeBc, DiamondSplitsAcrossParallelRoutes) {
  const CsrGraph g = CsrGraph::from_edges(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}}, true);
  const auto scores = edge_betweenness_bc(g);
  // Pair (0,3) splits: each route carries 1/2; arcs also carry their own
  // endpoints' pairs (0,1), (1,3), ...
  EXPECT_DOUBLE_EQ(arc_score(g, scores, 0, 1), 1.5);
  EXPECT_DOUBLE_EQ(arc_score(g, scores, 1, 3), 1.5);
}

TEST(EdgeBc, TotalMassEqualsSumOfDistances) {
  // Each ordered pair (s, t) spreads exactly dist(s, t) units over arcs.
  for (const auto& gc : testing::graph_family(91, /*tiny=*/true)) {
    SCOPED_TRACE(gc.name);
    const auto scores = edge_betweenness_bc(gc.graph);
    const double total = std::accumulate(scores.begin(), scores.end(), 0.0);
    double distance_sum = 0.0;
    for (Vertex s = 0; s < gc.graph.num_vertices(); ++s) {
      for (std::uint32_t d : bfs_distances(gc.graph, s)) {
        if (d != kUnreachable) distance_sum += d;
      }
    }
    EXPECT_NEAR(total, distance_sum, 1e-6 + 1e-9 * distance_sum);
  }
}

TEST(EdgeBc, OutgoingArcsSumToVertexBcPlusReach) {
  // sum of EBC over v's out-arcs counts every pair whose path leaves v:
  // interior pairs (= BC(v)) plus pairs with s == v (= #reachable targets).
  for (const auto& gc : testing::graph_family(92, /*tiny=*/true)) {
    SCOPED_TRACE(gc.name);
    const auto scores = edge_betweenness_bc(gc.graph);
    const auto bc = brandes_bc(gc.graph);
    for (Vertex v = 0; v < gc.graph.num_vertices(); ++v) {
      double out_sum = 0.0;
      const EdgeId base = gc.graph.out_offset(v);
      for (std::size_t j = 0; j < gc.graph.out_degree(v); ++j) {
        out_sum += scores[base + j];
      }
      const double expected = bc[v] + static_cast<double>(reachable_count(gc.graph, v));
      EXPECT_NEAR(out_sum, expected, 1e-6 + 1e-9 * expected) << "vertex " << v;
    }
  }
}

TEST(EdgeBc, TopEdgesFindBridges) {
  // In a barbell, the bridge path arcs dominate every clique arc.
  const CsrGraph g = barbell(6, 2);
  const auto scores = edge_betweenness_bc(g);
  const auto top = top_edges(g, scores, 3);
  ASSERT_EQ(top.size(), 3u);
  // Bridge chain: 5-6, 6-7, 7-8 (clique ends 5 and 8).
  for (const auto& [edge, score] : top) {
    EXPECT_GE(edge.src, 5u);
    EXPECT_LE(edge.dst, 8u);
    EXPECT_GT(score, 0.0);
  }
}

TEST(EdgeBc, TopEdgesReportsUndirectedEdgesOnce) {
  const CsrGraph g = cycle(5);
  const auto scores = edge_betweenness_bc(g);
  const auto top = top_edges(g, scores, 100);
  EXPECT_EQ(top.size(), 5u);  // 5 undirected edges, not 10 arcs
  for (const auto& [edge, score] : top) EXPECT_LT(edge.src, edge.dst);
}

TEST(EdgeBc, DirectedTopEdgesKeepArcs) {
  const CsrGraph g = CsrGraph::from_edges(3, {{0, 1}, {1, 2}}, true);
  const auto top = top_edges(g, edge_betweenness_bc(g), 100);
  EXPECT_EQ(top.size(), 2u);
}

TEST(EdgeBc, EmptyGraph) {
  EXPECT_TRUE(edge_betweenness_bc(CsrGraph::from_edges(0, {}, false)).empty());
}

}  // namespace
}  // namespace apgre
