#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "graph/generators.hpp"

namespace apgre {
namespace {

TEST(BfsDistances, PathDistancesAreLinear) {
  const auto dist = bfs_distances(path(6), 0);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(dist[v], v);
}

TEST(BfsDistances, UnreachableVerticesAreMarked) {
  const CsrGraph g = CsrGraph::from_edges(4, {{0, 1}, {2, 3}}, true);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(BfsDistances, DirectedFollowsOutArcsOnly) {
  const CsrGraph g = CsrGraph::from_edges(3, {{0, 1}, {2, 1}}, true);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
}

TEST(BfsDistances, MultiSourceTakesNearest) {
  const auto dist = bfs_distances(path(7), {0, 6});
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[3], 3u);
  EXPECT_EQ(dist[5], 1u);
  EXPECT_EQ(dist[6], 0u);
}

TEST(ReachableCount, ExcludesSource) {
  EXPECT_EQ(reachable_count(cycle(8), 0), 7u);
  const CsrGraph g = CsrGraph::from_edges(4, {{0, 1}, {1, 2}}, true);
  EXPECT_EQ(reachable_count(g, 0), 2u);
  EXPECT_EQ(reachable_count(g, 2), 0u);
}

TEST(Eccentricity, KnownShapes) {
  EXPECT_EQ(eccentricity(path(7), 0), 6u);
  EXPECT_EQ(eccentricity(path(7), 3), 3u);
  EXPECT_EQ(eccentricity(star(9), 0), 1u);
  EXPECT_EQ(eccentricity(star(9), 1), 2u);
}

TEST(PseudoDiameter, ExactOnTreesAndPaths) {
  EXPECT_EQ(pseudo_diameter(path(10), 4), 9u);
  EXPECT_EQ(pseudo_diameter(binary_tree(15), 0), 6u);  // leaf-to-leaf
  EXPECT_EQ(pseudo_diameter(star(20), 5), 2u);
}

TEST(PseudoDiameter, LowerBoundsCycle) {
  // True diameter of C10 is 5; double sweep must reach it.
  EXPECT_EQ(pseudo_diameter(cycle(10), 0), 5u);
}

TEST(PseudoDiameter, EmptyAndTrivial) {
  EXPECT_EQ(pseudo_diameter(CsrGraph::from_edges(0, {}, false)), 0u);
  EXPECT_EQ(pseudo_diameter(CsrGraph::from_edges(1, {}, false), 0), 0u);
}

}  // namespace
}  // namespace apgre
