// Shared helpers for the APGRE test suite: BC score comparison with mixed
// absolute/relative tolerance and the seeded random-graph corpus the
// property sweeps iterate over (shared with the check subsystem and the
// apgre_diff driver via check/corpus.hpp).
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/corpus.hpp"
#include "check/oracle.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"  // transitively expected by older tests
#include "graph/transform.hpp"

namespace apgre::testing {

/// Element-wise comparison of BC score vectors. Accumulation order differs
/// between algorithms, so exact equality is not expected. On failure the
/// message leads with the worst-offending vertex and both vectors' norms,
/// so a diverging algorithm is localisable from the log alone.
inline void expect_scores_near(const std::vector<double>& expected,
                               const std::vector<double>& actual,
                               double rel = 1e-7, double abs = 1e-6) {
  ASSERT_EQ(expected.size(), actual.size());
  const ScoreComparison cmp = compare_scores(expected, actual, rel, abs);
  EXPECT_TRUE(cmp.ok) << cmp.num_violations << " of " << expected.size()
                      << " vertices over tolerance; worst vertex "
                      << cmp.worst_vertex << ": expected "
                      << cmp.expected_score << ", actual " << cmp.actual_score
                      << " (divergence " << cmp.max_divergence
                      << ", tolerance excess " << cmp.worst_excess
                      << "); |expected|_2 = " << cmp.expected_norm
                      << ", |actual|_2 = " << cmp.actual_norm;
}

/// Backwards-compatible aliases: the corpus moved into the library so the
/// check subsystem and apgre_diff share it (check/corpus.hpp).
using GraphCase = CorpusCase;

inline std::vector<GraphCase> graph_family(std::uint64_t seed, bool tiny) {
  return graph_corpus(seed, tiny);
}

}  // namespace apgre::testing
