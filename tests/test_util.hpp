// Shared helpers for the APGRE test suite: BC score comparison with mixed
// absolute/relative tolerance and a seeded random-graph factory covering
// the structural classes the property sweeps iterate over.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"

namespace apgre::testing {

/// Element-wise comparison of BC score vectors. Accumulation order differs
/// between algorithms, so exact equality is not expected.
inline void expect_scores_near(const std::vector<double>& expected,
                               const std::vector<double>& actual,
                               double rel = 1e-7, double abs = 1e-6) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t v = 0; v < expected.size(); ++v) {
    const double tolerance =
        abs + rel * std::max(std::fabs(expected[v]), std::fabs(actual[v]));
    EXPECT_NEAR(expected[v], actual[v], tolerance) << "vertex " << v;
  }
}

/// The random-graph classes the property sweeps cover. Each case is a
/// (shape, size bucket, directedness, pendant decoration) combination.
struct GraphCase {
  std::string name;
  CsrGraph graph;
};

/// Deterministic family of mixed graphs keyed by seed. Sizes stay small
/// enough for the O(V^3) oracle when `tiny` is true.
inline std::vector<GraphCase> graph_family(std::uint64_t seed, bool tiny) {
  const Vertex n = tiny ? 60 : 600;
  const Vertex pendants = tiny ? 15 : 150;
  std::vector<GraphCase> cases;
  cases.push_back({"erdos_undirected",
                   erdos_renyi(n, static_cast<EdgeId>(2) * n, false, seed)});
  cases.push_back({"erdos_directed",
                   erdos_renyi(n, static_cast<EdgeId>(2) * n, true, seed + 1)});
  cases.push_back({"erdos_sparse_undirected",
                   erdos_renyi(n, n, false, seed + 2)});
  cases.push_back({"erdos_sparse_directed",
                   erdos_renyi(n, n, true, seed + 3)});
  cases.push_back({"barabasi", barabasi_albert(n, 2, seed + 4)});
  cases.push_back(
      {"barabasi_pendants",
       attach_pendants(barabasi_albert(n, 2, seed + 5), pendants, seed + 6)});
  cases.push_back({"tree", random_tree(n, seed + 7)});
  cases.push_back({"caveman", caveman(tiny ? 4 : 20, tiny ? 8 : 12, seed + 8)});
  cases.push_back({"grid", road_grid(tiny ? 6 : 20, tiny ? 8 : 25, 0.2, 0.1,
                                     seed + 9)});
  cases.push_back(
      {"rmat_directed",
       rmat(tiny ? 5 : 9, 4, 0.45, 0.2, 0.2, /*symmetric=*/false, seed + 10)});
  cases.push_back(
      {"rmat_pendants_directed",
       attach_pendants(rmat(tiny ? 5 : 9, 4, 0.45, 0.2, 0.2, false, seed + 11),
                       pendants, seed + 12)});
  cases.push_back({"barbell", barbell(tiny ? 6 : 20, tiny ? 4 : 10)});
  cases.push_back({"satellites",
                   attach_communities(erdos_renyi(n / 2, n, false, seed + 13),
                                      tiny ? 4 : 30, tiny ? 5 : 12, seed + 14)});
  cases.push_back(
      {"satellites_directed",
       attach_communities(rmat(tiny ? 5 : 8, 4, 0.45, 0.2, 0.2, false, seed + 15),
                          tiny ? 4 : 20, tiny ? 5 : 10, seed + 16)});
  cases.push_back({"tendrils",
                   attach_chains(erdos_renyi(n / 2, n, false, seed + 17),
                                 tiny ? 5 : 40, tiny ? 3 : 5, seed + 18)});
  return cases;
}

}  // namespace apgre::testing
