// The core correctness suite: APGRE must reproduce Brandes' exact scores on
// every graph, for every option combination — that is the paper's Theorem
// 1-3 claim, and the property these sweeps exercise.
#include <gtest/gtest.h>

#include "bc/apgre.hpp"
#include "bc/brandes.hpp"
#include "bc/naive.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"
#include "support/parallel.hpp"
#include "test_util.hpp"

namespace apgre {
namespace {

void expect_apgre_matches_brandes(const CsrGraph& g, const ApgreOptions& opts = {}) {
  testing::expect_scores_near(brandes_bc(g), apgre_bc(g, opts));
}

TEST(ApgreBc, Shapes) {
  expect_apgre_matches_brandes(path(9));
  expect_apgre_matches_brandes(cycle(11));
  expect_apgre_matches_brandes(star(14));
  expect_apgre_matches_brandes(complete(7));
  expect_apgre_matches_brandes(binary_tree(31));
  expect_apgre_matches_brandes(barbell(6, 3));
}

TEST(ApgreBc, TrivialGraphs) {
  EXPECT_TRUE(apgre_bc(CsrGraph::from_edges(0, {}, false)).empty());
  const auto single = apgre_bc(CsrGraph::from_edges(1, {}, false));
  ASSERT_EQ(single.size(), 1u);
  EXPECT_DOUBLE_EQ(single[0], 0.0);
  expect_apgre_matches_brandes(path(2));  // K2: one pendant, one root
  expect_apgre_matches_brandes(path(3));
}

TEST(ApgreBc, PaperFigure3ExactScores) {
  const CsrGraph g = paper_figure3();
  testing::expect_scores_near(naive_bc(g), apgre_bc(g));
  // Decomposition-sensitive: also check with the three blocks kept apart.
  ApgreOptions opts;
  opts.partition.merge_threshold = 3;
  testing::expect_scores_near(naive_bc(g), apgre_bc(g, opts));
}

TEST(ApgreBc, DisconnectedComponents) {
  const CsrGraph g = CsrGraph::undirected_from_edges(
      12, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {4, 5}, {5, 6}, {8, 9}, {9, 10}, {10, 8}, {10, 11}});
  expect_apgre_matches_brandes(g);
}

TEST(ApgreBc, PendantChains) {
  // Chains force the pendant-of-pendant-host interaction: only the tip of
  // each chain is removable.
  const CsrGraph g = CsrGraph::undirected_from_edges(
      8, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {3, 4}, {4, 5}, {5, 6}, {5, 7}});
  expect_apgre_matches_brandes(g);
}

TEST(ApgreBc, PendantOnBoundaryArticulationPoint) {
  // Regression shape for the alpha(s) self-term correction (DESIGN.md §2):
  // two triangles joined at an AP that also hosts a pendant.
  const CsrGraph g = CsrGraph::undirected_from_edges(
      8, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}, {2, 7}});
  ApgreOptions opts;
  opts.partition.merge_threshold = 2;  // keep the triangles in separate sub-graphs
  testing::expect_scores_near(naive_bc(g), apgre_bc(g, opts));
}

TEST(ApgreBc, DirectedPendantsIntoArticulationPoint) {
  // The paper's total-redundancy setup: in-degree-0 pendants feeding an AP.
  EdgeList edges{{0, 2}, {1, 2},                          // pendants
                 {2, 3}, {3, 2}, {3, 4}, {4, 3}, {4, 2}, {2, 4},  // block
                 {4, 5}, {5, 4}, {5, 6}, {6, 5}, {6, 4}, {4, 6}};
  const CsrGraph g = CsrGraph::from_edges(7, edges, true);
  ApgreOptions opts;
  opts.partition.merge_threshold = 2;
  testing::expect_scores_near(naive_bc(g), apgre_bc(g, opts));
}

TEST(ApgreBc, SubgraphKernelMatchesWholeGraphOnBiconnected) {
  // A biconnected graph decomposes into one sub-graph with no boundary APs
  // and no pendants; the kernel must then equal plain Brandes.
  const CsrGraph g = cycle(12);
  const Decomposition dec = decompose(g);
  ASSERT_EQ(dec.subgraphs.size(), 1u);
  const auto serial = apgre_subgraph_bc(dec.subgraphs[0], /*parallel_inner=*/false);
  const auto parallel = apgre_subgraph_bc(dec.subgraphs[0], /*parallel_inner=*/true);
  testing::expect_scores_near(brandes_bc(g), serial);
  testing::expect_scores_near(serial, parallel);
}

TEST(ApgreBc, SerialAndParallelKernelsAgree) {
  const CsrGraph g = attach_pendants(barabasi_albert(150, 2, 4), 50, 5);
  const Decomposition dec = decompose(g);
  for (const Subgraph& sg : dec.subgraphs) {
    testing::expect_scores_near(apgre_subgraph_bc(sg, false),
                                apgre_subgraph_bc(sg, true));
  }
}

// Differential check for the scheduler-native level-synchronous kernel
// (the one the dedicated large-sub-graph tasks dispatch): it must match the
// serial oracle kernel on every sub-graph, with and without the
// direction-optimising forward phase, on a real multi-worker scheduler.
TEST(ApgreBc, ScheduledKernelMatchesSerialOracle) {
  const CsrGraph g = attach_pendants(barabasi_albert(200, 3, 11), 50, 12);
  const Decomposition dec = decompose(g);
  SchedulerOptions sched;
  sched.threads = 4;  // private multi-worker pool even on 1-core machines
  for (const Subgraph& sg : dec.subgraphs) {
    testing::expect_scores_near(
        apgre_subgraph_bc(sg, /*parallel_inner=*/false),
        apgre_subgraph_bc_scheduled(sg, /*hybrid_inner=*/false, sched));
    testing::expect_scores_near(
        apgre_subgraph_bc(sg, /*parallel_inner=*/false),
        apgre_subgraph_bc_scheduled(sg, /*hybrid_inner=*/true, sched));
  }
}

// Full APGRE with every sub-graph forced onto the dedicated scheduler-native
// path (cutoffs zeroed, multi-worker pool) stays exact against Brandes.
TEST(ApgreBc, ForcedScheduledKernelPathStillExact) {
  ApgreOptions opts;
  opts.fine_grain_min_arcs = 0;
  opts.fine_grain_fraction = 0.0;
  SchedulerOptions sched;
  sched.threads = 4;
  const CsrGraph g = attach_pendants(caveman(5, 6, 9), 15, 2);
  const std::vector<double> expected = brandes_bc(g);
  const std::vector<double> actual = apgre_bc(g, opts, nullptr, sched);
  testing::expect_scores_near(expected, actual);
}

TEST(ApgreBc, StatsAreFilled) {
  const CsrGraph g = attach_pendants(caveman(6, 8, 3), 20, 4);
  ApgreStats stats;
  apgre_bc(g, {}, &stats);
  EXPECT_GT(stats.num_subgraphs, 0u);
  EXPECT_GT(stats.num_articulation_points, 0u);
  EXPECT_EQ(stats.num_pendants_removed, 20u);
  EXPECT_GT(stats.top_arcs, 0u);
  EXPECT_GE(stats.total_seconds,
            stats.partition_seconds);  // total includes all phases
  EXPECT_GE(stats.partial_redundancy, 0.0);
  EXPECT_GT(stats.total_redundancy, 0.0);
}

TEST(ApgreBc, ForcedFineGrainedPathStillExact) {
  ApgreOptions opts;
  opts.fine_grain_min_arcs = 0;
  opts.fine_grain_fraction = 0.0;  // every sub-graph takes the parallel kernel
  const CsrGraph g = attach_pendants(caveman(5, 6, 9), 15, 2);
  expect_apgre_matches_brandes(g, opts);
}

TEST(ApgreBc, HybridInnerKernelStillExact) {
  // Direction-optimising forward phase inside the fine-grained kernel.
  ThreadBudget budget(2);  // engage the parallel path
  ApgreOptions opts;
  opts.fine_grain_min_arcs = 0;
  opts.fine_grain_fraction = 0.0;
  opts.hybrid_inner = true;
  for (const auto& gc : testing::graph_family(63, /*tiny=*/true)) {
    SCOPED_TRACE(gc.name);
    expect_apgre_matches_brandes(gc.graph, opts);
  }
}

TEST(ApgreBc, HybridSubgraphKernelMatchesSerial) {
  // Dense sub-graphs trip the bottom-up thresholds; both kernels agree.
  const CsrGraph g = attach_pendants(barabasi_albert(300, 6, 5), 60, 6);
  const Decomposition dec = decompose(g);
  for (const Subgraph& sg : dec.subgraphs) {
    testing::expect_scores_near(
        apgre_subgraph_bc(sg, /*parallel_inner=*/false),
        apgre_subgraph_bc(sg, /*parallel_inner=*/true, /*hybrid_inner=*/true));
  }
}

TEST(ApgreBc, GammaDisabledStillExact) {
  ApgreOptions opts;
  opts.partition.total_redundancy = false;
  const CsrGraph g = attach_pendants(barabasi_albert(120, 2, 6), 60, 7);
  expect_apgre_matches_brandes(g, opts);
}

TEST(ApgreBc, OversubscribedThreadsStillExact) {
  ThreadBudget budget(4);
  ApgreOptions opts;
  opts.fine_grain_min_arcs = 0;
  opts.fine_grain_fraction = 0.0;
  const CsrGraph g = testing::graph_family(31, /*tiny=*/false)[5].graph;
  expect_apgre_matches_brandes(g, opts);
}

// ---- Property sweeps ------------------------------------------------------

class ApgreSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, Vertex, bool>> {};

TEST_P(ApgreSweep, MatchesBrandesOnRandomGraphs) {
  const auto [seed, threshold, total_redundancy] = GetParam();
  ApgreOptions opts;
  opts.partition.merge_threshold = threshold;
  opts.partition.total_redundancy = total_redundancy;
  for (const auto& gc : testing::graph_family(seed, /*tiny=*/true)) {
    SCOPED_TRACE(gc.name);
    expect_apgre_matches_brandes(gc.graph, opts);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ApgreSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(7, 17, 27, 37),
                       ::testing::Values<Vertex>(2, 8, 64),
                       ::testing::Bool()));

class ApgreReachSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApgreReachSweep, BothReachMethodsExactOnUndirected) {
  for (const auto& gc : testing::graph_family(GetParam(), /*tiny=*/true)) {
    if (gc.graph.directed()) continue;
    SCOPED_TRACE(gc.name);
    for (ReachMethod method : {ReachMethod::kBfs, ReachMethod::kTreeDp}) {
      ApgreOptions opts;
      opts.partition.reach = method;
      expect_apgre_matches_brandes(gc.graph, opts);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApgreReachSweep, ::testing::Values(8, 18, 28));

/// Larger graphs (beyond the naive oracle) against Brandes.
class ApgreLargeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApgreLargeSweep, MatchesBrandesOnMediumGraphs) {
  for (const auto& gc : testing::graph_family(GetParam(), /*tiny=*/false)) {
    SCOPED_TRACE(gc.name);
    expect_apgre_matches_brandes(gc.graph);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApgreLargeSweep, ::testing::Values(9, 19));

}  // namespace
}  // namespace apgre
