#include <gtest/gtest.h>

#include <sstream>

#include "bc/brandes.hpp"
#include "graph/generators.hpp"
#include "graph/io_graphml.hpp"
#include "support/error.hpp"

namespace apgre {
namespace {

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(GraphmlIo, WritesNodesAndUndirectedEdgesOnce) {
  const CsrGraph g = cycle(5);
  std::ostringstream out;
  write_graphml(out, g);
  const std::string xml = out.str();
  EXPECT_EQ(count_occurrences(xml, "<node id="), 5u);
  EXPECT_EQ(count_occurrences(xml, "<edge id="), 5u);  // not 10 arcs
  EXPECT_NE(xml.find("edgedefault=\"undirected\""), std::string::npos);
}

TEST(GraphmlIo, DirectedKeepsEveryArc) {
  const CsrGraph g = CsrGraph::from_edges(3, {{0, 1}, {1, 0}, {1, 2}}, true);
  std::ostringstream out;
  write_graphml(out, g);
  const std::string xml = out.str();
  EXPECT_EQ(count_occurrences(xml, "<edge id="), 3u);
  EXPECT_NE(xml.find("edgedefault=\"directed\""), std::string::npos);
}

TEST(GraphmlIo, EmbedsScoreAttributes) {
  const CsrGraph g = star(5);
  const auto bc = brandes_bc(g);
  std::ostringstream out;
  write_graphml(out, g, {{"betweenness", &bc}});
  const std::string xml = out.str();
  EXPECT_NE(xml.find("attr.name=\"betweenness\""), std::string::npos);
  EXPECT_EQ(count_occurrences(xml, "<data key=\"d0\">"), 5u);
  EXPECT_NE(xml.find(">12<"), std::string::npos);  // centre: (n-1)(n-2) = 12
}

TEST(GraphmlIo, MultipleAttributes) {
  const CsrGraph g = path(4);
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{4, 3, 2, 1};
  std::ostringstream out;
  write_graphml(out, g, {{"alpha", &a}, {"beta", &b}});
  const std::string xml = out.str();
  EXPECT_EQ(count_occurrences(xml, "<key id="), 2u);
  EXPECT_EQ(count_occurrences(xml, "<data key=\"d1\">"), 4u);
}

TEST(GraphmlIo, RejectsBadAttributeShapes) {
  const CsrGraph g = path(4);
  const std::vector<double> short_values{1.0};
  std::ostringstream out;
  EXPECT_THROW(write_graphml(out, g, {{"x", &short_values}}), Error);
  const std::vector<double> ok(4, 0.0);
  EXPECT_THROW(write_graphml(out, g, {{"bad name!", &ok}}), Error);
  EXPECT_THROW(write_graphml(out, g, {{"", &ok}}), Error);
}

TEST(GraphmlIo, EmptyGraphIsValidDocument) {
  const CsrGraph g = CsrGraph::from_edges(0, {}, false);
  std::ostringstream out;
  write_graphml(out, g);
  EXPECT_NE(out.str().find("</graphml>"), std::string::npos);

  std::istringstream in(out.str());
  const CsrGraph parsed = read_graphml(in);
  EXPECT_EQ(parsed.num_vertices(), 0u);
  EXPECT_EQ(parsed.num_arcs(), 0u);
}

TEST(GraphmlIo, WriteReadRoundTripPreservesStructure) {
  for (const bool directed : {false, true}) {
    const CsrGraph g = erdos_renyi(25, 60, directed, 9);
    std::ostringstream out;
    write_graphml(out, g);
    std::istringstream in(out.str());
    const CsrGraph parsed = read_graphml(in, "roundtrip");

    ASSERT_EQ(parsed.num_vertices(), g.num_vertices());
    ASSERT_EQ(parsed.directed(), g.directed());
    ASSERT_EQ(parsed.num_arcs(), g.num_arcs());
    // The writer emits nodes n0..n{V-1} in vertex order, so the reader's
    // declaration-order numbering reproduces the ids exactly — betweenness
    // on the reparsed graph must match the original to the last bit.
    EXPECT_EQ(brandes_bc(parsed), brandes_bc(g));
  }
}

TEST(GraphmlIo, RoundTripKeepsStructureWithAttributesPresent) {
  const CsrGraph g = star(6);
  const auto bc = brandes_bc(g);
  std::ostringstream out;
  write_graphml(out, g, {{"betweenness", &bc}});
  std::istringstream in(out.str());
  const CsrGraph parsed = read_graphml(in);  // data elements are skipped
  EXPECT_EQ(parsed.num_vertices(), g.num_vertices());
  EXPECT_EQ(parsed.num_arcs(), g.num_arcs());
}

TEST(GraphmlIo, ReaderAcceptsArbitraryNodeIdStrings) {
  std::istringstream in(
      "<graphml><graph edgedefault=\"directed\">"
      "<node id=\"alice\"/><node id=\"bob\"/><node id=\"carol\"/>"
      "<edge source=\"alice\" target=\"bob\"/>"
      "<edge source=\"carol\" target=\"alice\"/>"
      "</graph></graphml>");
  const CsrGraph g = read_graphml(in);
  EXPECT_TRUE(g.directed());
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_arcs(), 2u);
  // Declaration order: alice=0, bob=1, carol=2.
  EXPECT_EQ(g.out_degree(2), 1u);
  EXPECT_EQ(g.out_degree(1), 0u);
}

}  // namespace
}  // namespace apgre
