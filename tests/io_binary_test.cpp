#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "graph/io_binary.hpp"
#include "graph/transform.hpp"
#include "graph/weighted.hpp"
#include "support/error.hpp"

namespace apgre {
namespace {

TEST(BinaryIo, RoundTripsUndirected) {
  const CsrGraph g = attach_pendants(barabasi_albert(200, 3, 1), 50, 2);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buffer, g);
  EXPECT_EQ(read_binary(buffer), g);
}

TEST(BinaryIo, RoundTripsDirected) {
  const CsrGraph g = rmat(8, 6, 0.45, 0.2, 0.2, false, 3);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buffer, g);
  const CsrGraph back = read_binary(buffer);
  EXPECT_TRUE(back.directed());
  EXPECT_EQ(back, g);
}

TEST(BinaryIo, RoundTripsEmptyGraph) {
  const CsrGraph g = CsrGraph::from_edges(0, {}, false);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buffer, g);
  EXPECT_EQ(read_binary(buffer), g);
}

TEST(BinaryIo, RoundTripsWeighted) {
  const WeightedCsrGraph g = with_random_weights(caveman(4, 5, 4), 1, 9, 5);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_binary_weighted(buffer, g);
  EXPECT_EQ(read_binary_weighted(buffer), g);
}

TEST(BinaryIo, RejectsWrongMagic) {
  std::stringstream buffer("not a graph at all, definitely");
  EXPECT_THROW(read_binary(buffer), Error);
}

TEST(BinaryIo, RejectsTruncatedPayload) {
  const CsrGraph g = cycle(10);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buffer, g);
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream half(bytes, std::ios::in | std::ios::binary);
  EXPECT_THROW(read_binary(half), Error);
}

TEST(BinaryIo, RejectsWeightednessMismatch) {
  const CsrGraph g = cycle(6);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buffer, g);
  EXPECT_THROW(read_binary_weighted(buffer), Error);

  const WeightedCsrGraph wg = with_unit_weights(cycle(6));
  std::stringstream wbuffer(std::ios::in | std::ios::out | std::ios::binary);
  write_binary_weighted(wbuffer, wg);
  EXPECT_THROW(read_binary(wbuffer), Error);
}

TEST(BinaryIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/apgre_binary_test.apgr";
  const CsrGraph g = road_grid(8, 8, 0.3, 0.1, 9);
  write_binary_file(path, g);
  EXPECT_EQ(read_binary_file(path), g);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace apgre
