#include <gtest/gtest.h>

#include "bc/bounded.hpp"
#include "bc/brandes.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace apgre {
namespace {

/// Oracle: naive BC restricted to pairs within `radius`.
std::vector<double> bounded_oracle(const CsrGraph& g, std::uint32_t radius) {
  const Vertex n = g.num_vertices();
  std::vector<std::vector<std::uint32_t>> dist;
  std::vector<std::vector<double>> sigma(n, std::vector<double>(n, 0.0));
  for (Vertex s = 0; s < n; ++s) {
    dist.push_back(bfs_distances(g, s));
    std::vector<Vertex> queue{s};
    sigma[s][s] = 1.0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const Vertex v = queue[head];
      for (Vertex w : g.out_neighbors(v)) {
        if (dist[s][w] == dist[s][v] + 1) {
          if (sigma[s][w] == 0.0) queue.push_back(w);
          sigma[s][w] += sigma[s][v];
        }
      }
    }
  }
  std::vector<double> bc(n, 0.0);
  for (Vertex s = 0; s < n; ++s) {
    for (Vertex t = 0; t < n; ++t) {
      if (s == t || dist[s][t] == kUnreachable || dist[s][t] > radius) continue;
      for (Vertex v = 0; v < n; ++v) {
        if (v == s || v == t) continue;
        if (dist[s][v] == kUnreachable || dist[v][t] == kUnreachable) continue;
        if (dist[s][v] + dist[v][t] != dist[s][t]) continue;
        bc[v] += sigma[s][v] * sigma[v][t] / sigma[s][t];
      }
    }
  }
  return bc;
}

TEST(BoundedBc, RadiusZeroAndOneAreZero) {
  const CsrGraph g = path(6);
  for (double v : bounded_bc(g, 0)) EXPECT_DOUBLE_EQ(v, 0.0);
  // Radius 1: no pair has an interior vertex.
  for (double v : bounded_bc(g, 1)) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(BoundedBc, RadiusTwoCountsWedges) {
  // Path: pairs at distance exactly 2 contribute 1 to their middle.
  const auto bc = bounded_bc(path(6), 2);
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[1], 2.0);  // (0,2) and (2,0)
  EXPECT_DOUBLE_EQ(bc[2], 2.0);
}

TEST(BoundedBc, LargeRadiusEqualsExact) {
  for (const auto& gc : testing::graph_family(201, /*tiny=*/true)) {
    SCOPED_TRACE(gc.name);
    testing::expect_scores_near(brandes_bc(gc.graph),
                                bounded_bc(gc.graph, 1u << 20));
  }
}

TEST(BoundedBc, MonotonicInRadius) {
  const CsrGraph g = barabasi_albert(120, 2, 5);
  const auto r2 = bounded_bc(g, 2);
  const auto r4 = bounded_bc(g, 4);
  const auto r8 = bounded_bc(g, 8);
  for (Vertex v = 0; v < 120; ++v) {
    EXPECT_LE(r2[v], r4[v] + 1e-9);
    EXPECT_LE(r4[v], r8[v] + 1e-9);
  }
}

class BoundedSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t>> {};

TEST_P(BoundedSweep, MatchesTruncatedOracle) {
  const auto [seed, radius] = GetParam();
  for (const auto& gc : testing::graph_family(seed, /*tiny=*/true)) {
    SCOPED_TRACE(gc.name);
    testing::expect_scores_near(bounded_oracle(gc.graph, radius),
                                bounded_bc(gc.graph, radius));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BoundedSweep,
                         ::testing::Combine(::testing::Values<std::uint64_t>(211, 221),
                                            ::testing::Values<std::uint32_t>(2, 3, 5)));

}  // namespace
}  // namespace apgre
