#include <gtest/gtest.h>

#include <set>

#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "graph/scc.hpp"
#include "support/prng.hpp"
#include "test_util.hpp"

namespace apgre {
namespace {

/// Oracle: u, v strongly connected iff mutually reachable.
bool mutually_reachable(const CsrGraph& g, Vertex u, Vertex v) {
  if (u == v) return true;
  const auto from_u = bfs_distances(g, u);
  const auto from_v = bfs_distances(g, v);
  return from_u[v] != kUnreachable && from_v[u] != kUnreachable;
}

TEST(Scc, DirectedCycleIsOneComponent) {
  EdgeList arcs{{0, 1}, {1, 2}, {2, 0}};
  const CsrGraph g = CsrGraph::from_edges(3, arcs, true);
  const SccLabels labels = strongly_connected_components(g);
  EXPECT_EQ(labels.num_components, 1u);
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(Scc, DirectedChainIsAllSingletons) {
  const CsrGraph g = CsrGraph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}}, true);
  const SccLabels labels = strongly_connected_components(g);
  EXPECT_EQ(labels.num_components, 4u);
  EXPECT_FALSE(is_strongly_connected(g));
}

TEST(Scc, ReverseTopologicalNumbering) {
  // 0 -> 1: any condensation arc C(0) -> C(1) must satisfy id(C0) > id(C1).
  const CsrGraph g = CsrGraph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}}, true);
  const SccLabels labels = strongly_connected_components(g);
  for (const Edge& e : g.arcs()) {
    EXPECT_GT(labels.component[e.src], labels.component[e.dst]);
  }
}

TEST(Scc, TwoCyclesJoinedByOneArc) {
  EdgeList arcs{{0, 1}, {1, 0}, {2, 3}, {3, 2}, {1, 2}};
  const CsrGraph g = CsrGraph::from_edges(4, arcs, true);
  const SccLabels labels = strongly_connected_components(g);
  EXPECT_EQ(labels.num_components, 2u);
  EXPECT_EQ(labels.component[0], labels.component[1]);
  EXPECT_EQ(labels.component[2], labels.component[3]);
  EXPECT_NE(labels.component[0], labels.component[2]);
}

TEST(Scc, UndirectedComponentsAreSccs) {
  const CsrGraph g = CsrGraph::undirected_from_edges(5, {{0, 1}, {1, 2}, {3, 4}});
  const SccLabels labels = strongly_connected_components(g);
  EXPECT_EQ(labels.num_components, 2u);
}

TEST(Scc, EmptyGraph) {
  const CsrGraph g = CsrGraph::from_edges(0, {}, true);
  EXPECT_EQ(strongly_connected_components(g).num_components, 0u);
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(Condensation, IsADagWithDedupedArcs) {
  EdgeList arcs{{0, 1}, {1, 0}, {0, 2}, {1, 2}, {2, 3}, {3, 2}};
  const CsrGraph g = CsrGraph::from_edges(4, arcs, true);
  const SccLabels labels = strongly_connected_components(g);
  const CsrGraph dag = condensation(g, labels);
  EXPECT_EQ(dag.num_vertices(), 2u);
  EXPECT_EQ(dag.num_arcs(), 1u);  // {0,1} -> {2,3}, deduped
  // Acyclic: every arc must decrease the Tarjan id.
  for (const Edge& e : dag.arcs()) EXPECT_GT(e.src, e.dst);
}

class SccSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SccSweep, MatchesMutualReachabilityOracle) {
  for (const auto& gc : testing::graph_family(GetParam(), /*tiny=*/true)) {
    if (!gc.graph.directed()) continue;
    SCOPED_TRACE(gc.name);
    const SccLabels labels = strongly_connected_components(gc.graph);
    Xoshiro256 rng(GetParam());
    const Vertex n = gc.graph.num_vertices();
    for (int trial = 0; trial < 40; ++trial) {
      const auto u = static_cast<Vertex>(rng.bounded(n));
      const auto v = static_cast<Vertex>(rng.bounded(n));
      EXPECT_EQ(labels.component[u] == labels.component[v],
                mutually_reachable(gc.graph, u, v))
          << "u=" << u << " v=" << v;
    }
    // Condensation arcs only go from higher to lower ids (acyclic).
    const CsrGraph dag = condensation(gc.graph, labels);
    for (const Edge& e : dag.arcs()) EXPECT_GT(e.src, e.dst);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SccSweep, ::testing::Values(401, 411, 421, 431));

}  // namespace
}  // namespace apgre
