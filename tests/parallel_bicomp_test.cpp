// Differential equivalence suite for the scheduler-native parallel
// biconnectivity pass (bcc/parallel_bicomp.hpp): canonicalized parallel
// output must be structure-identical to the serial Hopcroft-Tarjan DFS —
// same blocks (vertex and edge sets), same articulation flags, same
// bridges, same block-cut tree — over the shared seeded corpus and a set
// of adversarial shapes, and the decomposition/solve layers above it must
// be score-identical with the pass forced on. Runs under ASan/UBSan and
// TSan in CI (docs/TESTING.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bcc/articulation.hpp"
#include "bcc/bicomp.hpp"
#include "bcc/block_cut_tree.hpp"
#include "bcc/bridges.hpp"
#include "bcc/parallel_bicomp.hpp"
#include "bcc/partition.hpp"
#include "check/invariants.hpp"
#include "check/oracle.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"
#include "test_util.hpp"

namespace apgre {
namespace {

using testing::expect_scores_near;

/// The serial reference in the parallel pass's output contract: serial
/// Hopcroft-Tarjan on the undirected projection, renumbered canonically.
BiconnectedComponents canonical_serial(const CsrGraph& g) {
  BiconnectedComponents bcc = biconnected_components(g);
  canonicalize_blocks(bcc);
  return bcc;
}

void expect_identical(const BiconnectedComponents& expected,
                      const BiconnectedComponents& actual) {
  ASSERT_EQ(expected.num_components, actual.num_components);
  EXPECT_EQ(expected.component_vertices, actual.component_vertices);
  EXPECT_EQ(expected.component_edges, actual.component_edges);
  EXPECT_EQ(expected.is_articulation, actual.is_articulation);
  EXPECT_EQ(expected.any_component, actual.any_component);
}

/// Full differential check of one graph: canonicalized serial vs parallel
/// structures, plus the numbering-free views (AP finder, bridges as
/// 2-vertex blocks, block-cut tree shape).
void expect_parallel_matches_serial(const CsrGraph& g) {
  const BiconnectedComponents serial = canonical_serial(g);
  const BiconnectedComponents parallel = parallel_biconnected_components(g);
  expect_identical(serial, parallel);

  const CsrGraph projection_storage =
      g.directed() ? undirected_projection(g) : CsrGraph();
  const CsrGraph& u = g.directed() ? projection_storage : g;

  EXPECT_EQ(parallel.is_articulation, articulation_points(u));

  // Bridges are exactly the 2-vertex blocks.
  EdgeList two_vertex_blocks;
  for (Vertex b = 0; b < parallel.num_components; ++b) {
    if (parallel.component_vertices[b].size() == 2) {
      ASSERT_EQ(parallel.component_edges[b].size(), 1u);
      two_vertex_blocks.push_back(parallel.component_edges[b][0]);
    }
  }
  std::sort(two_vertex_blocks.begin(), two_vertex_blocks.end());
  EXPECT_EQ(two_vertex_blocks, bridge_decomposition(u).bridges);

  // Identical block structure induces the identical block-cut tree.
  const BlockCutTree serial_tree = block_cut_tree(serial, u.num_vertices());
  const BlockCutTree parallel_tree =
      block_cut_tree(parallel, u.num_vertices());
  EXPECT_EQ(serial_tree.articulation_vertices,
            parallel_tree.articulation_vertices);
  EXPECT_EQ(serial_tree.block_aps, parallel_tree.block_aps);
  EXPECT_EQ(serial_tree.ap_blocks, parallel_tree.ap_blocks);
  EXPECT_TRUE(is_forest(parallel_tree));
}

// ---- seeded corpus ------------------------------------------------------

class ParallelBicompSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelBicompSweep, MatchesSerialOnCorpus) {
  for (const auto& gc : graph_corpus(GetParam(), /*tiny=*/true)) {
    SCOPED_TRACE(gc.name);
    expect_parallel_matches_serial(gc.graph);
  }
}

TEST_P(ParallelBicompSweep, MatchesSerialOnLargeCorpus) {
  for (const auto& gc : graph_corpus(GetParam(), /*tiny=*/false)) {
    SCOPED_TRACE(gc.name);
    expect_parallel_matches_serial(gc.graph);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelBicompSweep,
                         ::testing::Values(3, 13, 23, 43));

// ---- adversarial shapes -------------------------------------------------

TEST(ParallelBicomp, LongPathBeyondRecursionDepth) {
  // Deeper than any reasonable stack would allow a recursive DFS; also the
  // worst case for the level sweeps (one vertex per BFS level).
  expect_parallel_matches_serial(path(100000));
}

TEST(ParallelBicomp, LongCycle) {
  expect_parallel_matches_serial(cycle(50000));
}

TEST(ParallelBicomp, Star) { expect_parallel_matches_serial(star(20000)); }

TEST(ParallelBicomp, Clique) { expect_parallel_matches_serial(complete(80)); }

TEST(ParallelBicomp, CliquesOfCliques) {
  // Caveman cliques chained by bridges, then every clique vertex sprouting
  // a pendant triangle: blocks at two scales sharing many APs.
  const CsrGraph base = caveman(8, 6, 99);
  EdgeList edges = base.arcs();
  Vertex next = base.num_vertices();
  for (Vertex v = 0; v < base.num_vertices(); ++v) {
    edges.push_back(Edge{v, next});
    edges.push_back(Edge{v, static_cast<Vertex>(next + 1)});
    edges.push_back(Edge{next, static_cast<Vertex>(next + 1)});
    next += 2;
  }
  expect_parallel_matches_serial(CsrGraph::undirected_from_edges(next, edges));
}

TEST(ParallelBicomp, DisconnectedForestWithIsolatedVertices) {
  // Three trees and a cycle, separated by gaps of isolated vertices.
  EdgeList edges;
  Vertex base = 3;  // vertices 0..2 isolated
  for (Vertex t = 0; t < 3; ++t) {
    const CsrGraph tree = random_tree(40 + 7 * t, 17 + t);
    for (const Edge& e : tree.arcs()) {
      if (e.src < e.dst) {
        edges.push_back(Edge{static_cast<Vertex>(base + e.src),
                             static_cast<Vertex>(base + e.dst)});
      }
    }
    base += tree.num_vertices() + 2;  // leave 2 isolated vertices behind
  }
  for (Vertex i = 0; i < 5; ++i) {
    edges.push_back(Edge{static_cast<Vertex>(base + i),
                         static_cast<Vertex>(base + (i + 1) % 5)});
  }
  expect_parallel_matches_serial(
      CsrGraph::undirected_from_edges(base + 5, edges));
}

TEST(ParallelBicomp, SelfLoopAndMultiEdgeInputs) {
  // CsrGraph::from_edges drops self-loops and duplicate arcs; graphs built
  // from dirty edge lists must decompose like their clean counterparts.
  const EdgeList dirty = {{0, 0}, {0, 1}, {0, 1}, {1, 0}, {1, 2}, {2, 0},
                          {2, 2}, {3, 3}, {3, 4}, {4, 3}, {4, 3}, {5, 5}};
  const CsrGraph g = CsrGraph::undirected_from_edges(6, dirty);
  expect_parallel_matches_serial(g);
  const CsrGraph clean = CsrGraph::undirected_from_edges(
      6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}});
  expect_identical(parallel_biconnected_components(clean),
                   parallel_biconnected_components(g));
}

TEST(ParallelBicomp, TinyAndDegenerateShapes) {
  expect_parallel_matches_serial(CsrGraph::undirected_from_edges(0, {}));
  expect_parallel_matches_serial(CsrGraph::undirected_from_edges(1, {}));
  expect_parallel_matches_serial(CsrGraph::undirected_from_edges(5, {}));
  expect_parallel_matches_serial(CsrGraph::undirected_from_edges(2, {{0, 1}}));
  expect_parallel_matches_serial(path(3));
  expect_parallel_matches_serial(barbell(4, 2));
  expect_parallel_matches_serial(paper_figure3());  // directed: fallback
}

TEST(ParallelBicomp, DirectedGraphsFallBackToSerial) {
  const CsrGraph g = rmat(8, 6, 0.57, 0.19, 0.19, /*symmetric=*/false, 5);
  ASSERT_TRUE(g.directed());
  expect_parallel_matches_serial(g);
}

// ---- canonicalization contract ------------------------------------------

TEST(ParallelBicomp, CanonicalOrderIsByMinMemberAndIdempotent) {
  const CsrGraph g = attach_pendants(caveman(5, 5, 7), 6, 8);
  BiconnectedComponents bcc = parallel_biconnected_components(g);
  for (Vertex b = 1; b < bcc.num_components; ++b) {
    EXPECT_LT(bcc.component_vertices[b - 1], bcc.component_vertices[b]);
  }
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    // any_component is the smallest block containing v.
    Vertex smallest = kInvalidVertex;
    for (Vertex b = 0; b < bcc.num_components && smallest == kInvalidVertex;
         ++b) {
      if (std::binary_search(bcc.component_vertices[b].begin(),
                             bcc.component_vertices[b].end(), v)) {
        smallest = b;
      }
    }
    EXPECT_EQ(bcc.any_component[v], smallest) << "vertex " << v;
  }
  BiconnectedComponents again = bcc;
  canonicalize_blocks(again);
  expect_identical(bcc, again);
}

TEST(ParallelBicomp, RepeatedRunsAreDeterministic) {
  // Block discovery order depends on scheduler interleaving; the canonical
  // renumbering must erase that (downstream caches key on block ids).
  const CsrGraph g = attach_pendants(barabasi_albert(3000, 3, 11), 200, 12);
  const BiconnectedComponents first = parallel_biconnected_components(g);
  for (int run = 0; run < 4; ++run) {
    expect_identical(first, parallel_biconnected_components(g));
  }
}

// ---- decomposition / solve layers with the pass forced on ---------------

TEST(ParallelBicomp, DecompositionInvariantsHoldWithParallelPass) {
  PartitionOptions opts;
  opts.parallel_decomposition = ParallelDecomposition::kOn;
  for (const auto& gc : graph_corpus(31, /*tiny=*/true)) {
    SCOPED_TRACE(gc.name);
    const Decomposition dec = decompose(gc.graph, opts);
    const std::vector<std::string> violations =
        check_decomposition_invariants(gc.graph, dec, /*max_reach_checks=*/32);
    EXPECT_TRUE(violations.empty())
        << violations.size() << " violations; first: "
        << (violations.empty() ? "" : violations.front());
  }
}

TEST(ParallelBicomp, ApgreScoresMatchSerialDecomposition) {
  // Sub-graph *grouping* may differ between the passes (the merge DFS is
  // numbering-sensitive and serial numbering is not canonical), but the
  // scores may not.
  for (const auto& gc : graph_corpus(41, /*tiny=*/true)) {
    SCOPED_TRACE(gc.name);
    BcOptions on;
    on.apgre.partition.parallel_decomposition = ParallelDecomposition::kOn;
    BcOptions off;
    off.apgre.partition.parallel_decomposition = ParallelDecomposition::kOff;
    expect_scores_near(betweenness(gc.graph, off).scores,
                       betweenness(gc.graph, on).scores);
  }
}

// ---- randomized trajectory: parallel decomposition + incremental updates

class ParallelTrajectorySweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelTrajectorySweep, IncrementalUpdatesMatchStaticOracle) {
  // A Solver that decomposed in parallel must stay exact through localized
  // updates and batch adoption — pins that canonical block ids keep the
  // contribution store and peel adoption sound after every step.
  const std::uint64_t seed = GetParam();
  for (const auto& gc : graph_corpus(seed, /*tiny=*/true)) {
    if (gc.graph.directed() || gc.graph.num_vertices() == 0) continue;
    SCOPED_TRACE(gc.name);
    const std::vector<DynamicStep> steps =
        random_dynamic_steps(gc.graph, 12, seed ^ 0x7ea1);
    if (steps.empty()) continue;
    BcOptions engine;
    engine.apgre.partition.parallel_decomposition = ParallelDecomposition::kOn;
    const OracleReport report =
        incremental_differential_check(gc.graph, steps, engine);
    EXPECT_TRUE(report.ok) << report.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelTrajectorySweep,
                         ::testing::Values(9, 19));

}  // namespace
}  // namespace apgre
