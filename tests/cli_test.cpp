// End-to-end tests of the apgre_cli binary: spawn the real executable
// (path injected by CMake) against generated graph files and check output
// and exit codes — the full user journey, not just library calls.
#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>

#include "graph/generators.hpp"
#include "graph/io_dimacs.hpp"
#include "graph/io_snap.hpp"
#include "graph/transform.hpp"

#ifndef APGRE_CLI_PATH
#error "APGRE_CLI_PATH must be defined by the build"
#endif

namespace apgre {
namespace {

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult run_cli(const std::string& args) {
  const std::string command = std::string(APGRE_CLI_PATH) + " " + args + " 2>&1";
  std::array<char, 4096> buffer{};
  CommandResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per process: ctest runs each test as its own process, possibly
    // in parallel, and a shared fixture path would let one test's TearDown
    // delete the graph another test is about to read.
    const std::string tag = std::to_string(static_cast<long>(getpid()));
    snap_path_ = ::testing::TempDir() + "/cli_graph_" + tag + ".snap";
    dimacs_path_ = ::testing::TempDir() + "/cli_graph_" + tag + ".gr";
    const CsrGraph g = attach_pendants(caveman(6, 6, 77), 20, 78);
    write_snap_file(snap_path_, g);
    write_dimacs_file(dimacs_path_, g);
  }

  void TearDown() override {
    std::remove(snap_path_.c_str());
    std::remove(dimacs_path_.c_str());
  }

  std::string snap_path_;
  std::string dimacs_path_;
};

TEST_F(CliTest, HelpExitsZero) {
  const CommandResult r = run_cli("--help");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("--algorithm"), std::string::npos);
}

TEST_F(CliTest, MissingFileArgumentFails) {
  const CommandResult r = run_cli("");
  EXPECT_EQ(r.exit_code, 2);
}

TEST_F(CliTest, UnknownFlagFails) {
  const CommandResult r = run_cli("--frobnicate " + snap_path_);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown flag"), std::string::npos);
}

TEST_F(CliTest, DefaultApgreRunPrintsRanking) {
  const CommandResult r = run_cli("--top 5 " + snap_path_);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("apgre finished"), std::string::npos);
  EXPECT_NE(r.output.find("decomposition:"), std::string::npos);
  EXPECT_NE(r.output.find("rank\tvertex\tscore"), std::string::npos);
}

TEST_F(CliTest, SerialAndApgreAgreeOnTopVertex) {
  const CommandResult apgre = run_cli("--algorithm apgre --top 1 " + snap_path_);
  const CommandResult serial = run_cli("--algorithm serial --top 1 " + snap_path_);
  ASSERT_EQ(apgre.exit_code, 0);
  ASSERT_EQ(serial.exit_code, 0);
  const auto last_line = [](const std::string& s) {
    const auto end = s.find_last_not_of('\n');
    const auto start = s.rfind('\n', end);
    return s.substr(start + 1, end - start);
  };
  EXPECT_EQ(last_line(apgre.output), last_line(serial.output));
}

TEST_F(CliTest, EdgeBetweennessMode) {
  const CommandResult r = run_cli("--algorithm edges --top 3 " + snap_path_);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("rank\tedge\tscore"), std::string::npos);
}

TEST_F(CliTest, WeightedDimacsMode) {
  const CommandResult r =
      run_cli("--format dimacs --weighted --top 3 " + dimacs_path_);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("weighted arcs"), std::string::npos);
}

TEST_F(CliTest, WeightedRequiresDimacs) {
  const CommandResult r = run_cli("--weighted " + snap_path_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("requires --format dimacs"), std::string::npos);
}

TEST_F(CliTest, CsvExport) {
  const std::string csv = ::testing::TempDir() + "/cli_scores.csv";
  const CommandResult r =
      run_cli("--algorithm serial --output " + csv + " " + snap_path_);
  EXPECT_EQ(r.exit_code, 0);
  std::ifstream in(csv);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "vertex,betweenness");
  std::size_t rows = 0;
  for (std::string line; std::getline(in, line);) ++rows;
  EXPECT_EQ(rows, 56u);  // 6*6 + 20 vertices
  std::remove(csv.c_str());
}

TEST_F(CliTest, MissingInputFileFails) {
  const CommandResult r = run_cli("/nonexistent/graph.txt");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("cannot open"), std::string::npos);
}

TEST_F(CliTest, InvalidOptionsExitThree) {
  // Parses fine, rejected by validate_options: the Status exit code (3),
  // distinct from usage errors (2) and runtime failures (1).
  const CommandResult r = run_cli("--grain -1 " + snap_path_);
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_NE(r.output.find("invalid options"), std::string::npos);
}

TEST_F(CliTest, BadStealPolicyFails) {
  const CommandResult r = run_cli("--steal-policy bogus " + snap_path_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("steal policy"), std::string::npos);
}

TEST_F(CliTest, SchedulerFlagsRoundTrip) {
  const CommandResult on = run_cli(
      "--grain 2 --steal-policy sequential --top 1 " + snap_path_);
  EXPECT_EQ(on.exit_code, 0);
  EXPECT_NE(on.output.find("scheduler:"), std::string::npos);

  const CommandResult off = run_cli("--scheduler=false --top 1 " + snap_path_);
  EXPECT_EQ(off.exit_code, 0);
  EXPECT_EQ(off.output.find("scheduler:"), std::string::npos);
}

TEST_F(CliTest, SamplingMode) {
  const CommandResult r =
      run_cli("--algorithm sampling --samples 10 --seed 3 --top 3 " + snap_path_);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("sampling finished"), std::string::npos);
}

}  // namespace
}  // namespace apgre
