#include <gtest/gtest.h>

#include "bc/bc.hpp"
#include "bc/brandes.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"
#include "test_util.hpp"

namespace apgre {
namespace {

TEST(BcApi, AlgorithmNamesRoundTrip) {
  for (Algorithm a :
       {Algorithm::kNaive, Algorithm::kBrandesSerial, Algorithm::kParallelPreds,
        Algorithm::kParallelSuccs, Algorithm::kLockFree, Algorithm::kCoarse,
        Algorithm::kHybrid, Algorithm::kApgre, Algorithm::kAlgebraic,
        Algorithm::kSampling}) {
    EXPECT_EQ(algorithm_from_name(algorithm_name(a)), a);
  }
  EXPECT_EQ(algorithm_from_name("async"), Algorithm::kCoarse);    // paper alias
  EXPECT_EQ(algorithm_from_name("batched"), Algorithm::kAlgebraic);
  EXPECT_THROW(algorithm_from_name("bogus"), OptionError);
}

TEST(BcApi, DefaultsToApgre) {
  const CsrGraph g = barbell(5, 2);
  const BcResult r = betweenness(g);
  testing::expect_scores_near(brandes_bc(g), r.scores);
  EXPECT_GT(r.apgre_stats.num_subgraphs, 0u);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.mteps, 0.0);
}

TEST(BcApi, EveryExactAlgorithmAgrees) {
  const CsrGraph g = attach_pendants(caveman(4, 6, 2), 10, 3);
  const auto expected = brandes_bc(g);
  for (Algorithm a :
       {Algorithm::kNaive, Algorithm::kBrandesSerial, Algorithm::kParallelPreds,
        Algorithm::kParallelSuccs, Algorithm::kLockFree, Algorithm::kCoarse,
        Algorithm::kHybrid, Algorithm::kApgre, Algorithm::kAlgebraic}) {
    SCOPED_TRACE(algorithm_name(a));
    BcOptions opts;
    opts.algorithm = a;
    testing::expect_scores_near(expected, betweenness(g, opts).scores);
  }
}

TEST(BcApi, UndirectedHalvingHalvesSymmetricScores) {
  const CsrGraph g = path(6);
  BcOptions opts;
  opts.undirected_halving = true;
  const auto halved = betweenness(g, opts).scores;
  const auto full = betweenness(g).scores;
  for (Vertex v = 0; v < 6; ++v) EXPECT_DOUBLE_EQ(halved[v] * 2.0, full[v]);
}

TEST(BcApi, HalvingIgnoredOnDirectedGraphs) {
  const CsrGraph g = paper_figure3();
  BcOptions opts;
  opts.undirected_halving = true;
  opts.algorithm = Algorithm::kBrandesSerial;
  testing::expect_scores_near(brandes_bc(g), betweenness(g, opts).scores);
}

TEST(BcApi, ThreadOptionIsHonoured) {
  const CsrGraph g = barabasi_albert(100, 2, 9);
  BcOptions opts;
  opts.algorithm = Algorithm::kParallelSuccs;
  opts.threads = 3;
  testing::expect_scores_near(brandes_bc(g), betweenness(g, opts).scores);
}

TEST(BcApi, SamplingPassesParametersThrough) {
  const CsrGraph g = barabasi_albert(100, 2, 10);
  BcOptions opts;
  opts.algorithm = Algorithm::kSampling;
  opts.num_samples = 100;  // full sample: exact
  opts.seed = 17;
  testing::expect_scores_near(brandes_bc(g), betweenness(g, opts).scores);
}

TEST(BcApi, ApgreOptionsPassedThrough) {
  const CsrGraph g = attach_pendants(barbell(6, 2), 8, 1);
  BcOptions opts;
  opts.apgre.partition.merge_threshold = 2;
  opts.apgre.partition.total_redundancy = false;
  const BcResult r = betweenness(g, opts);
  testing::expect_scores_near(brandes_bc(g), r.scores);
  EXPECT_EQ(r.apgre_stats.num_pendants_removed, 0u);
}

}  // namespace
}  // namespace apgre
