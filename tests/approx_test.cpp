#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "bc/approx.hpp"
#include "bc/brandes.hpp"
#include "bc/naive.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace apgre {
namespace {

TEST(SelectPivots, UniformIsSampleWithoutReplacement) {
  const CsrGraph g = barabasi_albert(100, 2, 1);
  const auto pivots = select_pivots(g, 30, PivotStrategy::kUniform, 5);
  EXPECT_EQ(pivots.size(), 30u);
  const std::set<Vertex> unique(pivots.begin(), pivots.end());
  EXPECT_EQ(unique.size(), 30u);
  for (Vertex p : pivots) EXPECT_LT(p, 100u);
}

TEST(SelectPivots, ClampsToVertexCount) {
  const CsrGraph g = path(5);
  EXPECT_EQ(select_pivots(g, 100, PivotStrategy::kUniform, 1).size(), 5u);
  EXPECT_EQ(select_pivots(g, 100, PivotStrategy::kMaxMin, 1).size(), 5u);
}

TEST(SelectPivots, DegreeProportionalPrefersHubs) {
  // Star: the centre has degree n-1 and should appear in nearly every
  // small sample.
  const CsrGraph g = star(50);
  int centre_hits = 0;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const auto pivots = select_pivots(g, 3, PivotStrategy::kDegreeProportional, seed);
    centre_hits += std::count(pivots.begin(), pivots.end(), 0u);
  }
  EXPECT_GT(centre_hits, 20);  // ~ 50 * (1 - (1 - 1/3)^3) >> 20
}

TEST(SelectPivots, MaxMinSpreadsOverThePath) {
  // Farthest-first on a path must hit both ends within the first three
  // pivots regardless of the random start.
  const CsrGraph g = path(30);
  const auto pivots = select_pivots(g, 3, PivotStrategy::kMaxMin, 9);
  const std::set<Vertex> chosen(pivots.begin(), pivots.end());
  EXPECT_TRUE(chosen.contains(0u) || chosen.contains(29u));
  // Pairwise min distance should be large (>= ~1/3 of the path).
  for (std::size_t i = 0; i < pivots.size(); ++i) {
    for (std::size_t j = i + 1; j < pivots.size(); ++j) {
      const auto d = pivots[i] > pivots[j] ? pivots[i] - pivots[j]
                                           : pivots[j] - pivots[i];
      EXPECT_GE(d, 7u);
    }
  }
}

TEST(EstimateBc, AllPivotsIsExact) {
  const CsrGraph g = barabasi_albert(80, 2, 3);
  std::vector<Vertex> all(80);
  std::iota(all.begin(), all.end(), 0);
  testing::expect_scores_near(brandes_bc(g), estimate_bc(g, all));
}

TEST(EstimateBc, ScalesByInverseSampleFraction) {
  const CsrGraph g = path(9);
  const auto half = estimate_bc(g, {0, 2, 4});  // weight 3
  const auto single = brandes_bc_from_sources(g, {0, 2, 4}, 1.0);
  for (Vertex v = 0; v < 9; ++v) EXPECT_DOUBLE_EQ(half[v], 3.0 * single[v]);
}

TEST(LinearScaled, AllPivotsMatchesClosedForm) {
  // With every vertex as pivot the estimator computes exactly
  //   sum_{s,t} sigma_st(v)/sigma_st * d(s,v)/d(s,t),
  // which the naive dist/sigma matrices reproduce directly.
  for (const auto& gc : testing::graph_family(93, /*tiny=*/true)) {
    SCOPED_TRACE(gc.name);
    const CsrGraph& g = gc.graph;
    const Vertex n = g.num_vertices();
    std::vector<Vertex> all(n);
    std::iota(all.begin(), all.end(), 0);
    const auto scaled = estimate_bc_linear_scaled(g, all);

    // Oracle via per-source BFS matrices.
    std::vector<double> expected(n, 0.0);
    std::vector<std::vector<std::uint32_t>> dist;
    std::vector<std::vector<double>> sigma;
    for (Vertex s = 0; s < n; ++s) {
      dist.push_back(bfs_distances(g, s));
      sigma.emplace_back(n, 0.0);
    }
    // Recompute sigma with BFS per source.
    for (Vertex s = 0; s < n; ++s) {
      std::vector<Vertex> queue{s};
      sigma[s][s] = 1.0;
      for (std::size_t head = 0; head < queue.size(); ++head) {
        const Vertex v = queue[head];
        for (Vertex w : g.out_neighbors(v)) {
          if (dist[s][w] == dist[s][v] + 1) {
            if (sigma[s][w] == 0.0) queue.push_back(w);
            sigma[s][w] += sigma[s][v];
          }
        }
      }
    }
    for (Vertex s = 0; s < n; ++s) {
      for (Vertex t = 0; t < n; ++t) {
        if (s == t || dist[s][t] == kUnreachable || dist[s][t] == 0) continue;
        for (Vertex v = 0; v < n; ++v) {
          if (v == s || v == t) continue;
          if (dist[s][v] == kUnreachable || dist[v][t] == kUnreachable) continue;
          if (dist[s][v] + dist[v][t] != dist[s][t]) continue;
          expected[v] += sigma[s][v] * sigma[v][t] / sigma[s][t] *
                         static_cast<double>(dist[s][v]) /
                         static_cast<double>(dist[s][t]);
        }
      }
    }
    testing::expect_scores_near(expected, scaled);
  }
}

TEST(LinearScaled, RanksStarCentreFirst) {
  const CsrGraph g = star(60);
  const auto pivots = select_pivots(g, 8, PivotStrategy::kUniform, 3);
  const auto scores = estimate_bc_linear_scaled(g, pivots);
  for (Vertex v = 1; v < 60; ++v) EXPECT_LE(scores[v], scores[0]);
}

TEST(AdaptiveEstimate, HighCentralityConvergesFast) {
  // Star centre: every sampled leaf contributes delta = n-2, so the c*n
  // threshold is crossed after ~c samples.
  const CsrGraph g = star(200);
  const AdaptiveEstimate est = adaptive_estimate_bc(g, 0, 2.0, 7);
  EXPECT_LT(est.samples_used, 10u);
  const double exact = brandes_bc(g)[0];
  EXPECT_NEAR(est.score, exact, exact * 0.25);
}

TEST(AdaptiveEstimate, LowCentralityUsesAllSamplesAndIsExact) {
  // A leaf of the star has BC 0: the threshold is never crossed, every
  // source is sampled, and the estimate becomes exact.
  const CsrGraph g = star(40);
  const AdaptiveEstimate est = adaptive_estimate_bc(g, 5, 2.0, 7);
  EXPECT_EQ(est.samples_used, 40u);
  EXPECT_DOUBLE_EQ(est.score, 0.0);
}

TEST(AdaptiveEstimate, MatchesExactWhenAllSampled) {
  const CsrGraph g = path(12);
  const auto exact = brandes_bc(g);
  // Middle vertex: huge c forces exhaustive sampling -> exact dependency.
  const AdaptiveEstimate est = adaptive_estimate_bc(g, 6, 1e9, 3);
  EXPECT_EQ(est.samples_used, 12u);
  EXPECT_NEAR(est.score, exact[6], 1e-9);
}

TEST(AdaptiveEstimate, RejectsBadThreshold) {
  EXPECT_THROW(adaptive_estimate_bc(path(4), 1, 0.0, 1), Error);
}

class ApproxRankingSweep : public ::testing::TestWithParam<PivotStrategy> {};

TEST_P(ApproxRankingSweep, TopVertexSurvivesSampling) {
  // All strategies must keep the clearly-dominant broker on top.
  const CsrGraph g = barbell(12, 2);
  const auto exact = brandes_bc(g);
  const auto exact_top = static_cast<Vertex>(
      std::max_element(exact.begin(), exact.end()) - exact.begin());
  const auto pivots = select_pivots(g, 8, GetParam(), 11);
  const auto est = estimate_bc(g, pivots);
  const auto est_top = static_cast<Vertex>(
      std::max_element(est.begin(), est.end()) - est.begin());
  // The bridge path vertices 12/13 dominate; both metrics should agree on
  // a bridge vertex.
  EXPECT_GE(est_top, 11u);
  EXPECT_LE(est_top, 14u);
  EXPECT_GE(exact_top, 12u);
  EXPECT_LE(exact_top, 13u);
}

INSTANTIATE_TEST_SUITE_P(Strategies, ApproxRankingSweep,
                         ::testing::Values(PivotStrategy::kUniform,
                                           PivotStrategy::kDegreeProportional,
                                           PivotStrategy::kMaxMin));

}  // namespace
}  // namespace apgre
