// Parser robustness: every reader must either parse or throw apgre::Error —
// never crash, hang, or return an inconsistent graph — for arbitrary and
// truncated inputs. Seeds are deterministic; each case feeds mutated or
// random bytes to all four parsers.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "graph/generators.hpp"
#include "graph/io_binary.hpp"
#include "graph/io_dimacs.hpp"
#include "graph/io_graphml.hpp"
#include "graph/io_metis.hpp"
#include "graph/io_snap.hpp"
#include "graph/weighted.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"

namespace apgre {
namespace {

void expect_parse_or_error(const std::string& bytes) {
  {
    std::istringstream in(bytes);
    try {
      const SnapGraph g = read_snap(in, true);
      EXPECT_LE(g.graph.num_arcs(), bytes.size());  // sanity: bounded output
    } catch (const Error&) {
    }
  }
  {
    std::istringstream in(bytes);
    try {
      (void)read_dimacs(in, true);
    } catch (const Error&) {
    }
  }
  {
    std::istringstream in(bytes);
    try {
      (void)read_metis(in);
    } catch (const Error&) {
    }
  }
  {
    std::istringstream in(bytes, std::ios::in | std::ios::binary);
    try {
      (void)read_binary(in);
    } catch (const Error&) {
    }
  }
  {
    std::istringstream in(bytes);
    try {
      (void)read_graphml(in);
    } catch (const Error&) {
    }
  }
}

TEST(IoFuzz, RandomPrintableGarbage) {
  Xoshiro256 rng(1);
  for (int round = 0; round < 50; ++round) {
    std::string bytes;
    const std::size_t length = rng.bounded(400);
    for (std::size_t i = 0; i < length; ++i) {
      bytes.push_back(static_cast<char>(' ' + rng.bounded(95)));
    }
    expect_parse_or_error(bytes);
  }
}

TEST(IoFuzz, RandomBinaryGarbage) {
  Xoshiro256 rng(2);
  for (int round = 0; round < 50; ++round) {
    std::string bytes;
    const std::size_t length = rng.bounded(400);
    for (std::size_t i = 0; i < length; ++i) {
      bytes.push_back(static_cast<char>(rng.bounded(256)));
    }
    expect_parse_or_error(bytes);
  }
}

TEST(IoFuzz, TruncatedValidFiles) {
  const CsrGraph g = erdos_renyi(40, 120, true, 3);
  std::ostringstream snap;
  write_snap(snap, g);
  std::ostringstream dimacs;
  write_dimacs(dimacs, g);
  std::ostringstream binary(std::ios::out | std::ios::binary);
  write_binary(binary, g);
  std::ostringstream graphml;
  write_graphml(graphml, g);

  Xoshiro256 rng(4);
  for (const std::string& full :
       {snap.str(), dimacs.str(), binary.str(), graphml.str()}) {
    for (int round = 0; round < 20; ++round) {
      expect_parse_or_error(full.substr(0, rng.bounded(full.size() + 1)));
    }
  }
}

// Hand-built malformed binary files: the header is the attack surface, so
// each case corrupts one specific field and must be rejected with an Error.
TEST(IoFuzz, MalformedBinaryCorpus) {
  const CsrGraph g = erdos_renyi(20, 50, false, 7);
  std::ostringstream out(std::ios::out | std::ios::binary);
  write_binary(out, g);
  const std::string valid = out.str();

  auto expect_error = [](std::string bytes) {
    std::istringstream in(bytes, std::ios::in | std::ios::binary);
    EXPECT_THROW((void)read_binary(in), Error) << "bytes size " << bytes.size();
  };

  // Truncated header: every prefix of the 22-byte header (magic, version,
  // two flag bytes, u32 vertex count, u64 arc count) must throw, not crash
  // or return an empty graph.
  constexpr std::size_t kHeaderBytes =
      4 + 4 + 1 + 1 + sizeof(Vertex) + sizeof(EdgeId);
  static_assert(kHeaderBytes == 22);
  ASSERT_GT(valid.size(), kHeaderBytes);
  for (std::size_t len = 0; len < kHeaderBytes; ++len) {
    expect_error(valid.substr(0, len));
  }

  // Out-of-range vertex id in the first arc record: endpoint >= |V|.
  {
    std::string bytes = valid;
    const Vertex bogus = 1'000'000;  // far beyond the 20 vertices
    std::memcpy(bytes.data() + kHeaderBytes, &bogus, sizeof(bogus));
    expect_error(bytes);
  }

  // Arc-count bomb: header claims 2^62 arcs with no payload behind it. The
  // reader must fail on the truncated payload, not attempt the allocation.
  {
    std::string bytes = valid.substr(0, kHeaderBytes);
    const EdgeId bomb = EdgeId{1} << 62;
    std::memcpy(bytes.data() + kHeaderBytes - sizeof(EdgeId), &bomb,
                sizeof(bomb));
    expect_error(bytes);
  }

  // Wrong magic and unsupported version.
  {
    std::string bytes = valid;
    bytes[0] = 'X';
    expect_error(bytes);
  }
  {
    std::string bytes = valid;
    bytes[4] = static_cast<char>(0xee);  // version field
    expect_error(bytes);
  }

  // Weighted/unweighted mismatch: read_binary on a weighted file and back.
  {
    const WeightedCsrGraph wg = with_random_weights(g, 1, 4, 11);
    std::ostringstream wout(std::ios::out | std::ios::binary);
    write_binary_weighted(wout, wg);
    expect_error(wout.str());
    std::istringstream in(valid, std::ios::in | std::ios::binary);
    EXPECT_THROW((void)read_binary_weighted(in), Error);
  }
}

// Hand-built malformed GraphML documents: each case violates one structural
// rule and must be rejected with an Error, never a crash or silent accept.
TEST(IoFuzz, MalformedGraphmlCorpus) {
  auto expect_error = [](const std::string& doc) {
    std::istringstream in(doc);
    EXPECT_THROW((void)read_graphml(in), Error) << doc;
  };

  // Truncated header / missing envelope.
  expect_error("");
  expect_error("<?xml version=\"1.0\"?>");
  expect_error("<graphml");
  expect_error("<graphml><graph edgedefault=\"undirected\">");  // no </graphml>
  expect_error("<graph edgedefault=\"undirected\"></graph>");   // no <graphml>

  // Malformed tags and attributes.
  expect_error("<graphml><graph edgedefault=undirected></graph></graphml>");
  expect_error("<graphml><graph edgedefault=\"undirected></graph></graphml>");
  expect_error("<graphml><graph edgedefault=\"sideways\"></graph></graphml>");
  expect_error("<graphml><graph></graph></graphml>");  // missing edgedefault
  expect_error("<graphml><></graphml>");               // empty tag name
  expect_error("<graphml><!-- unterminated comment </graphml>");

  // Node / edge structural violations.
  expect_error(
      "<graphml><graph edgedefault=\"undirected\">"
      "<node id=\"a\"/><node id=\"a\"/>"  // duplicate id
      "</graph></graphml>");
  expect_error(
      "<graphml><graph edgedefault=\"undirected\">"
      "<node/>"  // missing id
      "</graph></graphml>");
  expect_error(
      "<graphml><graph edgedefault=\"undirected\">"
      "<node id=\"a\"/><edge source=\"a\" target=\"ghost\"/>"  // undeclared id
      "</graph></graphml>");
  expect_error(
      "<graphml><graph edgedefault=\"directed\">"
      "<node id=\"a\"/><edge source=\"a\"/>"  // missing target
      "</graph></graphml>");
  expect_error(
      "<graphml><node id=\"a\"/></graphml>");  // node outside <graph>
  expect_error(
      "<graphml><graph edgedefault=\"undirected\"></graph>"
      "<edge source=\"a\" target=\"a\"/></graphml>");  // edge outside <graph>

  // And a well-formed document parses, proving the corpus failures are
  // rejections rather than a reader that throws on everything.
  std::istringstream ok(
      "<?xml version=\"1.0\"?>\n"
      "<graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\">\n"
      "  <graph id=\"G\" edgedefault=\"undirected\">\n"
      "    <node id=\"a\"/><node id=\"b\"/><node id=\"c\"/>\n"
      "    <edge source=\"a\" target=\"b\"/>\n"
      "    <edge source=\"b\" target=\"c\"/>\n"
      "  </graph>\n"
      "</graphml>\n");
  const CsrGraph parsed = read_graphml(ok, "inline");
  EXPECT_EQ(parsed.num_vertices(), 3u);
  EXPECT_EQ(parsed.num_arcs(), 4u);  // two undirected edges, both arcs
  EXPECT_FALSE(parsed.directed());
}

TEST(IoFuzz, BitFlippedBinary) {
  const CsrGraph g = cycle(30);
  std::ostringstream out(std::ios::out | std::ios::binary);
  write_binary(out, g);
  std::string bytes = out.str();
  Xoshiro256 rng(5);
  for (int round = 0; round < 40; ++round) {
    std::string mutated = bytes;
    const std::size_t pos = rng.bounded(mutated.size());
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << rng.bounded(8)));
    std::istringstream in(mutated, std::ios::in | std::ios::binary);
    try {
      const CsrGraph parsed = read_binary(in);
      // A surviving parse must still be structurally sane.
      EXPECT_LE(parsed.num_arcs(), bytes.size());
    } catch (const Error&) {
    } catch (const std::logic_error&) {
      // Bit flips in the payload may trip internal invariant checks; that
      // is an acceptable controlled failure, unlike a crash.
    }
  }
}

}  // namespace
}  // namespace apgre
