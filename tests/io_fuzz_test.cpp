// Parser robustness: every reader must either parse or throw apgre::Error —
// never crash, hang, or return an inconsistent graph — for arbitrary and
// truncated inputs. Seeds are deterministic; each case feeds mutated or
// random bytes to all four parsers.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "graph/io_binary.hpp"
#include "graph/io_dimacs.hpp"
#include "graph/io_metis.hpp"
#include "graph/io_snap.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"

namespace apgre {
namespace {

void expect_parse_or_error(const std::string& bytes) {
  {
    std::istringstream in(bytes);
    try {
      const SnapGraph g = read_snap(in, true);
      EXPECT_LE(g.graph.num_arcs(), bytes.size());  // sanity: bounded output
    } catch (const Error&) {
    }
  }
  {
    std::istringstream in(bytes);
    try {
      (void)read_dimacs(in, true);
    } catch (const Error&) {
    }
  }
  {
    std::istringstream in(bytes);
    try {
      (void)read_metis(in);
    } catch (const Error&) {
    }
  }
  {
    std::istringstream in(bytes, std::ios::in | std::ios::binary);
    try {
      (void)read_binary(in);
    } catch (const Error&) {
    }
  }
}

TEST(IoFuzz, RandomPrintableGarbage) {
  Xoshiro256 rng(1);
  for (int round = 0; round < 50; ++round) {
    std::string bytes;
    const std::size_t length = rng.bounded(400);
    for (std::size_t i = 0; i < length; ++i) {
      bytes.push_back(static_cast<char>(' ' + rng.bounded(95)));
    }
    expect_parse_or_error(bytes);
  }
}

TEST(IoFuzz, RandomBinaryGarbage) {
  Xoshiro256 rng(2);
  for (int round = 0; round < 50; ++round) {
    std::string bytes;
    const std::size_t length = rng.bounded(400);
    for (std::size_t i = 0; i < length; ++i) {
      bytes.push_back(static_cast<char>(rng.bounded(256)));
    }
    expect_parse_or_error(bytes);
  }
}

TEST(IoFuzz, TruncatedValidFiles) {
  const CsrGraph g = erdos_renyi(40, 120, true, 3);
  std::ostringstream snap;
  write_snap(snap, g);
  std::ostringstream dimacs;
  write_dimacs(dimacs, g);
  std::ostringstream binary(std::ios::out | std::ios::binary);
  write_binary(binary, g);

  Xoshiro256 rng(4);
  for (const std::string& full :
       {snap.str(), dimacs.str(), binary.str()}) {
    for (int round = 0; round < 20; ++round) {
      expect_parse_or_error(full.substr(0, rng.bounded(full.size() + 1)));
    }
  }
}

TEST(IoFuzz, BitFlippedBinary) {
  const CsrGraph g = cycle(30);
  std::ostringstream out(std::ios::out | std::ios::binary);
  write_binary(out, g);
  std::string bytes = out.str();
  Xoshiro256 rng(5);
  for (int round = 0; round < 40; ++round) {
    std::string mutated = bytes;
    const std::size_t pos = rng.bounded(mutated.size());
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << rng.bounded(8)));
    std::istringstream in(mutated, std::ios::in | std::ios::binary);
    try {
      const CsrGraph parsed = read_binary(in);
      // A surviving parse must still be structurally sane.
      EXPECT_LE(parsed.num_arcs(), bytes.size());
    } catch (const Error&) {
    } catch (const std::logic_error&) {
      // Bit flips in the payload may trip internal invariant checks; that
      // is an acceptable controlled failure, unlike a crash.
    }
  }
}

}  // namespace
}  // namespace apgre
