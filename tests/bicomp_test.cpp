#include <gtest/gtest.h>

#include <map>

#include "bcc/articulation.hpp"
#include "bcc/bicomp.hpp"
#include "bcc/block_cut_tree.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"
#include "test_util.hpp"

namespace apgre {
namespace {

/// Structural invariants every biconnected decomposition must satisfy.
void check_invariants(const CsrGraph& g) {
  const CsrGraph u = undirected_projection(g);
  const BiconnectedComponents bcc = biconnected_components(u);

  // 1. Articulation flags agree with the independent implementation.
  EXPECT_EQ(bcc.is_articulation, articulation_points(u));

  // 2. Every undirected edge appears in exactly one component.
  std::map<Edge, int> edge_count;
  for (const Edge& e : u.arcs()) {
    if (e.src < e.dst) edge_count[e] = 0;
  }
  for (const auto& edges : bcc.component_edges) {
    for (const Edge& e : edges) {
      ASSERT_TRUE(edge_count.contains(e)) << e.src << "-" << e.dst;
      ++edge_count[e];
    }
  }
  for (const auto& [e, count] : edge_count) {
    EXPECT_EQ(count, 1) << "edge " << e.src << "-" << e.dst;
  }

  // 3. Component vertex sets are exactly the endpoints of their edges.
  for (Vertex c = 0; c < bcc.num_components; ++c) {
    std::vector<Vertex> endpoints;
    for (const Edge& e : bcc.component_edges[c]) {
      endpoints.push_back(e.src);
      endpoints.push_back(e.dst);
    }
    std::sort(endpoints.begin(), endpoints.end());
    endpoints.erase(std::unique(endpoints.begin(), endpoints.end()), endpoints.end());
    EXPECT_EQ(bcc.component_vertices[c], endpoints);
  }

  // 4. A non-articulation vertex with edges belongs to exactly one
  //    component; articulation points to at least two.
  std::vector<int> membership(u.num_vertices(), 0);
  for (const auto& vertices : bcc.component_vertices) {
    for (Vertex v : vertices) ++membership[v];
  }
  for (Vertex v = 0; v < u.num_vertices(); ++v) {
    if (u.out_degree(v) == 0) {
      EXPECT_EQ(membership[v], 0);
      EXPECT_EQ(bcc.any_component[v], kInvalidVertex);
    } else if (bcc.is_articulation[v]) {
      EXPECT_GE(membership[v], 2);
    } else {
      EXPECT_EQ(membership[v], 1);
    }
  }

  // 5. The block-cut tree is a forest.
  EXPECT_TRUE(is_forest(block_cut_tree(bcc, u.num_vertices())));
}

TEST(Bicomp, CycleIsOneComponent) {
  const BiconnectedComponents bcc = biconnected_components(cycle(6));
  EXPECT_EQ(bcc.num_components, 1u);
  EXPECT_EQ(bcc.component_vertices[0].size(), 6u);
}

TEST(Bicomp, PathSplitsPerEdge) {
  const BiconnectedComponents bcc = biconnected_components(path(5));
  EXPECT_EQ(bcc.num_components, 4u);
  for (const auto& edges : bcc.component_edges) EXPECT_EQ(edges.size(), 1u);
}

TEST(Bicomp, BarbellHasCliquesAndBridges) {
  // barbell(4, 0): two K4 joined by one bridge edge -> 3 components.
  const BiconnectedComponents bcc = biconnected_components(barbell(4, 0));
  EXPECT_EQ(bcc.num_components, 3u);
  std::vector<std::size_t> sizes;
  for (const auto& vs : bcc.component_vertices) sizes.push_back(vs.size());
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<std::size_t>{2, 4, 4}));
}

TEST(Bicomp, PaperFigure3Blocks) {
  const BiconnectedComponents bcc = biconnected_components(paper_figure3());
  // Blocks: {2,3,4,5,6}, {6,7,8,9}, {3,10,11,12}, and bridges {0,2}, {1,2}.
  EXPECT_EQ(bcc.num_components, 5u);
  std::vector<std::size_t> sizes;
  for (const auto& vs : bcc.component_vertices) sizes.push_back(vs.size());
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<std::size_t>{2, 2, 4, 4, 5}));
}

TEST(Bicomp, IsolatedVerticesBelongToNoComponent) {
  const CsrGraph g = CsrGraph::undirected_from_edges(4, {{0, 1}});
  const BiconnectedComponents bcc = biconnected_components(g);
  EXPECT_EQ(bcc.num_components, 1u);
  EXPECT_EQ(bcc.any_component[2], kInvalidVertex);
}

TEST(BlockCutTree, StarOfBlocks) {
  // Two triangles sharing vertex 0: block-cut tree = block - AP - block.
  const CsrGraph g = CsrGraph::undirected_from_edges(
      5, {{0, 1}, {1, 2}, {2, 0}, {0, 3}, {3, 4}, {4, 0}});
  const BiconnectedComponents bcc = biconnected_components(g);
  const BlockCutTree tree = block_cut_tree(bcc, 5);
  EXPECT_EQ(tree.num_blocks(), 2u);
  EXPECT_EQ(tree.num_aps(), 1u);
  EXPECT_EQ(tree.articulation_vertices[0], 0u);
  EXPECT_EQ(tree.ap_blocks[0].size(), 2u);
  EXPECT_TRUE(is_forest(tree));
}

class BicompSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BicompSweep, InvariantsHoldOnRandomGraphs) {
  for (const auto& gc : testing::graph_family(GetParam(), /*tiny=*/true)) {
    SCOPED_TRACE(gc.name);
    check_invariants(gc.graph);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BicompSweep,
                         ::testing::Values(2, 12, 22, 32, 42, 52, 62, 72));

}  // namespace
}  // namespace apgre
