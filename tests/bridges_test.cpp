#include <gtest/gtest.h>

#include "bcc/bridges.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace apgre {
namespace {

TEST(Bridges, PathEveryEdgeIsABridge) {
  const BridgeDecomposition d = bridge_decomposition(path(5));
  EXPECT_EQ(d.bridges.size(), 4u);
  // All 2ecc components are singletons.
  EXPECT_EQ(d.num_components, 5u);
}

TEST(Bridges, CycleHasNone) {
  const BridgeDecomposition d = bridge_decomposition(cycle(8));
  EXPECT_TRUE(d.bridges.empty());
  EXPECT_EQ(d.num_components, 1u);
}

TEST(Bridges, BarbellBridgePath) {
  // barbell(4, 1): bridge chain 3-4-5 contributes bridges {3,4} and {4,5}.
  const BridgeDecomposition d = bridge_decomposition(barbell(4, 1));
  EXPECT_EQ(d.bridges, (EdgeList{{3, 4}, {4, 5}}));
  EXPECT_EQ(d.num_components, 3u);  // two cliques + lone bridge vertex
  EXPECT_EQ(d.component[0], d.component[3]);
  EXPECT_NE(d.component[3], d.component[4]);
  EXPECT_NE(d.component[4], d.component[5]);
}

TEST(Bridges, CaveManBridgesEqualCliqueLinks) {
  const BridgeDecomposition d = bridge_decomposition(caveman(5, 4, 7));
  EXPECT_EQ(d.bridges.size(), 4u);  // one link between consecutive cliques
  EXPECT_EQ(d.num_components, 5u);
}

TEST(Bridges, PendantEdgesAreBridges) {
  const CsrGraph g = attach_pendants(cycle(6), 3, 5);
  const BridgeDecomposition d = bridge_decomposition(g);
  EXPECT_EQ(d.bridges.size(), 3u);
}

TEST(Bridges, DirectedUsesProjection) {
  const CsrGraph g = CsrGraph::from_edges(3, {{0, 1}, {1, 2}}, true);
  const BridgeDecomposition d = bridge_decomposition(g);
  EXPECT_EQ(d.bridges.size(), 2u);
}

TEST(Bridges, IsolatedVerticesGetOwnComponents) {
  const CsrGraph g = CsrGraph::undirected_from_edges(4, {{0, 1}});
  const BridgeDecomposition d = bridge_decomposition(g);
  EXPECT_EQ(d.num_components, 4u);
}

class BridgeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BridgeSweep, MatchesBruteForce) {
  for (const auto& gc : testing::graph_family(GetParam(), /*tiny=*/true)) {
    SCOPED_TRACE(gc.name);
    const BridgeDecomposition d = bridge_decomposition(gc.graph);
    EXPECT_EQ(d.bridges, bridges_bruteforce(gc.graph));
    // 2ecc endpoints of a bridge are in different components; non-bridge
    // edges join equal components.
    const CsrGraph u = gc.graph.directed()
                           ? undirected_projection(gc.graph)
                           : gc.graph;
    for (const Edge& e : u.arcs()) {
      const Edge canonical{std::min(e.src, e.dst), std::max(e.src, e.dst)};
      const bool is_bridge =
          std::binary_search(d.bridges.begin(), d.bridges.end(), canonical);
      EXPECT_EQ(d.component[e.src] != d.component[e.dst], is_bridge);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BridgeSweep, ::testing::Values(101, 111, 121, 131));

}  // namespace
}  // namespace apgre
