#include <gtest/gtest.h>

#include "graph/csr.hpp"

namespace apgre {
namespace {

TEST(CsrGraph, EmptyGraph) {
  const CsrGraph g = CsrGraph::from_edges(0, {}, false);
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_arcs(), 0u);
  EXPECT_TRUE(g.is_symmetric());
}

TEST(CsrGraph, VerticesWithoutEdges) {
  const CsrGraph g = CsrGraph::from_edges(5, {{0, 1}}, true);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_arcs(), 1u);
  EXPECT_EQ(g.out_degree(4), 0u);
  EXPECT_EQ(g.in_degree(4), 0u);
  EXPECT_TRUE(g.out_neighbors(4).empty());
}

TEST(CsrGraph, DirectedAdjacency) {
  const CsrGraph g = CsrGraph::from_edges(4, {{0, 1}, {0, 2}, {2, 1}, {3, 0}}, true);
  ASSERT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_neighbors(0)[0], 1u);
  EXPECT_EQ(g.out_neighbors(0)[1], 2u);
  EXPECT_EQ(g.in_degree(1), 2u);
  EXPECT_EQ(g.in_neighbors(1)[0], 0u);
  EXPECT_EQ(g.in_neighbors(1)[1], 2u);
  EXPECT_EQ(g.in_degree(0), 1u);
  EXPECT_EQ(g.out_degree(3), 1u);
  EXPECT_TRUE(g.directed());
  EXPECT_FALSE(g.is_symmetric());
}

TEST(CsrGraph, UndirectedSharesAdjacency) {
  const CsrGraph g = CsrGraph::undirected_from_edges(3, {{0, 1}, {1, 2}});
  EXPECT_FALSE(g.directed());
  EXPECT_EQ(g.num_arcs(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.is_symmetric());
  ASSERT_EQ(g.in_degree(1), 2u);
  EXPECT_EQ(g.in_neighbors(1)[0], g.out_neighbors(1)[0]);
}

TEST(CsrGraph, RemovesSelfLoopsAndDuplicates) {
  const CsrGraph g =
      CsrGraph::from_edges(3, {{0, 0}, {0, 1}, {0, 1}, {1, 2}, {2, 2}}, true);
  EXPECT_EQ(g.num_arcs(), 2u);
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.out_degree(2), 0u);
}

TEST(CsrGraph, ArcsRoundTrip) {
  const EdgeList edges{{0, 1}, {1, 2}, {2, 0}, {2, 1}};
  const CsrGraph g = CsrGraph::from_edges(3, edges, true);
  EdgeList sorted = edges;
  sort_unique(sorted);
  EXPECT_EQ(g.arcs(), sorted);
}

TEST(CsrGraph, EqualityComparesStructure) {
  const CsrGraph a = CsrGraph::from_edges(3, {{0, 1}, {1, 2}}, true);
  const CsrGraph b = CsrGraph::from_edges(3, {{1, 2}, {0, 1}}, true);
  const CsrGraph c = CsrGraph::from_edges(3, {{0, 1}}, true);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(CsrGraph, UndirectedDegreeOnDirectedGraph) {
  // 0 -> 1, 1 -> 0 (one mutual pair), 0 -> 2.
  const CsrGraph g = CsrGraph::from_edges(3, {{0, 1}, {1, 0}, {0, 2}}, true);
  EXPECT_EQ(g.undirected_degree(0), 2u);  // neighbours {1, 2}
  EXPECT_EQ(g.undirected_degree(1), 1u);
  EXPECT_EQ(g.undirected_degree(2), 1u);
}

TEST(CsrGraph, OffsetsAreConsistentWithDegrees) {
  const CsrGraph g = CsrGraph::from_edges(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}}, true);
  EXPECT_EQ(g.out_offset(0), 0u);
  EXPECT_EQ(g.out_offset(1), 2u);
  EXPECT_EQ(g.out_offset(2), 3u);
  EXPECT_EQ(g.in_offset(3) + g.in_degree(3), g.num_arcs());
}

TEST(CsrGraph, OutOfRangeEdgeIsRejected) {
  EXPECT_THROW(CsrGraph::from_edges(2, {{0, 5}}, true), std::logic_error);
}

TEST(CsrGraph, NeighborListsAreSorted) {
  const CsrGraph g = CsrGraph::from_edges(5, {{0, 4}, {0, 1}, {0, 3}, {0, 2}}, true);
  const auto ns = g.out_neighbors(0);
  ASSERT_EQ(ns.size(), 4u);
  EXPECT_TRUE(std::is_sorted(ns.begin(), ns.end()));
}

}  // namespace
}  // namespace apgre
