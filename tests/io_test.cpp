#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "graph/io_dimacs.hpp"
#include "graph/io_metis.hpp"
#include "graph/io_snap.hpp"
#include "support/error.hpp"

namespace apgre {
namespace {

TEST(SnapIo, ParsesCommentsAndCompactsIds) {
  std::istringstream in(
      "# Directed graph\n"
      "# FromNodeId\tToNodeId\n"
      "100 200\n"
      "200 300\n"
      "100 300\n");
  const SnapGraph g = read_snap(in, /*directed=*/true);
  EXPECT_EQ(g.graph.num_vertices(), 3u);
  EXPECT_EQ(g.graph.num_arcs(), 3u);
  ASSERT_EQ(g.original_ids.size(), 3u);
  EXPECT_EQ(g.original_ids[0], 100u);
  EXPECT_EQ(g.original_ids[1], 200u);
  EXPECT_EQ(g.original_ids[2], 300u);
}

TEST(SnapIo, UndirectedModeSymmetrises) {
  std::istringstream in("0 1\n1 2\n");
  const SnapGraph g = read_snap(in, /*directed=*/false);
  EXPECT_TRUE(g.graph.is_symmetric());
  EXPECT_EQ(g.graph.num_arcs(), 4u);
}

TEST(SnapIo, MalformedLineThrows) {
  std::istringstream in("0 1\nnot numbers\n");
  EXPECT_THROW(read_snap(in, true), ParseError);
}

TEST(SnapIo, RoundTripsDirectedGraph) {
  const CsrGraph original = erdos_renyi(60, 200, true, 17);
  std::stringstream buffer;
  write_snap(buffer, original);
  const SnapGraph parsed = read_snap(buffer, true);
  // IDs compact in first-appearance order, which matches sorted arcs here
  // only up to isolated vertices; compare arc structure via counts.
  EXPECT_EQ(parsed.graph.num_arcs(), original.num_arcs());
}

TEST(SnapIo, RoundTripsUndirectedEdgesOnce) {
  const CsrGraph original = cycle(6);
  std::stringstream buffer;
  write_snap(buffer, original);
  const SnapGraph parsed = read_snap(buffer, false);
  EXPECT_EQ(parsed.graph.num_vertices(), 6u);
  EXPECT_EQ(parsed.graph.num_arcs(), original.num_arcs());
}

TEST(DimacsIo, ParsesHeaderAndArcs) {
  std::istringstream in(
      "c USA-road sample\n"
      "p sp 4 4\n"
      "a 1 2 7\n"
      "a 2 3 5\n"
      "a 3 4 2\n"
      "a 4 1 9\n");
  const CsrGraph g = read_dimacs(in, /*directed=*/true);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_arcs(), 4u);
  EXPECT_EQ(g.out_neighbors(0)[0], 1u);  // 1-based converted to 0-based
}

TEST(DimacsIo, WeightColumnIsOptional) {
  std::istringstream in("p sp 2 1\na 1 2\n");
  const CsrGraph g = read_dimacs(in, true);
  EXPECT_EQ(g.num_arcs(), 1u);
}

TEST(DimacsIo, RejectsMissingHeader) {
  std::istringstream in("a 1 2 3\n");
  EXPECT_THROW(read_dimacs(in, true), ParseError);
}

TEST(DimacsIo, RejectsOutOfRangeVertex) {
  std::istringstream in("p sp 2 1\na 1 9 1\n");
  EXPECT_THROW(read_dimacs(in, true), ParseError);
}

TEST(DimacsIo, RejectsUnknownTag) {
  std::istringstream in("p sp 2 1\nx 1 2\n");
  EXPECT_THROW(read_dimacs(in, true), ParseError);
}

TEST(DimacsIo, RoundTrip) {
  const CsrGraph original = road_grid(5, 5, 0.2, 0.0, 3);
  std::stringstream buffer;
  write_dimacs(buffer, original);
  const CsrGraph parsed = read_dimacs(buffer, false);
  EXPECT_EQ(parsed, original);
}

TEST(MetisIo, ParsesAdjacencyLines) {
  std::istringstream in(
      "% comment\n"
      "3 2\n"
      "2\n"
      "1 3\n"
      "2\n");
  const CsrGraph g = read_metis(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.is_symmetric());
}

TEST(MetisIo, RejectsWeightedFormat) {
  std::istringstream in("2 1 1\n2 5\n1 5\n");
  EXPECT_THROW(read_metis(in), Error);
}

TEST(MetisIo, RejectsTruncatedInput) {
  std::istringstream in("3 2\n2\n");
  EXPECT_THROW(read_metis(in), ParseError);
}

TEST(MetisIo, RoundTrip) {
  const CsrGraph original = caveman(3, 4, 9);
  std::stringstream buffer;
  write_metis(buffer, original);
  const CsrGraph parsed = read_metis(buffer);
  EXPECT_EQ(parsed, original);
}

TEST(MetisIo, RefusesDirectedWrite) {
  const CsrGraph g = erdos_renyi(10, 20, true, 1);
  std::ostringstream out;
  EXPECT_THROW(write_metis(out, g), Error);
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW(read_snap_file("/nonexistent/graph.txt", true), Error);
  EXPECT_THROW(read_dimacs_file("/nonexistent/graph.gr", true), Error);
  EXPECT_THROW(read_metis_file("/nonexistent/graph.metis"), Error);
}

}  // namespace
}  // namespace apgre
