#include <gtest/gtest.h>

#include "bcc/queries.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/mutate.hpp"
#include "graph/transform.hpp"
#include "support/prng.hpp"
#include "test_util.hpp"

namespace apgre {
namespace {

/// Oracle: does removing `a` disconnect u from v in the projection?
bool separates_bruteforce(const CsrGraph& g, Vertex a, Vertex u, Vertex v) {
  if (a == u || a == v || u == v) return false;
  const CsrGraph und = g.directed() ? undirected_projection(g) : g;
  // Connected before?
  const ComponentLabels before = connected_components(und);
  if (before.component[u] != before.component[v]) return false;
  EdgeList arcs = und.arcs();
  std::erase_if(arcs, [a](const Edge& e) { return e.src == a || e.dst == a; });
  const CsrGraph without = CsrGraph::from_edges(und.num_vertices(), std::move(arcs), false);
  const ComponentLabels after = connected_components(without);
  return after.component[u] != after.component[v];
}

TEST(BlockCutQueries, PathSeparation) {
  const BlockCutQueries q(path(5));
  EXPECT_TRUE(q.separates(2, 0, 4));
  EXPECT_TRUE(q.separates(1, 0, 2));
  EXPECT_FALSE(q.separates(0, 1, 4));  // endpoint is not between
  EXPECT_FALSE(q.separates(3, 0, 2));  // not on the path section
  EXPECT_FALSE(q.separates(2, 2, 4));  // a == u
}

TEST(BlockCutQueries, CycleNeverSeparates) {
  const BlockCutQueries q(cycle(8));
  for (Vertex a = 0; a < 8; ++a) {
    EXPECT_FALSE(q.separates(a, (a + 1) % 8, (a + 7) % 8));
  }
}

TEST(BlockCutQueries, SameBlockOnBarbell) {
  const BlockCutQueries q(barbell(4, 1));
  EXPECT_TRUE(q.same_block(0, 3));    // same clique
  EXPECT_FALSE(q.same_block(0, 5));   // opposite cliques
  EXPECT_TRUE(q.same_block(3, 4));    // bridge block {3,4}; both APs
  EXPECT_TRUE(q.same_block(4, 5));
  EXPECT_FALSE(q.same_block(3, 5));   // different bridge blocks
  EXPECT_TRUE(q.same_block(2, 2));
}

TEST(BlockCutQueries, ConnectedAcrossComponents) {
  const CsrGraph g = CsrGraph::undirected_from_edges(6, {{0, 1}, {1, 2}, {3, 4}});
  const BlockCutQueries q(g);
  EXPECT_TRUE(q.connected(0, 2));
  EXPECT_FALSE(q.connected(0, 3));
  EXPECT_FALSE(q.connected(0, 5));  // isolated vertex
  EXPECT_TRUE(q.connected(5, 5));
  EXPECT_FALSE(q.separates(1, 0, 3));  // already disconnected
}

TEST(BlockCutQueries, NonArticulationNeverSeparates) {
  const BlockCutQueries q(complete(5));
  for (Vertex a = 0; a < 5; ++a) {
    EXPECT_FALSE(q.separates(a, (a + 1) % 5, (a + 2) % 5));
  }
}

TEST(ClassifyUpdate, ChordInsertBetweenNonApVerticesIsLocal) {
  // Barbell cliques are blocks; 0..3 is one K4. A chord cannot exist in a
  // clique, so use two cycles sharing AP 0 instead.
  const CsrGraph g = CsrGraph::undirected_from_edges(
      9, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0},
          {0, 6}, {6, 7}, {7, 8}, {8, 0}});
  const BlockCutQueries q(g);
  EXPECT_EQ(q.classify_update(1, 3, true), UpdateLocality::kLocalInsert);
  EXPECT_EQ(q.classify_update(6, 8, true), UpdateLocality::kLocalInsert);
  // AP endpoint: the insert may merge blocks -> structural.
  EXPECT_EQ(q.classify_update(0, 2, true), UpdateLocality::kStructural);
  // Endpoints in different blocks -> structural.
  EXPECT_EQ(q.classify_update(1, 7, true), UpdateLocality::kStructural);
}

TEST(ClassifyUpdate, DenseBlockDeleteIsLocalCycleDeleteIsNot) {
  // K5 on {0..4} sharing AP 0 with cycle {0,5,6}.
  const CsrGraph g = CsrGraph::undirected_from_edges(
      7, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4},
          {2, 3}, {2, 4}, {3, 4}, {0, 5}, {5, 6}, {6, 0}});
  const BlockCutQueries q(g);
  // K5 minus any edge stays one biconnected component — AP endpoints are
  // fine for deletes (the edge partition is unchanged).
  EXPECT_EQ(q.classify_update(1, 2, false), UpdateLocality::kLocalDelete);
  EXPECT_EQ(q.classify_update(0, 3, false), UpdateLocality::kLocalDelete);
  // The triangle {0,5,6} minus an edge is a path: block dissolves.
  EXPECT_EQ(q.classify_update(5, 6, false), UpdateLocality::kStructural);
}

TEST(ClassifyUpdate, BridgeDeleteIsStructural) {
  const BlockCutQueries q(path(4));
  EXPECT_EQ(q.classify_update(1, 2, false), UpdateLocality::kStructural);
}

// Satellite regression: the block-cut machinery reasons about undirected
// biconnectivity, so directed graphs must classify conservatively —
// every insert AND delete is structural, never a misrouted local patch.
TEST(ClassifyUpdate, DirectedGraphsAreAlwaysStructural) {
  const CsrGraph g =
      CsrGraph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}, true);
  const BlockCutQueries q(g);
  EXPECT_EQ(q.classify_update(0, 2, true), UpdateLocality::kStructural);
  EXPECT_EQ(q.classify_update(0, 1, false), UpdateLocality::kStructural);
  EXPECT_EQ(q.classify_update(1, 3, true), UpdateLocality::kStructural);
}

// Without patching the block's edge multiset after a local delete, a later
// delete would be classified against stale edges: in K4, after removing
// {0,1}, removing {0,2} leaves vertex 0 with a single neighbour — the
// block dissolves, and only a patched classifier can see that.
TEST(ClassifyUpdate, ApplyLocalUpdateKeepsLaterClassificationsExact) {
  const CsrGraph g = CsrGraph::undirected_from_edges(
      4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  BlockCutQueries q(g);
  ASSERT_EQ(q.classify_update(0, 1, false), UpdateLocality::kLocalDelete);
  q.apply_local_update(0, 1, /*inserting=*/false);
  // Stale edges would still say K4 minus {0,2} is biconnected.
  EXPECT_EQ(q.classify_update(0, 2, false), UpdateLocality::kStructural);
  EXPECT_EQ(q.classify_update(2, 3, false), UpdateLocality::kLocalDelete);
  // Re-inserting {0,1} restores the original multiset and verdicts.
  q.apply_local_update(0, 1, /*inserting=*/true);
  EXPECT_EQ(q.classify_update(0, 2, false), UpdateLocality::kLocalDelete);
}

// The peeled Solver (bc/bc.hpp) caches a 2-core reduction and only splices
// core-core kLocal updates into it; any update incident to the peeled
// forest must therefore route kStructural so the peel is recomputed. Pin
// that for every peeled vertex: the fringe consists of bridges and
// cut-vertex attachments, which the classifier already grades structural.
TEST(ClassifyUpdate, ForestIncidentUpdatesAreStructuralOnPeeledGraphs) {
  // Dense core (K4) with a chain 0-4-5 and a pendant 6 off vertex 1.
  const CsrGraph g = CsrGraph::undirected_from_edges(
      7, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
          {0, 4}, {4, 5}, {1, 6}});
  const PeelResult peel = two_core_peel(g);
  ASSERT_EQ(peel.num_peeled, 3u);
  const BlockCutQueries q(g);
  for (const PeeledVertex& p : peel.forest) {
    // Deleting the edge to the parent severs the subtree: structural.
    EXPECT_EQ(q.classify_update(p.vertex, p.parent, false),
              UpdateLocality::kStructural)
        << "delete at peeled vertex " << p.vertex;
    // Inserting a chord from a peeled vertex into the core crosses blocks
    // (and would pull the vertex into the 2-core): structural.
    for (Vertex core_v = 0; core_v < 4; ++core_v) {
      if (has_arc(g, p.vertex, core_v)) continue;
      EXPECT_EQ(q.classify_update(p.vertex, core_v, true),
                UpdateLocality::kStructural)
          << "insert " << p.vertex << "-" << core_v;
    }
  }
  // Core-side chord stays local — peeling must not widen the fast path's
  // blast radius.
  EXPECT_EQ(q.classify_update(2, 3, false), UpdateLocality::kLocalDelete);
}

TEST(ClassifyUpdate, CommonBlockOnBarbell) {
  const BlockCutQueries q(barbell(4, 1));
  EXPECT_NE(q.common_block(0, 3), kInvalidVertex);   // same clique
  EXPECT_EQ(q.common_block(0, 5), kInvalidVertex);   // opposite cliques
  EXPECT_NE(q.common_block(3, 4), kInvalidVertex);   // bridge block, two APs
  EXPECT_EQ(q.common_block(3, 5), kInvalidVertex);   // different bridges
}

class QueriesSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueriesSweep, SeparationMatchesBruteForceOnSampledTriples) {
  for (const auto& gc : testing::graph_family(GetParam(), /*tiny=*/true)) {
    SCOPED_TRACE(gc.name);
    const BlockCutQueries q(gc.graph);
    const Vertex n = gc.graph.num_vertices();
    Xoshiro256 rng(GetParam());
    for (int trial = 0; trial < 60; ++trial) {
      const auto a = static_cast<Vertex>(rng.bounded(n));
      const auto u = static_cast<Vertex>(rng.bounded(n));
      const auto v = static_cast<Vertex>(rng.bounded(n));
      EXPECT_EQ(q.separates(a, u, v), separates_bruteforce(gc.graph, a, u, v))
          << "a=" << a << " u=" << u << " v=" << v;
    }
  }
}

TEST_P(QueriesSweep, SameBlockMatchesMembership) {
  for (const auto& gc : testing::graph_family(GetParam(), /*tiny=*/true)) {
    SCOPED_TRACE(gc.name);
    const BlockCutQueries q(gc.graph);
    const auto& bcc = q.bcc();
    const Vertex n = gc.graph.num_vertices();
    Xoshiro256 rng(GetParam() + 1);
    for (int trial = 0; trial < 60; ++trial) {
      const auto u = static_cast<Vertex>(rng.bounded(n));
      const auto v = static_cast<Vertex>(rng.bounded(n));
      bool expected = u == v;
      for (Vertex c = 0; c < bcc.num_components && !expected; ++c) {
        const auto& members = bcc.component_vertices[c];
        expected = std::binary_search(members.begin(), members.end(), u) &&
                   std::binary_search(members.begin(), members.end(), v);
      }
      EXPECT_EQ(q.same_block(u, v), expected) << "u=" << u << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueriesSweep, ::testing::Values(141, 151, 161));

}  // namespace
}  // namespace apgre
