#include <gtest/gtest.h>

#include "graph/components.hpp"
#include "graph/degree.hpp"
#include "graph/generators.hpp"

namespace apgre {
namespace {

TEST(Shapes, PathHasChainStructure) {
  const CsrGraph g = path(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.out_degree(2), 2u);
  EXPECT_EQ(g.out_degree(4), 1u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Shapes, CycleIsTwoRegular) {
  const CsrGraph g = cycle(7);
  EXPECT_EQ(g.num_edges(), 7u);
  for (Vertex v = 0; v < 7; ++v) EXPECT_EQ(g.out_degree(v), 2u);
}

TEST(Shapes, StarCentreTouchesAll) {
  const CsrGraph g = star(10);
  EXPECT_EQ(g.out_degree(0), 9u);
  for (Vertex v = 1; v < 10; ++v) EXPECT_EQ(g.out_degree(v), 1u);
}

TEST(Shapes, CompleteGraph) {
  const CsrGraph g = complete(6);
  EXPECT_EQ(g.num_edges(), 15u);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(g.out_degree(v), 5u);
}

TEST(Shapes, BinaryTreeIsATree) {
  const CsrGraph g = binary_tree(15);
  EXPECT_EQ(g.num_edges(), 14u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(14), 1u);  // leaf
}

TEST(Shapes, BarbellStructure) {
  const CsrGraph g = barbell(5, 3);
  EXPECT_EQ(g.num_vertices(), 13u);
  EXPECT_TRUE(is_connected(g));
  // Bridge path vertices have degree 2.
  EXPECT_EQ(g.out_degree(5), 2u);
  EXPECT_EQ(g.out_degree(6), 2u);
  EXPECT_EQ(g.out_degree(7), 2u);
}

TEST(Shapes, PaperFigure3Layout) {
  const CsrGraph g = paper_figure3();
  EXPECT_EQ(g.num_vertices(), 13u);
  EXPECT_TRUE(g.directed());
  // Pendants 0 and 1: single out-arc to vertex 2, no in-arcs.
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.in_degree(0), 0u);
  EXPECT_EQ(g.out_neighbors(0)[0], 2u);
  EXPECT_EQ(g.out_degree(1), 1u);
  EXPECT_EQ(g.in_degree(1), 0u);
  EXPECT_TRUE(is_connected(g));  // weakly connected
}

TEST(ErdosRenyi, RespectsSizeAndDeterminism) {
  const CsrGraph a = erdos_renyi(100, 300, true, 42);
  const CsrGraph b = erdos_renyi(100, 300, true, 42);
  const CsrGraph c = erdos_renyi(100, 300, true, 43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.num_vertices(), 100u);
  EXPECT_LE(a.num_arcs(), 300u);   // deduplication may remove a few
  EXPECT_GE(a.num_arcs(), 250u);   // but not many
  EXPECT_TRUE(a.directed());
}

TEST(ErdosRenyi, UndirectedVariantIsSymmetric) {
  const CsrGraph g = erdos_renyi(50, 100, false, 7);
  EXPECT_FALSE(g.directed());
  EXPECT_TRUE(g.is_symmetric());
}

TEST(BarabasiAlbert, PowerLawTail) {
  const CsrGraph g = barabasi_albert(2000, 2, 123);
  EXPECT_EQ(g.num_vertices(), 2000u);
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_TRUE(is_connected(g));
  // Preferential attachment must create hubs far above the mean degree.
  const DegreeStats stats = degree_stats(g);
  EXPECT_GT(stats.max_out_degree, 50u);
  EXPECT_LT(stats.out_degree.mean(), 8.0);
}

TEST(Rmat, SizesAndDirectedness) {
  const CsrGraph g = rmat(8, 8, 0.45, 0.2, 0.2, false, 99);
  EXPECT_EQ(g.num_vertices(), 256u);
  EXPECT_TRUE(g.directed());
  EXPECT_GT(g.num_arcs(), 1000u);
  const CsrGraph s = rmat(8, 8, 0.45, 0.2, 0.2, true, 99);
  EXPECT_TRUE(s.is_symmetric());
}

TEST(Rmat, SkewProducesHubs) {
  const CsrGraph g = rmat(10, 8, 0.55, 0.15, 0.15, false, 5);
  const DegreeStats stats = degree_stats(g);
  EXPECT_GT(stats.max_out_degree, 40u);
}

TEST(WattsStrogatz, RingWithRewiring) {
  const CsrGraph zero = watts_strogatz(100, 2, 0.0, 1);
  // p = 0: pure ring lattice, every vertex has degree 4.
  for (Vertex v = 0; v < 100; ++v) EXPECT_EQ(zero.out_degree(v), 4u);
  const CsrGraph rewired = watts_strogatz(100, 2, 0.5, 1);
  EXPECT_NE(zero, rewired);
  EXPECT_TRUE(rewired.is_symmetric());
}

TEST(RoadGrid, GridStructure) {
  const CsrGraph g = road_grid(10, 12, 0.0, 0.0, 1);
  EXPECT_EQ(g.num_vertices(), 120u);
  // Pure grid: 10*11 + 9*12 edges.
  EXPECT_EQ(g.num_edges(), 110u + 108u);
  EXPECT_TRUE(is_connected(g));
  const CsrGraph with_diag = road_grid(10, 12, 0.5, 0.0, 1);
  EXPECT_GT(with_diag.num_edges(), g.num_edges());
}

TEST(Caveman, CliquesJoinedByBridges) {
  const CsrGraph g = caveman(5, 6, 3);
  EXPECT_EQ(g.num_vertices(), 30u);
  EXPECT_TRUE(is_connected(g));
  // 5 cliques of C(6,2)=15 edges + 4 bridges.
  EXPECT_EQ(g.num_edges(), 5u * 15u + 4u);
}

TEST(RandomTree, HasTreeEdgeCount) {
  const CsrGraph g = random_tree(500, 77);
  EXPECT_EQ(g.num_edges(), 499u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, AllAreSeedDeterministic) {
  EXPECT_EQ(barabasi_albert(200, 3, 5), barabasi_albert(200, 3, 5));
  EXPECT_EQ(rmat(7, 4, 0.45, 0.2, 0.2, false, 5), rmat(7, 4, 0.45, 0.2, 0.2, false, 5));
  EXPECT_EQ(watts_strogatz(80, 3, 0.2, 5), watts_strogatz(80, 3, 0.2, 5));
  EXPECT_EQ(road_grid(8, 8, 0.3, 0.1, 5), road_grid(8, 8, 0.3, 0.1, 5));
  EXPECT_EQ(caveman(4, 5, 5), caveman(4, 5, 5));
  EXPECT_EQ(random_tree(100, 5), random_tree(100, 5));
}

}  // namespace
}  // namespace apgre
