// apgre::Service unit tier: registry semantics, warm-session LRU behaviour,
// AP-aware update invalidation (the cached decomposition must survive an
// edge insert strictly inside one biconnected component — the paper's
// locality argument applied to serving), error responses, and a
// property-based cache-soundness sweep that replays random
// register/solve/update/evict sequences against a fresh-solve oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "bc/bc.hpp"
#include "check/corpus.hpp"
#include "check/oracle.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"
#include "service/service.hpp"
#include "support/metrics.hpp"
#include "test_util.hpp"

namespace apgre {
namespace {

using testing::expect_scores_near;

std::uint64_t decompositions() {
  return metrics().counter("bcc.decompositions").value();
}

/// Single worker / tiny cache: the unit tier drives the service through
/// handle() and wants deterministic, inspectable cache behaviour.
ServiceOptions unit_options(std::size_t capacity = 4) {
  ServiceOptions options;
  options.workers = 1;
  options.session_capacity = capacity;
  return options;
}

Request solve_request(const std::string& graph,
                      Algorithm algorithm = Algorithm::kApgre) {
  Request request;
  request.kind = RequestKind::kSolve;
  request.graph = graph;
  request.options.algorithm = algorithm;
  return request;
}

Request update_request(const std::string& graph, Vertex u, Vertex v,
                       bool inserting) {
  Request request;
  request.kind = RequestKind::kUpdate;
  request.graph = graph;
  request.u = u;
  request.v = v;
  request.inserting = inserting;
  return request;
}

/// Fresh-solve oracle: serial Brandes on the service's current snapshot.
std::vector<double> oracle_scores(const Service& service,
                                  const std::string& name) {
  const auto snap = service.snapshot(name);
  EXPECT_NE(snap, nullptr);
  BcOptions serial;
  serial.algorithm = Algorithm::kBrandesSerial;
  return betweenness(*snap, serial).scores;
}

TEST(Service, SolveMatchesFreshBetweenness) {
  Service service(unit_options());
  const CsrGraph g = attach_pendants(caveman(5, 5, 21), 10, 22);
  service.register_graph("g", g);

  for (Algorithm a : {Algorithm::kBrandesSerial, Algorithm::kApgre}) {
    const Response r = service.handle(solve_request("g", a));
    ASSERT_TRUE(r.ok) << r.error;
    expect_scores_near(oracle_scores(service, "g"), r.scores);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.solves, 2u);
  EXPECT_EQ(stats.errors, 0u);
}

TEST(Service, TopKIsSortedPrefixOfScores) {
  Service service(unit_options());
  service.register_graph("g", caveman(4, 5, 33));

  const Response full = service.handle(solve_request("g"));
  ASSERT_TRUE(full.ok);

  Request top;
  top.kind = RequestKind::kTopK;
  top.graph = "g";
  top.k = 5;
  const Response r = service.handle(top);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.top.size(), 5u);

  // Expected ranking: score descending, vertex id ascending on ties.
  std::vector<Vertex> order(full.scores.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<Vertex>(i);
  }
  std::sort(order.begin(), order.end(), [&](Vertex a, Vertex b) {
    if (full.scores[a] != full.scores[b]) {
      return full.scores[a] > full.scores[b];
    }
    return a < b;
  });
  for (std::size_t i = 0; i < r.top.size(); ++i) {
    EXPECT_EQ(r.top[i].vertex, order[i]) << "rank " << i;
    EXPECT_DOUBLE_EQ(r.top[i].score, full.scores[order[i]]);
  }
}

TEST(Service, WarmSessionIsReused) {
  Service service(unit_options());
  service.register_graph("g", caveman(4, 4, 5));

  EXPECT_FALSE(service.handle(solve_request("g")).session_hit);
  const std::uint64_t after_first = decompositions();
  const Response second = service.handle(solve_request("g"));
  EXPECT_TRUE(second.session_hit);
  EXPECT_EQ(decompositions(), after_first)
      << "a warm session must reuse the cached decomposition";
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.session_hits, 1u);
  EXPECT_EQ(stats.session_misses, 1u);
  EXPECT_EQ(service.session_count(), 1u);
}

// The acceptance criterion: an edge update strictly inside one biconnected
// component (chord between two non-articulation vertices) must NOT
// increment bcc.decompositions — the cached decomposition is patched, not
// recomputed — and the patched solver must still agree with a fresh solve.
TEST(Service, LocalUpdateKeepsCachedDecomposition) {
  Service service(unit_options());
  // Two cycles sharing articulation point 0: C6 {0..5} and C4 {0,6,7,8}.
  EdgeList edges{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0},
                 {0, 6}, {6, 7}, {7, 8}, {8, 0}};
  service.register_graph("g", CsrGraph::undirected_from_edges(9, edges));

  ASSERT_TRUE(service.handle(solve_request("g")).ok);
  const std::uint64_t after_first = decompositions();

  // Chord 1-3 inside the C6 block: both endpoints non-AP, same block.
  const Response update = service.handle(update_request("g", 1, 3, true));
  ASSERT_TRUE(update.ok) << update.error;
  EXPECT_EQ(update.locality, UpdateLocality::kLocalInsert);
  EXPECT_EQ(update.affected_sources, 6u) << "the C6 block has six vertices";

  const Response solved = service.handle(solve_request("g"));
  ASSERT_TRUE(solved.ok) << solved.error;
  EXPECT_TRUE(solved.session_hit);
  EXPECT_EQ(decompositions(), after_first)
      << "local update must not re-decompose";
  expect_scores_near(oracle_scores(service, "g"), solved.scores);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.local_recomputes, 1u)
      << "the cached session must have been patched in place";
  EXPECT_EQ(stats.full_invalidations, 0u);
}

// The delete-side acceptance criterion: removing an edge whose block stays
// one biconnected component (a chord of a dense block) must patch the
// cached session in place — no re-decomposition, no full invalidation —
// and still serve scores matching a fresh solve.
TEST(Service, LocalDeletePatchesSessionWithoutRedecomposition) {
  Service service(unit_options());
  // K5 on {0..4} sharing articulation point 0 with cycle {0,5,6}.
  EdgeList edges{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4},
                 {2, 3}, {2, 4}, {3, 4}, {0, 5}, {5, 6}, {6, 0}};
  service.register_graph("g", CsrGraph::undirected_from_edges(7, edges));

  ASSERT_TRUE(service.handle(solve_request("g")).ok);
  const std::uint64_t after_first = decompositions();

  // K5 minus the edge 1-2 is still one biconnected component.
  const Response update = service.handle(update_request("g", 1, 2, false));
  ASSERT_TRUE(update.ok) << update.error;
  EXPECT_EQ(update.locality, UpdateLocality::kLocalDelete);
  EXPECT_EQ(update.affected_sources, 5u) << "the K5 block has five vertices";

  const Response solved = service.handle(solve_request("g"));
  ASSERT_TRUE(solved.ok) << solved.error;
  EXPECT_TRUE(solved.session_hit);
  EXPECT_EQ(decompositions(), after_first)
      << "a biconnectivity-preserving delete must not re-decompose";
  expect_scores_near(oracle_scores(service, "g"), solved.scores);
  EXPECT_EQ(service.stats().local_recomputes, 1u);
  EXPECT_EQ(service.stats().full_invalidations, 0u);
}

TEST(Service, StructuralUpdateRedecomposes) {
  Service service(unit_options());
  EdgeList edges{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0},
                 {0, 6}, {6, 7}, {7, 8}, {8, 0}};
  service.register_graph("g", CsrGraph::undirected_from_edges(9, edges));
  ASSERT_TRUE(service.handle(solve_request("g")).ok);
  const std::uint64_t after_first = decompositions();

  // 1-7 bridges the two blocks (through vertices on either side of AP 0).
  const Response update = service.handle(update_request("g", 1, 7, true));
  ASSERT_TRUE(update.ok) << update.error;
  EXPECT_EQ(update.locality, UpdateLocality::kStructural);

  const Response solved = service.handle(solve_request("g"));
  ASSERT_TRUE(solved.ok);
  EXPECT_EQ(decompositions(), after_first + 1)
      << "structural update must re-decompose";
  expect_scores_near(oracle_scores(service, "g"), solved.scores);
}

// Deleting a cycle edge leaves a path — the block dissolves into bridges,
// so the classifier must go structural (unlike a chord delete, which stays
// local; see LocalDeletePatchesSessionWithoutRedecomposition).
TEST(Service, BlockDissolvingRemovalIsStructural) {
  Service service(unit_options());
  service.register_graph("g", cycle(6));
  ASSERT_TRUE(service.handle(solve_request("g")).ok);

  const Response update = service.handle(update_request("g", 2, 3, false));
  ASSERT_TRUE(update.ok) << update.error;
  EXPECT_EQ(update.locality, UpdateLocality::kStructural);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.updates_structural, 1u);
  EXPECT_EQ(stats.updates_local, 0u);
  EXPECT_EQ(stats.full_invalidations, 1u);

  const Response solved = service.handle(solve_request("g"));
  ASSERT_TRUE(solved.ok);
  expect_scores_near(oracle_scores(service, "g"), solved.scores);
}

// Satellite regression: directed graphs never take the localized path —
// the block-cut machinery is undirected, so every directed update must be
// conservatively structural regardless of where the edge lands.
TEST(Service, DirectedUpdatesAreConservativelyStructural) {
  Service service(unit_options());
  // A directed 4-cycle: 0 -> 1 -> 2 -> 3 -> 0.
  EdgeList arcs{{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  service.register_graph("g", CsrGraph::from_edges(4, arcs, /*directed=*/true));
  ASSERT_TRUE(service.handle(solve_request("g")).ok);

  const Response insert = service.handle(update_request("g", 0, 2, true));
  ASSERT_TRUE(insert.ok) << insert.error;
  EXPECT_EQ(insert.locality, UpdateLocality::kStructural);
  const Response remove = service.handle(update_request("g", 0, 2, false));
  ASSERT_TRUE(remove.ok) << remove.error;
  EXPECT_EQ(remove.locality, UpdateLocality::kStructural);
  EXPECT_EQ(service.stats().updates_structural, 2u);
  EXPECT_EQ(service.stats().updates_local, 0u);

  const Response solved = service.handle(solve_request("g"));
  ASSERT_TRUE(solved.ok);
  expect_scores_near(oracle_scores(service, "g"), solved.scores);
}

// ---- 2-core peel service lifecycle --------------------------------------

Request peeled_solve_request(const std::string& graph) {
  Request request = solve_request(graph);
  request.options.apgre.partition.peel_two_core = true;
  return request;
}

TEST(Service, PeeledSolveMatchesOracleAndSharesTheSnapshotPeel) {
  Service service(unit_options());
  const CsrGraph g =
      attach_pendants(attach_chains(caveman(4, 4, 3), 4, 3, 4), 8, 5);
  service.register_graph("g", g);

  const std::uint64_t runs_before =
      metrics().counter("graph.peel.runs").value();
  const Response first = service.handle(peeled_solve_request("g"));
  ASSERT_TRUE(first.ok) << first.error;
  expect_scores_near(oracle_scores(service, "g"), first.scores);
  EXPECT_EQ(metrics().counter("graph.peel.runs").value(), runs_before + 1);

  // Warm session: the snapshot-wide peel is adopted, not recomputed, and
  // the peeled decomposition cache survives.
  const std::uint64_t dec_after = decompositions();
  const Response second = service.handle(peeled_solve_request("g"));
  ASSERT_TRUE(second.ok);
  EXPECT_TRUE(second.session_hit);
  EXPECT_EQ(metrics().counter("graph.peel.runs").value(), runs_before + 1)
      << "one peel per snapshot, shared by warm sessions";
  EXPECT_EQ(decompositions(), dec_after);
  EXPECT_EQ(first.scores, second.scores);
}

TEST(Service, StructuralUpdateResetsTheSnapshotPeel) {
  Service service(unit_options());
  // Cycle core {0..5} with the chain 0-6-7 hanging off it.
  const CsrGraph g = CsrGraph::undirected_from_edges(
      8, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 6}, {6, 7}});
  service.register_graph("g", g);
  ASSERT_TRUE(service.handle(peeled_solve_request("g")).ok);

  // Deleting the forest edge 6-7 is structural and reshapes the peel
  // (vertex count unchanged, so only an explicit reset catches it).
  const std::uint64_t runs_before =
      metrics().counter("graph.peel.runs").value();
  const Response update = service.handle(update_request("g", 6, 7, false));
  ASSERT_TRUE(update.ok) << update.error;
  const Response after = service.handle(peeled_solve_request("g"));
  ASSERT_TRUE(after.ok) << after.error;
  expect_scores_near(oracle_scores(service, "g"), after.scores);
  EXPECT_EQ(metrics().counter("graph.peel.runs").value(), runs_before + 1)
      << "a structural update must drop the snapshot peel and re-peel";
}

TEST(Service, LruEvictsLeastRecentlyUsedSession) {
  Service service(unit_options(/*capacity=*/2));
  service.register_graph("a", cycle(5));
  service.register_graph("b", cycle(6));
  service.register_graph("c", cycle(7));

  ASSERT_TRUE(service.handle(solve_request("a")).ok);
  ASSERT_TRUE(service.handle(solve_request("b")).ok);
  ASSERT_TRUE(service.handle(solve_request("c")).ok);  // evicts "a"
  EXPECT_EQ(service.session_count(), 2u);
  EXPECT_EQ(service.stats().session_evictions, 1u);

  // "b" is still warm, "a" went cold.
  EXPECT_TRUE(service.handle(solve_request("b")).session_hit);
  EXPECT_FALSE(service.handle(solve_request("a")).session_hit);
}

TEST(Service, EvictSessionsForcesColdSolves) {
  Service service(unit_options());
  service.register_graph("g", cycle(8));
  ASSERT_TRUE(service.handle(solve_request("g")).ok);
  EXPECT_EQ(service.evict_sessions(), 1u);
  EXPECT_EQ(service.session_count(), 0u);
  EXPECT_FALSE(service.handle(solve_request("g")).session_hit);
}

TEST(Service, RegisterReplacesGraphAndDropsSession) {
  Service service(unit_options());
  service.register_graph("g", cycle(5));
  ASSERT_TRUE(service.handle(solve_request("g")).ok);

  service.register_graph("g", cycle(9));
  const Response r = service.handle(solve_request("g"));
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.session_hit) << "replacement must invalidate the session";
  EXPECT_EQ(r.scores.size(), 9u);
}

TEST(Service, UnregisterRemovesGraph) {
  Service service(unit_options());
  service.register_graph("g", cycle(5));
  EXPECT_TRUE(service.unregister_graph("g"));
  EXPECT_FALSE(service.unregister_graph("g"));
  const Response r = service.handle(solve_request("g"));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown graph"), std::string::npos);
}

TEST(Service, ErrorResponsesDoNotMutateState) {
  Service service(unit_options());
  service.register_graph("g", cycle(6));
  const std::vector<double> before = oracle_scores(service, "g");

  // Unknown graph, bad k, out-of-range endpoint, duplicate insert, absent
  // removal, invalid options: all answered, none fatal, none mutating.
  EXPECT_FALSE(service.handle(solve_request("missing")).ok);
  Request bad_k;
  bad_k.kind = RequestKind::kTopK;
  bad_k.graph = "g";
  bad_k.k = 0;
  EXPECT_FALSE(service.handle(bad_k).ok);
  EXPECT_FALSE(service.handle(update_request("g", 0, 99, true)).ok);
  EXPECT_FALSE(service.handle(update_request("g", 0, 1, true)).ok)
      << "edge 0-1 already exists";
  EXPECT_FALSE(service.handle(update_request("g", 0, 3, false)).ok)
      << "edge 0-3 does not exist";
  Request bad_options = solve_request("g");
  bad_options.options.apgre.fine_grain_fraction = 2.0;
  const Response invalid = service.handle(bad_options);
  EXPECT_FALSE(invalid.ok);
  EXPECT_NE(invalid.error.find("fine_grain_fraction"), std::string::npos);

  EXPECT_EQ(service.stats().errors, 6u);
  const Response good = service.handle(solve_request("g"));
  ASSERT_TRUE(good.ok);
  expect_scores_near(before, good.scores);
}

TEST(Service, BatchPreservesRequestOrder) {
  Service service(unit_options());
  service.register_graph("g", cycle(8));

  std::vector<Request> batch;
  batch.push_back(solve_request("g", Algorithm::kBrandesSerial));
  Request top;
  top.kind = RequestKind::kTopK;
  top.graph = "g";
  top.k = 3;
  batch.push_back(top);
  batch.push_back(update_request("g", 0, 3, true));
  batch.push_back(solve_request("g", Algorithm::kApgre));

  const std::vector<Response> responses = service.run_batch(batch);
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_EQ(responses[0].kind, RequestKind::kSolve);
  EXPECT_EQ(responses[1].kind, RequestKind::kTopK);
  EXPECT_EQ(responses[2].kind, RequestKind::kUpdate);
  EXPECT_EQ(responses[3].kind, RequestKind::kSolve);
  for (const Response& r : responses) EXPECT_TRUE(r.ok) << r.error;
  expect_scores_near(oracle_scores(service, "g"), responses[3].scores);
}

// Property-based cache soundness: a random register/solve/update/evict
// sequence over the seeded corpus, checked against the fresh-solve oracle
// after every step. Whatever the cache did — hit, patch, rebind, evict —
// served scores must match a from-scratch solve on the current snapshot.
TEST(Service, RandomSequencesMatchFreshSolveOracle) {
  constexpr std::uint64_t kSeeds = 3;
  constexpr int kStepsPerCase = 12;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Service service(unit_options(/*capacity=*/2));
    std::vector<std::string> names;
    for (CorpusCase& c : graph_corpus(seed, /*tiny=*/true)) {
      if (c.graph.num_vertices() < 3) continue;
      names.push_back(c.name);
      service.register_graph(c.name, std::move(c.graph));
      if (names.size() == 3) break;  // bound runtime; capacity 2 < graphs 3
    }
    ASSERT_GE(names.size(), 2u) << "corpus too small for the sweep";

    std::mt19937_64 rng(seed * 7919);
    for (int step = 0; step < kStepsPerCase; ++step) {
      const std::string& name = names[rng() % names.size()];
      switch (rng() % 4) {
        case 0: {  // update with a valid random mutation
          const auto snap = service.snapshot(name);
          ASSERT_NE(snap, nullptr);
          const std::vector<DynamicStep> steps =
              random_dynamic_steps(*snap, 1, rng());
          if (steps.empty()) break;
          const Response r = service.handle(update_request(
              name, steps[0].u, steps[0].v, steps[0].inserting));
          EXPECT_TRUE(r.ok) << name << ": " << r.error;
          break;
        }
        case 1:
          service.evict_sessions();
          break;
        default:
          break;  // plain solve below is the step
      }
      const Response solved = service.handle(solve_request(name));
      ASSERT_TRUE(solved.ok) << name << ": " << solved.error;
      expect_scores_near(oracle_scores(service, name), solved.scores);
    }
  }
}

}  // namespace
}  // namespace apgre
