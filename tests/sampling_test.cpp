#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "bc/brandes.hpp"
#include "bc/sampling.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace apgre {
namespace {

TEST(SampledBc, FullSampleEqualsExact) {
  const CsrGraph g = barabasi_albert(100, 2, 1);
  testing::expect_scores_near(brandes_bc(g), sampled_bc(g, 100, 7));
}

TEST(SampledBc, Deterministic) {
  const CsrGraph g = barabasi_albert(100, 2, 2);
  EXPECT_EQ(sampled_bc(g, 20, 5), sampled_bc(g, 20, 5));
}

TEST(SampledBc, DifferentSeedsDiffer) {
  const CsrGraph g = barabasi_albert(100, 2, 3);
  EXPECT_NE(sampled_bc(g, 20, 5), sampled_bc(g, 20, 6));
}

TEST(SampledBc, DefaultSampleCountIsSqrtN) {
  // Can't observe k directly; check the scores are a plausible estimate:
  // non-negative, and total mass within a factor of the exact total.
  const CsrGraph g = barabasi_albert(400, 2, 4);
  const auto est = sampled_bc(g, 0, 9);
  const auto exact = brandes_bc(g);
  const double est_total = std::accumulate(est.begin(), est.end(), 0.0);
  const double exact_total = std::accumulate(exact.begin(), exact.end(), 0.0);
  EXPECT_GT(est_total, exact_total * 0.4);
  EXPECT_LT(est_total, exact_total * 2.5);
  for (double v : est) EXPECT_GE(v, 0.0);
}

TEST(SampledBc, EstimatorIsUnbiasedOverSeeds) {
  // Averaging many independent estimates converges to the exact scores.
  const CsrGraph g = caveman(4, 6, 5);
  const auto exact = brandes_bc(g);
  std::vector<double> mean(g.num_vertices(), 0.0);
  constexpr int kRuns = 300;
  for (int run = 0; run < kRuns; ++run) {
    const auto est = sampled_bc(g, 6, static_cast<std::uint64_t>(run) + 1);
    for (Vertex v = 0; v < g.num_vertices(); ++v) mean[v] += est[v] / kRuns;
  }
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(mean[v], exact[v], std::max(2.0, exact[v] * 0.35)) << "vertex " << v;
  }
}

TEST(SampledBc, RanksHubsHighly) {
  // A good approximation keeps the top vertex of a star-like graph on top.
  const CsrGraph g = star(200);
  const auto est = sampled_bc(g, 20, 11);
  for (Vertex v = 1; v < 200; ++v) EXPECT_LE(est[v], est[0]);
  EXPECT_GT(est[0], 0.0);
}

TEST(SampledBc, EmptyGraph) {
  EXPECT_TRUE(sampled_bc(CsrGraph::from_edges(0, {}, false), 5, 1).empty());
}

TEST(SampledBc, SampleCountClampedToN) {
  const CsrGraph g = path(10);
  testing::expect_scores_near(brandes_bc(g), sampled_bc(g, 1000, 3));
}

}  // namespace
}  // namespace apgre
