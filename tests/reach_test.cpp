#include <gtest/gtest.h>

#include <queue>
#include <set>

#include "bcc/partition.hpp"
#include "bcc/reach.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"
#include "test_util.hpp"

namespace apgre {
namespace {

/// Brute-force oracle: count vertices reachable from `start` without
/// entering `blocked` (start excluded from the count and allowed).
std::uint64_t oracle_reach(const CsrGraph& g, Vertex start,
                           const std::set<Vertex>& blocked, bool forward) {
  std::set<Vertex> visited{start};
  std::queue<Vertex> queue;
  queue.push(start);
  while (!queue.empty()) {
    const Vertex v = queue.front();
    queue.pop();
    const auto neighbors = forward ? g.out_neighbors(v) : g.in_neighbors(v);
    for (Vertex w : neighbors) {
      if (visited.contains(w) || (blocked.contains(w) && w != start)) continue;
      visited.insert(w);
      queue.push(w);
    }
  }
  return visited.size() - 1;
}

void check_against_oracle(const CsrGraph& g, ReachMethod method) {
  PartitionOptions opts;
  opts.reach = method;
  const Decomposition dec = decompose(g, opts);
  for (const Subgraph& sg : dec.subgraphs) {
    const std::set<Vertex> members(sg.to_global.begin(), sg.to_global.end());
    for (Vertex a : sg.boundary_aps) {
      const Vertex global = sg.to_global[a];
      EXPECT_EQ(sg.alpha[a], oracle_reach(g, global, members, true))
          << "alpha of vertex " << global;
      EXPECT_EQ(sg.beta[a], oracle_reach(g, global, members, false))
          << "beta of vertex " << global;
    }
  }
}

TEST(Reach, BarbellAlphaCountsFarSide) {
  PartitionOptions opts;
  opts.merge_threshold = 3;
  const Decomposition dec = decompose(barbell(5, 0), opts);
  // Cliques {0..4} and {5..9}; APs 4 and 5. For the clique sub-graph
  // containing {0..4}, alpha(4) = 5 (the other clique's vertices).
  bool checked = false;
  for (const Subgraph& sg : dec.subgraphs) {
    for (Vertex a : sg.boundary_aps) {
      if (sg.to_global[a] == 4 && sg.num_vertices() == 5) {
        EXPECT_EQ(sg.alpha[a], 5u);
        checked = true;
      }
    }
  }
  EXPECT_TRUE(checked);
}

TEST(Reach, DirectedAlphaBetaDiffer) {
  // 0 <- 1 <- 2 -> 3 -> 4, with a strongly-connected middle block:
  // Build: block {1,2,3} as triangle (symmetric), pendant-ish arcs 1->0, 3->4.
  EdgeList edges{{1, 2}, {2, 1}, {2, 3}, {3, 2}, {1, 3}, {3, 1}, {1, 0}, {3, 4}};
  const CsrGraph g = CsrGraph::from_edges(5, edges, true);
  PartitionOptions opts;
  opts.merge_threshold = 2;
  const Decomposition dec = decompose(g, opts);
  for (const Subgraph& sg : dec.subgraphs) {
    for (Vertex a : sg.boundary_aps) {
      const Vertex global = sg.to_global[a];
      if (global == 1 && sg.num_vertices() >= 3) {
        EXPECT_EQ(sg.alpha[a], 1u);  // 1 reaches 0
        EXPECT_EQ(sg.beta[a], 0u);   // nothing outside reaches 1
      }
      if (global == 3 && sg.num_vertices() >= 3) {
        EXPECT_EQ(sg.alpha[a], 1u);  // 3 reaches 4
        EXPECT_EQ(sg.beta[a], 0u);
      }
    }
  }
}

TEST(Reach, TreeDpRejectsDirectedGraphs) {
  const CsrGraph g = erdos_renyi(20, 40, true, 1);
  Decomposition dec = decompose(g);
  EXPECT_THROW(compute_reach_counts(g, dec, ReachMethod::kTreeDp), Error);
}

TEST(Reach, AutoSelectsPerDirectedness) {
  // Just exercise both paths; correctness is covered by the sweeps.
  const CsrGraph und = barbell(4, 2);
  const CsrGraph dir = erdos_renyi(30, 60, true, 2);
  EXPECT_NO_THROW(decompose(und));
  EXPECT_NO_THROW(decompose(dir));
}

class ReachSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReachSweep, BfsMatchesOracle) {
  for (const auto& gc : testing::graph_family(GetParam(), /*tiny=*/true)) {
    SCOPED_TRACE(gc.name);
    check_against_oracle(gc.graph, ReachMethod::kBfs);
  }
}

TEST_P(ReachSweep, TreeDpMatchesBfsOnUndirected) {
  for (const auto& gc : testing::graph_family(GetParam(), /*tiny=*/true)) {
    if (gc.graph.directed()) continue;
    SCOPED_TRACE(gc.name);
    PartitionOptions bfs_opts;
    bfs_opts.reach = ReachMethod::kBfs;
    PartitionOptions dp_opts;
    dp_opts.reach = ReachMethod::kTreeDp;
    const Decomposition a = decompose(gc.graph, bfs_opts);
    const Decomposition b = decompose(gc.graph, dp_opts);
    ASSERT_EQ(a.subgraphs.size(), b.subgraphs.size());
    for (std::size_t i = 0; i < a.subgraphs.size(); ++i) {
      EXPECT_EQ(a.subgraphs[i].alpha, b.subgraphs[i].alpha);
      EXPECT_EQ(a.subgraphs[i].beta, b.subgraphs[i].beta);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReachSweep,
                         ::testing::Values(4, 14, 24, 34, 44, 54));

}  // namespace
}  // namespace apgre
