#include <gtest/gtest.h>

#include "bcc/validate.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"
#include "test_util.hpp"

namespace apgre {
namespace {

TEST(ValidateDecomposition, AcceptsFreshDecompositions) {
  for (const auto& gc : testing::graph_family(95, /*tiny=*/true)) {
    SCOPED_TRACE(gc.name);
    const Decomposition dec = decompose(gc.graph);
    EXPECT_TRUE(validate_decomposition(gc.graph, dec).empty());
    EXPECT_NO_THROW(require_valid_decomposition(gc.graph, dec));
  }
}

TEST(ValidateDecomposition, DetectsCorruptedAlpha) {
  const CsrGraph g = barbell(5, 2);
  PartitionOptions opts;
  opts.merge_threshold = 3;
  Decomposition dec = decompose(g, opts);
  ASSERT_FALSE(dec.subgraphs.empty());
  bool corrupted = false;
  for (Subgraph& sg : dec.subgraphs) {
    if (!sg.boundary_aps.empty()) {
      sg.alpha[sg.boundary_aps[0]] += 7;
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  const auto violations = validate_decomposition(g, dec);
  EXPECT_FALSE(violations.empty());
  EXPECT_NE(violations.front().find("alpha"), std::string::npos);
  EXPECT_THROW(require_valid_decomposition(g, dec), Error);
}

TEST(ValidateDecomposition, DetectsDroppedArc) {
  const CsrGraph g = cycle(8);
  Decomposition dec = decompose(g);
  ASSERT_EQ(dec.subgraphs.size(), 1u);
  // Rebuild the sub-graph with one arc missing.
  Subgraph& sg = dec.subgraphs[0];
  EdgeList arcs = sg.graph.arcs();
  arcs.pop_back();
  sg.graph = CsrGraph::from_edges(sg.num_vertices(), std::move(arcs), false);
  const auto violations = validate_decomposition(g, dec);
  EXPECT_FALSE(violations.empty());
}

TEST(ValidateDecomposition, DetectsBrokenGammaAccounting) {
  const CsrGraph g = star(8);
  Decomposition dec = decompose(g);
  ASSERT_EQ(dec.subgraphs.size(), 1u);
  dec.subgraphs[0].gamma[dec.subgraphs[0].roots[0]] += 1;
  const auto violations = validate_decomposition(g, dec);
  EXPECT_FALSE(violations.empty());
  EXPECT_NE(violations.front().find("gamma"), std::string::npos);
}

TEST(ValidateDecomposition, DetectsForeignArc) {
  const CsrGraph g = CsrGraph::undirected_from_edges(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  Decomposition dec = decompose(g);
  // Splice an arc that does not exist in g into the first sub-graph.
  Subgraph& sg = dec.subgraphs[0];
  EdgeList arcs = sg.graph.arcs();
  arcs.push_back(Edge{0, 2});
  arcs.push_back(Edge{2, 0});
  sg.graph = CsrGraph::from_edges(sg.num_vertices(), std::move(arcs), false);
  EXPECT_FALSE(validate_decomposition(g, dec).empty());
}

}  // namespace
}  // namespace apgre
