// Tests for the observability layer: tracing spans (support/trace.hpp),
// the metrics registry (support/metrics.hpp) and the JSON value
// (support/json.hpp) the bench harness serialises reports with.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "support/error.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace apgre {
namespace {

// ---- Tracing spans -------------------------------------------------------
//
// Content assertions only run when tracing is compiled in; with
// APGRE_TRACE=OFF collect_spans() must simply return nothing.

TEST(TraceTest, DisabledBuildCollectsNothing) {
  clear_spans();
  { APGRE_TRACE_SPAN("trace_test/any"); }
  if (!trace_enabled()) {
    EXPECT_TRUE(collect_spans().empty());
  }
}

TEST(TraceTest, RecordsNestedSpansWithDepthAndOrder) {
  if (!trace_enabled()) GTEST_SKIP() << "tracing compiled out";
  clear_spans();
  {
    APGRE_TRACE_SPAN("trace_test/outer");
    { APGRE_TRACE_SPAN("trace_test/inner_a"); }
    { APGRE_TRACE_SPAN("trace_test/inner_b"); }
  }
  const std::vector<SpanRecord> spans = collect_spans();
  ASSERT_EQ(spans.size(), 3u);
  // collect_spans() orders by start time: outer opened first.
  EXPECT_EQ(spans[0].name, "trace_test/outer");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].name, "trace_test/inner_a");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].name, "trace_test/inner_b");
  EXPECT_EQ(spans[2].depth, 1);
  EXPECT_LT(spans[1].sequence, spans[2].sequence);
  for (const SpanRecord& s : spans) {
    EXPECT_GE(s.elapsed_seconds(), 0.0);
    // Inner spans close before the outer one.
    EXPECT_LE(s.end_seconds, spans[0].end_seconds + 1e-12);
  }
}

TEST(TraceTest, CollectDrainsTheBuffers) {
  if (!trace_enabled()) GTEST_SKIP() << "tracing compiled out";
  clear_spans();
  { APGRE_TRACE_SPAN("trace_test/drained"); }
  EXPECT_EQ(collect_spans().size(), 1u);
  EXPECT_TRUE(collect_spans().empty());
}

TEST(TraceTest, ConcurrentWritersAllSurface) {
  if (!trace_enabled()) GTEST_SKIP() << "tracing compiled out";
  clear_spans();
  constexpr int kThreads = 4;
  constexpr int kSpansEach = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kSpansEach; ++i) {
        APGRE_TRACE_SPAN("trace_test/worker_" + std::to_string(t));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const std::vector<SpanRecord> spans = collect_spans();
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(kThreads * kSpansEach));
  EXPECT_TRUE(std::is_sorted(
      spans.begin(), spans.end(), [](const SpanRecord& a, const SpanRecord& b) {
        return a.start_seconds < b.start_seconds;
      }));
  // Per-thread sequences must be gapless even though threads interleave.
  for (int t = 0; t < kThreads; ++t) {
    const std::string name = "trace_test/worker_" + std::to_string(t);
    std::vector<std::uint64_t> seqs;
    for (const SpanRecord& s : spans) {
      if (s.name == name) seqs.push_back(s.sequence);
    }
    ASSERT_EQ(seqs.size(), static_cast<std::size_t>(kSpansEach)) << name;
    std::sort(seqs.begin(), seqs.end());
    for (int i = 0; i < kSpansEach; ++i) {
      EXPECT_EQ(seqs[static_cast<std::size_t>(i)], static_cast<std::uint64_t>(i));
    }
  }
}

TEST(TraceTest, SpansFromExitedThreadsSurvive) {
  if (!trace_enabled()) GTEST_SKIP() << "tracing compiled out";
  clear_spans();
  std::thread([] { APGRE_TRACE_SPAN("trace_test/short_lived"); }).join();
  const std::vector<SpanRecord> spans = collect_spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "trace_test/short_lived");
}

// ---- Metrics registry ----------------------------------------------------

TEST(MetricsTest, CounterAccumulatesAcrossThreads) {
  MetricsRegistry registry;
  Counter& c = registry.counter("test.hits");
  constexpr int kThreads = 4;
  constexpr int kAddsEach = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAddsEach; ++i) c.add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads * kAddsEach));
}

TEST(MetricsTest, FindOrCreateReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.counter("test.stable");
  registry.counter("test.other").add(5);
  Counter& b = registry.counter("test.stable");
  EXPECT_EQ(&a, &b);
}

TEST(MetricsTest, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("test.kind");
  EXPECT_THROW(registry.gauge("test.kind"), Error);
  EXPECT_THROW(registry.histogram("test.kind"), Error);
}

TEST(MetricsTest, ResetZeroesValuesButKeepsRegistrations) {
  MetricsRegistry registry;
  Counter& c = registry.counter("test.reset");
  Gauge& g = registry.gauge("test.gauge");
  Histogram& h = registry.histogram("test.hist");
  c.add(7);
  g.set(3.5);
  h.observe(16);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  // The same references stay live after reset.
  EXPECT_EQ(&c, &registry.counter("test.reset"));
  EXPECT_EQ(registry.snapshot().size(), 3u);
}

TEST(MetricsTest, GaugeAddAccumulatesConcurrently) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("test.sum");
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < 1000; ++i) g.add(0.5);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(), kThreads * 1000 * 0.5);
}

TEST(MetricsTest, HistogramBucketsFollowLog2Convention) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("test.log2");
  h.observe(0);
  h.observe(1);
  h.observe(2);
  h.observe(3);
  h.observe(1024);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1030u);
  const auto buckets = h.buckets();
  // Bucket 0 holds {0, 1}; bucket lower-bound 2 holds {2, 3}; 1024 alone.
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], (std::pair<std::uint64_t, std::uint64_t>{1, 2}));
  EXPECT_EQ(buckets[1], (std::pair<std::uint64_t, std::uint64_t>{2, 2}));
  EXPECT_EQ(buckets[2], (std::pair<std::uint64_t, std::uint64_t>{1024, 1}));
}

TEST(MetricsTest, SnapshotIsSortedAndTyped) {
  MetricsRegistry registry;
  registry.gauge("test.b").set(2.0);
  registry.counter("test.a").add(1);
  registry.histogram("test.c").observe(4);
  const std::vector<MetricSample> snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "test.a");
  EXPECT_EQ(snap[0].kind, MetricKind::kCounter);
  EXPECT_EQ(snap[0].number, 1.0);
  EXPECT_EQ(snap[1].name, "test.b");
  EXPECT_EQ(snap[1].kind, MetricKind::kGauge);
  EXPECT_EQ(snap[2].name, "test.c");
  EXPECT_EQ(snap[2].kind, MetricKind::kHistogram);
  EXPECT_EQ(snap[2].histogram_sum, 4u);
}

TEST(MetricsTest, GlobalRegistryIsProcessWide) {
  metrics().counter("test.global.probe").add(3);
  EXPECT_GE(MetricsRegistry::global().counter("test.global.probe").value(), 3u);
  metrics().counter("test.global.probe").reset();
}

// ---- JSON value ----------------------------------------------------------

TEST(JsonTest, RoundTripsDocuments) {
  JsonValue doc;
  doc["schema_version"] = JsonValue(std::int64_t{1});
  doc["name"] = JsonValue("bench \"quoted\" \\ name\n");
  doc["ok"] = JsonValue(true);
  doc["nothing"] = JsonValue(nullptr);
  doc["seconds"] = JsonValue(0.0315);
  doc["values"].push_back(JsonValue(std::int64_t{1}));
  doc["values"].push_back(JsonValue(2.5));

  const JsonValue parsed = JsonValue::parse(doc.dump(2));
  EXPECT_EQ(parsed.at("schema_version").as_double(), 1.0);
  EXPECT_EQ(parsed.at("name").as_string(), "bench \"quoted\" \\ name\n");
  EXPECT_TRUE(parsed.at("ok").as_bool());
  EXPECT_TRUE(parsed.at("nothing").is_null());
  EXPECT_DOUBLE_EQ(parsed.at("seconds").as_double(), 0.0315);
  ASSERT_EQ(parsed.at("values").as_array().size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.at("values").as_array()[1].as_double(), 2.5);
  // Deterministic serialisation: dump(parse(dump)) is a fixed point.
  EXPECT_EQ(doc.dump(2), parsed.dump(2));
}

TEST(JsonTest, ParsesEscapesAndUnicode) {
  const JsonValue v = JsonValue::parse(R"({"s": "a\tbé"})");
  EXPECT_EQ(v.at("s").as_string(), "a\tb\xc3\xa9");
  const JsonValue u = JsonValue::parse("{\"s\": \"\\u00e9A\"}");
  EXPECT_EQ(u.at("s").as_string(), "\xc3\xa9"  "A");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse("not json"), Error);
  EXPECT_THROW(JsonValue::parse("{\"a\": 1,}"), Error);
  EXPECT_THROW(JsonValue::parse("{\"a\": 1} trailing"), Error);
  EXPECT_THROW(JsonValue::parse("[1, 2"), Error);
  EXPECT_THROW(JsonValue::parse("{\"a\": Infinity}"), Error);
}

TEST(JsonTest, AccessorsThrowOnKindMismatch) {
  const JsonValue v = JsonValue::parse("{\"n\": 4}");
  EXPECT_THROW(v.at("n").as_string(), Error);
  EXPECT_THROW(v.at("missing"), Error);
  EXPECT_EQ(v.get("missing", 9.0), 9.0);
  EXPECT_EQ(v.get("missing", std::string("x")), "x");
}

TEST(JsonTest, IntegersSerializeWithoutExponent) {
  JsonValue doc;
  doc["arcs"] = JsonValue(std::uint64_t{123456789});
  EXPECT_NE(doc.dump().find("123456789"), std::string::npos);
  EXPECT_EQ(doc.dump().find("e+"), std::string::npos);
}

}  // namespace
}  // namespace apgre
