// Concurrency stress tier for apgre::Service (runs under TSan in CI
// alongside parallel_stress_test): 8 client threads × 100 mixed
// solve/top_k/update requests against one Service. Each client owns a
// private graph — nobody else mutates it, so the client's request stream
// has deterministic results regardless of thread interleaving — and also
// hammers a shared read-only graph to contend on the LRU cache and the
// worker pool. After the concurrent run, every client's recorded stream is
// replayed on a fresh single-threaded Service and each response must match
// the replay within the harness tolerance.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bc/bc.hpp"
#include "bcc/parallel_bicomp.hpp"
#include "check/oracle.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"
#include "service/service.hpp"
#include "test_util.hpp"

namespace apgre {
namespace {

using testing::expect_scores_near;

constexpr int kClients = 8;
constexpr int kRequestsPerClient = 100;

CsrGraph private_graph(int client) {
  // Small but non-trivial: cliques + pendants give APGRE real blocks and
  // pendants to patch, and keep 800 requests fast enough for TSan.
  return attach_pendants(caveman(3, 4, 100 + static_cast<unsigned>(client)),
                         4, 200 + static_cast<unsigned>(client));
}

CsrGraph shared_graph() { return attach_pendants(caveman(4, 5, 55), 8, 56); }

std::string private_name(int client) {
  return "private_" + std::to_string(client);
}

/// CI matrix knob: APGRE_STRESS_SCHEDULER=off routes every APGRE request
/// through the flat OpenMP path (SchedulerOptions::enabled = false), so the
/// TSan tier exercises both the reentrant scheduler kernels and the
/// legacy_omp_kernel_mutex self-serialization under the same 8-client load.
bool scheduler_enabled_for_stress() {
  const char* env = std::getenv("APGRE_STRESS_SCHEDULER");
  return env == nullptr || std::strcmp(env, "off") != 0;
}

/// CI matrix knob: APGRE_STRESS_PARALLEL_BCC=on forces the parallel
/// biconnectivity pass (bcc/parallel_bicomp.hpp) for every decomposition in
/// this suite — snapshot locality rebuilds and APGRE solves alike — so the
/// TSan tier races parallel decompositions against each other and against
/// running kernels on the shared scheduler. Default is kAuto, which at
/// these graph sizes means the serial DFS (the pre-existing coverage).
ParallelDecomposition parallel_bcc_for_stress() {
  const char* env = std::getenv("APGRE_STRESS_PARALLEL_BCC");
  return env != nullptr && std::strcmp(env, "on") == 0
             ? ParallelDecomposition::kOn
             : ParallelDecomposition::kAuto;
}

/// One client's deterministic request stream. Updates draw a valid random
/// mutation from the graph's current state, which only this client
/// mutates, so the stream is reproducible in the replay. The solve mix
/// deliberately includes the parallel kernels (hybrid, lock-free, APGRE's
/// fine-grained paths) — before the scheduler went reentrant these were
/// serialized behind a process-wide service mutex, and this sweep is what
/// demonstrates they no longer need it.
Request next_request(Service& service, std::mt19937_64& rng, int client) {
  Request request;
  const std::uint64_t roll = rng() % 10;
  if (roll < 3) {
    request.kind = RequestKind::kSolve;
    request.graph = private_name(client);
    request.options.algorithm =
        (roll == 0) ? Algorithm::kBrandesSerial : Algorithm::kApgre;
    request.options.scheduler.enabled = scheduler_enabled_for_stress();
    request.options.apgre.partition.parallel_decomposition =
        parallel_bcc_for_stress();
  } else if (roll < 5) {
    request.kind = RequestKind::kTopK;
    request.graph = private_name(client);
    request.k = 4;
    request.options.algorithm = Algorithm::kApgre;
  } else if (roll < 7) {
    request.kind = RequestKind::kUpdate;
    request.graph = private_name(client);
    const auto snap = service.snapshot(request.graph);
    const std::vector<DynamicStep> steps =
        snap == nullptr ? std::vector<DynamicStep>{}
                        : random_dynamic_steps(*snap, 1, rng());
    if (steps.empty()) {
      request.kind = RequestKind::kSolve;  // degenerate graph: just solve
      request.options.algorithm = Algorithm::kBrandesSerial;
    } else {
      request.u = steps[0].u;
      request.v = steps[0].v;
      request.inserting = steps[0].inserting;
    }
  } else {
    // Shared read-only graph: contends on the session LRU across clients,
    // rotating through the parallel kernels so concurrent parallel solves
    // genuinely overlap.
    request.kind = roll < 9 ? RequestKind::kSolve : RequestKind::kTopK;
    request.graph = "shared";
    request.k = 6;
    switch (rng() % 4) {
      case 0: request.options.algorithm = Algorithm::kBrandesSerial; break;
      case 1: request.options.algorithm = Algorithm::kHybrid; break;
      case 2: request.options.algorithm = Algorithm::kLockFree; break;
      default:
        request.options.algorithm = Algorithm::kApgre;
        request.options.scheduler.enabled = scheduler_enabled_for_stress();
        request.options.apgre.partition.parallel_decomposition =
            parallel_bcc_for_stress();
        break;
    }
  }
  return request;
}

void expect_responses_match(const Response& live, const Response& replayed,
                            int client, int step) {
  ASSERT_EQ(live.ok, replayed.ok)
      << "client " << client << " step " << step << ": " << live.error
      << " vs " << replayed.error;
  if (!live.ok) return;
  ASSERT_EQ(live.kind, replayed.kind);
  switch (live.kind) {
    case RequestKind::kSolve:
      expect_scores_near(replayed.scores, live.scores);
      break;
    case RequestKind::kTopK: {
      ASSERT_EQ(live.top.size(), replayed.top.size());
      for (std::size_t i = 0; i < live.top.size(); ++i) {
        EXPECT_EQ(live.top[i].vertex, replayed.top[i].vertex)
            << "client " << client << " step " << step << " rank " << i;
        EXPECT_NEAR(live.top[i].score, replayed.top[i].score, 1e-6);
      }
      break;
    }
    case RequestKind::kUpdate:
      EXPECT_EQ(live.affected_sources, replayed.affected_sources)
          << "client " << client << " step " << step;
      EXPECT_EQ(live.locality, replayed.locality)
          << "client " << client << " step " << step;
      break;
  }
}

TEST(ServiceStress, ConcurrentClientsMatchSingleThreadedReplay) {
  ServiceOptions options;
  options.workers = 4;
  // Capacity below clients + shared: evictions and cold rebuilds happen
  // constantly under contention, which is the point.
  options.session_capacity = 4;
  options.parallel_decomposition = parallel_bcc_for_stress();
  Service service(options);

  service.register_graph("shared", shared_graph());
  for (int c = 0; c < kClients; ++c) {
    service.register_graph(private_name(c), private_graph(c));
  }

  std::vector<std::vector<Request>> requests(kClients);
  std::vector<std::vector<Response>> responses(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&service, &requests, &responses, c] {
      std::mt19937_64 rng(0x5eedULL + static_cast<std::uint64_t>(c));
      for (int i = 0; i < kRequestsPerClient; ++i) {
        Request request = next_request(service, rng, c);
        requests[static_cast<std::size_t>(c)].push_back(request);
        responses[static_cast<std::size_t>(c)].push_back(
            service.submit(std::move(request)).get());
      }
    });
  }
  for (std::thread& t : clients) t.join();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests,
            static_cast<std::uint64_t>(kClients * kRequestsPerClient));
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_GT(stats.session_hits, 0u) << "warm sessions never reused";

  // Single-threaded replay of each client's recorded stream on a fresh
  // service: private-graph responses must match exactly (nobody else
  // touched those graphs), shared-graph responses are read-only and match
  // too.
  for (int c = 0; c < kClients; ++c) {
    ServiceOptions replay_options;
    replay_options.workers = 1;
    replay_options.session_capacity = 2;
    Service replay(replay_options);
    replay.register_graph("shared", shared_graph());
    replay.register_graph(private_name(c), private_graph(c));
    for (int i = 0; i < kRequestsPerClient; ++i) {
      const Response replayed =
          replay.handle(requests[static_cast<std::size_t>(c)]
                            [static_cast<std::size_t>(i)]);
      expect_responses_match(
          responses[static_cast<std::size_t>(c)][static_cast<std::size_t>(i)],
          replayed, c, i);
    }
  }
}

// Adversarial update contention: every client hammers ONE shared mutable
// graph with interleaved updates and solves. Unlike the private-graph
// sweep above there is no per-client determinism — concurrent updates
// race, so some fail validation ("arc already present" / "arc not
// present"); those error responses are expected and tolerated. What must
// hold under TSan and after the dust settles:
//   * no data race, crash, or deadlock while sessions are patched
//     (Solver::apply_local_update) and invalidated concurrently,
//   * every response is either ok or a clean validation error,
//   * the service's final served scores match a fresh static solve of the
//     final snapshot — whatever interleaving of local patches and full
//     invalidations happened, the cache may never serve stale scores.
TEST(ServiceStress, AdversarialUpdatesOnSharedGraphStayConsistent) {
  constexpr int kUpdateClients = 6;
  constexpr int kStepsPerClient = 60;

  ServiceOptions options;
  options.workers = 4;
  options.session_capacity = 2;
  Service service(options);
  // Dense blocks chained by articulation points: chord inserts and
  // biconnectivity-preserving deletes both occur, so the localized and
  // structural paths genuinely race.
  service.register_graph("shared", caveman(4, 6, 77));

  std::vector<std::thread> clients;
  clients.reserve(kUpdateClients);
  std::atomic<std::uint64_t> validation_errors{0};
  for (int c = 0; c < kUpdateClients; ++c) {
    clients.emplace_back([&service, &validation_errors, c] {
      std::mt19937_64 rng(0xadccULL + static_cast<std::uint64_t>(c));
      const auto initial = service.snapshot("shared");
      ASSERT_NE(initial, nullptr);
      const Vertex n = initial->num_vertices();
      for (int i = 0; i < kStepsPerClient; ++i) {
        Request request;
        if (i % 3 == 2) {
          request.kind = RequestKind::kSolve;
          request.graph = "shared";
          request.options.algorithm = Algorithm::kApgre;
        } else {
          request.kind = RequestKind::kUpdate;
          request.graph = "shared";
          request.u = static_cast<Vertex>(rng() % n);
          request.v = static_cast<Vertex>(rng() % n);
          request.inserting = rng() % 2 == 0;
        }
        const Response r = service.handle(request);
        if (!r.ok) {
          // Racing updates legitimately fail validation; anything else
          // (scores for a missing graph, internal errors) is a bug.
          EXPECT_EQ(r.kind, RequestKind::kUpdate) << r.error;
          validation_errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kUpdateClients *
                                                       kStepsPerClient));
  EXPECT_EQ(stats.errors, validation_errors.load());

  // Final consistency: whatever the cache did, served == fresh solve.
  Request solve;
  solve.kind = RequestKind::kSolve;
  solve.graph = "shared";
  solve.options.algorithm = Algorithm::kApgre;
  const Response served = service.handle(solve);
  ASSERT_TRUE(served.ok) << served.error;
  const auto snap = service.snapshot("shared");
  ASSERT_NE(snap, nullptr);
  BcOptions serial;
  serial.algorithm = Algorithm::kBrandesSerial;
  expect_scores_near(betweenness(*snap, serial).scores, served.scores);
}

// Concurrent decompose + solve stress: every APGRE solve forces the
// parallel biconnectivity pass (kOn) while updater threads mutate the same
// graph, so parallel decompositions — inside racing Solvers and in the
// snapshot locality rebuild each structural update triggers — overlap with
// each other and with running kernels on the shared work-stealing
// scheduler. Racing updates may fail validation (tolerated, as above);
// what must hold under TSan is no data race in the parallel pass's
// frontier expansion / union-find / canonicalization, and that the final
// served scores match a fresh serial solve of the final snapshot.
TEST(ServiceStress, ConcurrentParallelDecompositionsStayConsistent) {
  constexpr int kSolveClients = 4;
  constexpr int kUpdateClients = 2;
  constexpr int kStepsPerClient = 40;

  ServiceOptions options;
  options.workers = 4;
  options.session_capacity = 2;
  options.parallel_decomposition = ParallelDecomposition::kOn;
  Service service(options);
  // Blocks chained by articulation points plus a pendant fringe: updates
  // hit both the localized and the structural (re-decompose) paths.
  service.register_graph("shared", attach_pendants(caveman(4, 6, 91), 12, 92));

  std::vector<std::thread> clients;
  clients.reserve(kSolveClients + kUpdateClients);
  for (int c = 0; c < kSolveClients + kUpdateClients; ++c) {
    clients.emplace_back([&service, c] {
      std::mt19937_64 rng(0xbccULL + static_cast<std::uint64_t>(c));
      const auto initial = service.snapshot("shared");
      ASSERT_NE(initial, nullptr);
      const Vertex n = initial->num_vertices();
      for (int i = 0; i < kStepsPerClient; ++i) {
        Request request;
        request.graph = "shared";
        if (c < kSolveClients) {
          request.kind = RequestKind::kSolve;
          request.options.algorithm = Algorithm::kApgre;
          request.options.apgre.partition.parallel_decomposition =
              ParallelDecomposition::kOn;
        } else {
          request.kind = RequestKind::kUpdate;
          request.u = static_cast<Vertex>(rng() % n);
          request.v = static_cast<Vertex>(rng() % n);
          request.inserting = rng() % 2 == 0;
        }
        const Response r = service.handle(request);
        if (!r.ok) {
          EXPECT_EQ(r.kind, RequestKind::kUpdate) << r.error;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  Request solve;
  solve.kind = RequestKind::kSolve;
  solve.graph = "shared";
  solve.options.algorithm = Algorithm::kApgre;
  solve.options.apgre.partition.parallel_decomposition =
      ParallelDecomposition::kOn;
  const Response served = service.handle(solve);
  ASSERT_TRUE(served.ok) << served.error;
  const auto snap = service.snapshot("shared");
  ASSERT_NE(snap, nullptr);
  BcOptions serial;
  serial.algorithm = Algorithm::kBrandesSerial;
  expect_scores_near(betweenness(*snap, serial).scores, served.scores);
}

// Shutdown with work still queued: the destructor must drain every queued
// request (futures all become ready) without racing the worker pool.
TEST(ServiceStress, DestructorDrainsQueuedRequests) {
  std::vector<std::future<Response>> futures;
  {
    ServiceOptions options;
    options.workers = 2;
    Service service(options);
    service.register_graph("g", caveman(3, 4, 9));
    for (int i = 0; i < 32; ++i) {
      Request request;
      request.kind = RequestKind::kTopK;
      request.graph = "g";
      request.k = 3;
      request.options.algorithm = Algorithm::kBrandesSerial;
      futures.push_back(service.submit(std::move(request)));
    }
  }  // ~Service joins here
  for (std::future<Response>& f : futures) {
    const Response r = f.get();  // must not throw broken_promise
    EXPECT_TRUE(r.ok) << r.error;
  }
}

}  // namespace
}  // namespace apgre
