#include <gtest/gtest.h>

#include "graph/edge_list.hpp"

namespace apgre {
namespace {

TEST(EdgeList, SortUniqueRemovesDuplicates) {
  EdgeList edges{{2, 1}, {0, 1}, {2, 1}, {0, 1}, {1, 0}};
  sort_unique(edges);
  const EdgeList expected{{0, 1}, {1, 0}, {2, 1}};
  EXPECT_EQ(edges, expected);
}

TEST(EdgeList, RemoveSelfLoops) {
  EdgeList edges{{0, 0}, {0, 1}, {1, 1}, {2, 1}};
  remove_self_loops(edges);
  const EdgeList expected{{0, 1}, {2, 1}};
  EXPECT_EQ(edges, expected);
}

TEST(EdgeList, SymmetrizeAddsReverseArcs) {
  EdgeList edges{{0, 1}, {1, 2}};
  symmetrize(edges);
  const EdgeList expected{{0, 1}, {1, 0}, {1, 2}, {2, 1}};
  EXPECT_EQ(edges, expected);
}

TEST(EdgeList, SymmetrizeIsIdempotent) {
  EdgeList edges{{0, 1}, {1, 0}};
  symmetrize(edges);
  const EdgeList expected{{0, 1}, {1, 0}};
  EXPECT_EQ(edges, expected);
}

TEST(EdgeList, MinVertexCount) {
  EXPECT_EQ(min_vertex_count({}), 0u);
  EXPECT_EQ(min_vertex_count({{0, 0}}), 1u);
  EXPECT_EQ(min_vertex_count({{3, 7}, {1, 2}}), 8u);
}

TEST(EdgeList, ComparisonOperators) {
  EXPECT_EQ((Edge{1, 2}), (Edge{1, 2}));
  EXPECT_LT((Edge{1, 2}), (Edge{1, 3}));
  EXPECT_LT((Edge{1, 9}), (Edge{2, 0}));
}

}  // namespace
}  // namespace apgre
