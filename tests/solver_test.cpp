// Session-style Solver, the algorithm registry, and the Status-based
// options validation (bc/bc.hpp): decomposition reuse across solve() calls,
// byte-identical scores vs the one-shot entry point, registry round-trips,
// and the no-throw invalid-options contract.
#include <gtest/gtest.h>

#include <vector>

#include "bc/bc.hpp"
#include "check/corpus.hpp"
#include "check/oracle.hpp"
#include "graph/generators.hpp"
#include "graph/mutate.hpp"
#include "graph/transform.hpp"
#include "support/metrics.hpp"

namespace apgre {
namespace {

CsrGraph skewed_graph() {
  CsrGraph g = barabasi_albert(120, 3, 7);
  g = attach_communities(g, 12, 6, 8);
  return attach_pendants(g, 40, 9);
}

std::uint64_t decompositions() {
  return metrics().counter("bcc.decompositions").value();
}

/// Options pinned to one OpenMP thread and one scheduler worker. The
/// bitwise-equality tests below need a machine-independent accumulation
/// order: with several workers, which tasks land on which worker (and so
/// the FP merge order) depends on steal timing, and the flat path's
/// per-thread buffers merge in omp-critical arrival order — either can
/// differ between two runs under load.
BcOptions pinned_options() {
  BcOptions opts;
  opts.threads = 1;
  opts.scheduler.threads = 1;
  return opts;
}

TEST(Solver, ScoresMatchOneShotBetweennessExactly) {
  const CsrGraph g = skewed_graph();
  Solver solver(g);
  const BcOptions opts = pinned_options();
  const BcResult session = solver.solve(opts);
  const BcResult oneshot = betweenness(g, opts);
  ASSERT_TRUE(session.status.ok());
  ASSERT_TRUE(oneshot.status.ok());
  // Same code path, same accumulation order: bitwise equality, not
  // tolerance comparison.
  EXPECT_EQ(session.scores, oneshot.scores);
}

TEST(Solver, ReusesDecompositionAcrossSolves) {
  const CsrGraph g = skewed_graph();
  Solver solver(g);
  EXPECT_EQ(solver.decomposition(), nullptr);

  const std::uint64_t before = decompositions();
  const BcOptions opts = pinned_options();  // bitwise comparison below
  const BcResult first = solver.solve(opts);
  const Decomposition* dec = solver.decomposition();
  ASSERT_NE(dec, nullptr);
  EXPECT_EQ(decompositions(), before + 1);
  EXPECT_GT(first.apgre_stats.partition_seconds, 0.0);

  const BcResult second = solver.solve(opts);
  EXPECT_EQ(decompositions(), before + 1) << "cache hit must not re-decompose";
  EXPECT_EQ(solver.decomposition(), dec) << "cached decomposition is stable";
  // The cache hit reports zero decomposition/reach time by contract.
  EXPECT_EQ(second.apgre_stats.partition_seconds, 0.0);
  EXPECT_EQ(second.apgre_stats.reach_seconds, 0.0);
  EXPECT_EQ(first.scores, second.scores);
}

TEST(Solver, ScoringOnlyKnobsKeepTheCache) {
  const CsrGraph g = skewed_graph();
  Solver solver(g);
  solver.solve();
  const std::uint64_t after_first = decompositions();

  BcOptions tuned;
  tuned.scheduler.grain = 4;
  tuned.scheduler.steal_policy = StealPolicy::kSequential;
  tuned.apgre.hybrid_inner = true;
  const BcResult r = solver.solve(tuned);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(decompositions(), after_first);
}

TEST(Solver, ChangedPartitionOptionsRedecompose) {
  const CsrGraph g = skewed_graph();
  Solver solver(g);
  solver.solve();
  const std::uint64_t after_first = decompositions();

  BcOptions no_pendants;
  no_pendants.apgre.partition.total_redundancy = false;
  const BcResult r = solver.solve(no_pendants);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(decompositions(), after_first + 1);
  EXPECT_EQ(r.apgre_stats.num_pendants_removed, 0u);

  // Scores stay correct after the re-decomposition.
  BcOptions serial;
  serial.algorithm = Algorithm::kBrandesSerial;
  const ScoreComparison cmp =
      compare_scores(betweenness(g, serial).scores, r.scores);
  EXPECT_TRUE(cmp.ok) << "worst vertex " << cmp.worst_vertex;
}

TEST(Solver, NonApgreAlgorithmsPassThrough) {
  const CsrGraph g = skewed_graph();
  Solver solver(g);
  BcOptions serial;
  serial.algorithm = Algorithm::kBrandesSerial;
  const BcResult r = solver.solve(serial);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(solver.decomposition(), nullptr);
  EXPECT_EQ(r.scores, betweenness(g, serial).scores);
}

TEST(Solver, SchedulerAndFlatPathsAgree) {
  for (const CorpusCase& c : graph_corpus(/*seed=*/3, /*tiny=*/true)) {
    Solver solver(c.graph);
    BcOptions scheduled;  // default: scheduler enabled
    BcOptions flat;
    flat.scheduler.enabled = false;
    const BcResult a = solver.solve(scheduled);
    const BcResult b = solver.solve(flat);
    ASSERT_TRUE(a.status.ok());
    ASSERT_TRUE(b.status.ok());
    const ScoreComparison cmp = compare_scores(b.scores, a.scores);
    EXPECT_TRUE(cmp.ok) << c.name << ": worst vertex " << cmp.worst_vertex
                        << " flat " << cmp.expected_score << " scheduled "
                        << cmp.actual_score;
  }
}

TEST(Solver, TrackedSolveMatchesUntrackedScores) {
  const CsrGraph g = skewed_graph();
  Solver tracked(g);
  tracked.enable_contribution_tracking();
  const BcResult r = tracked.solve(pinned_options());
  ASSERT_TRUE(r.status.ok());

  BcOptions serial;
  serial.algorithm = Algorithm::kBrandesSerial;
  const ScoreComparison cmp =
      compare_scores(betweenness(g, serial).scores, r.scores);
  EXPECT_TRUE(cmp.ok) << "worst vertex " << cmp.worst_vertex << " expected "
                      << cmp.expected_score << " actual " << cmp.actual_score;
}

TEST(Solver, TrackedResolveServesStoredScores) {
  const CsrGraph g = skewed_graph();
  Solver solver(g);
  solver.enable_contribution_tracking();
  const BcOptions opts = pinned_options();
  const BcResult first = solver.solve(opts);
  ASSERT_TRUE(first.status.ok());

  const std::uint64_t reuses_before =
      metrics().counter("bc.solver.score_reuses").value();
  const std::uint64_t dec_before = decompositions();
  const BcResult second = solver.solve(opts);
  ASSERT_TRUE(second.status.ok());
  EXPECT_EQ(metrics().counter("bc.solver.score_reuses").value(),
            reuses_before + 1)
      << "a warm tracked solve must serve the contribution store";
  EXPECT_EQ(decompositions(), dec_before);
  EXPECT_EQ(first.scores, second.scores);
}

TEST(Solver, ApplyLocalUpdateMatchesFreshSolve) {
  // Two cycles sharing AP 0: C6 {0..5} and C4 {0,6,7,8}.
  const CsrGraph g = CsrGraph::undirected_from_edges(
      9, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0},
          {0, 6}, {6, 7}, {7, 8}, {8, 0}});
  Solver solver(g);
  solver.enable_contribution_tracking();
  const BcOptions opts = pinned_options();
  ASSERT_TRUE(solver.solve(opts).status.ok());
  const std::uint64_t dec_before = decompositions();
  const std::uint64_t patches_before =
      metrics().counter("bc.solver.local_recomputes").value();

  // Chord 1-3 inside the C6 block, then delete it again: both directions
  // of the localized patch, each checked against a fresh static solve.
  // The oracle runs the serial kernel so it cannot itself decompose and
  // muddy the counter pin below.
  BcOptions oracle = opts;
  oracle.algorithm = Algorithm::kBrandesSerial;
  const CsrGraph with_chord = with_edge_inserted(g, 1, 3);
  ASSERT_TRUE(solver.apply_local_update(with_chord, 1, 3, /*inserting=*/true));
  const BcResult after_insert = solver.solve(opts);
  ASSERT_TRUE(after_insert.status.ok());
  ScoreComparison cmp = compare_scores(betweenness(with_chord, oracle).scores,
                                       after_insert.scores);
  EXPECT_TRUE(cmp.ok) << "insert: worst vertex " << cmp.worst_vertex;

  const CsrGraph restored = with_edge_removed(with_chord, 1, 3);
  ASSERT_TRUE(solver.apply_local_update(restored, 1, 3, /*inserting=*/false));
  const BcResult after_delete = solver.solve(opts);
  ASSERT_TRUE(after_delete.status.ok());
  cmp = compare_scores(betweenness(restored, oracle).scores,
                       after_delete.scores);
  EXPECT_TRUE(cmp.ok) << "delete: worst vertex " << cmp.worst_vertex;

  EXPECT_EQ(decompositions(), dec_before)
      << "localized patches must not re-decompose";
  EXPECT_EQ(metrics().counter("bc.solver.local_recomputes").value(),
            patches_before + 2);
}

TEST(Solver, ApplyLocalUpdateWithoutStoreFallsBackToRebind) {
  const CsrGraph g = cycle(6);
  Solver solver(g);  // tracking never enabled
  ASSERT_TRUE(solver.solve().status.ok());
  const CsrGraph with_chord = with_edge_inserted(g, 0, 2);
  EXPECT_FALSE(solver.apply_local_update(with_chord, 0, 2, /*inserting=*/true));
  // The fallback rebinds, so the next solve is correct on the new graph.
  const BcResult r = solver.solve();
  ASSERT_TRUE(r.status.ok());
  BcOptions serial;
  serial.algorithm = Algorithm::kBrandesSerial;
  const ScoreComparison cmp =
      compare_scores(betweenness(with_chord, serial).scores, r.scores);
  EXPECT_TRUE(cmp.ok) << "worst vertex " << cmp.worst_vertex;
}

// ---- 2-core peel sessions ------------------------------------------------

TEST(Solver, PeelKnobKeysTheDecompositionCache) {
  const CsrGraph g = skewed_graph();
  Solver solver(g);
  const BcOptions opts = pinned_options();
  ASSERT_TRUE(solver.solve(opts).status.ok());
  EXPECT_EQ(solver.peel(), nullptr) << "no peel without the knob";
  const std::uint64_t after_off = decompositions();

  BcOptions peeled = opts;
  peeled.apgre.partition.peel_two_core = true;
  const BcResult first_on = solver.solve(peeled);
  ASSERT_TRUE(first_on.status.ok());
  EXPECT_EQ(decompositions(), after_off + 1)
      << "flipping the peel knob must re-decompose (different reduction)";
  ASSERT_NE(solver.peel(), nullptr);
  EXPECT_GT(first_on.apgre_stats.peeled_vertices, 0u);

  const BcResult second_on = solver.solve(peeled);
  EXPECT_EQ(decompositions(), after_off + 1) << "peeled cache hit";
  EXPECT_EQ(first_on.scores, second_on.scores);

  // Peeled and unpeeled sessions agree with the serial oracle.
  BcOptions serial = opts;
  serial.algorithm = Algorithm::kBrandesSerial;
  const ScoreComparison cmp =
      compare_scores(betweenness(g, serial).scores, first_on.scores);
  EXPECT_TRUE(cmp.ok) << "worst vertex " << cmp.worst_vertex << " expected "
                      << cmp.expected_score << " actual " << cmp.actual_score;
}

TEST(Solver, AdoptPeelReusesAndInvalidates) {
  const CsrGraph g = skewed_graph();
  Solver solver(g);
  BcOptions peeled = pinned_options();
  peeled.apgre.partition.peel_two_core = true;
  ASSERT_TRUE(solver.solve(peeled).status.ok());
  const std::shared_ptr<const PeelResult> own = solver.peel();
  ASSERT_NE(own, nullptr);
  const Decomposition* dec = solver.decomposition();

  // Re-adopting the pointer already held keeps the cache.
  solver.adopt_peel(own);
  EXPECT_EQ(solver.decomposition(), dec);

  // A different peel of the same graph invalidates it (different object,
  // so the cached reduction can no longer be trusted).
  solver.adopt_peel(std::make_shared<const PeelResult>(two_core_peel(g)));
  EXPECT_EQ(solver.decomposition(), nullptr);
  const BcResult r = solver.solve(peeled);
  ASSERT_TRUE(r.status.ok());
  EXPECT_GT(r.apgre_stats.peeled_vertices, 0u);
}

TEST(Solver, ForestIncidentLocalUpdateFallsBackToRebind) {
  // Cycle core with a hanging chain 0-6-7: updates touching the chain must
  // refuse the localized patch (the cached core reduction excludes the
  // fringe) and rebind so the next solve re-peels.
  const CsrGraph g = CsrGraph::undirected_from_edges(
      8, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 6}, {6, 7}});
  Solver solver(g);
  solver.enable_contribution_tracking();
  BcOptions peeled = pinned_options();
  peeled.apgre.partition.peel_two_core = true;
  ASSERT_TRUE(solver.solve(peeled).status.ok());
  ASSERT_NE(solver.peel(), nullptr);

  // The chord 6-2 pulls the chain into the 2-core: defensive guard path.
  const CsrGraph with_chord = with_edge_inserted(g, 6, 2);
  EXPECT_FALSE(solver.apply_local_update(with_chord, 6, 2, /*inserting=*/true));
  const BcResult r = solver.solve(peeled);
  ASSERT_TRUE(r.status.ok());
  BcOptions serial;
  serial.algorithm = Algorithm::kBrandesSerial;
  const ScoreComparison cmp =
      compare_scores(betweenness(with_chord, serial).scores, r.scores);
  EXPECT_TRUE(cmp.ok) << "worst vertex " << cmp.worst_vertex;
}

TEST(Solver, TrackedPeeledStoreStaysExactThroughCoreLocalUpdates) {
  // Two cycles sharing AP 0 plus a peeled fringe: chain 0-9-10, pendant 11
  // off vertex 2. Core-core chords splice the tracked store AND the cached
  // core reduction; scores must track a fresh static solve each time.
  const CsrGraph g = CsrGraph::undirected_from_edges(
      12, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0},
           {0, 6}, {6, 7}, {7, 8}, {8, 0}, {0, 9}, {9, 10}, {2, 11}});
  Solver solver(g);
  solver.enable_contribution_tracking();
  BcOptions peeled = pinned_options();
  peeled.apgre.partition.peel_two_core = true;
  ASSERT_TRUE(solver.solve(peeled).status.ok());
  const std::uint64_t dec_before = decompositions();

  BcOptions serial;
  serial.algorithm = Algorithm::kBrandesSerial;
  const CsrGraph with_chord = with_edge_inserted(g, 1, 3);
  ASSERT_TRUE(solver.apply_local_update(with_chord, 1, 3, /*inserting=*/true));
  ScoreComparison cmp = compare_scores(betweenness(with_chord, serial).scores,
                                       solver.solve(peeled).scores);
  EXPECT_TRUE(cmp.ok) << "insert: worst vertex " << cmp.worst_vertex
                      << " expected " << cmp.expected_score << " actual "
                      << cmp.actual_score;

  const CsrGraph restored = with_edge_removed(with_chord, 1, 3);
  ASSERT_TRUE(solver.apply_local_update(restored, 1, 3, /*inserting=*/false));
  cmp = compare_scores(betweenness(restored, serial).scores,
                       solver.solve(peeled).scores);
  EXPECT_TRUE(cmp.ok) << "delete: worst vertex " << cmp.worst_vertex;
  EXPECT_EQ(decompositions(), dec_before)
      << "core-core patches must not re-decompose a peeled session";
}

TEST(Registry, RoundTripsEveryAlgorithm) {
  EXPECT_EQ(algorithm_registry().size(), 10u);
  for (const AlgorithmInfo& info : algorithm_registry()) {
    EXPECT_EQ(algorithm_from_name(info.name), info.algorithm);
    EXPECT_EQ(algorithm_name(info.algorithm), info.name);
    if (info.alias != nullptr) {
      EXPECT_EQ(algorithm_from_name(info.alias), info.algorithm);
    }
    EXPECT_NE(info.kernel, nullptr);
    EXPECT_EQ(&algorithm_info(info.algorithm), &info);
  }
}

TEST(Registry, CapabilityFlagsMatchTheFamily) {
  EXPECT_TRUE(algorithm_info(Algorithm::kNaive).test_only);
  EXPECT_FALSE(algorithm_info(Algorithm::kNaive).comparison);
  EXPECT_TRUE(algorithm_info(Algorithm::kApgre).exact);
  EXPECT_TRUE(algorithm_info(Algorithm::kApgre).comparison);
  EXPECT_FALSE(algorithm_info(Algorithm::kSampling).exact);
  // The paper's Tables 2/3 compare exactly seven algorithms.
  int comparison = 0;
  for (const AlgorithmInfo& info : algorithm_registry()) {
    if (info.comparison) ++comparison;
    if (info.comparison) EXPECT_TRUE(info.exact) << info.name;
  }
  EXPECT_EQ(comparison, 7);
}

TEST(Registry, RejectsValuesOutsideTheTable) {
  EXPECT_THROW(algorithm_info(static_cast<Algorithm>(999)), OptionError);
  EXPECT_THROW(algorithm_from_name("bogus"), OptionError);
}

TEST(ValidateOptions, AcceptsDefaults) {
  EXPECT_TRUE(validate_options(BcOptions{}).ok());
}

TEST(ValidateOptions, RejectsBadValuesWithoutThrowing) {
  const CsrGraph g = cycle(8);

  BcOptions bad_threads;
  bad_threads.threads = -2;
  EXPECT_EQ(validate_options(bad_threads).code, StatusCode::kInvalidOption);

  BcOptions bad_fraction;
  bad_fraction.apgre.fine_grain_fraction = 1.5;
  EXPECT_EQ(validate_options(bad_fraction).code, StatusCode::kInvalidOption);

  BcOptions bad_grain;
  bad_grain.scheduler.grain = -1;
  EXPECT_EQ(validate_options(bad_grain).code, StatusCode::kInvalidOption);

  BcOptions bad_sched_threads;
  bad_sched_threads.scheduler.threads = -4;
  EXPECT_EQ(validate_options(bad_sched_threads).code,
            StatusCode::kInvalidOption);

  BcOptions bad_algorithm;
  bad_algorithm.algorithm = static_cast<Algorithm>(999);
  EXPECT_EQ(validate_options(bad_algorithm).code, StatusCode::kInvalidOption);

  // betweenness / Solver::solve report the same Status instead of throwing.
  const BcResult direct = betweenness(g, bad_grain);
  EXPECT_EQ(direct.status.code, StatusCode::kInvalidOption);
  EXPECT_FALSE(direct.status.message.empty());
  EXPECT_TRUE(direct.scores.empty());

  Solver solver(g);
  const BcResult via_solver = solver.solve(bad_algorithm);
  EXPECT_EQ(via_solver.status.code, StatusCode::kInvalidOption);
  EXPECT_EQ(solver.decomposition(), nullptr)
      << "rejected options must not touch the cache";
}

}  // namespace
}  // namespace apgre
