#include <gtest/gtest.h>

#include "graph/degree.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"

namespace apgre {
namespace {

TEST(DegreeStats, StarShape) {
  const DegreeStats stats = degree_stats(star(10));
  EXPECT_EQ(stats.num_vertices, 10u);
  EXPECT_EQ(stats.max_out_degree, 9u);
  EXPECT_EQ(stats.pendant_count, 9u);  // all leaves
  EXPECT_EQ(stats.isolated_count, 0u);
  EXPECT_DOUBLE_EQ(stats.out_degree.mean(), 18.0 / 10.0);
}

TEST(DegreeStats, CountsIsolatedVertices) {
  const CsrGraph g = CsrGraph::undirected_from_edges(4, {{0, 1}});
  const DegreeStats stats = degree_stats(g);
  EXPECT_EQ(stats.isolated_count, 2u);
  EXPECT_EQ(stats.pendant_count, 2u);
}

TEST(DegreeStats, DirectedPendantsUseUndirectedDegree) {
  // 2 -> 0, 0 <-> 1: vertex 2 has undirected degree 1.
  const CsrGraph g = CsrGraph::from_edges(3, {{2, 0}, {0, 1}, {1, 0}}, true);
  const DegreeStats stats = degree_stats(g);
  EXPECT_EQ(stats.pendant_count, 2u);  // vertices 1 and 2
}

TEST(PendantFraction, MatchesDecoration) {
  const CsrGraph base = complete(20);
  EXPECT_DOUBLE_EQ(pendant_fraction(base), 0.0);
  const CsrGraph decorated = attach_pendants(base, 20, 3);
  EXPECT_NEAR(pendant_fraction(decorated), 0.5, 0.01);
}

TEST(DegreeStats, HistogramTotalsMatch) {
  const CsrGraph g = barabasi_albert(500, 2, 11);
  const DegreeStats stats = degree_stats(g);
  EXPECT_EQ(stats.out_degree_histogram.total(), 500u);
  EXPECT_EQ(stats.out_degree.count(), 500u);
}

}  // namespace
}  // namespace apgre
