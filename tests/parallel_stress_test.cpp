// Multi-threaded stress tier for the five parallel BC backends (preds,
// succs, lockfree, coarse, hybrid): repeated runs on adversarial shapes —
// a star (one giant level), a long path (many one-vertex levels), a dense
// biconnected component and a barbell — differentially checked against
// serial Brandes, at thread counts {1, 2, hardware}. The host runs ctest
// on few cores, so the thread counts oversubscribe deliberately: context
// switches mid-kernel widen race windows, which is exactly what this tier
// (and the ThreadSanitizer CI job that runs it) is for.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bc/bc.hpp"
#include "check/corpus.hpp"
#include "check/oracle.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"
#include "support/parallel.hpp"

namespace apgre {
namespace {

constexpr int kRepetitions = 3;

const std::vector<Algorithm>& parallel_backends() {
  static const std::vector<Algorithm> backends = {
      Algorithm::kParallelPreds, Algorithm::kParallelSuccs, Algorithm::kLockFree,
      Algorithm::kCoarse, Algorithm::kHybrid};
  return backends;
}

std::vector<int> thread_counts() {
  std::vector<int> counts = {1, 2, std::max(4, num_threads())};
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

struct AdversarialGraph {
  std::string name;
  CsrGraph graph;
};

std::vector<AdversarialGraph> adversarial_graphs() {
  std::vector<AdversarialGraph> graphs;
  // One giant BFS level: every worker hammers the same frontier.
  graphs.push_back({"star_200", star(200)});
  // 200 levels of a single vertex: maximal fork/join churn per source.
  graphs.push_back({"path_200", path(200)});
  // Dense biconnected component: no articulation points, heavy sigma
  // contention on the CAS-claimed forward phase.
  graphs.push_back({"complete_24", complete(24)});
  // Articulation-point stress shape plus pendant decorations.
  graphs.push_back({"barbell_pendants",
                    attach_pendants(barbell(12, 6), /*count=*/24, /*seed=*/99)});
  return graphs;
}

void expect_backend_matches_serial(const CsrGraph& g, Algorithm backend,
                                   int threads, const std::vector<double>& expected,
                                   const std::string& tag) {
  BcOptions opts;
  opts.algorithm = backend;
  opts.threads = threads;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    const std::vector<double> actual = betweenness(g, opts).scores;
    const ScoreComparison cmp = compare_scores(expected, actual);
    EXPECT_TRUE(cmp.ok) << tag << " algorithm " << algorithm_name(backend)
                        << " threads " << threads << " rep " << rep
                        << ": worst vertex " << cmp.worst_vertex << " expected "
                        << cmp.expected_score << " got " << cmp.actual_score;
    if (!cmp.ok) return;  // one blamed failure per configuration is enough
  }
}

TEST(ParallelStressTest, BackendsMatchSerialOnAdversarialGraphs) {
  for (const AdversarialGraph& ag : adversarial_graphs()) {
    BcOptions serial;
    serial.algorithm = Algorithm::kBrandesSerial;
    const std::vector<double> expected = betweenness(ag.graph, serial).scores;
    for (Algorithm backend : parallel_backends()) {
      for (int threads : thread_counts()) {
        expect_backend_matches_serial(ag.graph, backend, threads, expected,
                                      ag.name);
      }
    }
  }
}

// The sweep the TSan CI job leans on: every parallel backend over the tiny
// check corpus with forced concurrency (4+ threads even on small hosts).
TEST(ParallelStressTest, BackendsMatchSerialOnCheckCorpus) {
  const int threads = std::max(4, num_threads());
  for (const CorpusCase& c : graph_corpus(/*seed=*/5, /*tiny=*/true)) {
    BcOptions serial;
    serial.algorithm = Algorithm::kBrandesSerial;
    const std::vector<double> expected = betweenness(c.graph, serial).scores;
    for (Algorithm backend : parallel_backends()) {
      expect_backend_matches_serial(c.graph, backend, threads, expected, c.name);
    }
  }
}

// APGRE's two-level parallelism (coarse outer loop + fine-grained inner
// kernel) rides along: it exercises the fenced regions in apgre.cpp.
TEST(ParallelStressTest, ApgreMatchesSerialUnderForcedConcurrency) {
  for (const AdversarialGraph& ag : adversarial_graphs()) {
    BcOptions serial;
    serial.algorithm = Algorithm::kBrandesSerial;
    const std::vector<double> expected = betweenness(ag.graph, serial).scores;
    for (int threads : thread_counts()) {
      expect_backend_matches_serial(ag.graph, Algorithm::kApgre, threads,
                                    expected, ag.name);
    }
  }
}

}  // namespace
}  // namespace apgre
