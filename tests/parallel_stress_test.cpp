// Multi-threaded stress tier for the five parallel BC backends (preds,
// succs, lockfree, coarse, hybrid): repeated runs on adversarial shapes —
// a star (one giant level), a long path (many one-vertex levels), a dense
// biconnected component and a barbell — differentially checked against
// serial Brandes, at thread counts {1, 2, hardware}. The host runs ctest
// on few cores, so the thread counts oversubscribe deliberately: context
// switches mid-kernel widen race windows, which is exactly what this tier
// (and the ThreadSanitizer CI job that runs it) is for.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bc/bc.hpp"
#include "check/corpus.hpp"
#include "check/oracle.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"
#include "support/parallel.hpp"

namespace apgre {
namespace {

constexpr int kRepetitions = 3;

const std::vector<Algorithm>& parallel_backends() {
  static const std::vector<Algorithm> backends = {
      Algorithm::kParallelPreds, Algorithm::kParallelSuccs, Algorithm::kLockFree,
      Algorithm::kCoarse, Algorithm::kHybrid};
  return backends;
}

std::vector<int> thread_counts() {
  std::vector<int> counts = {1, 2, std::max(4, num_threads())};
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

struct AdversarialGraph {
  std::string name;
  CsrGraph graph;
};

std::vector<AdversarialGraph> adversarial_graphs() {
  std::vector<AdversarialGraph> graphs;
  // One giant BFS level: every worker hammers the same frontier.
  graphs.push_back({"star_200", star(200)});
  // 200 levels of a single vertex: maximal fork/join churn per source.
  graphs.push_back({"path_200", path(200)});
  // Dense biconnected component: no articulation points, heavy sigma
  // contention on the CAS-claimed forward phase.
  graphs.push_back({"complete_24", complete(24)});
  // Articulation-point stress shape plus pendant decorations.
  graphs.push_back({"barbell_pendants",
                    attach_pendants(barbell(12, 6), /*count=*/24, /*seed=*/99)});
  return graphs;
}

void expect_backend_matches_serial(const CsrGraph& g, Algorithm backend,
                                   int threads, const std::vector<double>& expected,
                                   const std::string& tag) {
  BcOptions opts;
  opts.algorithm = backend;
  opts.threads = threads;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    const std::vector<double> actual = betweenness(g, opts).scores;
    const ScoreComparison cmp = compare_scores(expected, actual);
    EXPECT_TRUE(cmp.ok) << tag << " algorithm " << algorithm_name(backend)
                        << " threads " << threads << " rep " << rep
                        << ": worst vertex " << cmp.worst_vertex << " expected "
                        << cmp.expected_score << " got " << cmp.actual_score;
    if (!cmp.ok) return;  // one blamed failure per configuration is enough
  }
}

TEST(ParallelStressTest, BackendsMatchSerialOnAdversarialGraphs) {
  for (const AdversarialGraph& ag : adversarial_graphs()) {
    BcOptions serial;
    serial.algorithm = Algorithm::kBrandesSerial;
    const std::vector<double> expected = betweenness(ag.graph, serial).scores;
    for (Algorithm backend : parallel_backends()) {
      for (int threads : thread_counts()) {
        expect_backend_matches_serial(ag.graph, backend, threads, expected,
                                      ag.name);
      }
    }
  }
}

// The sweep the TSan CI job leans on: every parallel backend over the tiny
// check corpus with forced concurrency (4+ threads even on small hosts).
TEST(ParallelStressTest, BackendsMatchSerialOnCheckCorpus) {
  const int threads = std::max(4, num_threads());
  for (const CorpusCase& c : graph_corpus(/*seed=*/5, /*tiny=*/true)) {
    BcOptions serial;
    serial.algorithm = Algorithm::kBrandesSerial;
    const std::vector<double> expected = betweenness(c.graph, serial).scores;
    for (Algorithm backend : parallel_backends()) {
      expect_backend_matches_serial(c.graph, backend, threads, expected, c.name);
    }
  }
}

// APGRE's two-level parallelism (coarse outer loop + fine-grained inner
// kernel) rides along: it exercises the fenced regions in apgre.cpp.
TEST(ParallelStressTest, ApgreMatchesSerialUnderForcedConcurrency) {
  for (const AdversarialGraph& ag : adversarial_graphs()) {
    BcOptions serial;
    serial.algorithm = Algorithm::kBrandesSerial;
    const std::vector<double> expected = betweenness(ag.graph, serial).scores;
    for (int threads : thread_counts()) {
      expect_backend_matches_serial(ag.graph, Algorithm::kApgre, threads,
                                    expected, ag.name);
    }
  }
}

// Work-stealing scheduler stress: a skewed decomposition (one dominant
// biconnected core plus many tiny satellite blocks, chains and pendants)
// scored through the two-level scheduler under every combination of
// worker count, grain and steal policy. TSan sees the Chase-Lev deque,
// the per-worker buffer merge and the spawn path under real contention.
TEST(ParallelStressTest, SchedulerMatchesSerialOnSkewedDecomposition) {
  CsrGraph g = barabasi_albert(300, 4, 41);
  g = attach_communities(g, 60, 6, 42);
  g = attach_chains(g, 30, 3, 43);
  g = attach_pendants(g, 200, 44);

  BcOptions serial;
  serial.algorithm = Algorithm::kBrandesSerial;
  const std::vector<double> expected = betweenness(g, serial).scores;

  for (int threads : thread_counts()) {
    for (int grain : {0, 1, 8}) {
      for (StealPolicy policy :
           {StealPolicy::kRandom, StealPolicy::kSequential}) {
        BcOptions opts;
        opts.algorithm = Algorithm::kApgre;
        opts.threads = threads;
        opts.scheduler.enabled = true;
        opts.scheduler.threads = threads;
        opts.scheduler.grain = grain;
        opts.scheduler.steal_policy = policy;
        // Force everything through the task path so the deques see the
        // giant core too, not just the satellite tail.
        opts.scheduler.adaptive_kernel = (grain != 1);
        const std::string tag = "skewed grain " + std::to_string(grain) +
                                " policy " + steal_policy_name(policy);
        for (int rep = 0; rep < kRepetitions; ++rep) {
          const BcResult r = betweenness(g, opts);
          ASSERT_TRUE(r.status.ok()) << tag;
          const ScoreComparison cmp = compare_scores(expected, r.scores);
          EXPECT_TRUE(cmp.ok)
              << tag << " threads " << threads << " rep " << rep
              << ": worst vertex " << cmp.worst_vertex << " expected "
              << cmp.expected_score << " got " << cmp.actual_score;
          if (!cmp.ok) return;
        }
      }
    }
  }
}

}  // namespace
}  // namespace apgre
