// Batched streaming ingest (graph/update.hpp + BlockCutQueries::
// classify_batch + IncrementalBc::apply_batch + the service's kUpdateBatch
// pipeline). The tests pin the coalescing algebra (cancel, dedupe, stable
// timestamp order, reject-before-mutate), the whole-batch classification
// (one survival check per block, strictly more precise than per-edge), the
// acceptance criterion that an all-local batch of k edges in one block
// re-solves exactly 1 block with 0 re-decompositions, the binary
// edge-batch frame format, and the service-level batch counters. The
// randomized trajectories diff the batched engine against a per-edge
// replay AND a fresh static Brandes solve after every batch; the
// concurrent test interleaves batches with solves across the worker pool
// (run under TSan in CI).
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bc/brandes.hpp"
#include "bc/incremental.hpp"
#include "bcc/queries.hpp"
#include "graph/generators.hpp"
#include "graph/update.hpp"
#include "service/service.hpp"
#include "support/metrics.hpp"
#include "support/prng.hpp"
#include "test_util.hpp"

namespace apgre {
namespace {

using testing::expect_scores_near;

std::uint64_t decompositions() {
  return metrics().counter("bcc.decompositions").value();
}

std::uint64_t peel_runs() {
  return metrics().counter("graph.peel.runs").value();
}

/// Two K6 cliques sharing articulation point 5: two dense blocks, each
/// tolerating several disjoint chord deletions without losing
/// biconnectivity.
CsrGraph two_k6() {
  EdgeList edges;
  for (Vertex u = 0; u < 6; ++u) {
    for (Vertex v = u + 1; v < 6; ++v) edges.push_back(Edge{u, v});
  }
  for (Vertex u = 5; u < 11; ++u) {
    for (Vertex v = u + 1; v < 11; ++v) edges.push_back(Edge{u, v});
  }
  return CsrGraph::undirected_from_edges(11, std::move(edges));
}

/// One sub-graph per block, so blocks_resolved counts blocks 1:1.
BcOptions per_block_options() {
  BcOptions opts;
  opts.apgre.partition.merge_threshold = 2;
  return opts;
}

EdgeOp op(Vertex u, Vertex v, bool insert, std::uint64_t t = 0) {
  EdgeOp e;
  e.u = u;
  e.v = v;
  e.insert = insert;
  e.timestamp = t;
  return e;
}

// ---------------------------------------------------------------------------
// Coalescing algebra.

TEST(Coalesce, InsertThenDeleteCancels) {
  const CsrGraph g = cycle(4);
  const CoalesceResult r =
      coalesce_batch(g, {op(0, 2, true, 0), op(0, 2, false, 1)});
  ASSERT_TRUE(r.status.ok()) << r.status.message;
  EXPECT_TRUE(r.survivors.empty());
  EXPECT_EQ(r.coalesced_away, 2u);
}

TEST(Coalesce, DeleteThenReinsertIsNoOp) {
  const CsrGraph g = cycle(4);
  const CoalesceResult r =
      coalesce_batch(g, {op(0, 1, false, 0), op(0, 1, true, 1)});
  ASSERT_TRUE(r.status.ok()) << r.status.message;
  EXPECT_TRUE(r.survivors.empty());
  EXPECT_EQ(r.coalesced_away, 2u);
}

TEST(Coalesce, RepeatedOpDedupes) {
  const CsrGraph g = cycle(4);
  const CoalesceResult r =
      coalesce_batch(g, {op(0, 2, true, 0), op(0, 2, true, 1)});
  ASSERT_TRUE(r.status.ok()) << r.status.message;
  ASSERT_EQ(r.survivors.size(), 1u);
  EXPECT_EQ(r.coalesced_away, 1u);
  EXPECT_TRUE(r.survivors[0].insert);
}

TEST(Coalesce, TimestampOrderBeatsArrivalOrder) {
  // Textually the insert of the present edge 0-1 comes first, which would
  // reject; ordered by timestamp the delete folds first and the pair
  // cancels. Survival of this batch is the witness that coalescing sorts.
  const CsrGraph g = cycle(4);
  const CoalesceResult r =
      coalesce_batch(g, {op(0, 1, true, 2), op(0, 1, false, 1)});
  ASSERT_TRUE(r.status.ok()) << r.status.message;
  EXPECT_TRUE(r.survivors.empty());
  EXPECT_EQ(r.coalesced_away, 2u);
}

TEST(Coalesce, SurvivorsComeOutInTimestampOrder) {
  const CsrGraph g = cycle(5);
  const CoalesceResult r = coalesce_batch(
      g, {op(1, 3, true, 7), op(0, 2, true, 3), op(2, 4, true, 5)});
  ASSERT_TRUE(r.status.ok()) << r.status.message;
  ASSERT_EQ(r.survivors.size(), 3u);
  EXPECT_EQ(r.coalesced_away, 0u);
  EXPECT_EQ(r.survivors[0].timestamp, 3u);
  EXPECT_EQ(r.survivors[1].timestamp, 5u);
  EXPECT_EQ(r.survivors[2].timestamp, 7u);
}

TEST(Coalesce, RejectsMatchMutateHelperMessages) {
  const CsrGraph g = cycle(4);
  EXPECT_EQ(coalesce_batch(g, {op(0, 1, true)}).status.message,
            "arc already present");
  EXPECT_EQ(coalesce_batch(g, {op(0, 2, false)}).status.message,
            "arc not present");
  EXPECT_NE(coalesce_batch(g, {op(1, 1, true)})
                .status.message.find("self-loops"),
            std::string::npos);
  EXPECT_NE(coalesce_batch(g, {op(0, 9, true)})
                .status.message.find("out of range"),
            std::string::npos);
  EdgeOp weighted = op(0, 2, true);
  weighted.weight = 2.5;
  EXPECT_NE(coalesce_batch(g, {weighted})
                .status.message.find("non-unit edge weights"),
            std::string::npos);
  // A rejected batch reports no survivors even when other ops were fine.
  const CoalesceResult r =
      coalesce_batch(g, {op(0, 2, true, 0), op(0, 1, true, 1)});
  EXPECT_FALSE(r.status.ok());
  EXPECT_TRUE(r.survivors.empty());
}

// ---------------------------------------------------------------------------
// Whole-batch classification.

TEST(ClassifyBatch, GroupsOpsByBlock) {
  const CsrGraph g = two_k6();
  const BlockCutQueries queries(g);
  const BatchClassification c = queries.classify_batch(
      {op(0, 1, false, 0), op(2, 3, false, 1), op(6, 7, false, 2)});
  EXPECT_FALSE(c.structural);
  ASSERT_EQ(c.groups.size(), 2u);
  EXPECT_EQ(c.groups[0].ops.size(), 2u);
  EXPECT_EQ(c.groups[1].ops.size(), 1u);
  EXPECT_TRUE(c.groups[0].has_delete);
}

TEST(ClassifyBatch, ApEndpointInsertDowngrades) {
  const CsrGraph g = two_k6();
  const BlockCutQueries queries(g);
  // Vertex 5 is the articulation point; re-wiring it may merge blocks.
  const BatchClassification c =
      queries.classify_batch({op(0, 1, false, 0), op(5, 0, true, 1)});
  EXPECT_TRUE(c.structural);
  EXPECT_TRUE(c.groups.empty());
}

TEST(ClassifyBatch, CrossBlockInsertDowngrades) {
  const CsrGraph g = two_k6();
  const BlockCutQueries queries(g);
  const BatchClassification c = queries.classify_batch({op(0, 6, true, 0)});
  EXPECT_TRUE(c.structural);
}

TEST(ClassifyBatch, BlockDissolvingDeleteDowngrades) {
  // Deleting a C4 edge leaves a path: the block no longer survives.
  const CsrGraph g = cycle(4);
  const BlockCutQueries queries(g);
  const BatchClassification c = queries.classify_batch({op(0, 1, false, 0)});
  EXPECT_TRUE(c.structural);
}

TEST(ClassifyBatch, SameBatchRepairIsMorePreciseThanPerEdge) {
  // Per edge, deleting (0,1) from C4 is structural (see above). Judged as
  // a whole, the same batch's chords (0,2) and (1,3) restore the block's
  // biconnectivity, so the batch stays local — the amortisation is not
  // just cheaper, it is strictly more precise.
  const CsrGraph g = cycle(4);
  const BlockCutQueries queries(g);
  EXPECT_EQ(queries.classify_update(0, 1, /*inserting=*/false),
            UpdateLocality::kStructural);
  const BatchClassification c = queries.classify_batch(
      {op(0, 1, false, 0), op(0, 2, true, 1), op(1, 3, true, 2)});
  EXPECT_FALSE(c.structural);
  ASSERT_EQ(c.groups.size(), 1u);
  EXPECT_EQ(c.groups[0].ops.size(), 3u);
}

// ---------------------------------------------------------------------------
// IncrementalBc::apply_batch.

// The acceptance criterion: an all-local batch of k edges inside one block
// triggers exactly ONE block re-solve and ZERO re-decompositions.
TEST(ApplyBatch, OneBlockBatchResolvesOnce) {
  IncrementalBc engine(two_k6(), per_block_options());
  const std::uint64_t base = decompositions();

  UpdateRequest batch;
  batch.ops = {op(0, 1, false, 0), op(2, 3, false, 1), op(1, 4, false, 2)};
  const BatchStats stats = engine.apply_batch(batch);
  EXPECT_EQ(stats.batch_edges, 3u);
  EXPECT_EQ(stats.coalesced_away, 0u);
  EXPECT_EQ(stats.blocks_resolved, 1u)
      << "k edges in one block must re-solve that block exactly once";
  EXPECT_EQ(stats.batch_downgrades, 0u);
  EXPECT_EQ(decompositions(), base) << "a local batch must not re-decompose";
  expect_scores_near(brandes_bc(engine.graph()), engine.scores());

  // Re-inserting the chords is the mirror batch: same invariants.
  UpdateRequest restore;
  restore.ops = {op(0, 1, true, 3), op(2, 3, true, 4), op(1, 4, true, 5)};
  const BatchStats back = engine.apply_batch(restore);
  EXPECT_EQ(back.blocks_resolved, 1u);
  EXPECT_EQ(back.batch_downgrades, 0u);
  EXPECT_EQ(decompositions(), base);
  expect_scores_near(brandes_bc(engine.graph()), engine.scores());

  EXPECT_EQ(engine.stats().batches, 2u);
  EXPECT_EQ(engine.stats().batch_edges, 6u);
  EXPECT_EQ(engine.stats().blocks_resolved, 2u);
  EXPECT_EQ(engine.stats().structural_resolves, 0u);
}

TEST(ApplyBatch, MultiBlockBatchResolvesEachBlockOnce) {
  IncrementalBc engine(two_k6(), per_block_options());
  const std::uint64_t base = decompositions();
  UpdateRequest batch;
  batch.ops = {op(0, 1, false, 0), op(6, 7, false, 1)};
  const BatchStats stats = engine.apply_batch(batch);
  EXPECT_EQ(stats.blocks_resolved, 2u);
  EXPECT_EQ(stats.batch_downgrades, 0u);
  EXPECT_EQ(decompositions(), base);
  expect_scores_near(brandes_bc(engine.graph()), engine.scores());
}

TEST(ApplyBatch, StructuralBatchRedecomposesOnce) {
  IncrementalBc engine(two_k6(), per_block_options());
  const std::uint64_t base = decompositions();
  // The cross-block insert downgrades the whole batch; the local chord
  // deletes ride along in the single re-decomposition.
  UpdateRequest batch;
  batch.ops = {op(0, 1, false, 0), op(6, 7, false, 1), op(0, 6, true, 2)};
  const BatchStats stats = engine.apply_batch(batch);
  EXPECT_EQ(stats.batch_downgrades, 1u);
  EXPECT_EQ(stats.blocks_resolved, 0u);
  EXPECT_EQ(decompositions(), base + 1)
      << "a downgraded batch re-decomposes exactly once, not per op";
  EXPECT_EQ(engine.stats().structural_resolves, 1u);
  expect_scores_near(brandes_bc(engine.graph()), engine.scores());
}

TEST(ApplyBatch, NetNoOpBatchLeavesEverythingUntouched) {
  IncrementalBc engine(two_k6(), per_block_options());
  const std::vector<double> before = engine.scores();
  const std::uint64_t base = decompositions();
  UpdateRequest batch;
  batch.ops = {op(0, 1, false, 0), op(0, 1, true, 1)};
  const BatchStats stats = engine.apply_batch(batch);
  EXPECT_EQ(stats.batch_edges, 2u);
  EXPECT_EQ(stats.coalesced_away, 2u);
  EXPECT_EQ(stats.blocks_resolved, 0u);
  EXPECT_EQ(stats.batch_downgrades, 0u);
  EXPECT_EQ(decompositions(), base);
  EXPECT_EQ(engine.scores(), before);
  EXPECT_EQ(engine.graph().num_arcs(), two_k6().num_arcs());
}

TEST(ApplyBatch, SameBatchRepairAppliesExactly) {
  IncrementalBc engine(cycle(4), per_block_options());
  const std::uint64_t base = decompositions();
  UpdateRequest batch;
  batch.ops = {op(0, 1, false, 0), op(0, 2, true, 1), op(1, 3, true, 2)};
  const BatchStats stats = engine.apply_batch(batch);
  EXPECT_EQ(stats.batch_downgrades, 0u);
  EXPECT_EQ(stats.blocks_resolved, 1u);
  EXPECT_EQ(decompositions(), base);
  expect_scores_near(brandes_bc(engine.graph()), engine.scores());
}

TEST(ApplyBatch, RejectedBatchChangesNoState) {
  IncrementalBc engine(two_k6(), per_block_options());
  const std::vector<double> before = engine.scores();
  UpdateRequest batch;
  batch.ops = {op(0, 1, false, 0), op(0, 2, true, 1)};  // 0-2 already present
  EXPECT_THROW(engine.apply_batch(batch), Error);
  EXPECT_EQ(engine.scores(), before);
  EXPECT_EQ(engine.graph().num_arcs(), two_k6().num_arcs());
  EXPECT_EQ(engine.stats().batches, 0u);
}

/// Randomized batch trajectories: every batch is applied to a batched
/// engine and replayed op-by-op through a per-edge engine; after every
/// batch both must match each other AND a fresh static Brandes solve.
void random_batch_trajectory(std::uint64_t seed) {
  const CsrGraph start = caveman(3, 5, seed);
  IncrementalBc batched(start, per_block_options());
  IncrementalBc per_edge(start, per_block_options());

  std::set<std::pair<Vertex, Vertex>> edges;
  for (Vertex u = 0; u < start.num_vertices(); ++u) {
    for (Vertex v : start.out_neighbors(u)) {
      if (u < v) edges.insert({u, v});
    }
  }
  SplitMix64 rng(seed);
  const Vertex n = start.num_vertices();
  for (int b = 0; b < 12; ++b) {
    UpdateRequest batch;
    std::set<std::pair<Vertex, Vertex>> touched;
    const std::size_t want = 2 + rng.next() % 4;
    for (int guard = 0; batch.ops.size() < want && guard < 200; ++guard) {
      const Vertex u = static_cast<Vertex>(rng.next() % n);
      const Vertex v = static_cast<Vertex>(rng.next() % n);
      if (u == v) continue;
      const std::pair<Vertex, Vertex> key{std::min(u, v), std::max(u, v)};
      if (!touched.insert(key).second) continue;  // one op per edge per batch
      const bool present = edges.count(key) != 0;
      batch.ops.push_back(op(key.first, key.second, !present,
                             batch.ops.size()));
      if (present) {
        edges.erase(key);
      } else {
        edges.insert(key);
      }
    }
    ASSERT_FALSE(batch.ops.empty());
    batched.apply_batch(batch);
    for (const EdgeOp& o : batch.ops) {
      if (o.insert) {
        per_edge.insert_edge(o.u, o.v);
      } else {
        per_edge.remove_edge(o.u, o.v);
      }
    }
    const std::vector<double> oracle = brandes_bc(batched.graph());
    expect_scores_near(oracle, batched.scores());
    expect_scores_near(oracle, per_edge.scores());
  }
}

TEST(ApplyBatch, RandomTrajectorySeed7) { random_batch_trajectory(7); }
TEST(ApplyBatch, RandomTrajectorySeed17) { random_batch_trajectory(17); }
TEST(ApplyBatch, RandomTrajectorySeed27) { random_batch_trajectory(27); }

// ---------------------------------------------------------------------------
// Binary edge-batch frames.

TEST(EdgeBatchIo, FrameRoundTripsThroughStream) {
  UpdateRequest batch;
  batch.ops = {op(0, 1, false, 42), op(2, 3, true, 43)};
  batch.ops[1].weight = 1.0;
  std::stringstream buf;
  write_edge_batch(buf, batch);
  const UpdateRequest back = read_edge_batch(buf);
  ASSERT_EQ(back.ops.size(), 2u);
  EXPECT_EQ(back.ops[0].u, 0u);
  EXPECT_EQ(back.ops[0].v, 1u);
  EXPECT_FALSE(back.ops[0].insert);
  EXPECT_EQ(back.ops[0].timestamp, 42u);
  EXPECT_TRUE(back.ops[1].insert);
  EXPECT_EQ(back.ops[1].weight, 1.0);
}

TEST(EdgeBatchIo, FileRoundTripsManyFrames) {
  std::vector<UpdateRequest> batches(3);
  batches[0].ops = {op(0, 1, true, 0)};
  batches[1].ops = {op(1, 2, false, 1), op(2, 3, true, 2)};
  // batches[2] stays empty: an empty frame is legal.
  const std::string path = ::testing::TempDir() + "/ingest_frames.apgb";
  write_edge_batch_file(path, batches);
  const std::vector<UpdateRequest> back = read_edge_batch_file(path);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0].ops.size(), 1u);
  EXPECT_EQ(back[1].ops.size(), 2u);
  EXPECT_TRUE(back[2].ops.empty());
  EXPECT_EQ(back[1].ops[0].v, 2u);
  std::remove(path.c_str());
}

TEST(EdgeBatchIo, TruncatedFrameThrows) {
  UpdateRequest batch;
  batch.ops = {op(0, 1, true, 0)};
  std::stringstream buf;
  write_edge_batch(buf, batch);
  const std::string bytes = buf.str();
  std::stringstream cut(bytes.substr(0, bytes.size() - 4));
  EXPECT_THROW(read_edge_batch(cut), Error);
}

TEST(EdgeBatchIo, BadMagicThrows) {
  std::stringstream buf("XXXXnot a frame at all, nope");
  EXPECT_THROW(read_edge_batch(buf), Error);
}

// ---------------------------------------------------------------------------
// Service-level batching.

Request batch_request(const std::string& graph, std::vector<EdgeOp> ops) {
  Request request;
  request.kind = RequestKind::kUpdateBatch;
  request.graph = graph;
  request.update.ops = std::move(ops);
  return request;
}

Request solve_request(const std::string& graph) {
  Request request;
  request.kind = RequestKind::kSolve;
  request.graph = graph;
  request.options.algorithm = Algorithm::kBrandesSerial;
  return request;
}

ServiceOptions unit_options() {
  ServiceOptions options;
  options.workers = 1;
  options.session_capacity = 2;
  return options;
}

TEST(ServiceBatch, LocalBatchCountersAndExactness) {
  Service service(unit_options());
  ASSERT_TRUE(service.register_graph("g", two_k6()).ok());

  const Response r = service.handle(
      batch_request("g", {op(0, 1, false, 0), op(6, 7, false, 1)}));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.locality, UpdateLocality::kLocalDelete);
  EXPECT_EQ(r.affected_sources, 12u) << "both K6 blocks are affected";
  EXPECT_EQ(r.batch.batch_edges, 2u);
  EXPECT_EQ(r.batch.coalesced_away, 0u);
  EXPECT_EQ(r.batch.blocks_resolved, 2u);
  EXPECT_EQ(r.batch.batch_downgrades, 0u);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.batch_updates, 1u);
  EXPECT_EQ(stats.updates, 0u);
  EXPECT_EQ(stats.batch_edges, 2u);
  EXPECT_EQ(stats.blocks_resolved, 2u);
  EXPECT_EQ(stats.batch_downgrades, 0u);
  EXPECT_EQ(stats.updates_local, 2u) << "one per surviving op";

  const Response solved = service.handle(solve_request("g"));
  ASSERT_TRUE(solved.ok);
  expect_scores_near(brandes_bc(*service.snapshot("g")), solved.scores);
}

TEST(ServiceBatch, AllInsertBatchGradesLocalInsert) {
  Service service(unit_options());
  ASSERT_TRUE(service.register_graph("g", cycle(5)).ok());
  const Response r = service.handle(
      batch_request("g", {op(0, 2, true, 0), op(1, 3, true, 1)}));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.locality, UpdateLocality::kLocalInsert);
  EXPECT_EQ(r.batch.blocks_resolved, 1u);
}

TEST(ServiceBatch, StructuralBatchDowngradesOnce) {
  Service service(unit_options());
  ASSERT_TRUE(service.register_graph("g", two_k6()).ok());
  const Response r = service.handle(
      batch_request("g", {op(0, 1, false, 0), op(0, 6, true, 1)}));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.locality, UpdateLocality::kStructural);
  EXPECT_EQ(r.batch.batch_downgrades, 1u);
  EXPECT_EQ(r.batch.blocks_resolved, 0u);
  EXPECT_EQ(service.stats().batch_downgrades, 1u);
  EXPECT_EQ(service.stats().updates_structural, 2u);
  const Response solved = service.handle(solve_request("g"));
  ASSERT_TRUE(solved.ok);
  expect_scores_near(brandes_bc(*service.snapshot("g")), solved.scores);
}

TEST(ServiceBatch, EmptyAndFullyCoalescedBatchesAreLegalNoOps) {
  Service service(unit_options());
  ASSERT_TRUE(service.register_graph("g", cycle(5)).ok());
  const auto before = service.snapshot("g");

  const Response empty = service.handle(batch_request("g", {}));
  ASSERT_TRUE(empty.ok) << empty.error;
  EXPECT_EQ(empty.batch.batch_edges, 0u);

  const Response cancelled = service.handle(
      batch_request("g", {op(0, 2, true, 0), op(0, 2, false, 1)}));
  ASSERT_TRUE(cancelled.ok) << cancelled.error;
  EXPECT_EQ(cancelled.batch.coalesced_away, 2u);
  EXPECT_EQ(cancelled.batch.blocks_resolved, 0u);
  EXPECT_EQ(service.snapshot("g"), before)
      << "a no-op batch must not swap the snapshot";
}

TEST(ServiceBatch, RejectedBatchKeepsStateAndCountsError) {
  Service service(unit_options());
  ASSERT_TRUE(service.register_graph("g", cycle(5)).ok());
  const std::vector<double> before =
      service.handle(solve_request("g")).scores;

  const Response r = service.handle(
      batch_request("g", {op(0, 2, true, 0), op(0, 1, true, 1)}));
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.status.ok());
  EXPECT_NE(r.error.find("arc already present"), std::string::npos);
  EXPECT_EQ(service.stats().errors, 1u);

  const Response after = service.handle(solve_request("g"));
  ASSERT_TRUE(after.ok);
  expect_scores_near(before, after.scores);
}

TEST(ServiceBatch, LegacyUpdateIsABatchOfOne) {
  Service service(unit_options());
  ASSERT_TRUE(service.register_graph("g", cycle(5)).ok());
  // Deprecated shim fields only; update.ops stays empty.
  Request legacy;
  legacy.kind = RequestKind::kUpdate;
  legacy.graph = "g";
  legacy.u = 0;
  legacy.v = 2;
  legacy.inserting = true;
  const Response r = service.handle(legacy);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.locality, UpdateLocality::kLocalInsert);
  EXPECT_EQ(r.batch.batch_edges, 1u);
  EXPECT_EQ(service.stats().updates, 1u);
  EXPECT_EQ(service.stats().batch_updates, 0u)
      << "kUpdate keeps counting under `updates`";
}

TEST(ServiceBatch, UpdateRejectsMultiOpPayload) {
  Service service(unit_options());
  ASSERT_TRUE(service.register_graph("g", cycle(5)).ok());
  Request request;
  request.kind = RequestKind::kUpdate;
  request.graph = "g";
  request.update.ops = {op(0, 2, true, 0), op(1, 3, true, 1)};
  const Response r = service.handle(request);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("update_batch"), std::string::npos);
}

TEST(ServiceBatch, RegisterRejectsEmptyName) {
  Service service(unit_options());
  const Status status = service.register_graph("", cycle(4));
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message.find("non-empty"), std::string::npos);
  EXPECT_TRUE(service.graph_names().empty());
}

TEST(ServiceBatch, ForestIncidentBatchResetsPeelOnce) {
  // K4 core with a pendant chain 3-4-5 and pendant 2-6: the chain edges
  // are bridge blocks, so a batch deleting both is structural and must
  // drop the cached snapshot peel exactly once — the next peeled solve
  // re-runs the peel once, not once per op.
  const CsrGraph g = CsrGraph::undirected_from_edges(
      7, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
          {3, 4}, {4, 5}, {2, 6}});
  Service service(unit_options());
  ASSERT_TRUE(service.register_graph("g", g).ok());

  Request peeled = solve_request("g");
  peeled.options.algorithm = Algorithm::kApgre;
  peeled.options.apgre.partition.peel_two_core = true;

  ASSERT_TRUE(service.handle(peeled).ok);
  const std::uint64_t base = peel_runs();
  ASSERT_TRUE(service.handle(peeled).ok);
  EXPECT_EQ(peel_runs(), base) << "warm snapshot peel must be reused";

  const Response batch = service.handle(
      batch_request("g", {op(4, 5, false, 0), op(2, 6, false, 1)}));
  ASSERT_TRUE(batch.ok) << batch.error;
  EXPECT_EQ(batch.locality, UpdateLocality::kStructural);

  const Response after = service.handle(peeled);
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(peel_runs(), base + 1)
      << "one structural batch = one peel reset = one re-peel at next solve";
  expect_scores_near(brandes_bc(*service.snapshot("g")), after.scores);
}

// Adversarial concurrency: one writer streaming batches while readers
// solve. Run under TSan in CI (docs/TESTING.md); here it also checks the
// final scores are exact whatever interleaving happened.
TEST(ServiceBatch, ConcurrentBatchesAndSolves) {
  ServiceOptions options;
  options.workers = 4;
  options.session_capacity = 2;
  Service service(options);
  ASSERT_TRUE(service.register_graph("g", two_k6()).ok());

  std::thread writer([&service] {
    for (int i = 0; i < 16; ++i) {
      const bool deleting = i % 2 == 0;
      service
          .submit(batch_request(
              "g", {op(0, 1, !deleting, 0), op(6, 7, !deleting, 1)}))
          .get();
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&service] {
      for (int i = 0; i < 8; ++i) {
        const Response r = service.submit(solve_request("g")).get();
        ASSERT_TRUE(r.ok) << r.error;
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();

  const Response final_solve = service.handle(solve_request("g"));
  ASSERT_TRUE(final_solve.ok);
  expect_scores_near(brandes_bc(*service.snapshot("g")), final_solve.scores);
  EXPECT_EQ(service.stats().batch_updates, 16u);
  EXPECT_EQ(service.stats().batch_downgrades, 0u);
}

}  // namespace
}  // namespace apgre
