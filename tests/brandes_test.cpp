#include <gtest/gtest.h>

#include "bc/brandes.hpp"
#include "bc/naive.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace apgre {
namespace {

TEST(NaiveBc, PathHasQuadraticProfile) {
  // Ordered-pair convention: interior vertex i of an n-path scores
  // 2 * i * (n - 1 - i).
  const auto bc = naive_bc(path(6));
  for (Vertex i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(bc[i], 2.0 * i * (5.0 - i)) << "vertex " << i;
  }
}

TEST(NaiveBc, StarCentreDominates) {
  const auto bc = naive_bc(star(8));
  EXPECT_DOUBLE_EQ(bc[0], 7.0 * 6.0);  // (n-1)(n-2) ordered pairs
  for (Vertex v = 1; v < 8; ++v) EXPECT_DOUBLE_EQ(bc[v], 0.0);
}

TEST(NaiveBc, CompleteGraphIsZero) {
  for (double score : naive_bc(complete(6))) EXPECT_DOUBLE_EQ(score, 0.0);
}

TEST(NaiveBc, DirectedChain) {
  // 0 -> 1 -> 2: only vertex 1 is interior, for exactly one ordered pair.
  const CsrGraph g = CsrGraph::from_edges(3, {{0, 1}, {1, 2}}, true);
  const auto bc = naive_bc(g);
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[1], 1.0);
  EXPECT_DOUBLE_EQ(bc[2], 0.0);
}

TEST(NaiveBc, SplitParallelPaths) {
  // Diamond 0 -> {1,2} -> 3: two shortest paths, each middle vertex carries
  // half of the single (0, 3) pair.
  const CsrGraph g = CsrGraph::from_edges(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}}, true);
  const auto bc = naive_bc(g);
  EXPECT_DOUBLE_EQ(bc[1], 0.5);
  EXPECT_DOUBLE_EQ(bc[2], 0.5);
}

TEST(NaiveBc, RejectsHugeGraphs) {
  EXPECT_THROW(naive_bc(erdos_renyi(5000, 5000, false, 1)), Error);
}

TEST(BrandesBc, MatchesAnalyticShapes) {
  testing::expect_scores_near(naive_bc(path(7)), brandes_bc(path(7)));
  testing::expect_scores_near(naive_bc(star(9)), brandes_bc(star(9)));
  testing::expect_scores_near(naive_bc(cycle(9)), brandes_bc(cycle(9)));
  testing::expect_scores_near(naive_bc(binary_tree(15)), brandes_bc(binary_tree(15)));
}

TEST(BrandesBc, HandlesDisconnectedGraphs) {
  const CsrGraph g =
      CsrGraph::undirected_from_edges(7, {{0, 1}, {1, 2}, {4, 5}, {5, 6}});
  testing::expect_scores_near(naive_bc(g), brandes_bc(g));
}

TEST(BrandesBc, EmptyAndTrivialGraphs) {
  EXPECT_TRUE(brandes_bc(CsrGraph::from_edges(0, {}, false)).empty());
  const auto single = brandes_bc(CsrGraph::from_edges(1, {}, false));
  ASSERT_EQ(single.size(), 1u);
  EXPECT_DOUBLE_EQ(single[0], 0.0);
}

TEST(BrandesBc, FromSourcesSubsetAndWeight) {
  const CsrGraph g = path(5);
  const auto full = brandes_bc(g);
  // Summing per-source contributions over all sources reproduces the total.
  std::vector<double> acc(5, 0.0);
  for (Vertex s = 0; s < 5; ++s) {
    const auto partial = brandes_bc_from_sources(g, {s}, 1.0);
    for (Vertex v = 0; v < 5; ++v) acc[v] += partial[v];
  }
  testing::expect_scores_near(full, acc);
  // Weight scales linearly.
  const auto weighted = brandes_bc_from_sources(g, {0}, 3.0);
  const auto unweighted = brandes_bc_from_sources(g, {0}, 1.0);
  for (Vertex v = 0; v < 5; ++v) {
    EXPECT_DOUBLE_EQ(weighted[v], 3.0 * unweighted[v]);
  }
}

TEST(PredsSerialBc, MatchesSuccessorVariant) {
  for (const CsrGraph& g :
       {path(7), star(9), cycle(9), barbell(5, 2), paper_figure3()}) {
    testing::expect_scores_near(brandes_bc(g), brandes_preds_serial_bc(g));
  }
}

class BrandesSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BrandesSweep, MatchesNaiveOracle) {
  for (const auto& gc : testing::graph_family(GetParam(), /*tiny=*/true)) {
    SCOPED_TRACE(gc.name);
    testing::expect_scores_near(naive_bc(gc.graph), brandes_bc(gc.graph));
  }
}

TEST_P(BrandesSweep, PredsSerialMatchesOracle) {
  for (const auto& gc : testing::graph_family(GetParam(), /*tiny=*/true)) {
    SCOPED_TRACE(gc.name);
    testing::expect_scores_near(naive_bc(gc.graph),
                                brandes_preds_serial_bc(gc.graph));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BrandesSweep,
                         ::testing::Values(5, 15, 25, 35, 45, 55, 65, 75));

}  // namespace
}  // namespace apgre
