#include <gtest/gtest.h>

#include "bc/brandes.hpp"
#include "bc/coarse.hpp"
#include "bc/hybrid.hpp"
#include "bc/lockfree.hpp"
#include "bc/parallel_preds.hpp"
#include "bc/parallel_succs.hpp"
#include "graph/generators.hpp"
#include "support/parallel.hpp"
#include "test_util.hpp"

namespace apgre {
namespace {

using BcFn = std::vector<double> (*)(const CsrGraph&);

std::vector<double> hybrid_default(const CsrGraph& g) { return hybrid_bc(g); }

struct NamedAlgorithm {
  const char* name;
  BcFn fn;
};

const NamedAlgorithm kAlgorithms[] = {
    {"preds", parallel_preds_bc}, {"succs", parallel_succs_bc},
    {"lockfree", lockfree_bc},    {"coarse", coarse_bc},
    {"hybrid", hybrid_default},
};

TEST(ParallelBc, AllAgreeOnShapes) {
  for (const CsrGraph& g :
       {path(9), star(12), cycle(10), complete(7), barbell(5, 2),
        binary_tree(15)}) {
    const auto expected = brandes_bc(g);
    for (const auto& alg : kAlgorithms) {
      SCOPED_TRACE(alg.name);
      testing::expect_scores_near(expected, alg.fn(g));
    }
  }
}

TEST(ParallelBc, AllHandleDisconnectedGraphs) {
  const CsrGraph g = CsrGraph::undirected_from_edges(
      9, {{0, 1}, {1, 2}, {2, 0}, {4, 5}, {6, 7}, {7, 8}});
  const auto expected = brandes_bc(g);
  for (const auto& alg : kAlgorithms) {
    SCOPED_TRACE(alg.name);
    testing::expect_scores_near(expected, alg.fn(g));
  }
}

TEST(ParallelBc, AllHandleEmptyGraph) {
  const CsrGraph g = CsrGraph::from_edges(0, {}, false);
  for (const auto& alg : kAlgorithms) {
    EXPECT_TRUE(alg.fn(g).empty()) << alg.name;
  }
}

TEST(ParallelBc, DirectedPaperFigure3) {
  const CsrGraph g = paper_figure3();
  const auto expected = brandes_bc(g);
  for (const auto& alg : kAlgorithms) {
    SCOPED_TRACE(alg.name);
    testing::expect_scores_near(expected, alg.fn(g));
  }
}

TEST(HybridBc, ForcedBottomUpStillCorrect) {
  // alpha tiny + beta huge forces bottom-up from the first level.
  HybridOptions opts;
  opts.alpha = 1e-9;
  opts.beta = 1e9;
  const CsrGraph g = barabasi_albert(200, 3, 7);
  testing::expect_scores_near(brandes_bc(g), hybrid_bc(g, opts));
}

TEST(HybridBc, ForcedTopDownStillCorrect) {
  HybridOptions opts;
  opts.alpha = 1e9;  // never switch
  const CsrGraph g = barabasi_albert(200, 3, 8);
  testing::expect_scores_near(brandes_bc(g), hybrid_bc(g, opts));
}

TEST(ParallelBc, MultithreadedRunsMatchSerial) {
  // Even on a single hardware core, oversubscribed threads must not change
  // results (races would).
  ThreadBudget budget(4);
  const CsrGraph g = testing::graph_family(9, /*tiny=*/false)[4].graph;  // BA
  const auto expected = brandes_bc(g);
  for (const auto& alg : kAlgorithms) {
    SCOPED_TRACE(alg.name);
    testing::expect_scores_near(expected, alg.fn(g));
  }
}

class ParallelSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(ParallelSweep, AgreesWithBrandesOnRandomGraphs) {
  const auto [seed, threads] = GetParam();
  ThreadBudget budget(threads);
  for (const auto& gc : testing::graph_family(seed, /*tiny=*/true)) {
    SCOPED_TRACE(gc.name);
    const auto expected = brandes_bc(gc.graph);
    for (const auto& alg : kAlgorithms) {
      SCOPED_TRACE(alg.name);
      testing::expect_scores_near(expected, alg.fn(gc.graph));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ParallelSweep,
                         ::testing::Combine(::testing::Values<std::uint64_t>(6, 16, 26),
                                            ::testing::Values(1, 2, 4)));

}  // namespace
}  // namespace apgre
