#include <gtest/gtest.h>

#include "graph/components.hpp"
#include "graph/generators.hpp"

namespace apgre {
namespace {

TEST(ConnectedComponents, SingleComponent) {
  const ComponentLabels labels = connected_components(cycle(6));
  EXPECT_EQ(labels.num_components, 1u);
  for (Vertex id : labels.component) EXPECT_EQ(id, 0u);
}

TEST(ConnectedComponents, CountsIsolatedVertices) {
  const CsrGraph g = CsrGraph::undirected_from_edges(4, {{0, 1}});
  const ComponentLabels labels = connected_components(g);
  EXPECT_EQ(labels.num_components, 3u);  // {0,1}, {2}, {3}
  EXPECT_EQ(labels.component[0], labels.component[1]);
  EXPECT_NE(labels.component[2], labels.component[3]);
}

TEST(ConnectedComponents, DirectedUsesWeakConnectivity) {
  // 0 -> 1 <- 2 : weakly one component even though 0 cannot reach 2.
  const CsrGraph g = CsrGraph::from_edges(3, {{0, 1}, {2, 1}}, true);
  const ComponentLabels labels = connected_components(g);
  EXPECT_EQ(labels.num_components, 1u);
}

TEST(ConnectedComponents, NumbersComponentsBySmallestVertex) {
  const CsrGraph g = CsrGraph::undirected_from_edges(5, {{3, 4}, {0, 1}});
  const ComponentLabels labels = connected_components(g);
  EXPECT_EQ(labels.component[0], 0u);
  EXPECT_EQ(labels.component[2], 1u);
  EXPECT_EQ(labels.component[3], 2u);
}

TEST(IsConnected, Basics) {
  EXPECT_TRUE(is_connected(complete(4)));
  EXPECT_TRUE(is_connected(CsrGraph::from_edges(0, {}, false)));
  EXPECT_FALSE(is_connected(CsrGraph::undirected_from_edges(3, {{0, 1}})));
}

TEST(ComponentMembers, GroupsVertices) {
  const CsrGraph g = CsrGraph::undirected_from_edges(5, {{0, 1}, {2, 3}});
  const auto members = component_members(connected_components(g));
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0], (std::vector<Vertex>{0, 1}));
  EXPECT_EQ(members[1], (std::vector<Vertex>{2, 3}));
  EXPECT_EQ(members[2], (std::vector<Vertex>{4}));
}

TEST(ConnectedComponents, RandomGraphPartitionIsConsistent) {
  const CsrGraph g = erdos_renyi(300, 200, false, 5);  // sparse: several CCs
  const ComponentLabels labels = connected_components(g);
  // Every edge joins same-component endpoints.
  for (const Edge& e : g.arcs()) {
    EXPECT_EQ(labels.component[e.src], labels.component[e.dst]);
  }
  // Labels are dense in [0, num_components).
  for (Vertex id : labels.component) EXPECT_LT(id, labels.num_components);
}

}  // namespace
}  // namespace apgre
