// Whole-graph transformations: symmetrisation (the paper's GETUNDG),
// relabeling, induced sub-graphs and largest-component extraction.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace apgre {

/// Undirected projection: every arc becomes a symmetric edge
/// (paper Algorithm 1 line 1, GETUNDG). Identity for undirected inputs.
CsrGraph undirected_projection(const CsrGraph& g);

/// Relabel vertices: new id of v is `permutation[v]`. `permutation` must be
/// a bijection on [0, n).
CsrGraph relabel(const CsrGraph& g, const std::vector<Vertex>& permutation);

/// Result of an induced-sub-graph extraction: the sub-graph plus the
/// local -> global id mapping.
struct InducedSubgraph {
  CsrGraph graph;
  std::vector<Vertex> to_global;  // local id -> original id
};

/// Sub-graph induced by `vertices` (arcs with both endpoints selected).
/// `vertices` must be duplicate-free.
InducedSubgraph induced_subgraph(const CsrGraph& g, const std::vector<Vertex>& vertices);

/// Restrict to the largest connected component of the undirected projection.
InducedSubgraph largest_component(const CsrGraph& g);

/// Append `count` pendant vertices, each attached to a random existing
/// vertex by a single undirected edge (or, for directed graphs, a single
/// out-arc pendant -> host, making them total-redundancy sources exactly as
/// in paper §2.2). Returns the decorated graph; new ids are n..n+count-1.
CsrGraph attach_pendants(const CsrGraph& g, Vertex count, std::uint64_t seed);

/// Append `count` satellite communities: each is a clique of `size`
/// vertices joined to one random existing vertex by a single bridge edge.
/// The bridge host becomes an articulation point and the community a
/// biconnected block — the source of *partial* redundancy (common sub-DAG
/// reuse) in the paper's social/web graphs. For directed graphs the clique
/// and bridge arcs are added in both directions.
CsrGraph attach_communities(const CsrGraph& g, Vertex count, Vertex size,
                            std::uint64_t seed);

/// Append `count` chains ("tendrils") of `length` vertices hanging off
/// random existing vertices, the tree fringes of web crawls. Every chain
/// vertex is an articulation point; the tip is a removable pendant.
CsrGraph attach_chains(const CsrGraph& g, Vertex count, Vertex length,
                       std::uint64_t seed);

}  // namespace apgre
