// Whole-graph transformations: symmetrisation (the paper's GETUNDG),
// relabeling, induced sub-graphs, largest-component extraction and the
// exact 2-core tree-peeling stage.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace apgre {

/// Undirected projection: every arc becomes a symmetric edge
/// (paper Algorithm 1 line 1, GETUNDG). Identity for undirected inputs.
CsrGraph undirected_projection(const CsrGraph& g);

/// Relabel vertices: new id of v is `permutation[v]`. `permutation` must be
/// a bijection on [0, n).
CsrGraph relabel(const CsrGraph& g, const std::vector<Vertex>& permutation);

/// Result of an induced-sub-graph extraction: the sub-graph plus the
/// local -> global id mapping.
struct InducedSubgraph {
  CsrGraph graph;
  std::vector<Vertex> to_global;  // local id -> original id
};

/// Sub-graph induced by `vertices` (arcs with both endpoints selected).
/// `vertices` must be duplicate-free.
InducedSubgraph induced_subgraph(const CsrGraph& g, const std::vector<Vertex>& vertices);

/// Restrict to the largest connected component of the undirected projection.
InducedSubgraph largest_component(const CsrGraph& g);

/// One vertex peeled off the tree fringe by two_core_peel, in peel order.
struct PeeledVertex {
  Vertex vertex = kInvalidVertex;
  /// The sole unpeeled neighbour at the moment `vertex` was removed;
  /// kInvalidVertex for tree roots and isolated vertices (no neighbour left).
  Vertex parent = kInvalidVertex;
  /// The 2-core vertex this peeled subtree ultimately hangs off; equals
  /// kInvalidVertex when the whole component is a tree (empty core).
  Vertex anchor = kInvalidVertex;
  /// Vertices merged underneath `vertex` when it was peeled, itself
  /// included (the reach weight its anchor absorbs on its behalf).
  Vertex subtree_size = 1;
  /// Exact closed-form ordered-pair BC of `vertex` in the full graph.
  double score = 0.0;
};

/// Exact tree-peeling decomposition of an undirected graph: the forest
/// hanging off the 2-core, with per-vertex closed-form BC scores and the
/// correction each anchor needs (Tsourakakis's 2-core note, PAPERS.md).
///
/// Peeled vertices never lie on a shortest path between two 2-core
/// vertices, so with `r[v]` = number of peeled vertices merged under core
/// vertex v and `sq[v]` = sum over v's peeled child subtrees of
/// (subtree_size)^2, the flat reduction below satisfies
///   BC_G(v) = BC_G'(v) + r[v] - sq[v]          for core vertices, and
///   BC_G(u) = forest[i].score                  for peeled vertices u.
struct PeelResult {
  /// False when the graph was left untouched (directed input bypass).
  bool applied = false;
  Vertex num_vertices = 0;
  Vertex num_peeled = 0;
  /// Per vertex: 1 iff the vertex survives into the 2-core.
  std::vector<std::uint8_t> in_core;
  /// Peeled vertices in the order they were removed (leaves before their
  /// parents; deterministic: FIFO seeded by ascending vertex id).
  std::vector<PeeledVertex> forest;
  /// r[v]: peeled vertices absorbed by core vertex v (0 off anchors).
  std::vector<Vertex> anchor_weight;
  /// r[v] - sq[v] at anchors, 0 elsewhere: added to reduced-graph scores
  /// by expand_peeled_scores.
  std::vector<double> core_correction;

  Vertex core_count() const { return num_vertices - num_peeled; }
  double core_fraction() const {
    return num_vertices == 0 ? 1.0
                             : static_cast<double>(core_count()) / num_vertices;
  }
};

/// Peel an undirected graph down to its 2-core. Directed graphs are
/// bypassed conservatively (`applied == false`, nothing peeled). Pure
/// trees/forests peel completely (empty core, every score closed-form).
PeelResult two_core_peel(const CsrGraph& g);

/// Flat reduction G': same vertex ids/count as `g`; core-core edges kept;
/// each anchored peeled vertex becomes a depth-1 pendant of its anchor
/// (so APGRE's single-round gamma machinery absorbs the whole subtree as
/// one reach weight); anchor-less peeled vertices become isolated.
/// Identity copy when the peel was bypassed or removed nothing.
CsrGraph peeled_reduction(const CsrGraph& g, const PeelResult& peel);

/// Core-only reduction: same vertex ids/count as `g`, core-core edges kept,
/// every peeled vertex isolated (no pendant arcs at all). Pair-exact only
/// when the solver folds `peel.anchor_weight` back in as per-anchor derived
/// pendant multiplicities (inject_pendant_weights + weighted reach counts);
/// BFS work then shrinks to the 2-core, which is where the peel's speedup
/// comes from. Identity copy when the peel was bypassed or removed nothing.
CsrGraph peeled_core_reduction(const CsrGraph& g, const PeelResult& peel);

/// Turn reduced-graph ordered-pair scores into full-graph scores in place:
/// adds `core_correction` at anchors and overwrites peeled vertices with
/// their closed-form scores. No-op when the peel was bypassed.
void expand_peeled_scores(const PeelResult& peel, std::vector<double>& scores);

/// Append `count` pendant vertices, each attached to a random existing
/// vertex by a single undirected edge (or, for directed graphs, a single
/// out-arc pendant -> host, making them total-redundancy sources exactly as
/// in paper §2.2). Returns the decorated graph; new ids are n..n+count-1.
CsrGraph attach_pendants(const CsrGraph& g, Vertex count, std::uint64_t seed);

/// Append `count` satellite communities: each is a clique of `size`
/// vertices joined to one random existing vertex by a single bridge edge.
/// The bridge host becomes an articulation point and the community a
/// biconnected block — the source of *partial* redundancy (common sub-DAG
/// reuse) in the paper's social/web graphs. For directed graphs the clique
/// and bridge arcs are added in both directions.
CsrGraph attach_communities(const CsrGraph& g, Vertex count, Vertex size,
                            std::uint64_t seed);

/// Append `count` chains ("tendrils") of `length` vertices hanging off
/// random existing vertices, the tree fringes of web crawls. Every chain
/// vertex is an articulation point; the tip is a removable pendant.
CsrGraph attach_chains(const CsrGraph& g, Vertex count, Vertex length,
                       std::uint64_t seed);

}  // namespace apgre
