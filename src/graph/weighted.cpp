#include "graph/weighted.hpp"

#include <algorithm>
#include <istream>
#include <sstream>

#include "support/error.hpp"
#include "support/prng.hpp"

namespace apgre {

WeightedCsrGraph WeightedCsrGraph::from_edges(Vertex num_vertices,
                                              std::vector<WeightedEdge> edges,
                                              bool directed) {
  for (const WeightedEdge& e : edges) {
    APGRE_ASSERT_MSG(e.src < num_vertices && e.dst < num_vertices,
                     "edge endpoint out of range");
    APGRE_REQUIRE(e.weight >= 0.0, "arc weights must be non-negative");
  }
  // Drop self-loops; for duplicates keep the lightest arc.
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [](const WeightedEdge& e) { return e.src == e.dst; }),
              edges.end());
  std::sort(edges.begin(), edges.end(), [](const WeightedEdge& a, const WeightedEdge& b) {
    if (a.src != b.src) return a.src < b.src;
    if (a.dst != b.dst) return a.dst < b.dst;
    return a.weight < b.weight;
  });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const WeightedEdge& a, const WeightedEdge& b) {
                            return a.src == b.src && a.dst == b.dst;
                          }),
              edges.end());

  WeightedCsrGraph g;
  EdgeList arcs;
  arcs.reserve(edges.size());
  for (const WeightedEdge& e : edges) arcs.push_back(Edge{e.src, e.dst});
  g.structure_ = CsrGraph::from_edges(num_vertices, std::move(arcs), directed);
  APGRE_ASSERT(g.structure_.num_arcs() == edges.size());

  // The CSR builder sorts arcs by (src, dst) — the same order as `edges`
  // after dedup, so weights can be copied positionally.
  g.weights_.reserve(edges.size());
  for (const WeightedEdge& e : edges) g.weights_.push_back(e.weight);
  return g;
}

WeightedCsrGraph WeightedCsrGraph::undirected_from_edges(
    Vertex num_vertices, std::vector<WeightedEdge> edges) {
  const std::size_t original = edges.size();
  edges.reserve(original * 2);
  for (std::size_t i = 0; i < original; ++i) {
    edges.push_back(WeightedEdge{edges[i].dst, edges[i].src, edges[i].weight});
  }
  return from_edges(num_vertices, std::move(edges), /*directed=*/false);
}

double WeightedCsrGraph::arc_weight(Vertex v, Vertex w) const {
  const auto neighbors = out_neighbors(v);
  const auto it = std::lower_bound(neighbors.begin(), neighbors.end(), w);
  APGRE_ASSERT_MSG(it != neighbors.end() && *it == w, "arc does not exist");
  const auto index = static_cast<std::size_t>(it - neighbors.begin());
  return weights_[structure_.out_offset(v) + index];
}

std::vector<WeightedEdge> WeightedCsrGraph::arcs() const {
  std::vector<WeightedEdge> out;
  out.reserve(num_arcs());
  for (Vertex v = 0; v < num_vertices(); ++v) {
    const auto neighbors = out_neighbors(v);
    const auto weights = out_weights(v);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      out.push_back(WeightedEdge{v, neighbors[i], weights[i]});
    }
  }
  return out;
}

WeightedCsrGraph with_unit_weights(const CsrGraph& g) {
  std::vector<WeightedEdge> edges;
  edges.reserve(g.num_arcs());
  for (const Edge& e : g.arcs()) edges.push_back(WeightedEdge{e.src, e.dst, 1.0});
  return WeightedCsrGraph::from_edges(g.num_vertices(), std::move(edges),
                                      g.directed());
}

WeightedCsrGraph with_random_weights(const CsrGraph& g, std::uint32_t lo,
                                     std::uint32_t hi, std::uint64_t seed) {
  APGRE_ASSERT(lo <= hi);
  std::vector<WeightedEdge> edges;
  edges.reserve(g.num_arcs());
  for (const Edge& e : g.arcs()) {
    // Symmetric deterministic weight per undirected pair: derive it from
    // the unordered endpoints so (u,v) and (v,u) agree.
    const std::uint64_t lo_id = std::min(e.src, e.dst);
    const std::uint64_t hi_id = std::max(e.src, e.dst);
    const std::uint64_t h = hash_combine64(seed, (lo_id << 32) | hi_id);
    const double weight = static_cast<double>(lo + h % (hi - lo + 1));
    edges.push_back(WeightedEdge{e.src, e.dst, weight});
  }
  return WeightedCsrGraph::from_edges(g.num_vertices(), std::move(edges),
                                      g.directed());
}

WeightedCsrGraph read_dimacs_weighted(std::istream& in, bool directed,
                                      const std::string& name) {
  std::vector<WeightedEdge> edges;
  Vertex n = 0;
  bool saw_header = false;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    if (tag == 'p') {
      std::string kind;
      std::uint64_t nn = 0;
      std::uint64_t mm = 0;
      if (!(ls >> kind >> nn >> mm)) {
        throw ParseError(name, line_no, "malformed problem line: " + line);
      }
      n = static_cast<Vertex>(nn);
      edges.reserve(mm);
      saw_header = true;
    } else if (tag == 'a') {
      if (!saw_header) throw ParseError(name, line_no, "arc before problem line");
      std::uint64_t u = 0;
      std::uint64_t v = 0;
      double w = 1.0;
      if (!(ls >> u >> v)) {
        throw ParseError(name, line_no, "malformed arc line: " + line);
      }
      ls >> w;  // weight column optional, defaults to 1
      if (u == 0 || v == 0 || u > n || v > n) {
        throw ParseError(name, line_no, "vertex id out of range: " + line);
      }
      edges.push_back(WeightedEdge{static_cast<Vertex>(u - 1),
                                   static_cast<Vertex>(v - 1), w});
    } else {
      throw ParseError(name, line_no, std::string("unknown record tag `") + tag + "`");
    }
  }
  APGRE_REQUIRE(saw_header, name + ": missing `p sp n m` header");
  if (directed) return WeightedCsrGraph::from_edges(n, std::move(edges), true);
  return WeightedCsrGraph::undirected_from_edges(n, std::move(edges));
}

}  // namespace apgre
