#include "graph/io_graphml.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "support/error.hpp"

namespace apgre {

namespace {

/// GraphML attribute ids must be XML-safe; names are restricted instead of
/// escaped so files stay human-readable.
void check_attribute_name(const std::string& name) {
  APGRE_REQUIRE(!name.empty(), "attribute name must not be empty");
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    APGRE_REQUIRE(ok, "attribute name `" + name + "` has unsafe characters");
  }
}

}  // namespace

void write_graphml(std::ostream& out, const CsrGraph& g,
                   const std::vector<VertexAttribute>& attributes) {
  for (const VertexAttribute& attr : attributes) {
    check_attribute_name(attr.name);
    APGRE_REQUIRE(attr.values != nullptr && attr.values->size() == g.num_vertices(),
                  "attribute `" + attr.name + "` must have one value per vertex");
  }

  out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      << "<graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\">\n";
  for (std::size_t i = 0; i < attributes.size(); ++i) {
    out << "  <key id=\"d" << i << "\" for=\"node\" attr.name=\""
        << attributes[i].name << "\" attr.type=\"double\"/>\n";
  }
  out << "  <graph id=\"G\" edgedefault=\""
      << (g.directed() ? "directed" : "undirected") << "\">\n";

  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (attributes.empty()) {
      out << "    <node id=\"n" << v << "\"/>\n";
      continue;
    }
    out << "    <node id=\"n" << v << "\">\n";
    for (std::size_t i = 0; i < attributes.size(); ++i) {
      out << "      <data key=\"d" << i << "\">" << (*attributes[i].values)[v]
          << "</data>\n";
    }
    out << "    </node>\n";
  }

  EdgeId edge_id = 0;
  for (const Edge& e : g.arcs()) {
    if (!g.directed() && e.src > e.dst) continue;  // one element per edge
    out << "    <edge id=\"e" << edge_id++ << "\" source=\"n" << e.src
        << "\" target=\"n" << e.dst << "\"/>\n";
  }
  out << "  </graph>\n</graphml>\n";
  APGRE_REQUIRE(out.good(), "GraphML write failed");
}

void write_graphml_file(const std::string& path, const CsrGraph& g,
                        const std::vector<VertexAttribute>& attributes) {
  std::ofstream out(path);
  APGRE_REQUIRE(out.good(), "cannot open " + path + " for writing");
  write_graphml(out, g, attributes);
}

// ---- Reader --------------------------------------------------------------
//
// A deliberately small XML-subset scanner: it walks `<...>` tags, parses
// their name="value" attributes, and interprets only the graphml / graph /
// node / edge elements. Everything it cannot make sense of is a hard
// apgre::Error — the fuzz suite feeds it arbitrary bytes, and the contract
// is parse-or-throw, never crash or hang.

namespace {

struct XmlTag {
  std::string name;
  std::unordered_map<std::string, std::string> attributes;
  bool closing = false;  // </name>
};

bool is_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-' || c == ':' || c == '.';
}

/// Parse the tag starting at text[pos] == '<'; advances pos past the
/// closing '>'. Comments, processing instructions and doctype-ish tags
/// return a tag with an empty name (skipped by the caller).
XmlTag parse_tag(const std::string& text, std::size_t& pos,
                 const std::string& name) {
  XmlTag tag;
  ++pos;  // consume '<'
  if (pos < text.size() && (text[pos] == '?' || text[pos] == '!')) {
    // <?xml ...?>, <!-- ... -->, <!DOCTYPE ...>: skip to the closing '>'
    // (comment terminators are not validated; the fuzz contract only needs
    // bounded, crash-free scanning).
    const std::size_t end = text.find('>', pos);
    APGRE_REQUIRE(end != std::string::npos, name + ": unterminated markup");
    pos = end + 1;
    return tag;
  }
  if (pos < text.size() && text[pos] == '/') {
    tag.closing = true;
    ++pos;
  }
  while (pos < text.size() && is_name_char(text[pos])) tag.name += text[pos++];
  APGRE_REQUIRE(!tag.name.empty(), name + ": malformed tag");

  while (true) {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                 text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
    APGRE_REQUIRE(pos < text.size(), name + ": unterminated tag <" + tag.name);
    if (text[pos] == '>') {
      ++pos;
      return tag;
    }
    if (text[pos] == '/') {
      ++pos;
      APGRE_REQUIRE(pos < text.size() && text[pos] == '>',
                    name + ": malformed self-closing tag <" + tag.name);
      ++pos;
      return tag;
    }
    std::string attribute;
    while (pos < text.size() && is_name_char(text[pos])) {
      attribute += text[pos++];
    }
    APGRE_REQUIRE(!attribute.empty() && pos < text.size() && text[pos] == '=',
                  name + ": malformed attribute in <" + tag.name);
    ++pos;
    APGRE_REQUIRE(pos < text.size() && (text[pos] == '"' || text[pos] == '\''),
                  name + ": attribute value must be quoted in <" + tag.name);
    const char quote = text[pos++];
    const std::size_t end = text.find(quote, pos);
    APGRE_REQUIRE(end != std::string::npos,
                  name + ": unterminated attribute value in <" + tag.name);
    tag.attributes.emplace(std::move(attribute), text.substr(pos, end - pos));
    pos = end + 1;
  }
}

}  // namespace

CsrGraph read_graphml(std::istream& in, const std::string& name) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::unordered_map<std::string, Vertex> node_index;
  EdgeList edges;
  bool directed = false;
  bool saw_graphml = false;
  bool closed_graphml = false;
  bool in_graph = false;

  std::size_t pos = 0;
  while (true) {
    const std::size_t open = text.find('<', pos);
    if (open == std::string::npos) break;
    pos = open;
    const XmlTag tag = parse_tag(text, pos, name);
    if (tag.name.empty()) continue;  // declaration / comment

    if (tag.name == "graphml") {
      if (tag.closing) {
        APGRE_REQUIRE(saw_graphml, name + ": </graphml> before <graphml>");
        closed_graphml = true;
      } else {
        saw_graphml = true;
      }
    } else if (tag.name == "graph") {
      if (tag.closing) {
        in_graph = false;
        continue;
      }
      APGRE_REQUIRE(saw_graphml, name + ": <graph> outside <graphml>");
      const auto mode = tag.attributes.find("edgedefault");
      APGRE_REQUIRE(mode != tag.attributes.end(),
                    name + ": <graph> missing edgedefault");
      if (mode->second == "directed") {
        directed = true;
      } else {
        APGRE_REQUIRE(mode->second == "undirected",
                      name + ": unknown edgedefault `" + mode->second + "`");
      }
      in_graph = true;
    } else if (tag.name == "node") {
      if (tag.closing) continue;
      APGRE_REQUIRE(in_graph, name + ": <node> outside <graph>");
      const auto id = tag.attributes.find("id");
      APGRE_REQUIRE(id != tag.attributes.end(), name + ": <node> missing id");
      const auto next = static_cast<Vertex>(node_index.size());
      const bool fresh = node_index.emplace(id->second, next).second;
      APGRE_REQUIRE(fresh, name + ": duplicate node id `" + id->second + "`");
    } else if (tag.name == "edge") {
      if (tag.closing) continue;
      APGRE_REQUIRE(in_graph, name + ": <edge> outside <graph>");
      const auto source = tag.attributes.find("source");
      const auto target = tag.attributes.find("target");
      APGRE_REQUIRE(source != tag.attributes.end() &&
                        target != tag.attributes.end(),
                    name + ": <edge> missing source/target");
      const auto src = node_index.find(source->second);
      const auto dst = node_index.find(target->second);
      APGRE_REQUIRE(src != node_index.end(),
                    name + ": edge source `" + source->second +
                        "` is not a declared node");
      APGRE_REQUIRE(dst != node_index.end(),
                    name + ": edge target `" + target->second +
                        "` is not a declared node");
      edges.push_back(Edge{src->second, dst->second});
    }
    // key / data / default / ...: structurally irrelevant, skipped.
  }

  APGRE_REQUIRE(saw_graphml, name + ": not a GraphML document");
  APGRE_REQUIRE(closed_graphml, name + ": truncated GraphML (missing </graphml>)");

  const auto n = static_cast<Vertex>(node_index.size());
  if (directed) return CsrGraph::from_edges(n, std::move(edges), true);
  return CsrGraph::undirected_from_edges(n, std::move(edges));
}

CsrGraph read_graphml_file(const std::string& path) {
  std::ifstream in(path);
  APGRE_REQUIRE(in.good(), "cannot open " + path);
  return read_graphml(in, path);
}

}  // namespace apgre
