#include "graph/io_graphml.hpp"

#include <fstream>
#include <ostream>

#include "support/error.hpp"

namespace apgre {

namespace {

/// GraphML attribute ids must be XML-safe; names are restricted instead of
/// escaped so files stay human-readable.
void check_attribute_name(const std::string& name) {
  APGRE_REQUIRE(!name.empty(), "attribute name must not be empty");
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    APGRE_REQUIRE(ok, "attribute name `" + name + "` has unsafe characters");
  }
}

}  // namespace

void write_graphml(std::ostream& out, const CsrGraph& g,
                   const std::vector<VertexAttribute>& attributes) {
  for (const VertexAttribute& attr : attributes) {
    check_attribute_name(attr.name);
    APGRE_REQUIRE(attr.values != nullptr && attr.values->size() == g.num_vertices(),
                  "attribute `" + attr.name + "` must have one value per vertex");
  }

  out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      << "<graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\">\n";
  for (std::size_t i = 0; i < attributes.size(); ++i) {
    out << "  <key id=\"d" << i << "\" for=\"node\" attr.name=\""
        << attributes[i].name << "\" attr.type=\"double\"/>\n";
  }
  out << "  <graph id=\"G\" edgedefault=\""
      << (g.directed() ? "directed" : "undirected") << "\">\n";

  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (attributes.empty()) {
      out << "    <node id=\"n" << v << "\"/>\n";
      continue;
    }
    out << "    <node id=\"n" << v << "\">\n";
    for (std::size_t i = 0; i < attributes.size(); ++i) {
      out << "      <data key=\"d" << i << "\">" << (*attributes[i].values)[v]
          << "</data>\n";
    }
    out << "    </node>\n";
  }

  EdgeId edge_id = 0;
  for (const Edge& e : g.arcs()) {
    if (!g.directed() && e.src > e.dst) continue;  // one element per edge
    out << "    <edge id=\"e" << edge_id++ << "\" source=\"n" << e.src
        << "\" target=\"n" << e.dst << "\"/>\n";
  }
  out << "  </graph>\n</graphml>\n";
  APGRE_REQUIRE(out.good(), "GraphML write failed");
}

void write_graphml_file(const std::string& path, const CsrGraph& g,
                        const std::vector<VertexAttribute>& attributes) {
  std::ofstream out(path);
  APGRE_REQUIRE(out.good(), "cannot open " + path + " for writing");
  write_graphml(out, g, attributes);
}

}  // namespace apgre
