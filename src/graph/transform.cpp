#include "graph/transform.hpp"

#include <algorithm>
#include <numeric>

#include "graph/components.hpp"
#include "support/prng.hpp"

namespace apgre {

CsrGraph undirected_projection(const CsrGraph& g) {
  if (!g.directed()) return g;
  EdgeList edges = g.arcs();
  symmetrize(edges);
  return CsrGraph::from_edges(g.num_vertices(), std::move(edges), /*directed=*/false);
}

CsrGraph relabel(const CsrGraph& g, const std::vector<Vertex>& permutation) {
  APGRE_ASSERT(permutation.size() == g.num_vertices());
  std::vector<bool> seen(g.num_vertices(), false);
  for (Vertex p : permutation) {
    APGRE_ASSERT_MSG(p < g.num_vertices() && !seen[p], "not a permutation");
    seen[p] = true;
  }
  EdgeList edges = g.arcs();
  for (Edge& e : edges) {
    e.src = permutation[e.src];
    e.dst = permutation[e.dst];
  }
  return CsrGraph::from_edges(g.num_vertices(), std::move(edges), g.directed());
}

InducedSubgraph induced_subgraph(const CsrGraph& g, const std::vector<Vertex>& vertices) {
  std::vector<Vertex> to_local(g.num_vertices(), kInvalidVertex);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    APGRE_ASSERT(vertices[i] < g.num_vertices());
    APGRE_ASSERT_MSG(to_local[vertices[i]] == kInvalidVertex, "duplicate vertex");
    to_local[vertices[i]] = static_cast<Vertex>(i);
  }

  EdgeList edges;
  for (Vertex global : vertices) {
    for (Vertex w : g.out_neighbors(global)) {
      if (to_local[w] != kInvalidVertex) {
        edges.push_back(Edge{to_local[global], to_local[w]});
      }
    }
  }
  InducedSubgraph out;
  out.graph = CsrGraph::from_edges(static_cast<Vertex>(vertices.size()),
                                   std::move(edges), g.directed());
  out.to_global = vertices;
  return out;
}

InducedSubgraph largest_component(const CsrGraph& g) {
  const ComponentLabels labels = connected_components(g);
  std::vector<EdgeId> sizes(labels.num_components, 0);
  for (Vertex v = 0; v < g.num_vertices(); ++v) ++sizes[labels.component[v]];
  const auto best = static_cast<Vertex>(std::distance(
      sizes.begin(), std::max_element(sizes.begin(), sizes.end())));

  std::vector<Vertex> vertices;
  vertices.reserve(sizes[best]);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (labels.component[v] == best) vertices.push_back(v);
  }
  return induced_subgraph(g, vertices);
}

CsrGraph attach_communities(const CsrGraph& g, Vertex count, Vertex size,
                            std::uint64_t seed) {
  APGRE_ASSERT(g.num_vertices() > 0 && size >= 2);
  Xoshiro256 rng(seed);
  EdgeList edges = g.arcs();
  const Vertex n = g.num_vertices();
  auto add_undirected = [&](Vertex u, Vertex v) {
    edges.push_back(Edge{u, v});
    edges.push_back(Edge{v, u});
  };
  Vertex next = n;
  for (Vertex c = 0; c < count; ++c) {
    const auto host = static_cast<Vertex>(rng.bounded(n));
    const Vertex base = next;
    next += size;
    for (Vertex u = 0; u < size; ++u) {
      for (Vertex v = u + 1; v < size; ++v) {
        add_undirected(base + u, base + v);
      }
    }
    add_undirected(host, base + static_cast<Vertex>(rng.bounded(size)));
  }
  return CsrGraph::from_edges(next, std::move(edges), g.directed());
}

CsrGraph attach_chains(const CsrGraph& g, Vertex count, Vertex length,
                       std::uint64_t seed) {
  APGRE_ASSERT(g.num_vertices() > 0 && length >= 1);
  Xoshiro256 rng(seed);
  EdgeList edges = g.arcs();
  const Vertex n = g.num_vertices();
  auto add_undirected = [&](Vertex u, Vertex v) {
    edges.push_back(Edge{u, v});
    edges.push_back(Edge{v, u});
  };
  Vertex next = n;
  for (Vertex c = 0; c < count; ++c) {
    Vertex prev = static_cast<Vertex>(rng.bounded(n));
    for (Vertex i = 0; i < length; ++i) {
      add_undirected(prev, next);
      prev = next++;
    }
  }
  return CsrGraph::from_edges(next, std::move(edges), g.directed());
}

CsrGraph attach_pendants(const CsrGraph& g, Vertex count, std::uint64_t seed) {
  APGRE_ASSERT(g.num_vertices() > 0);
  Xoshiro256 rng(seed);
  EdgeList edges = g.arcs();
  const Vertex n = g.num_vertices();
  for (Vertex i = 0; i < count; ++i) {
    const auto host = static_cast<Vertex>(rng.bounded(n));
    const Vertex pendant = n + i;
    edges.push_back(Edge{pendant, host});
    if (!g.directed()) edges.push_back(Edge{host, pendant});
  }
  return CsrGraph::from_edges(n + count, std::move(edges), g.directed());
}

}  // namespace apgre
