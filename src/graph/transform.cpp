#include "graph/transform.hpp"

#include <algorithm>
#include <numeric>

#include "graph/components.hpp"
#include "support/metrics.hpp"
#include "support/prng.hpp"
#include "support/trace.hpp"

namespace apgre {

PeelResult two_core_peel(const CsrGraph& g) {
  APGRE_TRACE_SPAN("graph/peel");
  PeelResult out;
  out.num_vertices = g.num_vertices();
  out.in_core.assign(g.num_vertices(), 1);
  out.anchor_weight.assign(g.num_vertices(), 0);
  out.core_correction.assign(g.num_vertices(), 0.0);
  if (g.directed()) return out;  // conservative bypass: applied stays false
  out.applied = true;
  const Vertex n = g.num_vertices();

  const ComponentLabels labels = connected_components(g);
  std::vector<Vertex> comp_size(labels.num_components, 0);
  for (Vertex v = 0; v < n; ++v) ++comp_size[labels.component[v]];

  // r[v]: peeled vertices merged under v so far (v itself excluded);
  // sq[v]: sum of (subtree size)^2 over v's already-peeled child subtrees.
  // Kept as double for the closed forms; exact for any graph that fits in
  // memory (subtree sizes are far below 2^26).
  std::vector<Vertex> degree(n), r(n, 0);
  std::vector<double> sq(n, 0.0);
  std::vector<std::uint8_t> peeled(n, 0), queued(n, 0);
  std::vector<Vertex> queue;
  queue.reserve(n);
  for (Vertex v = 0; v < n; ++v) {
    degree[v] = g.out_degree(v);
    if (degree[v] <= 1) {
      queue.push_back(v);
      queued[v] = 1;
    }
  }

  // FIFO peel, seeded in ascending vertex id: deterministic, leaves before
  // their parents. degree[] counts *unpeeled* neighbours throughout —
  // every vertex popped has at most one left.
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Vertex u = queue[head];
    peeled[u] = 1;
    out.in_core[u] = 0;
    Vertex parent = kInvalidVertex;
    for (Vertex w : g.out_neighbors(u)) {
      if (!peeled[w]) {
        parent = w;
        break;
      }
    }
    // Ordered pairs through u: across u's child subtrees (r^2 - sq) plus
    // between u's subtree and the rest of its component (2 r (N_c - r - 1)).
    const double nc = comp_size[labels.component[u]];
    const double ru = r[u];
    const double score = ru * ru - sq[u] + 2.0 * ru * (nc - ru - 1.0);
    out.forest.push_back(PeeledVertex{u, parent, kInvalidVertex, r[u] + 1, score});
    if (parent != kInvalidVertex) {
      r[parent] += r[u] + 1;
      const double sub = static_cast<double>(r[u]) + 1.0;
      sq[parent] += sub * sub;
      --degree[parent];
      if (!queued[parent] && degree[parent] <= 1) {
        queue.push_back(parent);
        queued[parent] = 1;
      }
    }
  }
  out.num_peeled = static_cast<Vertex>(out.forest.size());

  // Resolve anchors leaves-first by walking the peel order backwards: a
  // parent is always peeled after its children (or is a core vertex), so
  // anchor_of[parent] is already final when the child is visited.
  std::vector<Vertex> anchor_of(n, kInvalidVertex);
  for (auto it = out.forest.rbegin(); it != out.forest.rend(); ++it) {
    if (it->parent == kInvalidVertex) continue;  // tree root or isolated
    it->anchor = out.in_core[it->parent] ? it->parent : anchor_of[it->parent];
    anchor_of[it->vertex] = it->anchor;
  }
  for (Vertex v = 0; v < n; ++v) {
    if (out.in_core[v] && r[v] > 0) {
      out.anchor_weight[v] = r[v];
      out.core_correction[v] = static_cast<double>(r[v]) - sq[v];
    }
  }

  metrics().counter("graph.peel.runs").add();
  metrics().counter("graph.peel.peeled_vertices").add(out.num_peeled);
  metrics().gauge("graph.peel.core_fraction").set(out.core_fraction());
  return out;
}

CsrGraph peeled_reduction(const CsrGraph& g, const PeelResult& peel) {
  if (!peel.applied || peel.num_peeled == 0) return g;
  APGRE_ASSERT(peel.num_vertices == g.num_vertices());
  EdgeList edges;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (!peel.in_core[v]) continue;
    for (Vertex w : g.out_neighbors(v)) {
      if (peel.in_core[w]) edges.push_back(Edge{v, w});
    }
  }
  // Every anchored peeled vertex collapses to a depth-1 pendant of its
  // anchor — one gamma weight per subtree member, absorbed by APGRE's
  // single-round pendant removal. Anchor-less vertices become isolated.
  for (const PeeledVertex& p : peel.forest) {
    if (p.anchor == kInvalidVertex) continue;
    edges.push_back(Edge{p.vertex, p.anchor});
    edges.push_back(Edge{p.anchor, p.vertex});
  }
  return CsrGraph::from_edges(g.num_vertices(), std::move(edges),
                              /*directed=*/false);
}

CsrGraph peeled_core_reduction(const CsrGraph& g, const PeelResult& peel) {
  if (!peel.applied || peel.num_peeled == 0) return g;
  APGRE_ASSERT(peel.num_vertices == g.num_vertices());
  EdgeList edges;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (!peel.in_core[v]) continue;
    for (Vertex w : g.out_neighbors(v)) {
      if (peel.in_core[w]) edges.push_back(Edge{v, w});
    }
  }
  return CsrGraph::from_edges(g.num_vertices(), std::move(edges),
                              /*directed=*/false);
}

void expand_peeled_scores(const PeelResult& peel, std::vector<double>& scores) {
  if (!peel.applied || peel.num_peeled == 0) return;
  APGRE_ASSERT(scores.size() == peel.num_vertices);
  for (Vertex v = 0; v < peel.num_vertices; ++v) {
    if (peel.in_core[v]) scores[v] += peel.core_correction[v];
  }
  for (const PeeledVertex& p : peel.forest) scores[p.vertex] = p.score;
}

CsrGraph undirected_projection(const CsrGraph& g) {
  if (!g.directed()) return g;
  EdgeList edges = g.arcs();
  symmetrize(edges);
  return CsrGraph::from_edges(g.num_vertices(), std::move(edges), /*directed=*/false);
}

CsrGraph relabel(const CsrGraph& g, const std::vector<Vertex>& permutation) {
  APGRE_ASSERT(permutation.size() == g.num_vertices());
  std::vector<bool> seen(g.num_vertices(), false);
  for (Vertex p : permutation) {
    APGRE_ASSERT_MSG(p < g.num_vertices() && !seen[p], "not a permutation");
    seen[p] = true;
  }
  EdgeList edges = g.arcs();
  for (Edge& e : edges) {
    e.src = permutation[e.src];
    e.dst = permutation[e.dst];
  }
  return CsrGraph::from_edges(g.num_vertices(), std::move(edges), g.directed());
}

InducedSubgraph induced_subgraph(const CsrGraph& g, const std::vector<Vertex>& vertices) {
  std::vector<Vertex> to_local(g.num_vertices(), kInvalidVertex);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    APGRE_ASSERT(vertices[i] < g.num_vertices());
    APGRE_ASSERT_MSG(to_local[vertices[i]] == kInvalidVertex, "duplicate vertex");
    to_local[vertices[i]] = static_cast<Vertex>(i);
  }

  EdgeList edges;
  for (Vertex global : vertices) {
    for (Vertex w : g.out_neighbors(global)) {
      if (to_local[w] != kInvalidVertex) {
        edges.push_back(Edge{to_local[global], to_local[w]});
      }
    }
  }
  InducedSubgraph out;
  out.graph = CsrGraph::from_edges(static_cast<Vertex>(vertices.size()),
                                   std::move(edges), g.directed());
  out.to_global = vertices;
  return out;
}

InducedSubgraph largest_component(const CsrGraph& g) {
  const ComponentLabels labels = connected_components(g);
  std::vector<EdgeId> sizes(labels.num_components, 0);
  for (Vertex v = 0; v < g.num_vertices(); ++v) ++sizes[labels.component[v]];
  const auto best = static_cast<Vertex>(std::distance(
      sizes.begin(), std::max_element(sizes.begin(), sizes.end())));

  std::vector<Vertex> vertices;
  vertices.reserve(sizes[best]);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (labels.component[v] == best) vertices.push_back(v);
  }
  return induced_subgraph(g, vertices);
}

CsrGraph attach_communities(const CsrGraph& g, Vertex count, Vertex size,
                            std::uint64_t seed) {
  APGRE_ASSERT(g.num_vertices() > 0 && size >= 2);
  Xoshiro256 rng(seed);
  EdgeList edges = g.arcs();
  const Vertex n = g.num_vertices();
  auto add_undirected = [&](Vertex u, Vertex v) {
    edges.push_back(Edge{u, v});
    edges.push_back(Edge{v, u});
  };
  Vertex next = n;
  for (Vertex c = 0; c < count; ++c) {
    const auto host = static_cast<Vertex>(rng.bounded(n));
    const Vertex base = next;
    next += size;
    for (Vertex u = 0; u < size; ++u) {
      for (Vertex v = u + 1; v < size; ++v) {
        add_undirected(base + u, base + v);
      }
    }
    add_undirected(host, base + static_cast<Vertex>(rng.bounded(size)));
  }
  return CsrGraph::from_edges(next, std::move(edges), g.directed());
}

CsrGraph attach_chains(const CsrGraph& g, Vertex count, Vertex length,
                       std::uint64_t seed) {
  APGRE_ASSERT(g.num_vertices() > 0 && length >= 1);
  Xoshiro256 rng(seed);
  EdgeList edges = g.arcs();
  const Vertex n = g.num_vertices();
  auto add_undirected = [&](Vertex u, Vertex v) {
    edges.push_back(Edge{u, v});
    edges.push_back(Edge{v, u});
  };
  Vertex next = n;
  for (Vertex c = 0; c < count; ++c) {
    Vertex prev = static_cast<Vertex>(rng.bounded(n));
    for (Vertex i = 0; i < length; ++i) {
      add_undirected(prev, next);
      prev = next++;
    }
  }
  return CsrGraph::from_edges(next, std::move(edges), g.directed());
}

CsrGraph attach_pendants(const CsrGraph& g, Vertex count, std::uint64_t seed) {
  APGRE_ASSERT(g.num_vertices() > 0);
  Xoshiro256 rng(seed);
  EdgeList edges = g.arcs();
  const Vertex n = g.num_vertices();
  for (Vertex i = 0; i < count; ++i) {
    const auto host = static_cast<Vertex>(rng.bounded(n));
    const Vertex pendant = n + i;
    edges.push_back(Edge{pendant, host});
    if (!g.directed()) edges.push_back(Edge{host, pendant});
  }
  return CsrGraph::from_edges(n + count, std::move(edges), g.directed());
}

}  // namespace apgre
