#include "graph/io_metis.hpp"

#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace apgre {

CsrGraph read_metis(std::istream& in, const std::string& name) {
  std::string line;
  std::size_t line_no = 0;

  auto next_data_line = [&]() -> bool {
    while (std::getline(in, line)) {
      ++line_no;
      if (!line.empty() && line[0] == '%') continue;  // comment
      return true;
    }
    return false;
  };

  APGRE_REQUIRE(next_data_line(), name + ": empty input");
  std::istringstream header(line);
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  if (!(header >> n >> m)) throw ParseError(name, line_no, "malformed header");
  std::uint64_t fmt = 0;
  if (header >> fmt) {
    APGRE_REQUIRE(fmt == 0, name + ": weighted METIS graphs not supported");
  }

  EdgeList edges;
  edges.reserve(m * 2);
  for (std::uint64_t v = 0; v < n; ++v) {
    if (!next_data_line()) {
      throw ParseError(name, line_no, "expected " + std::to_string(n) +
                                          " adjacency lines, got " + std::to_string(v));
    }
    std::istringstream ls(line);
    std::uint64_t w = 0;
    while (ls >> w) {
      if (w == 0 || w > n) throw ParseError(name, line_no, "neighbour id out of range");
      edges.push_back(Edge{static_cast<Vertex>(v), static_cast<Vertex>(w - 1)});
    }
  }
  // The format lists each undirected edge from both endpoints already.
  return CsrGraph::from_edges(static_cast<Vertex>(n), std::move(edges),
                              /*directed=*/false);
}

CsrGraph read_metis_file(const std::string& path) {
  std::ifstream in(path);
  APGRE_REQUIRE(in.good(), "cannot open " + path);
  return read_metis(in, path);
}

void write_metis(std::ostream& out, const CsrGraph& g) {
  APGRE_REQUIRE(!g.directed(), "METIS format is undirected");
  out << g.num_vertices() << " " << g.num_edges() << "\n";
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    bool first = true;
    for (Vertex w : g.out_neighbors(v)) {
      if (!first) out << " ";
      out << (w + 1);
      first = false;
    }
    out << "\n";
  }
}

void write_metis_file(const std::string& path, const CsrGraph& g) {
  std::ofstream out(path);
  APGRE_REQUIRE(out.good(), "cannot open " + path + " for writing");
  write_metis(out, g);
}

}  // namespace apgre
