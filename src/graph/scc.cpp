#include "graph/scc.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace apgre {

namespace {

constexpr Vertex kUndefined = kInvalidVertex;

struct Frame {
  Vertex v;
  std::uint32_t next;
};

}  // namespace

SccLabels strongly_connected_components(const CsrGraph& g) {
  const Vertex n = g.num_vertices();
  SccLabels out;
  out.component.assign(n, kUndefined);

  std::vector<Vertex> index(n, kUndefined);
  std::vector<Vertex> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<Vertex> scc_stack;
  std::vector<Frame> call_stack;
  Vertex next_index = 0;

  for (Vertex root = 0; root < n; ++root) {
    if (index[root] != kUndefined) continue;
    call_stack.push_back(Frame{root, 0});
    index[root] = lowlink[root] = next_index++;
    scc_stack.push_back(root);
    on_stack[root] = true;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const Vertex v = frame.v;
      const auto neighbors = g.out_neighbors(v);
      if (frame.next < neighbors.size()) {
        const Vertex w = neighbors[frame.next++];
        if (index[w] == kUndefined) {
          index[w] = lowlink[w] = next_index++;
          scc_stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back(Frame{w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        call_stack.pop_back();
        if (!call_stack.empty()) {
          Vertex& parent_low = lowlink[call_stack.back().v];
          parent_low = std::min(parent_low, lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          // v roots an SCC: pop it off the component stack.
          const Vertex id = out.num_components++;
          Vertex member = kUndefined;
          do {
            member = scc_stack.back();
            scc_stack.pop_back();
            on_stack[member] = false;
            out.component[member] = id;
          } while (member != v);
        }
      }
    }
  }
  APGRE_ASSERT(scc_stack.empty());
  return out;
}

CsrGraph condensation(const CsrGraph& g, const SccLabels& labels) {
  APGRE_ASSERT(labels.component.size() == g.num_vertices());
  EdgeList arcs;
  for (const Edge& e : g.arcs()) {
    const Vertex cu = labels.component[e.src];
    const Vertex cv = labels.component[e.dst];
    if (cu != cv) arcs.push_back(Edge{cu, cv});
  }
  return CsrGraph::from_edges(labels.num_components, std::move(arcs),
                              /*directed=*/true);
}

bool is_strongly_connected(const CsrGraph& g) {
  if (g.num_vertices() == 0) return true;
  return strongly_connected_components(g).num_components == 1;
}

}  // namespace apgre
