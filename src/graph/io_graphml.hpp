// GraphML import/export for visualisation pipelines (Gephi, Cytoscape, yEd).
// The writer emits the graph structure plus optional per-vertex score
// attributes — the natural hand-off after a centrality run ("colour by
// betweenness"). The reader accepts the structural subset the writer
// produces (node / edge elements, edgedefault direction); per-vertex data
// attributes are ignored on load. Malformed documents — truncated files,
// edges referencing undeclared node ids, attribute soup — throw
// apgre::Error, never crash (enforced by tests/io_fuzz_test.cpp).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace apgre {

/// One named double attribute per vertex (values.size() == |V|).
struct VertexAttribute {
  std::string name;
  const std::vector<double>* values;
};

void write_graphml(std::ostream& out, const CsrGraph& g,
                   const std::vector<VertexAttribute>& attributes = {});
void write_graphml_file(const std::string& path, const CsrGraph& g,
                        const std::vector<VertexAttribute>& attributes = {});

/// Parse the structural subset of GraphML: `<graph edgedefault="...">` with
/// `<node id="..."/>` and `<edge source="..." target="..."/>` elements.
/// Node ids may be arbitrary strings; vertices are numbered in declaration
/// order. Edges referencing undeclared ids, missing required attributes,
/// or a document truncated before `</graphml>` raise apgre::Error.
CsrGraph read_graphml(std::istream& in, const std::string& name = "<stream>");
CsrGraph read_graphml_file(const std::string& path);

}  // namespace apgre
