// GraphML export for visualisation pipelines (Gephi, Cytoscape, yEd).
// Writes the graph structure plus optional per-vertex score attributes —
// the natural hand-off after a centrality run ("colour by betweenness").
// Export only: the library's analysis inputs are edge lists, not XML.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace apgre {

/// One named double attribute per vertex (values.size() == |V|).
struct VertexAttribute {
  std::string name;
  const std::vector<double>* values;
};

void write_graphml(std::ostream& out, const CsrGraph& g,
                   const std::vector<VertexAttribute>& attributes = {});
void write_graphml_file(const std::string& path, const CsrGraph& g,
                        const std::vector<VertexAttribute>& attributes = {});

}  // namespace apgre
