// Single-update graph rebuilds shared by every dynamic path (DynamicBc,
// IncrementalBc, the service): validate an edge/vertex mutation against the
// current graph and produce the successor CsrGraph. Validation throws
// apgre::Error *before* constructing anything, so callers can use the
// returned graph as a commit point — if a helper returns, the update was
// legal and nothing else needs to be rolled back.
#pragma once

#include "graph/csr.hpp"

namespace apgre {

/// True iff the arc u -> v is stored.
bool has_arc(const CsrGraph& g, Vertex u, Vertex v);

/// Graph with the edge (u, v) added — both arcs for undirected graphs.
/// Splices the clone's CSR arrays directly (O(n + m) element moves, no
/// EdgeList round-trip), which is what keeps sustained incremental updates
/// cheap relative to a full rebuild.
/// Throws: "self-loops do not affect betweenness" (u == v),
/// "arc already present".
CsrGraph with_edge_inserted(const CsrGraph& g, Vertex u, Vertex v);

/// Graph with the edge (u, v) removed — both arcs for undirected graphs.
/// Same CSR-splice fast path as with_edge_inserted.
/// Throws: "self-loops do not affect betweenness" (u == v),
/// "arc not present", "symmetric arc missing".
CsrGraph with_edge_removed(const CsrGraph& g, Vertex u, Vertex v);

/// Graph with one fresh vertex (id = old num_vertices()) attached to
/// `host` by a single edge — the arc pendant -> host for directed graphs
/// (the static pendant metamorphic rule's convention), both arcs otherwise.
CsrGraph with_pendant_attached(const CsrGraph& g, Vertex host);

/// Graph with every arc incident to `v` (either direction) removed. The
/// vertex itself stays, so ids are stable; scores of an isolated vertex are
/// zero. No-op if `v` is already isolated.
CsrGraph with_vertex_isolated(const CsrGraph& g, Vertex v);

}  // namespace apgre
