// Batched edge updates: the value types and pure algebra of STINGER-style
// streaming ingest, shared by every layer that thinks in batches
// (bcc/queries classify_batch, bc/incremental apply_batch, the service's
// kUpdateBatch pipeline, apgre_serve's batch_update verb and bench_regress
// --workload stream).
//
// An UpdateBatch is a list of timestamped EdgeOps. coalesce_batch() reduces
// it to its net effect against one graph snapshot: insert/delete pairs on
// the same edge cancel, repeats dedupe, and the survivors come out in
// stable timestamp order with at most one op per edge. Coalescing is also
// where batch validation lives — an op that is redundant against the
// *snapshot* on first touch (inserting a present arc, deleting an absent
// one, self-loops, out-of-range endpoints) rejects the whole batch with a
// Status carrying the same message the single-edge mutate helpers throw,
// so nothing downstream needs a second validation pass and a failed batch
// provably changed no state.
//
// The binary edge-batch frame ("APGB") is the replay-file format: one frame
// per batch, frames concatenated until EOF, used by apgre_serve's
// path-based batch_update and bench_regress --stream-file.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "support/error.hpp"

namespace apgre {

/// One timestamped edge operation. `weight` is carried end to end (wire,
/// frames, coalescing) but the BC graphs are unweighted, so non-unit
/// weights are rejected at coalesce time — the field is reserved for the
/// weighted-BC extension (docs/API.md "Batched streaming ingest").
struct EdgeOp {
  Vertex u = kInvalidVertex;
  Vertex v = kInvalidVertex;
  bool insert = true;
  double weight = 1.0;
  /// Stream time; coalescing orders ops by (timestamp, arrival position),
  /// and bench_regress --replay-speed paces batches by timestamp gaps.
  std::uint64_t timestamp = 0;
};

/// The unified mutation payload of the service API: every edge mutation is
/// a batch, a single update being a batch of size 1 (docs/API.md).
struct UpdateRequest {
  std::vector<EdgeOp> ops;
};

/// Per-batch outcome counters, reported in Response::batch and accumulated
/// into ServiceStats / IncrementalStats. Tests pin blocks_resolved.
struct BatchStats {
  /// Raw ops in the submitted batch (before coalescing).
  std::uint64_t batch_edges = 0;
  /// Ops removed by coalescing (cancelled pairs, deduped repeats).
  std::uint64_t coalesced_away = 0;
  /// Biconnected blocks re-solved by the localized path — one per affected
  /// block, however many ops landed in it. 0 for downgraded batches.
  std::uint64_t blocks_resolved = 0;
  /// 1 when any surviving op was structural and the whole batch fell back
  /// to a single re-decomposition, else 0.
  std::uint64_t batch_downgrades = 0;
};

/// Result of coalescing one batch against a snapshot.
struct CoalesceResult {
  /// Net ops, at most one per edge, stable timestamp order. Empty when the
  /// batch cancels out entirely (a legal no-op).
  std::vector<EdgeOp> survivors;
  /// Ops folded away: batch size minus survivors when status.ok().
  std::uint64_t coalesced_away = 0;
  /// Why the batch was rejected; survivors is empty when !ok(). Messages
  /// match the single-edge mutate helpers ("arc already present", ...).
  Status status;
};

/// Reduce `ops` to their net effect against `g` (see file comment).
CoalesceResult coalesce_batch(const CsrGraph& g, const std::vector<EdgeOp>& ops);

/// Successor graph after applying every op in order via the O(degree) CSR
/// splice mutators. Callers pass coalesce_batch survivors, which are legal
/// by construction; an illegal op throws apgre::Error mid-chain, so only
/// pre-validated ops give the atomic commit-point guarantee.
CsrGraph apply_edge_ops(const CsrGraph& g, const std::vector<EdgeOp>& ops);

/// Serialize one batch as a binary frame (magic "APGB", version, count,
/// fixed-width little-endian ops).
void write_edge_batch(std::ostream& out, const UpdateRequest& batch);

/// Read one frame. Throws apgre::Error on a malformed frame.
UpdateRequest read_edge_batch(std::istream& in);

/// Whole replay file: frames back to back until EOF.
void write_edge_batch_file(const std::string& path,
                           const std::vector<UpdateRequest>& batches);
std::vector<UpdateRequest> read_edge_batch_file(const std::string& path);

}  // namespace apgre
