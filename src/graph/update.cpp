#include "graph/update.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <map>
#include <numeric>
#include <ostream>
#include <utility>

#include "graph/mutate.hpp"

namespace apgre {

namespace {

/// Per-edge fold state while walking the batch in timestamp order.
struct EdgeFold {
  bool initial = false;  ///< stored in the snapshot before the batch
  bool present = false;  ///< pending state after the ops folded so far
  bool touched = false;  ///< at least one effective op seen
  EdgeOp last;           ///< the op that set the current pending state
  std::size_t order_pos = 0;
};

}  // namespace

CoalesceResult coalesce_batch(const CsrGraph& g,
                              const std::vector<EdgeOp>& ops) {
  CoalesceResult out;
  auto reject = [&out](std::string why) -> CoalesceResult& {
    out.survivors.clear();
    out.coalesced_away = 0;
    out.status = Status::failed(std::move(why));
    return out;
  };

  // Stable timestamp order: ties keep arrival order, so replayed streams
  // coalesce deterministically.
  std::vector<std::size_t> order(ops.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&ops](std::size_t a, std::size_t b) {
                     return ops[a].timestamp < ops[b].timestamp;
                   });

  const Vertex n = g.num_vertices();
  std::map<std::pair<Vertex, Vertex>, EdgeFold> folds;
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const EdgeOp& op = ops[order[pos]];
    if (op.u >= n || op.v >= n) {
      return reject("update endpoint out of range");
    }
    if (op.u == op.v) {
      return reject("self-loops do not affect betweenness");
    }
    if (op.weight != 1.0) {
      // Reserved field: the scored graphs are unweighted (docs/API.md).
      return reject("non-unit edge weights are not supported");
    }
    const auto key = g.directed()
                         ? std::make_pair(op.u, op.v)
                         : std::make_pair(std::min(op.u, op.v),
                                          std::max(op.u, op.v));
    auto [it, fresh] = folds.try_emplace(key);
    EdgeFold& fold = it->second;
    if (fresh) {
      fold.initial = has_arc(g, key.first, key.second);
      fold.present = fold.initial;
    }
    if (op.insert == fold.present) {
      // Redundant against what an earlier batch op already established:
      // silently dedupe. Redundant against the snapshot itself: the op was
      // illegal when submitted — reject the whole batch, state untouched.
      if (!fold.touched) {
        return reject(op.insert ? "arc already present" : "arc not present");
      }
      continue;
    }
    fold.present = op.insert;
    fold.last = op;
    fold.order_pos = pos;
    fold.touched = true;
  }

  // One net survivor per edge whose final state differs from the snapshot,
  // ordered by where its last effective op sat in the timestamp order.
  std::vector<std::pair<std::size_t, EdgeOp>> net;
  for (const auto& [key, fold] : folds) {
    if (fold.present != fold.initial) net.emplace_back(fold.order_pos, fold.last);
  }
  std::sort(net.begin(), net.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out.survivors.reserve(net.size());
  for (auto& [pos, op] : net) out.survivors.push_back(op);
  out.coalesced_away = ops.size() - out.survivors.size();
  return out;
}

CsrGraph apply_edge_ops(const CsrGraph& g, const std::vector<EdgeOp>& ops) {
  APGRE_REQUIRE(!ops.empty(), "apply_edge_ops on an empty batch");
  CsrGraph next = ops[0].insert ? with_edge_inserted(g, ops[0].u, ops[0].v)
                                : with_edge_removed(g, ops[0].u, ops[0].v);
  for (std::size_t i = 1; i < ops.size(); ++i) {
    next = ops[i].insert ? with_edge_inserted(next, ops[i].u, ops[i].v)
                         : with_edge_removed(next, ops[i].u, ops[i].v);
  }
  return next;
}

// ---- binary edge-batch frames ("APGB") ------------------------------------

namespace {

constexpr char kMagic[4] = {'A', 'P', 'G', 'B'};
constexpr std::uint32_t kFrameVersion = 1;

void put_u32(std::ostream& out, std::uint32_t value) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>(value >> (8 * i));
  out.write(bytes, 4);
}

void put_u64(std::ostream& out, std::uint64_t value) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(value >> (8 * i));
  out.write(bytes, 8);
}

void put_f64(std::ostream& out, double value) {
  put_u64(out, std::bit_cast<std::uint64_t>(value));
}

std::uint32_t get_u32(std::istream& in) {
  unsigned char bytes[4];
  in.read(reinterpret_cast<char*>(bytes), 4);
  APGRE_REQUIRE(in.gcount() == 4, "unexpected end of edge-batch frame");
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) value |= std::uint32_t{bytes[i]} << (8 * i);
  return value;
}

std::uint64_t get_u64(std::istream& in) {
  unsigned char bytes[8];
  in.read(reinterpret_cast<char*>(bytes), 8);
  APGRE_REQUIRE(in.gcount() == 8, "unexpected end of edge-batch frame");
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) value |= std::uint64_t{bytes[i]} << (8 * i);
  return value;
}

double get_f64(std::istream& in) {
  return std::bit_cast<double>(get_u64(in));
}

}  // namespace

void write_edge_batch(std::ostream& out, const UpdateRequest& batch) {
  out.write(kMagic, 4);
  put_u32(out, kFrameVersion);
  put_u64(out, batch.ops.size());
  for (const EdgeOp& op : batch.ops) {
    put_u32(out, op.u);
    put_u32(out, op.v);
    put_u32(out, op.insert ? 1 : 0);
    put_f64(out, op.weight);
    put_u64(out, op.timestamp);
  }
}

UpdateRequest read_edge_batch(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  APGRE_REQUIRE(in.gcount() == 4 && std::memcmp(magic, kMagic, 4) == 0,
                "not an edge-batch frame (bad magic)");
  const std::uint32_t version = get_u32(in);
  APGRE_REQUIRE(version == kFrameVersion,
                "unsupported edge-batch frame version");
  const std::uint64_t count = get_u64(in);
  UpdateRequest batch;
  // Untrusted count: grow as ops actually arrive (the fuzz-hardening idiom
  // from io_binary) instead of reserving attacker-chosen sizes.
  batch.ops.reserve(std::min<std::uint64_t>(count, 1u << 20));
  for (std::uint64_t i = 0; i < count; ++i) {
    EdgeOp op;
    op.u = get_u32(in);
    op.v = get_u32(in);
    op.insert = get_u32(in) != 0;
    op.weight = get_f64(in);
    op.timestamp = get_u64(in);
    batch.ops.push_back(op);
  }
  return batch;
}

void write_edge_batch_file(const std::string& path,
                           const std::vector<UpdateRequest>& batches) {
  std::ofstream out(path, std::ios::binary);
  APGRE_REQUIRE(out.good(), "cannot open for writing: " + path);
  for (const UpdateRequest& batch : batches) write_edge_batch(out, batch);
  APGRE_REQUIRE(out.good(), "write failed: " + path);
}

std::vector<UpdateRequest> read_edge_batch_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  APGRE_REQUIRE(in.good(), "cannot open: " + path);
  std::vector<UpdateRequest> batches;
  while (in.peek() != std::ifstream::traits_type::eof()) {
    batches.push_back(read_edge_batch(in));
  }
  return batches;
}

}  // namespace apgre
