#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/prng.hpp"

namespace apgre {

CsrGraph erdos_renyi(Vertex n, EdgeId m, bool directed, std::uint64_t seed) {
  APGRE_ASSERT(n >= 2);
  Xoshiro256 rng(seed);
  EdgeList edges;
  edges.reserve(m);
  for (EdgeId i = 0; i < m; ++i) {
    auto u = static_cast<Vertex>(rng.bounded(n));
    auto v = static_cast<Vertex>(rng.bounded(n));
    while (v == u) v = static_cast<Vertex>(rng.bounded(n));
    edges.push_back(Edge{u, v});
  }
  if (directed) return CsrGraph::from_edges(n, std::move(edges), true);
  return CsrGraph::undirected_from_edges(n, std::move(edges));
}

CsrGraph barabasi_albert(Vertex n, Vertex k, std::uint64_t seed) {
  APGRE_ASSERT(k >= 1 && n > k);
  Xoshiro256 rng(seed);
  EdgeList edges;
  // `endpoints` holds one entry per half-edge, so sampling uniformly from it
  // is degree-proportional sampling.
  std::vector<Vertex> endpoints;
  endpoints.reserve(static_cast<std::size_t>(n) * k * 2);

  // Seed graph: (k+1)-clique.
  for (Vertex u = 0; u <= k; ++u) {
    for (Vertex v = u + 1; v <= k; ++v) {
      edges.push_back(Edge{u, v});
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (Vertex v = k + 1; v < n; ++v) {
    for (Vertex j = 0; j < k; ++j) {
      const Vertex target = endpoints[rng.bounded(endpoints.size())];
      edges.push_back(Edge{v, target});
      endpoints.push_back(v);
      endpoints.push_back(target);
    }
  }
  return CsrGraph::undirected_from_edges(n, std::move(edges));
}

CsrGraph rmat(int scale, int edge_factor, double a, double b, double c,
              bool symmetric, std::uint64_t seed) {
  APGRE_ASSERT(scale >= 1 && scale < 31);
  const double d = 1.0 - a - b - c;
  APGRE_ASSERT_MSG(a > 0 && b >= 0 && c >= 0 && d >= 0, "invalid RMAT quadrants");
  const Vertex n = Vertex{1} << scale;
  const EdgeId m = static_cast<EdgeId>(edge_factor) * n;

  Xoshiro256 rng(seed);
  EdgeList edges;
  edges.reserve(m);
  for (EdgeId i = 0; i < m; ++i) {
    Vertex u = 0;
    Vertex v = 0;
    for (int bit = scale - 1; bit >= 0; --bit) {
      const double r = rng.uniform();
      if (r < a) {
        // top-left quadrant: no bits set
      } else if (r < a + b) {
        v |= Vertex{1} << bit;
      } else if (r < a + b + c) {
        u |= Vertex{1} << bit;
      } else {
        u |= Vertex{1} << bit;
        v |= Vertex{1} << bit;
      }
    }
    if (u != v) edges.push_back(Edge{u, v});
  }
  if (symmetric) return CsrGraph::undirected_from_edges(n, std::move(edges));
  return CsrGraph::from_edges(n, std::move(edges), /*directed=*/true);
}

CsrGraph watts_strogatz(Vertex n, Vertex k, double p, std::uint64_t seed) {
  APGRE_ASSERT(n > 2 * k && k >= 1);
  Xoshiro256 rng(seed);
  EdgeList edges;
  for (Vertex v = 0; v < n; ++v) {
    for (Vertex j = 1; j <= k; ++j) {
      Vertex w = (v + j) % n;
      if (rng.bernoulli(p)) {
        // Rewire to a uniform non-self target.
        w = static_cast<Vertex>(rng.bounded(n));
        while (w == v) w = static_cast<Vertex>(rng.bounded(n));
      }
      edges.push_back(Edge{v, w});
    }
  }
  return CsrGraph::undirected_from_edges(n, std::move(edges));
}

CsrGraph road_grid(Vertex rows, Vertex cols, double diagonal_p, double prune_p,
                   std::uint64_t seed) {
  APGRE_ASSERT(rows >= 2 && cols >= 2);
  Xoshiro256 rng(seed);
  EdgeList edges;
  auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      if (c + 1 < cols && !rng.bernoulli(prune_p)) {
        edges.push_back(Edge{id(r, c), id(r, c + 1)});
      }
      if (r + 1 < rows && !rng.bernoulli(prune_p)) {
        edges.push_back(Edge{id(r, c), id(r + 1, c)});
      }
      if (r + 1 < rows && c + 1 < cols && rng.bernoulli(diagonal_p)) {
        edges.push_back(Edge{id(r, c), id(r + 1, c + 1)});
      }
    }
  }
  return CsrGraph::undirected_from_edges(rows * cols, std::move(edges));
}

CsrGraph caveman(Vertex cliques, Vertex clique_size, std::uint64_t seed) {
  APGRE_ASSERT(cliques >= 1 && clique_size >= 2);
  Xoshiro256 rng(seed);
  EdgeList edges;
  const Vertex n = cliques * clique_size;
  for (Vertex q = 0; q < cliques; ++q) {
    const Vertex base = q * clique_size;
    for (Vertex u = 0; u < clique_size; ++u) {
      for (Vertex v = u + 1; v < clique_size; ++v) {
        edges.push_back(Edge{base + u, base + v});
      }
    }
    if (q + 1 < cliques) {
      // A single bridge to the next clique; both endpoints become
      // articulation points.
      const auto from = static_cast<Vertex>(base + rng.bounded(clique_size));
      const auto to =
          static_cast<Vertex>(base + clique_size + rng.bounded(clique_size));
      edges.push_back(Edge{from, to});
    }
  }
  return CsrGraph::undirected_from_edges(n, std::move(edges));
}

CsrGraph random_tree(Vertex n, std::uint64_t seed) {
  APGRE_ASSERT(n >= 1);
  Xoshiro256 rng(seed);
  EdgeList edges;
  for (Vertex v = 1; v < n; ++v) {
    const auto parent = static_cast<Vertex>(rng.bounded(v));
    edges.push_back(Edge{parent, v});
  }
  return CsrGraph::undirected_from_edges(n, std::move(edges));
}

CsrGraph path(Vertex n) {
  APGRE_ASSERT(n >= 1);
  EdgeList edges;
  for (Vertex v = 0; v + 1 < n; ++v) edges.push_back(Edge{v, static_cast<Vertex>(v + 1)});
  return CsrGraph::undirected_from_edges(n, std::move(edges));
}

CsrGraph cycle(Vertex n) {
  APGRE_ASSERT(n >= 3);
  EdgeList edges;
  for (Vertex v = 0; v < n; ++v) edges.push_back(Edge{v, static_cast<Vertex>((v + 1) % n)});
  return CsrGraph::undirected_from_edges(n, std::move(edges));
}

CsrGraph star(Vertex n) {
  APGRE_ASSERT(n >= 2);
  EdgeList edges;
  for (Vertex v = 1; v < n; ++v) edges.push_back(Edge{0, v});
  return CsrGraph::undirected_from_edges(n, std::move(edges));
}

CsrGraph complete(Vertex n) {
  APGRE_ASSERT(n >= 1);
  EdgeList edges;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) edges.push_back(Edge{u, v});
  }
  return CsrGraph::undirected_from_edges(n, std::move(edges));
}

CsrGraph binary_tree(Vertex n) {
  APGRE_ASSERT(n >= 1);
  EdgeList edges;
  for (Vertex v = 0; v < n; ++v) {
    const Vertex left = 2 * v + 1;
    const Vertex right = 2 * v + 2;
    if (left < n) edges.push_back(Edge{v, left});
    if (right < n) edges.push_back(Edge{v, right});
  }
  return CsrGraph::undirected_from_edges(n, std::move(edges));
}

CsrGraph barbell(Vertex clique, Vertex bridge) {
  APGRE_ASSERT(clique >= 3);
  EdgeList edges;
  const Vertex n = 2 * clique + bridge;
  // First clique: [0, clique); second clique: [clique + bridge, n).
  for (Vertex u = 0; u < clique; ++u) {
    for (Vertex v = u + 1; v < clique; ++v) edges.push_back(Edge{u, v});
  }
  const Vertex second = clique + bridge;
  for (Vertex u = second; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) edges.push_back(Edge{u, v});
  }
  // Path joining vertex clique-1 to vertex `second` through the bridge ids.
  Vertex prev = clique - 1;
  for (Vertex b = 0; b < bridge; ++b) {
    edges.push_back(Edge{prev, clique + b});
    prev = clique + b;
  }
  edges.push_back(Edge{prev, second});
  return CsrGraph::undirected_from_edges(n, std::move(edges));
}

CsrGraph paper_figure3() {
  // 13 vertices; blocks {2,3,4,5,6}, {6,7,8,9}, {3,10,12} are symmetric,
  // pendants 0 and 1 have a single out-arc into the articulation point 2
  // (in-degree 0), matching the paper's total-redundancy setup.
  EdgeList block_edges = {
      {2, 5}, {2, 4}, {5, 3}, {4, 3}, {2, 6}, {5, 6},   // middle block
      {6, 7}, {6, 8}, {7, 9}, {8, 9},                   // block SG3
      {3, 10}, {3, 12}, {10, 12},                       // block SG1
  };
  EdgeList edges;
  for (const Edge& e : block_edges) {
    edges.push_back(e);
    edges.push_back(Edge{e.dst, e.src});
  }
  edges.push_back(Edge{0, 2});
  edges.push_back(Edge{1, 2});
  // Vertex 11 feeds SG1 one-way: it shares the green SD3 sub-DAG with
  // D10/D12 but is absent from the blue SD6 (unreachable from 6).
  edges.push_back(Edge{11, 10});
  edges.push_back(Edge{11, 12});
  return CsrGraph::from_edges(13, std::move(edges), /*directed=*/true);
}

}  // namespace apgre
