#include "graph/components.hpp"

#include <vector>

namespace apgre {

ComponentLabels connected_components(const CsrGraph& g) {
  ComponentLabels out;
  out.component.assign(g.num_vertices(), kInvalidVertex);

  std::vector<Vertex> queue;
  for (Vertex start = 0; start < g.num_vertices(); ++start) {
    if (out.component[start] != kInvalidVertex) continue;
    const Vertex id = out.num_components++;
    out.component[start] = id;
    queue.assign(1, start);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const Vertex v = queue[head];
      auto visit = [&](Vertex w) {
        if (out.component[w] == kInvalidVertex) {
          out.component[w] = id;
          queue.push_back(w);
        }
      };
      for (Vertex w : g.out_neighbors(v)) visit(w);
      if (g.directed()) {
        for (Vertex w : g.in_neighbors(v)) visit(w);
      }
    }
  }
  return out;
}

bool is_connected(const CsrGraph& g) {
  return connected_components(g).num_components <= 1;
}

std::vector<std::vector<Vertex>> component_members(const ComponentLabels& labels) {
  std::vector<std::vector<Vertex>> members(labels.num_components);
  for (Vertex v = 0; v < labels.component.size(); ++v) {
    members[labels.component[v]].push_back(v);
  }
  return members;
}

}  // namespace apgre
