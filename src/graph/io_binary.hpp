// Binary graph cache: a versioned little-endian dump of the CSR arrays so
// repeated benchmark / analysis runs skip text parsing. Roughly 20x faster
// to load than the SNAP text path for large graphs.
//
// Layout: magic "APGR", u32 version, u8 directed, u8 weighted, u32 |V|,
// u64 |arcs|, arc array as (src,dst)[+weight] triples reconstructed into
// CSR on load (keeps the format independent of internal offset layout).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"
#include "graph/weighted.hpp"

namespace apgre {

void write_binary(std::ostream& out, const CsrGraph& g);
void write_binary_file(const std::string& path, const CsrGraph& g);
CsrGraph read_binary(std::istream& in, const std::string& name = "<stream>");
CsrGraph read_binary_file(const std::string& path);

void write_binary_weighted(std::ostream& out, const WeightedCsrGraph& g);
void write_binary_weighted_file(const std::string& path, const WeightedCsrGraph& g);
WeightedCsrGraph read_binary_weighted(std::istream& in,
                                      const std::string& name = "<stream>");
WeightedCsrGraph read_binary_weighted_file(const std::string& path);

}  // namespace apgre
