// Edge-list representation: the exchange format between parsers, generators
// and the CSR builder.
#pragma once

#include <cstdint>
#include <vector>

namespace apgre {

/// Vertex id. 32 bits cover every graph this reproduction targets
/// (laptop-scale analogues of the paper's inputs, <= ~16M vertices) while
/// halving the memory traffic of the BFS kernels.
using Vertex = std::uint32_t;

/// Sentinel for "no vertex".
inline constexpr Vertex kInvalidVertex = static_cast<Vertex>(-1);

/// Directed arc src -> dst. Undirected edges are represented by storing both
/// arcs before CSR construction.
struct Edge {
  Vertex src;
  Vertex dst;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

using EdgeList = std::vector<Edge>;

/// Sort by (src, dst) and drop duplicate arcs.
void sort_unique(EdgeList& edges);

/// Drop arcs with src == dst. BC is invariant to self-loops.
void remove_self_loops(EdgeList& edges);

/// Append the reverse of every arc (then dedupe); turns a directed edge list
/// into a symmetric one.
void symmetrize(EdgeList& edges);

/// Largest endpoint id + 1, i.e. the minimal vertex count covering `edges`.
Vertex min_vertex_count(const EdgeList& edges);

}  // namespace apgre
