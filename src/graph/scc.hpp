// Strongly connected components (iterative Tarjan) and the condensation
// DAG. Directed-graph substrate: the reproduction's directed workloads
// (web crawls, email networks) are analysed per-SCC in the examples, and
// reachability reasoning (alpha/beta ground truths in tests) uses the
// condensation.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace apgre {

struct SccLabels {
  /// component[v] in [0, num_components); components are numbered in
  /// reverse topological order of the condensation (Tarjan's output
  /// order): if the condensation has an arc C1 -> C2 then id(C1) > id(C2).
  std::vector<Vertex> component;
  Vertex num_components = 0;
};

/// Iterative Tarjan SCC over the directed graph (for undirected graphs
/// every connected component is one SCC).
SccLabels strongly_connected_components(const CsrGraph& g);

/// Condensation: one vertex per SCC, an arc C(u) -> C(v) for every graph
/// arc u -> v crossing components (deduplicated). Always a DAG.
CsrGraph condensation(const CsrGraph& g, const SccLabels& labels);

/// True iff the whole graph is one strongly connected component.
bool is_strongly_connected(const CsrGraph& g);

}  // namespace apgre
