// DIMACS-9 shortest-path challenge `.gr` format (the paper's USA road
// inputs): 'c' comments, one 'p sp <n> <m>' header, then 'a <u> <v> <w>'
// arcs with 1-based ids. Weights are ignored (the paper treats all inputs
// as unweighted).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"

namespace apgre {

/// Parse a DIMACS .gr stream. Throws ParseError on malformed input.
CsrGraph read_dimacs(std::istream& in, bool directed, const std::string& name = "<stream>");
CsrGraph read_dimacs_file(const std::string& path, bool directed);

/// Write in .gr format with unit weights.
void write_dimacs(std::ostream& out, const CsrGraph& g);
void write_dimacs_file(const std::string& path, const CsrGraph& g);

}  // namespace apgre
