#include "graph/csr.hpp"

#include <algorithm>

namespace apgre {

namespace {

/// Counting-sort an arc list into offsets/targets arrays.
void build_adjacency(Vertex num_vertices, const EdgeList& edges, bool transpose,
                     std::vector<EdgeId>& offsets, std::vector<Vertex>& targets) {
  offsets.assign(static_cast<std::size_t>(num_vertices) + 1, 0);
  for (const Edge& e : edges) {
    const Vertex key = transpose ? e.dst : e.src;
    ++offsets[key + 1];
  }
  for (std::size_t v = 1; v < offsets.size(); ++v) offsets[v] += offsets[v - 1];

  targets.resize(edges.size());
  std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : edges) {
    const Vertex key = transpose ? e.dst : e.src;
    const Vertex value = transpose ? e.src : e.dst;
    targets[cursor[key]++] = value;
  }
  // Sorted neighbour lists make equality/round-trip tests deterministic and
  // improve locality of the BFS kernels.
  for (Vertex v = 0; v < num_vertices; ++v) {
    std::sort(targets.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              targets.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
  }
}

}  // namespace

CsrGraph CsrGraph::from_edges(Vertex num_vertices, EdgeList edges, bool directed) {
  for (const Edge& e : edges) {
    APGRE_ASSERT_MSG(e.src < num_vertices && e.dst < num_vertices,
                     "edge endpoint out of range");
  }
  remove_self_loops(edges);
  sort_unique(edges);

  CsrGraph g;
  g.num_vertices_ = num_vertices;
  g.directed_ = directed;
  build_adjacency(num_vertices, edges, /*transpose=*/false, g.out_offsets_,
                  g.out_targets_);
  if (directed) {
    build_adjacency(num_vertices, edges, /*transpose=*/true, g.in_offsets_,
                    g.in_targets_);
  }
  return g;
}

CsrGraph CsrGraph::undirected_from_edges(Vertex num_vertices, EdgeList edges) {
  symmetrize(edges);
  return from_edges(num_vertices, std::move(edges), /*directed=*/false);
}

Vertex CsrGraph::undirected_degree(Vertex v) const {
  if (!directed_) return out_degree(v);
  // Count the union of in- and out-neighbours; both lists are sorted.
  auto outs = out_neighbors(v);
  auto ins = in_neighbors(v);
  std::size_t i = 0;
  std::size_t j = 0;
  Vertex count = 0;
  while (i < outs.size() && j < ins.size()) {
    if (outs[i] == ins[j]) {
      ++i;
      ++j;
    } else if (outs[i] < ins[j]) {
      ++i;
    } else {
      ++j;
    }
    ++count;
  }
  count += static_cast<Vertex>((outs.size() - i) + (ins.size() - j));
  return count;
}

EdgeList CsrGraph::arcs() const {
  EdgeList edges;
  edges.reserve(out_targets_.size());
  for (Vertex v = 0; v < num_vertices_; ++v) {
    for (Vertex w : out_neighbors(v)) edges.push_back(Edge{v, w});
  }
  return edges;
}

bool CsrGraph::is_symmetric() const {
  for (Vertex v = 0; v < num_vertices_; ++v) {
    for (Vertex w : out_neighbors(v)) {
      auto back = out_neighbors(w);
      if (!std::binary_search(back.begin(), back.end(), v)) return false;
    }
  }
  return true;
}

}  // namespace apgre
