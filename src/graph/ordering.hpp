// Vertex-ordering (graph re-layout) strategies — Cong & Makarychev,
// IPDPS 2011 ("Optimizing large-scale graph analysis on a multi-threaded,
// multi-core platform"), cited in the paper's related work (§6): BC kernels
// are bandwidth-bound, so relabelling vertices to improve the locality of
// neighbour accesses speeds up every algorithm in the family. The ordering
// ablation bench measures the effect.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace apgre {

enum class VertexOrder {
  kNatural,          ///< keep input ids
  kDegreeDescending, ///< hubs first (dense rows pack together)
  kBfs,              ///< BFS discovery order from a high-degree root
  kDfs,              ///< DFS preorder from a high-degree root
  kRandom,           ///< random shuffle (locality worst case, for contrast)
};

/// Permutation p with p[old_id] = new_id for the requested strategy.
/// Unreached vertices (other components) are appended in natural order.
std::vector<Vertex> vertex_order(const CsrGraph& g, VertexOrder order,
                                 std::uint64_t seed = 1);

/// Relabelled graph plus the inverse mapping needed to report results in
/// the original ids.
struct OrderedGraph {
  CsrGraph graph;
  std::vector<Vertex> to_original;  // new id -> original id
};
OrderedGraph apply_order(const CsrGraph& g, VertexOrder order,
                         std::uint64_t seed = 1);

}  // namespace apgre
