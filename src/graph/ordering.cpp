#include "graph/ordering.hpp"

#include <algorithm>
#include <numeric>

#include "graph/transform.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"

namespace apgre {

namespace {

Vertex highest_degree_vertex(const CsrGraph& g) {
  Vertex best = 0;
  for (Vertex v = 1; v < g.num_vertices(); ++v) {
    if (g.out_degree(v) > g.out_degree(best)) best = v;
  }
  return best;
}

/// Turn a visit sequence (new id -> old id, possibly partial) into the
/// old -> new permutation, appending unvisited vertices in natural order.
std::vector<Vertex> sequence_to_permutation(Vertex n, std::vector<Vertex> sequence) {
  std::vector<Vertex> position(n, kInvalidVertex);
  for (std::size_t i = 0; i < sequence.size(); ++i) position[sequence[i]] = static_cast<Vertex>(i);
  auto next = static_cast<Vertex>(sequence.size());
  for (Vertex v = 0; v < n; ++v) {
    if (position[v] == kInvalidVertex) position[v] = next++;
  }
  APGRE_ASSERT(next == n);
  return position;
}

}  // namespace

std::vector<Vertex> vertex_order(const CsrGraph& g, VertexOrder order,
                                 std::uint64_t seed) {
  const Vertex n = g.num_vertices();
  std::vector<Vertex> permutation(n);
  std::iota(permutation.begin(), permutation.end(), 0);
  if (n == 0) return permutation;

  switch (order) {
    case VertexOrder::kNatural:
      return permutation;

    case VertexOrder::kDegreeDescending: {
      std::vector<Vertex> by_degree(n);
      std::iota(by_degree.begin(), by_degree.end(), 0);
      std::stable_sort(by_degree.begin(), by_degree.end(), [&](Vertex a, Vertex b) {
        return g.out_degree(a) > g.out_degree(b);
      });
      return sequence_to_permutation(n, std::move(by_degree));
    }

    case VertexOrder::kBfs: {
      std::vector<Vertex> sequence;
      std::vector<bool> seen(n, false);
      std::vector<Vertex> queue;
      for (Vertex attempt = 0; attempt < 2; ++attempt) {
        const Vertex root = attempt == 0 ? highest_degree_vertex(g) : 0;
        for (Vertex start = root; start < n; ++start) {
          if (seen[start]) continue;
          seen[start] = true;
          queue.assign(1, start);
          for (std::size_t head = 0; head < queue.size(); ++head) {
            const Vertex v = queue[head];
            sequence.push_back(v);
            for (Vertex w : g.out_neighbors(v)) {
              if (!seen[w]) {
                seen[w] = true;
                queue.push_back(w);
              }
            }
          }
        }
      }
      return sequence_to_permutation(n, std::move(sequence));
    }

    case VertexOrder::kDfs: {
      std::vector<Vertex> sequence;
      std::vector<bool> seen(n, false);
      std::vector<std::pair<Vertex, std::uint32_t>> stack;
      for (Vertex attempt = 0; attempt < 2; ++attempt) {
        const Vertex root = attempt == 0 ? highest_degree_vertex(g) : 0;
        for (Vertex start = root; start < n; ++start) {
          if (seen[start]) continue;
          seen[start] = true;
          sequence.push_back(start);
          stack.assign(1, {start, 0});
          while (!stack.empty()) {
            auto& [v, next] = stack.back();
            const auto neighbors = g.out_neighbors(v);
            if (next < neighbors.size()) {
              const Vertex w = neighbors[next++];
              if (!seen[w]) {
                seen[w] = true;
                sequence.push_back(w);
                stack.push_back({w, 0});
              }
            } else {
              stack.pop_back();
            }
          }
        }
      }
      return sequence_to_permutation(n, std::move(sequence));
    }

    case VertexOrder::kRandom: {
      Xoshiro256 rng(seed);
      for (Vertex i = n; i-- > 1;) {
        const auto j = static_cast<Vertex>(rng.bounded(i + 1));
        std::swap(permutation[i], permutation[j]);
      }
      return permutation;
    }
  }
  return permutation;
}

OrderedGraph apply_order(const CsrGraph& g, VertexOrder order, std::uint64_t seed) {
  const auto permutation = vertex_order(g, order, seed);
  OrderedGraph out;
  out.graph = relabel(g, permutation);
  out.to_original.assign(g.num_vertices(), 0);
  for (Vertex old_id = 0; old_id < g.num_vertices(); ++old_id) {
    out.to_original[permutation[old_id]] = old_id;
  }
  return out;
}

}  // namespace apgre
