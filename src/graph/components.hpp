// Connected components of the undirected projection (for directed graphs
// this is weak connectivity). The APGRE decomposition runs per component.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace apgre {

struct ComponentLabels {
  /// component[v] in [0, num_components); components are numbered in order
  /// of their smallest vertex.
  std::vector<Vertex> component;
  Vertex num_components = 0;
};

/// BFS-based connected components over the undirected projection. For
/// directed graphs both arc directions are followed (weak connectivity).
ComponentLabels connected_components(const CsrGraph& g);

/// True if the undirected projection is a single component (n == 0 counts
/// as connected).
bool is_connected(const CsrGraph& g);

/// Vertices of each component, grouped (index = component id).
std::vector<std::vector<Vertex>> component_members(const ComponentLabels& labels);

}  // namespace apgre
