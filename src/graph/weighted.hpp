// Weighted CSR graph for the weighted-BC extension.
//
// The paper's algorithms target unweighted graphs (§2.1); weighted BC is
// cited as related work (Edmonds et al., HiPC 2010). This module provides
// the substrate for the weighted extension: positive arc weights stored
// CSR-parallel to the adjacency, plus weight-assignment decorators.
//
// Weight semantics: non-negative doubles. The shortest-path algorithms
// compare path lengths with exact ==, which is reliable when weights are
// integer-valued (exactly representable doubles) — the generators below
// only produce integer weights, and the DIMACS reader keeps the integer
// weights of the format.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace apgre {

struct WeightedEdge {
  Vertex src;
  Vertex dst;
  double weight;

  friend bool operator==(const WeightedEdge&, const WeightedEdge&) = default;
};

class WeightedCsrGraph {
 public:
  WeightedCsrGraph() = default;

  /// Build from weighted arcs. Self-loops are dropped; duplicate arcs keep
  /// the smallest weight (the only one shortest paths can use). Weights
  /// must be non-negative.
  static WeightedCsrGraph from_edges(Vertex num_vertices,
                                     std::vector<WeightedEdge> edges,
                                     bool directed);

  /// Convenience: adds the reverse of every arc with the same weight.
  static WeightedCsrGraph undirected_from_edges(Vertex num_vertices,
                                                std::vector<WeightedEdge> edges);

  Vertex num_vertices() const { return structure_.num_vertices(); }
  EdgeId num_arcs() const { return structure_.num_arcs(); }
  bool directed() const { return structure_.directed(); }

  /// The unweighted structure view (shared by the articulation-point
  /// decomposition, which is weight-agnostic).
  const CsrGraph& structure() const { return structure_; }

  std::span<const Vertex> out_neighbors(Vertex v) const {
    return structure_.out_neighbors(v);
  }

  /// Weights parallel to out_neighbors(v).
  std::span<const double> out_weights(Vertex v) const {
    const auto offset = structure_.out_offset(v);
    return {weights_.data() + offset,
            weights_.data() + offset + structure_.out_degree(v)};
  }

  /// Weight of arc (v, w); asserts the arc exists.
  double arc_weight(Vertex v, Vertex w) const;

  std::vector<WeightedEdge> arcs() const;

  friend bool operator==(const WeightedCsrGraph&, const WeightedCsrGraph&) = default;

 private:
  CsrGraph structure_;
  std::vector<double> weights_;  // parallel to the out-arc array
};

/// Assign every arc of `g` unit weight.
WeightedCsrGraph with_unit_weights(const CsrGraph& g);

/// Assign every arc a uniform integer weight in [lo, hi]. Undirected
/// graphs get symmetric weights (w(u,v) == w(v,u)).
WeightedCsrGraph with_random_weights(const CsrGraph& g, std::uint32_t lo,
                                     std::uint32_t hi, std::uint64_t seed);

/// DIMACS .gr reader that keeps the arc weights (io_dimacs.hpp drops them).
WeightedCsrGraph read_dimacs_weighted(std::istream& in, bool directed,
                                      const std::string& name = "<stream>");

}  // namespace apgre
