#include "graph/bfs.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace apgre {

std::vector<std::uint32_t> bfs_distances(const CsrGraph& g, Vertex source) {
  return bfs_distances(g, std::vector<Vertex>{source});
}

std::vector<std::uint32_t> bfs_distances(const CsrGraph& g,
                                         const std::vector<Vertex>& sources) {
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreachable);
  std::vector<Vertex> queue;
  queue.reserve(sources.size());
  for (Vertex s : sources) {
    APGRE_ASSERT(s < g.num_vertices());
    if (dist[s] == kUnreachable) {
      dist[s] = 0;
      queue.push_back(s);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Vertex v = queue[head];
    for (Vertex w : g.out_neighbors(v)) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[v] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

std::uint64_t reachable_count(const CsrGraph& g, Vertex source) {
  const auto dist = bfs_distances(g, source);
  std::uint64_t count = 0;
  for (std::uint32_t d : dist) {
    if (d != kUnreachable) ++count;
  }
  return count - 1;  // exclude the source
}

std::uint32_t eccentricity(const CsrGraph& g, Vertex source) {
  const auto dist = bfs_distances(g, source);
  std::uint32_t ecc = 0;
  for (std::uint32_t d : dist) {
    if (d != kUnreachable) ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t pseudo_diameter(const CsrGraph& g, Vertex seed, int sweeps) {
  if (g.num_vertices() == 0) return 0;
  APGRE_ASSERT(seed < g.num_vertices());
  Vertex current = seed;
  std::uint32_t best = 0;
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    const auto dist = bfs_distances(g, current);
    Vertex farthest = current;
    std::uint32_t far_dist = 0;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if (dist[v] != kUnreachable && dist[v] > far_dist) {
        far_dist = dist[v];
        farthest = v;
      }
    }
    best = std::max(best, far_dist);
    if (farthest == current) break;
    current = farthest;
  }
  return best;
}

}  // namespace apgre
