// METIS graph format: header "<n> <m>", then line i (1-based) lists the
// neighbours of vertex i. Only the unweighted variant is supported; the
// format is inherently undirected.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"

namespace apgre {

CsrGraph read_metis(std::istream& in, const std::string& name = "<stream>");
CsrGraph read_metis_file(const std::string& path);

/// Write an undirected graph in METIS format. Requires g.is_symmetric().
void write_metis(std::ostream& out, const CsrGraph& g);
void write_metis_file(const std::string& path, const CsrGraph& g);

}  // namespace apgre
