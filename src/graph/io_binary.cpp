#include "graph/io_binary.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "support/error.hpp"

namespace apgre {

namespace {

constexpr char kMagic[4] = {'A', 'P', 'G', 'R'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in, const std::string& name) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  APGRE_REQUIRE(in.good(), name + ": truncated binary graph");
  return value;
}

struct Header {
  bool directed = false;
  bool weighted = false;
  Vertex num_vertices = 0;
  EdgeId num_arcs = 0;
};

/// A hostile header can claim any 64-bit arc count; reserving it up front
/// would allocate before a single payload byte is validated. Cap the
/// up-front reservation and let push_back grow for genuinely huge files —
/// truncated payloads then fail on read, not on allocation.
constexpr EdgeId kMaxArcReserve = EdgeId{1} << 20;

void write_header(std::ostream& out, const Header& h) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint8_t>(h.directed ? 1 : 0));
  write_pod(out, static_cast<std::uint8_t>(h.weighted ? 1 : 0));
  write_pod(out, h.num_vertices);
  write_pod(out, h.num_arcs);
}

Header read_header(std::istream& in, const std::string& name, bool expect_weighted) {
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  APGRE_REQUIRE(in.good() && std::memcmp(magic, kMagic, 4) == 0,
                name + ": not an APGR binary graph");
  const auto version = read_pod<std::uint32_t>(in, name);
  APGRE_REQUIRE(version == kVersion,
                name + ": unsupported binary graph version " + std::to_string(version));
  Header h;
  h.directed = read_pod<std::uint8_t>(in, name) != 0;
  h.weighted = read_pod<std::uint8_t>(in, name) != 0;
  APGRE_REQUIRE(h.weighted == expect_weighted,
                name + (expect_weighted ? ": file is unweighted; use read_binary"
                                        : ": file is weighted; use read_binary_weighted"));
  h.num_vertices = read_pod<Vertex>(in, name);
  h.num_arcs = read_pod<EdgeId>(in, name);
  return h;
}

}  // namespace

void write_binary(std::ostream& out, const CsrGraph& g) {
  write_header(out, Header{g.directed(), false, g.num_vertices(), g.num_arcs()});
  for (const Edge& e : g.arcs()) {
    write_pod(out, e.src);
    write_pod(out, e.dst);
  }
  APGRE_REQUIRE(out.good(), "binary graph write failed");
}

CsrGraph read_binary(std::istream& in, const std::string& name) {
  const Header h = read_header(in, name, /*expect_weighted=*/false);
  EdgeList edges;
  edges.reserve(std::min(h.num_arcs, kMaxArcReserve));
  for (EdgeId i = 0; i < h.num_arcs; ++i) {
    const auto src = read_pod<Vertex>(in, name);
    const auto dst = read_pod<Vertex>(in, name);
    APGRE_REQUIRE(src < h.num_vertices && dst < h.num_vertices,
                  name + ": arc endpoint out of range");
    edges.push_back(Edge{src, dst});
  }
  return CsrGraph::from_edges(h.num_vertices, std::move(edges), h.directed);
}

void write_binary_weighted(std::ostream& out, const WeightedCsrGraph& g) {
  write_header(out, Header{g.directed(), true, g.num_vertices(), g.num_arcs()});
  for (const WeightedEdge& e : g.arcs()) {
    write_pod(out, e.src);
    write_pod(out, e.dst);
    write_pod(out, e.weight);
  }
  APGRE_REQUIRE(out.good(), "binary graph write failed");
}

WeightedCsrGraph read_binary_weighted(std::istream& in, const std::string& name) {
  const Header h = read_header(in, name, /*expect_weighted=*/true);
  std::vector<WeightedEdge> edges;
  edges.reserve(std::min(h.num_arcs, kMaxArcReserve));
  for (EdgeId i = 0; i < h.num_arcs; ++i) {
    const auto src = read_pod<Vertex>(in, name);
    const auto dst = read_pod<Vertex>(in, name);
    const auto weight = read_pod<double>(in, name);
    APGRE_REQUIRE(src < h.num_vertices && dst < h.num_vertices,
                  name + ": arc endpoint out of range");
    edges.push_back(WeightedEdge{src, dst, weight});
  }
  return WeightedCsrGraph::from_edges(h.num_vertices, std::move(edges), h.directed);
}

void write_binary_file(const std::string& path, const CsrGraph& g) {
  std::ofstream out(path, std::ios::binary);
  APGRE_REQUIRE(out.good(), "cannot open " + path + " for writing");
  write_binary(out, g);
}

CsrGraph read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  APGRE_REQUIRE(in.good(), "cannot open " + path);
  return read_binary(in, path);
}

void write_binary_weighted_file(const std::string& path, const WeightedCsrGraph& g) {
  std::ofstream out(path, std::ios::binary);
  APGRE_REQUIRE(out.good(), "cannot open " + path + " for writing");
  write_binary_weighted(out, g);
}

WeightedCsrGraph read_binary_weighted_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  APGRE_REQUIRE(in.good(), "cannot open " + path);
  return read_binary_weighted(in, path);
}

}  // namespace apgre
