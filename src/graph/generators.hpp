// Synthetic graph generators.
//
// The paper evaluates on 12 SNAP / DIMACS / web-crawl graphs (Table 1),
// which are not available offline. These generators produce deterministic
// analogues of each structural class the paper covers:
//   * power-law social / email / web graphs  -> barabasi_albert, rmat
//   * community-structured collaboration     -> caveman
//   * road networks                          -> road_grid
//   * pendant-heavy graphs (total redundancy)-> attach_pendants (transform.hpp)
// plus small deterministic shapes for unit tests (path, cycle, star, ...).
//
// All generators are seeded and reproducible; the same (parameters, seed)
// always yields the same graph.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace apgre {

/// G(n, m) Erdos-Renyi: m arcs sampled uniformly without replacement
/// (deduped, so the result may have slightly fewer). Undirected variant
/// samples unordered pairs.
CsrGraph erdos_renyi(Vertex n, EdgeId m, bool directed, std::uint64_t seed);

/// Barabasi-Albert preferential attachment: each new vertex attaches to
/// `k` existing vertices chosen proportionally to degree. Produces the
/// power-law degree distribution of social/email networks. Undirected.
CsrGraph barabasi_albert(Vertex n, Vertex k, std::uint64_t seed);

/// R-MAT / Graph500 recursive-matrix generator: 2^scale vertices,
/// edge_factor * 2^scale arcs, partition probabilities (a, b, c, d).
/// Skewed web-graph-like structure. Directed unless `symmetric`.
CsrGraph rmat(int scale, int edge_factor, double a, double b, double c,
              bool symmetric, std::uint64_t seed);

/// Watts-Strogatz small world: ring lattice with k nearest neighbours,
/// each edge rewired with probability p. Undirected.
CsrGraph watts_strogatz(Vertex n, Vertex k, double p, std::uint64_t seed);

/// Road-network analogue: rows x cols 2-D grid, each cell additionally
/// connected to its diagonal neighbour with probability `diagonal_p`, and a
/// fraction `prune_p` of grid edges removed (keeping the graph connected is
/// not guaranteed; callers wanting one component use largest_component).
/// Undirected, low-degree, large diameter - matches USA-road inputs.
CsrGraph road_grid(Vertex rows, Vertex cols, double diagonal_p, double prune_p,
                   std::uint64_t seed);

/// Connected caveman: `cliques` cliques of `clique_size` vertices, adjacent
/// cliques joined by a single bridge edge (bridges create articulation
/// points). Collaboration-network analogue. Undirected.
CsrGraph caveman(Vertex cliques, Vertex clique_size, std::uint64_t seed);

/// Uniform random recursive tree on n vertices (every non-root vertex picks
/// a random earlier parent). Every internal vertex is an articulation
/// point - the APGRE best case. Undirected.
CsrGraph random_tree(Vertex n, std::uint64_t seed);

// ---- Small deterministic shapes (unit tests & examples) -----------------

/// Path 0-1-...-(n-1). Undirected.
CsrGraph path(Vertex n);

/// Cycle on n >= 3 vertices. Undirected (biconnected: no APs).
CsrGraph cycle(Vertex n);

/// Star: centre 0 joined to 1..n-1. Undirected.
CsrGraph star(Vertex n);

/// Complete graph K_n. Undirected.
CsrGraph complete(Vertex n);

/// Complete binary tree with n vertices (vertex v's children 2v+1, 2v+2).
CsrGraph binary_tree(Vertex n);

/// Two cliques of size `clique` joined by a path of `bridge` extra
/// vertices; the classic articulation-point stress shape.
CsrGraph barbell(Vertex clique, Vertex bridge);

/// The 13-vertex directed example of paper Figure 3(a). Vertices 2, 3 and 6
/// are articulation points of its undirected projection.
CsrGraph paper_figure3();

}  // namespace apgre
