// Breadth-first-search utilities shared by analyses and examples:
// single/multi-source distance maps, reachability counts, eccentricity and
// pseudo-diameter estimation (double-sweep heuristic).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace apgre {

/// Distance label for unreachable vertices.
inline constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);

/// BFS distances from `source` following out-arcs.
std::vector<std::uint32_t> bfs_distances(const CsrGraph& g, Vertex source);

/// BFS distances from multiple sources (distance to the nearest source).
std::vector<std::uint32_t> bfs_distances(const CsrGraph& g,
                                         const std::vector<Vertex>& sources);

/// Number of vertices reachable from `source` (excluding itself).
std::uint64_t reachable_count(const CsrGraph& g, Vertex source);

/// Eccentricity of `source`: the largest finite BFS distance from it.
std::uint32_t eccentricity(const CsrGraph& g, Vertex source);

/// Lower bound on the diameter by the double-sweep heuristic: BFS from
/// `seed`, then BFS again from the farthest vertex found, repeated
/// `sweeps` times. Exact on trees; a tight bound on most real graphs.
std::uint32_t pseudo_diameter(const CsrGraph& g, Vertex seed = 0, int sweeps = 2);

}  // namespace apgre
