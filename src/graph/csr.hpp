// Compressed Sparse Row graph — the storage format used throughout
// (paper §5.1: "the graphs are stored in Compressed Sparse Row format").
//
// A CsrGraph always stores out-adjacency. For directed graphs it also
// stores the transposed (in-)adjacency, which the BC backward sweeps, the
// reverse BFS of beta counting, and the hybrid bottom-up BFS all need. For
// undirected (symmetric) graphs in- and out-adjacency coincide and are
// shared.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "support/error.hpp"

namespace apgre {

/// Number of stored arcs. An undirected edge contributes two arcs.
using EdgeId = std::uint64_t;

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Build from an arc list. `directed == false` asserts that `edges` is
  /// symmetric is NOT checked here (builders guarantee it); it selects
  /// whether the transpose is shared or materialised.
  /// Self-loops and duplicate arcs are removed.
  static CsrGraph from_edges(Vertex num_vertices, EdgeList edges, bool directed);

  /// Convenience: build an undirected graph, adding reverse arcs for the
  /// caller (so `edges` may list each undirected edge once).
  static CsrGraph undirected_from_edges(Vertex num_vertices, EdgeList edges);

  Vertex num_vertices() const { return num_vertices_; }
  /// Stored arcs (see EdgeId doc).
  EdgeId num_arcs() const { return static_cast<EdgeId>(out_targets_.size()); }
  /// Logical edge count: arcs for directed graphs, arcs/2 for undirected.
  EdgeId num_edges() const { return directed_ ? num_arcs() : num_arcs() / 2; }
  bool directed() const { return directed_; }

  std::span<const Vertex> out_neighbors(Vertex v) const {
    APGRE_ASSERT(v < num_vertices_);
    return {out_targets_.data() + out_offsets_[v],
            out_targets_.data() + out_offsets_[v + 1]};
  }

  std::span<const Vertex> in_neighbors(Vertex v) const {
    APGRE_ASSERT(v < num_vertices_);
    const auto& offsets = directed_ ? in_offsets_ : out_offsets_;
    const auto& targets = directed_ ? in_targets_ : out_targets_;
    return {targets.data() + offsets[v], targets.data() + offsets[v + 1]};
  }

  /// Start of v's out-neighbour block in the arc array; with out_degree it
  /// gives per-arc slot indices (used by the predecessor-list algorithm).
  EdgeId out_offset(Vertex v) const {
    APGRE_ASSERT(v < num_vertices_);
    return out_offsets_[v];
  }

  /// Start of v's in-neighbour block in the transposed arc array.
  EdgeId in_offset(Vertex v) const {
    APGRE_ASSERT(v < num_vertices_);
    return directed_ ? in_offsets_[v] : out_offsets_[v];
  }

  Vertex out_degree(Vertex v) const {
    APGRE_ASSERT(v < num_vertices_);
    return static_cast<Vertex>(out_offsets_[v + 1] - out_offsets_[v]);
  }

  Vertex in_degree(Vertex v) const {
    APGRE_ASSERT(v < num_vertices_);
    const auto& offsets = directed_ ? in_offsets_ : out_offsets_;
    return static_cast<Vertex>(offsets[v + 1] - offsets[v]);
  }

  /// Undirected degree: number of distinct neighbours touching v in either
  /// direction. For undirected graphs this is out_degree.
  Vertex undirected_degree(Vertex v) const;

  /// Reconstruct the stored arc list (sorted by (src, dst)).
  EdgeList arcs() const;

  /// True if for every arc (u,v) the arc (v,u) is stored too.
  bool is_symmetric() const;

  friend bool operator==(const CsrGraph&, const CsrGraph&) = default;

  // CSR-splicing mutators (graph/mutate.hpp): clone the adjacency arrays
  // and splice one edge in or out in place — no EdgeList round-trip, no
  // re-sort. They need the private arrays, hence friendship.
  friend CsrGraph with_edge_inserted(const CsrGraph& g, Vertex u, Vertex v);
  friend CsrGraph with_edge_removed(const CsrGraph& g, Vertex u, Vertex v);

 private:
  Vertex num_vertices_ = 0;
  bool directed_ = false;
  std::vector<EdgeId> out_offsets_{0};
  std::vector<Vertex> out_targets_;
  std::vector<EdgeId> in_offsets_;   // empty when !directed_
  std::vector<Vertex> in_targets_;   // empty when !directed_
};

}  // namespace apgre
