#include "graph/mutate.hpp"

#include <algorithm>
#include <utility>

#include "support/error.hpp"

namespace apgre {

namespace {

/// Splice `dst` into (or out of) `src`'s sorted neighbour block, shifting
/// the suffix of the arc array and bumping every later offset. O(n + m)
/// element moves — the fast path that makes sustained edge updates cheap
/// compared to an EdgeList materialise / re-sort / rebuild round-trip.
void splice_arc(std::vector<EdgeId>& offsets, std::vector<Vertex>& targets,
                Vertex src, Vertex dst, bool insert) {
  const auto begin = targets.begin() + static_cast<std::ptrdiff_t>(offsets[src]);
  const auto end = targets.begin() + static_cast<std::ptrdiff_t>(offsets[src + 1]);
  const auto pos = std::lower_bound(begin, end, dst);
  if (insert) {
    APGRE_ASSERT(pos == end || *pos != dst);
    targets.insert(pos, dst);
  } else {
    APGRE_ASSERT(pos != end && *pos == dst);
    targets.erase(pos);
  }
  const EdgeId delta = insert ? 1 : static_cast<EdgeId>(-1);
  for (std::size_t w = src + 1; w < offsets.size(); ++w) offsets[w] += delta;
}

}  // namespace

bool has_arc(const CsrGraph& g, Vertex u, Vertex v) {
  const auto neighbors = g.out_neighbors(u);
  return std::binary_search(neighbors.begin(), neighbors.end(), v);
}

CsrGraph with_edge_inserted(const CsrGraph& g, Vertex u, Vertex v) {
  APGRE_ASSERT(u < g.num_vertices() && v < g.num_vertices());
  APGRE_REQUIRE(u != v, "self-loops do not affect betweenness");
  APGRE_REQUIRE(!has_arc(g, u, v), "arc already present");
  CsrGraph next = g;
  splice_arc(next.out_offsets_, next.out_targets_, u, v, /*insert=*/true);
  if (g.directed()) {
    splice_arc(next.in_offsets_, next.in_targets_, v, u, /*insert=*/true);
  } else {
    splice_arc(next.out_offsets_, next.out_targets_, v, u, /*insert=*/true);
  }
  return next;
}

CsrGraph with_edge_removed(const CsrGraph& g, Vertex u, Vertex v) {
  APGRE_ASSERT(u < g.num_vertices() && v < g.num_vertices());
  APGRE_REQUIRE(u != v, "self-loops do not affect betweenness");
  APGRE_REQUIRE(has_arc(g, u, v), "arc not present");
  if (!g.directed()) {
    APGRE_REQUIRE(has_arc(g, v, u), "symmetric arc missing");
  }
  CsrGraph next = g;
  splice_arc(next.out_offsets_, next.out_targets_, u, v, /*insert=*/false);
  if (g.directed()) {
    splice_arc(next.in_offsets_, next.in_targets_, v, u, /*insert=*/false);
  } else {
    splice_arc(next.out_offsets_, next.out_targets_, v, u, /*insert=*/false);
  }
  return next;
}

CsrGraph with_pendant_attached(const CsrGraph& g, Vertex host) {
  APGRE_ASSERT(host < g.num_vertices());
  const Vertex pendant = g.num_vertices();
  EdgeList arcs = g.arcs();
  arcs.push_back(Edge{pendant, host});
  if (!g.directed()) arcs.push_back(Edge{host, pendant});
  return CsrGraph::from_edges(pendant + 1, std::move(arcs), g.directed());
}

CsrGraph with_vertex_isolated(const CsrGraph& g, Vertex v) {
  APGRE_ASSERT(v < g.num_vertices());
  EdgeList arcs = g.arcs();
  std::erase_if(arcs, [&](const Edge& e) { return e.src == v || e.dst == v; });
  return CsrGraph::from_edges(g.num_vertices(), std::move(arcs), g.directed());
}

}  // namespace apgre
