// SNAP edge-list text format (snap.stanford.edu): '#' comment lines, then
// one "src<ws>dst" pair per line. Vertex ids are arbitrary and are
// compacted to [0, n) preserving first-appearance order.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace apgre {

struct SnapGraph {
  CsrGraph graph;
  /// compacted id -> original id from the file.
  std::vector<std::uint64_t> original_ids;
};

/// Parse a SNAP edge list. `directed` selects the stored adjacency;
/// undirected inputs get their arcs symmetrised. Throws ParseError on
/// malformed lines.
SnapGraph read_snap(std::istream& in, bool directed, const std::string& name = "<stream>");
SnapGraph read_snap_file(const std::string& path, bool directed);

/// Write the stored arcs back out (compacted ids). Round-trips with
/// read_snap for verification.
void write_snap(std::ostream& out, const CsrGraph& g);
void write_snap_file(const std::string& path, const CsrGraph& g);

}  // namespace apgre
