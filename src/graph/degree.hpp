// Degree statistics used by the structure analysis (paper Figure 2: many
// articulation points, many single-edge vertices in real graphs).
#pragma once

#include <cstdint>

#include "graph/csr.hpp"
#include "support/stats.hpp"

namespace apgre {

struct DegreeStats {
  Vertex num_vertices = 0;
  EdgeId num_arcs = 0;
  RunningStats out_degree;        // over all vertices
  Vertex max_out_degree = 0;
  /// Vertices with undirected degree exactly 1 ("single-edge vertices",
  /// the paper's total-redundancy candidates).
  Vertex pendant_count = 0;
  /// Vertices with no arcs at all.
  Vertex isolated_count = 0;
  Log2Histogram out_degree_histogram;
};

DegreeStats degree_stats(const CsrGraph& g);

/// Fraction of vertices whose undirected degree is 1.
double pendant_fraction(const CsrGraph& g);

}  // namespace apgre
