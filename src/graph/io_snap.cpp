#include "graph/io_snap.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "support/error.hpp"

namespace apgre {

SnapGraph read_snap(std::istream& in, bool directed, const std::string& name) {
  std::unordered_map<std::uint64_t, Vertex> compact;
  SnapGraph out;
  EdgeList edges;

  auto intern = [&](std::uint64_t id) {
    auto [it, inserted] = compact.emplace(id, static_cast<Vertex>(out.original_ids.size()));
    if (inserted) out.original_ids.push_back(id);
    return it->second;
  };

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    if (!(ls >> src >> dst)) {
      throw ParseError(name, line_no, "expected `src dst`, got: " + line);
    }
    edges.push_back(Edge{intern(src), intern(dst)});
  }

  const auto n = static_cast<Vertex>(out.original_ids.size());
  if (directed) {
    out.graph = CsrGraph::from_edges(n, std::move(edges), true);
  } else {
    out.graph = CsrGraph::undirected_from_edges(n, std::move(edges));
  }
  return out;
}

SnapGraph read_snap_file(const std::string& path, bool directed) {
  std::ifstream in(path);
  APGRE_REQUIRE(in.good(), "cannot open " + path);
  return read_snap(in, directed, path);
}

void write_snap(std::ostream& out, const CsrGraph& g) {
  out << "# apgre snap export: " << g.num_vertices() << " vertices, "
      << g.num_arcs() << " arcs, " << (g.directed() ? "directed" : "undirected")
      << "\n";
  for (const Edge& e : g.arcs()) {
    if (!g.directed() && e.src > e.dst) continue;  // one line per undirected edge
    out << e.src << "\t" << e.dst << "\n";
  }
}

void write_snap_file(const std::string& path, const CsrGraph& g) {
  std::ofstream out(path);
  APGRE_REQUIRE(out.good(), "cannot open " + path + " for writing");
  write_snap(out, g);
}

}  // namespace apgre
