#include "graph/io_dimacs.hpp"

#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace apgre {

CsrGraph read_dimacs(std::istream& in, bool directed, const std::string& name) {
  EdgeList edges;
  Vertex n = 0;
  bool saw_header = false;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    if (tag == 'p') {
      std::string kind;
      std::uint64_t nn = 0;
      std::uint64_t mm = 0;
      if (!(ls >> kind >> nn >> mm)) {
        throw ParseError(name, line_no, "malformed problem line: " + line);
      }
      n = static_cast<Vertex>(nn);
      edges.reserve(mm);
      saw_header = true;
    } else if (tag == 'a') {
      if (!saw_header) throw ParseError(name, line_no, "arc before problem line");
      std::uint64_t u = 0;
      std::uint64_t v = 0;
      if (!(ls >> u >> v)) {
        throw ParseError(name, line_no, "malformed arc line: " + line);
      }
      if (u == 0 || v == 0 || u > n || v > n) {
        throw ParseError(name, line_no, "vertex id out of range: " + line);
      }
      // Weight column is optional and ignored.
      edges.push_back(Edge{static_cast<Vertex>(u - 1), static_cast<Vertex>(v - 1)});
    } else {
      throw ParseError(name, line_no, std::string("unknown record tag `") + tag + "`");
    }
  }
  APGRE_REQUIRE(saw_header, name + ": missing `p sp n m` header");
  if (directed) return CsrGraph::from_edges(n, std::move(edges), true);
  return CsrGraph::undirected_from_edges(n, std::move(edges));
}

CsrGraph read_dimacs_file(const std::string& path, bool directed) {
  std::ifstream in(path);
  APGRE_REQUIRE(in.good(), "cannot open " + path);
  return read_dimacs(in, directed, path);
}

void write_dimacs(std::ostream& out, const CsrGraph& g) {
  out << "c apgre dimacs export\n";
  out << "p sp " << g.num_vertices() << " " << g.num_arcs() << "\n";
  for (const Edge& e : g.arcs()) {
    out << "a " << (e.src + 1) << " " << (e.dst + 1) << " 1\n";
  }
}

void write_dimacs_file(const std::string& path, const CsrGraph& g) {
  std::ofstream out(path);
  APGRE_REQUIRE(out.good(), "cannot open " + path + " for writing");
  write_dimacs(out, g);
}

}  // namespace apgre
