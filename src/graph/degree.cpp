#include "graph/degree.hpp"

namespace apgre {

DegreeStats degree_stats(const CsrGraph& g) {
  DegreeStats stats;
  stats.num_vertices = g.num_vertices();
  stats.num_arcs = g.num_arcs();
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const Vertex out = g.out_degree(v);
    stats.out_degree.add(static_cast<double>(out));
    stats.max_out_degree = std::max(stats.max_out_degree, out);
    stats.out_degree_histogram.add(out);
    const Vertex und = g.undirected_degree(v);
    if (und == 1) ++stats.pendant_count;
    if (und == 0) ++stats.isolated_count;
  }
  return stats;
}

double pendant_fraction(const CsrGraph& g) {
  if (g.num_vertices() == 0) return 0.0;
  const DegreeStats stats = degree_stats(g);
  return static_cast<double>(stats.pendant_count) /
         static_cast<double>(g.num_vertices());
}

}  // namespace apgre
