#include "graph/edge_list.hpp"

#include <algorithm>

namespace apgre {

void sort_unique(EdgeList& edges) {
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
}

void remove_self_loops(EdgeList& edges) {
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [](const Edge& e) { return e.src == e.dst; }),
              edges.end());
}

void symmetrize(EdgeList& edges) {
  const std::size_t original = edges.size();
  edges.reserve(original * 2);
  for (std::size_t i = 0; i < original; ++i) {
    edges.push_back(Edge{edges[i].dst, edges[i].src});
  }
  sort_unique(edges);
}

Vertex min_vertex_count(const EdgeList& edges) {
  Vertex n = 0;
  for (const Edge& e : edges) {
    n = std::max(n, static_cast<Vertex>(std::max(e.src, e.dst) + 1));
  }
  return n;
}

}  // namespace apgre
