// Minimal command-line flag parser for the CLI tools and examples:
// `--name value`, `--name=value`, and bare `--bool-flag` forms, typed
// accessors with defaults, and generated --help text.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace apgre {

class FlagParser {
 public:
  explicit FlagParser(std::string program_description);

  FlagParser& add_string(const std::string& name, std::string default_value,
                         const std::string& help);
  FlagParser& add_int(const std::string& name, std::int64_t default_value,
                      const std::string& help);
  FlagParser& add_double(const std::string& name, double default_value,
                         const std::string& help);
  FlagParser& add_bool(const std::string& name, bool default_value,
                       const std::string& help);

  /// Parse argv; returns positional (non-flag) arguments in order. Throws
  /// OptionError on unknown flags or malformed values. `--help` sets
  /// help_requested().
  std::vector<std::string> parse(int argc, const char* const* argv);

  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  bool help_requested() const { return help_requested_; }
  std::string help() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    Type type;
    std::string value;  // canonical textual form
    std::string default_value;
    std::string help;
  };

  const Flag& flag(const std::string& name, Type expected) const;

  std::string description_;
  std::map<std::string, Flag> flags_;
  bool help_requested_ = false;
};

}  // namespace apgre
