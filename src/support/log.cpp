#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace apgre {
namespace {

LogLevel parse_env_level() {
  const char* env = std::getenv("APGRE_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<LogLevel>& threshold_storage() {
  static std::atomic<LogLevel> level{parse_env_level()};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_threshold() { return threshold_storage().load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) {
  threshold_storage().store(level, std::memory_order_relaxed);
}

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[apgre %s] %s\n", level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace apgre
