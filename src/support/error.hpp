// Error handling primitives for the APGRE library.
//
// We follow the C++ Core Guidelines split between preconditions (programmer
// errors, checked with APGRE_ASSERT in all build types because graph code is
// index-heavy and silent OOB corrupts results) and runtime failures
// (malformed input files, impossible requests) which throw apgre::Error.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace apgre {

/// Base exception for all recoverable library failures (bad input files,
/// invalid user-supplied options, ...). Carries a human-readable message.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an input file cannot be parsed.
class ParseError : public Error {
 public:
  ParseError(const std::string& file, std::size_t line, const std::string& what)
      : Error(file + ":" + std::to_string(line) + ": " + what) {}
};

/// Thrown when user-supplied options are inconsistent.
class OptionError : public Error {
 public:
  using Error::Error;
};

/// Error category of a Status.
enum class StatusCode {
  kOk,
  kInvalidOption,  ///< caller-supplied options are inconsistent / out of range
  kFailed,         ///< the computation itself failed (recoverable)
};

/// Value-style error channel for APIs that must not throw on bad input
/// (bc::betweenness / bc::Solver::solve report option problems here; see
/// docs/API.md). Default-constructed Status is OK.
struct Status {
  StatusCode code = StatusCode::kOk;
  std::string message;

  bool ok() const { return code == StatusCode::kOk; }
  static Status Ok() { return {}; }
  static Status invalid_option(std::string msg) {
    return {StatusCode::kInvalidOption, std::move(msg)};
  }
  static Status failed(std::string msg) {
    return {StatusCode::kFailed, std::move(msg)};
  }
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": assertion `" << expr << "` failed";
  if (!msg.empty()) os << ": " << msg;
  throw std::logic_error(os.str());
}
}  // namespace detail

}  // namespace apgre

/// Precondition / invariant check, active in every build type. Graph kernels
/// are bounds-sensitive; a violated invariant must stop the run, not corrupt
/// BC scores.
#define APGRE_ASSERT(expr)                                                  \
  do {                                                                      \
    if (!(expr)) ::apgre::detail::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define APGRE_ASSERT_MSG(expr, msg)                                          \
  do {                                                                       \
    if (!(expr)) ::apgre::detail::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

/// Runtime requirement on user input; throws apgre::Error.
#define APGRE_REQUIRE(expr, msg)                       \
  do {                                                 \
    if (!(expr)) throw ::apgre::Error(msg);            \
  } while (0)
