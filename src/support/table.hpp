// ASCII / markdown table renderer used by every benchmark binary to print
// rows in the same layout as the paper's tables.
#pragma once

#include <string>
#include <vector>

namespace apgre {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// fixed precision. Rendering pads each column to its widest cell.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 2);
  Table& cell(std::uint64_t value);
  Table& cell(std::int64_t value);
  Table& cell(int value);
  /// "-" placeholder, mirroring the paper's missing entries.
  Table& dash();

  /// Render with box-drawing separators for terminals.
  std::string to_string() const;
  /// Render as GitHub-flavoured markdown (used by EXPERIMENTS.md capture).
  std::string to_markdown() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace apgre
