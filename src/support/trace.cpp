#include "support/trace.hpp"

#if APGRE_TRACE_ENABLED

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

namespace apgre {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point trace_epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

double now_seconds() {
  return std::chrono::duration<double>(Clock::now() - trace_epoch()).count();
}

/// Per-thread span buffer. The owning thread appends finished spans and the
/// collector drains them; `mu` arbitrates only that hand-off. depth and
/// next_sequence are touched by the owning thread alone.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<SpanRecord> done;
  int thread_index = 0;
  int depth = 0;
  std::uint64_t next_sequence = 0;
};

struct BufferRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

BufferRegistry& registry() {
  // Leaked on purpose: worker threads (e.g. the OpenMP pool) may still close
  // spans during static destruction, after a function-local static registry
  // would have been torn down.
  static BufferRegistry* r = new BufferRegistry;
  return *r;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto fresh = std::make_shared<ThreadBuffer>();
    BufferRegistry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    fresh->thread_index = static_cast<int>(r.buffers.size());
    // The registry keeps the buffer alive past thread exit so spans closed
    // just before the thread died still reach the next collect_spans().
    r.buffers.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

}  // namespace

TraceSpan::TraceSpan(std::string name) : name_(std::move(name)) {
  ThreadBuffer& buffer = local_buffer();
  depth_ = buffer.depth++;
  sequence_ = buffer.next_sequence++;
  start_seconds_ = now_seconds();
}

TraceSpan::~TraceSpan() {
  const double end = now_seconds();
  ThreadBuffer& buffer = local_buffer();
  --buffer.depth;
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.done.push_back(SpanRecord{std::move(name_), start_seconds_, end,
                                   buffer.thread_index, depth_, sequence_});
}

std::vector<SpanRecord> collect_spans() {
  std::vector<SpanRecord> out;
  BufferRegistry& r = registry();
  std::lock_guard<std::mutex> registry_lock(r.mu);
  for (auto& buffer : r.buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    out.insert(out.end(), std::make_move_iterator(buffer->done.begin()),
               std::make_move_iterator(buffer->done.end()));
    buffer->done.clear();
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_seconds < b.start_seconds;
                   });
  return out;
}

void clear_spans() { (void)collect_spans(); }

}  // namespace apgre

#endif  // APGRE_TRACE_ENABLED
