// Wall-clock timing helpers used by benchmarks and APGRE's per-phase
// execution breakdown (paper Figure 8).
#pragma once

#include <chrono>

namespace apgre {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed wall time into a double on scope exit. Used to build
/// phase breakdowns without sprinkling explicit stop() calls.
class ScopedTimer {
 public:
  explicit ScopedTimer(double& sink) : sink_(sink) {}
  ~ScopedTimer() { sink_ += timer_.seconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double& sink_;
  Timer timer_;
};

}  // namespace apgre
