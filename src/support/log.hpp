// Minimal leveled logging to stderr. Benchmarks and examples use it for
// progress lines; the library itself only logs at debug level.
#pragma once

#include <sstream>
#include <string>

namespace apgre {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded. Initialised from the
/// APGRE_LOG environment variable (debug/info/warn/error/off), default warn.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

/// Stream-style one-shot logger: LOG(kInfo) << "built " << n << " subgraphs";
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (level_ >= log_threshold()) detail::log_emit(level_, os_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace apgre

#define APGRE_LOG(level) ::apgre::LogLine(::apgre::LogLevel::level)
