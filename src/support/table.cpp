#include "support/table.hpp"

#include <cstdint>
#include <iomanip>
#include <sstream>

#include "support/error.hpp"

namespace apgre {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  APGRE_ASSERT(!header_.empty());
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& value) {
  APGRE_ASSERT_MSG(!rows_.empty(), "call row() before cell()");
  APGRE_ASSERT_MSG(rows_.back().size() < header_.size(), "row has too many cells");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }

Table& Table::dash() { return cell("-"); }

namespace {

std::vector<std::size_t> column_widths(const std::vector<std::string>& header,
                                       const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  return widths;
}

void append_row(std::ostringstream& os, const std::vector<std::string>& cells,
                const std::vector<std::size_t>& widths, const char* sep) {
  os << sep;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    const std::string& value = c < cells.size() ? cells[c] : std::string();
    os << " " << value << std::string(widths[c] - value.size(), ' ') << " " << sep;
  }
  os << "\n";
}

}  // namespace

std::string Table::to_string() const {
  const auto widths = column_widths(header_, rows_);
  std::ostringstream os;
  std::ostringstream rule;
  rule << "+";
  for (std::size_t w : widths) rule << std::string(w + 2, '-') << "+";
  rule << "\n";

  os << rule.str();
  append_row(os, header_, widths, "|");
  os << rule.str();
  for (const auto& row : rows_) append_row(os, row, widths, "|");
  os << rule.str();
  return os.str();
}

std::string Table::to_markdown() const {
  const auto widths = column_widths(header_, rows_);
  std::ostringstream os;
  append_row(os, header_, widths, "|");
  os << "|";
  for (std::size_t w : widths) os << std::string(w + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) append_row(os, row, widths, "|");
  return os.str();
}

}  // namespace apgre
