// Thin OpenMP wrappers.
//
// The paper implemented APGRE in CilkPlus (cilk_for + reducer bags); gcc 12
// no longer ships CilkPlus, so this reproduction uses OpenMP. Everything the
// algorithms need from the runtime goes through this header so the choice is
// swappable and testable.
#pragma once

#include <cstddef>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace apgre {

/// Number of threads an upcoming parallel region will use.
inline int num_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Caller's thread id inside a parallel region (0 outside one).
inline int thread_id() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// Set the global thread budget (used by the scaling benchmarks).
inline void set_num_threads(int n) {
#ifdef _OPENMP
  omp_set_num_threads(n);
#else
  (void)n;
#endif
}

/// RAII guard that overrides the thread budget and restores it on exit.
class ThreadBudget {
 public:
  explicit ThreadBudget(int n) : saved_(num_threads()) { set_num_threads(n); }
  ~ThreadBudget() { set_num_threads(saved_); }
  ThreadBudget(const ThreadBudget&) = delete;
  ThreadBudget& operator=(const ThreadBudget&) = delete;

 private:
  int saved_;
};

/// One value of T per thread, padded to a cache line to avoid false sharing.
/// Used for per-thread BC score buffers in the coarse-grained algorithms.
template <typename T>
class PerThread {
 public:
  PerThread() : slots_(static_cast<std::size_t>(num_threads())) {}
  explicit PerThread(const T& init)
      : slots_(static_cast<std::size_t>(num_threads()), Padded{init}) {}

  T& local() { return slots_[static_cast<std::size_t>(thread_id())].value; }
  T& operator[](std::size_t i) { return slots_[i].value; }
  std::size_t size() const { return slots_.size(); }

 private:
  struct alignas(64) Padded {
    T value;
  };
  std::vector<Padded> slots_;
};

}  // namespace apgre
