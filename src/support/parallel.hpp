// Thin OpenMP wrappers.
//
// The paper implemented APGRE in CilkPlus (cilk_for + reducer bags); gcc 12
// no longer ships CilkPlus, so this reproduction uses OpenMP. Everything the
// algorithms need from the runtime goes through this header so the choice is
// swappable and testable.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

// ThreadSanitizer interop. gcc's libgomp synchronises fork/join barriers
// and `omp critical` with raw futexes TSan cannot see, so every OpenMP
// region would report false races between perfectly ordered accesses. The
// kernels bracket their parallel regions and critical sections with the
// fences below, which restate the happens-before edges libgomp really
// provides through TSan's annotation interface. Everything compiles to
// nothing outside -fsanitize=thread builds (APGRE_SANITIZE=thread).
#if defined(__SANITIZE_THREAD__)
#define APGRE_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define APGRE_TSAN_ENABLED 1
#endif
#endif
#ifndef APGRE_TSAN_ENABLED
#define APGRE_TSAN_ENABLED 0
#endif

#if APGRE_TSAN_ENABLED
extern "C" {
void __tsan_acquire(void* addr);
void __tsan_release(void* addr);
}
#endif

namespace apgre {

namespace detail {
#if APGRE_TSAN_ENABLED
// One global fence tag: a release merges the releasing thread's clock into
// the tag, an acquire joins the tag into the acquiring thread, so the tag
// accumulates edges from every fenced region. Spurious extra edges only
// ever run through the fence call sites — the region boundaries libgomp
// genuinely synchronises — so intra-region races stay detectable.
inline char tsan_fence_tag;
inline void tsan_fence_release() { __tsan_release(&tsan_fence_tag); }
inline void tsan_fence_acquire() { __tsan_acquire(&tsan_fence_tag); }
#else
inline void tsan_fence_release() {}
inline void tsan_fence_acquire() {}
#endif
}  // namespace detail

/// Call immediately before opening a parallel region (main thread):
/// publishes the pre-region writes to the workers' entry fences.
inline void omp_fork_fence() { detail::tsan_fence_release(); }

/// First statement inside the region, every worker: observes the writes
/// published by omp_fork_fence() and by prior regions' exit fences.
inline void omp_worker_entry_fence() { detail::tsan_fence_acquire(); }

/// Last statement inside the region, every worker: publishes this worker's
/// writes to the join fence and to the next region's entry fences.
inline void omp_worker_exit_fence() { detail::tsan_fence_release(); }

/// Call immediately after the region's closing brace (main thread):
/// observes every worker's exit fence, mirroring the real join barrier.
inline void omp_join_fence() { detail::tsan_fence_acquire(); }

/// Bracket the body of an `omp critical` section (entry / exit): libgomp's
/// lock is futex-based and invisible to TSan as well.
inline void omp_critical_entry_fence() { detail::tsan_fence_acquire(); }
inline void omp_critical_exit_fence() { detail::tsan_fence_release(); }

// Region-context idiom. The fences above cannot order one class of access:
// gcc outlines a `#pragma omp parallel` body into `<fn>._omp_fn` and passes
// every referenced enclosing local through a stack capture block whose
// stores are emitted at the pragma itself — after omp_fork_fence() runs —
// so pool-reused workers' loads of that block race under TSan. Kernels that
// must stay TSan-clean therefore reference *no* enclosing locals inside
// their regions: each file keeps a namespace-scope context pointer, the
// forking thread points it at a stack context struct *before*
// omp_fork_fence(), and the body dereferences it after
// omp_worker_entry_fence(). The pointer store/load are ordinary
// instrumented accesses, so the fence pair gives them the happens-before
// edge the capture block can never get. Consequence: such kernels are not
// reentrant from concurrent caller threads — the same constraint libgomp's
// shared worker pool already imposes.

/// Serializes whole invocations of the region-context OpenMP kernels (the
/// consequence above made concrete). Each such kernel locks this for its
/// full duration — from publishing its context pointer to clearing it — so
/// concurrent caller threads (the BC service's worker pool) can invoke any
/// of them without racing on the file-scope pointers. Recursive because
/// one legacy kernel may call another (apgre's flat path runs the
/// fine-grained sub-graph kernel, which also locks). Scheduler-native
/// kernels (support/sched/) never take this lock — that is the point of
/// their existence; see DESIGN.md "Reentrant scheduler".
inline std::recursive_mutex& legacy_omp_kernel_mutex() {
  static std::recursive_mutex mu;
  return mu;
}

/// Number of threads an upcoming parallel region will use.
inline int num_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Caller's thread id inside a parallel region (0 outside one).
inline int thread_id() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// Set the global thread budget (used by the scaling benchmarks).
inline void set_num_threads(int n) {
#ifdef _OPENMP
  omp_set_num_threads(n);
#else
  (void)n;
#endif
}

/// RAII guard that overrides the thread budget and restores it on exit.
class ThreadBudget {
 public:
  explicit ThreadBudget(int n) : saved_(num_threads()) { set_num_threads(n); }
  ~ThreadBudget() { set_num_threads(saved_); }
  ThreadBudget(const ThreadBudget&) = delete;
  ThreadBudget& operator=(const ThreadBudget&) = delete;

 private:
  int saved_;
};

/// One value of T per thread, padded to a cache line to avoid false sharing.
/// Used for per-thread BC score buffers in the coarse-grained algorithms.
template <typename T>
class PerThread {
 public:
  PerThread() : slots_(static_cast<std::size_t>(num_threads())) {}
  explicit PerThread(const T& init)
      : slots_(static_cast<std::size_t>(num_threads()), Padded{init}) {}

  T& local() { return slots_[static_cast<std::size_t>(thread_id())].value; }
  T& operator[](std::size_t i) { return slots_[i].value; }
  std::size_t size() const { return slots_.size(); }

 private:
  struct alignas(64) Padded {
    T value;
  };
  std::vector<Padded> slots_;
};

}  // namespace apgre
