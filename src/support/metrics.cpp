#include "support/metrics.hpp"

#include "support/error.hpp"

namespace apgre {

void Histogram::observe(std::uint64_t value) {
  std::size_t bucket = 0;
  if (value > 0) bucket = static_cast<std::size_t>(63 - __builtin_clzll(value));
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> Histogram::buckets() const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  for (std::size_t k = 0; k < counts_.size(); ++k) {
    const std::uint64_t count = counts_[k].load(std::memory_order_relaxed);
    if (count == 0) continue;
    out.emplace_back(std::uint64_t{1} << k, count);
  }
  return out;
}

void Histogram::reset() {
  for (auto& bucket : counts_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry::Entry& MetricsRegistry::entry(std::string_view name,
                                               MetricKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(std::string(name), Entry{}).first;
    it->second.kind = kind;
    switch (kind) {
      case MetricKind::kCounter:
        it->second.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        it->second.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        it->second.histogram = std::make_unique<Histogram>();
        break;
    }
  } else if (it->second.kind != kind) {
    throw Error("metric `" + std::string(name) +
                "` already registered as a different kind");
  }
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return *entry(name, MetricKind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return *entry(name, MetricKind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return *entry(name, MetricKind::kHistogram).histogram;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : entries_) {
    switch (e.kind) {
      case MetricKind::kCounter: e.counter->reset(); break;
      case MetricKind::kGauge: e.gauge->reset(); break;
      case MetricKind::kHistogram: e.histogram->reset(); break;
    }
  }
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::vector<MetricSample> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        sample.number = static_cast<double>(e.counter->value());
        break;
      case MetricKind::kGauge:
        sample.number = e.gauge->value();
        break;
      case MetricKind::kHistogram:
        sample.number = static_cast<double>(e.histogram->count());
        sample.buckets = e.histogram->buckets();
        sample.histogram_sum = e.histogram->sum();
        break;
    }
    out.push_back(std::move(sample));
  }
  return out;  // std::map iteration order is already name-sorted
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose, mirroring the trace buffer registry: pooled worker
  // threads may report after main's statics are destroyed.
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

}  // namespace apgre
