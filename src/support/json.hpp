// Minimal JSON value with a parser and serializer, for the observability
// artifacts (BENCH_<rev>.json) and their schema round-trip tests. Covers
// the subset those files use — null, bool, finite numbers, strings with
// standard escapes (incl. \uXXXX input), arrays, objects — not a general
// JSON library. Objects are std::map, so serialization is deterministic
// (key-sorted), which keeps artifact diffs reviewable.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace apgre {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(int i) : value_(static_cast<double>(i)) {}
  JsonValue(std::int64_t i) : value_(static_cast<double>(i)) {}
  JsonValue(std::uint64_t u) : value_(static_cast<double>(u)) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(Array a) : value_(std::move(a)) {}
  JsonValue(Object o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  /// Typed accessors; throw Error on kind mismatch.
  bool as_bool() const;
  double as_double() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  /// Object field access. at() throws Error when absent; get() returns a
  /// fallback. operator[] inserts (converting null to an object first), for
  /// building documents.
  bool contains(const std::string& key) const;
  const JsonValue& at(const std::string& key) const;
  double get(const std::string& key, double fallback) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  JsonValue& operator[](const std::string& key);

  /// Array append (converting null to an array first).
  void push_back(JsonValue element);

  /// Serialize. indent > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

  /// Parse a complete document; trailing non-whitespace or malformed input
  /// throws ParseError with a line number.
  static JsonValue parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

}  // namespace apgre
