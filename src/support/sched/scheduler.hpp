// Reentrant two-level work-stealing task scheduler.
//
// The paper's headline speedup needs *two-level* parallelism: coarse tasks
// per (sub-graph, root-batch) pair plus fine parallelism inside the largest
// sub-graphs. A flat `#pragma omp for` over sub-graphs serializes on skewed
// decompositions (one giant biconnected component plus thousands of tiny
// ones — the norm, per the paper's Figure 2). This scheduler fixes the skew:
// every worker owns a Chase-Lev deque (sched/chase_lev.hpp); an idle worker
// steals the oldest task from a victim chosen by `steal_policy`. Tasks may
// spawn subtasks onto their own deque, which thieves then relieve.
//
// Reentrancy. run() and parallel_for() are join-counted: each call owns a
// private completion group, so any number of caller threads can drive the
// same scheduler concurrently — the substrate the concurrent BC service
// needs (service/service.hpp used to serialize every parallel solve behind
// a process-wide mutex; DESIGN.md "Reentrant scheduler" records the
// design tradeoff). Calls from inside a task nest: a task body may open a
// parallel_for (the level-synchronous BC kernels do, once per BFS level)
// or even a whole run(). Pool threads are started lazily on first use and
// sleep on a condition variable when the system drains.
//
// Worker ids vs slots. num_workers() is the parallelism degree (`threads`,
// or the OpenMP budget when 0). Task bodies receive a *slot* id in
// [0, num_slots()); slots extend the pool with entries for external caller
// threads that participate while their group runs, so num_slots() — not
// num_workers() — is the dimension for per-slot buffers. At most one
// thread occupies a slot at a time, so slot-indexed state needs no locks.
//
// With num_workers() == 1 every call executes inline on the calling
// thread in deterministic order: no pool, no steals, bitwise-reproducible
// accumulation (the Solver determinism tests pin this configuration).
//
// Observability: every run() reports into the metrics registry
// (`sched.tasks`, `sched.steals`, `sched.failed_steals`, task-latency
// histogram `sched.task_micros`, nesting histogram `sched.nested_depth`,
// gauges `sched.idle_seconds` / `sched.run_seconds` / `sched.workers` /
// `sched.concurrent_runs`) and opens a `sched/run` trace span;
// parallel_for opens `sched/parallel_for` when it actually goes parallel.
// docs/OBSERVABILITY.md documents the names.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace apgre {

namespace sched_detail {
struct RunGroup;   // join counter + error slot for one run()/parallel_for
struct TaskNode;   // heap task: body + owning group (+ loop keepalive)
struct TlsContext; // per-thread {scheduler, slot, group, nesting} record
}  // namespace sched_detail

/// Victim selection for idle workers.
enum class StealPolicy {
  kRandom,      ///< uniformly random victim per attempt (classic Cilk)
  kSequential,  ///< round-robin sweep starting after the thief's own id
};

/// Parse / print steal-policy names ("random", "sequential").
StealPolicy steal_policy_from_name(const std::string& name);
std::string steal_policy_name(StealPolicy policy);

struct SchedulerOptions {
  /// Route APGRE's per-sub-graph work through the scheduler (the flat
  /// OpenMP loop remains available with enabled = false).
  bool enabled = true;
  /// Worker count; 0 uses the OpenMP thread budget (support/parallel.hpp),
  /// so BcOptions::threads caps the scheduler too.
  int threads = 0;
  /// Roots per fine-grained (sub-graph, root-batch) task when a large
  /// sub-graph is split; 0 picks roots / (4 * workers), at least 1.
  int grain = 0;
  StealPolicy steal_policy = StealPolicy::kRandom;
  /// Choose the per-sub-graph kernel adaptively (bc/apgre.cpp): large
  /// sub-graphs with too few roots to split become dedicated tasks running
  /// the scheduler-native level-synchronous kernel (nested parallel_for);
  /// everything else becomes root-batch tasks running the serial kernel.
  /// When false, every sub-graph is root-batch-scheduled.
  bool adaptive_kernel = true;
};

/// One run()'s outcome (also mirrored into the metrics registry). Steals
/// count acquisitions of *this group's* tasks by any thread; failed steals
/// and idle time are the owning caller's own tallies (pool-thread idle
/// time is not attributable to a single group once runs overlap).
struct SchedulerStats {
  std::uint64_t tasks = 0;          ///< tasks executed (initial + spawned)
  std::uint64_t steals = 0;         ///< successful steals of group tasks
  std::uint64_t failed_steals = 0;  ///< caller steal attempts finding nothing
  double idle_seconds = 0.0;        ///< caller time spent waiting/stealing
  double run_seconds = 0.0;         ///< wall time of the run() call
  int workers = 0;
};

class WorkStealingScheduler {
 public:
  /// A task; receives the executing thread's slot id [0, num_slots()) so
  /// task bodies can index per-slot buffers race-free.
  using Task = std::function<void(int)>;
  /// A parallel_for body: processes [begin, end) on slot `slot`.
  using LoopBody = std::function<void(std::int64_t begin, std::int64_t end,
                                      int slot)>;

  explicit WorkStealingScheduler(const SchedulerOptions& opts = {});
  ~WorkStealingScheduler();
  WorkStealingScheduler(const WorkStealingScheduler&) = delete;
  WorkStealingScheduler& operator=(const WorkStealingScheduler&) = delete;

  int num_workers() const { return workers_; }
  /// Upper bound (exclusive) on the slot ids task bodies can observe:
  /// pool workers plus external participant slots. Size per-slot buffers
  /// with this, never with num_workers().
  int num_slots() const { return num_slots_; }
  const SchedulerOptions& options() const { return opts_; }

  /// Execute every task (and everything they spawn) to completion and
  /// return the group's stats. The calling thread participates. Reentrant:
  /// concurrent run() calls from different threads share the pool, and a
  /// task body may itself call run() or parallel_for(). The first
  /// exception thrown by a task in this group is rethrown here after the
  /// group has drained (other groups are unaffected).
  SchedulerStats run(std::vector<Task> tasks);

  /// Push a subtask onto slot `slot`'s deque, joining the current group.
  /// Only valid from the thread currently occupying `slot` (i.e. from
  /// inside a task body, passing its own slot id).
  void spawn(int slot, Task task);

  /// Divide [begin, end) into chunks of ~`grain` (0 picks one) and execute
  /// `body(lo, hi, slot)` across the pool; returns when every index has
  /// been processed. Callable from anywhere: outside the scheduler, from
  /// inside a task, or nested inside another parallel_for. The calling
  /// thread claims chunks too, so a 1-worker scheduler executes the whole
  /// range inline.
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const LoopBody& body);

  /// Process-wide scheduler sized to the machine, shared by every caller
  /// with default pool options (threads == 0, random stealing); reentrancy
  /// makes the sharing safe, and a shared pool keeps N concurrent solves
  /// from oversubscribing the cores with N private pools.
  static WorkStealingScheduler& shared();

 private:
  struct State;

  void ensure_pool();
  void pool_loop(int slot);
  void execute(sched_detail::TaskNode* node, int slot);
  bool try_steal(int thief_slot, std::uint64_t& rng,
                 sched_detail::TaskNode*& out, std::uint64_t& failed);
  void publish(int slot, sched_detail::TaskNode* node);
  void wake_sleepers();
  int acquire_participant_slot();
  void release_participant_slot(int slot);
  SchedulerStats run_inline(std::vector<Task> tasks);

  SchedulerOptions opts_;
  int workers_ = 1;
  int num_slots_ = 1;
  std::unique_ptr<State> state_;
};

}  // namespace apgre
