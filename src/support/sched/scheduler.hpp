// Two-level work-stealing task scheduler.
//
// The paper's headline speedup needs *two-level* parallelism: coarse tasks
// per (sub-graph, root-batch) pair plus fine parallelism inside the largest
// sub-graphs. A flat `#pragma omp for` over sub-graphs serializes on skewed
// decompositions (one giant biconnected component plus thousands of tiny
// ones — the norm, per the paper's Figure 2). This scheduler fixes the skew:
// every worker owns a Chase-Lev deque (sched/chase_lev.hpp); initial tasks
// are distributed round-robin; an idle worker steals the oldest task from a
// victim chosen by `steal_policy`. Tasks may spawn subtasks onto their
// worker's own deque, which thieves then relieve.
//
// Workers are plain std::threads (not an OpenMP team): task bodies must not
// open OpenMP parallel regions — the caller runs level-synchronous OpenMP
// kernels *before* run(), on sub-graphs too coarse to split (see
// bc/apgre.cpp). With one worker, run() executes inline on the calling
// thread: no threads, no steals, no atomic churn beyond the deque itself.
//
// Observability: every run() reports into the metrics registry
// (`sched.tasks`, `sched.steals`, `sched.failed_steals`, task-latency
// histogram `sched.task_micros`, gauges `sched.idle_seconds` /
// `sched.run_seconds` / `sched.workers`) and opens a `sched/run` trace
// span; the returned SchedulerStats carries the same numbers for the
// caller's own stats structs. docs/OBSERVABILITY.md documents the names.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace apgre {

/// Victim selection for idle workers.
enum class StealPolicy {
  kRandom,      ///< uniformly random victim per attempt (classic Cilk)
  kSequential,  ///< round-robin sweep starting after the thief's own id
};

/// Parse / print steal-policy names ("random", "sequential").
StealPolicy steal_policy_from_name(const std::string& name);
std::string steal_policy_name(StealPolicy policy);

struct SchedulerOptions {
  /// Route APGRE's per-sub-graph work through the scheduler (the flat
  /// OpenMP loop remains available with enabled = false).
  bool enabled = true;
  /// Worker count; 0 uses the OpenMP thread budget (support/parallel.hpp),
  /// so BcOptions::threads caps the scheduler too.
  int threads = 0;
  /// Roots per fine-grained (sub-graph, root-batch) task when a large
  /// sub-graph is split; 0 picks roots / (4 * workers), at least 1.
  int grain = 0;
  StealPolicy steal_policy = StealPolicy::kRandom;
  /// Choose the per-sub-graph kernel adaptively (bc/apgre.cpp): large
  /// sub-graphs with too few roots to split run the level-synchronous
  /// OpenMP kernel whole; everything else becomes scheduler tasks running
  /// the serial kernel. When false, every sub-graph is task-scheduled.
  bool adaptive_kernel = true;
};

/// One run()'s outcome (also mirrored into the metrics registry).
struct SchedulerStats {
  std::uint64_t tasks = 0;          ///< tasks executed (initial + spawned)
  std::uint64_t steals = 0;         ///< successful steals
  std::uint64_t failed_steals = 0;  ///< steal attempts that found nothing
  double idle_seconds = 0.0;        ///< time spent stealing/waiting, summed
  double run_seconds = 0.0;         ///< wall time of the run() call
  int workers = 0;
};

class WorkStealingScheduler {
 public:
  /// A task; receives the executing worker's id [0, num_workers()) so task
  /// bodies can index per-worker buffers race-free.
  using Task = std::function<void(int)>;

  explicit WorkStealingScheduler(const SchedulerOptions& opts = {});

  int num_workers() const { return workers_; }
  const SchedulerOptions& options() const { return opts_; }

  /// Execute every task (and everything they spawn) to completion and
  /// return the run's stats. The calling thread participates as worker 0.
  /// The first exception thrown by a task is rethrown here after all
  /// remaining tasks have drained. Not reentrant: one run() at a time.
  SchedulerStats run(std::vector<Task> tasks);

  /// Push a subtask onto `worker`'s own deque. Only valid from inside a
  /// task currently executing on that worker.
  void spawn(int worker, Task task);

 private:
  struct RunState;
  void worker_loop(RunState& state, int worker);

  SchedulerOptions opts_;
  int workers_ = 1;
  RunState* active_ = nullptr;
};

}  // namespace apgre
