// Chase-Lev work-stealing deque (Chase & Lev, SPAA'05, with the C11
// memory-order treatment of Le et al., PPoPP'13).
//
// One owner thread pushes and pops at the bottom (LIFO — keeps the owner on
// its own recently-spawned, cache-warm tasks); any number of thief threads
// steal from the top (FIFO — thieves take the oldest, typically largest,
// task). The ring buffer grows geometrically; retired rings are kept alive
// until destruction because a concurrent thief may still hold a pointer to
// an old ring (its [top, bottom) window is identical in every live ring, so
// a stale read is still a valid value and the CAS on `top_` arbitrates
// ownership either way).
//
// Memory orders are deliberately conservative (seq_cst at the owner/thief
// rendezvous points instead of standalone fences): the deque hands out
// millisecond-scale BC tasks, so the few extra synchronising instructions
// are invisible, and ThreadSanitizer — which models atomic operations but
// not standalone fences — can verify the protocol in the stress tier.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "support/error.hpp"

namespace apgre {

template <typename T>
class ChaseLevDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "slots are std::atomic<T>: T must be trivially copyable");

 public:
  explicit ChaseLevDeque(std::int64_t initial_capacity = 64) {
    rings_.push_back(std::make_unique<Ring>(round_up_pow2(initial_capacity)));
    ring_.store(rings_.back().get(), std::memory_order_relaxed);
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner only: append at the bottom.
  void push(T value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* ring = ring_.load(std::memory_order_relaxed);
    if (b - t >= ring->capacity) ring = grow(ring, t, b);
    ring->slot(b).store(value, std::memory_order_relaxed);
    // The release store publishes the slot write to thieves that acquire
    // `bottom_`.
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only: take the most recently pushed element (LIFO).
  bool pop(T& out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* ring = ring_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // already empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    const T value = ring->slot(b).load(std::memory_order_relaxed);
    if (t == b) {
      // Last element: race the thieves for it via the CAS on top_.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        bottom_.store(b + 1, std::memory_order_relaxed);
        return false;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    out = value;
    return true;
  }

  /// Any thread: take the oldest element (FIFO). Returns false when the
  /// deque looks empty *or* the steal lost a race — callers treat both as
  /// "try elsewhere".
  bool steal(T& out) {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return false;
    Ring* ring = ring_.load(std::memory_order_acquire);
    const T value = ring->slot(t).load(std::memory_order_relaxed);
    // The slot read may be stale if the owner wrapped the ring since we read
    // `t` — but any such wrap implies `top_` moved, so the CAS fails and the
    // stale value is discarded.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return false;
    }
    out = value;
    return true;
  }

  /// Racy size estimate (monitoring only).
  std::int64_t size_estimate() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }

  bool empty() const { return size_estimate() == 0; }

 private:
  struct Ring {
    explicit Ring(std::int64_t cap)
        : capacity(cap),
          mask(cap - 1),
          slots(std::make_unique<std::atomic<T>[]>(static_cast<std::size_t>(cap))) {}
    std::atomic<T>& slot(std::int64_t i) { return slots[i & mask]; }

    const std::int64_t capacity;
    const std::int64_t mask;
    std::unique_ptr<std::atomic<T>[]> slots;
  };

  static std::int64_t round_up_pow2(std::int64_t n) {
    std::int64_t cap = 8;
    while (cap < n) cap <<= 1;
    return cap;
  }

  /// Owner only, called from push() when full: double the ring, copy the
  /// live window, publish, and retire (but keep) the old ring.
  Ring* grow(Ring* old, std::int64_t t, std::int64_t b) {
    rings_.push_back(std::make_unique<Ring>(old->capacity * 2));
    Ring* bigger = rings_.back().get();
    for (std::int64_t i = t; i < b; ++i) {
      bigger->slot(i).store(old->slot(i).load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
    ring_.store(bigger, std::memory_order_release);
    return bigger;
  }

  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<Ring*> ring_{nullptr};
  std::vector<std::unique_ptr<Ring>> rings_;  // owner-only; freed at destruction
};

}  // namespace apgre
