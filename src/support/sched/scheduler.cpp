#include "support/sched/scheduler.hpp"

#include <atomic>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/sched/chase_lev.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace apgre {

StealPolicy steal_policy_from_name(const std::string& name) {
  if (name == "random") return StealPolicy::kRandom;
  if (name == "sequential") return StealPolicy::kSequential;
  throw OptionError("unknown steal policy: " + name +
                    " (expected random | sequential)");
}

std::string steal_policy_name(StealPolicy policy) {
  switch (policy) {
    case StealPolicy::kRandom: return "random";
    case StealPolicy::kSequential: return "sequential";
  }
  return "?";
}

namespace {

std::uint64_t xorshift(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

}  // namespace

struct WorkStealingScheduler::RunState {
  struct alignas(64) Worker {
    ChaseLevDeque<Task*> deque;
    /// Task storage. Only the owning worker appends (std::deque never
    /// relocates existing elements), so `Task*` handed to the deque stay
    /// valid for thieves.
    std::deque<Task> arena;
    std::uint64_t executed = 0;
    std::uint64_t steals = 0;
    std::uint64_t failed_steals = 0;
    double idle_seconds = 0.0;
  };

  explicit RunState(int n) : num_workers(n) {
    workers.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) workers.push_back(std::make_unique<Worker>());
  }

  int num_workers;
  std::vector<std::unique_ptr<Worker>> workers;
  /// Tasks submitted but not yet finished; incremented *before* a task
  /// becomes stealable, decremented after it ran, so pending == 0 is the
  /// termination condition even while tasks spawn subtasks.
  std::atomic<std::uint64_t> pending{0};
  Histogram* task_micros = nullptr;
  std::mutex error_mu;
  std::exception_ptr first_error;
};

WorkStealingScheduler::WorkStealingScheduler(const SchedulerOptions& opts)
    : opts_(opts) {
  workers_ = opts.threads > 0 ? opts.threads : num_threads();
  if (workers_ < 1) workers_ = 1;
}

void WorkStealingScheduler::spawn(int worker, Task task) {
  APGRE_ASSERT_MSG(active_ != nullptr, "spawn() outside a scheduler run");
  APGRE_ASSERT(worker >= 0 && worker < active_->num_workers);
  RunState::Worker& w = *active_->workers[static_cast<std::size_t>(worker)];
  w.arena.push_back(std::move(task));
  active_->pending.fetch_add(1, std::memory_order_relaxed);
  w.deque.push(&w.arena.back());
}

void WorkStealingScheduler::worker_loop(RunState& state, int worker) {
  RunState::Worker& me = *state.workers[static_cast<std::size_t>(worker)];
  std::uint64_t rng =
      0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(worker + 1) + 1;

  auto execute = [&](Task* task) {
    Timer task_timer;
    try {
      (*task)(worker);
    } catch (...) {
      std::lock_guard<std::mutex> lock(state.error_mu);
      if (!state.first_error) state.first_error = std::current_exception();
    }
    if (state.task_micros != nullptr) {
      state.task_micros->observe(
          static_cast<std::uint64_t>(task_timer.seconds() * 1e6));
    }
    ++me.executed;
    state.pending.fetch_sub(1, std::memory_order_acq_rel);
  };

  Task* task = nullptr;
  for (;;) {
    if (me.deque.pop(task)) {
      execute(task);
      continue;
    }
    if (state.pending.load(std::memory_order_acquire) == 0) break;

    // Idle: sweep victims until a steal lands or all work has drained.
    Timer idle;
    bool got = false;
    while (!got && state.pending.load(std::memory_order_acquire) != 0) {
      for (int attempt = 0; attempt < state.num_workers && !got; ++attempt) {
        int victim;
        if (opts_.steal_policy == StealPolicy::kRandom) {
          victim = static_cast<int>(xorshift(rng) %
                                    static_cast<std::uint64_t>(state.num_workers));
        } else {
          victim = (worker + 1 + attempt) % state.num_workers;
        }
        if (victim == worker) {
          // A task spawned between our failed pop and now lives in our own
          // deque; take it the cheap way.
          got = me.deque.pop(task);
          continue;
        }
        if (state.workers[static_cast<std::size_t>(victim)]->deque.steal(task)) {
          got = true;
          ++me.steals;
        } else {
          ++me.failed_steals;
        }
      }
      if (!got) std::this_thread::yield();
    }
    me.idle_seconds += idle.seconds();
    if (!got) break;  // pending drained to zero while we were stealing
    execute(task);
  }
}

SchedulerStats WorkStealingScheduler::run(std::vector<Task> tasks) {
  APGRE_ASSERT_MSG(active_ == nullptr, "WorkStealingScheduler::run is not reentrant");
  TraceSpan span("sched/run");
  Timer run_timer;

  RunState state(workers_);
  state.task_micros = &metrics().histogram("sched.task_micros");
  active_ = &state;

  // Distribute the initial tasks round-robin before any worker exists; the
  // thread constructors below publish these single-threaded writes.
  state.pending.store(tasks.size(), std::memory_order_relaxed);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    RunState::Worker& w = *state.workers[i % static_cast<std::size_t>(workers_)];
    w.arena.push_back(std::move(tasks[i]));
    w.deque.push(&w.arena.back());
  }

  if (workers_ == 1) {
    worker_loop(state, 0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(workers_ - 1));
    for (int w = 1; w < workers_; ++w) {
      threads.emplace_back([this, &state, w] { worker_loop(state, w); });
    }
    worker_loop(state, 0);
    for (std::thread& t : threads) t.join();
  }
  active_ = nullptr;

  SchedulerStats stats;
  stats.workers = workers_;
  for (const auto& w : state.workers) {
    stats.tasks += w->executed;
    stats.steals += w->steals;
    stats.failed_steals += w->failed_steals;
    stats.idle_seconds += w->idle_seconds;
  }
  stats.run_seconds = run_timer.seconds();

  MetricsRegistry& m = metrics();
  m.counter("sched.runs").add(1);
  m.counter("sched.tasks").add(stats.tasks);
  m.counter("sched.steals").add(stats.steals);
  m.counter("sched.failed_steals").add(stats.failed_steals);
  m.gauge("sched.workers").set(static_cast<double>(stats.workers));
  m.gauge("sched.idle_seconds").set(stats.idle_seconds);
  m.gauge("sched.run_seconds").set(stats.run_seconds);

  if (state.first_error) std::rethrow_exception(state.first_error);
  return stats;
}

}  // namespace apgre
