#include "support/sched/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/sched/chase_lev.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace apgre {

StealPolicy steal_policy_from_name(const std::string& name) {
  if (name == "random") return StealPolicy::kRandom;
  if (name == "sequential") return StealPolicy::kSequential;
  throw OptionError("unknown steal policy: " + name +
                    " (expected random | sequential)");
}

std::string steal_policy_name(StealPolicy policy) {
  switch (policy) {
    case StealPolicy::kRandom: return "random";
    case StealPolicy::kSequential: return "sequential";
  }
  return "?";
}

namespace sched_detail {

/// Join counter for one run() or parallel_for(): `pending` counts published
/// tasks not yet finished (incremented *before* a task becomes stealable,
/// decremented after it ran, so pending == 0 is the completion condition
/// even while tasks spawn subtasks). Lives on the owning call's stack for
/// run() — safe because the call returns only once pending hits zero — and
/// inside the shared LoopState for parallel_for helpers, which may outlive
/// their loop as drained no-ops.
struct RunGroup {
  std::atomic<std::uint64_t> pending{0};
  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> stolen{0};
  std::mutex error_mu;
  std::exception_ptr first_error;
};

/// One schedulable unit. Heap-allocated because with overlapping groups a
/// slot's deque interleaves tasks from many owners; the executor deletes
/// the node after running it. `keepalive` pins shared state (a loop's
/// LoopState) that `group` points into, so the group counters stay valid
/// through the post-body bookkeeping.
struct TaskNode {
  WorkStealingScheduler::Task fn;
  RunGroup* group = nullptr;
  std::shared_ptr<void> keepalive;
};

/// What the current thread is doing, scheduler-wise. `slot` is valid while
/// the thread occupies a scheduler slot (pool worker, or participant
/// inside run()/parallel_for); nested calls read it instead of acquiring a
/// second slot. `inline_stack` is set during a 1-worker inline run so
/// spawn() lands in deterministic LIFO order without touching any deque.
struct TlsContext {
  WorkStealingScheduler* sched = nullptr;
  int slot = -1;
  RunGroup* group = nullptr;
  int loop_depth = 0;
  std::vector<WorkStealingScheduler::Task>* inline_stack = nullptr;
};

thread_local TlsContext tls;

std::uint64_t xorshift(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

std::uint64_t rng_seed(int slot) {
  return 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(slot + 1) + 1;
}

}  // namespace sched_detail

using sched_detail::RunGroup;
using sched_detail::TaskNode;
using sched_detail::tls;

struct WorkStealingScheduler::State {
  struct alignas(64) Slot {
    ChaseLevDeque<TaskNode*> deque;
  };

  explicit State(int num_slots) {
    slots.reserve(static_cast<std::size_t>(num_slots));
    for (int i = 0; i < num_slots; ++i) {
      slots.push_back(std::make_unique<Slot>());
    }
  }

  std::vector<std::unique_ptr<Slot>> slots;

  /// Tasks published but not yet *claimed* (popped or stolen). The pool's
  /// sleep decision reads this: zero means no unclaimed work anywhere.
  /// seq_cst pairs with `sleepers` below (Dekker: a publisher either sees
  /// the registered sleeper and bumps the epoch, or the sleeper's re-check
  /// sees the new outstanding count — a wakeup is never lost).
  std::atomic<std::uint64_t> outstanding{0};
  std::atomic<int> sleepers{0};
  std::mutex wake_mu;
  std::condition_variable wake_cv;
  std::uint64_t wake_epoch = 0;  // guarded by wake_mu
  std::atomic<bool> stop{false};

  std::mutex pool_mu;
  std::atomic<bool> pool_started{false};
  std::vector<std::thread> pool;

  /// Participant-slot freelist (slot ids >= pool size). Handing a slot to
  /// a new thread through this mutex also hands over its deque: the lock
  /// provides the happens-before edge successive owners need.
  std::mutex free_mu;
  std::condition_variable free_cv;
  std::vector<int> free_slots;

  std::atomic<int> concurrent_runs{0};
  std::atomic<int> concurrent_runs_high{0};

  // Cached registry handles (registration takes a mutex; lookups here are
  // on hot paths). Constructing these in the scheduler constructor also
  // pins the registry's static lifetime past the pool threads'.
  Histogram* task_micros = nullptr;
  Histogram* nested_depth = nullptr;
  Counter* failed_steals = nullptr;
};

WorkStealingScheduler::WorkStealingScheduler(const SchedulerOptions& opts)
    : opts_(opts) {
  workers_ = opts.threads > 0 ? opts.threads : num_threads();
  if (workers_ < 1) workers_ = 1;
  // Participant slots beyond the pool: enough for the service's worker
  // pool plus benchmark client threads to all be inside a solve at once;
  // late-comers beyond that wait in acquire_participant_slot().
  num_slots_ = (workers_ - 1) + std::max(8, workers_ + 1);
  state_ = std::make_unique<State>(num_slots_);
  MetricsRegistry& m = metrics();
  state_->task_micros = &m.histogram("sched.task_micros");
  state_->nested_depth = &m.histogram("sched.nested_depth");
  state_->failed_steals = &m.counter("sched.failed_steals");
  for (int s = workers_ - 1; s < num_slots_; ++s) {
    state_->free_slots.push_back(s);
  }
}

WorkStealingScheduler::~WorkStealingScheduler() {
  State& st = *state_;
  st.stop.store(true, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lk(st.wake_mu);
    ++st.wake_epoch;
  }
  st.wake_cv.notify_all();
  for (std::thread& t : st.pool) t.join();
  // Leftover nodes can only be drained parallel_for helpers (their loop
  // finished before its caller returned, so next >= end and the body will
  // never run again); deleting without executing is safe. run() tasks are
  // always executed before run() returns.
  for (auto& slot : st.slots) {
    TaskNode* node = nullptr;
    while (slot->deque.steal(node)) delete node;
  }
}

WorkStealingScheduler& WorkStealingScheduler::shared() {
  static WorkStealingScheduler instance([] {
    SchedulerOptions opts;
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    opts.threads = std::max({1, hw, num_threads()});
    return opts;
  }());
  return instance;
}

void WorkStealingScheduler::ensure_pool() {
  State& st = *state_;
  if (st.pool_started.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lk(st.pool_mu);
  if (st.pool_started.load(std::memory_order_relaxed)) return;
  st.pool.reserve(static_cast<std::size_t>(workers_ - 1));
  for (int w = 0; w < workers_ - 1; ++w) {
    st.pool.emplace_back([this, w] { pool_loop(w); });
  }
  st.pool_started.store(true, std::memory_order_release);
}

int WorkStealingScheduler::acquire_participant_slot() {
  State& st = *state_;
  std::unique_lock<std::mutex> lk(st.free_mu);
  st.free_cv.wait(lk, [&] { return !st.free_slots.empty(); });
  const int slot = st.free_slots.back();
  st.free_slots.pop_back();
  return slot;
}

void WorkStealingScheduler::release_participant_slot(int slot) {
  State& st = *state_;
  {
    std::lock_guard<std::mutex> lk(st.free_mu);
    st.free_slots.push_back(slot);
  }
  st.free_cv.notify_one();
}

void WorkStealingScheduler::publish(int slot, TaskNode* node) {
  State& st = *state_;
  st.outstanding.fetch_add(1, std::memory_order_seq_cst);
  st.slots[static_cast<std::size_t>(slot)]->deque.push(node);
  wake_sleepers();
}

void WorkStealingScheduler::wake_sleepers() {
  State& st = *state_;
  if (st.sleepers.load(std::memory_order_seq_cst) == 0) return;
  {
    std::lock_guard<std::mutex> lk(st.wake_mu);
    ++st.wake_epoch;
  }
  st.wake_cv.notify_all();
}

bool WorkStealingScheduler::try_steal(int thief_slot, std::uint64_t& rng,
                                      TaskNode*& out, std::uint64_t& failed) {
  State& st = *state_;
  const int n = num_slots_;
  for (int attempt = 0; attempt < n; ++attempt) {
    int victim;
    if (opts_.steal_policy == StealPolicy::kRandom) {
      victim = static_cast<int>(sched_detail::xorshift(rng) %
                                static_cast<std::uint64_t>(n));
    } else {
      victim = (thief_slot + 1 + attempt) % n;
    }
    if (victim == thief_slot) continue;
    if (st.slots[static_cast<std::size_t>(victim)]->deque.steal(out)) {
      return true;
    }
    ++failed;
  }
  return false;
}

void WorkStealingScheduler::execute(TaskNode* node, int slot) {
  RunGroup* group = node->group;
  // Pin the group's storage (a parallel_for LoopState) past the node's own
  // lifetime: the fn below may hold the last other reference.
  std::shared_ptr<void> keepalive = std::move(node->keepalive);
  const sched_detail::TlsContext saved = tls;
  tls.sched = this;
  tls.slot = slot;
  tls.group = group;
  tls.inline_stack = nullptr;
  Timer task_timer;
  try {
    node->fn(slot);
  } catch (...) {
    std::lock_guard<std::mutex> lk(group->error_mu);
    if (!group->first_error) group->first_error = std::current_exception();
  }
  state_->task_micros->observe(
      static_cast<std::uint64_t>(task_timer.seconds() * 1e6));
  tls = saved;
  delete node;
  group->executed.fetch_add(1, std::memory_order_relaxed);
  // Release so the group owner observing pending == 0 sees every write the
  // task made (and the executed/stolen tallies above).
  group->pending.fetch_sub(1, std::memory_order_release);
}

void WorkStealingScheduler::pool_loop(int slot_id) {
  State& st = *state_;
  State::Slot& me = *st.slots[static_cast<std::size_t>(slot_id)];
  std::uint64_t rng = sched_detail::rng_seed(slot_id);
  std::uint64_t failed_tally = 0;
  int empty_sweeps = 0;

  while (!st.stop.load(std::memory_order_acquire)) {
    TaskNode* node = nullptr;
    if (me.deque.pop(node)) {
      st.outstanding.fetch_sub(1, std::memory_order_seq_cst);
      execute(node, slot_id);
      empty_sweeps = 0;
      continue;
    }
    std::uint64_t failed = 0;
    if (try_steal(slot_id, rng, node, failed)) {
      failed_tally += failed;
      st.outstanding.fetch_sub(1, std::memory_order_seq_cst);
      node->group->stolen.fetch_add(1, std::memory_order_relaxed);
      execute(node, slot_id);
      empty_sweeps = 0;
      continue;
    }
    failed_tally += failed;
    if (++empty_sweeps < 64) {
      std::this_thread::yield();
      continue;
    }
    // Nothing to do for a while: flush tallies and sleep until the next
    // publish bumps the epoch (see State::outstanding for the protocol).
    if (failed_tally != 0) {
      st.failed_steals->add(failed_tally);
      failed_tally = 0;
    }
    std::uint64_t epoch;
    {
      std::lock_guard<std::mutex> lk(st.wake_mu);
      epoch = st.wake_epoch;
    }
    st.sleepers.fetch_add(1, std::memory_order_seq_cst);
    if (st.outstanding.load(std::memory_order_seq_cst) == 0 &&
        !st.stop.load(std::memory_order_acquire)) {
      std::unique_lock<std::mutex> lk(st.wake_mu);
      st.wake_cv.wait(lk, [&] {
        return st.stop.load(std::memory_order_relaxed) ||
               st.wake_epoch != epoch;
      });
    }
    st.sleepers.fetch_sub(1, std::memory_order_seq_cst);
    empty_sweeps = 0;
  }
  if (failed_tally != 0) st.failed_steals->add(failed_tally);
}

void WorkStealingScheduler::spawn(int slot, Task task) {
  if (tls.sched == this && tls.inline_stack != nullptr) {
    tls.inline_stack->push_back(std::move(task));
    return;
  }
  APGRE_ASSERT_MSG(tls.sched == this && tls.slot == slot,
                   "spawn() must be called from the task's own slot");
  RunGroup* group = tls.group;
  APGRE_ASSERT_MSG(group != nullptr, "spawn() outside a scheduler run");
  group->pending.fetch_add(1, std::memory_order_relaxed);
  publish(slot, new TaskNode{std::move(task), group, nullptr});
}

SchedulerStats WorkStealingScheduler::run_inline(std::vector<Task> tasks) {
  TraceSpan span("sched/run");
  Timer run_timer;
  // LIFO work stack seeded in submission order: initial task 0 runs first,
  // spawned subtasks run newest-first, and the whole order is a pure
  // function of the task bodies — the bitwise-determinism contract the
  // 1-worker configuration exists for.
  std::vector<Task> stack;
  stack.reserve(tasks.size());
  for (auto it = tasks.rbegin(); it != tasks.rend(); ++it) {
    stack.push_back(std::move(*it));
  }
  tasks.clear();

  std::exception_ptr first_error;
  std::uint64_t executed = 0;
  const sched_detail::TlsContext saved = tls;
  tls.sched = this;
  tls.slot = 0;
  tls.group = nullptr;
  tls.inline_stack = &stack;
  while (!stack.empty()) {
    Task task = std::move(stack.back());
    stack.pop_back();
    Timer task_timer;
    try {
      task(0);
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
    state_->task_micros->observe(
        static_cast<std::uint64_t>(task_timer.seconds() * 1e6));
    ++executed;
  }
  tls = saved;

  SchedulerStats stats;
  stats.tasks = executed;
  stats.workers = 1;
  stats.run_seconds = run_timer.seconds();

  MetricsRegistry& m = metrics();
  m.counter("sched.runs").add(1);
  m.counter("sched.tasks").add(stats.tasks);
  m.gauge("sched.workers").set(1.0);
  m.gauge("sched.run_seconds").set(stats.run_seconds);

  if (first_error) std::rethrow_exception(first_error);
  return stats;
}

SchedulerStats WorkStealingScheduler::run(std::vector<Task> tasks) {
  if (workers_ == 1) return run_inline(std::move(tasks));

  TraceSpan span("sched/run");
  Timer run_timer;
  ensure_pool();
  State& st = *state_;

  const int concurrent = st.concurrent_runs.fetch_add(1, std::memory_order_relaxed) + 1;
  int high = st.concurrent_runs_high.load(std::memory_order_relaxed);
  while (concurrent > high &&
         !st.concurrent_runs_high.compare_exchange_weak(
             high, concurrent, std::memory_order_relaxed)) {
  }

  // Reuse the slot we already occupy when run() nests inside a task;
  // otherwise borrow a participant slot for the duration of the call.
  const bool guest = !(tls.sched == this && tls.slot >= 0);
  const int slot = guest ? acquire_participant_slot() : tls.slot;
  State::Slot& me = *st.slots[static_cast<std::size_t>(slot)];

  RunGroup group;
  group.pending.store(tasks.size(), std::memory_order_relaxed);
  for (Task& task : tasks) {
    publish(slot, new TaskNode{std::move(task), &group, nullptr});
  }
  tasks.clear();

  // Help until this group drains. The loop prefers our own deque (which
  // newly holds this group's tasks), then steals from anyone — possibly
  // executing another group's task, which is the work-conserving choice
  // when runs overlap.
  std::uint64_t rng = sched_detail::rng_seed(slot + num_slots_);
  std::uint64_t my_failed = 0;
  double idle_seconds = 0.0;
  while (group.pending.load(std::memory_order_acquire) != 0) {
    TaskNode* node = nullptr;
    if (me.deque.pop(node)) {
      st.outstanding.fetch_sub(1, std::memory_order_seq_cst);
      execute(node, slot);
      continue;
    }
    Timer idle_timer;
    std::uint64_t failed = 0;
    const bool got = try_steal(slot, rng, node, failed);
    my_failed += failed;
    idle_seconds += idle_timer.seconds();
    if (got) {
      st.outstanding.fetch_sub(1, std::memory_order_seq_cst);
      node->group->stolen.fetch_add(1, std::memory_order_relaxed);
      execute(node, slot);
    } else if (group.pending.load(std::memory_order_acquire) != 0) {
      std::this_thread::yield();
    }
  }
  if (guest) release_participant_slot(slot);
  st.concurrent_runs.fetch_sub(1, std::memory_order_relaxed);

  SchedulerStats stats;
  stats.workers = workers_;
  stats.tasks = group.executed.load(std::memory_order_acquire);
  stats.steals = group.stolen.load(std::memory_order_relaxed);
  stats.failed_steals = my_failed;
  stats.idle_seconds = idle_seconds;
  stats.run_seconds = run_timer.seconds();

  MetricsRegistry& m = metrics();
  m.counter("sched.runs").add(1);
  m.counter("sched.tasks").add(stats.tasks);
  m.counter("sched.steals").add(stats.steals);
  m.counter("sched.failed_steals").add(stats.failed_steals);
  m.gauge("sched.workers").set(static_cast<double>(stats.workers));
  m.gauge("sched.idle_seconds").set(stats.idle_seconds);
  m.gauge("sched.run_seconds").set(stats.run_seconds);
  m.gauge("sched.concurrent_runs").set(static_cast<double>(
      st.concurrent_runs_high.load(std::memory_order_relaxed)));

  if (group.first_error) std::rethrow_exception(group.first_error);
  return stats;
}

namespace sched_detail {

/// Shared state of one parallel_for: helpers and the caller claim chunks
/// with fetch_add on `next`; `done` counts finished indices, so the caller
/// returns exactly when every index has been processed — even while helper
/// *tasks* are still queued (they drain later as claim-nothing no-ops,
/// kept valid by the shared_ptr each TaskNode pins).
struct LoopState {
  WorkStealingScheduler::LoopBody body;
  std::atomic<std::int64_t> next{0};
  std::atomic<std::int64_t> done{0};
  std::int64_t end = 0;
  std::int64_t grain = 1;
  int depth = 0;
  WorkStealingScheduler* sched = nullptr;
  RunGroup group;
};

void claim_chunks(LoopState& ls, int slot) {
  const TlsContext saved = tls;
  tls.sched = ls.sched;
  tls.slot = slot;
  tls.loop_depth = ls.depth + 1;
  tls.inline_stack = nullptr;
  for (;;) {
    const std::int64_t lo = ls.next.fetch_add(ls.grain, std::memory_order_relaxed);
    if (lo >= ls.end) break;
    const std::int64_t hi = std::min(ls.end, lo + ls.grain);
    ls.body(lo, hi, slot);
    // Release pairs with the caller's acquire load of `done`: RMW chains
    // keep the release sequence intact, so done == total publishes every
    // chunk's writes.
    ls.done.fetch_add(hi - lo, std::memory_order_release);
  }
  tls = saved;
}

}  // namespace sched_detail

void WorkStealingScheduler::parallel_for(std::int64_t begin, std::int64_t end,
                                         std::int64_t grain,
                                         const LoopBody& body) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  if (grain <= 0) {
    grain = std::max<std::int64_t>(1, n / (8 * static_cast<std::int64_t>(workers_)));
  }
  const int depth = tls.sched == this ? tls.loop_depth : 0;
  state_->nested_depth->observe(static_cast<std::uint64_t>(depth));

  // Small ranges (and 1-worker schedulers) run inline on the current slot;
  // an external caller of a multi-worker scheduler still borrows a
  // participant slot so slot-indexed buffers stay single-writer.
  if (workers_ == 1 || n <= grain) {
    const bool guest = !(tls.sched == this && tls.slot >= 0);
    int slot = 0;
    if (guest && workers_ > 1) slot = acquire_participant_slot();
    if (!guest) slot = tls.slot;
    const sched_detail::TlsContext saved = tls;
    tls.sched = this;
    tls.slot = slot;
    tls.loop_depth = depth + 1;
    tls.inline_stack = nullptr;
    body(begin, end, slot);
    tls = saved;
    if (guest && workers_ > 1) release_participant_slot(slot);
    return;
  }

  TraceSpan span("sched/parallel_for");
  ensure_pool();
  State& st = *state_;
  const bool guest = !(tls.sched == this && tls.slot >= 0);
  const int slot = guest ? acquire_participant_slot() : tls.slot;

  auto ls = std::make_shared<sched_detail::LoopState>();
  ls->body = body;
  ls->next.store(begin, std::memory_order_relaxed);
  ls->end = end;
  ls->grain = grain;
  ls->depth = depth;
  ls->sched = this;

  const std::int64_t chunks = (n + grain - 1) / grain;
  const int helpers = static_cast<int>(
      std::min<std::int64_t>(workers_ - 1, chunks - 1));
  ls->group.pending.store(static_cast<std::uint64_t>(helpers),
                          std::memory_order_relaxed);
  for (int h = 0; h < helpers; ++h) {
    auto pin = ls;
    publish(slot, new TaskNode{
                      Task([pin](int s) { sched_detail::claim_chunks(*pin, s); }),
                      &ls->group, std::move(pin)});
  }

  sched_detail::claim_chunks(*ls, slot);

  // Wait for stolen chunks, helping from our own deque only: popping it
  // mostly yields this loop's just-pushed helpers (LIFO), keeping the
  // level-barrier latency bounded while still making progress on anything
  // else we queued earlier.
  State::Slot& me = *st.slots[static_cast<std::size_t>(slot)];
  while (ls->done.load(std::memory_order_acquire) != n) {
    TaskNode* node = nullptr;
    if (me.deque.pop(node)) {
      st.outstanding.fetch_sub(1, std::memory_order_seq_cst);
      execute(node, slot);
    } else {
      std::this_thread::yield();
    }
  }
  if (guest) release_participant_slot(slot);
}

}  // namespace apgre
