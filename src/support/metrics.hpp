// Process-wide registry of named counters / gauges / histograms the BC
// algorithm family reports into: per-phase timings, per-sub-graph sizes,
// traversed-arc counts, CAS-retry counts, redundancy-eliminated vertices.
//
// Registration (the first counter("x") call) takes a mutex; the returned
// reference is stable for the registry's lifetime, so callers fetch once
// per run and update lock-free afterwards. Hot loops must still accumulate
// into a local variable and add() once per phase — a counter add is an
// atomic RMW, not free.
//
// Naming scheme (docs/OBSERVABILITY.md): `<component>.<metric>`, e.g.
// `bc.lockfree.traversed_arcs`, `apgre.subgraph_vertices`. Counters
// accumulate across runs until reset(); gauges hold the last run's value.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace apgre {

/// Monotonic event count; add() is lock-free.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins double (phase seconds, ratios); add() for the rare case
/// of several threads contributing to one run's value.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log2-bucketed histogram: bucket k counts values in [2^k, 2^(k+1)) and
/// bucket 0 additionally holds the value 0 — Log2Histogram's convention
/// (support/stats.hpp), but safe for concurrent observe().
class Histogram {
 public:
  void observe(std::uint64_t value);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// (bucket lower bound, count) pairs for non-empty buckets, ascending.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets() const;
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, 64> counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One metric in a snapshot(). Counters and gauges fill `number`;
/// histograms put the observation count there and fill buckets + sum.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double number = 0.0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
  std::uint64_t histogram_sum = 0;
};

class MetricsRegistry {
 public:
  /// Find-or-create by name. Throws Error when `name` is already registered
  /// as a different kind.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Zero every value; registrations (and references into the registry)
  /// survive. Benchmarks call this between measured runs.
  void reset();

  /// Point-in-time copy of every metric, sorted by name.
  std::vector<MetricSample> snapshot() const;

  /// The process-wide registry the BC family reports into.
  static MetricsRegistry& global();

 private:
  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry(std::string_view name, MetricKind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_;
};

/// Shorthand for MetricsRegistry::global().
inline MetricsRegistry& metrics() { return MetricsRegistry::global(); }

}  // namespace apgre
