#include "support/flags.hpp"

#include <sstream>

#include "support/error.hpp"

namespace apgre {

namespace {

const char* type_name(int type) {
  switch (type) {
    case 0: return "string";
    case 1: return "int";
    case 2: return "double";
    case 3: return "bool";
  }
  return "?";
}

}  // namespace

FlagParser::FlagParser(std::string program_description)
    : description_(std::move(program_description)) {}

FlagParser& FlagParser::add_string(const std::string& name, std::string default_value,
                                   const std::string& help) {
  flags_[name] = Flag{Type::kString, default_value, default_value, help};
  return *this;
}

FlagParser& FlagParser::add_int(const std::string& name, std::int64_t default_value,
                                const std::string& help) {
  const std::string text = std::to_string(default_value);
  flags_[name] = Flag{Type::kInt, text, text, help};
  return *this;
}

FlagParser& FlagParser::add_double(const std::string& name, double default_value,
                                   const std::string& help) {
  std::ostringstream os;
  os << default_value;
  flags_[name] = Flag{Type::kDouble, os.str(), os.str(), help};
  return *this;
}

FlagParser& FlagParser::add_bool(const std::string& name, bool default_value,
                                 const std::string& help) {
  const std::string text = default_value ? "true" : "false";
  flags_[name] = Flag{Type::kBool, text, text, help};
  return *this;
}

std::vector<std::string> FlagParser::parse(int argc, const char* const* argv) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    if (arg == "help") {
      help_requested_ = true;
      continue;
    }
    std::string name = arg;
    std::string value;
    bool have_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      have_value = true;
    }
    const auto it = flags_.find(name);
    APGRE_REQUIRE(it != flags_.end(), "unknown flag --" + name);
    Flag& flag = it->second;

    if (!have_value) {
      if (flag.type == Type::kBool) {
        value = "true";  // bare boolean flag
      } else {
        APGRE_REQUIRE(i + 1 < argc, "flag --" + name + " needs a value");
        value = argv[++i];
      }
    }

    // Validate by type.
    switch (flag.type) {
      case Type::kString:
        break;
      case Type::kInt: {
        std::size_t used = 0;
        try {
          (void)std::stoll(value, &used);
        } catch (const std::exception&) {
          used = 0;
        }
        APGRE_REQUIRE(used == value.size() && !value.empty(),
                      "flag --" + name + " expects an integer, got `" + value + "`");
        break;
      }
      case Type::kDouble: {
        std::size_t used = 0;
        try {
          (void)std::stod(value, &used);
        } catch (const std::exception&) {
          used = 0;
        }
        APGRE_REQUIRE(used == value.size() && !value.empty(),
                      "flag --" + name + " expects a number, got `" + value + "`");
        break;
      }
      case Type::kBool:
        APGRE_REQUIRE(value == "true" || value == "false" || value == "1" ||
                          value == "0",
                      "flag --" + name + " expects true/false, got `" + value + "`");
        if (value == "1") value = "true";
        if (value == "0") value = "false";
        break;
    }
    flag.value = value;
  }
  return positional;
}

const FlagParser::Flag& FlagParser::flag(const std::string& name, Type expected) const {
  const auto it = flags_.find(name);
  APGRE_REQUIRE(it != flags_.end(), "flag --" + name + " was never registered");
  APGRE_REQUIRE(it->second.type == expected,
                "flag --" + name + " is not of type " +
                    type_name(static_cast<int>(expected)));
  return it->second;
}

std::string FlagParser::get_string(const std::string& name) const {
  return flag(name, Type::kString).value;
}

std::int64_t FlagParser::get_int(const std::string& name) const {
  return std::stoll(flag(name, Type::kInt).value);
}

double FlagParser::get_double(const std::string& name) const {
  return std::stod(flag(name, Type::kDouble).value);
}

bool FlagParser::get_bool(const std::string& name) const {
  return flag(name, Type::kBool).value == "true";
}

std::string FlagParser::help() const {
  std::ostringstream os;
  os << description_ << "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (" << type_name(static_cast<int>(flag.type))
       << ", default " << (flag.default_value.empty() ? "\"\"" : flag.default_value)
       << ")\n      " << flag.help << "\n";
  }
  return os.str();
}

}  // namespace apgre
