// Streaming statistics and histograms for graph/degree analysis and for
// benchmark reporting.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace apgre {

/// Welford streaming mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x);

  /// Fold another accumulator in (Chan et al. pairwise combination), as if
  /// every sample of `other` had been add()ed here. Lets per-thread
  /// accumulators run independently and combine at the end instead of
  /// serializing through one shared instance.
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Log2-bucketed histogram for degree distributions: bucket k counts values
/// in [2^k, 2^(k+1)). Bucket 0 additionally holds the value 0.
class Log2Histogram {
 public:
  void add(std::uint64_t value);
  /// (bucket lower bound, count) pairs for non-empty buckets, ascending.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets() const;
  std::uint64_t total() const { return total_; }
  /// Render as a small ASCII table (used by bench_fig2_structure).
  std::string to_string() const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Geometric mean of a set of positive values; the paper reports average
/// speedups, which for ratios should be geometric.
double geometric_mean(const std::vector<double>& values);

/// Exact percentile by sorting a copy (fine for bench-sized inputs).
double percentile(std::vector<double> values, double p);

}  // namespace apgre
