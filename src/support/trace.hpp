// Lightweight RAII tracing spans for the BC algorithm family.
//
// A TraceSpan records one named interval (start/end wall time on a shared
// process epoch, thread, nesting depth, per-thread open order) into a
// thread-local buffer; collect_spans() merges and drains every buffer. Span
// open/close never contends with other threads unless a flush is running,
// so spans are cheap enough to wrap algorithm phases (decompose, forward,
// backward) — but they are *not* per-edge events; hot loops must stay
// span-free and report into the metrics registry (support/metrics.hpp)
// instead.
//
// The whole facility compiles out with -DAPGRE_TRACE=OFF (CMake option,
// surfaces here as APGRE_TRACE_ENABLED=0): APGRE_TRACE_SPAN vanishes and
// collect_spans() returns nothing, so release builds can shed even the
// per-phase clock reads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#ifndef APGRE_TRACE_ENABLED
#define APGRE_TRACE_ENABLED 1
#endif

namespace apgre {

/// One finished span. Times are seconds since the process trace epoch (the
/// first span opened), so spans from different threads share a time base.
struct SpanRecord {
  std::string name;
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  int thread = 0;              ///< buffer registration order, not an OS id
  int depth = 0;               ///< nesting depth at open time (0 = outermost)
  std::uint64_t sequence = 0;  ///< per-thread open order

  double elapsed_seconds() const { return end_seconds - start_seconds; }
};

/// True when spans are compiled in (APGRE_TRACE=ON, the default).
constexpr bool trace_enabled() { return APGRE_TRACE_ENABLED != 0; }

#if APGRE_TRACE_ENABLED

/// RAII span: records itself into the calling thread's buffer on scope exit.
class TraceSpan {
 public:
  explicit TraceSpan(std::string name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  std::string name_;
  double start_seconds_;
  int depth_;
  std::uint64_t sequence_;
};

/// Move every finished span out of all thread buffers (including threads
/// that have since exited), ordered by start time. Spans still open stay in
/// their threads and surface at the next collect after they close.
std::vector<SpanRecord> collect_spans();

/// Discard buffered spans without returning them.
void clear_spans();

#else  // Tracing compiled out: every operation is a no-op.

class TraceSpan {
 public:
  explicit TraceSpan(const std::string&) {}
};

inline std::vector<SpanRecord> collect_spans() { return {}; }
inline void clear_spans() {}

#endif

}  // namespace apgre

#if APGRE_TRACE_ENABLED
#define APGRE_TRACE_CONCAT_(a, b) a##b
#define APGRE_TRACE_CONCAT(a, b) APGRE_TRACE_CONCAT_(a, b)
#define APGRE_TRACE_SPAN(name) \
  ::apgre::TraceSpan APGRE_TRACE_CONCAT(apgre_trace_span_, __LINE__)(name)
#else
#define APGRE_TRACE_SPAN(name) ((void)0)
#endif
