// Deterministic, splittable pseudo-random number generation.
//
// Graph generators and property tests need reproducible streams that are
// cheap to fork per thread / per vertex. We provide SplitMix64 (seeding,
// hashing) and Xoshiro256** (bulk generation), both public-domain
// algorithms by Blackman & Vigna, re-implemented here.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "support/error.hpp"

namespace apgre {

/// SplitMix64: tiny 64-bit generator; primarily used to expand a user seed
/// into state for Xoshiro and to derive independent per-unit seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless mix of two 64-bit values; used to derive a substream seed from
/// (seed, stream-id) without constructing a generator.
inline std::uint64_t hash_combine64(std::uint64_t a, std::uint64_t b) {
  SplitMix64 sm(a ^ (0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2)));
  (void)sm.next();
  return sm.next();
}

/// Xoshiro256**: fast all-purpose 64-bit generator with 2^256-1 period.
/// Satisfies UniformRandomBitGenerator so it plugs into <random>.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Lemire's multiply-shift rejection.
  std::uint64_t bounded(std::uint64_t bound) {
    APGRE_ASSERT(bound > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// True with probability p.
  bool bernoulli(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace apgre
