#include "support/json.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "support/error.hpp"

namespace apgre {

namespace {

[[noreturn]] void type_error(const char* want) {
  throw Error(std::string("json: value is not ") + want);
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double d) {
  // Integral values (counters, schema versions) print without a fraction;
  // 2^53 bounds exact double integers.
  if (std::floor(d) == d && std::abs(d) < 9.007199254740992e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld", static_cast<long long>(d));
    out += buffer;
  } else {
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.17g", d);
    out += buffer;
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw ParseError("json", line_, what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') ++line_;
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected `") + c + "`");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return JsonValue(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return JsonValue(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return JsonValue(nullptr);
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character");
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object object;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(object));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object[std::move(key)] = parse_value();
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == '}') return JsonValue(std::move(object));
      if (c != ',') fail("expected `,` or `}` in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array array;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(array));
    }
    while (true) {
      array.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == ']') return JsonValue(std::move(array));
      if (c != ',') fail("expected `,` or `]` in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\n') fail("raw newline in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are out of
          // scope for these artifacts; encode the raw value).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    try {
      std::size_t consumed = 0;
      const double value = std::stod(token, &consumed);
      if (consumed != token.size() || !std::isfinite(value)) {
        fail("malformed number `" + token + "`");
      }
      return JsonValue(value);
    } catch (const std::logic_error&) {
      fail("malformed number `" + token + "`");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

void dump_value(const JsonValue& value, std::string& out, int indent, int depth);

void append_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

void dump_value(const JsonValue& value, std::string& out, int indent, int depth) {
  if (value.is_null()) {
    out += "null";
  } else if (value.is_bool()) {
    out += value.as_bool() ? "true" : "false";
  } else if (value.is_number()) {
    append_number(out, value.as_double());
  } else if (value.is_string()) {
    append_escaped(out, value.as_string());
  } else if (value.is_array()) {
    const auto& array = value.as_array();
    if (array.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    bool first = true;
    for (const JsonValue& element : array) {
      if (!first) out += ',';
      first = false;
      append_indent(out, indent, depth + 1);
      dump_value(element, out, indent, depth + 1);
    }
    append_indent(out, indent, depth);
    out += ']';
  } else {
    const auto& object = value.as_object();
    if (object.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, element] : object) {
      if (!first) out += ',';
      first = false;
      append_indent(out, indent, depth + 1);
      append_escaped(out, key);
      out += indent > 0 ? ": " : ":";
      dump_value(element, out, indent, depth + 1);
    }
    append_indent(out, indent, depth);
    out += '}';
  }
}

}  // namespace

bool JsonValue::as_bool() const {
  if (!is_bool()) type_error("a bool");
  return std::get<bool>(value_);
}

double JsonValue::as_double() const {
  if (!is_number()) type_error("a number");
  return std::get<double>(value_);
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) type_error("a string");
  return std::get<std::string>(value_);
}

const JsonValue::Array& JsonValue::as_array() const {
  if (!is_array()) type_error("an array");
  return std::get<Array>(value_);
}

const JsonValue::Object& JsonValue::as_object() const {
  if (!is_object()) type_error("an object");
  return std::get<Object>(value_);
}

JsonValue::Array& JsonValue::as_array() {
  if (!is_array()) type_error("an array");
  return std::get<Array>(value_);
}

JsonValue::Object& JsonValue::as_object() {
  if (!is_object()) type_error("an object");
  return std::get<Object>(value_);
}

bool JsonValue::contains(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const auto& object = as_object();
  const auto it = object.find(key);
  if (it == object.end()) throw Error("json: missing key `" + key + "`");
  return it->second;
}

double JsonValue::get(const std::string& key, double fallback) const {
  if (!contains(key)) return fallback;
  return at(key).as_double();
}

std::string JsonValue::get(const std::string& key,
                           const std::string& fallback) const {
  if (!contains(key)) return fallback;
  return at(key).as_string();
}

JsonValue& JsonValue::operator[](const std::string& key) {
  if (is_null()) value_ = Object{};
  return as_object()[key];
}

void JsonValue::push_back(JsonValue element) {
  if (is_null()) value_ = Array{};
  as_array().push_back(std::move(element));
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_value(*this, out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace apgre
