#include "support/stats.hpp"

#include <cmath>
#include <sstream>

#include "support/error.hpp"

namespace apgre {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const std::size_t combined = n_ + other.n_;
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) /
                         static_cast<double>(combined);
  mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(combined);
  n_ = combined;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Log2Histogram::add(std::uint64_t value) {
  std::size_t bucket = 0;
  if (value > 0) bucket = static_cast<std::size_t>(63 - __builtin_clzll(value));
  if (counts_.size() <= bucket) counts_.resize(bucket + 1, 0);
  ++counts_[bucket];
  ++total_;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> Log2Histogram::buckets() const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  for (std::size_t k = 0; k < counts_.size(); ++k) {
    if (counts_[k] == 0) continue;
    out.emplace_back(std::uint64_t{1} << k, counts_[k]);
  }
  return out;
}

std::string Log2Histogram::to_string() const {
  std::ostringstream os;
  for (const auto& [lo, count] : buckets()) {
    os << "[" << lo << ", " << lo * 2 << "): " << count << "\n";
  }
  return os.str();
}

double geometric_mean(const std::vector<double>& values) {
  APGRE_ASSERT(!values.empty());
  double log_sum = 0.0;
  for (double v : values) {
    APGRE_ASSERT_MSG(v > 0.0, "geometric mean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double percentile(std::vector<double> values, double p) {
  APGRE_ASSERT(!values.empty());
  APGRE_ASSERT(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

}  // namespace apgre
