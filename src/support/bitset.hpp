// Dynamic bitsets for BFS visited-tracking.
//
// Bitset: single-threaded, cache-compact.
// AtomicBitset: concurrent test-and-set used by the fine-grained parallel
// BFS frontiers (level-synchronous BC algorithms and the hybrid
// direction-optimising BFS).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

#include "support/error.hpp"

namespace apgre {

/// Plain dynamic bitset sized at construction.
class Bitset {
 public:
  explicit Bitset(std::size_t bits = 0) { resize(bits); }

  void resize(std::size_t bits) {
    bits_ = bits;
    words_.assign((bits + 63) / 64, 0);
  }

  std::size_t size() const { return bits_; }

  bool test(std::size_t i) const {
    APGRE_ASSERT(i < bits_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void set(std::size_t i) {
    APGRE_ASSERT(i < bits_);
    words_[i >> 6] |= (std::uint64_t{1} << (i & 63));
  }

  void clear(std::size_t i) {
    APGRE_ASSERT(i < bits_);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  void reset() { std::memset(words_.data(), 0, words_.size() * sizeof(std::uint64_t)); }

  /// Number of set bits.
  std::size_t count() const {
    std::size_t c = 0;
    for (std::uint64_t w : words_) c += static_cast<std::size_t>(__builtin_popcountll(w));
    return c;
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Concurrent bitset: set() is an atomic fetch_or and reports whether this
/// call transitioned the bit 0 -> 1, which is exactly the "did I win the
/// claim on this vertex" primitive parallel BFS needs.
class AtomicBitset {
 public:
  explicit AtomicBitset(std::size_t bits = 0) { resize(bits); }

  void resize(std::size_t bits) {
    bits_ = bits;
    words_ = std::vector<std::atomic<std::uint64_t>>((bits + 63) / 64);
    reset();
  }

  std::size_t size() const { return bits_; }

  bool test(std::size_t i) const {
    APGRE_ASSERT(i < bits_);
    return (words_[i >> 6].load(std::memory_order_relaxed) >> (i & 63)) & 1u;
  }

  /// Atomically set bit i; returns true iff the bit was previously clear
  /// (i.e. the caller claimed it).
  bool set(std::size_t i) {
    APGRE_ASSERT(i < bits_);
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    const std::uint64_t old =
        words_[i >> 6].fetch_or(mask, std::memory_order_relaxed);
    return (old & mask) == 0;
  }

  void reset() {
    for (auto& w : words_) w.store(0, std::memory_order_relaxed);
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::atomic<std::uint64_t>> words_;
};

}  // namespace apgre
