// Internal-consistency invariants for the APGRE decomposition and the
// ApgreStats a betweenness() run reports.
//
// Unlike bcc/validate.hpp (which checks a Decomposition against the paper's
// structural properties using the library's own reach code), this layer
// re-derives every quantity independently — naive restricted BFS for
// alpha/beta, a degree census for pendants, the standalone articulation
// finder for AP counts — so a bookkeeping bug in partition.cpp or reach.cpp
// cannot hide behind itself.
//
// All checkers return a human-readable list of violations; empty means
// every invariant holds.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "bc/bc.hpp"
#include "bcc/parallel_bicomp.hpp"
#include "bcc/partition.hpp"
#include "graph/csr.hpp"

namespace apgre {

/// Decomposition invariants:
///  1. sub-graph vertex multiset covers exactly the non-isolated vertices,
///     with Sum_i |V_i| == #non-isolated + Sum_v (copies(v) - 1) and every
///     multi-sub-graph vertex flagged as a boundary AP everywhere,
///  2. every boundary AP is an articulation point of the undirected
///     projection (standalone finder ground truth), and the decomposition's
///     AP counter matches that finder,
///  3. alpha/beta match an independent restricted BFS for up to
///     `max_reach_checks` boundary APs (alpha == beta on undirected inputs),
///  4. roots/removed partition each sub-graph with gamma accounting:
///     Sum gamma == #removed per sub-graph, the global pendant counter adds
///     up, and every removed vertex passes the pendant degree census.
std::vector<std::string> check_decomposition_invariants(
    const CsrGraph& g, const Decomposition& dec,
    std::size_t max_reach_checks = static_cast<std::size_t>(-1));

/// ApgreStats invariants against a fresh decompose(g, opts.partition):
/// sub-graph / AP / pendant counters, top sub-graph size, the Figure-7
/// redundancy fractions, and phase-timing sanity (non-negative phases that
/// sum to at most the total).
std::vector<std::string> check_stats_invariants(const CsrGraph& g,
                                                const ApgreStats& stats,
                                                const ApgreOptions& opts = {});

/// Biconnectivity-pass agreement: build the block decomposition with the
/// pass `mode` selects (kOn = the parallel pass regardless of size, kOff =
/// the serial DFS, kAuto = the production gate) and check it against
/// ground truths none of the passes share code with:
///  1. every edge of the undirected projection lies in exactly one block,
///     and each block's vertex set is exactly its edges' endpoints,
///  2. the articulation flags match the standalone finder
///     (articulation.cpp), and every flagged vertex is in >= 2 blocks,
///  3. the block-cut tree is a forest (acyclic; bipartite by
///     construction), and any_component names a real containing block,
///  4. when `mode` selected the parallel pass, its canonicalized output is
///     structure-identical to the canonicalized serial DFS output.
std::vector<std::string> check_decomposition_agreement(
    const CsrGraph& g,
    ParallelDecomposition mode = ParallelDecomposition::kAuto);

/// Independent pendant census replicating the partition's classification
/// from degrees alone: directed pendants have no in-arcs and one out-arc;
/// undirected pendants have degree one (K2 keeps the lower id as root).
Vertex pendant_census(const CsrGraph& g);

}  // namespace apgre
