// Cross-algorithm differential oracle.
//
// The library's core claim (bc/bc.hpp) is that every exact algorithm of the
// family computes identical BC scores and differs only in strategy. The
// oracle enforces that claim: it runs a set of algorithms on one graph,
// compares every score vector elementwise against a reference under the
// suite's mixed absolute/relative tolerance, and reports the maximum
// divergence with per-vertex blame (worst vertex, both scores, both vector
// norms) so a failing seed pinpoints the disagreement immediately.
#pragma once

#include <string>
#include <vector>

#include "bc/bc.hpp"
#include "graph/csr.hpp"
#include "graph/weighted.hpp"

namespace apgre {

/// Elementwise comparison verdict between two score vectors.
struct ScoreComparison {
  bool ok = true;
  double max_divergence = 0.0;   ///< max_v |expected - actual|
  double worst_excess = 0.0;     ///< max_v (divergence - tolerance), <= 0 if ok
  Vertex worst_vertex = kInvalidVertex;
  double expected_score = 0.0;   ///< at the worst vertex
  double actual_score = 0.0;     ///< at the worst vertex
  double expected_norm = 0.0;    ///< L2 norm of the expected vector
  double actual_norm = 0.0;      ///< L2 norm of the actual vector
  std::size_t num_violations = 0;
};

/// Compare with tolerance(v) = abs + rel * max(|expected[v]|, |actual[v]|).
/// Asserts equal sizes (use for vectors over the same vertex set).
ScoreComparison compare_scores(const std::vector<double>& expected,
                               const std::vector<double>& actual,
                               double rel = 1e-7, double abs = 1e-6);

struct OracleOptions {
  /// Algorithms under test; empty selects exact_algorithm_set(g).
  std::vector<Algorithm> algorithms;
  /// Every algorithm is diffed against this one.
  Algorithm reference = Algorithm::kBrandesSerial;
  double rel_tolerance = 1e-7;
  double abs_tolerance = 1e-6;
  /// kNaive is O(|V|^3); the default algorithm set only includes it below
  /// this vertex count.
  Vertex max_naive_vertices = 256;
  int threads = 0;
};

struct AlgorithmDivergence {
  Algorithm algorithm;
  ScoreComparison comparison;
};

struct OracleReport {
  Algorithm reference;
  std::vector<AlgorithmDivergence> algorithms;
  bool ok = true;
  double max_divergence = 0.0;  ///< across all algorithms

  /// One line per algorithm: name, max divergence, blame on failure.
  std::string summary() const;
};

/// The exact (score-identical) members of the family for `g`, naive
/// included only when |V| <= max_naive_vertices. kSampling is excluded:
/// it is approximate by design.
std::vector<Algorithm> exact_algorithm_set(const CsrGraph& g,
                                           Vertex max_naive_vertices = 256);

/// Run every selected algorithm on `g` and diff against the reference.
OracleReport differential_check(const CsrGraph& g, const OracleOptions& opts = {});

/// Weighted family: diff weighted_apgre_bc (and, below the naive cap,
/// weighted_naive_bc) against weighted_brandes_bc. Reported under the
/// kApgre / kNaive / kBrandesSerial labels.
OracleReport weighted_differential_check(const WeightedCsrGraph& g,
                                         const OracleOptions& opts = {});

/// One edge mutation of a dynamic differential run.
struct DynamicStep {
  Vertex u = kInvalidVertex;
  Vertex v = kInvalidVertex;
  bool inserting = true;
};

/// Dynamic family: starting from `g`, apply `steps` through DynamicBc and,
/// after every mutation, diff its incrementally maintained scores against
/// the static reference recomputed from scratch on the mutated graph. Each
/// step appears in the report as one AlgorithmDivergence under the kApgre
/// label (steps[i] -> report.algorithms[i]), so summary() still blames the
/// first divergent vertex. Steps must be valid updates (no duplicate
/// inserts, no removals of absent edges, no self-loops) — invalid steps
/// throw Error, same as DynamicBc itself.
OracleReport dynamic_differential_check(const CsrGraph& g,
                                        const std::vector<DynamicStep>& steps,
                                        const OracleOptions& opts = {});

/// Same trajectory check driven through the IncrementalBc engine (localized
/// block re-solves, pendant closed forms, structural-conservative routing)
/// instead of DynamicBc. `engine_options` tunes the engine's APGRE solves —
/// pass PartitionOptions::peel_two_core to diff a *peeled* incremental
/// solver against the static oracle after every step, including the
/// structural fallbacks taken when an update touches the peeled forest.
OracleReport incremental_differential_check(
    const CsrGraph& g, const std::vector<DynamicStep>& steps,
    const BcOptions& engine_options, const OracleOptions& opts = {});

/// Generate `count` valid random mutations for `g` (mixed inserts and
/// removals, deterministic in `seed`), reusable as dynamic_differential_check
/// input. Inserts pick currently-absent non-loop edges, removals pick
/// present ones; steps compound (a removed edge may be re-inserted later).
std::vector<DynamicStep> random_dynamic_steps(const CsrGraph& g,
                                              std::size_t count,
                                              std::uint64_t seed);

}  // namespace apgre
