#include "check/dynamic_metamorphic.hpp"

#include <sstream>
#include <utility>

#include "bc/brandes.hpp"
#include "bc/incremental.hpp"
#include "bcc/bridges.hpp"
#include "bcc/queries.hpp"
#include "check/oracle.hpp"
#include "graph/bfs.hpp"
#include "graph/mutate.hpp"
#include "support/prng.hpp"

namespace apgre {

namespace {

MetamorphicResult not_applied(const std::string& rule, const std::string& why) {
  MetamorphicResult result{rule};
  result.applied = false;
  result.detail = why;
  return result;
}

/// Merge one labelled comparison into `result` (first failure wins blame).
void fold(MetamorphicResult& result, const std::string& label,
          const std::vector<double>& expected,
          const std::vector<double>& actual, double rel, double abs) {
  if (!result.ok) return;
  const ScoreComparison cmp = compare_scores(expected, actual, rel, abs);
  if (cmp.ok) return;
  result.ok = false;
  std::ostringstream os;
  os << label << ": " << cmp.num_violations << " vertices over tolerance; "
     << "worst v" << cmp.worst_vertex << " expected " << cmp.expected_score
     << " actual " << cmp.actual_score;
  result.detail = os.str();
}

void fail(MetamorphicResult& result, const std::string& why) {
  if (!result.ok) return;
  result.ok = false;
  result.detail = why;
}

}  // namespace

MetamorphicResult check_dynamic_pendant_attach(const CsrGraph& g,
                                               const BcOptions& opts,
                                               std::uint64_t seed, double rel,
                                               double abs) {
  const Vertex n = g.num_vertices();
  if (n == 0) return not_applied("dynamic_pendant", "empty graph");

  Xoshiro256 rng(hash_combine64(seed, 0xd1a7));
  const Vertex host = static_cast<Vertex>(rng.bounded(n));

  IncrementalBc engine(g, opts);

  // Closed-form prediction, computed on the pre-attach graph (the static
  // pendant rule as a delta).
  const double sides = g.directed() ? 1.0 : 2.0;
  std::vector<double> predicted = engine.scores();
  const std::vector<double> dependency =
      brandes_bc_from_sources(g, {host}, sides);
  for (Vertex v = 0; v < n; ++v) predicted[v] += dependency[v];
  predicted[host] += sides * static_cast<double>(reachable_count(g, host));
  predicted.push_back(0.0);

  engine.attach_pendant(host);

  MetamorphicResult result{"dynamic_pendant"};
  fold(result, "closed form", predicted, engine.scores(), rel, abs);
  fold(result, "static oracle", brandes_bc(engine.graph()), engine.scores(),
       rel, abs);
  return result;
}

MetamorphicResult check_dynamic_bridge_delete(const CsrGraph& g,
                                              const BcOptions& opts,
                                              std::uint64_t seed, double rel,
                                              double abs) {
  if (g.directed()) {
    return not_applied("dynamic_bridge_delete", "directed graph");
  }
  const BridgeDecomposition bridges = bridge_decomposition(g);
  if (bridges.bridges.empty()) {
    return not_applied("dynamic_bridge_delete", "no bridges");
  }

  Xoshiro256 rng(hash_combine64(seed, 0xb41d));
  const Edge bridge = bridges.bridges[rng.bounded(bridges.bridges.size())];
  const Vertex a = bridge.src;
  const Vertex b = bridge.dst;

  IncrementalBc engine(g, opts);

  // Closed form on the post-delete graph: the bridge carried exactly the
  // ordered pairs crossing sides A (around a) and B (around b). For v not
  // an endpoint, the lost flow is 2|B|*delta'_a(v) + 2|A|*delta'_b(v)
  // (one delta' is zero on each side); the endpoints lose their interior
  // role in the crossing pairs outright.
  const CsrGraph cut = with_edge_removed(g, a, b);
  const double side_a = static_cast<double>(reachable_count(cut, a)) + 1.0;
  const double side_b = static_cast<double>(reachable_count(cut, b)) + 1.0;
  const std::vector<double> from_a =
      brandes_bc_from_sources(cut, {a}, -2.0 * side_b);
  const std::vector<double> from_b =
      brandes_bc_from_sources(cut, {b}, -2.0 * side_a);
  std::vector<double> predicted = engine.scores();
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    predicted[v] += from_a[v] + from_b[v];
  }
  predicted[a] = engine.scores()[a] - 2.0 * (side_a - 1.0) * side_b;
  predicted[b] = engine.scores()[b] - 2.0 * (side_b - 1.0) * side_a;
  const std::vector<double> before = engine.scores();

  engine.remove_edge(a, b);

  MetamorphicResult result{"dynamic_bridge_delete"};
  fold(result, "closed form", predicted, engine.scores(), rel, abs);
  fold(result, "static oracle", brandes_bc(engine.graph()), engine.scores(),
       rel, abs);

  // Re-inserting the bridge is the inverse rule: the originals come back.
  engine.insert_edge(a, b);
  fold(result, "re-insert restoration", before, engine.scores(), rel, abs);
  return result;
}

MetamorphicResult check_dynamic_chord_roundtrip(const CsrGraph& g,
                                                const BcOptions& opts,
                                                std::uint64_t seed, double rel,
                                                double abs) {
  if (g.directed()) {
    return not_applied("dynamic_chord_roundtrip", "directed graph");
  }
  const Vertex n = g.num_vertices();
  if (n < 4) return not_applied("dynamic_chord_roundtrip", "graph too small");

  // Random trials for a chord candidate: two distinct non-articulation
  // vertices sharing a block, not yet adjacent.
  const BlockCutQueries queries(g);
  Xoshiro256 rng(hash_combine64(seed, 0xc04d));
  Vertex u = kInvalidVertex;
  Vertex v = kInvalidVertex;
  for (int trial = 0; trial < 200 && u == kInvalidVertex; ++trial) {
    const Vertex cu = static_cast<Vertex>(rng.bounded(n));
    const Vertex cv = static_cast<Vertex>(rng.bounded(n));
    if (cu == cv || has_arc(g, cu, cv)) continue;
    if (queries.classify_update(cu, cv, /*inserting=*/true) ==
        UpdateLocality::kLocalInsert) {
      u = cu;
      v = cv;
    }
  }
  if (u == kInvalidVertex) {
    return not_applied("dynamic_chord_roundtrip", "no chord candidate found");
  }

  IncrementalBc engine(g, opts);
  const std::vector<double> before = engine.scores();

  MetamorphicResult result{"dynamic_chord_roundtrip"};
  if (engine.insert_edge(u, v) != UpdateLocality::kLocalInsert) {
    fail(result, "chord insert did not classify kLocalInsert");
  }
  fold(result, "static oracle after insert", brandes_bc(engine.graph()),
       engine.scores(), rel, abs);

  // The chord's block minus the chord is the original block, which was
  // biconnected — so the deletion must take the localized path too.
  if (engine.remove_edge(u, v) != UpdateLocality::kLocalDelete) {
    fail(result, "chord delete did not classify kLocalDelete");
  }
  fold(result, "roundtrip restoration", before, engine.scores(), rel, abs);
  if (result.ok && engine.stats().structural_resolves != 0) {
    fail(result, "roundtrip took a structural fallback");
  }
  return result;
}

std::vector<MetamorphicResult> run_dynamic_metamorphic_rules(
    const CsrGraph& g, const BcOptions& opts, std::uint64_t seed, double rel,
    double abs) {
  std::vector<MetamorphicResult> results;
  results.push_back(check_dynamic_pendant_attach(g, opts, seed, rel, abs));
  results.push_back(check_dynamic_bridge_delete(g, opts, seed, rel, abs));
  results.push_back(check_dynamic_chord_roundtrip(g, opts, seed, rel, abs));
  return results;
}

}  // namespace apgre
