#include "check/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "bcc/articulation.hpp"
#include "bcc/bicomp.hpp"
#include "bcc/block_cut_tree.hpp"
#include "bcc/parallel_bicomp.hpp"
#include "graph/transform.hpp"

namespace apgre {

namespace {

template <typename... Parts>
void violation(std::vector<std::string>& out, const Parts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  out.push_back(os.str());
}

/// Naive restricted reach: vertices reachable from `start` (excluded)
/// without entering `blocked` vertices, deliberately independent of the
/// epoch-stamped BFS in bcc/reach.cpp.
std::uint64_t naive_restricted_reach(const CsrGraph& g, Vertex start,
                                     bool forward,
                                     const std::vector<std::uint8_t>& blocked) {
  std::vector<std::uint8_t> visited(g.num_vertices(), 0);
  std::vector<Vertex> queue{start};
  visited[start] = 1;
  std::uint64_t count = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Vertex v = queue[head];
    for (Vertex w : forward ? g.out_neighbors(v) : g.in_neighbors(v)) {
      if (visited[w] || blocked[w]) continue;
      visited[w] = 1;
      queue.push_back(w);
      ++count;
    }
  }
  return count;
}

}  // namespace

Vertex pendant_census(const CsrGraph& g) {
  Vertex count = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (g.directed()) {
      if (g.in_degree(v) == 0 && g.out_degree(v) == 1) ++count;
      continue;
    }
    if (g.out_degree(v) != 1) continue;
    const Vertex host = g.out_neighbors(v)[0];
    if (g.out_degree(host) == 1 && host >= v) continue;  // K2: keep lower id
    ++count;
  }
  return count;
}

std::vector<std::string> check_decomposition_invariants(
    const CsrGraph& g, const Decomposition& dec, std::size_t max_reach_checks) {
  std::vector<std::string> violations;
  const Vertex n = g.num_vertices();

  if (dec.num_vertices != n) {
    violation(violations, "decomposition covers ", dec.num_vertices,
              " vertices, graph has ", n);
    return violations;
  }

  // --- 1. Vertex coverage and multiplicity -------------------------------
  std::vector<Vertex> copies(n, 0);
  std::vector<std::uint8_t> flagged_everywhere(n, 1);
  std::uint64_t size_sum = 0;
  for (std::size_t sgi = 0; sgi < dec.subgraphs.size(); ++sgi) {
    const Subgraph& sg = dec.subgraphs[sgi];
    size_sum += sg.num_vertices();
    if (sg.to_global.size() != sg.num_vertices() ||
        sg.is_boundary_ap.size() != sg.num_vertices()) {
      violation(violations, "sub-graph ", sgi, " has inconsistent array sizes");
      continue;
    }
    for (Vertex local = 0; local < sg.num_vertices(); ++local) {
      const Vertex global = sg.to_global[local];
      if (global >= n) {
        violation(violations, "sub-graph ", sgi, " maps local ", local,
                  " to out-of-range global ", global);
        continue;
      }
      ++copies[global];
      if (!sg.is_boundary_ap[local]) flagged_everywhere[global] = 0;
    }
    for (Vertex local : sg.boundary_aps) {
      if (local >= sg.num_vertices() || !sg.is_boundary_ap[local]) {
        violation(violations, "sub-graph ", sgi, " boundary AP list and flags ",
                  "disagree at local ", local);
      }
    }
  }
  std::uint64_t non_isolated = 0;
  std::uint64_t shared_extra = 0;
  for (Vertex v = 0; v < n; ++v) {
    const bool isolated = g.undirected_degree(v) == 0;
    if (!isolated) ++non_isolated;
    if (isolated && copies[v] != 0) {
      violation(violations, "isolated vertex ", v, " assigned to a sub-graph");
    }
    if (!isolated && copies[v] == 0) {
      violation(violations, "vertex ", v, " with arcs is in no sub-graph");
    }
    if (copies[v] > 1) {
      shared_extra += copies[v] - 1;
      if (!flagged_everywhere[v]) {
        violation(violations, "vertex ", v, " is in ", copies[v],
                  " sub-graphs but not flagged boundary AP in all of them");
      }
    }
  }
  if (size_sum != non_isolated + shared_extra) {
    violation(violations, "sum of sub-graph sizes ", size_sum, " != ",
              non_isolated, " non-isolated + ", shared_extra, " shared copies");
  }

  // --- 2. Boundary APs are articulation points; the counter matches ------
  const std::vector<bool> is_ap = articulation_points(g);
  const auto ap_count = static_cast<Vertex>(
      std::count(is_ap.begin(), is_ap.end(), true));
  if (dec.num_articulation_points != ap_count) {
    violation(violations, "decomposition counts ", dec.num_articulation_points,
              " articulation points, standalone finder counts ", ap_count);
  }
  for (std::size_t sgi = 0; sgi < dec.subgraphs.size(); ++sgi) {
    const Subgraph& sg = dec.subgraphs[sgi];
    for (Vertex local : sg.boundary_aps) {
      if (local >= sg.num_vertices()) continue;
      const Vertex global = sg.to_global[local];
      if (!is_ap[global]) {
        violation(violations, "sub-graph ", sgi, " boundary vertex g", global,
                  " is not an articulation point");
      }
      if (copies[global] < 2) {
        violation(violations, "boundary AP g", global,
                  " is interior to a single sub-graph");
      }
    }
  }

  // --- 3. alpha/beta against naive restricted BFS ------------------------
  std::size_t reach_checked = 0;
  std::vector<std::uint8_t> blocked(n, 0);
  for (std::size_t sgi = 0; sgi < dec.subgraphs.size(); ++sgi) {
    const Subgraph& sg = dec.subgraphs[sgi];
    if (sg.alpha.size() != sg.num_vertices() ||
        sg.beta.size() != sg.num_vertices()) {
      violation(violations, "sub-graph ", sgi, " alpha/beta size mismatch");
      continue;
    }
    for (Vertex local = 0; local < sg.num_vertices(); ++local) {
      if (!sg.is_boundary_ap[local] &&
          (sg.alpha[local] != 0 || sg.beta[local] != 0)) {
        violation(violations, "sub-graph ", sgi, " non-boundary local ", local,
                  " has non-zero reach counts");
      }
    }
    if (reach_checked >= max_reach_checks) continue;
    for (Vertex v : sg.to_global) blocked[v] = 1;
    for (Vertex local : sg.boundary_aps) {
      if (reach_checked++ >= max_reach_checks) break;
      const Vertex global = sg.to_global[local];
      blocked[global] = 0;  // the AP itself is the gateway
      const std::uint64_t alpha =
          naive_restricted_reach(g, global, /*forward=*/true, blocked);
      const std::uint64_t beta =
          g.directed()
              ? naive_restricted_reach(g, global, /*forward=*/false, blocked)
              : alpha;
      blocked[global] = 1;
      if (sg.alpha[local] != alpha || sg.beta[local] != beta) {
        violation(violations, "sub-graph ", sgi, " AP g", global, ": alpha/beta (",
                  sg.alpha[local], ", ", sg.beta[local],
                  ") != restricted BFS ground truth (", alpha, ", ", beta, ")");
      }
      if (!g.directed() && sg.alpha[local] != sg.beta[local]) {
        violation(violations, "undirected sub-graph ", sgi, " AP g", global,
                  " has alpha != beta");
      }
    }
    for (Vertex v : sg.to_global) blocked[v] = 0;
  }

  // --- 4. Root set / gamma / pendant accounting --------------------------
  Vertex removed_total = 0;
  for (std::size_t sgi = 0; sgi < dec.subgraphs.size(); ++sgi) {
    const Subgraph& sg = dec.subgraphs[sgi];
    std::uint64_t removed_here = 0;
    std::uint64_t gamma_sum = 0;
    for (Vertex local = 0; local < sg.num_vertices(); ++local) {
      removed_here += sg.removed[local] ? 1 : 0;
      gamma_sum += sg.gamma[local];
      const bool in_roots = std::binary_search(sg.roots.begin(), sg.roots.end(),
                                               local);
      if (in_roots == (sg.removed[local] != 0)) {
        violation(violations, "sub-graph ", sgi, " local ", local,
                  " is neither exactly a root nor exactly removed");
      }
      if (sg.removed[local]) {
        const Vertex global = sg.to_global[local];
        const bool pendant_shape =
            g.directed() ? (g.in_degree(global) == 0 && g.out_degree(global) == 1)
                         : g.undirected_degree(global) == 1;
        if (!pendant_shape) {
          violation(violations, "sub-graph ", sgi, " removed vertex g", global,
                    " fails the pendant degree census");
        }
      }
    }
    if (gamma_sum != removed_here) {
      violation(violations, "sub-graph ", sgi, " gamma sum ", gamma_sum,
                " != removed pendant count ", removed_here);
    }
    removed_total += static_cast<Vertex>(removed_here);
  }
  if (removed_total != dec.num_pendants_removed) {
    violation(violations, "per-sub-graph removed pendants ", removed_total,
              " != decomposition counter ", dec.num_pendants_removed);
  }

  return violations;
}

std::vector<std::string> check_decomposition_agreement(
    const CsrGraph& g, ParallelDecomposition mode) {
  std::vector<std::string> violations;
  const bool parallel = use_parallel_decomposition(mode, g);
  const BiconnectedComponents bcc = parallel
                                        ? parallel_biconnected_components(g)
                                        : biconnected_components(g);

  const CsrGraph projection_storage =
      g.directed() ? undirected_projection(g) : CsrGraph();
  const CsrGraph& u = g.directed() ? projection_storage : g;
  const Vertex n = u.num_vertices();

  // --- 1. Edge partition: every projection edge in exactly one block ----
  std::map<Edge, int> edge_blocks;
  for (const Edge& e : u.arcs()) {
    if (e.src < e.dst) edge_blocks.emplace(e, 0);
  }
  for (Vertex b = 0; b < bcc.num_components; ++b) {
    for (const Edge& e : bcc.component_edges[b]) {
      auto it = edge_blocks.find(e);
      if (it == edge_blocks.end()) {
        violation(violations, "block ", b, " lists edge ", e.src, "-", e.dst,
                  " absent from the graph");
        continue;
      }
      ++it->second;
    }
    // Vertex set == edge endpoints (k2+ blocks always carry edges).
    std::vector<Vertex> endpoints;
    for (const Edge& e : bcc.component_edges[b]) {
      endpoints.push_back(e.src);
      endpoints.push_back(e.dst);
    }
    std::sort(endpoints.begin(), endpoints.end());
    endpoints.erase(std::unique(endpoints.begin(), endpoints.end()),
                    endpoints.end());
    if (bcc.component_vertices[b] != endpoints) {
      violation(violations, "block ", b,
                " vertex set is not its edges' endpoint set");
    }
  }
  for (const auto& [e, count] : edge_blocks) {
    if (count != 1) {
      violation(violations, "edge ", e.src, "-", e.dst, " lies in ", count,
                " blocks (expected exactly 1)");
    }
  }

  // --- 2. Articulation flags against the standalone finder -------------
  const std::vector<bool> standalone = articulation_points(u);
  std::vector<Vertex> membership(n, 0);
  for (const auto& vertices : bcc.component_vertices) {
    for (Vertex v : vertices) ++membership[v];
  }
  for (Vertex v = 0; v < n; ++v) {
    if (bcc.is_articulation[v] != standalone[v]) {
      violation(violations, "vertex ", v, " articulation flag ",
                bcc.is_articulation[v] ? "set" : "clear",
                ", standalone finder says ", standalone[v] ? "set" : "clear");
    }
    if (bcc.is_articulation[v] && membership[v] < 2) {
      violation(violations, "articulation point ", v, " is in ",
                membership[v], " blocks");
    }
    const Vertex home = bcc.any_component[v];
    if (u.out_degree(v) == 0) {
      if (home != kInvalidVertex) {
        violation(violations, "isolated vertex ", v, " has any_component ",
                  home);
      }
    } else if (home >= bcc.num_components ||
               !std::binary_search(bcc.component_vertices[home].begin(),
                                   bcc.component_vertices[home].end(), v)) {
      violation(violations, "any_component[", v, "] = ", home,
                " does not contain the vertex");
    }
  }

  // --- 3. Block-cut tree is a forest ------------------------------------
  if (!is_forest(block_cut_tree(bcc, n))) {
    violation(violations, "block-cut tree has a cycle");
  }

  // --- 4. Parallel pass agrees with the serial DFS ----------------------
  if (parallel) {
    BiconnectedComponents serial = biconnected_components(g);
    canonicalize_blocks(serial);
    if (serial.num_components != bcc.num_components ||
        serial.component_vertices != bcc.component_vertices ||
        serial.component_edges != bcc.component_edges ||
        serial.is_articulation != bcc.is_articulation ||
        serial.any_component != bcc.any_component) {
      violation(violations,
                "canonicalized parallel decomposition differs from the ",
                "canonicalized serial Hopcroft-Tarjan output");
    }
  }
  return violations;
}

std::vector<std::string> check_stats_invariants(const CsrGraph& g,
                                                const ApgreStats& stats,
                                                const ApgreOptions& opts) {
  std::vector<std::string> violations;
  const Decomposition dec = decompose(g, opts.partition);

  if (stats.num_subgraphs != dec.subgraphs.size()) {
    violation(violations, "stats report ", stats.num_subgraphs,
              " sub-graphs, decomposition yields ", dec.subgraphs.size());
  }
  if (stats.num_articulation_points != dec.num_articulation_points) {
    violation(violations, "stats report ", stats.num_articulation_points,
              " APs, decomposition yields ", dec.num_articulation_points);
  }
  if (stats.num_pendants_removed != dec.num_pendants_removed) {
    violation(violations, "stats report ", stats.num_pendants_removed,
              " pendants removed, decomposition yields ",
              dec.num_pendants_removed);
  }
  if (opts.partition.total_redundancy &&
      stats.num_pendants_removed != pendant_census(g)) {
    violation(violations, "stats report ", stats.num_pendants_removed,
              " pendants removed, degree census counts ", pendant_census(g));
  }
  if (!opts.partition.total_redundancy && stats.num_pendants_removed != 0) {
    violation(violations, "pendant derivation disabled but stats report ",
              stats.num_pendants_removed, " pendants removed");
  }
  if (!dec.subgraphs.empty()) {
    const Subgraph& top = dec.subgraphs[dec.top_subgraph];
    if (stats.top_vertices != top.num_vertices() ||
        stats.top_arcs != top.num_arcs()) {
      violation(violations, "stats top sub-graph (", stats.top_vertices, " v, ",
                stats.top_arcs, " arcs) != decomposition top (",
                top.num_vertices(), " v, ", top.num_arcs(), " arcs)");
    }
  }

  const Decomposition::WorkModel work = dec.work_model(g.num_arcs());
  if (std::fabs(stats.partial_redundancy - work.partial_redundancy) > 1e-12 ||
      std::fabs(stats.total_redundancy - work.total_redundancy) > 1e-12) {
    violation(violations, "stats redundancy (", stats.partial_redundancy, ", ",
              stats.total_redundancy, ") != work model (",
              work.partial_redundancy, ", ", work.total_redundancy, ")");
  }
  if (stats.partial_redundancy < -1e-12 || stats.total_redundancy < -1e-12 ||
      stats.partial_redundancy + stats.total_redundancy > 1.0 + 1e-12) {
    violation(violations, "redundancy fractions (", stats.partial_redundancy,
              ", ", stats.total_redundancy, ") outside [0, 1]");
  }

  const double phases[] = {stats.partition_seconds, stats.reach_seconds,
                           stats.top_bc_seconds, stats.rest_bc_seconds};
  double phase_sum = 0.0;
  for (double phase : phases) {
    if (phase < 0.0) violation(violations, "negative phase time ", phase);
    phase_sum += phase;
  }
  // The phases are timed sequentially inside the total window; a small
  // slack absorbs timer granularity.
  if (phase_sum > stats.total_seconds + 1e-3) {
    violation(violations, "phase times sum to ", phase_sum,
              " s, more than the total ", stats.total_seconds, " s");
  }
  return violations;
}

}  // namespace apgre
