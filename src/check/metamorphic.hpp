// Metamorphic correctness rules for the BC algorithm family.
//
// Each rule applies a score-preserving or score-predictable transformation
// to an input graph and asserts the predicted relationship between the
// scores before and after, using the algorithm under test for both runs:
//
//   * relabel        BC'(pi(v)) == BC(v) for a random permutation pi
//   * pendant        attaching a pendant p to host h shifts every score by
//                    the paper's gamma-derivation delta: +2*delta_h(v)
//                    (undirected; +delta_h(v) directed, arc p->h), +2r at
//                    the host (r = vertices reachable from h), and the
//                    pendant itself scores 0
//   * union          the disjoint union of two graphs scores as the
//                    concatenation of their separate score vectors
//   * subdivision    subdividing a bridge (u,w) with a new vertex x leaves
//                    pair structure intact: BC'(v) = BC(v) + 2*delta_x(v),
//                    and BC'(x) = 2*a*b where a/b are the side sizes of the
//                    bridge (the ordered pairs that must cross it)
//   * isolated       appending an isolated vertex changes nothing and the
//                    new vertex scores 0
//   * peel_attach    decorating the graph with seeded chains + pendants and
//                    then 2-core-peeling the decoration must reproduce the
//                    algorithm under test exactly: the 2-core keeps its
//                    scores (up to the closed-form anchor correction) and
//                    every attached vertex matches its closed-form
//                    prediction (graph/transform.hpp two_core_peel)
//   * peel_solve     solving through PartitionOptions::peel_two_core must
//                    equal the algorithm under test unpeeled — exactly, on
//                    every graph including pure trees (empty core) and
//                    directed inputs (conservative bypass)
//
// delta_s is the Brandes single-source dependency, so the pendant and
// subdivision predictions cross-check the algorithm under test against an
// independent accumulation path. Rules assume an exact algorithm; scores
// are compared with the oracle tolerance. The halving option is ignored
// (rules are stated in the ordered-pair convention).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bc/bc.hpp"
#include "graph/csr.hpp"

namespace apgre {

struct MetamorphicResult {
  std::string rule;
  /// False when the rule's precondition failed (e.g. no bridge to
  /// subdivide); ok is true in that case but the rule checked nothing.
  bool applied = true;
  bool ok = true;
  std::string detail;  ///< blame on failure (worst vertex, scores, norms)
};

MetamorphicResult check_relabel_invariance(const CsrGraph& g,
                                           const BcOptions& opts,
                                           std::uint64_t seed,
                                           double rel = 1e-7, double abs = 1e-6);

MetamorphicResult check_pendant_attachment(const CsrGraph& g,
                                           const BcOptions& opts,
                                           std::uint64_t seed,
                                           double rel = 1e-7, double abs = 1e-6);

MetamorphicResult check_disjoint_union(const CsrGraph& g1, const CsrGraph& g2,
                                       const BcOptions& opts,
                                       double rel = 1e-7, double abs = 1e-6);

MetamorphicResult check_bridge_subdivision(const CsrGraph& g,
                                           const BcOptions& opts,
                                           std::uint64_t seed,
                                           double rel = 1e-7, double abs = 1e-6);

MetamorphicResult check_isolated_vertex(const CsrGraph& g, const BcOptions& opts,
                                        double rel = 1e-7, double abs = 1e-6);

/// peel_attach: attach seeded tendril chains and pendants to `g`, peel the
/// decorated graph to its 2-core, solve the flat reduction with the
/// algorithm under test and re-expand — must equal solving the decorated
/// graph directly. Not applied to directed or empty graphs (nothing to
/// peel / nothing to attach to).
MetamorphicResult check_peel_attachment(const CsrGraph& g, const BcOptions& opts,
                                        std::uint64_t seed, double rel = 1e-7,
                                        double abs = 1e-6);

/// peel_solve: betweenness with Algorithm::kApgre and
/// PartitionOptions::peel_two_core enabled must equal the algorithm under
/// test without peeling. Applies to every graph — directed inputs exercise
/// the conservative bypass, pure trees the empty-core path.
MetamorphicResult check_peel_solve_equivalence(const CsrGraph& g,
                                               const BcOptions& opts,
                                               double rel = 1e-7,
                                               double abs = 1e-6);

/// Run every applicable rule on `g` (union pairs it with a small seeded
/// companion of the same directedness).
std::vector<MetamorphicResult> run_metamorphic_rules(const CsrGraph& g,
                                                     const BcOptions& opts,
                                                     std::uint64_t seed,
                                                     double rel = 1e-7,
                                                     double abs = 1e-6);

}  // namespace apgre
