// Dynamic metamorphic rules: exact score predictions that survive a graph
// *mutation*, checked against the incremental engine (bc/incremental.hpp)
// after it applies the update — so the localized update path is proven
// against closed forms derived independently of any BC implementation, on
// top of the static-oracle diff the dynamic differential harness already
// does.
//
//   * dynamic_pendant         attaching a pendant p to host h must shift
//                             every score by the gamma-derivation delta
//                             (+sides*delta_h(v), +sides*reach(h) at the
//                             host, 0 at the pendant), and the engine's
//                             scores must also match a fresh static solve
//   * dynamic_bridge_delete   deleting a bridge (a,b) splitting sides A/B
//                             zeroes exactly the cross-component pairs:
//                             BC'(v) = BC(v) - 2|B|*delta'_a(v)
//                                            - 2|A|*delta'_b(v),
//                             BC'(a) = BC(a) - 2(|A|-1)|B| (and b
//                             symmetrically), delta' on the post-delete
//                             graph (undirected only)
//   * dynamic_chord_roundtrip inserting a chord between two non-AP
//                             vertices of one block must classify
//                             kLocalInsert and match a fresh static solve;
//                             deleting it again must classify kLocalDelete
//                             and restore the original scores exactly
//
// Results reuse MetamorphicResult (applied=false when the precondition
// fails: no bridge, no chord candidate, directed input, ...).
#pragma once

#include <cstdint>

#include "bc/bc.hpp"
#include "check/metamorphic.hpp"
#include "graph/csr.hpp"

namespace apgre {

MetamorphicResult check_dynamic_pendant_attach(const CsrGraph& g,
                                               const BcOptions& opts,
                                               std::uint64_t seed,
                                               double rel = 1e-7,
                                               double abs = 1e-6);

MetamorphicResult check_dynamic_bridge_delete(const CsrGraph& g,
                                              const BcOptions& opts,
                                              std::uint64_t seed,
                                              double rel = 1e-7,
                                              double abs = 1e-6);

MetamorphicResult check_dynamic_chord_roundtrip(const CsrGraph& g,
                                                const BcOptions& opts,
                                                std::uint64_t seed,
                                                double rel = 1e-7,
                                                double abs = 1e-6);

/// Run every applicable dynamic rule on `g`.
std::vector<MetamorphicResult> run_dynamic_metamorphic_rules(
    const CsrGraph& g, const BcOptions& opts, std::uint64_t seed,
    double rel = 1e-7, double abs = 1e-6);

}  // namespace apgre
