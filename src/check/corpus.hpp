// Seeded random-graph corpus shared by the correctness harness (oracle /
// metamorphic / invariant sweeps), the property tests and the apgre_diff
// CLI driver. Every case is a (shape, directedness, decoration) combination
// mirroring a structural class of the paper's evaluation graphs; the same
// (seed, tiny) pair always yields the same corpus.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/weighted.hpp"

namespace apgre {

struct CorpusCase {
  std::string name;
  CsrGraph graph;
};

/// Deterministic family of mixed graphs keyed by seed. `tiny` keeps sizes
/// within reach of the O(|V|^3) naive oracle; the large variant is sized
/// for the non-naive algorithms.
std::vector<CorpusCase> graph_corpus(std::uint64_t seed, bool tiny);

struct WeightedCorpusCase {
  std::string name;
  WeightedCsrGraph graph;
};

/// Weighted companions: a subset of the corpus shapes decorated with
/// seeded integer arc weights (the weighted algorithms compare path
/// lengths exactly, so weights stay integer-valued doubles).
std::vector<WeightedCorpusCase> weighted_corpus(std::uint64_t seed, bool tiny);

}  // namespace apgre
