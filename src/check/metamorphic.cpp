#include "check/metamorphic.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <utility>

#include "bc/brandes.hpp"
#include "bcc/bridges.hpp"
#include "check/oracle.hpp"
#include "graph/bfs.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"
#include "support/prng.hpp"

namespace apgre {

namespace {

/// Rules are stated in the ordered-pair convention; halving would scale the
/// measured side but not the predicted deltas.
std::vector<double> run_algorithm(const CsrGraph& g, const BcOptions& opts) {
  BcOptions run = opts;
  run.undirected_halving = false;
  return betweenness(g, run).scores;
}

MetamorphicResult verdict(const std::string& rule,
                          const std::vector<double>& predicted,
                          const std::vector<double>& actual, double rel,
                          double abs) {
  MetamorphicResult result{rule};
  const ScoreComparison cmp = compare_scores(predicted, actual, rel, abs);
  result.ok = cmp.ok;
  if (!cmp.ok) {
    std::ostringstream os;
    os << cmp.num_violations << " vertices over tolerance; worst v"
       << cmp.worst_vertex << " predicted " << cmp.expected_score << " actual "
       << cmp.actual_score << "; |predicted|=" << cmp.expected_norm
       << " |actual|=" << cmp.actual_norm;
    result.detail = os.str();
  }
  return result;
}

MetamorphicResult not_applied(const std::string& rule, const std::string& why) {
  MetamorphicResult result{rule};
  result.applied = false;
  result.detail = why;
  return result;
}

}  // namespace

MetamorphicResult check_relabel_invariance(const CsrGraph& g,
                                           const BcOptions& opts,
                                           std::uint64_t seed, double rel,
                                           double abs) {
  const Vertex n = g.num_vertices();
  if (n == 0) return not_applied("relabel", "empty graph");

  std::vector<Vertex> permutation(n);
  std::iota(permutation.begin(), permutation.end(), 0);
  Xoshiro256 rng(hash_combine64(seed, 0x51ab));
  for (Vertex i = n; i-- > 1;) {
    std::swap(permutation[i], permutation[rng.bounded(i + 1)]);
  }

  const std::vector<double> base = run_algorithm(g, opts);
  const std::vector<double> relabeled = run_algorithm(relabel(g, permutation), opts);
  std::vector<double> predicted(n);
  for (Vertex v = 0; v < n; ++v) predicted[permutation[v]] = base[v];
  return verdict("relabel", predicted, relabeled, rel, abs);
}

MetamorphicResult check_pendant_attachment(const CsrGraph& g,
                                           const BcOptions& opts,
                                           std::uint64_t seed, double rel,
                                           double abs) {
  const Vertex n = g.num_vertices();
  if (n == 0) return not_applied("pendant", "empty graph");

  Xoshiro256 rng(hash_combine64(seed, 0x9e4d));
  const Vertex host = static_cast<Vertex>(rng.bounded(n));
  const Vertex pendant = n;

  EdgeList arcs = g.arcs();
  arcs.push_back(Edge{pendant, host});
  if (!g.directed()) arcs.push_back(Edge{host, pendant});
  const CsrGraph decorated =
      CsrGraph::from_edges(n + 1, std::move(arcs), g.directed());

  // gamma-derivation delta: the pendant's DAG is the host's DAG plus the
  // host itself, so each score grows by the host's single-source dependency
  // (twice for undirected graphs: source- and target-side ordered pairs).
  const double sides = g.directed() ? 1.0 : 2.0;
  const std::vector<double> host_dependency =
      brandes_bc_from_sources(g, {host}, 1.0);
  const auto host_reach = static_cast<double>(reachable_count(g, host));

  std::vector<double> predicted = run_algorithm(g, opts);
  for (Vertex v = 0; v < n; ++v) predicted[v] += sides * host_dependency[v];
  predicted[host] += sides * host_reach;
  predicted.push_back(0.0);  // a degree-1 vertex is never interior

  return verdict("pendant", predicted, run_algorithm(decorated, opts), rel, abs);
}

MetamorphicResult check_disjoint_union(const CsrGraph& g1, const CsrGraph& g2,
                                       const BcOptions& opts, double rel,
                                       double abs) {
  if (g1.directed() != g2.directed()) {
    return not_applied("union", "mixed directedness");
  }
  const Vertex offset = g1.num_vertices();
  EdgeList arcs = g1.arcs();
  for (Edge e : g2.arcs()) arcs.push_back(Edge{e.src + offset, e.dst + offset});
  const CsrGraph united = CsrGraph::from_edges(
      offset + g2.num_vertices(), std::move(arcs), g1.directed());

  std::vector<double> predicted = run_algorithm(g1, opts);
  const std::vector<double> second = run_algorithm(g2, opts);
  predicted.insert(predicted.end(), second.begin(), second.end());
  return verdict("union", predicted, run_algorithm(united, opts), rel, abs);
}

MetamorphicResult check_bridge_subdivision(const CsrGraph& g,
                                           const BcOptions& opts,
                                           std::uint64_t seed, double rel,
                                           double abs) {
  if (g.directed()) return not_applied("subdivision", "directed graph");
  const BridgeDecomposition bridges = bridge_decomposition(g);
  if (bridges.bridges.empty()) return not_applied("subdivision", "no bridges");

  Xoshiro256 rng(hash_combine64(seed, 0xb21d));
  const Edge bridge = bridges.bridges[rng.bounded(bridges.bridges.size())];
  const Vertex n = g.num_vertices();
  const Vertex x = n;

  EdgeList arcs;
  for (Edge e : g.arcs()) {
    const bool is_bridge = (e.src == bridge.src && e.dst == bridge.dst) ||
                           (e.src == bridge.dst && e.dst == bridge.src);
    if (!is_bridge) arcs.push_back(e);
  }
  EdgeList cut = arcs;  // the graph with the bridge removed, for side sizes
  arcs.push_back(Edge{bridge.src, x});
  arcs.push_back(Edge{x, bridge.src});
  arcs.push_back(Edge{x, bridge.dst});
  arcs.push_back(Edge{bridge.dst, x});
  const CsrGraph subdivided = CsrGraph::from_edges(n + 1, std::move(arcs), false);

  // Side sizes of the bridge: the ordered pairs crossing it all pass
  // through the subdivision vertex.
  const CsrGraph without_bridge = CsrGraph::from_edges(n, std::move(cut), false);
  const ComponentLabels labels = connected_components(without_bridge);
  double side_src = 0.0;
  double side_dst = 0.0;
  for (Vertex v = 0; v < n; ++v) {
    if (labels.component[v] == labels.component[bridge.src]) side_src += 1.0;
    if (labels.component[v] == labels.component[bridge.dst]) side_dst += 1.0;
  }

  // Existing pairs keep their shortest-path structure (every crossing path
  // still crosses the bridge exactly once); the new vertex only adds its
  // own source/target pairs, worth twice its dependency.
  const std::vector<double> x_dependency =
      brandes_bc_from_sources(subdivided, {x}, 1.0);
  std::vector<double> predicted = run_algorithm(g, opts);
  for (Vertex v = 0; v < n; ++v) predicted[v] += 2.0 * x_dependency[v];
  predicted.push_back(2.0 * side_src * side_dst);

  return verdict("subdivision", predicted, run_algorithm(subdivided, opts), rel,
                 abs);
}

MetamorphicResult check_isolated_vertex(const CsrGraph& g, const BcOptions& opts,
                                        double rel, double abs) {
  const CsrGraph padded =
      CsrGraph::from_edges(g.num_vertices() + 1, g.arcs(), g.directed());
  std::vector<double> predicted = run_algorithm(g, opts);
  predicted.push_back(0.0);
  return verdict("isolated", predicted, run_algorithm(padded, opts), rel, abs);
}

MetamorphicResult check_peel_attachment(const CsrGraph& g, const BcOptions& opts,
                                        std::uint64_t seed, double rel,
                                        double abs) {
  if (g.directed()) return not_applied("peel_attach", "directed graph");
  if (g.num_vertices() == 0) return not_applied("peel_attach", "empty graph");

  // Decorate with the tree-fringe shapes the peel exists for: tendril
  // chains plus single pendants, hosts seeded per rule invocation.
  const CsrGraph decorated = attach_pendants(
      attach_chains(g, /*count=*/2, /*length=*/3, hash_combine64(seed, 0x2c07)),
      /*count=*/3, hash_combine64(seed, 0x9ee1));

  const PeelResult peel = two_core_peel(decorated);
  std::vector<double> predicted =
      run_algorithm(peeled_reduction(decorated, peel), opts);
  expand_peeled_scores(peel, predicted);
  return verdict("peel_attach", predicted, run_algorithm(decorated, opts), rel,
                 abs);
}

MetamorphicResult check_peel_solve_equivalence(const CsrGraph& g,
                                               const BcOptions& opts,
                                               double rel, double abs) {
  BcOptions peeled = opts;
  peeled.algorithm = Algorithm::kApgre;
  peeled.apgre.partition.peel_two_core = true;
  return verdict("peel_solve", run_algorithm(g, opts), run_algorithm(g, peeled),
                 rel, abs);
}

std::vector<MetamorphicResult> run_metamorphic_rules(const CsrGraph& g,
                                                     const BcOptions& opts,
                                                     std::uint64_t seed,
                                                     double rel, double abs) {
  std::vector<MetamorphicResult> results;
  results.push_back(check_relabel_invariance(g, opts, seed, rel, abs));
  results.push_back(check_pendant_attachment(g, opts, seed, rel, abs));
  results.push_back(check_isolated_vertex(g, opts, rel, abs));
  results.push_back(check_bridge_subdivision(g, opts, seed, rel, abs));
  const CsrGraph companion =
      erdos_renyi(20, 40, g.directed(), hash_combine64(seed, 0xc0de));
  results.push_back(check_disjoint_union(g, companion, opts, rel, abs));
  results.push_back(check_peel_attachment(g, opts, seed, rel, abs));
  results.push_back(check_peel_solve_equivalence(g, opts, rel, abs));
  return results;
}

}  // namespace apgre
