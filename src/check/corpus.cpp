#include "check/corpus.hpp"

#include "graph/generators.hpp"
#include "graph/transform.hpp"

namespace apgre {

std::vector<CorpusCase> graph_corpus(std::uint64_t seed, bool tiny) {
  const Vertex n = tiny ? 60 : 600;
  const Vertex pendants = tiny ? 15 : 150;
  std::vector<CorpusCase> cases;
  cases.push_back({"erdos_undirected",
                   erdos_renyi(n, static_cast<EdgeId>(2) * n, false, seed)});
  cases.push_back({"erdos_directed",
                   erdos_renyi(n, static_cast<EdgeId>(2) * n, true, seed + 1)});
  cases.push_back({"erdos_sparse_undirected",
                   erdos_renyi(n, n, false, seed + 2)});
  cases.push_back({"erdos_sparse_directed",
                   erdos_renyi(n, n, true, seed + 3)});
  cases.push_back({"barabasi", barabasi_albert(n, 2, seed + 4)});
  cases.push_back(
      {"barabasi_pendants",
       attach_pendants(barabasi_albert(n, 2, seed + 5), pendants, seed + 6)});
  cases.push_back({"tree", random_tree(n, seed + 7)});
  cases.push_back({"caveman", caveman(tiny ? 4 : 20, tiny ? 8 : 12, seed + 8)});
  cases.push_back({"grid", road_grid(tiny ? 6 : 20, tiny ? 8 : 25, 0.2, 0.1,
                                     seed + 9)});
  cases.push_back(
      {"rmat_directed",
       rmat(tiny ? 5 : 9, 4, 0.45, 0.2, 0.2, /*symmetric=*/false, seed + 10)});
  cases.push_back(
      {"rmat_pendants_directed",
       attach_pendants(rmat(tiny ? 5 : 9, 4, 0.45, 0.2, 0.2, false, seed + 11),
                       pendants, seed + 12)});
  cases.push_back({"barbell", barbell(tiny ? 6 : 20, tiny ? 4 : 10)});
  cases.push_back({"satellites",
                   attach_communities(erdos_renyi(n / 2, n, false, seed + 13),
                                      tiny ? 4 : 30, tiny ? 5 : 12, seed + 14)});
  cases.push_back(
      {"satellites_directed",
       attach_communities(rmat(tiny ? 5 : 8, 4, 0.45, 0.2, 0.2, false, seed + 15),
                          tiny ? 4 : 20, tiny ? 5 : 10, seed + 16)});
  cases.push_back({"tendrils",
                   attach_chains(erdos_renyi(n / 2, n, false, seed + 17),
                                 tiny ? 5 : 40, tiny ? 3 : 5, seed + 18)});
  return cases;
}

std::vector<WeightedCorpusCase> weighted_corpus(std::uint64_t seed, bool tiny) {
  const Vertex n = tiny ? 50 : 400;
  std::vector<WeightedCorpusCase> cases;
  cases.push_back(
      {"weighted_erdos_undirected",
       with_random_weights(erdos_renyi(n, static_cast<EdgeId>(2) * n, false, seed),
                           1, 8, seed + 100)});
  cases.push_back(
      {"weighted_erdos_directed",
       with_random_weights(erdos_renyi(n, static_cast<EdgeId>(2) * n, true,
                                       seed + 1),
                           1, 8, seed + 101)});
  cases.push_back(
      {"weighted_grid",
       with_random_weights(road_grid(tiny ? 5 : 16, tiny ? 8 : 20, 0.2, 0.1,
                                     seed + 2),
                           1, 5, seed + 102)});
  cases.push_back(
      {"weighted_pendants",
       with_random_weights(attach_pendants(barabasi_albert(n, 2, seed + 3),
                                           tiny ? 12 : 100, seed + 4),
                           1, 6, seed + 103)});
  return cases;
}

}  // namespace apgre
