#include "check/oracle.hpp"

#include <cmath>
#include <random>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "bc/dynamic.hpp"
#include "bc/incremental.hpp"
#include "bc/weighted.hpp"
#include "support/error.hpp"

namespace apgre {

ScoreComparison compare_scores(const std::vector<double>& expected,
                               const std::vector<double>& actual,
                               double rel, double abs) {
  APGRE_ASSERT_MSG(expected.size() == actual.size(),
                   "score vectors must cover the same vertex set");
  ScoreComparison cmp;
  double expected_sq = 0.0;
  double actual_sq = 0.0;
  for (std::size_t v = 0; v < expected.size(); ++v) {
    expected_sq += expected[v] * expected[v];
    actual_sq += actual[v] * actual[v];
    const double divergence = std::fabs(expected[v] - actual[v]);
    const double tolerance =
        abs + rel * std::max(std::fabs(expected[v]), std::fabs(actual[v]));
    const double excess = divergence - tolerance;
    if (divergence > cmp.max_divergence) cmp.max_divergence = divergence;
    if (excess > 0.0) ++cmp.num_violations;
    if (cmp.worst_vertex == kInvalidVertex || excess > cmp.worst_excess) {
      cmp.worst_excess = excess;
      cmp.worst_vertex = static_cast<Vertex>(v);
      cmp.expected_score = expected[v];
      cmp.actual_score = actual[v];
    }
  }
  cmp.expected_norm = std::sqrt(expected_sq);
  cmp.actual_norm = std::sqrt(actual_sq);
  cmp.ok = cmp.num_violations == 0;
  return cmp;
}

std::vector<Algorithm> exact_algorithm_set(const CsrGraph& g,
                                           Vertex max_naive_vertices) {
  // Derived from the registry's capability flags: every exact algorithm,
  // with the O(V^3) test-only oracle gated on graph size.
  std::vector<Algorithm> set;
  for (const AlgorithmInfo& info : algorithm_registry()) {
    if (!info.exact) continue;
    if (info.test_only && g.num_vertices() > max_naive_vertices) continue;
    set.push_back(info.algorithm);
  }
  return set;
}

namespace {

OracleReport build_report(Algorithm reference,
                          const std::vector<double>& reference_scores,
                          const std::vector<std::pair<Algorithm,
                                                      std::vector<double>>>& runs,
                          double rel, double abs) {
  OracleReport report;
  report.reference = reference;
  for (const auto& [algorithm, scores] : runs) {
    AlgorithmDivergence d{algorithm,
                          compare_scores(reference_scores, scores, rel, abs)};
    report.ok = report.ok && d.comparison.ok;
    report.max_divergence =
        std::max(report.max_divergence, d.comparison.max_divergence);
    report.algorithms.push_back(std::move(d));
  }
  return report;
}

}  // namespace

std::string OracleReport::summary() const {
  std::ostringstream os;
  for (const AlgorithmDivergence& d : algorithms) {
    const ScoreComparison& c = d.comparison;
    os << algorithm_name(d.algorithm) << " vs " << algorithm_name(reference)
       << ": max divergence " << c.max_divergence;
    if (!c.ok) {
      os << " [FAIL: " << c.num_violations << " vertices over tolerance"
         << "; worst v" << c.worst_vertex << " expected " << c.expected_score
         << " actual " << c.actual_score << "; |expected|=" << c.expected_norm
         << " |actual|=" << c.actual_norm << "]";
    }
    os << "\n";
  }
  return os.str();
}

OracleReport differential_check(const CsrGraph& g, const OracleOptions& opts) {
  std::vector<Algorithm> algorithms = opts.algorithms;
  if (algorithms.empty()) {
    algorithms = exact_algorithm_set(g, opts.max_naive_vertices);
  }

  BcOptions run;
  run.threads = opts.threads;
  run.algorithm = opts.reference;
  const std::vector<double> reference_scores = betweenness(g, run).scores;

  std::vector<std::pair<Algorithm, std::vector<double>>> runs;
  for (Algorithm algorithm : algorithms) {
    if (algorithm == opts.reference) continue;
    run.algorithm = algorithm;
    runs.emplace_back(algorithm, betweenness(g, run).scores);
  }
  return build_report(opts.reference, reference_scores, runs,
                      opts.rel_tolerance, opts.abs_tolerance);
}

OracleReport weighted_differential_check(const WeightedCsrGraph& g,
                                         const OracleOptions& opts) {
  const std::vector<double> reference_scores = weighted_brandes_bc(g);
  std::vector<std::pair<Algorithm, std::vector<double>>> runs;
  runs.emplace_back(Algorithm::kApgre, weighted_apgre_bc(g));
  if (g.num_vertices() <= opts.max_naive_vertices) {
    runs.emplace_back(Algorithm::kNaive, weighted_naive_bc(g));
  }
  return build_report(Algorithm::kBrandesSerial, reference_scores, runs,
                      opts.rel_tolerance, opts.abs_tolerance);
}

OracleReport dynamic_differential_check(const CsrGraph& g,
                                        const std::vector<DynamicStep>& steps,
                                        const OracleOptions& opts) {
  OracleReport report;
  report.reference = opts.reference;

  DynamicBc dynamic(g);
  BcOptions run;
  run.threads = opts.threads;
  run.algorithm = opts.reference;
  for (const DynamicStep& step : steps) {
    step.inserting ? dynamic.insert_edge(step.u, step.v)
                   : dynamic.remove_edge(step.u, step.v);
    // The reference changes per step: recompute from scratch on the
    // mutated graph, so every incremental subtraction/re-addition since
    // the start is checked, not just the last one.
    const std::vector<double> expected =
        betweenness(dynamic.graph(), run).scores;
    AlgorithmDivergence d{Algorithm::kApgre,
                          compare_scores(expected, dynamic.scores(),
                                         opts.rel_tolerance,
                                         opts.abs_tolerance)};
    report.ok = report.ok && d.comparison.ok;
    report.max_divergence =
        std::max(report.max_divergence, d.comparison.max_divergence);
    report.algorithms.push_back(std::move(d));
  }
  return report;
}

OracleReport incremental_differential_check(const CsrGraph& g,
                                            const std::vector<DynamicStep>& steps,
                                            const BcOptions& engine_options,
                                            const OracleOptions& opts) {
  OracleReport report;
  report.reference = opts.reference;

  IncrementalBc engine(g, engine_options);
  BcOptions run;
  run.threads = opts.threads;
  run.algorithm = opts.reference;
  for (const DynamicStep& step : steps) {
    step.inserting ? engine.insert_edge(step.u, step.v)
                   : engine.remove_edge(step.u, step.v);
    const std::vector<double> expected =
        betweenness(engine.graph(), run).scores;
    AlgorithmDivergence d{Algorithm::kApgre,
                          compare_scores(expected, engine.scores(),
                                         opts.rel_tolerance,
                                         opts.abs_tolerance)};
    report.ok = report.ok && d.comparison.ok;
    report.max_divergence =
        std::max(report.max_divergence, d.comparison.max_divergence);
    report.algorithms.push_back(std::move(d));
  }
  return report;
}

std::vector<DynamicStep> random_dynamic_steps(const CsrGraph& g,
                                              std::size_t count,
                                              std::uint64_t seed) {
  std::vector<DynamicStep> steps;
  const Vertex n = g.num_vertices();
  if (n < 2) return steps;

  // Edge bookkeeping: unordered pairs for undirected graphs (DynamicBc
  // mutates both arcs at once), ordered for directed ones.
  auto key = [&](Vertex u, Vertex v) {
    if (!g.directed() && u > v) std::swap(u, v);
    return (static_cast<std::uint64_t>(u) << 32) | v;
  };
  std::unordered_set<std::uint64_t> present;
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (const Edge& e : g.arcs()) {
    if (!g.directed() && e.src > e.dst) continue;
    present.insert(key(e.src, e.dst));
    edges.emplace_back(e.src, e.dst);
  }

  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    bool done = false;
    if (edges.empty() || (rng() & 1) != 0) {
      // Insert a currently-absent non-loop edge; give up after a few draws
      // on near-complete graphs and fall through to a removal.
      for (int attempt = 0; attempt < 64 && !done; ++attempt) {
        const auto u = static_cast<Vertex>(rng() % n);
        const auto v = static_cast<Vertex>(rng() % n);
        if (u == v || present.count(key(u, v)) != 0) continue;
        steps.push_back({u, v, true});
        present.insert(key(u, v));
        edges.emplace_back(u, v);
        done = true;
      }
    }
    if (!done && !edges.empty()) {
      const std::size_t idx = rng() % edges.size();
      const auto [u, v] = edges[idx];
      steps.push_back({u, v, false});
      present.erase(key(u, v));
      edges[idx] = edges.back();
      edges.pop_back();
      done = true;
    }
    if (!done) break;  // neither insertable nor removable: K1/K0 leftovers
  }
  return steps;
}

}  // namespace apgre
