#include "apps/girvan_newman.hpp"

#include <algorithm>

#include "bc/edge_bc.hpp"
#include "graph/components.hpp"
#include "support/error.hpp"

namespace apgre::apps {

double modularity(const CsrGraph& g, const std::vector<Vertex>& community) {
  APGRE_REQUIRE(!g.directed(), "modularity expects an undirected graph");
  APGRE_ASSERT(community.size() == g.num_vertices());
  const double m = static_cast<double>(g.num_edges());
  if (m == 0.0) return 0.0;
  const Vertex num_communities =
      community.empty()
          ? 0
          : *std::max_element(community.begin(), community.end()) + 1;
  std::vector<double> internal(num_communities, 0.0);   // edges inside c
  std::vector<double> degree_sum(num_communities, 0.0); // sum of degrees in c
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    degree_sum[community[v]] += static_cast<double>(g.out_degree(v));
    for (Vertex w : g.out_neighbors(v)) {
      if (v < w && community[v] == community[w]) internal[community[v]] += 1.0;
    }
  }
  double q = 0.0;
  for (Vertex c = 0; c < num_communities; ++c) {
    const double fraction = internal[c] / m;
    const double expected = degree_sum[c] / (2.0 * m);
    q += fraction - expected * expected;
  }
  return q;
}

CommunityResult girvan_newman(const CsrGraph& g, const GirvanNewmanOptions& opts) {
  APGRE_REQUIRE(!g.directed(), "girvan_newman expects an undirected graph");
  CsrGraph current = g;
  CommunityResult result;
  const std::size_t max_cuts = opts.max_cuts > 0 ? opts.max_cuts : g.num_edges();

  while (result.removed_edges.size() < max_cuts) {
    const ComponentLabels labels = connected_components(current);
    if (opts.target_communities > 0 &&
        labels.num_components >= opts.target_communities) {
      break;
    }
    if (current.num_edges() == 0) break;

    const auto scores = edge_betweenness_bc(current);
    const auto top = top_edges(current, scores, 1);
    APGRE_ASSERT(!top.empty());
    const Edge cut = top.front().first;
    result.removed_edges.push_back(cut);

    EdgeList arcs = current.arcs();
    std::erase_if(arcs, [&](const Edge& e) {
      return (e.src == cut.src && e.dst == cut.dst) ||
             (e.src == cut.dst && e.dst == cut.src);
    });
    current = CsrGraph::from_edges(current.num_vertices(), std::move(arcs), false);
  }

  const ComponentLabels labels = connected_components(current);
  result.community = labels.component;
  result.num_communities = labels.num_components;
  result.modularity = modularity(g, result.community);
  return result;
}

}  // namespace apgre::apps
