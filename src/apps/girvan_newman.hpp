// Girvan-Newman community detection as a library routine (paper §1 cites
// Girvan & Newman 2002 as a primary BC application). Repeatedly removes
// the highest-edge-betweenness edge; communities are the connected
// components when the requested count (or edge budget) is reached.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace apgre::apps {

struct CommunityResult {
  /// community[v] in [0, num_communities).
  std::vector<Vertex> community;
  Vertex num_communities = 0;
  /// The removed edges, in removal order (canonical src < dst).
  EdgeList removed_edges;
  /// Newman-Girvan modularity of the final partition on the *original*
  /// graph (unit weights): Q = sum_c (e_c/m - (d_c/2m)^2).
  double modularity = 0.0;
};

struct GirvanNewmanOptions {
  /// Stop when at least this many components exist (0 = rely on max_cuts).
  Vertex target_communities = 2;
  /// Hard cap on removed edges (guards degenerate inputs); 0 = |E|.
  std::size_t max_cuts = 0;
};

/// Undirected graphs only. O(cuts * |V||E|) — intended for community-scale
/// networks, exactly like the original algorithm.
CommunityResult girvan_newman(const CsrGraph& g, const GirvanNewmanOptions& opts);

/// Modularity of an arbitrary partition of `g` (undirected, unit weights).
double modularity(const CsrGraph& g, const std::vector<Vertex>& community);

}  // namespace apgre::apps
