// Concurrent betweenness-centrality query service.
//
// One apgre::Service owns
//   * a named-graph registry (register_graph / unregister_graph),
//   * an LRU cache of warm Solver sessions, capacity-bounded, so repeated
//     queries against the same graph reuse the APGRE decomposition and
//     reach counts instead of recomputing them per request,
//   * a worker thread pool draining a request queue (submit / run_batch).
//
// Four request kinds: `solve` (full score vector, any registered
// algorithm), `top_k` (partial-sort over the scores), `update` (one edge
// insert/remove), and `update_batch` (a timestamped batch of edge ops).
// The mutation surface is unified around one UpdateRequest value type —
// internally a single `update` IS a batch of size 1, flowing through the
// same ingest pipeline (service/ingest.hpp): coalesce, classify the batch
// against the block-cut tree as a whole, then either patch the warm
// session's contribution store with ONE block re-solve per affected block
// (Solver::apply_local_batch) or — when any op is structural — drop the
// cached decomposition and snapshot peel ONCE for the whole batch so the
// next solve re-decomposes. The split is observable as local_recomputes vs
// full_invalidations plus the batch_* counters.
//
// Error channel: every Response carries a Status (Response::status);
// Response::ok / Response::error mirror it for older call sites. The
// public API itself is Status-based — register_graph reports an invalid
// name instead of throwing, submit resolves the future with a failed
// Response when the service is shutting down — so no service entry point
// throws on bad requests (docs/API.md "Error handling").
//
// Thread-safety: every public member is safe to call from any thread, and
// the service itself imposes no cross-request serialization. The APGRE
// scheduler path is reentrant (support/sched/scheduler.hpp) — N workers can
// drive N parallel solves concurrently, sharing the process-wide work-
// stealing pool. Kernels still built on the OpenMP region-context idiom
// serialize *themselves* behind legacy_omp_kernel_mutex()
// (support/parallel.hpp), so they stay safe without the service knowing
// which algorithms those are.
//
// Observability: service.* metrics (requests, session_hits/misses/
// evictions, updates_local/structural, queue_depth gauge) plus per-Service
// ServiceStats snapshots; request handling is wrapped in service/* trace
// spans.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "bc/bc.hpp"
#include "bcc/queries.hpp"
#include "graph/csr.hpp"
#include "graph/update.hpp"

namespace apgre {

struct ServiceOptions {
  /// Worker threads draining the request queue; clamped to >= 1.
  int workers = 4;
  /// Maximum number of warm Solver sessions kept in the LRU cache.
  std::size_t session_capacity = 8;
  /// Biconnectivity pass for the per-snapshot BlockCutQueries locality
  /// structure (bcc/parallel_bicomp.hpp): kAuto switches to the
  /// scheduler-native parallel pass on large snapshots; kOn forces it
  /// (the TSan matrix drives concurrent parallel decompositions with it);
  /// kOff keeps the serial DFS. Solve requests choose their own pass via
  /// BcOptions::apgre.partition.parallel_decomposition.
  ParallelDecomposition parallel_decomposition = ParallelDecomposition::kAuto;
};

enum class RequestKind { kSolve, kTopK, kUpdate, kUpdateBatch };

struct Request {
  RequestKind kind = RequestKind::kSolve;
  /// Registered graph name.
  std::string graph;
  /// Solve / top_k options (algorithm, threads, halving, tuning).
  BcOptions options;
  /// top_k: ranking size (clamped to |V|; must be >= 1).
  Vertex k = 10;
  /// kUpdate / kUpdateBatch: the unified mutation payload. kUpdateBatch
  /// applies all ops as one coalesced batch; kUpdate expects exactly one op
  /// (when `update.ops` is empty the deprecated fields below are folded in
  /// as a batch of size 1).
  UpdateRequest update;
  /// Deprecated pre-batch shim: single-edge endpoints and direction, read
  /// only by kUpdate and only when update.ops is empty. Prefer filling
  /// `update` directly.
  Vertex u = kInvalidVertex;
  Vertex v = kInvalidVertex;
  bool inserting = true;
};

struct TopEntry {
  Vertex vertex = kInvalidVertex;
  double score = 0.0;
};

struct Response {
  RequestKind kind = RequestKind::kSolve;
  /// The consistent error channel: Ok() on success, the failure reason
  /// otherwise (unknown graph, invalid options, duplicate insert, ...).
  /// Failed requests never mutate service state.
  Status status = Status::failed("request not processed");
  /// Mirrors status.ok() / status.message for pre-Status call sites.
  bool ok = false;
  std::string error;
  /// kSolve: full score vector.
  std::vector<double> scores;
  /// kTopK: the k highest-scoring vertices, score descending, vertex id
  /// ascending on ties (deterministic for golden tests).
  std::vector<TopEntry> top;
  /// kSolve / kTopK: whether a warm session (graph snapshot still current)
  /// was reused.
  bool session_hit = false;
  /// kUpdate / kUpdateBatch: blast radius of the mutation — the summed
  /// vertex count of the affected biconnected components for local
  /// updates/batches, 0 for structural ones (the whole graph re-solves
  /// lazily). A function of graph state alone, deterministic regardless of
  /// session-cache state.
  Vertex affected_sources = 0;
  /// kUpdate: the op's exact grade. For kUpdateBatch: kStructural when the
  /// batch downgraded, else kLocalInsert for an all-insert batch and
  /// kLocalDelete when any delete survived (per-op grades don't exist at
  /// batch granularity — read `batch` for the real outcome).
  UpdateLocality locality = UpdateLocality::kStructural;
  /// kUpdate / kUpdateBatch: per-batch outcome counters (a single update
  /// reports as a batch of one).
  BatchStats batch;
  /// kSolve / kTopK: scoring wall time (BcResult::seconds).
  double seconds = 0.0;
};

/// Point-in-time copy of one Service's own counters (the service.* metrics
/// aggregate across all Service instances in the process; these don't).
struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t solves = 0;
  std::uint64_t top_k = 0;
  std::uint64_t updates = 0;
  std::uint64_t errors = 0;
  std::uint64_t session_hits = 0;
  std::uint64_t session_misses = 0;
  std::uint64_t session_evictions = 0;
  std::uint64_t updates_local = 0;
  std::uint64_t updates_structural = 0;
  /// Warm sessions patched in place by the localized path (one per update
  /// whose contribution store re-scored a single block)...
  std::uint64_t local_recomputes = 0;
  /// ...vs warm sessions that had to drop their decomposition (structural
  /// update, stale pin, or no contribution store yet). Updates with no
  /// cached session increment neither; a batch counts once either way.
  std::uint64_t full_invalidations = 0;
  /// kUpdateBatch requests (kUpdate counts under `updates` as before).
  std::uint64_t batch_updates = 0;
  /// Raw ops received across all batch requests, before coalescing.
  std::uint64_t batch_edges = 0;
  /// Ops folded away by coalescing (cancelled pairs, deduped repeats).
  std::uint64_t coalesced_away = 0;
  /// Blocks re-solved by local batch plans — one per affected block per
  /// batch (the classification group count; deterministic from graph state,
  /// unlike the warm-session recompute count, which depends on cache luck).
  std::uint64_t blocks_resolved = 0;
  /// Batches downgraded to a single structural re-decomposition.
  std::uint64_t batch_downgrades = 0;

  /// Warm-session fraction of solve/top_k requests; 0 when none ran.
  double hit_rate() const {
    const std::uint64_t lookups = session_hits + session_misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(session_hits) /
                              static_cast<double>(lookups);
  }
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});
  /// Drains every queued request (futures are never broken), then joins.
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Register `graph` under `name`, replacing any previous graph of that
  /// name (its warm session is dropped). Reports an empty name through the
  /// returned Status (kInvalidOption) instead of throwing.
  Status register_graph(const std::string& name, CsrGraph graph);

  /// Remove a graph and its warm session. False when the name is unknown.
  bool unregister_graph(const std::string& name);

  /// Registered names, sorted.
  std::vector<std::string> graph_names() const;

  /// Current snapshot of a registered graph (reflects applied updates), or
  /// nullptr for unknown names. The snapshot is immutable; later updates
  /// swap in a new one.
  std::shared_ptr<const CsrGraph> snapshot(const std::string& name) const;

  /// Enqueue one request for the worker pool. Never throws: submitting to
  /// a stopping service resolves the future immediately with a failed
  /// Response ("Service is shutting down").
  std::future<Response> submit(Request request);

  /// Enqueue all requests and wait; responses are in request order even
  /// though execution interleaves across workers.
  std::vector<Response> run_batch(std::vector<Request> requests);

  /// Process one request on the calling thread (the workers call this; it
  /// is also the single-threaded replay path the tests compare against).
  Response handle(const Request& request);

  /// Drop every warm session (forces the next solves cold); returns how
  /// many were dropped. Counted as evictions.
  std::size_t evict_sessions();

  /// Warm sessions currently cached.
  std::size_t session_count() const;

  ServiceStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace apgre
