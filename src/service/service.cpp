#include "service/service.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <list>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "graph/mutate.hpp"
#include "service/ingest.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace apgre {

// Parallel solves need no serialization here: the scheduler-native APGRE
// path is reentrant (support/sched/scheduler.hpp), and the remaining
// region-context OpenMP kernels serialize themselves behind
// legacy_omp_kernel_mutex() (support/parallel.hpp). The service submits
// every request directly.

struct Service::Impl {
  /// Per-graph registry entry. `mu` serializes updates and snapshot swaps;
  /// readers copy the shared_ptr under it and work on the immutable
  /// snapshot outside. Lock ordering: entry->mu before cache_mu, never the
  /// reverse.
  struct GraphEntry {
    std::mutex mu;
    std::shared_ptr<const CsrGraph> graph;
    /// Block-cut classification cache; a local update provably leaves the
    /// tree unchanged (only one block's edge multiset moves, which
    /// apply_local_update patches), so it survives kLocalInsert /
    /// kLocalDelete and is only rebuilt after structural ones.
    std::unique_ptr<BlockCutQueries> locality;
    /// Snapshot-wide 2-core peel, computed lazily for peel-enabled solves
    /// and handed to every warm session (Solver::adopt_peel) so they skip
    /// re-peeling. Local updates provably leave the peel intact (both
    /// endpoints sit in a >= 3-vertex biconnected component, so no degree
    /// drops below 2 and the peel cascade is untouched); structural ones
    /// reset it.
    std::shared_ptr<const PeelResult> peel;
  };

  /// A warm Solver bound to one immutable snapshot. The pin keeps the
  /// snapshot alive (and its address un-reusable), so pointer equality
  /// against the entry's current snapshot is a sound freshness test.
  /// Contribution tracking is on so local updates can re-score one block
  /// in place instead of invalidating the session.
  struct Session {
    std::shared_ptr<const CsrGraph> pin;
    Solver solver;

    explicit Session(std::shared_ptr<const CsrGraph> snap)
        : pin(std::move(snap)), solver(*pin) {
      solver.enable_contribution_tracking();
    }
  };

  struct Stats {
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> solves{0};
    std::atomic<std::uint64_t> top_k{0};
    std::atomic<std::uint64_t> updates{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> session_hits{0};
    std::atomic<std::uint64_t> session_misses{0};
    std::atomic<std::uint64_t> session_evictions{0};
    std::atomic<std::uint64_t> updates_local{0};
    std::atomic<std::uint64_t> updates_structural{0};
    std::atomic<std::uint64_t> local_recomputes{0};
    std::atomic<std::uint64_t> full_invalidations{0};
    std::atomic<std::uint64_t> batch_updates{0};
    std::atomic<std::uint64_t> batch_edges{0};
    std::atomic<std::uint64_t> coalesced_away{0};
    std::atomic<std::uint64_t> blocks_resolved{0};
    std::atomic<std::uint64_t> batch_downgrades{0};
  };

  explicit Impl(ServiceOptions opts) : options(opts) {
    options.workers = std::max(options.workers, 1);
    options.session_capacity = std::max<std::size_t>(options.session_capacity, 1);
    workers.reserve(static_cast<std::size_t>(options.workers));
    for (int i = 0; i < options.workers; ++i) {
      workers.emplace_back([this] { worker_loop(); });
    }
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lk(queue_mu);
      stopping = true;
    }
    queue_cv.notify_all();
    for (std::thread& t : workers) t.join();
  }

  // ---- worker pool -------------------------------------------------------

  void worker_loop() {
    for (;;) {
      std::packaged_task<Response()> task;
      {
        std::unique_lock<std::mutex> lk(queue_mu);
        queue_cv.wait(lk, [this] { return stopping || !queue.empty(); });
        if (queue.empty()) return;  // stopping, fully drained
        task = std::move(queue.front());
        queue.pop_front();
        metrics().gauge("service.queue_depth").set(
            static_cast<double>(queue.size()));
      }
      task();
    }
  }

  std::future<Response> submit(Request request) {
    const RequestKind kind = request.kind;
    std::packaged_task<Response()> task(
        [this, req = std::move(request)] { return process(req); });
    std::future<Response> future = task.get_future();
    {
      std::lock_guard<std::mutex> lk(queue_mu);
      if (stopping) {
        // Status-based error path: resolve immediately instead of throwing
        // into the caller's enqueue site.
        std::promise<Response> broken;
        Response response;
        response.kind = kind;
        response.status = Status::failed("Service is shutting down");
        response.error = response.status.message;
        broken.set_value(std::move(response));
        return broken.get_future();
      }
      queue.push_back(std::move(task));
      metrics().gauge("service.queue_depth").set(
          static_cast<double>(queue.size()));
    }
    queue_cv.notify_one();
    return future;
  }

  // ---- registry ----------------------------------------------------------

  std::shared_ptr<GraphEntry> find_entry(const std::string& name) const {
    std::lock_guard<std::mutex> lk(registry_mu);
    const auto it = graphs.find(name);
    return it == graphs.end() ? nullptr : it->second;
  }

  // ---- session cache (LRU, MRU at the front) -----------------------------

  std::unique_ptr<Session> cache_take(const std::string& name) {
    std::lock_guard<std::mutex> lk(cache_mu);
    const auto it = lru_index.find(name);
    if (it == lru_index.end()) return nullptr;
    std::unique_ptr<Session> session = std::move(it->second->second);
    lru.erase(it->second);
    lru_index.erase(it);
    return session;
  }

  void cache_put(const std::string& name, std::unique_ptr<Session> session) {
    std::lock_guard<std::mutex> lk(cache_mu);
    const auto it = lru_index.find(name);
    if (it != lru_index.end()) {
      // A concurrent solve reinserted first; most recent wins.
      lru.erase(it->second);
      lru_index.erase(it);
    }
    lru.emplace_front(name, std::move(session));
    lru_index[name] = lru.begin();
    while (lru.size() > options.session_capacity) {
      lru_index.erase(lru.back().first);
      lru.pop_back();
      stats.session_evictions.fetch_add(1, std::memory_order_relaxed);
      metrics().counter("service.session_evictions").add();
    }
  }

  void cache_drop(const std::string& name) {
    std::lock_guard<std::mutex> lk(cache_mu);
    const auto it = lru_index.find(name);
    if (it == lru_index.end()) return;
    lru.erase(it->second);
    lru_index.erase(it);
  }

  // ---- request handling --------------------------------------------------

  Response process(const Request& request) {
    stats.requests.fetch_add(1, std::memory_order_relaxed);
    metrics().counter("service.requests").add();
    const bool mutation = request.kind == RequestKind::kUpdate ||
                          request.kind == RequestKind::kUpdateBatch;
    Response response = mutation ? update(request) : solve(request);
    if (!response.ok) {
      stats.errors.fetch_add(1, std::memory_order_relaxed);
      metrics().counter("service.errors").add();
    }
    return response;
  }

  static Response fail(Response response, Status status) {
    response.status = std::move(status);
    response.ok = false;
    response.error = response.status.message;
    return response;
  }

  static Response fail(Response response, std::string why) {
    return fail(std::move(response), Status::failed(std::move(why)));
  }

  static Response& succeed(Response& response) {
    response.status = Status::Ok();
    response.ok = true;
    response.error.clear();
    return response;
  }

  Response solve(const Request& request) {
    APGRE_TRACE_SPAN("service/solve");
    Response response;
    response.kind = request.kind;
    (request.kind == RequestKind::kTopK ? stats.top_k : stats.solves)
        .fetch_add(1, std::memory_order_relaxed);

    const std::shared_ptr<GraphEntry> entry = find_entry(request.graph);
    if (entry == nullptr) {
      return fail(std::move(response), "unknown graph: " + request.graph);
    }
    if (request.kind == RequestKind::kTopK && request.k == 0) {
      return fail(std::move(response),
                  Status::invalid_option("top_k requires k >= 1"));
    }

    std::shared_ptr<const CsrGraph> snap;
    std::shared_ptr<const PeelResult> peel;
    const bool wants_peel =
        request.options.algorithm == Algorithm::kApgre &&
        request.options.apgre.partition.peel_two_core;
    {
      std::lock_guard<std::mutex> lk(entry->mu);
      snap = entry->graph;
      if (wants_peel && !snap->directed()) {
        // One peel per snapshot, shared by every warm session.
        if (entry->peel == nullptr ||
            entry->peel->num_vertices != snap->num_vertices()) {
          entry->peel = std::make_shared<const PeelResult>(two_core_peel(*snap));
        }
        peel = entry->peel;
      }
    }

    std::unique_ptr<Session> session = cache_take(request.graph);
    const bool hit = session != nullptr && session->pin == snap;
    if (session == nullptr) {
      session = std::make_unique<Session>(snap);
    } else if (!hit) {
      // Cached but stale (an update or re-register raced past the patch
      // window while this session was checked out): rebind structurally.
      session->solver.rebind(*snap);
      session->pin = snap;
    }
    (hit ? stats.session_hits : stats.session_misses)
        .fetch_add(1, std::memory_order_relaxed);
    metrics()
        .counter(hit ? "service.session_hits" : "service.session_misses")
        .add();

    if (peel != nullptr) session->solver.adopt_peel(peel);
    BcResult result = session->solver.solve(request.options);
    cache_put(request.graph, std::move(session));

    if (!result.status.ok()) {
      return fail(std::move(response), result.status);
    }
    succeed(response);
    response.session_hit = hit;
    response.seconds = result.seconds;
    if (request.kind == RequestKind::kSolve) {
      response.scores = std::move(result.scores);
      return response;
    }
    // top_k: partial-sort indices by score descending, vertex ascending on
    // ties, so transcripts are byte-stable.
    const std::vector<double>& scores = result.scores;
    std::vector<Vertex> order(scores.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<Vertex>(i);
    }
    const std::size_t k =
        std::min<std::size_t>(request.k, order.size());
    const auto better = [&scores](Vertex a, Vertex b) {
      if (scores[a] != scores[b]) return scores[a] > scores[b];
      return a < b;
    };
    std::partial_sort(order.begin(), order.begin() + static_cast<long>(k),
                      order.end(), better);
    response.top.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      response.top.push_back(TopEntry{order[i], scores[order[i]]});
    }
    return response;
  }

  /// The unified mutation path: kUpdate and kUpdateBatch both run the
  /// ingest pipeline (service/ingest.hpp) — a single update is a batch of
  /// size 1, so the per-edge counters and response fields keep their exact
  /// pre-batch meaning while the batch path amortises classification and
  /// re-solves across co-located edges.
  Response update(const Request& request) {
    APGRE_TRACE_SPAN("service/update");
    const bool batched = request.kind == RequestKind::kUpdateBatch;
    Response response;
    response.kind = request.kind;
    (batched ? stats.batch_updates : stats.updates)
        .fetch_add(1, std::memory_order_relaxed);
    if (batched) metrics().counter("service.batch.requests").add();

    // Fold the deprecated per-edge fields into the unified payload.
    UpdateRequest ops = request.update;
    if (!batched && ops.ops.empty()) {
      ops.ops.push_back(EdgeOp{request.u, request.v, request.inserting});
    }
    if (!batched && ops.ops.size() != 1) {
      return fail(std::move(response),
                  Status::invalid_option(
                      "update expects exactly one op (use update_batch)"));
    }
    response.batch.batch_edges = ops.ops.size();

    const std::shared_ptr<GraphEntry> entry = find_entry(request.graph);
    if (entry == nullptr) {
      return fail(std::move(response), "unknown graph: " + request.graph);
    }

    std::lock_guard<std::mutex> lk(entry->mu);
    const std::shared_ptr<const CsrGraph> prev = entry->graph;

    // The classifier survives local batches (only edge multisets move,
    // patched below); directed graphs never build one — plan_ingest grades
    // them structural itself.
    if (!prev->directed() && entry->locality == nullptr) {
      entry->locality = std::make_unique<BlockCutQueries>(
          *prev, options.parallel_decomposition);
    }
    const IngestPlan plan = plan_ingest(*prev, entry->locality.get(), ops);
    response.batch.coalesced_away = plan.coalesced.coalesced_away;
    if (!plan.ok()) {
      // Coalescing rejected the batch (out-of-range endpoint, self-loop,
      // op redundant against the snapshot, ...) — nothing changed.
      return fail(std::move(response), plan.coalesced.status);
    }
    const std::vector<EdgeOp>& survivors = plan.coalesced.survivors;
    if (survivors.empty()) {
      // The batch cancelled itself out: a legal no-op, no snapshot swap.
      finalize_batch(response, batched);
      return response;
    }
    const bool local = plan.local();

    std::shared_ptr<const CsrGraph> snap;
    try {
      // Survivors are pre-validated, so this cannot throw; keep the
      // commit-point shape anyway — a throw here means nothing changed.
      snap = std::make_shared<const CsrGraph>(apply_edge_ops(*prev, survivors));
    } catch (const Error& e) {
      return fail(std::move(response), e.what());
    }
    entry->graph = snap;

    if (local) {
      // Blast radius: the biconnected components the batch is confined to.
      // Deterministic from graph state (unlike any recompute count, which
      // would depend on what happened to be cached).
      response.affected_sources = plan.affected_sources;
      response.batch.blocks_resolved = plan.classification.groups.size();
      bool any_delete = false;
      for (const EdgeOp& op : survivors) any_delete |= !op.insert;
      response.locality = any_delete ? UpdateLocality::kLocalDelete
                                     : UpdateLocality::kLocalInsert;
      // Keep later classifications exact: the tree survives, but the
      // affected blocks' edge multisets changed.
      for (const EdgeOp& op : survivors) {
        entry->locality->apply_local_update(op.u, op.v, op.insert);
      }
    } else {
      response.locality = UpdateLocality::kStructural;
      response.batch.batch_downgrades = 1;
      // ONE reset per downgraded batch — an entirely forest-incident batch
      // re-peels the snapshot once on the next solve, not once per edge.
      entry->locality.reset();
      entry->peel.reset();
    }
    (local ? stats.updates_local : stats.updates_structural)
        .fetch_add(survivors.size(), std::memory_order_relaxed);
    metrics()
        .counter(local ? "service.updates_local"
                       : "service.updates_structural")
        .add(survivors.size());

    // Patch the warm session in place (entry->mu is held, so no competing
    // update; sessions inside the cache have no other users). A checked-out
    // session misses the patch and rebinds structurally on reinsert. One
    // contribution-store re-solve per affected block for the whole batch.
    {
      std::lock_guard<std::mutex> ck(cache_mu);
      const auto it = lru_index.find(request.graph);
      if (it != lru_index.end()) {
        Session& session = *it->second->second;
        const bool fresh = session.pin == prev;
        const bool patched =
            local && fresh &&
            session.solver.apply_local_batch(*snap, survivors) > 0;
        if (!patched && !(local && fresh)) {
          // apply_local_batch already rebound on its zero path; only the
          // cases that never entered it still need the explicit rebind.
          session.solver.rebind(*snap);
        }
        session.pin = snap;
        (patched ? stats.local_recomputes : stats.full_invalidations)
            .fetch_add(1, std::memory_order_relaxed);
        metrics()
            .counter(patched ? "service.local_recomputes"
                             : "service.full_invalidations")
            .add();
      }
    }

    finalize_batch(response, batched);
    return response;
  }

  /// Success bookkeeping shared by the no-op and executed batch paths.
  void finalize_batch(Response& response, bool batched) {
    succeed(response);
    if (!batched) return;
    stats.batch_edges.fetch_add(response.batch.batch_edges,
                                std::memory_order_relaxed);
    stats.coalesced_away.fetch_add(response.batch.coalesced_away,
                                   std::memory_order_relaxed);
    stats.blocks_resolved.fetch_add(response.batch.blocks_resolved,
                                    std::memory_order_relaxed);
    stats.batch_downgrades.fetch_add(response.batch.batch_downgrades,
                                     std::memory_order_relaxed);
    record_batch_metrics(response.batch);
  }

  ServiceOptions options;

  mutable std::mutex registry_mu;
  std::map<std::string, std::shared_ptr<GraphEntry>> graphs;

  mutable std::mutex cache_mu;
  std::list<std::pair<std::string, std::unique_ptr<Session>>> lru;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string,
                                         std::unique_ptr<Session>>>::iterator>
      lru_index;

  std::mutex queue_mu;
  std::condition_variable queue_cv;
  std::deque<std::packaged_task<Response()>> queue;
  bool stopping = false;
  std::vector<std::thread> workers;

  Stats stats;
};

Service::Service(ServiceOptions options)
    : impl_(std::make_unique<Impl>(options)) {}

Service::~Service() = default;

Status Service::register_graph(const std::string& name, CsrGraph graph) {
  if (name.empty()) {
    return Status::invalid_option("graph name must be non-empty");
  }
  auto entry = std::make_shared<Impl::GraphEntry>();
  entry->graph = std::make_shared<const CsrGraph>(std::move(graph));
  {
    std::lock_guard<std::mutex> lk(impl_->registry_mu);
    impl_->graphs[name] = std::move(entry);
  }
  // Any warm session belongs to the replaced graph; drop it.
  impl_->cache_drop(name);
  metrics().gauge("service.graphs").set(
      static_cast<double>(graph_names().size()));
  return Status::Ok();
}

bool Service::unregister_graph(const std::string& name) {
  bool existed = false;
  {
    std::lock_guard<std::mutex> lk(impl_->registry_mu);
    existed = impl_->graphs.erase(name) > 0;
  }
  impl_->cache_drop(name);
  return existed;
}

std::vector<std::string> Service::graph_names() const {
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lk(impl_->registry_mu);
  names.reserve(impl_->graphs.size());
  for (const auto& [name, entry] : impl_->graphs) names.push_back(name);
  return names;
}

std::shared_ptr<const CsrGraph> Service::snapshot(
    const std::string& name) const {
  const auto entry = impl_->find_entry(name);
  if (entry == nullptr) return nullptr;
  std::lock_guard<std::mutex> lk(entry->mu);
  return entry->graph;
}

std::future<Response> Service::submit(Request request) {
  return impl_->submit(std::move(request));
}

std::vector<Response> Service::run_batch(std::vector<Request> requests) {
  std::vector<std::future<Response>> futures;
  futures.reserve(requests.size());
  for (Request& request : requests) {
    futures.push_back(impl_->submit(std::move(request)));
  }
  std::vector<Response> responses;
  responses.reserve(futures.size());
  for (std::future<Response>& future : futures) {
    responses.push_back(future.get());
  }
  return responses;
}

Response Service::handle(const Request& request) {
  return impl_->process(request);
}

std::size_t Service::evict_sessions() {
  std::lock_guard<std::mutex> lk(impl_->cache_mu);
  const std::size_t dropped = impl_->lru.size();
  impl_->lru.clear();
  impl_->lru_index.clear();
  impl_->stats.session_evictions.fetch_add(dropped, std::memory_order_relaxed);
  metrics().counter("service.session_evictions").add(dropped);
  return dropped;
}

std::size_t Service::session_count() const {
  std::lock_guard<std::mutex> lk(impl_->cache_mu);
  return impl_->lru.size();
}

ServiceStats Service::stats() const {
  const Impl::Stats& s = impl_->stats;
  ServiceStats out;
  out.requests = s.requests.load(std::memory_order_relaxed);
  out.solves = s.solves.load(std::memory_order_relaxed);
  out.top_k = s.top_k.load(std::memory_order_relaxed);
  out.updates = s.updates.load(std::memory_order_relaxed);
  out.errors = s.errors.load(std::memory_order_relaxed);
  out.session_hits = s.session_hits.load(std::memory_order_relaxed);
  out.session_misses = s.session_misses.load(std::memory_order_relaxed);
  out.session_evictions = s.session_evictions.load(std::memory_order_relaxed);
  out.updates_local = s.updates_local.load(std::memory_order_relaxed);
  out.updates_structural = s.updates_structural.load(std::memory_order_relaxed);
  out.local_recomputes = s.local_recomputes.load(std::memory_order_relaxed);
  out.full_invalidations =
      s.full_invalidations.load(std::memory_order_relaxed);
  out.batch_updates = s.batch_updates.load(std::memory_order_relaxed);
  out.batch_edges = s.batch_edges.load(std::memory_order_relaxed);
  out.coalesced_away = s.coalesced_away.load(std::memory_order_relaxed);
  out.blocks_resolved = s.blocks_resolved.load(std::memory_order_relaxed);
  out.batch_downgrades = s.batch_downgrades.load(std::memory_order_relaxed);
  return out;
}

}  // namespace apgre
