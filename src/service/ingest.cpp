#include "service/ingest.hpp"

#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace apgre {

IngestPlan plan_ingest(const CsrGraph& snapshot, const BlockCutQueries* queries,
                       const UpdateRequest& request) {
  APGRE_TRACE_SPAN("service/plan_ingest");
  IngestPlan plan;
  plan.coalesced = coalesce_batch(snapshot, request.ops);
  if (!plan.ok() || plan.empty()) return plan;

  if (snapshot.directed()) {
    // Conservative, same as the per-edge path: directed reachability can
    // change while the projection's block structure survives.
    plan.classification.structural = true;
    return plan;
  }
  APGRE_ASSERT_MSG(queries != nullptr,
                   "plan_ingest needs a classifier for undirected snapshots");
  plan.classification = queries->classify_batch(plan.coalesced.survivors);
  if (plan.local()) {
    for (const BatchGroup& group : plan.classification.groups) {
      plan.affected_sources += static_cast<Vertex>(
          queries->bcc().component_vertices[group.block].size());
    }
  }
  return plan;
}

void record_batch_metrics(const BatchStats& stats) {
  metrics().counter("service.batch.edges").add(stats.batch_edges);
  metrics().counter("service.batch.coalesced_away").add(stats.coalesced_away);
  metrics().counter("service.batch.blocks_resolved").add(stats.blocks_resolved);
  metrics().counter("service.batch.downgrades").add(stats.batch_downgrades);
}

}  // namespace apgre
