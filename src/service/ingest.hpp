// STINGER-style batched streaming ingest: the service's UpdateBatch
// pipeline (docs/API.md "Batched streaming ingest").
//
// A batch of timestamped edge ops flows through three stages:
//
//   1. coalesce  — cancel insert/delete pairs on the same edge, dedupe
//                  repeats, order survivors by timestamp; illegal ops
//                  reject the whole batch before any state changes
//                  (graph/update.hpp coalesce_batch).
//   2. classify  — grade the surviving ops against the block-cut tree as a
//                  whole: group by affected block via common_block, one
//                  biconnectivity-survival check per block instead of per
//                  edge (bcc/queries.hpp classify_batch).
//   3. execute   — all-local plans patch the tracked contribution store
//                  with ONE block re-solve per affected block; any
//                  structural op downgrades the whole batch to a single
//                  re-decomposition. Execution lives with the state it
//                  mutates (service.cpp for the service's snapshot/session
//                  machinery, bc/incremental.cpp for IncrementalBc) — this
//                  header owns the shared planning half.
//
// plan_ingest() is pure: it never mutates the snapshot, the classifier, or
// any session, so a failed plan provably changed nothing and a successful
// one can be executed (or discarded) by the caller at its own commit point.
#pragma once

#include "bcc/queries.hpp"
#include "graph/csr.hpp"
#include "graph/update.hpp"

namespace apgre {

/// The full decision for one batch against one snapshot: what survives
/// coalescing, how the survivors classify, and the deterministic batch
/// stats both execution paths report.
struct IngestPlan {
  CoalesceResult coalesced;
  BatchClassification classification;
  /// Sum of the affected blocks' vertex counts for local plans — the
  /// batch's blast radius (Response::affected_sources). 0 for structural
  /// or empty plans.
  Vertex affected_sources = 0;

  /// The batch is legal (possibly a no-op). !ok() carries the rejection in
  /// coalesced.status.
  bool ok() const { return coalesced.status.ok(); }
  /// Everything cancelled out; applying the plan is a no-op.
  bool empty() const { return coalesced.survivors.empty(); }
  /// The block-cut tree provably survives the whole batch.
  bool local() const { return !classification.structural; }
};

/// Coalesce `request` against `snapshot` and classify the survivors as a
/// whole. `queries` must be a classifier built on `snapshot` for undirected
/// graphs and may be null for directed ones (directed batches always
/// classify structural, matching the per-edge conservatism).
IngestPlan plan_ingest(const CsrGraph& snapshot, const BlockCutQueries* queries,
                       const UpdateRequest& request);

/// Emit the service.batch.* metrics for one executed batch
/// (docs/OBSERVABILITY.md).
void record_batch_metrics(const BatchStats& stats);

}  // namespace apgre
