#include "bcc/validate.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "graph/components.hpp"
#include "graph/transform.hpp"
#include "support/error.hpp"

namespace apgre {

namespace {

/// Vertices reachable from `start` without entering `blocked` (start
/// itself excluded from blocking and from the count).
std::uint64_t restricted_reach(const CsrGraph& g, Vertex start,
                               const std::vector<std::uint8_t>& blocked,
                               bool forward) {
  std::vector<std::uint8_t> visited(g.num_vertices(), 0);
  std::vector<Vertex> queue{start};
  visited[start] = 1;
  std::uint64_t count = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Vertex v = queue[head];
    const auto neighbors = forward ? g.out_neighbors(v) : g.in_neighbors(v);
    for (Vertex w : neighbors) {
      if (visited[w] || blocked[w]) continue;
      visited[w] = 1;
      queue.push_back(w);
      ++count;
    }
  }
  return count;
}

}  // namespace

std::vector<std::string> validate_decomposition(const CsrGraph& g,
                                                const Decomposition& dec,
                                                std::size_t reach_samples) {
  std::vector<std::string> violations;
  auto fail = [&violations](const std::string& message) {
    violations.push_back(message);
  };

  // 1. Arc partition.
  std::map<Edge, int> arc_count;
  for (const Edge& e : g.arcs()) arc_count[e] = 0;
  for (std::size_t i = 0; i < dec.subgraphs.size(); ++i) {
    const Subgraph& sg = dec.subgraphs[i];
    for (const Edge& local : sg.graph.arcs()) {
      if (local.src >= sg.to_global.size() || local.dst >= sg.to_global.size()) {
        fail("sub-graph " + std::to_string(i) + " has out-of-range local arc");
        continue;
      }
      const Edge global{sg.to_global[local.src], sg.to_global[local.dst]};
      const auto it = arc_count.find(global);
      if (it == arc_count.end()) {
        fail("sub-graph " + std::to_string(i) + " contains arc " +
             std::to_string(global.src) + "->" + std::to_string(global.dst) +
             " absent from the graph");
      } else {
        ++it->second;
      }
    }
  }
  for (const auto& [e, count] : arc_count) {
    if (count != 1) {
      std::ostringstream os;
      os << "arc " << e.src << "->" << e.dst << " assigned " << count
         << " times (expected 1)";
      fail(os.str());
    }
  }

  // 2. Shared vertices are boundary APs everywhere they appear.
  std::vector<int> membership(g.num_vertices(), 0);
  std::vector<int> boundary_membership(g.num_vertices(), 0);
  for (const Subgraph& sg : dec.subgraphs) {
    for (Vertex local = 0; local < sg.num_vertices(); ++local) {
      ++membership[sg.to_global[local]];
      if (sg.is_boundary_ap[local]) ++boundary_membership[sg.to_global[local]];
    }
  }
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (membership[v] > 1 && boundary_membership[v] != membership[v]) {
      fail("vertex " + std::to_string(v) +
           " is shared by sub-graphs without being a boundary AP in all of them");
    }
  }

  // 3. Root/gamma bookkeeping.
  for (std::size_t i = 0; i < dec.subgraphs.size(); ++i) {
    const Subgraph& sg = dec.subgraphs[i];
    Vertex gamma_sum = 0;
    Vertex removed = 0;
    for (Vertex local = 0; local < sg.num_vertices(); ++local) {
      gamma_sum += sg.gamma[local];
      removed += sg.removed[local];
    }
    if (gamma_sum != removed) {
      fail("sub-graph " + std::to_string(i) + ": gamma sum " +
           std::to_string(gamma_sum) + " != removed " + std::to_string(removed));
    }
    if (sg.roots.size() + removed != sg.num_vertices()) {
      fail("sub-graph " + std::to_string(i) + ": |roots| + removed != |V|");
    }
    for (Vertex root : sg.roots) {
      if (root >= sg.num_vertices() || sg.removed[root]) {
        fail("sub-graph " + std::to_string(i) + " has an invalid root");
        break;
      }
    }
  }

  // 4. Sampled alpha/beta re-check by restricted BFS.
  std::size_t checked = 0;
  std::vector<std::uint8_t> blocked(g.num_vertices(), 0);
  for (const Subgraph& sg : dec.subgraphs) {
    if (checked >= reach_samples) break;
    if (sg.boundary_aps.empty()) continue;
    for (Vertex v : sg.to_global) blocked[v] = 1;
    for (Vertex a : sg.boundary_aps) {
      if (checked >= reach_samples) break;
      ++checked;
      const Vertex global = sg.to_global[a];
      blocked[global] = 0;
      const std::uint64_t alpha = restricted_reach(g, global, blocked, true);
      const std::uint64_t beta =
          g.directed() ? restricted_reach(g, global, blocked, false) : alpha;
      blocked[global] = 1;
      if (alpha != sg.alpha[a]) {
        fail("alpha mismatch at vertex " + std::to_string(global) + ": stored " +
             std::to_string(sg.alpha[a]) + ", BFS " + std::to_string(alpha));
      }
      if (beta != sg.beta[a]) {
        fail("beta mismatch at vertex " + std::to_string(global));
      }
    }
    for (Vertex v : sg.to_global) blocked[v] = 0;
  }

  // 5. Undirected alpha-sum identity.
  if (!g.directed()) {
    const ComponentLabels comp = connected_components(g);
    std::vector<std::uint64_t> comp_size(comp.num_components, 0);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if (g.out_degree(v) > 0) ++comp_size[comp.component[v]];
    }
    for (std::size_t i = 0; i < dec.subgraphs.size(); ++i) {
      const Subgraph& sg = dec.subgraphs[i];
      if (sg.num_vertices() == 0) continue;
      std::uint64_t alpha_sum = 0;
      for (Vertex a : sg.boundary_aps) alpha_sum += sg.alpha[a];
      const Vertex c = comp.component[sg.to_global[0]];
      if (alpha_sum + sg.num_vertices() != comp_size[c]) {
        fail("sub-graph " + std::to_string(i) +
             ": sum(alpha) + |V_sgi| != component size");
      }
    }
  }

  return violations;
}

void require_valid_decomposition(const CsrGraph& g, const Decomposition& dec) {
  const auto violations = validate_decomposition(g, dec);
  if (violations.empty()) return;
  std::ostringstream os;
  os << "invalid decomposition (" << violations.size() << " violations):";
  for (const auto& v : violations) os << "\n  - " << v;
  throw Error(os.str());
}

}  // namespace apgre
