#include "bcc/reach.hpp"

#include <algorithm>
#include <vector>

#include "support/error.hpp"
#include "support/parallel.hpp"

namespace apgre {

namespace {

/// Per-thread scratch for the restricted BFS: an epoch-stamped mark array
/// avoids clearing O(|V|) state between the many small searches.
struct BfsScratch {
  std::vector<std::uint64_t> mark;
  std::uint64_t epoch = 0;
  std::vector<Vertex> queue;

  explicit BfsScratch(Vertex n) : mark(n, 0) {}
};

/// Published through `reach_region_ctx` so the parallel region captures no
/// enclosing locals (region-context idiom, support/parallel.hpp).
struct ReachRegionCtx {
  const CsrGraph* g = nullptr;
  Decomposition* dec = nullptr;
  const std::vector<Vertex>* mult = nullptr;
};

ReachRegionCtx* reach_region_ctx = nullptr;

/// Count vertices reachable from `start` (itself excluded), following
/// out-arcs (forward) or in-arcs (reverse), never entering a vertex whose
/// mark equals `blocked_tag`. With `mult`, every visited vertex w counts as
/// 1 + mult[w] (itself plus its phantom pendants, which hang directly off w
/// and are therefore reachable exactly when w is).
std::uint64_t restricted_reach(const CsrGraph& g, Vertex start, bool forward,
                               std::uint64_t blocked_tag, std::uint64_t visited_tag,
                               BfsScratch& scratch,
                               const std::vector<Vertex>* mult) {
  auto& mark = scratch.mark;
  auto& queue = scratch.queue;
  queue.assign(1, start);
  std::uint64_t count = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Vertex v = queue[head];
    const auto neighbors = forward ? g.out_neighbors(v) : g.in_neighbors(v);
    for (Vertex w : neighbors) {
      if (mark[w] == blocked_tag || mark[w] == visited_tag) continue;
      mark[w] = visited_tag;
      queue.push_back(w);
      count += 1 + (mult ? static_cast<std::uint64_t>((*mult)[w]) : 0);
    }
  }
  return count;
}

void reach_by_bfs(const CsrGraph& g, Decomposition& dec,
                  const std::vector<Vertex>* mult) {
  // Region-context OpenMP kernel (support/parallel.hpp): not reentrant,
  // serialize whole invocations against concurrent caller threads.
  std::lock_guard<std::recursive_mutex> lock(legacy_omp_kernel_mutex());
  ReachRegionCtx ctx{&g, &dec, mult};
  reach_region_ctx = &ctx;
  omp_fork_fence();
#pragma omp parallel
  {
    omp_worker_entry_fence();
    const ReachRegionCtx& C = *reach_region_ctx;
    const CsrGraph& cg = *C.g;
    BfsScratch scratch(cg.num_vertices());
#pragma omp for schedule(dynamic, 1) nowait
    for (std::int64_t i = 0;
         i < static_cast<std::int64_t>(C.dec->subgraphs.size()); ++i) {
      Subgraph& sg = C.dec->subgraphs[static_cast<std::size_t>(i)];
      if (sg.boundary_aps.empty()) continue;
      const std::uint64_t blocked_tag = ++scratch.epoch;
      for (Vertex v : sg.to_global) scratch.mark[v] = blocked_tag;
      for (Vertex local : sg.boundary_aps) {
        const Vertex global = sg.to_global[local];
        // Phantom pendants hang directly off `global`. They are "outside"
        // every sub-graph except the one that homed them (pendant_weight
        // non-zero there), so from any other sub-graph they join alpha/beta
        // even though the BFS never leaves through them.
        std::uint64_t own = 0;
        if (C.mult != nullptr && (*C.mult)[global] > 0 &&
            (sg.pendant_weight.empty() || sg.pendant_weight[local] == 0.0)) {
          own = (*C.mult)[global];
        }
        sg.alpha[local] = own + restricted_reach(cg, global, /*forward=*/true,
                                                 blocked_tag, ++scratch.epoch,
                                                 scratch, C.mult);
        if (cg.directed()) {
          sg.beta[local] =
              own + restricted_reach(cg, global, /*forward=*/false, blocked_tag,
                                     ++scratch.epoch, scratch, C.mult);
        } else {
          sg.beta[local] = sg.alpha[local];
        }
      }
    }
    omp_worker_exit_fence();
  }
  omp_join_fence();
  reach_region_ctx = nullptr;
}

// ---- Tree-DP strategy (undirected) --------------------------------------
//
// Nodes: one per sub-graph, one per boundary-AP vertex; edges between a
// sub-graph and each of its boundary APs. Per connected component this is a
// tree. With node weights
//   w(sub-graph) = |V_sgi| - #boundary APs of sgi   (its private vertices)
//   w(AP)        = 1
// the number of distinct vertices in any connected node subset is the sum
// of its weights. For boundary AP `a` of sub-graph `gi`,
//   alpha_gi(a) = (vertices on the far side of edge (gi, a)) - [a itself]
// which is a subtree weight (or its complement) once the tree is rooted.

struct TreeDp {
  // Node ids: [0, S) sub-graphs, [S, S + A) AP nodes.
  std::vector<std::vector<Vertex>> adjacency;
  std::vector<std::uint64_t> weight;
  std::vector<std::uint64_t> subtree;
  std::vector<Vertex> parent;
  std::vector<std::uint64_t> component_total;  // per node: total of its tree
};

void reach_by_tree_dp(const CsrGraph& g, Decomposition& dec) {
  APGRE_ASSERT_MSG(!g.directed(), "tree-DP reach requires an undirected graph");
  const auto num_subgraphs = static_cast<Vertex>(dec.subgraphs.size());

  // Collect boundary-AP vertices and give them node ids.
  std::vector<Vertex> ap_node(g.num_vertices(), kInvalidVertex);
  Vertex num_ap_nodes = 0;
  for (const Subgraph& sg : dec.subgraphs) {
    for (Vertex local : sg.boundary_aps) {
      Vertex& id = ap_node[sg.to_global[local]];
      if (id == kInvalidVertex) id = num_ap_nodes++;
    }
  }

  TreeDp dp;
  const Vertex num_nodes = num_subgraphs + num_ap_nodes;
  dp.adjacency.resize(num_nodes);
  dp.weight.assign(num_nodes, 0);
  dp.subtree.assign(num_nodes, 0);
  dp.parent.assign(num_nodes, kInvalidVertex);
  dp.component_total.assign(num_nodes, 0);

  for (Vertex sgi = 0; sgi < num_subgraphs; ++sgi) {
    const Subgraph& sg = dec.subgraphs[sgi];
    dp.weight[sgi] = sg.to_global.size() - sg.boundary_aps.size();
    // Phantom pendants (2-core peel) count as private vertices of the
    // sub-graph that homed them; every other sub-graph then sees them on the
    // correct side of the block-cut tree automatically.
    for (double pw : sg.pendant_weight) {
      dp.weight[sgi] += static_cast<std::uint64_t>(pw);
    }
    for (Vertex local : sg.boundary_aps) {
      const Vertex node = num_subgraphs + ap_node[sg.to_global[local]];
      dp.adjacency[sgi].push_back(node);
      dp.adjacency[node].push_back(sgi);
      dp.weight[node] = 1;
    }
  }

  // Iterative DFS per component: compute subtree sums, parents, totals.
  std::vector<std::uint8_t> seen(num_nodes, 0);
  std::vector<std::pair<Vertex, std::size_t>> stack;  // (node, next child idx)
  std::vector<Vertex> component_nodes;
  for (Vertex root = 0; root < num_nodes; ++root) {
    if (seen[root]) continue;
    component_nodes.clear();
    seen[root] = 1;
    stack.assign(1, {root, 0});
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      if (next < dp.adjacency[node].size()) {
        const Vertex child = dp.adjacency[node][next++];
        if (!seen[child]) {
          seen[child] = 1;
          dp.parent[child] = node;
          stack.push_back({child, 0});
        }
      } else {
        dp.subtree[node] = dp.weight[node];
        for (Vertex child : dp.adjacency[node]) {
          if (dp.parent[child] == node) dp.subtree[node] += dp.subtree[child];
        }
        component_nodes.push_back(node);
        stack.pop_back();
      }
    }
    const std::uint64_t total = dp.subtree[root];
    for (Vertex node : component_nodes) dp.component_total[node] = total;
  }

  for (Vertex sgi = 0; sgi < num_subgraphs; ++sgi) {
    Subgraph& sg = dec.subgraphs[sgi];
    for (Vertex local : sg.boundary_aps) {
      const Vertex node = num_subgraphs + ap_node[sg.to_global[local]];
      std::uint64_t far = 0;
      if (dp.parent[node] == sgi) {
        far = dp.subtree[node];  // AP hangs below this sub-graph
      } else {
        APGRE_ASSERT(dp.parent[sgi] == node);
        far = dp.component_total[sgi] - dp.subtree[sgi];
      }
      APGRE_ASSERT(far >= 1);  // the AP itself is on the far side
      sg.alpha[local] = far - 1;
      sg.beta[local] = sg.alpha[local];
    }
  }
}

}  // namespace

void compute_reach_counts(const CsrGraph& g, Decomposition& dec,
                          ReachMethod method,
                          const std::vector<Vertex>* multiplicity) {
  if (multiplicity != nullptr) {
    APGRE_ASSERT_MSG(multiplicity->size() == g.num_vertices(),
                     "multiplicity size mismatch");
  }
  if (method == ReachMethod::kAuto) {
    method = g.directed() ? ReachMethod::kBfs : ReachMethod::kTreeDp;
  }
  if (method == ReachMethod::kTreeDp) {
    APGRE_REQUIRE(!g.directed(),
                  "ReachMethod::kTreeDp only supports undirected graphs");
    // Weighted counts come in through Subgraph::pendant_weight (the home
    // convention); the raw multiplicity array is only needed by the BFS
    // strategy, which walks the graph directly.
    reach_by_tree_dp(g, dec);
  } else {
    reach_by_bfs(g, dec, multiplicity);
  }
}

}  // namespace apgre
