#include "bcc/queries.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace apgre {

BlockCutQueries::BlockCutQueries(const CsrGraph& g)
    : bcc_(biconnected_components(g)),
      tree_(block_cut_tree(bcc_, g.num_vertices())) {
  const Vertex blocks = tree_.num_blocks();
  const Vertex nodes = blocks + tree_.num_aps();
  parent_.assign(nodes, kInvalidVertex);
  depth_.assign(nodes, 0);
  tree_component_.assign(nodes, kInvalidVertex);

  // Root every tree of the bipartite forest with a BFS.
  std::vector<Vertex> queue;
  std::vector<bool> seen(nodes, false);
  Vertex component = 0;
  auto neighbors = [&](Vertex node, auto&& visit) {
    if (node < blocks) {
      for (Vertex ap : tree_.block_aps[node]) visit(blocks + ap);
    } else {
      for (Vertex block : tree_.ap_blocks[node - blocks]) visit(block);
    }
  };
  for (Vertex root = 0; root < nodes; ++root) {
    if (seen[root]) continue;
    seen[root] = true;
    tree_component_[root] = component;
    queue.assign(1, root);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const Vertex node = queue[head];
      neighbors(node, [&](Vertex next) {
        if (!seen[next]) {
          seen[next] = true;
          parent_[next] = node;
          depth_[next] = depth_[node] + 1;
          tree_component_[next] = component;
          queue.push_back(next);
        }
      });
    }
    ++component;
  }
}

Vertex BlockCutQueries::node_of(Vertex v) const {
  const Vertex ap = tree_.ap_index[v];
  if (ap != kInvalidVertex) return tree_.num_blocks() + ap;
  return bcc_.any_component[v];  // kInvalidVertex for isolated vertices
}

Vertex BlockCutQueries::lca(Vertex x, Vertex y) const {
  while (depth_[x] > depth_[y]) x = parent_[x];
  while (depth_[y] > depth_[x]) y = parent_[y];
  while (x != y) {
    x = parent_[x];
    y = parent_[y];
  }
  return x;
}

bool BlockCutQueries::on_path(Vertex node, Vertex x, Vertex y) const {
  // node lies on the x..y tree path iff it is an ancestor of x or y with
  // depth >= depth(lca), and is an ancestor of at least one endpoint.
  const Vertex meet = lca(x, y);
  if (depth_[node] < depth_[meet]) return false;
  auto is_ancestor_of = [&](Vertex descendant) {
    Vertex cur = descendant;
    while (depth_[cur] > depth_[node]) cur = parent_[cur];
    return cur == node;
  };
  return is_ancestor_of(x) || is_ancestor_of(y);
}

bool BlockCutQueries::same_block(Vertex u, Vertex v) const {
  APGRE_ASSERT(u < tree_.ap_index.size() && v < tree_.ap_index.size());
  if (u == v) return true;
  const Vertex au = tree_.ap_index[u];
  const Vertex av = tree_.ap_index[v];
  if (au == kInvalidVertex && av == kInvalidVertex) {
    return bcc_.any_component[u] != kInvalidVertex &&
           bcc_.any_component[u] == bcc_.any_component[v];
  }
  if (au != kInvalidVertex && av != kInvalidVertex) {
    // Intersect the two sorted block lists.
    const auto& bu = tree_.ap_blocks[au];
    const auto& bv = tree_.ap_blocks[av];
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < bu.size() && j < bv.size()) {
      if (bu[i] == bv[j]) return true;
      bu[i] < bv[j] ? ++i : ++j;
    }
    return false;
  }
  // One AP, one plain vertex: check the plain vertex's unique block.
  const Vertex plain = au == kInvalidVertex ? u : v;
  const Vertex ap = au == kInvalidVertex ? av : au;
  const Vertex block = bcc_.any_component[plain];
  if (block == kInvalidVertex) return false;
  const auto& blocks = tree_.ap_blocks[ap];
  return std::binary_search(blocks.begin(), blocks.end(), block);
}

UpdateLocality BlockCutQueries::classify_update(Vertex u, Vertex v,
                                               bool inserting) const {
  APGRE_ASSERT(u < tree_.ap_index.size() && v < tree_.ap_index.size());
  // Removals are always structural: deleting any cycle edge can split its
  // block (C4 minus an edge is a path with two fresh articulation points).
  if (!inserting) return UpdateLocality::kStructural;
  if (u == v) return UpdateLocality::kStructural;
  // An endpoint that is an articulation point may stop being one once the
  // new edge adds a bypass, which merges blocks.
  if (tree_.ap_index[u] != kInvalidVertex ||
      tree_.ap_index[v] != kInvalidVertex) {
    return UpdateLocality::kStructural;
  }
  // Two non-AP vertices inside one biconnected component: the inserted
  // edge is a chord, every block and every articulation point survives.
  return same_block(u, v) ? UpdateLocality::kLocal
                          : UpdateLocality::kStructural;
}

bool BlockCutQueries::connected(Vertex u, Vertex v) const {
  if (u == v) return true;
  const Vertex nu = node_of(u);
  const Vertex nv = node_of(v);
  if (nu == kInvalidVertex || nv == kInvalidVertex) return false;
  return tree_component_[nu] == tree_component_[nv];
}

bool BlockCutQueries::separates(Vertex a, Vertex u, Vertex v) const {
  APGRE_ASSERT(a < tree_.ap_index.size());
  if (a == u || a == v || u == v) return false;
  const Vertex ap = tree_.ap_index[a];
  if (ap == kInvalidVertex) return false;  // not an articulation point
  if (!connected(u, v)) return false;      // already apart
  const Vertex nu = node_of(u);
  const Vertex nv = node_of(v);
  const Vertex na = tree_.num_blocks() + ap;
  if (tree_component_[na] != tree_component_[nu]) return false;
  return on_path(na, nu, nv);
}

}  // namespace apgre
