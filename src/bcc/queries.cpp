#include "bcc/queries.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace apgre {

BlockCutQueries::BlockCutQueries(const CsrGraph& g,
                                 ParallelDecomposition decomposition)
    : bcc_(use_parallel_decomposition(decomposition, g)
               ? parallel_biconnected_components(g)
               : biconnected_components(g)),
      tree_(block_cut_tree(bcc_, g.num_vertices())),
      directed_(g.directed()) {
  const Vertex blocks = tree_.num_blocks();
  const Vertex nodes = blocks + tree_.num_aps();
  parent_.assign(nodes, kInvalidVertex);
  depth_.assign(nodes, 0);
  tree_component_.assign(nodes, kInvalidVertex);

  // Root every tree of the bipartite forest with a BFS.
  std::vector<Vertex> queue;
  std::vector<bool> seen(nodes, false);
  Vertex component = 0;
  auto neighbors = [&](Vertex node, auto&& visit) {
    if (node < blocks) {
      for (Vertex ap : tree_.block_aps[node]) visit(blocks + ap);
    } else {
      for (Vertex block : tree_.ap_blocks[node - blocks]) visit(block);
    }
  };
  for (Vertex root = 0; root < nodes; ++root) {
    if (seen[root]) continue;
    seen[root] = true;
    tree_component_[root] = component;
    queue.assign(1, root);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const Vertex node = queue[head];
      neighbors(node, [&](Vertex next) {
        if (!seen[next]) {
          seen[next] = true;
          parent_[next] = node;
          depth_[next] = depth_[node] + 1;
          tree_component_[next] = component;
          queue.push_back(next);
        }
      });
    }
    ++component;
  }
}

Vertex BlockCutQueries::node_of(Vertex v) const {
  const Vertex ap = tree_.ap_index[v];
  if (ap != kInvalidVertex) return tree_.num_blocks() + ap;
  return bcc_.any_component[v];  // kInvalidVertex for isolated vertices
}

Vertex BlockCutQueries::lca(Vertex x, Vertex y) const {
  while (depth_[x] > depth_[y]) x = parent_[x];
  while (depth_[y] > depth_[x]) y = parent_[y];
  while (x != y) {
    x = parent_[x];
    y = parent_[y];
  }
  return x;
}

bool BlockCutQueries::on_path(Vertex node, Vertex x, Vertex y) const {
  // node lies on the x..y tree path iff it is an ancestor of x or y with
  // depth >= depth(lca), and is an ancestor of at least one endpoint.
  const Vertex meet = lca(x, y);
  if (depth_[node] < depth_[meet]) return false;
  auto is_ancestor_of = [&](Vertex descendant) {
    Vertex cur = descendant;
    while (depth_[cur] > depth_[node]) cur = parent_[cur];
    return cur == node;
  };
  return is_ancestor_of(x) || is_ancestor_of(y);
}

bool BlockCutQueries::same_block(Vertex u, Vertex v) const {
  APGRE_ASSERT(u < tree_.ap_index.size() && v < tree_.ap_index.size());
  if (u == v) return true;
  return common_block(u, v) != kInvalidVertex;
}

Vertex BlockCutQueries::common_block(Vertex u, Vertex v) const {
  APGRE_ASSERT(u < tree_.ap_index.size() && v < tree_.ap_index.size());
  APGRE_ASSERT(u != v);
  const Vertex au = tree_.ap_index[u];
  const Vertex av = tree_.ap_index[v];
  if (au == kInvalidVertex && av == kInvalidVertex) {
    const Vertex block = bcc_.any_component[u];
    if (block == kInvalidVertex || block != bcc_.any_component[v]) {
      return kInvalidVertex;
    }
    return block;
  }
  if (au != kInvalidVertex && av != kInvalidVertex) {
    // Intersect the two sorted block lists.
    const auto& bu = tree_.ap_blocks[au];
    const auto& bv = tree_.ap_blocks[av];
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < bu.size() && j < bv.size()) {
      if (bu[i] == bv[j]) return bu[i];
      bu[i] < bv[j] ? ++i : ++j;
    }
    return kInvalidVertex;
  }
  // One AP, one plain vertex: check the plain vertex's unique block.
  const Vertex plain = au == kInvalidVertex ? u : v;
  const Vertex ap = au == kInvalidVertex ? av : au;
  const Vertex block = bcc_.any_component[plain];
  if (block == kInvalidVertex) return kInvalidVertex;
  const auto& blocks = tree_.ap_blocks[ap];
  return std::binary_search(blocks.begin(), blocks.end(), block)
             ? block
             : kInvalidVertex;
}

bool BlockCutQueries::block_survives_deletion(Vertex b, Vertex u,
                                              Vertex v) const {
  return block_survives_ops(
      b, EdgeList{Edge{std::min(u, v), std::max(u, v)}}, EdgeList{});
}

bool BlockCutQueries::block_survives_ops(Vertex b, const EdgeList& removed,
                                         const EdgeList& added) const {
  const auto& members = bcc_.component_vertices[b];
  // A two-vertex block is a bridge: deleting its edge disconnects it.
  if (!removed.empty() && members.size() < 3) return false;
  auto local_id = [&](Vertex global) {
    const auto it = std::lower_bound(members.begin(), members.end(), global);
    APGRE_ASSERT(it != members.end() && *it == global);
    return static_cast<Vertex>(it - members.begin());
  };
  auto is_removed = [&removed](const Edge& e) {
    return std::find_if(removed.begin(), removed.end(), [&e](const Edge& r) {
             return r.src == e.src && r.dst == e.dst;
           }) != removed.end();
  };
  EdgeList local_edges;
  local_edges.reserve(bcc_.component_edges[b].size() + added.size());
  for (const Edge& e : bcc_.component_edges[b]) {
    if (is_removed(e)) continue;  // a candidate deletion
    local_edges.push_back(Edge{local_id(e.src), local_id(e.dst)});
  }
  for (const Edge& e : added) {
    local_edges.push_back(Edge{local_id(e.src), local_id(e.dst)});
  }
  const CsrGraph block_graph = CsrGraph::undirected_from_edges(
      static_cast<Vertex>(members.size()), std::move(local_edges));
  // The block survives iff what remains is one biconnected component that
  // still spans every member (a vertex dropped to degree < 2 — or isolated
  // entirely — would fall outside the single surviving component).
  const BiconnectedComponents after = biconnected_components(block_graph);
  return after.num_components == 1 &&
         after.component_vertices[0].size() == members.size();
}

UpdateLocality BlockCutQueries::classify_update(Vertex u, Vertex v,
                                               bool inserting) const {
  APGRE_ASSERT(u < tree_.ap_index.size() && v < tree_.ap_index.size());
  // Directed graphs: conservative. The undirected projection's block
  // structure can survive an update whose directed reachability (and thus
  // the alpha/beta reach counts the localized path reuses) changes.
  if (directed_) return UpdateLocality::kStructural;
  if (u == v) return UpdateLocality::kStructural;
  if (inserting) {
    // An endpoint that is an articulation point may stop being one once
    // the new edge adds a bypass, which merges blocks.
    if (tree_.ap_index[u] != kInvalidVertex ||
        tree_.ap_index[v] != kInvalidVertex) {
      return UpdateLocality::kStructural;
    }
    // Two non-AP vertices inside one biconnected component: the inserted
    // edge is a chord, every block and every articulation point survives.
    return same_block(u, v) ? UpdateLocality::kLocalInsert
                            : UpdateLocality::kStructural;
  }
  // Deletion. Articulation endpoints are fine here: as long as the block
  // minus the edge stays biconnected, the edge partition — and with it the
  // whole block-cut tree — is unchanged, so no vertex gains or loses
  // articulation status.
  const Vertex block = common_block(u, v);
  if (block == kInvalidVertex) return UpdateLocality::kStructural;
  return block_survives_deletion(block, u, v) ? UpdateLocality::kLocalDelete
                                              : UpdateLocality::kStructural;
}

BatchClassification BlockCutQueries::classify_batch(
    const std::vector<EdgeOp>& ops) const {
  BatchClassification out;
  auto downgrade = [&out]() -> BatchClassification& {
    out.structural = true;
    out.groups.clear();
    return out;
  };
  if (ops.empty()) return out;
  // Directed graphs: conservative, same as classify_update.
  if (directed_) return downgrade();

  // Route every op to its common block. Insert conservatism matches the
  // per-edge path (AP endpoints may merge blocks); deletes only need a
  // shared block here — survival is judged per *group* below, against the
  // block's net post-batch edge set.
  std::vector<std::size_t> group_of_block(bcc_.num_components, ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const EdgeOp& op = ops[i];
    APGRE_ASSERT(op.u < tree_.ap_index.size() && op.v < tree_.ap_index.size());
    if (op.u == op.v) return downgrade();
    if (op.insert && (tree_.ap_index[op.u] != kInvalidVertex ||
                      tree_.ap_index[op.v] != kInvalidVertex)) {
      return downgrade();
    }
    const Vertex block = common_block(op.u, op.v);
    if (block == kInvalidVertex) return downgrade();
    std::size_t& slot = group_of_block[block];
    if (slot == ops.size()) {
      slot = out.groups.size();
      out.groups.push_back(BatchGroup{block, {}, false});
    }
    BatchGroup& group = out.groups[slot];
    group.ops.push_back(i);
    group.has_delete |= !op.insert;
  }

  // One survival check per block with deletions — the whole-batch
  // amortisation. Insert-only groups are pure chords and always survive.
  for (const BatchGroup& group : out.groups) {
    if (!group.has_delete) continue;
    EdgeList removed;
    EdgeList added;
    for (const std::size_t i : group.ops) {
      const Edge canonical{std::min(ops[i].u, ops[i].v),
                           std::max(ops[i].u, ops[i].v)};
      (ops[i].insert ? added : removed).push_back(canonical);
    }
    if (!block_survives_ops(group.block, removed, added)) return downgrade();
  }
  return out;
}

void BlockCutQueries::apply_local_update(Vertex u, Vertex v, bool inserting) {
  APGRE_ASSERT(u != v);
  const Vertex block = common_block(u, v);
  APGRE_ASSERT_MSG(block != kInvalidVertex,
                   "apply_local_update on a non-local update");
  auto& edges = bcc_.component_edges[block];
  const Edge canonical{std::min(u, v), std::max(u, v)};
  const auto pos = std::lower_bound(edges.begin(), edges.end(), canonical);
  const bool present = pos != edges.end() && *pos == canonical;
  if (inserting) {
    APGRE_ASSERT_MSG(!present, "apply_local_update: chord already recorded");
    edges.insert(pos, canonical);
  } else {
    APGRE_ASSERT_MSG(present, "apply_local_update: edge not in block");
    edges.erase(pos);
  }
}

bool BlockCutQueries::connected(Vertex u, Vertex v) const {
  if (u == v) return true;
  const Vertex nu = node_of(u);
  const Vertex nv = node_of(v);
  if (nu == kInvalidVertex || nv == kInvalidVertex) return false;
  return tree_component_[nu] == tree_component_[nv];
}

bool BlockCutQueries::separates(Vertex a, Vertex u, Vertex v) const {
  APGRE_ASSERT(a < tree_.ap_index.size());
  if (a == u || a == v || u == v) return false;
  const Vertex ap = tree_.ap_index[a];
  if (ap == kInvalidVertex) return false;  // not an articulation point
  if (!connected(u, v)) return false;      // already apart
  const Vertex nu = node_of(u);
  const Vertex nv = node_of(v);
  const Vertex na = tree_.num_blocks() + ap;
  if (tree_component_[na] != tree_component_[nu]) return false;
  return on_path(na, nu, nv);
}

}  // namespace apgre
