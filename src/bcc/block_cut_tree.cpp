#include "bcc/block_cut_tree.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace apgre {

BlockCutTree block_cut_tree(const BiconnectedComponents& bcc, Vertex num_vertices) {
  BlockCutTree tree;
  tree.ap_index.assign(num_vertices, kInvalidVertex);
  for (Vertex v = 0; v < num_vertices; ++v) {
    if (bcc.is_articulation[v]) {
      tree.ap_index[v] = static_cast<Vertex>(tree.articulation_vertices.size());
      tree.articulation_vertices.push_back(v);
    }
  }

  tree.block_aps.resize(bcc.num_components);
  tree.ap_blocks.resize(tree.articulation_vertices.size());
  for (Vertex block = 0; block < bcc.num_components; ++block) {
    for (Vertex v : bcc.component_vertices[block]) {
      const Vertex ap = tree.ap_index[v];
      if (ap == kInvalidVertex) continue;
      tree.block_aps[block].push_back(ap);
      tree.ap_blocks[ap].push_back(block);
    }
    std::sort(tree.block_aps[block].begin(), tree.block_aps[block].end());
  }
  for (auto& blocks : tree.ap_blocks) std::sort(blocks.begin(), blocks.end());
  return tree;
}

bool is_forest(const BlockCutTree& tree) {
  // Count bipartite edges and do a union-find cycle check.
  const Vertex blocks = tree.num_blocks();
  const Vertex nodes = blocks + tree.num_aps();
  std::vector<Vertex> parent(nodes);
  for (Vertex i = 0; i < nodes; ++i) parent[i] = i;
  auto find = [&](Vertex x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (Vertex block = 0; block < blocks; ++block) {
    for (Vertex ap : tree.block_aps[block]) {
      const Vertex a = find(block);
      const Vertex b = find(blocks + ap);
      if (a == b) return false;  // cycle
      parent[a] = b;
    }
  }
  return true;
}

}  // namespace apgre
