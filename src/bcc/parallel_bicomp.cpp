#include "bcc/parallel_bicomp.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "graph/transform.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/sched/scheduler.hpp"
#include "support/trace.hpp"

namespace apgre {

namespace {

/// Serial union-find with path halving over the skeleton pairs the parallel
/// sweeps collect. The pair count is at most |E| + |V|, so this tail stays
/// a small fraction of the BFS/tag work that actually parallelises.
class UnionFind {
 public:
  explicit UnionFind(Vertex n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  Vertex find(Vertex v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }

  void unite(Vertex a, Vertex b) {
    const Vertex ra = find(a);
    const Vertex rb = find(b);
    if (ra != rb) parent_[ra] = rb;
  }

 private:
  std::vector<Vertex> parent_;
};

struct SkeletonPair {
  Vertex a;
  Vertex b;
};

}  // namespace

bool use_parallel_decomposition(ParallelDecomposition mode, const CsrGraph& g) {
  if (g.directed()) return false;
  switch (mode) {
    case ParallelDecomposition::kOn:
      return true;
    case ParallelDecomposition::kOff:
      return false;
    case ParallelDecomposition::kAuto:
      return g.num_vertices() >= kParallelDecompositionAutoThreshold;
  }
  return false;
}

void canonicalize_blocks(BiconnectedComponents& bcc) {
  const auto blocks = static_cast<std::size_t>(bcc.num_components);
  std::vector<Vertex> order(blocks);
  std::iota(order.begin(), order.end(), 0);
  // component_vertices are sorted ascending (both producers sort them), so
  // lexicographic vector order == order by min member id: two distinct
  // blocks share at most one vertex, so their minima differ unless the
  // shared vertex is both minima — and then the second elements differ.
  std::sort(order.begin(), order.end(), [&](Vertex a, Vertex b) {
    return bcc.component_vertices[a] < bcc.component_vertices[b];
  });

  std::vector<std::vector<Vertex>> vertices(blocks);
  std::vector<EdgeList> edges(blocks);
  for (std::size_t pos = 0; pos < blocks; ++pos) {
    vertices[pos] = std::move(bcc.component_vertices[order[pos]]);
    edges[pos] = std::move(bcc.component_edges[order[pos]]);
  }
  bcc.component_vertices = std::move(vertices);
  bcc.component_edges = std::move(edges);

  // any_component: the smallest canonical block containing each vertex
  // (one deterministic choice; consumers only rely on it being *a* block).
  std::fill(bcc.any_component.begin(), bcc.any_component.end(),
            kInvalidVertex);
  for (std::size_t b = blocks; b-- > 0;) {
    for (Vertex v : bcc.component_vertices[b]) {
      bcc.any_component[v] = static_cast<Vertex>(b);
    }
  }
}

BiconnectedComponents parallel_biconnected_components(const CsrGraph& g) {
  if (g.directed()) {
    // The skeleton rules assume the BFS-forest cross-edge property of an
    // undirected simple graph; directed inputs decompose their projection
    // serially (still canonicalized, so callers see one output contract).
    metrics().counter("bcc.parallel.fallbacks").add();
    BiconnectedComponents bcc = biconnected_components(g);
    canonicalize_blocks(bcc);
    return bcc;
  }

  APGRE_TRACE_SPAN("bcc/parallel_bicomp");
  metrics().counter("bcc.parallel.decompositions").add();

  const Vertex n = g.num_vertices();
  WorkStealingScheduler& sched = WorkStealingScheduler::shared();
  const int slots = sched.num_slots();

  BiconnectedComponents out;
  out.is_articulation.assign(n, false);
  out.any_component.assign(n, kInvalidVertex);
  if (n == 0) return out;

  // ---- 1. Parallel BFS spanning forest ---------------------------------
  // Roots claim themselves (parent == self); frontier expansion claims
  // children with a CAS, so the parent choice is interleaving-dependent —
  // any spanning tree restricted to a BCC spans that BCC, so every choice
  // yields the same blocks, and canonicalize_blocks() fixes the numbering.
  std::vector<std::atomic<Vertex>> claim(n);
  sched.parallel_for(0, n, 0, [&](std::int64_t lo, std::int64_t hi, int) {
    for (std::int64_t v = lo; v < hi; ++v) {
      claim[static_cast<std::size_t>(v)].store(kInvalidVertex,
                                               std::memory_order_relaxed);
    }
  });

  std::vector<Vertex> level(n, 0);
  std::vector<Vertex> frontier;
  std::vector<Vertex> next_frontier;
  std::vector<std::vector<Vertex>> slot_next(
      static_cast<std::size_t>(slots));
  std::vector<Vertex> bfs_roots;
  Vertex max_level = 0;
  Vertex num_visited = 0;

  for (Vertex root = 0; root < n; ++root) {
    if (g.out_degree(root) == 0) continue;  // isolated: no block
    if (claim[root].load(std::memory_order_relaxed) != kInvalidVertex) {
      continue;
    }
    claim[root].store(root, std::memory_order_relaxed);
    bfs_roots.push_back(root);
    ++num_visited;
    frontier.assign(1, root);
    Vertex depth = 0;
    while (!frontier.empty()) {
      ++depth;
      const auto fsize = static_cast<std::int64_t>(frontier.size());
      sched.parallel_for(0, fsize, 0,
                         [&](std::int64_t lo, std::int64_t hi, int slot) {
        auto& local = slot_next[static_cast<std::size_t>(slot)];
        for (std::int64_t i = lo; i < hi; ++i) {
          const Vertex v = frontier[static_cast<std::size_t>(i)];
          for (Vertex x : g.out_neighbors(v)) {
            Vertex expected = kInvalidVertex;
            if (claim[x].compare_exchange_strong(expected, v,
                                                 std::memory_order_relaxed)) {
              level[x] = depth;  // sole claimer: plain write is race-free
              local.push_back(x);
            }
          }
        }
      });
      next_frontier.clear();
      for (auto& local : slot_next) {
        next_frontier.insert(next_frontier.end(), local.begin(), local.end());
        local.clear();
      }
      frontier.swap(next_frontier);
      num_visited += static_cast<Vertex>(frontier.size());
    }
    max_level = std::max(max_level, depth - 1);
  }

  std::vector<Vertex> parent(n, kInvalidVertex);
  sched.parallel_for(0, n, 0, [&](std::int64_t lo, std::int64_t hi, int) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const auto v = static_cast<Vertex>(i);
      parent[v] = claim[v].load(std::memory_order_relaxed);
    }
  });
  const auto is_root = [&](Vertex v) { return parent[v] == v; };
  const auto visited = [&](Vertex v) { return parent[v] != kInvalidVertex; };

  metrics().gauge("bcc.parallel.levels").set(static_cast<double>(max_level + 1));

  // ---- children lists + level buckets (serial counting sorts) ----------
  // Deterministic placement in vertex-id order; O(n) each.
  std::vector<Vertex> child_start(static_cast<std::size_t>(n) + 1, 0);
  for (Vertex v = 0; v < n; ++v) {
    if (visited(v) && !is_root(v)) ++child_start[parent[v] + 1];
  }
  std::partial_sum(child_start.begin(), child_start.end(),
                   child_start.begin());
  std::vector<Vertex> child_list(child_start[n]);
  {
    std::vector<Vertex> cursor(child_start.begin(), child_start.end() - 1);
    for (Vertex v = 0; v < n; ++v) {
      if (visited(v) && !is_root(v)) child_list[cursor[parent[v]]++] = v;
    }
  }
  const auto children = [&](Vertex v) {
    return std::pair<Vertex, Vertex>(child_start[v], child_start[v + 1]);
  };

  std::vector<Vertex> level_start(static_cast<std::size_t>(max_level) + 2, 0);
  for (Vertex v = 0; v < n; ++v) {
    if (visited(v)) ++level_start[level[v] + 1];
  }
  std::partial_sum(level_start.begin(), level_start.end(),
                   level_start.begin());
  std::vector<Vertex> by_level(num_visited);
  {
    std::vector<Vertex> cursor(level_start.begin(), level_start.end() - 1);
    for (Vertex v = 0; v < n; ++v) {
      if (visited(v)) by_level[cursor[level[v]]++] = v;
    }
  }

  // ---- 2. Euler-tour ranks: first/last via two level sweeps ------------
  // Children sit exactly one level below their parent, so a bottom-up
  // sweep has every subtree size ready when its parent runs, and a
  // top-down sweep has every first ready when the children are assigned.
  std::vector<Vertex> subtree(n, 0);
  std::vector<Vertex> first(n, 0);
  for (Vertex l = max_level + 1; l-- > 0;) {
    sched.parallel_for(level_start[l], level_start[l + 1], 0,
                       [&](std::int64_t lo, std::int64_t hi, int) {
      for (std::int64_t i = lo; i < hi; ++i) {
        const Vertex v = by_level[static_cast<std::size_t>(i)];
        Vertex size = 1;
        const auto [cb, ce] = children(v);
        for (Vertex c = cb; c < ce; ++c) size += subtree[child_list[c]];
        subtree[v] = size;
      }
    });
  }
  {
    // Per-tree global offsets in root id order: preorder ranks are unique
    // across the whole forest, so interval tests never cross trees.
    Vertex offset = 0;
    for (Vertex root : bfs_roots) {
      first[root] = offset;
      offset += subtree[root];
    }
    APGRE_ASSERT(offset == num_visited);
  }
  for (Vertex l = 0; l <= max_level; ++l) {
    sched.parallel_for(level_start[l], level_start[l + 1], 0,
                       [&](std::int64_t lo, std::int64_t hi, int) {
      for (std::int64_t i = lo; i < hi; ++i) {
        const Vertex v = by_level[static_cast<std::size_t>(i)];
        Vertex acc = first[v] + 1;
        const auto [cb, ce] = children(v);
        for (Vertex c = cb; c < ce; ++c) {
          const Vertex w = child_list[c];
          first[w] = acc;
          acc += subtree[w];
        }
      }
    });
  }
  const auto last = [&](Vertex v) { return first[v] + subtree[v] - 1; };

  // ---- 3. low/high tags -------------------------------------------------
  // w1/w2: extreme preorder rank among v and all its neighbours. Tree
  // neighbours contribute harmlessly — the rule-2 escape tests are strict
  // comparisons against the *parent's* interval, which parent and child
  // ranks can never win — so no tree/non-tree case split is needed.
  std::vector<Vertex> low(n, 0);
  std::vector<Vertex> high(n, 0);
  sched.parallel_for(0, n, 0, [&](std::int64_t lo_i, std::int64_t hi_i, int) {
    for (std::int64_t i = lo_i; i < hi_i; ++i) {
      const auto v = static_cast<Vertex>(i);
      if (!visited(v)) continue;
      Vertex lo = first[v];
      Vertex hi = first[v];
      for (Vertex x : g.out_neighbors(v)) {
        lo = std::min(lo, first[x]);
        hi = std::max(hi, first[x]);
      }
      low[v] = lo;
      high[v] = hi;
    }
  });
  for (Vertex l = max_level + 1; l-- > 0;) {
    sched.parallel_for(level_start[l], level_start[l + 1], 0,
                       [&](std::int64_t lo_i, std::int64_t hi_i, int) {
      for (std::int64_t i = lo_i; i < hi_i; ++i) {
        const Vertex v = by_level[static_cast<std::size_t>(i)];
        const auto [cb, ce] = children(v);
        for (Vertex c = cb; c < ce; ++c) {
          const Vertex w = child_list[c];
          low[v] = std::min(low[v], low[w]);
          high[v] = std::max(high[v], high[w]);
        }
      }
    });
  }

  // ---- 4. Skeleton edges + connected components ------------------------
  // Vertex v (non-root) stands for its tree edge (parent(v), v); the
  // skeleton's connected components are the biconnected components.
  std::vector<std::vector<SkeletonPair>> slot_pairs(
      static_cast<std::size_t>(slots));
  sched.parallel_for(0, n, 0, [&](std::int64_t lo_i, std::int64_t hi_i,
                                  int slot) {
    auto& local = slot_pairs[static_cast<std::size_t>(slot)];
    for (std::int64_t i = lo_i; i < hi_i; ++i) {
      const auto u = static_cast<Vertex>(i);
      if (!visited(u)) continue;
      // Rule 1: each non-tree edge {u, x} joins u ~ x. In a BFS forest of
      // a simple graph the endpoints are unrelated — and never roots,
      // since every edge at a root is a tree edge (all the root's
      // neighbours are unvisited when it expands).
      for (Vertex x : g.out_neighbors(u)) {
        if (u >= x) continue;  // one undirected edge, one pair
        if (parent[x] == u || parent[u] == x) continue;
        APGRE_ASSERT(first[x] > last(u) || last(x) < first[u]);
        local.push_back(SkeletonPair{u, x});
      }
      // Rule 2: consecutive tree edges (p, v) and (v, u) share a block iff
      // an edge escapes subtree(u) past subtree(v) — some cycle through
      // both tree edges exists exactly then.
      const Vertex v = parent[u];
      if (u == v || is_root(v)) continue;
      if (low[u] < first[v] || high[u] > last(v)) {
        local.push_back(SkeletonPair{u, v});
      }
    }
  });

  UnionFind uf(n);
  for (const auto& local : slot_pairs) {
    for (const SkeletonPair& pair : local) uf.unite(pair.a, pair.b);
  }

  // Dense block ids per union-find class, in ascending representative-child
  // order (still interleaving-dependent via the parent choices; the
  // canonical pass below renumbers).
  std::vector<Vertex> label(n, kInvalidVertex);
  std::vector<Vertex> block_of_class(n, kInvalidVertex);
  Vertex num_blocks = 0;
  for (Vertex v = 0; v < n; ++v) {
    if (!visited(v) || is_root(v)) continue;
    const Vertex rep = uf.find(v);
    if (block_of_class[rep] == kInvalidVertex) {
      block_of_class[rep] = num_blocks++;
    }
    label[v] = block_of_class[rep];
  }

  // ---- Materialise blocks ----------------------------------------------
  // Edge {u, x} lives in the block of its tree edge's child endpoint, or —
  // for non-tree edges — in label(u) == label(x) (rule 1 united them).
  const auto edge_block = [&](Vertex u, Vertex x) {
    if (parent[x] == u) return label[x];
    if (parent[u] == x) return label[u];
    return label[u];
  };

  std::vector<EdgeId> edge_start(static_cast<std::size_t>(num_blocks) + 1, 0);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex x : g.out_neighbors(u)) {
      if (u < x) ++edge_start[edge_block(u, x) + 1];
    }
  }
  std::partial_sum(edge_start.begin(), edge_start.end(), edge_start.begin());
  out.num_components = num_blocks;
  out.component_vertices.resize(num_blocks);
  out.component_edges.resize(num_blocks);
  {
    std::vector<EdgeId> cursor(edge_start.begin(), edge_start.end() - 1);
    std::vector<Edge> all_edges(edge_start[num_blocks]);
    for (Vertex u = 0; u < n; ++u) {
      for (Vertex x : g.out_neighbors(u)) {
        if (u < x) all_edges[cursor[edge_block(u, x)]++] = Edge{u, x};
      }
    }
    sched.parallel_for(0, num_blocks, 1,
                       [&](std::int64_t lo, std::int64_t hi, int) {
      for (std::int64_t b = lo; b < hi; ++b) {
        auto& edges = out.component_edges[static_cast<std::size_t>(b)];
        edges.assign(all_edges.begin() + static_cast<std::ptrdiff_t>(
                                             edge_start[b]),
                     all_edges.begin() + static_cast<std::ptrdiff_t>(
                                             edge_start[b + 1]));
        std::sort(edges.begin(), edges.end());
      }
    });
  }

  // Vertex sets: the k - 1 tree-edge children of a k-vertex block plus
  // their parents (a parent outside the member list is the block's
  // attachment point — pushed per child, deduped by the sort).
  std::vector<Vertex> member_start(static_cast<std::size_t>(num_blocks) + 1,
                                   0);
  for (Vertex v = 0; v < n; ++v) {
    if (label[v] != kInvalidVertex) ++member_start[label[v] + 1];
  }
  std::partial_sum(member_start.begin(), member_start.end(),
                   member_start.begin());
  std::vector<Vertex> members(member_start[num_blocks]);
  {
    std::vector<Vertex> cursor(member_start.begin(), member_start.end() - 1);
    for (Vertex v = 0; v < n; ++v) {
      if (label[v] != kInvalidVertex) members[cursor[label[v]]++] = v;
    }
  }
  sched.parallel_for(0, num_blocks, 1,
                     [&](std::int64_t lo, std::int64_t hi, int) {
    for (std::int64_t b = lo; b < hi; ++b) {
      auto& vertices = out.component_vertices[static_cast<std::size_t>(b)];
      for (Vertex m = member_start[b]; m < member_start[b + 1]; ++m) {
        const Vertex v = members[m];
        vertices.push_back(v);
        const Vertex p = parent[v];
        if (label[p] != static_cast<Vertex>(b)) vertices.push_back(p);
      }
      std::sort(vertices.begin(), vertices.end());
      vertices.erase(std::unique(vertices.begin(), vertices.end()),
                     vertices.end());
    }
  });

  // Articulation flags: v is an AP iff its incident tree edges span >= 2
  // distinct blocks (roots: >= 2 distinct child blocks; every block at v
  // contains one of v's tree edges, because any spanning tree of the
  // block is made of them). Flags land in a byte buffer first:
  // out.is_articulation is a bit-packed vector<bool>, so concurrent writes
  // to nearby vertices would race on the shared word.
  std::vector<std::uint8_t> ap_flag(static_cast<std::size_t>(n), 0);
  sched.parallel_for(0, n, 0, [&](std::int64_t lo, std::int64_t hi, int) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const auto v = static_cast<Vertex>(i);
      if (!visited(v)) continue;
      Vertex base = is_root(v) ? kInvalidVertex : label[v];
      const auto [cb, ce] = children(v);
      for (Vertex c = cb; c < ce; ++c) {
        const Vertex child_label = label[child_list[c]];
        if (base == kInvalidVertex) {
          base = child_label;
        } else if (child_label != base) {
          ap_flag[static_cast<std::size_t>(i)] = 1;
          break;
        }
      }
    }
  });
  for (std::int64_t i = 0; i < n; ++i) {
    if (ap_flag[static_cast<std::size_t>(i)] != 0) {
      out.is_articulation[static_cast<std::size_t>(i)] = true;
    }
  }

  canonicalize_blocks(out);
  metrics().gauge("bcc.parallel.blocks").set(static_cast<double>(num_blocks));
  return out;
}

}  // namespace apgre
