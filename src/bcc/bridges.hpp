// Bridges and 2-edge-connected components of the undirected projection.
//
// Complements the vertex-connectivity decomposition (articulation points /
// biconnected components): a bridge is an edge whose removal disconnects
// the graph — every bridge is a 2-vertex biconnected component, and both
// of its non-leaf endpoints are articulation points. Girvan-Newman style
// analyses and the vulnerability example use these directly.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace apgre {

struct BridgeDecomposition {
  /// Bridge edges, canonicalised src < dst, sorted.
  EdgeList bridges;
  /// Per vertex: id of its 2-edge-connected component
  /// (dense in [0, num_components); isolated vertices get their own).
  std::vector<Vertex> component;
  Vertex num_components = 0;
};

/// Tarjan low-link bridge finding, iterative, O(|V|+|E|). Directed inputs
/// are analysed through their undirected projection.
BridgeDecomposition bridge_decomposition(const CsrGraph& g);

/// Oracle for tests: an edge is a bridge iff removing it increases the
/// component count. O(|E| * (|V|+|E|)).
EdgeList bridges_bruteforce(const CsrGraph& g);

}  // namespace apgre
