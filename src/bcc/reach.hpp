// alpha/beta reach counts for boundary articulation points (paper §3.1 and
// Algorithm pseudocode step 2):
//   alpha_SGi(a) = #vertices a can reach in G without passing through SGi
//                  (the size of the common sub-DAG outside SGi, root
//                  excluded),
//   beta_SGi(a)  = #vertices that can reach a without passing through SGi
//                  (the number of DAGs sharing the common sub-DAG inside).
//
// Two strategies:
//   * kBfs: restricted forward/reverse BFS per articulation point, exactly
//     as the paper describes. Works for directed and undirected graphs;
//     parallelised across sub-graphs.
//   * kTreeDp: for undirected graphs alpha == beta and both equal a
//     subtree-size expression on the group-level block-cut tree, computable
//     in O(|V|+|E|) total. Used as the default undirected fast path and
//     compared against kBfs by the ablation bench and the test suite.
#pragma once

#include "bcc/partition.hpp"
#include "graph/csr.hpp"

namespace apgre {

/// Fill dec.subgraphs[*].alpha / .beta. kAuto selects kTreeDp for
/// undirected inputs and kBfs for directed ones.
///
/// `multiplicity` (optional) weights every vertex as 1 + multiplicity[v]:
/// the phantom-pendant counts folded in by inject_pendant_weights (2-core
/// peel anchors). Reach counts then include the peeled tree vertices each
/// anchor stands in for, except in the one sub-graph that homed them
/// (Subgraph::pendant_weight non-zero there), where they count as inside.
void compute_reach_counts(const CsrGraph& g, Decomposition& dec,
                          ReachMethod method,
                          const std::vector<Vertex>* multiplicity = nullptr);

}  // namespace apgre
