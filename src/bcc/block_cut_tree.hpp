// Block-cut tree: the bipartite tree whose nodes are biconnected components
// ("blocks") and articulation points, with an edge between a block and every
// articulation point it contains (paper §3.1, property 3: "any connected
// graph decomposes into a tree of biconnected components").
#pragma once

#include <vector>

#include "bcc/bicomp.hpp"
#include "graph/csr.hpp"

namespace apgre {

struct BlockCutTree {
  /// Sorted vertex ids of the articulation points.
  std::vector<Vertex> articulation_vertices;
  /// vertex id -> index into articulation_vertices, or kInvalidVertex.
  std::vector<Vertex> ap_index;
  /// Per block: indices (into articulation_vertices) of its APs, sorted.
  std::vector<std::vector<Vertex>> block_aps;
  /// Per AP index: ids of blocks containing it, sorted.
  std::vector<std::vector<Vertex>> ap_blocks;

  Vertex num_blocks() const { return static_cast<Vertex>(block_aps.size()); }
  Vertex num_aps() const { return static_cast<Vertex>(articulation_vertices.size()); }
};

BlockCutTree block_cut_tree(const BiconnectedComponents& bcc, Vertex num_vertices);

/// Structural sanity check used by tests: per connected component the
/// bipartite graph must be a tree (nodes == edges + 1).
bool is_forest(const BlockCutTree& tree);

}  // namespace apgre
