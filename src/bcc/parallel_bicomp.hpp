// Scheduler-native parallel biconnected components (Tarjan-Vishkin shape,
// PASGAL fast-bcc refinement).
//
// The serial Hopcroft-Tarjan DFS in bicomp.cpp is inherently sequential —
// once scoring went reentrant and scheduler-native it became the Amdahl
// bottleneck of every cold decomposition. This pass replaces the DFS with
// work that parallelises level by level:
//
//   1. parallel BFS spanning forest (CAS claims on parent[]),
//   2. euler-tour ranks first/last over the forest via two level sweeps
//      (subtree sizes bottom-up, preorder numbers top-down),
//   3. per-vertex low/high tags (min/max preorder reachable from the
//      subtree through any incident edge) via parallel_for,
//   4. a skeleton graph over the non-root vertices — vertex v stands for
//      its tree edge (parent(v), v) — whose connected components are
//      exactly the biconnected components:
//        rule 1: a non-tree edge {u, x} joins u ~ x,
//        rule 2: a tree child w of a non-root v joins w ~ v iff some edge
//                escapes subtree(w) past subtree(v)
//                (low[w] < first[v] or high[w] > last[v]).
//
// Both rules rely on a BFS-forest property of simple graphs: every
// non-tree edge joins two *unrelated* vertices (levels differ by at most
// one, and a depth-one ancestor edge would be a parent duplicate, which
// CsrGraph::from_edges removes), so subtree membership is one interval
// test on the euler ranks.
//
// Canonical numbering. Block discovery order is scheduler-dependent, so
// the result is renumbered by canonicalize_blocks() before it is returned:
// blocks sort by their sorted vertex lists (equivalently by min member id —
// two distinct blocks share at most one vertex, so no ties), and
// any_component[v] becomes the smallest block containing v. Downstream
// consumers (partition.cpp grouping, queries.cpp, caches keyed on block
// ids) therefore see one deterministic structure regardless of worker
// count or interleaving. The serial path's output is *not* canonical;
// differential tests canonicalize both sides before comparing.
#pragma once

#include "bcc/bicomp.hpp"
#include "graph/csr.hpp"

namespace apgre {

/// Decomposition-strategy knob (PartitionOptions::parallel_decomposition,
/// ServiceOptions::parallel_decomposition).
enum class ParallelDecomposition {
  kAuto,  ///< parallel when the undirected projection clears the threshold
  kOn,    ///< always parallel (directed inputs still fall back to serial)
  kOff,   ///< always the serial Hopcroft-Tarjan DFS
};

/// kAuto switches to the parallel pass at this vertex count. Small graphs
/// decompose in microseconds serially; below this the parallel_for setup
/// dominates.
inline constexpr Vertex kParallelDecompositionAutoThreshold = 16384;

/// Shared gate: does `mode` select the parallel pass for `g`? Directed
/// graphs never do (the pass itself would fall back to serial anyway; the
/// gate lets callers skip the projection and count the fallback once).
bool use_parallel_decomposition(ParallelDecomposition mode, const CsrGraph& g);

/// Renumber `bcc` into canonical order: blocks sorted by their (sorted)
/// vertex lists, any_component[v] = the smallest block containing v.
/// Idempotent; is_articulation is untouched (it is numbering-free).
void canonicalize_blocks(BiconnectedComponents& bcc);

/// Parallel biconnected components of the undirected projection of `g`,
/// in canonical numbering. Structure-identical to canonicalize_blocks()
/// applied to the serial biconnected_components(g): same blocks (vertex
/// and edge sets), same articulation flags, same any_component. Directed
/// inputs take the serial path on the projection (canonicalized), counted
/// by bcc.parallel.fallbacks.
BiconnectedComponents parallel_biconnected_components(const CsrGraph& g);

}  // namespace apgre
