#include "bcc/articulation.hpp"

#include <vector>

#include "graph/components.hpp"
#include "graph/transform.hpp"

namespace apgre {

namespace {

/// Iterative DFS frame. `next` indexes into the CSR neighbour list so the
/// traversal is allocation-free per step; `skipped_parent` ensures exactly
/// one parent arc is ignored (the projection is simple, so there is one).
struct Frame {
  Vertex v;
  Vertex parent;
  std::uint32_t next;
  bool skipped_parent;
};

}  // namespace

std::vector<bool> articulation_points(const CsrGraph& g) {
  const CsrGraph projection_storage =
      g.directed() ? undirected_projection(g) : CsrGraph();
  const CsrGraph& u = g.directed() ? projection_storage : g;

  const Vertex n = u.num_vertices();
  std::vector<bool> is_ap(n, false);
  std::vector<Vertex> disc(n, kInvalidVertex);
  std::vector<Vertex> low(n, 0);
  std::vector<Frame> stack;
  Vertex time = 0;

  for (Vertex root = 0; root < n; ++root) {
    if (disc[root] != kInvalidVertex) continue;
    disc[root] = low[root] = time++;
    stack.push_back(Frame{root, kInvalidVertex, 0, true});
    Vertex root_children = 0;

    while (!stack.empty()) {
      Frame& frame = stack.back();
      const Vertex v = frame.v;
      const auto neighbors = u.out_neighbors(v);
      if (frame.next < neighbors.size()) {
        const Vertex w = neighbors[frame.next++];
        if (w == frame.parent && !frame.skipped_parent) {
          frame.skipped_parent = true;
        } else if (disc[w] == kInvalidVertex) {
          disc[w] = low[w] = time++;
          if (v == root) ++root_children;
          stack.push_back(Frame{w, v, 0, false});
        } else {
          low[v] = std::min(low[v], disc[w]);
        }
      } else {
        stack.pop_back();
        if (frame.parent != kInvalidVertex) {
          low[frame.parent] = std::min(low[frame.parent], low[v]);
          if (frame.parent != root && low[v] >= disc[frame.parent]) {
            is_ap[frame.parent] = true;
          }
        }
      }
    }
    is_ap[root] = root_children >= 2;
  }
  return is_ap;
}

std::vector<bool> articulation_points_bruteforce(const CsrGraph& g) {
  const CsrGraph projection_storage =
      g.directed() ? undirected_projection(g) : CsrGraph();
  const CsrGraph& u = g.directed() ? projection_storage : g;

  const Vertex n = u.num_vertices();
  const Vertex base_components = connected_components(u).num_components;
  std::vector<bool> is_ap(n, false);
  std::vector<Vertex> queue;
  std::vector<bool> seen(n);

  for (Vertex removed = 0; removed < n; ++removed) {
    if (u.out_degree(removed) == 0) continue;
    std::fill(seen.begin(), seen.end(), false);
    seen[removed] = true;
    Vertex components = 1;  // the removed vertex forms its own
    for (Vertex start = 0; start < n; ++start) {
      if (seen[start]) continue;
      ++components;
      seen[start] = true;
      queue.assign(1, start);
      for (std::size_t head = 0; head < queue.size(); ++head) {
        for (Vertex w : u.out_neighbors(queue[head])) {
          if (!seen[w]) {
            seen[w] = true;
            queue.push_back(w);
          }
        }
      }
    }
    // Removing `removed` splits the graph iff the component count (with the
    // removed vertex counted alone) exceeds base + 1.
    is_ap[removed] = components > base_components + 1;
  }
  return is_ap;
}

}  // namespace apgre
