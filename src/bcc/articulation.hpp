// Articulation points of the undirected projection via an iterative
// Hopcroft-Tarjan low-link DFS (paper Algorithm 1 uses Tarjan's algorithm,
// O(|V|+|E|)).
//
// This standalone finder is intentionally independent of the biconnected-
// component decomposition in bicomp.hpp; the test suite cross-checks the
// two implementations against each other and against brute force.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace apgre {

/// Per-vertex articulation flag. `g` may be directed; the undirected
/// projection is what gets analysed (arcs in both directions are followed).
std::vector<bool> articulation_points(const CsrGraph& g);

/// Oracle used by tests: v is an articulation point iff removing it
/// increases the number of connected components of the undirected
/// projection. O(|V| * (|V|+|E|)).
std::vector<bool> articulation_points_bruteforce(const CsrGraph& g);

}  // namespace apgre
