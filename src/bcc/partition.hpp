// Graph decomposition along articulation points — paper Algorithm 1
// (GRAPHPARTITION) plus BUILDSUBGRAPH's gamma / root-set bookkeeping.
//
// The undirected projection is decomposed into biconnected components;
// a DFS over the block-cut tree starting at the largest block merges small
// blocks into their parents (threshold rule); every resulting group becomes
// a Subgraph carrying the state the APGRE kernel needs:
//   * its induced directed arcs in local ids,
//   * its boundary articulation points with alpha/beta reach counts,
//   * gamma counts and the root set R (pendants removed).
#pragma once

#include <cstdint>
#include <vector>

#include "bcc/parallel_bicomp.hpp"
#include "graph/csr.hpp"

namespace apgre {

/// How alpha/beta reach counts are computed (see reach.hpp).
enum class ReachMethod {
  kAuto,    ///< tree-DP for undirected graphs, BFS for directed ones
  kBfs,     ///< restricted forward/reverse BFS per articulation point
  kTreeDp,  ///< block-cut-tree subtree sizes (undirected inputs only)
};

struct PartitionOptions {
  /// Paper Algorithm 1 THRESHOLD: a block group smaller than this merges
  /// into its DFS parent (unless the parent is the top block).
  Vertex merge_threshold = 32;
  /// Enable total-redundancy elimination (gamma / pendant removal).
  /// Switchable for the ablation benchmark.
  bool total_redundancy = true;
  /// alpha/beta computation strategy.
  ReachMethod reach = ReachMethod::kAuto;
  /// When false, decompose() leaves alpha/beta zeroed and the caller runs
  /// compute_reach_counts() itself (the APGRE driver does this to time the
  /// two steps separately, as in the paper's Figure 8 breakdown).
  bool compute_reach = true;
  /// Peel the tree fringe down to the 2-core before decomposing
  /// (graph/transform.hpp two_core_peel): the apgre_bc driver and
  /// bc::Solver solve the core-only reduction — anchors absorb their peeled
  /// subtrees as derived pendant multiplicities (inject_pendant_weights) —
  /// and re-expand the scores with the exact closed-form corrections.
  /// Directed graphs bypass conservatively.
  bool peel_two_core = false;
  /// Which biconnectivity pass labels the blocks: kAuto runs the
  /// scheduler-native parallel pass (bcc/parallel_bicomp.hpp) once the
  /// graph clears kParallelDecompositionAutoThreshold, kOn forces it (the
  /// differential tests pin small graphs through it), kOff keeps the
  /// serial Hopcroft-Tarjan DFS. Directed graphs always decompose
  /// serially. The parallel pass emits canonical block numbering, so the
  /// resulting Decomposition is deterministic either way.
  ParallelDecomposition parallel_decomposition = ParallelDecomposition::kAuto;

  /// Memberwise equality — bc::Solver keys its cached decomposition on this.
  friend bool operator==(const PartitionOptions&,
                         const PartitionOptions&) = default;
};

/// One sub-graph SGi of the decomposition.
struct Subgraph {
  /// Induced graph over the arcs assigned to this sub-graph, in local ids.
  CsrGraph graph;
  /// local id -> global id.
  std::vector<Vertex> to_global;
  /// Local ids of the boundary articulation points (A_sgi), sorted.
  std::vector<Vertex> boundary_aps;
  /// Per local vertex: 1 iff boundary AP.
  std::vector<std::uint8_t> is_boundary_ap;
  /// alpha_SGi(a): vertices a reaches outside SGi (0 for non-boundary).
  std::vector<std::uint64_t> alpha;
  /// beta_SGi(a): vertices reaching a from outside SGi (0 for non-boundary).
  std::vector<std::uint64_t> beta;
  /// gamma_SGi(s): number of pendant DAGs derived from D_s.
  std::vector<Vertex> gamma;
  /// Per local vertex: 1 iff removed from the root set as a pendant.
  std::vector<std::uint8_t> removed;
  /// Root set R_sgi (local ids of sources whose DAGs are built), sorted.
  std::vector<Vertex> roots;
  /// Derived pendant multiplicity folded at each local vertex (empty =
  /// none). Set by inject_pendant_weights: the vertex stands in for this
  /// many phantom depth-1 pendants, which the scoring kernels account as
  /// extra targets and the self/interior bonus terms — without the pendant
  /// vertices ever entering a BFS.
  std::vector<double> pendant_weight;

  Vertex num_vertices() const { return graph.num_vertices(); }
  EdgeId num_arcs() const { return graph.num_arcs(); }
};

struct Decomposition {
  std::vector<Subgraph> subgraphs;
  /// Index of the largest sub-graph (by arc count) — the paper's "top
  /// sub-graph", which dominates APGRE's runtime (Fig. 8, Table 4).
  std::size_t top_subgraph = 0;
  /// Global structure counters.
  Vertex num_articulation_points = 0;
  Vertex num_blocks = 0;
  Vertex num_pendants_removed = 0;
  /// Global vertex count of the decomposed graph (isolated vertices are in
  /// no sub-graph but still count here).
  Vertex num_vertices = 0;

  /// Work model used for the Figure-7 redundancy breakdown, in units of
  /// source x arc: Brandes does num_vertices * num_arcs; APGRE does
  /// sum_i |R_i| * arcs_i.
  struct WorkModel {
    double brandes = 0.0;           ///< |V| * |arcs|
    double apgre = 0.0;             ///< sum |R_i| * arcs_i
    double partial_redundancy = 0;  ///< fraction of brandes removed by sub-DAG reuse
    double total_redundancy = 0;    ///< fraction removed by pendant derivation
  };
  WorkModel work_model(EdgeId total_arcs) const;
};

/// Decompose `g` and (unless opts.reach == kAuto semantics dictate
/// otherwise) fill in alpha/beta. Runs per connected component of the
/// undirected projection; vertices with no arcs are skipped.
Decomposition decompose(const CsrGraph& g, const PartitionOptions& opts = {});

/// Fold per-vertex phantom-pendant multiplicities into an existing
/// decomposition (the 2-core peel's anchor weights: each anchor stands in
/// for `multiplicity[v]` peeled tree vertices). For every vertex with a
/// non-zero multiplicity, exactly one sub-graph containing it — its "home"
/// — absorbs the weight into gamma and Subgraph::pendant_weight; every
/// other sub-graph sees the phantoms as outside vertices through the
/// weighted reach counts. Call BEFORE compute_reach_counts (pass the same
/// multiplicities there). Vertices absent from every sub-graph (isolated)
/// must have zero multiplicity.
void inject_pendant_weights(Decomposition& dec,
                            const std::vector<Vertex>& multiplicity);

}  // namespace apgre
