// Constant-ish-time connectivity robustness queries over the block-cut
// tree: "are u and v in a common biconnected component?" and "does removing
// vertex a disconnect u from v?". The power-grid example motivates these —
// contingency questions are separation queries.
#pragma once

#include <vector>

#include "bcc/bicomp.hpp"
#include "bcc/block_cut_tree.hpp"
#include "graph/csr.hpp"

namespace apgre {

/// How a single edge update relates to the block-cut tree (the service
/// layer's invalidation decision, docs/API.md "Serving requests").
enum class UpdateLocality {
  /// The block-cut tree provably survives the update: an insertion whose
  /// endpoints already share a biconnected component and neither of which
  /// is an articulation point cannot create, destroy or merge blocks, so a
  /// cached decomposition stays structurally valid (only the affected
  /// block's induced arcs change).
  kLocal,
  /// Anything else — the update touches an articulation point, bridges two
  /// biconnected components, or is a removal (deleting an edge can split
  /// its block, e.g. any cycle edge) — so the tree must be recomputed.
  kStructural,
};

/// Prebuilt query structure; O(|V|+|E|) construction, O(tree depth) per
/// separation query, O(log deg) per same-block query.
class BlockCutQueries {
 public:
  explicit BlockCutQueries(const CsrGraph& g);

  /// Classify the update "insert (inserting = true) or remove the edge
  /// (u, v)" against the tree this structure was built from. The verdict is
  /// purely structural (undirected projection); callers that reuse a cached
  /// *decomposition* must additionally require a symmetric graph, because
  /// a directed intra-block arc can still change reachability counts.
  UpdateLocality classify_update(Vertex u, Vertex v, bool inserting) const;

  /// True iff u and v share a biconnected component (equivalently: at
  /// least two vertex-disjoint paths join them, or they share an edge).
  bool same_block(Vertex u, Vertex v) const;

  /// True iff removing `a` disconnects u from v. False whenever u and v
  /// are already in different components, or a is not an articulation
  /// point, or a coincides with u or v.
  bool separates(Vertex a, Vertex u, Vertex v) const;

  /// True iff u and v are connected in the undirected projection.
  bool connected(Vertex u, Vertex v) const;

  const BiconnectedComponents& bcc() const { return bcc_; }
  const BlockCutTree& tree() const { return tree_; }

 private:
  /// Bipartite tree node id of a vertex: AP node if articulation,
  /// otherwise its unique block node. kInvalidVertex for isolated vertices.
  Vertex node_of(Vertex v) const;
  /// Walk-up LCA on the rooted bipartite tree.
  Vertex lca(Vertex x, Vertex y) const;
  bool on_path(Vertex node, Vertex x, Vertex y) const;

  BiconnectedComponents bcc_;
  BlockCutTree tree_;
  // Rooted bipartite forest: blocks [0, B), APs [B, B + A).
  std::vector<Vertex> parent_;
  std::vector<Vertex> depth_;
  std::vector<Vertex> tree_component_;
};

}  // namespace apgre
