// Constant-ish-time connectivity robustness queries over the block-cut
// tree: "are u and v in a common biconnected component?" and "does removing
// vertex a disconnect u from v?". The power-grid example motivates these —
// contingency questions are separation queries.
#pragma once

#include <vector>

#include "bcc/bicomp.hpp"
#include "bcc/block_cut_tree.hpp"
#include "graph/csr.hpp"

namespace apgre {

/// Prebuilt query structure; O(|V|+|E|) construction, O(tree depth) per
/// separation query, O(log deg) per same-block query.
class BlockCutQueries {
 public:
  explicit BlockCutQueries(const CsrGraph& g);

  /// True iff u and v share a biconnected component (equivalently: at
  /// least two vertex-disjoint paths join them, or they share an edge).
  bool same_block(Vertex u, Vertex v) const;

  /// True iff removing `a` disconnects u from v. False whenever u and v
  /// are already in different components, or a is not an articulation
  /// point, or a coincides with u or v.
  bool separates(Vertex a, Vertex u, Vertex v) const;

  /// True iff u and v are connected in the undirected projection.
  bool connected(Vertex u, Vertex v) const;

  const BiconnectedComponents& bcc() const { return bcc_; }
  const BlockCutTree& tree() const { return tree_; }

 private:
  /// Bipartite tree node id of a vertex: AP node if articulation,
  /// otherwise its unique block node. kInvalidVertex for isolated vertices.
  Vertex node_of(Vertex v) const;
  /// Walk-up LCA on the rooted bipartite tree.
  Vertex lca(Vertex x, Vertex y) const;
  bool on_path(Vertex node, Vertex x, Vertex y) const;

  BiconnectedComponents bcc_;
  BlockCutTree tree_;
  // Rooted bipartite forest: blocks [0, B), APs [B, B + A).
  std::vector<Vertex> parent_;
  std::vector<Vertex> depth_;
  std::vector<Vertex> tree_component_;
};

}  // namespace apgre
