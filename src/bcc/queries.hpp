// Constant-ish-time connectivity robustness queries over the block-cut
// tree: "are u and v in a common biconnected component?" and "does removing
// vertex a disconnect u from v?". The power-grid example motivates these —
// contingency questions are separation queries.
#pragma once

#include <cstddef>
#include <vector>

#include "bcc/bicomp.hpp"
#include "bcc/block_cut_tree.hpp"
#include "bcc/parallel_bicomp.hpp"
#include "graph/csr.hpp"
#include "graph/update.hpp"

namespace apgre {

/// How a single edge update relates to the block-cut tree (the service
/// layer's invalidation decision, docs/API.md "Update lifecycle").
enum class UpdateLocality {
  /// The block-cut tree provably survives the insertion: the endpoints
  /// already share a biconnected component and neither is an articulation
  /// point, so the new edge is a chord of one block — it cannot create,
  /// destroy or merge blocks, and a cached decomposition stays structurally
  /// valid (only the affected block's induced arcs change).
  kLocalInsert,
  /// The block-cut tree provably survives the deletion: the edge is
  /// interior to one biconnected component with >= 3 vertices and that
  /// block minus the edge is still biconnected, so no block splits, no
  /// vertex gains or loses articulation status, and every alpha/beta reach
  /// count (which depend only on the tree shape and block vertex sets)
  /// survives. Only the affected block's induced arcs change.
  kLocalDelete,
  /// Anything else — the update touches an articulation point, bridges two
  /// biconnected components, splits its block (e.g. any cycle edge), or the
  /// graph is directed (an intra-block directed arc can change directed
  /// reachability counts, so classification is conservative until the
  /// localized path learns directed blocks) — the tree must be recomputed.
  kStructural,
};

/// One affected block of a local batch: every surviving op whose edge lies
/// inside `block`, as indices into the classified op vector.
struct BatchGroup {
  Vertex block = kInvalidVertex;
  std::vector<std::size_t> ops;
  bool has_delete = false;
};

/// Whole-batch verdict (classify_batch): either the batch is provably
/// confined to its groups' blocks — the block-cut tree survives all of it —
/// or any one op poisons the batch structural and `groups` is empty.
struct BatchClassification {
  bool structural = false;
  std::vector<BatchGroup> groups;
};

/// Prebuilt query structure; O(|V|+|E|) construction, O(tree depth) per
/// separation query, O(log deg) per same-block query.
class BlockCutQueries {
 public:
  /// `decomposition` picks the biconnectivity pass the structure is built
  /// from (serial DFS vs the scheduler-native parallel pass); every query
  /// answer is independent of the choice — only internal block numbering
  /// differs, and the parallel pass canonicalizes even that.
  explicit BlockCutQueries(
      const CsrGraph& g,
      ParallelDecomposition decomposition = ParallelDecomposition::kAuto);

  /// Classify the update "insert (inserting = true) or remove the edge
  /// (u, v)" against the tree this structure was built from. Directed
  /// graphs always classify kStructural (conservative: the block structure
  /// of the projection can survive while directed reachability changes).
  /// For undirected graphs the verdict is exact: kLocalInsert for a chord
  /// between two non-articulation vertices of one block, kLocalDelete for
  /// an edge whose block stays biconnected without it.
  UpdateLocality classify_update(Vertex u, Vertex v, bool inserting) const;

  /// Classify a coalesced batch (at most one op per edge) as a whole: group
  /// the ops by their common block, then run ONE biconnectivity-survival
  /// check per block containing deletions — the post-batch block (all group
  /// deletes removed, all group inserts added) must still be one biconnected
  /// component spanning every member. That amortisation over co-located
  /// edges is the batch win: per-edge classification would rebuild and
  /// re-check the block once per delete. It is also strictly more precise
  /// than per-edge grading — a delete that per-edge splits the block can be
  /// repaired by a same-batch insert and still classify local. Any op that
  /// cannot be confined (directed graphs, AP-endpoint or cross-block
  /// inserts, cross-block deletes, a block that does not survive its net
  /// edit) downgrades the whole batch to structural.
  BatchClassification classify_batch(const std::vector<EdgeOp>& ops) const;

  /// True iff u and v share a biconnected component (equivalently: at
  /// least two vertex-disjoint paths join them, or they share an edge).
  bool same_block(Vertex u, Vertex v) const;

  /// The unique biconnected component containing both u and v, or
  /// kInvalidVertex when they share none. Unique because two distinct
  /// blocks intersect in at most one vertex — so two distinct vertices
  /// can share at most one block. Requires u != v.
  Vertex common_block(Vertex u, Vertex v) const;

  /// Patch the stored block edge multiset after the caller applied an edge
  /// update previously classified kLocalInsert / kLocalDelete to the graph.
  /// The block-cut tree survives such updates by construction, so only the
  /// affected block's edge list changes; patching it keeps later
  /// classify_update verdicts exact without a rebuild. Calling this for a
  /// structural update is a contract violation (assert).
  void apply_local_update(Vertex u, Vertex v, bool inserting);

  /// True iff removing `a` disconnects u from v. False whenever u and v
  /// are already in different components, or a is not an articulation
  /// point, or a coincides with u or v.
  bool separates(Vertex a, Vertex u, Vertex v) const;

  /// True iff u and v are connected in the undirected projection.
  bool connected(Vertex u, Vertex v) const;

  const BiconnectedComponents& bcc() const { return bcc_; }
  const BlockCutTree& tree() const { return tree_; }

 private:
  /// Bipartite tree node id of a vertex: AP node if articulation,
  /// otherwise its unique block node. kInvalidVertex for isolated vertices.
  Vertex node_of(Vertex v) const;
  /// Walk-up LCA on the rooted bipartite tree.
  Vertex lca(Vertex x, Vertex y) const;
  bool on_path(Vertex node, Vertex x, Vertex y) const;
  /// Is block `b` minus the edge {u, v} still biconnected?
  bool block_survives_deletion(Vertex b, Vertex u, Vertex v) const;
  /// Is block `b` with `removed` edges taken out and `added` chords put in
  /// still one biconnected component spanning all members? (Edges in
  /// canonical src < dst order.)
  bool block_survives_ops(Vertex b, const EdgeList& removed,
                          const EdgeList& added) const;

  BiconnectedComponents bcc_;
  BlockCutTree tree_;
  bool directed_ = false;
  // Rooted bipartite forest: blocks [0, B), APs [B, B + A).
  std::vector<Vertex> parent_;
  std::vector<Vertex> depth_;
  std::vector<Vertex> tree_component_;
};

}  // namespace apgre
