#include "bcc/bicomp.hpp"

#include <algorithm>

#include "graph/transform.hpp"
#include "support/error.hpp"

namespace apgre {

namespace {

struct Frame {
  Vertex v;
  Vertex parent;
  std::uint32_t next;
  bool skipped_parent;
};

}  // namespace

BiconnectedComponents biconnected_components(const CsrGraph& g) {
  const CsrGraph projection_storage =
      g.directed() ? undirected_projection(g) : CsrGraph();
  const CsrGraph& u = g.directed() ? projection_storage : g;

  const Vertex n = u.num_vertices();
  BiconnectedComponents out;
  out.is_articulation.assign(n, false);
  out.any_component.assign(n, kInvalidVertex);

  std::vector<Vertex> disc(n, kInvalidVertex);
  std::vector<Vertex> low(n, 0);
  std::vector<Frame> stack;
  EdgeList edge_stack;
  // Epoch-stamped membership marker for deduplicating component vertices.
  std::vector<Vertex> vertex_stamp(n, kInvalidVertex);
  Vertex time = 0;

  auto close_component = [&](const Edge& boundary) {
    const Vertex id = out.num_components++;
    auto& vertices = out.component_vertices.emplace_back();
    auto& edges = out.component_edges.emplace_back();
    Edge e{};
    do {
      APGRE_ASSERT(!edge_stack.empty());
      e = edge_stack.back();
      edge_stack.pop_back();
      edges.push_back(Edge{std::min(e.src, e.dst), std::max(e.src, e.dst)});
      for (Vertex endpoint : {e.src, e.dst}) {
        if (vertex_stamp[endpoint] != id) {
          vertex_stamp[endpoint] = id;
          vertices.push_back(endpoint);
          out.any_component[endpoint] = id;
        }
      }
    } while (e.src != boundary.src || e.dst != boundary.dst);
    std::sort(vertices.begin(), vertices.end());
    std::sort(edges.begin(), edges.end());
  };

  for (Vertex root = 0; root < n; ++root) {
    if (disc[root] != kInvalidVertex || u.out_degree(root) == 0) continue;
    disc[root] = low[root] = time++;
    stack.push_back(Frame{root, kInvalidVertex, 0, true});
    Vertex root_children = 0;

    while (!stack.empty()) {
      Frame& frame = stack.back();
      const Vertex v = frame.v;
      const auto neighbors = u.out_neighbors(v);
      if (frame.next < neighbors.size()) {
        const Vertex w = neighbors[frame.next++];
        if (w == frame.parent && !frame.skipped_parent) {
          frame.skipped_parent = true;
        } else if (disc[w] == kInvalidVertex) {
          disc[w] = low[w] = time++;
          if (v == root) ++root_children;
          edge_stack.push_back(Edge{v, w});
          stack.push_back(Frame{w, v, 0, false});
        } else if (disc[w] < disc[v]) {
          // Back edge, recorded once from the deeper endpoint.
          edge_stack.push_back(Edge{v, w});
          low[v] = std::min(low[v], disc[w]);
        }
      } else {
        stack.pop_back();
        const Vertex parent = frame.parent;
        if (parent != kInvalidVertex) {
          low[parent] = std::min(low[parent], low[v]);
          if (low[v] >= disc[parent]) {
            // The edges at or above (parent, v) form one biconnected
            // component; parent is an articulation point unless it is the
            // root (root case decided by child count below).
            close_component(Edge{parent, v});
            if (parent != root) out.is_articulation[parent] = true;
          }
        }
      }
    }
    out.is_articulation[root] = root_children >= 2;
    APGRE_ASSERT(edge_stack.empty());
  }
  return out;
}

}  // namespace apgre
