// Biconnected components of the undirected projection (paper Algorithm 1's
// FINDBCC, Hopcroft-Tarjan, O(|V|+|E|)).
//
// Every undirected edge belongs to exactly one biconnected component
// (property 4 of paper §3.1: "an edge in G is assigned to one sub-graph");
// articulation points belong to every component that touches them.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace apgre {

struct BiconnectedComponents {
  Vertex num_components = 0;
  /// Vertices of each component, sorted ascending. Articulation points
  /// appear in several components.
  std::vector<std::vector<Vertex>> component_vertices;
  /// Undirected edges of each component, canonicalised src < dst.
  std::vector<EdgeList> component_edges;
  /// Per-vertex articulation flag (matches articulation_points()).
  std::vector<bool> is_articulation;
  /// For every vertex, the id of one component containing it
  /// (kInvalidVertex for isolated vertices).
  std::vector<Vertex> any_component;
};

/// Decompose the undirected projection of `g`. Isolated vertices belong to
/// no component.
BiconnectedComponents biconnected_components(const CsrGraph& g);

}  // namespace apgre
