#include "bcc/bridges.hpp"

#include <algorithm>

#include "graph/components.hpp"
#include "graph/transform.hpp"

namespace apgre {

namespace {

struct Frame {
  Vertex v;
  Vertex parent;
  std::uint32_t next;
  bool skipped_parent;
};

}  // namespace

BridgeDecomposition bridge_decomposition(const CsrGraph& g) {
  const CsrGraph projection_storage =
      g.directed() ? undirected_projection(g) : CsrGraph();
  const CsrGraph& u = g.directed() ? projection_storage : g;

  const Vertex n = u.num_vertices();
  BridgeDecomposition out;
  std::vector<Vertex> disc(n, kInvalidVertex);
  std::vector<Vertex> low(n, 0);
  std::vector<Frame> stack;
  Vertex time = 0;

  for (Vertex root = 0; root < n; ++root) {
    if (disc[root] != kInvalidVertex) continue;
    disc[root] = low[root] = time++;
    stack.push_back(Frame{root, kInvalidVertex, 0, true});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const Vertex v = frame.v;
      const auto neighbors = u.out_neighbors(v);
      if (frame.next < neighbors.size()) {
        const Vertex w = neighbors[frame.next++];
        if (w == frame.parent && !frame.skipped_parent) {
          frame.skipped_parent = true;
        } else if (disc[w] == kInvalidVertex) {
          disc[w] = low[w] = time++;
          stack.push_back(Frame{w, v, 0, false});
        } else {
          low[v] = std::min(low[v], disc[w]);
        }
      } else {
        stack.pop_back();
        if (frame.parent != kInvalidVertex) {
          low[frame.parent] = std::min(low[frame.parent], low[v]);
          // Tree edge (parent, v) is a bridge iff nothing below v reaches
          // parent or above.
          if (low[v] > disc[frame.parent]) {
            out.bridges.push_back(Edge{std::min(frame.parent, v),
                                       std::max(frame.parent, v)});
          }
        }
      }
    }
  }
  std::sort(out.bridges.begin(), out.bridges.end());

  // 2-edge-connected components: connected components after bridge removal.
  EdgeList remaining = u.arcs();
  std::erase_if(remaining, [&](const Edge& e) {
    const Edge canonical{std::min(e.src, e.dst), std::max(e.src, e.dst)};
    return std::binary_search(out.bridges.begin(), out.bridges.end(), canonical);
  });
  const CsrGraph stripped = CsrGraph::from_edges(n, std::move(remaining), false);
  const ComponentLabels labels = connected_components(stripped);
  out.component = labels.component;
  out.num_components = labels.num_components;
  return out;
}

EdgeList bridges_bruteforce(const CsrGraph& g) {
  const CsrGraph projection_storage =
      g.directed() ? undirected_projection(g) : CsrGraph();
  const CsrGraph& u = g.directed() ? projection_storage : g;

  const Vertex base = connected_components(u).num_components;
  EdgeList bridges;
  for (const Edge& e : u.arcs()) {
    if (e.src >= e.dst) continue;  // one test per undirected edge
    EdgeList arcs = u.arcs();
    std::erase_if(arcs, [&](const Edge& a) {
      return (a.src == e.src && a.dst == e.dst) ||
             (a.src == e.dst && a.dst == e.src);
    });
    const CsrGraph without = CsrGraph::from_edges(u.num_vertices(), std::move(arcs), false);
    if (connected_components(without).num_components > base) bridges.push_back(e);
  }
  return bridges;
}

}  // namespace apgre
