#include "bcc/partition.hpp"

#include <algorithm>
#include <numeric>

#include "bcc/bicomp.hpp"
#include "bcc/block_cut_tree.hpp"
#include "bcc/parallel_bicomp.hpp"
#include "bcc/reach.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace apgre {

namespace {

/// Union-find over block ids; the root carries the accumulated vertex count
/// of the group (paper's VSet sizes).
class BlockGroups {
 public:
  explicit BlockGroups(const BiconnectedComponents& bcc)
      : parent_(bcc.num_components), size_(bcc.num_components) {
    std::iota(parent_.begin(), parent_.end(), 0);
    for (Vertex b = 0; b < bcc.num_components; ++b) {
      size_[b] = static_cast<Vertex>(bcc.component_vertices[b].size());
    }
  }

  Vertex find(Vertex b) {
    while (parent_[b] != b) {
      parent_[b] = parent_[parent_[b]];
      b = parent_[b];
    }
    return b;
  }

  /// Merge the group of `child` into the group of `parent`. The shared
  /// articulation point is counted once.
  void merge(Vertex child, Vertex parent) {
    const Vertex c = find(child);
    const Vertex p = find(parent);
    APGRE_ASSERT(c != p);
    parent_[c] = p;
    size_[p] += size_[c] - 1;
  }

  Vertex group_size(Vertex b) { return size_[find(b)]; }

 private:
  std::vector<Vertex> parent_;
  std::vector<Vertex> size_;
};

/// DFS frame over the bipartite block-cut tree; iterates the blocks
/// reachable through each articulation point of `block`. `via_ap` is the
/// AP this block was entered through: its other blocks are siblings (they
/// hang off the parent), so the child must not iterate it.
struct BlockFrame {
  Vertex block;
  Vertex parent;       // parent block (kInvalidVertex for the top block)
  Vertex via_ap;       // AP index used to enter this block, or kInvalidVertex
  std::size_t ap_i;    // index into block_aps[block]
  std::size_t blk_i;   // index into ap_blocks[current ap]
};

/// Paper Algorithm 1 lines 5-25: DFS from the top block, merging small
/// groups into their DFS parent on post-order exit.
void merge_blocks(const BlockCutTree& tree, Vertex top, Vertex threshold,
                  std::vector<bool>& visited, BlockGroups& groups) {
  std::vector<BlockFrame> stack;
  visited[top] = true;
  stack.push_back(BlockFrame{top, kInvalidVertex, kInvalidVertex, 0, 0});

  while (!stack.empty()) {
    BlockFrame& frame = stack.back();
    const auto& aps = tree.block_aps[frame.block];
    bool descended = false;
    while (frame.ap_i < aps.size()) {
      if (aps[frame.ap_i] == frame.via_ap) {
        // Entered through this AP: its other blocks are this block's
        // siblings, owned by the parent.
        ++frame.ap_i;
        frame.blk_i = 0;
        continue;
      }
      const auto& siblings = tree.ap_blocks[aps[frame.ap_i]];
      if (frame.blk_i < siblings.size()) {
        const Vertex next = siblings[frame.blk_i++];
        if (!visited[next]) {
          visited[next] = true;
          stack.push_back(BlockFrame{next, frame.block, aps[frame.ap_i], 0, 0});
          descended = true;
          break;
        }
      } else {
        ++frame.ap_i;
        frame.blk_i = 0;
      }
    }
    if (descended) continue;

    const BlockFrame done = stack.back();
    stack.pop_back();
    if (done.parent == kInvalidVertex) continue;
    const Vertex my_size = groups.group_size(done.block);
    if (done.parent != top && my_size < threshold) {
      groups.merge(done.block, done.parent);
    } else if (done.parent == top && my_size <= 2) {
      groups.merge(done.block, done.parent);
    }
  }
}

/// Pendant classification (paper BUILDSUBGRAPH): directed pendants have no
/// in-arcs and a single out-arc; undirected pendants have degree one with
/// the lower-id endpoint kept as root when two pendants face each other
/// (the K2 component case).
bool is_removed_pendant(const CsrGraph& g, Vertex v) {
  if (g.directed()) {
    return g.in_degree(v) == 0 && g.out_degree(v) == 1;
  }
  if (g.out_degree(v) != 1) return false;
  const Vertex host = g.out_neighbors(v)[0];
  if (g.out_degree(host) == 1) return host < v;  // K2: keep the lower id
  return true;
}

Vertex pendant_host(const CsrGraph& g, Vertex v) { return g.out_neighbors(v)[0]; }

}  // namespace

Decomposition::WorkModel Decomposition::work_model(EdgeId total_arcs) const {
  WorkModel model;
  model.brandes =
      static_cast<double>(num_vertices) * static_cast<double>(total_arcs);
  double all_sources = 0.0;  // sum |V_i| * arcs_i (partial elimination only)
  for (const Subgraph& sg : subgraphs) {
    const double arcs = static_cast<double>(sg.num_arcs());
    all_sources += static_cast<double>(sg.num_vertices()) * arcs;
    model.apgre += static_cast<double>(sg.roots.size()) * arcs;
  }
  if (model.brandes > 0.0) {
    model.partial_redundancy = 1.0 - all_sources / model.brandes;
    model.total_redundancy = (all_sources - model.apgre) / model.brandes;
  }
  return model;
}

Decomposition decompose(const CsrGraph& g, const PartitionOptions& opts) {
  // Lets callers (and the Solver-reuse tests) observe how often the
  // expensive decomposition actually runs.
  metrics().counter("bcc.decompositions").add(1);
  BiconnectedComponents bcc;
  {
    APGRE_TRACE_SPAN("bcc/decompose");
    bcc = use_parallel_decomposition(opts.parallel_decomposition, g)
              ? parallel_biconnected_components(g)
              : biconnected_components(g);
  }
  const BlockCutTree tree = block_cut_tree(bcc, g.num_vertices());

  Decomposition dec;
  dec.num_vertices = g.num_vertices();
  dec.num_blocks = bcc.num_components;
  dec.num_articulation_points = tree.num_aps();

  // --- Group blocks (Algorithm 1). One DFS per connected component of the
  // block-cut tree, rooted at the component's largest block.
  BlockGroups groups(bcc);
  {
    std::vector<bool> comp_seen(bcc.num_components, false);
    std::vector<bool> merged(bcc.num_components, false);
    std::vector<Vertex> comp_blocks;
    for (Vertex b = 0; b < bcc.num_components; ++b) {
      if (comp_seen[b]) continue;
      // BFS to enumerate the blocks of this component and find its top.
      comp_blocks.assign(1, b);
      comp_seen[b] = true;
      Vertex top = b;
      for (std::size_t head = 0; head < comp_blocks.size(); ++head) {
        const Vertex cur = comp_blocks[head];
        if (bcc.component_vertices[cur].size() >
            bcc.component_vertices[top].size()) {
          top = cur;
        }
        for (Vertex ap : tree.block_aps[cur]) {
          for (Vertex next : tree.ap_blocks[ap]) {
            if (!comp_seen[next]) {
              comp_seen[next] = true;
              comp_blocks.push_back(next);
            }
          }
        }
      }
      merge_blocks(tree, top, opts.merge_threshold, merged, groups);
    }
  }

  // --- Materialise one Subgraph per group.
  std::vector<Vertex> group_subgraph(bcc.num_components, kInvalidVertex);
  std::vector<std::vector<Vertex>> group_blocks;
  for (Vertex b = 0; b < bcc.num_components; ++b) {
    const Vertex root = groups.find(b);
    if (group_subgraph[root] == kInvalidVertex) {
      group_subgraph[root] = static_cast<Vertex>(group_blocks.size());
      group_blocks.emplace_back();
    }
    group_blocks[group_subgraph[root]].push_back(b);
  }
  const auto num_subgraphs = static_cast<Vertex>(group_blocks.size());

  // Boundary articulation points: APs whose blocks span several groups.
  // boundary_groups_of_ap[a] lists each group in which a is a boundary AP.
  std::vector<std::vector<Vertex>> ap_groups(tree.num_aps());
  for (Vertex a = 0; a < tree.num_aps(); ++a) {
    auto& gs = ap_groups[a];
    for (Vertex block : tree.ap_blocks[a]) {
      gs.push_back(group_subgraph[groups.find(block)]);
    }
    std::sort(gs.begin(), gs.end());
    gs.erase(std::unique(gs.begin(), gs.end()), gs.end());
    if (gs.size() < 2) gs.clear();  // interior to one group: not a boundary AP
  }

  dec.subgraphs.resize(num_subgraphs);
  std::vector<Vertex> global_to_local(g.num_vertices(), kInvalidVertex);

  for (Vertex sgi = 0; sgi < num_subgraphs; ++sgi) {
    Subgraph& sg = dec.subgraphs[sgi];

    // Vertex set: union of the member blocks' vertices.
    for (Vertex block : group_blocks[sgi]) {
      for (Vertex v : bcc.component_vertices[block]) {
        if (global_to_local[v] == kInvalidVertex) {
          global_to_local[v] = 0;  // provisional mark
          sg.to_global.push_back(v);
        }
      }
    }
    std::sort(sg.to_global.begin(), sg.to_global.end());
    for (std::size_t i = 0; i < sg.to_global.size(); ++i) {
      global_to_local[sg.to_global[i]] = static_cast<Vertex>(i);
    }
    const auto local_n = static_cast<Vertex>(sg.to_global.size());

    // Arc set: the original directed arcs over the member blocks' edges.
    EdgeList arcs;
    for (Vertex block : group_blocks[sgi]) {
      for (const Edge& e : bcc.component_edges[block]) {
        const Vertex lu = global_to_local[e.src];
        const Vertex lv = global_to_local[e.dst];
        if (!g.directed()) {
          arcs.push_back(Edge{lu, lv});
          arcs.push_back(Edge{lv, lu});
          continue;
        }
        const auto out_u = g.out_neighbors(e.src);
        if (std::binary_search(out_u.begin(), out_u.end(), e.dst)) {
          arcs.push_back(Edge{lu, lv});
        }
        const auto out_v = g.out_neighbors(e.dst);
        if (std::binary_search(out_v.begin(), out_v.end(), e.src)) {
          arcs.push_back(Edge{lv, lu});
        }
      }
    }
    sg.graph = CsrGraph::from_edges(local_n, std::move(arcs), g.directed());

    // Boundary APs.
    sg.is_boundary_ap.assign(local_n, 0);
    for (Vertex local = 0; local < local_n; ++local) {
      const Vertex ap = tree.ap_index[sg.to_global[local]];
      if (ap == kInvalidVertex) continue;
      const auto& gs = ap_groups[ap];
      if (std::binary_search(gs.begin(), gs.end(), sgi)) {
        sg.is_boundary_ap[local] = 1;
        sg.boundary_aps.push_back(local);
      }
    }

    // Gamma / root set.
    sg.gamma.assign(local_n, 0);
    sg.removed.assign(local_n, 0);
    if (opts.total_redundancy) {
      for (Vertex local = 0; local < local_n; ++local) {
        const Vertex global = sg.to_global[local];
        if (!is_removed_pendant(g, global)) continue;
        const Vertex host = pendant_host(g, global);
        const Vertex host_local = global_to_local[host];
        APGRE_ASSERT_MSG(host_local != kInvalidVertex,
                         "pendant host must share the sub-graph");
        sg.removed[local] = 1;
        ++sg.gamma[host_local];
        ++dec.num_pendants_removed;
      }
    }
    for (Vertex local = 0; local < local_n; ++local) {
      if (!sg.removed[local]) sg.roots.push_back(local);
    }

    sg.alpha.assign(local_n, 0);
    sg.beta.assign(local_n, 0);

    // Reset the scratch map for the next sub-graph.
    for (Vertex v : sg.to_global) global_to_local[v] = kInvalidVertex;
  }

  // Top sub-graph: largest by arc count (ties: vertex count).
  for (std::size_t i = 0; i < dec.subgraphs.size(); ++i) {
    const Subgraph& sg = dec.subgraphs[i];
    const Subgraph& best = dec.subgraphs[dec.top_subgraph];
    if (sg.num_arcs() > best.num_arcs() ||
        (sg.num_arcs() == best.num_arcs() &&
         sg.num_vertices() > best.num_vertices())) {
      dec.top_subgraph = i;
    }
  }

  if (opts.compute_reach) compute_reach_counts(g, dec, opts.reach);

  APGRE_LOG(kDebug) << "decompose: " << dec.subgraphs.size() << " subgraphs, "
                    << dec.num_articulation_points << " APs, "
                    << dec.num_pendants_removed << " pendants removed";
  return dec;
}

void inject_pendant_weights(Decomposition& dec,
                            const std::vector<Vertex>& multiplicity) {
  APGRE_ASSERT_MSG(multiplicity.size() == dec.num_vertices,
                   "pendant multiplicities must cover the decomposed graph");
  // A vertex can sit in several sub-graphs (boundary AP); home the phantom
  // pendants in the first one encountered, mirroring how a real pendant
  // block lands in exactly one group.
  std::vector<std::uint8_t> homed(multiplicity.size(), 0);
  for (Subgraph& sg : dec.subgraphs) {
    for (Vertex local = 0; local < sg.num_vertices(); ++local) {
      const Vertex global = sg.to_global[local];
      const Vertex m = multiplicity[global];
      if (m == 0 || homed[global]) continue;
      homed[global] = 1;
      if (sg.pendant_weight.empty()) sg.pendant_weight.assign(sg.num_vertices(), 0.0);
      sg.pendant_weight[local] = static_cast<double>(m);
      sg.gamma[local] += m;
      dec.num_pendants_removed += m;
    }
  }
}

}  // namespace apgre
