// Structural validation of a Decomposition against its source graph.
//
// Downstream code that builds custom partitions (or loads them) can verify
// every invariant the APGRE kernel relies on before trusting BC output.
// The checks mirror paper §3.1 properties 1-4 plus the BUILDSUBGRAPH
// bookkeeping; the test suite runs them across the random-graph sweeps.
#pragma once

#include <string>
#include <vector>

#include "bcc/partition.hpp"
#include "graph/csr.hpp"

namespace apgre {

/// Human-readable list of violated invariants; empty means valid.
/// Checks:
///  1. every arc of `g` is assigned to exactly one sub-graph,
///  2. vertices shared between sub-graphs are boundary APs everywhere,
///  3. root sets partition sub-graph vertices with gamma accounting,
///  4. alpha/beta are consistent with restricted reachability
///     (sampled: up to `reach_samples` boundary APs re-checked by BFS),
///  5. for undirected graphs, per sub-graph: sum(alpha) + |V_sgi| equals
///     the component size.
std::vector<std::string> validate_decomposition(const CsrGraph& g,
                                                const Decomposition& dec,
                                                std::size_t reach_samples = 16);

/// Convenience wrapper: throws apgre::Error listing the violations.
void require_valid_decomposition(const CsrGraph& g, const Decomposition& dec);

}  // namespace apgre
