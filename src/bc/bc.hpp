// Public entry point of the APGRE betweenness-centrality library.
//
// One-shot:
//   #include "bc/bc.hpp"
//   apgre::BcResult r = apgre::betweenness(graph);            // APGRE
//   apgre::BcOptions o; o.algorithm = apgre::Algorithm::kBrandesSerial;
//   apgre::BcResult serial = apgre::betweenness(graph, o);    // baseline
//
// Session-style (amortises the BCC decomposition across solves):
//   apgre::Solver solver(graph);
//   apgre::BcResult a = solver.solve();            // decomposes + scores
//   apgre::BcResult b = solver.solve(other_opts);  // reuses the decomposition
//
// betweenness() and Solver::solve() never throw on invalid options — they
// report through BcResult::status. Malformed *input* (unreadable files,
// inconsistent graphs) still throws apgre::Error at the call site that
// touches the input.
//
// Scores follow the directed-BC convention: BC(v) = sum over ordered pairs
// (s, t), s != v != t, of sigma_st(v) / sigma_st. For symmetric
// (undirected) graphs each unordered pair is therefore counted twice; set
// BcOptions::undirected_halving to report the conventional undirected
// score. All algorithms in the family produce identical scores (up to
// floating-point accumulation order); they differ only in strategy, which
// is exactly what the paper's evaluation compares.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bc/apgre.hpp"
#include "bcc/partition.hpp"
#include "graph/csr.hpp"
#include "graph/transform.hpp"
#include "graph/update.hpp"
#include "support/error.hpp"

namespace apgre {

/// The algorithm family of the paper's evaluation (§5.1) plus the naive
/// reference and the sampling extension.
enum class Algorithm {
  kNaive,         ///< O(|V|^3) definition-based oracle (tests only)
  kBrandesSerial, ///< Brandes 2001; the paper's `serial` baseline
  kParallelPreds, ///< level-synchronous, predecessor lists (Bader-Madduri)
  kParallelSuccs, ///< level-synchronous, successor scans (Madduri et al.)
  kLockFree,      ///< pull-based level-synchronous, no atomics (Tan et al.)
  kCoarse,        ///< source-parallel, per-thread buffers (`async` stand-in)
  kHybrid,        ///< direction-optimising BFS (Beamer; Ligra's hybrid)
  kApgre,         ///< the paper's contribution
  kAlgebraic,     ///< 64-wide batched Brandes (Buluc-Gilbert style)
  kSampling,      ///< Brandes-Pich source sampling (approximate)
};

struct BcOptions;
struct BcResult;

/// One row of the algorithm registry: the single source of truth tying an
/// Algorithm value to its names, kernel entry point, and capability flags.
/// algorithm_from_name / algorithm_name / betweenness dispatch, the CLI
/// help text, the oracle's exact set, and the benches' comparison set are
/// all derived from this table — adding an algorithm means adding one row.
struct AlgorithmInfo {
  Algorithm algorithm = Algorithm::kApgre;
  const char* name = nullptr;     ///< canonical name ("apgre", "serial", ...)
  const char* alias = nullptr;    ///< accepted alternative name, or nullptr
  const char* summary = nullptr;  ///< one-line description for --help output
  /// Kernel entry point. May fill result fields beyond scores (kApgre
  /// writes apgre_stats); the dispatcher owns timing / halving / mteps.
  std::vector<double> (*kernel)(const CsrGraph& g, const BcOptions& opts,
                                BcResult& result) = nullptr;
  bool exact = true;       ///< scores match Brandes exactly (oracle set)
  bool parallel = false;   ///< uses the thread budget
  bool comparison = false; ///< member of the paper's Tables 2/3 set
  bool test_only = false;  ///< reference oracle, excluded from benches
};

/// Every registered algorithm, in enum order.
std::span<const AlgorithmInfo> algorithm_registry();

/// Registry row for `algorithm` (throws OptionError on values outside the
/// registry, e.g. a cast from a corrupted int).
const AlgorithmInfo& algorithm_info(Algorithm algorithm);

/// Parse / print algorithm names from the registry ("apgre", "serial",
/// "preds", "succs", "lockfree", "coarse"/"async", "hybrid", "naive",
/// "algebraic"/"batched", "sampling"). Parsing throws OptionError on
/// unknown names.
Algorithm algorithm_from_name(const std::string& name);
std::string algorithm_name(Algorithm algorithm);

struct BcOptions {
  Algorithm algorithm = Algorithm::kApgre;
  /// Thread budget; 0 keeps the runtime default.
  int threads = 0;
  /// Halve the scores of symmetric graphs (conventional undirected BC).
  bool undirected_halving = false;
  /// APGRE tuning (ignored by other algorithms).
  ApgreOptions apgre;
  /// Work-stealing scheduler knobs for APGRE's scoring phase
  /// (support/sched/scheduler.hpp; ignored by other algorithms).
  SchedulerOptions scheduler;
  /// kSampling: number of sampled sources (0 = sqrt(|V|)) and seed.
  Vertex num_samples = 0;
  std::uint64_t seed = 1;
};

/// Check `opts` for inconsistencies without running anything. The same
/// validation runs at the top of betweenness() / Solver::solve(), which
/// report it through BcResult::status instead of throwing.
Status validate_options(const BcOptions& opts);

struct BcResult {
  /// Why the run produced no scores; ok() on success. Invalid options are
  /// reported here (never thrown).
  Status status;
  std::vector<double> scores;
  /// Filled when algorithm == kApgre (phase breakdown, decomposition info).
  ApgreStats apgre_stats;
  /// Wall time of the scoring computation in seconds.
  double seconds = 0.0;
  /// Paper §5.1 traversal-rate metric: TEPS_BC = n * m / t, reported in
  /// millions (m counts stored arcs).
  double mteps = 0.0;
};

/// Session-style interface over one graph. The first APGRE solve computes
/// the BCC decomposition plus the alpha/beta/gamma reach counts and caches
/// them; later solves whose PartitionOptions match reuse the cache and only
/// re-run the scoring phase (their stats report zero partition / reach
/// seconds). Changing PartitionOptions re-decomposes. Non-APGRE algorithms
/// pass straight through. Not thread-safe; one Solver per thread.
class Solver {
 public:
  /// `g` is referenced, not copied — it must outlive the Solver.
  explicit Solver(const CsrGraph& g) : g_(&g) {}

  /// Compute BC. Identical scores to betweenness(g, opts) — byte-for-byte,
  /// cache hit or miss (the scoring phase is deterministic given the
  /// decomposition, and the decomposition is deterministic given options).
  BcResult solve(const BcOptions& opts = {});

  const CsrGraph& graph() const { return *g_; }

  /// The cached decomposition, or nullptr before the first APGRE solve.
  /// The pointer is stable across cache-hit solves (tests key on this).
  /// With PartitionOptions::peel_two_core the decomposition covers the
  /// core-only reduction — anchors carrying their peeled subtrees as
  /// derived pendant multiplicities — not the full graph (same vertex-id
  /// space).
  const Decomposition* decomposition() const { return dec_.get(); }

  /// The cached 2-core peel, or nullptr when peeling is off / not solved
  /// yet. Shared so the service can hand one snapshot-wide peel to every
  /// warm session (adopt_peel).
  std::shared_ptr<const PeelResult> peel() const { return peel_; }

  /// Inject a precomputed peel of the *current* graph (the service stores
  /// one per snapshot so warm sessions skip re-peeling). Adopting the
  /// pointer already held is a no-op; a different one invalidates the
  /// cached decomposition, which was built on a different reduction.
  void adopt_peel(std::shared_ptr<const PeelResult> peel);

  /// Point the session at a different graph snapshot (the service layer
  /// calls this after a structural dynamic update). Drops the cached
  /// decomposition: the next APGRE solve re-decomposes. `g` must outlive
  /// the Solver, like the constructor argument.
  void rebind(const CsrGraph& g);

  /// Rebind to `g`, which must equal the previous graph plus exactly one
  /// undirected edge {u, v} (global ids) classified kLocalInsert by
  /// BlockCutQueries::classify_update on the previous graph — an insert
  /// strictly inside one biconnected component between two
  /// non-articulation vertices, symmetric graphs only. Such a chord leaves
  /// the block-cut tree, every other sub-graph, and all alpha/beta/gamma
  /// reach counts unchanged, so the cached decomposition is patched in
  /// place (only the affected sub-graph's induced arcs are rebuilt) and
  /// the next solve skips re-decomposition. Falls back to rebind() when
  /// nothing is cached. Violating the precondition silently corrupts
  /// later APGRE scores — callers must classify first.
  void rebind_local_insert(const CsrGraph& g, Vertex u, Vertex v);

  /// Opt in to the per-sub-graph contribution store. The next APGRE solve
  /// additionally records each sub-graph's local score vector (serial
  /// kernel, so contributions are deterministic) and their scatter-sum over
  /// `to_global` — which equals the APGRE scores, since sub-graphs compose
  /// additively. While the store is valid, repeat APGRE solves with the
  /// same partition options serve the cached scores without re-scoring
  /// (counter "bc.solver.score_reuses"), and apply_local_update() can
  /// re-score a single block in place. Tracked scores match the untracked
  /// scoring phase up to floating-point accumulation order.
  void enable_contribution_tracking();

  /// The store's unhalved full-graph APGRE scores, or nullptr while no
  /// valid store exists (tracking disabled, no APGRE solve yet, or
  /// invalidated by rebind / changed partition options). When the session
  /// peels, these are already re-expanded to full-graph scores (the
  /// closed-form corrections are constant under local updates, so the
  /// per-block subtract/re-add arithmetic preserves them).
  const std::vector<double>* tracked_scores() const {
    return store_valid_ ? &tracked_scores_ : nullptr;
  }

  /// Localized dynamic update (iCentral-style): `g` must equal the previous
  /// graph with exactly the undirected edge {u, v} inserted (inserting) or
  /// removed, and the update must have been classified kLocalInsert /
  /// kLocalDelete against the previous graph — so the block-cut tree, the
  /// grouping, and every reach count survive by construction. Subtracts the
  /// affected sub-graph's old contribution from the tracked scores, rebuilds
  /// only that sub-graph's induced arcs, re-scores it with the serial
  /// kernel, and adds the new contribution back (counter
  /// "bc.solver.local_recomputes"). Returns true on the localized path;
  /// falls back to a plain rebind() — full re-decomposition on the next
  /// solve — and returns false when no valid store exists, or when a
  /// peeled session sees an update incident to a peeled-forest vertex
  /// (the peel analysis is invalidated; classify_update routes such
  /// updates kStructural anyway, so this guard is defence in depth).
  /// Violating the locality precondition silently corrupts later scores —
  /// classify first.
  bool apply_local_update(const CsrGraph& g, Vertex u, Vertex v,
                          bool inserting);

  /// Batched localized update: `g` must equal the previous graph with every
  /// op in `ops` applied (coalesced — at most one op per edge) and the
  /// batch must have been classified local as a whole
  /// (BlockCutQueries::classify_batch) against the previous graph. Groups
  /// the ops by cached sub-graph and re-scores each affected sub-graph
  /// exactly once, however many ops landed in it — the contribution
  /// subtract / splice-all / re-score / add-back cycle runs per *block*,
  /// not per edge, which is the batch ingest win. Returns the number of
  /// sub-graphs re-scored (>= 1 on the localized path; "blocks_resolved" in
  /// the service's batch stats, one "bc.solver.local_recomputes" tick
  /// each). Returns 0 after falling back to a plain rebind() under the same
  /// conditions as apply_local_update — no valid store, peeled-forest
  /// endpoints, or endpoints outside every cached sub-graph. Violating the
  /// locality precondition silently corrupts later scores — classify first.
  std::size_t apply_local_batch(const CsrGraph& g,
                                const std::vector<EdgeOp>& ops);

 private:
  void build_store();
  void refresh_top_subgraph();

  const CsrGraph* g_;
  std::unique_ptr<Decomposition> dec_;
  PartitionOptions dec_key_;
  // 2-core peel state (dec_key_.peel_two_core): the peel of the current
  // graph and the flat reduction the decomposition was built on. reduced_
  // is null when peeling is off, bypassed (directed), or removed nothing —
  // scoring then runs on *g_ directly.
  std::shared_ptr<const PeelResult> peel_;
  std::unique_ptr<CsrGraph> reduced_;
  // Contribution store (enable_contribution_tracking): per-sub-graph local
  // score vectors and their scatter-sum. Invariant while store_valid_:
  // tracked_scores_[w] == sum over sub-graphs i containing w of
  // contrib_[i][local id of w], computed on the *current* sub-graph arcs —
  // plus, when the session peels, the constant closed-form expansion
  // (corrections at anchors, overwritten scores at peeled vertices, whose
  // per-block contributions are exactly zero).
  bool track_ = false;
  bool store_valid_ = false;
  std::vector<std::vector<double>> contrib_;
  std::vector<double> tracked_scores_;
};

/// One-shot betweenness centrality: a thin wrapper constructing a Solver
/// for a single solve.
BcResult betweenness(const CsrGraph& g, const BcOptions& opts = {});

}  // namespace apgre
