// Public entry point of the APGRE betweenness-centrality library.
//
//   #include "bc/bc.hpp"
//   apgre::BcResult r = apgre::betweenness(graph);            // APGRE
//   apgre::BcOptions o; o.algorithm = apgre::Algorithm::kBrandesSerial;
//   apgre::BcResult serial = apgre::betweenness(graph, o);    // baseline
//
// Scores follow the directed-BC convention: BC(v) = sum over ordered pairs
// (s, t), s != v != t, of sigma_st(v) / sigma_st. For symmetric
// (undirected) graphs each unordered pair is therefore counted twice; set
// BcOptions::undirected_halving to report the conventional undirected
// score. All algorithms in the family produce identical scores (up to
// floating-point accumulation order); they differ only in strategy, which
// is exactly what the paper's evaluation compares.
#pragma once

#include <string>
#include <vector>

#include "bc/apgre.hpp"
#include "bcc/partition.hpp"
#include "graph/csr.hpp"

namespace apgre {

/// The algorithm family of the paper's evaluation (§5.1) plus the naive
/// reference and the sampling extension.
enum class Algorithm {
  kNaive,         ///< O(|V|^3) definition-based oracle (tests only)
  kBrandesSerial, ///< Brandes 2001; the paper's `serial` baseline
  kParallelPreds, ///< level-synchronous, predecessor lists (Bader-Madduri)
  kParallelSuccs, ///< level-synchronous, successor scans (Madduri et al.)
  kLockFree,      ///< pull-based level-synchronous, no atomics (Tan et al.)
  kCoarse,        ///< source-parallel, per-thread buffers (`async` stand-in)
  kHybrid,        ///< direction-optimising BFS (Beamer; Ligra's hybrid)
  kApgre,         ///< the paper's contribution
  kAlgebraic,     ///< 64-wide batched Brandes (Buluc-Gilbert style)
  kSampling,      ///< Brandes-Pich source sampling (approximate)
};

/// Parse / print algorithm names used by benches and examples
/// ("apgre", "serial", "preds", "succs", "lockfree", "coarse", "hybrid",
/// "naive", "sampling").
Algorithm algorithm_from_name(const std::string& name);
std::string algorithm_name(Algorithm algorithm);

struct BcOptions {
  Algorithm algorithm = Algorithm::kApgre;
  /// Thread budget; 0 keeps the runtime default.
  int threads = 0;
  /// Halve the scores of symmetric graphs (conventional undirected BC).
  bool undirected_halving = false;
  /// APGRE tuning (ignored by other algorithms).
  ApgreOptions apgre;
  /// kSampling: number of sampled sources (0 = sqrt(|V|)) and seed.
  Vertex num_samples = 0;
  std::uint64_t seed = 1;
};

struct BcResult {
  std::vector<double> scores;
  /// Filled when algorithm == kApgre (phase breakdown, decomposition info).
  ApgreStats apgre_stats;
  /// Wall time of the scoring computation in seconds.
  double seconds = 0.0;
  /// Paper §5.1 traversal-rate metric: TEPS_BC = n * m / t, reported in
  /// millions (m counts stored arcs).
  double mteps = 0.0;
};

/// Compute betweenness centrality with the selected algorithm.
BcResult betweenness(const CsrGraph& g, const BcOptions& opts = {});

}  // namespace apgre
