// Fine-grained level-synchronous parallel BC using successor scans instead
// of predecessor lists — Madduri, Ediger, Jiang, Bader, Chavarria-Miranda,
// IPDPS 2009 (the paper's `succs` baseline). The backward phase pulls each
// vertex's dependency from its successors, so each delta cell is written by
// exactly one thread and the phase-2 locks/atomics of `preds` disappear.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace apgre {

std::vector<double> parallel_succs_bc(const CsrGraph& g);

}  // namespace apgre
