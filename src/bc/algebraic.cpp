#include "bc/algebraic.hpp"

#include <cstdint>
#include <cstring>

#include "support/error.hpp"

namespace apgre {

namespace {

constexpr int kLanes = 64;

/// Batched per-source state, lane-major per vertex: slot(v, lane) at
/// v * kLanes + lane, so one vertex's 64 lanes share cache lines.
struct Batch {
  std::vector<std::int16_t> dist;
  std::vector<double> sigma;
  std::vector<double> delta;
  std::vector<std::uint64_t> visited;   // lane bitmask per vertex
  // (vertex, lanes-discovered-at-this-level) per BFS level.
  std::vector<std::vector<std::pair<Vertex, std::uint64_t>>> levels;

  explicit Batch(Vertex n)
      : dist(static_cast<std::size_t>(n) * kLanes, -1),
        sigma(static_cast<std::size_t>(n) * kLanes, 0.0),
        delta(static_cast<std::size_t>(n) * kLanes, 0.0),
        visited(n, 0) {}

  void reset() {
    for (const auto& level : levels) {
      for (const auto& [v, lanes] : level) {
        const std::size_t base = static_cast<std::size_t>(v) * kLanes;
        std::uint64_t m = lanes;
        while (m != 0) {
          const int lane = __builtin_ctzll(m);
          m &= m - 1;
          dist[base + lane] = -1;
          sigma[base + lane] = 0.0;
          delta[base + lane] = 0.0;
        }
        visited[v] = 0;
      }
    }
    levels.clear();
  }
};

}  // namespace

std::vector<double> algebraic_bc(const CsrGraph& g) {
  const Vertex n = g.num_vertices();
  std::vector<double> bc(n, 0.0);
  if (n == 0) return bc;
  Batch batch(n);

  for (Vertex batch_start = 0; batch_start < n; batch_start += kLanes) {
    const int width = static_cast<int>(
        std::min<Vertex>(kLanes, n - batch_start));

    // Seed: lane `l` runs the BFS from source batch_start + l.
    auto& level0 = batch.levels.emplace_back();
    for (int lane = 0; lane < width; ++lane) {
      const Vertex s = batch_start + static_cast<Vertex>(lane);
      batch.dist[static_cast<std::size_t>(s) * kLanes + lane] = 0;
      batch.sigma[static_cast<std::size_t>(s) * kLanes + lane] = 1.0;
      batch.visited[s] |= std::uint64_t{1} << lane;
      level0.emplace_back(s, std::uint64_t{1} << lane);
    }
    // Lanes seeded on the same vertex never happen (sources are distinct),
    // but multiple entries of level0 may share... they do not: one per s.

    // Forward: per level, first discover (masked frontier expansion), then
    // accumulate sigma along all (frontier -> next) lane pairs.
    for (std::int16_t depth = 0; !batch.levels.back().empty(); ++depth) {
      APGRE_REQUIRE(depth < 32000, "graph diameter exceeds the int16 level range");
      const auto frontier = batch.levels.back();  // copy: levels vector grows
      auto& next = batch.levels.emplace_back();
      // Discovery pass.
      for (const auto& [v, lanes] : frontier) {
        for (Vertex w : g.out_neighbors(v)) {
          const std::uint64_t fresh = lanes & ~batch.visited[w];
          if (fresh == 0) continue;
          if ((batch.visited[w] | fresh) != batch.visited[w]) {
            // First discovery of these lanes at w this level.
            bool already_queued = false;
            if (!next.empty() && next.back().first == w) {
              next.back().second |= fresh;
              already_queued = true;
            }
            if (!already_queued) {
              // Linear tail check keeps duplicates out cheaply only when
              // consecutive; use the dist value as the real guard below.
              next.emplace_back(w, fresh);
            }
            batch.visited[w] |= fresh;
            const std::size_t base = static_cast<std::size_t>(w) * kLanes;
            std::uint64_t m = fresh;
            while (m != 0) {
              const int lane = __builtin_ctzll(m);
              m &= m - 1;
              batch.dist[base + lane] = static_cast<std::int16_t>(depth + 1);
            }
          }
        }
      }
      // Merge duplicate next entries (a vertex discovered from several
      // frontier vertices appears multiple times with disjoint fresh sets
      // only for its first discoverer; later ones were filtered by
      // `visited`, so duplicates carry no lanes — drop empties).
      // Sigma accumulation pass over every DAG arc of this level.
      for (const auto& [v, lanes] : frontier) {
        const std::size_t vbase = static_cast<std::size_t>(v) * kLanes;
        for (Vertex w : g.out_neighbors(v)) {
          const std::size_t wbase = static_cast<std::size_t>(w) * kLanes;
          std::uint64_t m = lanes;
          while (m != 0) {
            const int lane = __builtin_ctzll(m);
            m &= m - 1;
            if (batch.dist[wbase + lane] == depth + 1) {
              batch.sigma[wbase + lane] += batch.sigma[vbase + lane];
            }
          }
        }
      }
      if (next.empty()) break;
    }

    // Backward: levels deepest-first; each (v, lanes) pulls from the lanes'
    // successors exactly as the scalar kernel does.
    for (std::size_t lvl = batch.levels.size(); lvl-- > 0;) {
      for (const auto& [v, lanes] : batch.levels[lvl]) {
        const std::size_t vbase = static_cast<std::size_t>(v) * kLanes;
        for (Vertex w : g.out_neighbors(v)) {
          const std::size_t wbase = static_cast<std::size_t>(w) * kLanes;
          std::uint64_t m = lanes;
          while (m != 0) {
            const int lane = __builtin_ctzll(m);
            m &= m - 1;
            if (batch.dist[wbase + lane] ==
                batch.dist[vbase + lane] + 1) {
              batch.delta[vbase + lane] += batch.sigma[vbase + lane] /
                                           batch.sigma[wbase + lane] *
                                           (1.0 + batch.delta[wbase + lane]);
            }
          }
        }
        // Contribute: skip each lane's own source (level 0 entries are the
        // sources themselves).
        if (lvl > 0) {
          std::uint64_t m = lanes;
          double sum = 0.0;
          while (m != 0) {
            const int lane = __builtin_ctzll(m);
            m &= m - 1;
            sum += batch.delta[vbase + lane];
          }
          bc[v] += sum;
        }
      }
    }
    batch.reset();
  }
  return bc;
}

}  // namespace apgre
