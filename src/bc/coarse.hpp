// Coarse-grained source-parallel BC: sources are distributed over threads
// with dynamic scheduling; every thread runs the serial Brandes kernel into
// a private score buffer, merged at the end. No barriers between sources —
// this is the shared-memory stand-in for the Galois-based asynchronous
// algorithm of Prountzos & Pingali, PPoPP 2013 (the paper's `async`
// column), whose defining property is the absence of level synchronisation
// across the per-source computations.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace apgre {

std::vector<double> coarse_bc(const CsrGraph& g);

}  // namespace apgre
