// The approximation-algorithm family the paper's related work surveys
// (§6): source-sampling estimators that trade exactness for running time.
//
//   * Brandes & Pich 2007 ("Centrality Estimation in Large Networks"):
//     extrapolate from k pivots; pivot selection strategies below.
//   * Bader, Kintali, Madduri & Mihail, WAW 2007 ("Approximating
//     Betweenness Centrality"): adaptive sampling for a single vertex —
//     stop sampling once the accumulated dependency crosses c*n.
//   * Geisberger, Sanders & Schultes, ALENEX 2008 ("Better Approximation
//     of Betweenness Centrality"): linear distance scaling, which removes
//     the systematic overestimation of vertices near pivots.
//
// These complement the exact algorithms: the paper positions APGRE as the
// exact-computation counterpart to this family (§5.2 compares against GPU
// sampling rates).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace apgre {

/// Pivot (sampled source) selection strategies for estimate_bc.
enum class PivotStrategy {
  kUniform,             ///< uniform without replacement (Brandes-Pich)
  kDegreeProportional,  ///< probability proportional to out-degree
  kMaxMin,              ///< greedy farthest-first traversal (max-min distance)
};

/// Pick `k` pivots from `g` with the given strategy (deterministic per
/// seed; k is clamped to |V|).
std::vector<Vertex> select_pivots(const CsrGraph& g, Vertex k,
                                  PivotStrategy strategy, std::uint64_t seed);

/// Brandes-Pich estimator from explicit pivots: every dependency is scaled
/// by |V| / k. With k == |V| this is exact BC.
std::vector<double> estimate_bc(const CsrGraph& g,
                                const std::vector<Vertex>& pivots);

/// Geisberger et al. linear-scaling estimator: the contribution of pair
/// (s, t) to v is weighted by dist(s,v)/dist(s,t), computed with the
/// scaled backward recursion
///   delta'(v) = sum_w sigma_v/sigma_w * d(s,v)/d(s,w) * (1 + delta'(w)).
/// The result is a *ranking* score (expected value != exact BC); it
/// under-weights far-from-pivot noise and empirically ranks better at
/// equal sample counts. With k == |V| it equals the deterministic
/// length-scaled betweenness (see tests for the closed form).
std::vector<double> estimate_bc_linear_scaled(const CsrGraph& g,
                                              const std::vector<Vertex>& pivots);

/// Bader et al. adaptive sampling for one vertex: sample sources until the
/// accumulated dependency on `v` exceeds `c * |V|` (or every vertex was
/// sampled). Returns the estimate and the number of samples consumed —
/// high-centrality vertices converge after very few samples.
struct AdaptiveEstimate {
  double score = 0.0;
  Vertex samples_used = 0;
};
AdaptiveEstimate adaptive_estimate_bc(const CsrGraph& g, Vertex v, double c,
                                      std::uint64_t seed);

}  // namespace apgre
