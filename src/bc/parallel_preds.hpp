// Fine-grained level-synchronous parallel BC with explicit predecessor
// lists — Bader & Madduri, ICPP 2006 (the paper's `preds` baseline, part of
// the SSCA v2.2 benchmark). Vertices of a BFS level are expanded in
// parallel; sigma and the backward dependency accumulation use atomic
// updates (the synchronisation cost the `succs` variant removes).
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace apgre {

std::vector<double> parallel_preds_bc(const CsrGraph& g);

}  // namespace apgre
