// Edge betweenness centrality — the metric behind Girvan-Newman community
// detection, which the paper's introduction cites as a driving application
// of BC (§1, community detection in social networks).
//
//   EBC(e) = sum over ordered pairs (s, t) of sigma_st(e) / sigma_st
//
// computed with the Brandes backward sweep: every shortest-path DAG arc
// (v, w) carries sigma_sv / sigma_sw * (1 + delta_s(w)) per source s.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace apgre {

/// Per-arc scores, parallel to the CSR out-arc array: the score of the
/// k-th out-neighbour of v lives at index g.out_offset(v) + k. For
/// symmetric graphs the conventional undirected edge score is the sum of
/// the two arc scores (each direction counted once).
std::vector<double> edge_betweenness_bc(const CsrGraph& g);

/// Score of arc (v, w); asserts the arc exists.
double arc_score(const CsrGraph& g, const std::vector<double>& scores, Vertex v,
                 Vertex w);

/// The `k` highest-scoring arcs, descending. For symmetric graphs each
/// undirected edge is reported once (as min(src,dst) -> max(src,dst)) with
/// the summed score of both arcs.
std::vector<std::pair<Edge, double>> top_edges(const CsrGraph& g,
                                               const std::vector<double>& scores,
                                               std::size_t k);

}  // namespace apgre
