#include "bc/coarse.hpp"

#include <memory>

#include "bc/brandes_kernel.hpp"
#include "support/parallel.hpp"

namespace apgre {

std::vector<double> coarse_bc(const CsrGraph& g) {
  const Vertex n = g.num_vertices();
  std::vector<double> bc(n, 0.0);

#pragma omp parallel
  {
    detail::BrandesScratch scratch(n);
    std::vector<double> local_bc(n, 0.0);
#pragma omp for schedule(dynamic, 16)
    for (std::int64_t s = 0; s < static_cast<std::int64_t>(n); ++s) {
      detail::brandes_iteration(g, static_cast<Vertex>(s), 1.0, scratch, local_bc);
    }
#pragma omp critical(apgre_coarse_merge)
    {
      for (Vertex v = 0; v < n; ++v) bc[v] += local_bc[v];
    }
  }
  return bc;
}

}  // namespace apgre
