#include "bc/coarse.hpp"

#include <memory>

#include "bc/brandes_kernel.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"

namespace apgre {

namespace {

/// Published through `region_ctx` so the parallel region captures no
/// enclosing locals (region-context idiom, support/parallel.hpp).
struct RegionCtx {
  const CsrGraph* g = nullptr;
  double* bc = nullptr;
  std::uint64_t* traversed_arcs = nullptr;
  double* forward_cpu_seconds = nullptr;
  double* backward_cpu_seconds = nullptr;
};

RegionCtx* region_ctx = nullptr;

}  // namespace

std::vector<double> coarse_bc(const CsrGraph& g) {
  // Region-context OpenMP kernel (support/parallel.hpp): not reentrant,
  // serialize whole invocations against concurrent caller threads.
  std::lock_guard<std::recursive_mutex> lock(legacy_omp_kernel_mutex());
  const Vertex n = g.num_vertices();
  std::vector<double> bc(n, 0.0);
  std::uint64_t traversed_arcs = 0;
  // Summed across threads, so these are CPU seconds, not wall time.
  double forward_cpu_seconds = 0.0;
  double backward_cpu_seconds = 0.0;

  RegionCtx ctx{&g, bc.data(), &traversed_arcs, &forward_cpu_seconds,
                &backward_cpu_seconds};
  region_ctx = &ctx;
  omp_fork_fence();
#pragma omp parallel
  {
    omp_worker_entry_fence();
    const RegionCtx& C = *region_ctx;
    const Vertex num = C.g->num_vertices();
    detail::BrandesScratch scratch(num);
    std::vector<double> local_bc(num, 0.0);
#pragma omp for schedule(dynamic, 16)
    for (std::int64_t s = 0; s < static_cast<std::int64_t>(num); ++s) {
      detail::brandes_iteration(*C.g, static_cast<Vertex>(s), 1.0, scratch,
                                local_bc);
    }
#pragma omp critical(apgre_coarse_merge)
    {
      omp_critical_entry_fence();
      for (Vertex v = 0; v < num; ++v) C.bc[v] += local_bc[v];
      *C.traversed_arcs += scratch.traversed_arcs;
      *C.forward_cpu_seconds += scratch.forward_seconds;
      *C.backward_cpu_seconds += scratch.backward_seconds;
      omp_critical_exit_fence();
    }
    omp_worker_exit_fence();
  }
  omp_join_fence();
  region_ctx = nullptr;

  MetricsRegistry& m = metrics();
  m.counter("bc.coarse.sources").add(n);
  m.counter("bc.coarse.traversed_arcs").add(traversed_arcs);
  m.gauge("bc.coarse.forward_cpu_seconds").set(forward_cpu_seconds);
  m.gauge("bc.coarse.backward_cpu_seconds").set(backward_cpu_seconds);
  return bc;
}

}  // namespace apgre
