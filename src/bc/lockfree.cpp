#include "bc/lockfree.hpp"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <span>

#include "bc/frontier.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/timer.hpp"

namespace apgre {

namespace {

constexpr std::int32_t kUnvisited = -1;

/// Per-thread split of the candidate list: vertices discovered this level
/// and vertices still unvisited, merged serially at the level barrier.
struct CandidateSplit {
  struct alignas(64) Local {
    std::vector<Vertex> discovered;
    std::vector<Vertex> remaining;
  };
  std::vector<Local> per_thread;

  CandidateSplit() : per_thread(static_cast<std::size_t>(num_threads())) {}

  Local& local() { return per_thread[static_cast<std::size_t>(thread_id())]; }
};

/// Everything the parallel regions touch, published through `region_ctx`
/// (region-context idiom, support/parallel.hpp) so the region bodies
/// capture no enclosing locals.
struct RegionCtx {
  const CsrGraph* g = nullptr;
  std::atomic<std::int32_t>* dist = nullptr;
  double* sigma = nullptr;
  double* delta = nullptr;
  double* bc = nullptr;
  CandidateSplit* split = nullptr;
  std::span<const Vertex> candidates;
  std::span<const Vertex> level;
  std::int32_t depth = 0;
  Vertex source = 0;
};

RegionCtx* region_ctx = nullptr;

}  // namespace

std::vector<double> lockfree_bc(const CsrGraph& g) {
  // Region-context OpenMP kernel (support/parallel.hpp): not reentrant,
  // serialize whole invocations against concurrent caller threads.
  std::lock_guard<std::recursive_mutex> lock(legacy_omp_kernel_mutex());
  const Vertex n = g.num_vertices();
  std::vector<double> bc(n, 0.0);

  // dist needs relaxed atomics: a pull scan reads dist of in-neighbours
  // that other threads may be discovering (writing depth+1) in the same
  // level. The read can only observe kUnvisited or depth+1 there — never
  // the depth it compares against — so any outcome is correct, but the
  // access itself must not be a plain-int race.
  std::vector<std::atomic<std::int32_t>> dist(n);
  for (Vertex v = 0; v < n; ++v) {
    dist[v].store(kUnvisited, std::memory_order_relaxed);
  }
  std::vector<double> sigma(n, 0.0);
  std::vector<double> delta(n, 0.0);
  LevelBuckets levels;
  CandidateSplit split;
  // Vertices not yet visited this source; shrinks after every level so the
  // pull scan narrows as the BFS progresses.
  std::vector<Vertex> candidates;

  std::uint64_t traversed_arcs = 0;
  double forward_seconds = 0.0;
  double backward_seconds = 0.0;
  Timer phase_timer;

  RegionCtx ctx;
  ctx.g = &g;
  ctx.dist = dist.data();
  ctx.sigma = sigma.data();
  ctx.delta = delta.data();
  ctx.bc = bc.data();
  ctx.split = &split;
  region_ctx = &ctx;

  for (Vertex s = 0; s < n; ++s) {
    dist[s].store(0, std::memory_order_relaxed);
    sigma[s] = 1.0;
    levels.push(s);
    levels.finish_level();
    ctx.source = s;

    candidates.resize(n);
    std::iota(candidates.begin(), candidates.end(), 0);
    candidates.erase(candidates.begin() + s);

    phase_timer.reset();
    for (std::int32_t depth = 0;
         !levels.level(static_cast<std::size_t>(depth)).empty(); ++depth) {
      // Pull phase: every candidate checks whether a level-`depth`
      // in-neighbour reaches it; each dist/sigma cell has a single writer,
      // so no locks or heavier-than-relaxed atomics are required.
      ctx.candidates = candidates;
      ctx.depth = depth;
      omp_fork_fence();
#pragma omp parallel
      {
        omp_worker_entry_fence();
        const RegionCtx& C = *region_ctx;
#pragma omp for schedule(static) nowait
        for (std::int64_t i = 0; i < static_cast<std::int64_t>(C.candidates.size()); ++i) {
          const Vertex v = C.candidates[static_cast<std::size_t>(i)];
          double paths = 0.0;
          for (Vertex u : C.g->in_neighbors(v)) {
            if (C.dist[u].load(std::memory_order_relaxed) == C.depth) {
              paths += C.sigma[u];
            }
          }
          if (paths > 0.0) {
            C.dist[v].store(C.depth + 1, std::memory_order_relaxed);
            C.sigma[v] = paths;
            C.split->local().discovered.push_back(v);
          } else {
            C.split->local().remaining.push_back(v);
          }
        }
        omp_worker_exit_fence();
      }
      omp_join_fence();
      candidates.clear();
      for (auto& local : split.per_thread) {
        levels.push_batch(local.discovered);
        candidates.insert(candidates.end(), local.remaining.begin(),
                          local.remaining.end());
        local.discovered.clear();
        local.remaining.clear();
      }
      levels.finish_level();
      if (levels.level(static_cast<std::size_t>(depth) + 1).empty()) break;
    }
    forward_seconds += phase_timer.seconds();

    // Backward successor pull (same maths as `succs`, also free of
    // synchronisation).
    phase_timer.reset();
    for (std::size_t lvl = levels.num_levels(); lvl-- > 0;) {
      ctx.level = levels.level(lvl);
      omp_fork_fence();
#pragma omp parallel
      {
        omp_worker_entry_fence();
        const RegionCtx& C = *region_ctx;
#pragma omp for schedule(dynamic, 64) nowait
        for (std::int64_t i = 0; i < static_cast<std::int64_t>(C.level.size()); ++i) {
          const Vertex v = C.level[static_cast<std::size_t>(i)];
          const auto dv = C.dist[v].load(std::memory_order_relaxed);
          double acc = 0.0;
          for (Vertex w : C.g->out_neighbors(v)) {
            if (C.dist[w].load(std::memory_order_relaxed) == dv + 1) {
              acc += C.sigma[v] / C.sigma[w] * (1.0 + C.delta[w]);
            }
          }
          C.delta[v] = acc;
          if (v != C.source) C.bc[v] += acc;
        }
        omp_worker_exit_fence();
      }
      omp_join_fence();
    }
    backward_seconds += phase_timer.seconds();

    for (Vertex v : levels.touched()) {
      traversed_arcs += g.out_degree(v);
      dist[v].store(kUnvisited, std::memory_order_relaxed);
      sigma[v] = 0.0;
      delta[v] = 0.0;
    }
    levels.clear();
  }
  region_ctx = nullptr;

  MetricsRegistry& m = metrics();
  m.counter("bc.lockfree.sources").add(n);
  m.counter("bc.lockfree.traversed_arcs").add(traversed_arcs);
  m.gauge("bc.lockfree.forward_seconds").set(forward_seconds);
  m.gauge("bc.lockfree.backward_seconds").set(backward_seconds);
  return bc;
}

}  // namespace apgre
