#include "bc/lockfree.hpp"

#include <cstdint>
#include <numeric>

#include "bc/frontier.hpp"
#include "support/parallel.hpp"

namespace apgre {

namespace {

constexpr std::int32_t kUnvisited = -1;

/// Per-thread split of the candidate list: vertices discovered this level
/// and vertices still unvisited, merged serially at the level barrier.
struct CandidateSplit {
  struct alignas(64) Local {
    std::vector<Vertex> discovered;
    std::vector<Vertex> remaining;
  };
  std::vector<Local> per_thread;

  CandidateSplit() : per_thread(static_cast<std::size_t>(num_threads())) {}

  Local& local() { return per_thread[static_cast<std::size_t>(thread_id())]; }
};

}  // namespace

std::vector<double> lockfree_bc(const CsrGraph& g) {
  const Vertex n = g.num_vertices();
  std::vector<double> bc(n, 0.0);

  std::vector<std::int32_t> dist(n, kUnvisited);
  std::vector<double> sigma(n, 0.0);
  std::vector<double> delta(n, 0.0);
  LevelBuckets levels;
  CandidateSplit split;
  // Vertices not yet visited this source; shrinks after every level so the
  // pull scan narrows as the BFS progresses.
  std::vector<Vertex> candidates;

  for (Vertex s = 0; s < n; ++s) {
    dist[s] = 0;
    sigma[s] = 1.0;
    levels.push(s);
    levels.finish_level();

    candidates.resize(n);
    std::iota(candidates.begin(), candidates.end(), 0);
    candidates.erase(candidates.begin() + s);

    for (std::int32_t depth = 0;
         !levels.level(static_cast<std::size_t>(depth)).empty(); ++depth) {
      // Pull phase: every candidate checks whether a level-`depth`
      // in-neighbour reaches it; each dist/sigma cell has a single writer,
      // so no locks or atomics are required.
#pragma omp parallel for schedule(static)
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(candidates.size()); ++i) {
        const Vertex v = candidates[static_cast<std::size_t>(i)];
        double paths = 0.0;
        for (Vertex u : g.in_neighbors(v)) {
          if (dist[u] == depth) paths += sigma[u];
        }
        if (paths > 0.0) {
          dist[v] = depth + 1;
          sigma[v] = paths;
          split.local().discovered.push_back(v);
        } else {
          split.local().remaining.push_back(v);
        }
      }
      candidates.clear();
      for (auto& local : split.per_thread) {
        levels.push_batch(local.discovered);
        candidates.insert(candidates.end(), local.remaining.begin(),
                          local.remaining.end());
        local.discovered.clear();
        local.remaining.clear();
      }
      levels.finish_level();
      if (levels.level(static_cast<std::size_t>(depth) + 1).empty()) break;
    }

    // Backward successor pull (same maths as `succs`, also free of
    // synchronisation).
    for (std::size_t lvl = levels.num_levels(); lvl-- > 0;) {
      const auto level = levels.level(lvl);
#pragma omp parallel for schedule(dynamic, 64)
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(level.size()); ++i) {
        const Vertex v = level[static_cast<std::size_t>(i)];
        double acc = 0.0;
        for (Vertex w : g.out_neighbors(v)) {
          if (dist[w] == dist[v] + 1) acc += sigma[v] / sigma[w] * (1.0 + delta[w]);
        }
        delta[v] = acc;
        if (v != s) bc[v] += acc;
      }
    }

    for (Vertex v : levels.touched()) {
      dist[v] = kUnvisited;
      sigma[v] = 0.0;
      delta[v] = 0.0;
    }
    levels.clear();
  }
  return bc;
}

}  // namespace apgre
