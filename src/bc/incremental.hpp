// iCentral-style incremental betweenness over one evolving graph.
//
// IncrementalBc owns a graph and keeps exact BC scores current across edge
// inserts/deletes and pendant vertex attach/detach. Each edge update is
// graded against the cached block-cut tree (BlockCutQueries):
//
//   kLocalInsert / kLocalDelete — the update is provably confined to one
//     biconnected component; the Solver's contribution store subtracts that
//     block's old scores, re-runs Brandes inside the block only (with the
//     cached alpha/beta peripheral weights), and adds the new scores back.
//     No re-decomposition happens ("bcc.decompositions" does not move).
//   kStructural — the block-cut tree changes shape (or the graph is
//     directed, where classification is conservative); fall back to a full
//     re-decomposition + solve.
//
// Pendant attach/detach use the closed-form score delta of the static
// pendant metamorphic rule (src/check/metamorphic.cpp): one Brandes
// iteration from the host instead of a full solve.
//
// Scores follow the ordered-pair convention (no undirected halving), the
// same as brandes_bc() — callers wanting conventional undirected BC halve
// them. Failed updates (duplicate insert, absent delete, self-loop) throw
// apgre::Error *before* any state changes. Not thread-safe; wrap in a
// mutex (the service layer does) to share across threads.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bc/bc.hpp"
#include "bcc/queries.hpp"
#include "graph/csr.hpp"

namespace apgre {

/// How each update was routed; the localized-path counters are the whole
/// point, so tests pin them.
struct IncrementalStats {
  std::uint64_t local_inserts = 0;
  std::uint64_t local_deletes = 0;
  std::uint64_t pendant_attaches = 0;
  std::uint64_t pendant_detaches = 0;
  /// Full re-decomposition + solve fallbacks (structural updates). A
  /// downgraded batch counts once, however many ops it carried.
  std::uint64_t structural_resolves = 0;
  /// apply_batch totals, accumulated across batches (same fields as the
  /// per-batch BatchStats it returns).
  std::uint64_t batches = 0;
  std::uint64_t batch_edges = 0;
  std::uint64_t coalesced_away = 0;
  std::uint64_t blocks_resolved = 0;
  std::uint64_t batch_downgrades = 0;
};

class IncrementalBc {
 public:
  /// Takes ownership of `graph` and solves once (not counted in stats()).
  /// `opts` tunes the APGRE solves (partition options, threads); the
  /// algorithm is forced to kApgre and halving to off. Throws Error on
  /// invalid options.
  explicit IncrementalBc(CsrGraph graph, BcOptions opts = {});

  const CsrGraph& graph() const { return graph_; }
  /// Current exact scores, ordered-pair convention, length num_vertices().
  const std::vector<double>& scores() const { return scores_; }
  const IncrementalStats& stats() const { return stats_; }

  /// Insert / remove the edge (u, v) (both arcs for undirected graphs) and
  /// bring scores current; returns how the update was routed. Throws Error
  /// ("arc already present", "arc not present", ...) before any state
  /// change on an illegal update.
  UpdateLocality insert_edge(Vertex u, Vertex v);
  UpdateLocality remove_edge(Vertex u, Vertex v);

  /// Apply a whole timestamped batch with the same locality-routing
  /// invariants as the per-edge path, amortised batch-wide: coalesce
  /// (cancel insert/delete pairs, dedupe repeats — an illegal op rejects
  /// the batch with apgre::Error before any state change), classify the
  /// survivors as a whole (BlockCutQueries::classify_batch, one survival
  /// check per affected block), then either re-score each affected block
  /// exactly once (all-local batch; blocks_resolved counts them) or fall
  /// back to a single re-decomposition + solve for the entire batch
  /// (batch_downgrades = 1 — never one per op). A batch that coalesces to
  /// nothing is a legal no-op. Returns the per-batch stats; stats() keeps
  /// running totals.
  BatchStats apply_batch(const UpdateRequest& batch);

  /// Attach a fresh degree-1 vertex to `host` (arc pendant -> host for
  /// directed graphs); returns the new vertex id (= old num_vertices()).
  /// Closed-form score delta — no solve.
  Vertex attach_pendant(Vertex host);

  /// Remove every arc incident to `v`. The vertex stays as an isolated id
  /// with score 0. Undirected degree-1 vertices use the closed-form
  /// inverse of attach_pendant; anything else re-solves. No-op when
  /// already isolated.
  void detach_vertex(Vertex v);

 private:
  UpdateLocality apply_edge(CsrGraph next, Vertex u, Vertex v, bool inserting);
  void resolve_full();
  void ensure_queries();

  CsrGraph graph_;  // member, so the Solver's pointer survives reassignment
  BcOptions opts_;
  Solver solver_;
  std::unique_ptr<BlockCutQueries> queries_;
  std::vector<double> scores_;
  IncrementalStats stats_;
};

}  // namespace apgre
