// APGRE — Articulation-Points-Guided Redundancy Elimination for betweenness
// centrality (the paper's contribution, §3-§4).
//
// Pipeline (paper Figure 5):
//   1. decompose the graph along articulation points (bcc/partition.hpp),
//   2. count alpha/beta for every boundary articulation point (bcc/reach.hpp),
//   3. run a per-sub-graph Brandes variant that accumulates the four
//      dependency types (in2in, in2out, out2in, out2out) in one backward
//      sweep and merges them into global BC scores, with
//        * coarse-grained parallelism across sub-graphs and
//        * fine-grained level-synchronous parallelism inside large ones
//      (the paper's two-level parallelism).
//
// Two deliberate corrections to the paper's pseudocode (validated against
// Brandes and the naive oracle; see DESIGN.md §2):
//   * the pendant-derived self term adds alpha(s) when the host is a
//     boundary AP,
//   * for undirected graphs each pendant subtracts 1 from the derived
//     in2in reach (the pendant is itself reachable from its host).
#pragma once

#include <vector>

#include "bcc/partition.hpp"
#include "graph/csr.hpp"
#include "support/sched/scheduler.hpp"

namespace apgre {

struct ApgreOptions {
  PartitionOptions partition;
  /// Sub-graphs holding at least this fraction of all arcs are processed
  /// one at a time with fine-grained (level-synchronous) inner parallelism;
  /// the rest are distributed across threads and processed serially inside.
  double fine_grain_fraction = 0.125;
  /// Sub-graphs with fewer arcs than this never use inner parallelism.
  EdgeId fine_grain_min_arcs = 1u << 14;
  /// Use a direction-optimising (Beamer-style top-down/bottom-up) forward
  /// phase inside the fine-grained kernel — the composition of the paper's
  /// decomposition with the `hybrid` baseline's BFS. Exactness is
  /// unaffected; pays off on low-diameter sub-graphs with fat frontiers.
  bool hybrid_inner = false;
};

/// Phase breakdown and decomposition summary (paper Figure 8 / Table 4).
struct ApgreStats {
  double partition_seconds = 0.0;  ///< biconnected decomposition + grouping
  double reach_seconds = 0.0;      ///< alpha/beta counting
  /// 2-core peel preprocessing (PartitionOptions::peel_two_core): time
  /// spent peeling + building the reduction, vertices removed, and the
  /// surviving core fraction (1.0 when peeling was off or removed nothing).
  double peel_seconds = 0.0;
  Vertex peeled_vertices = 0;
  double core_fraction = 1.0;
  /// BC of the sub-graphs processed with the fine-grained level-synchronous
  /// kernel (flat mode: the large "top" tier; scheduler mode: the dedicated
  /// sub-graphs too large to root-split).
  double top_bc_seconds = 0.0;
  /// BC of everything else (flat mode: the coarse OpenMP loop; scheduler
  /// mode: the work-stealing run over (sub-graph, root-batch) tasks).
  double rest_bc_seconds = 0.0;
  double total_seconds = 0.0;

  std::size_t num_subgraphs = 0;
  Vertex num_articulation_points = 0;
  Vertex num_pendants_removed = 0;
  Vertex top_vertices = 0;
  EdgeId top_arcs = 0;
  /// Redundancy work model (Figure 7).
  double partial_redundancy = 0.0;
  double total_redundancy = 0.0;

  /// Two-level scheduler breakdown (zero when the flat loop ran). The
  /// adaptive kernel choice (SchedulerOptions::adaptive_kernel) is recorded
  /// here: `num_fine_subgraphs` ran whole as dedicated tasks with the
  /// scheduler-native level-synchronous kernel (nested parallel_for),
  /// `num_batch_tasks` + `num_subgraph_tasks` ran the serial kernel on
  /// scheduler workers.
  std::size_t num_fine_subgraphs = 0;  ///< dedicated level-synchronous runs
  std::size_t num_batch_tasks = 0;     ///< root-batch tasks of split sub-graphs
  std::size_t num_subgraph_tasks = 0;  ///< whole-sub-graph serial tasks
  std::uint64_t sched_tasks = 0;       ///< tasks executed by the scheduler
  std::uint64_t sched_steals = 0;      ///< successful work steals
  double sched_idle_seconds = 0.0;     ///< summed worker idle time
};

/// Full APGRE run: decomposition + reach counting + scoring.
std::vector<double> apgre_bc(const CsrGraph& g, const ApgreOptions& opts = {},
                             ApgreStats* stats = nullptr,
                             const SchedulerOptions& sched = {});

/// Scoring only, on a caller-supplied decomposition whose alpha/beta reach
/// counts are already filled in (compute_reach_counts). This is the Solver
/// fast path (bc/bc.hpp): decompose once, score many times. When `stats` is
/// non-null its partition_seconds / reach_seconds are kept as-is (the
/// caller reports what *it* spent — zero on a cache hit) and every other
/// field is overwritten; total_seconds covers partition + reach + scoring.
std::vector<double> apgre_bc_with_decomposition(
    const CsrGraph& g, const Decomposition& dec, const ApgreOptions& opts = {},
    ApgreStats* stats = nullptr, const SchedulerOptions& sched = {});

/// BC scores of one sub-graph in local ids (paper Algorithm 2, BCinSG).
/// Exposed for tests and the breakdown benchmark. `parallel_inner` selects
/// the level-synchronous parallel kernel; the serial kernel otherwise.
/// `hybrid_inner` additionally enables the direction-optimising forward
/// phase (only meaningful with parallel_inner).
std::vector<double> apgre_subgraph_bc(const Subgraph& sg, bool parallel_inner,
                                      bool hybrid_inner = false);

/// Sub-graph BC with the scheduler-native level-synchronous kernel: the
/// per-level loops run as WorkStealingScheduler::parallel_for calls instead
/// of OpenMP regions, so concurrent invocations from different threads are
/// safe (no process-wide kernel lock). Default pool options use the shared
/// process-wide scheduler; explicit thread counts get a private one.
/// Exposed for the differential tests against the serial oracle.
std::vector<double> apgre_subgraph_bc_scheduled(const Subgraph& sg,
                                                bool hybrid_inner = false,
                                                const SchedulerOptions& sched = {});

}  // namespace apgre
