// Level-bucket frontier structures for the BFS phases.
//
// LevelBuckets records the vertices of every BFS level contiguously so the
// backward dependency sweep can walk levels in reverse (paper Algorithm 2,
// `Levels[]`). ThreadLocalFrontier is the OpenMP stand-in for the paper's
// CilkPlus reducer bag: threads append to private buffers which are
// concatenated into the next level at the barrier.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/edge_list.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"

namespace apgre {

/// Vertices grouped by BFS level, stored back to back.
class LevelBuckets {
 public:
  void clear() {
    vertices_.clear();
    offsets_.assign(1, 0);
  }

  /// Close the current level and start the next one.
  void finish_level() { offsets_.push_back(vertices_.size()); }

  void push(Vertex v) { vertices_.push_back(v); }

  /// Append a whole batch (used when merging thread-local buffers).
  void push_batch(const std::vector<Vertex>& batch) {
    vertices_.insert(vertices_.end(), batch.begin(), batch.end());
  }

  /// Number of *closed* levels.
  std::size_t num_levels() const { return offsets_.size() - 1; }

  /// Vertices of closed level `i`. NOTE: the returned span is invalidated
  /// by push()/push_batch(); loops that grow the frontier while scanning a
  /// level must use level_range() + vertex() instead.
  std::span<const Vertex> level(std::size_t i) const {
    APGRE_ASSERT(i + 1 < offsets_.size());
    return {vertices_.data() + offsets_[i], vertices_.data() + offsets_[i + 1]};
  }

  /// [begin, end) index range of closed level `i`, stable across push().
  std::pair<std::size_t, std::size_t> level_range(std::size_t i) const {
    APGRE_ASSERT(i + 1 < offsets_.size());
    return {offsets_[i], offsets_[i + 1]};
  }

  /// Vertex at flat index `idx`; safe to call while pushing.
  Vertex vertex(std::size_t idx) const {
    APGRE_ASSERT(idx < vertices_.size());
    return vertices_[idx];
  }

  std::size_t current_level_size() const {
    return vertices_.size() - offsets_.back();
  }

  /// Every vertex touched by the BFS, in discovery-level order. Used to
  /// reset per-source state in O(touched) instead of O(|V|).
  const std::vector<Vertex>& touched() const { return vertices_; }

  bool empty() const { return vertices_.empty(); }

 private:
  std::vector<Vertex> vertices_;
  std::vector<std::size_t> offsets_{0};
};

/// Per-slot append buffers for the scheduler-native kernels: like
/// ThreadLocalFrontier, but indexed by the scheduler slot id a
/// parallel_for body receives instead of the OpenMP thread id, and sized
/// by WorkStealingScheduler::num_slots(). Buffers start empty and grow
/// only on slots that actually execute chunks, so oversizing is free.
class SlotLocalFrontier {
 public:
  explicit SlotLocalFrontier(int slots)
      : buffers_(static_cast<std::size_t>(slots)) {}

  std::vector<Vertex>& local(int slot) {
    return buffers_[static_cast<std::size_t>(slot)].items;
  }

  /// Merge every slot's buffer; call only between parallel_for calls.
  void drain_into(LevelBuckets& levels) {
    for (auto& buffer : buffers_) {
      if (buffer.items.empty()) continue;
      levels.push_batch(buffer.items);
      buffer.items.clear();
    }
  }

 private:
  struct alignas(64) Buffer {
    std::vector<Vertex> items;
  };
  std::vector<Buffer> buffers_;
};

/// Per-thread append buffers merged into a LevelBuckets level at the end of
/// a parallel region (reduction-bag substitute, see paper §5.1).
class ThreadLocalFrontier {
 public:
  ThreadLocalFrontier() : buffers_(static_cast<std::size_t>(num_threads())) {}

  std::vector<Vertex>& local() {
    return buffers_[static_cast<std::size_t>(thread_id())].items;
  }

  /// Single-threaded merge; call outside the parallel region.
  void drain_into(LevelBuckets& levels) {
    for (auto& buffer : buffers_) {
      levels.push_batch(buffer.items);
      buffer.items.clear();
    }
  }

 private:
  struct alignas(64) Buffer {
    std::vector<Vertex> items;
  };
  std::vector<Buffer> buffers_;
};

}  // namespace apgre
