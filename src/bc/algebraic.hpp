// Batched ("algebraic") betweenness centrality — the Combinatorial-BLAS
// formulation of Buluc & Gilbert (IJHPCA 2011), cited in the paper's
// related work (§6): Brandes over b sources at once, where each BFS level
// is one masked matrix product frontier = A^T * frontier.
//
// This implementation fixes the batch width at 64 so the per-vertex lane
// set is a single machine word: discovery masks replace the sparse
// boolean frontier matrix, and sigma/delta are dense n x 64 lane arrays.
// Amortising the adjacency traversal over 64 sources is the algebraic
// method's selling point; the ablation bench measures it against the
// source-at-a-time baseline.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace apgre {

/// Exact BC scores via 64-wide batched Brandes.
std::vector<double> algebraic_bc(const CsrGraph& g);

}  // namespace apgre
