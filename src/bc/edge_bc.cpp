#include "bc/edge_bc.hpp"

#include <algorithm>

#include "bc/brandes_kernel.hpp"
#include "support/error.hpp"

namespace apgre {

std::vector<double> edge_betweenness_bc(const CsrGraph& g) {
  const Vertex n = g.num_vertices();
  std::vector<double> scores(g.num_arcs(), 0.0);
  detail::BrandesScratch scratch(n);

  for (Vertex s = 0; s < n; ++s) {
    auto& dist = scratch.dist;
    auto& sigma = scratch.sigma;
    auto& delta = scratch.delta;
    auto& levels = scratch.levels;

    dist[s] = 0;
    sigma[s] = 1.0;
    levels.push(s);
    levels.finish_level();
    for (std::size_t current = 0; !levels.level(current).empty(); ++current) {
      const auto [begin, end] = levels.level_range(current);
      for (std::size_t idx = begin; idx < end; ++idx) {
        const Vertex v = levels.vertex(idx);
        for (Vertex w : g.out_neighbors(v)) {
          if (dist[w] == detail::kUnvisited) {
            dist[w] = dist[v] + 1;
            levels.push(w);
          }
          if (dist[w] == dist[v] + 1) sigma[w] += sigma[v];
        }
      }
      levels.finish_level();
      if (levels.level(current + 1).empty()) break;
    }

    // Backward: the per-arc contribution is exactly the summand of the
    // vertex dependency recursion.
    for (std::size_t lvl = levels.num_levels(); lvl-- > 0;) {
      for (Vertex v : levels.level(lvl)) {
        const auto neighbors = g.out_neighbors(v);
        const EdgeId base = g.out_offset(v);
        double acc = 0.0;
        for (std::size_t j = 0; j < neighbors.size(); ++j) {
          const Vertex w = neighbors[j];
          if (dist[w] != dist[v] + 1) continue;
          const double contribution = sigma[v] / sigma[w] * (1.0 + delta[w]);
          scores[base + j] += contribution;
          acc += contribution;
        }
        delta[v] = acc;
      }
    }
    scratch.reset_touched();
  }
  return scores;
}

double arc_score(const CsrGraph& g, const std::vector<double>& scores, Vertex v,
                 Vertex w) {
  APGRE_ASSERT(scores.size() == g.num_arcs());
  const auto neighbors = g.out_neighbors(v);
  const auto it = std::lower_bound(neighbors.begin(), neighbors.end(), w);
  APGRE_ASSERT_MSG(it != neighbors.end() && *it == w, "arc does not exist");
  return scores[g.out_offset(v) + static_cast<std::size_t>(it - neighbors.begin())];
}

std::vector<std::pair<Edge, double>> top_edges(const CsrGraph& g,
                                               const std::vector<double>& scores,
                                               std::size_t k) {
  APGRE_ASSERT(scores.size() == g.num_arcs());
  std::vector<std::pair<Edge, double>> all;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const auto neighbors = g.out_neighbors(v);
    const EdgeId base = g.out_offset(v);
    for (std::size_t j = 0; j < neighbors.size(); ++j) {
      const Vertex w = neighbors[j];
      if (!g.directed()) {
        if (v > w) continue;  // one entry per undirected edge
        all.emplace_back(Edge{v, w},
                         scores[base + j] + arc_score(g, scores, w, v));
      } else {
        all.emplace_back(Edge{v, w}, scores[base + j]);
      }
    }
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break
  });
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace apgre
