// Weighted betweenness centrality — the extension the paper defers to
// related work (§6, Edmonds et al.). Three algorithms:
//
//   * weighted_naive_bc    Floyd-Warshall path-counting oracle, O(|V|^3)
//   * weighted_brandes_bc  Dijkstra-based Brandes (Brandes 2001 §4)
//   * weighted_apgre_bc    APGRE with a Dijkstra kernel: the articulation-
//                          point decomposition, alpha/beta reach counts and
//                          the four dependency types are all weight-
//                          agnostic (they depend on connectivity only), so
//                          the redundancy elimination carries over — only
//                          the per-source traversal changes.
//
// All arc weights must be strictly positive (sigma counting over a settled
// Dijkstra order requires it), and path lengths are compared exactly, so
// weights should be integer-valued doubles (see graph/weighted.hpp).
#pragma once

#include <vector>

#include "bc/apgre.hpp"
#include "graph/weighted.hpp"

namespace apgre {

std::vector<double> weighted_naive_bc(const WeightedCsrGraph& g);

std::vector<double> weighted_brandes_bc(const WeightedCsrGraph& g);

std::vector<double> weighted_apgre_bc(const WeightedCsrGraph& g,
                                      const ApgreOptions& opts = {},
                                      ApgreStats* stats = nullptr);

}  // namespace apgre
