#include "bc/bc.hpp"

#include "bc/algebraic.hpp"
#include "bc/brandes.hpp"
#include "bc/coarse.hpp"
#include "bc/hybrid.hpp"
#include "bc/lockfree.hpp"
#include "bc/naive.hpp"
#include "bc/parallel_preds.hpp"
#include "bc/parallel_succs.hpp"
#include "bc/sampling.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace apgre {

Algorithm algorithm_from_name(const std::string& name) {
  if (name == "naive") return Algorithm::kNaive;
  if (name == "serial") return Algorithm::kBrandesSerial;
  if (name == "preds") return Algorithm::kParallelPreds;
  if (name == "succs") return Algorithm::kParallelSuccs;
  if (name == "lockfree") return Algorithm::kLockFree;
  if (name == "coarse" || name == "async") return Algorithm::kCoarse;
  if (name == "hybrid") return Algorithm::kHybrid;
  if (name == "apgre") return Algorithm::kApgre;
  if (name == "algebraic" || name == "batched") return Algorithm::kAlgebraic;
  if (name == "sampling") return Algorithm::kSampling;
  throw OptionError("unknown BC algorithm: " + name);
}

std::string algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kNaive: return "naive";
    case Algorithm::kBrandesSerial: return "serial";
    case Algorithm::kParallelPreds: return "preds";
    case Algorithm::kParallelSuccs: return "succs";
    case Algorithm::kLockFree: return "lockfree";
    case Algorithm::kCoarse: return "coarse";
    case Algorithm::kHybrid: return "hybrid";
    case Algorithm::kApgre: return "apgre";
    case Algorithm::kAlgebraic: return "algebraic";
    case Algorithm::kSampling: return "sampling";
  }
  return "?";
}

BcResult betweenness(const CsrGraph& g, const BcOptions& opts) {
  BcResult result;
  ThreadBudget budget(opts.threads > 0 ? opts.threads : num_threads());

  const std::string name = algorithm_name(opts.algorithm);
  TraceSpan span("bc/" + name);
  Timer timer;
  switch (opts.algorithm) {
    case Algorithm::kNaive:
      result.scores = naive_bc(g);
      break;
    case Algorithm::kBrandesSerial:
      result.scores = brandes_bc(g);
      break;
    case Algorithm::kParallelPreds:
      result.scores = parallel_preds_bc(g);
      break;
    case Algorithm::kParallelSuccs:
      result.scores = parallel_succs_bc(g);
      break;
    case Algorithm::kLockFree:
      result.scores = lockfree_bc(g);
      break;
    case Algorithm::kCoarse:
      result.scores = coarse_bc(g);
      break;
    case Algorithm::kHybrid:
      result.scores = hybrid_bc(g);
      break;
    case Algorithm::kApgre:
      result.scores = apgre_bc(g, opts.apgre, &result.apgre_stats);
      break;
    case Algorithm::kAlgebraic:
      result.scores = algebraic_bc(g);
      break;
    case Algorithm::kSampling:
      result.scores = sampled_bc(g, opts.num_samples, opts.seed);
      break;
  }
  result.seconds = timer.seconds();

  if (opts.undirected_halving && !g.directed()) {
    for (double& score : result.scores) score *= 0.5;
  }

  // Paper §5.1: TEPS_BC = n * m / t, reported in millions.
  if (result.seconds > 0.0) {
    result.mteps = static_cast<double>(g.num_vertices()) *
                   static_cast<double>(g.num_arcs()) / result.seconds / 1e6;
  }
  return result;
}

}  // namespace apgre
