#include "bc/bc.hpp"

#include <array>
#include <cmath>

#include "bc/algebraic.hpp"
#include "bc/brandes.hpp"
#include "bc/coarse.hpp"
#include "bc/hybrid.hpp"
#include "bc/lockfree.hpp"
#include "bc/naive.hpp"
#include "bc/parallel_preds.hpp"
#include "bc/parallel_succs.hpp"
#include "bc/sampling.hpp"
#include "bcc/reach.hpp"
#include "graph/mutate.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace apgre {

namespace {

// Kernel adapters: one uniform signature per registry row. The dispatcher
// (Solver::solve) owns timing, halving, and mteps; kernels only produce
// scores and, where applicable, extra result fields.

std::vector<double> run_naive(const CsrGraph& g, const BcOptions&, BcResult&) {
  return naive_bc(g);
}
std::vector<double> run_serial(const CsrGraph& g, const BcOptions&, BcResult&) {
  return brandes_bc(g);
}
std::vector<double> run_preds(const CsrGraph& g, const BcOptions&, BcResult&) {
  return parallel_preds_bc(g);
}
std::vector<double> run_succs(const CsrGraph& g, const BcOptions&, BcResult&) {
  return parallel_succs_bc(g);
}
std::vector<double> run_lockfree(const CsrGraph& g, const BcOptions&, BcResult&) {
  return lockfree_bc(g);
}
std::vector<double> run_coarse(const CsrGraph& g, const BcOptions&, BcResult&) {
  return coarse_bc(g);
}
std::vector<double> run_hybrid(const CsrGraph& g, const BcOptions&, BcResult&) {
  return hybrid_bc(g);
}
std::vector<double> run_apgre(const CsrGraph& g, const BcOptions& opts,
                              BcResult& result) {
  return apgre_bc(g, opts.apgre, &result.apgre_stats, opts.scheduler);
}
std::vector<double> run_algebraic(const CsrGraph& g, const BcOptions&, BcResult&) {
  return algebraic_bc(g);
}
std::vector<double> run_sampling(const CsrGraph& g, const BcOptions& opts,
                                 BcResult&) {
  return sampled_bc(g, opts.num_samples, opts.seed);
}

// The registry. Order matches the Algorithm enum so algorithm_info() can
// index directly; a static_assert below guards the correspondence.
constexpr std::size_t kNumAlgorithms = 10;
const std::array<AlgorithmInfo, kNumAlgorithms> kRegistry = {{
    {Algorithm::kNaive, "naive", nullptr,
     "O(V^3) definition-based oracle (tests only)", &run_naive,
     /*exact=*/true, /*parallel=*/false, /*comparison=*/false,
     /*test_only=*/true},
    {Algorithm::kBrandesSerial, "serial", nullptr,
     "Brandes 2001, the serial baseline", &run_serial,
     /*exact=*/true, /*parallel=*/false, /*comparison=*/true,
     /*test_only=*/false},
    {Algorithm::kParallelPreds, "preds", nullptr,
     "level-synchronous with predecessor lists (Bader-Madduri)", &run_preds,
     /*exact=*/true, /*parallel=*/true, /*comparison=*/true,
     /*test_only=*/false},
    {Algorithm::kParallelSuccs, "succs", nullptr,
     "level-synchronous with successor scans (Madduri et al.)", &run_succs,
     /*exact=*/true, /*parallel=*/true, /*comparison=*/true,
     /*test_only=*/false},
    {Algorithm::kLockFree, "lockfree", nullptr,
     "pull-based level-synchronous, no atomics (Tan et al.)", &run_lockfree,
     /*exact=*/true, /*parallel=*/true, /*comparison=*/true,
     /*test_only=*/false},
    {Algorithm::kCoarse, "coarse", "async",
     "source-parallel with per-thread buffers", &run_coarse,
     /*exact=*/true, /*parallel=*/true, /*comparison=*/true,
     /*test_only=*/false},
    {Algorithm::kHybrid, "hybrid", nullptr,
     "direction-optimising BFS (Beamer)", &run_hybrid,
     /*exact=*/true, /*parallel=*/true, /*comparison=*/true,
     /*test_only=*/false},
    {Algorithm::kApgre, "apgre", nullptr,
     "articulation-point-guided redundancy elimination (the paper)",
     &run_apgre,
     /*exact=*/true, /*parallel=*/true, /*comparison=*/true,
     /*test_only=*/false},
    {Algorithm::kAlgebraic, "algebraic", "batched",
     "64-wide batched Brandes (Buluc-Gilbert style)", &run_algebraic,
     /*exact=*/true, /*parallel=*/false, /*comparison=*/false,
     /*test_only=*/false},
    {Algorithm::kSampling, "sampling", nullptr,
     "Brandes-Pich source sampling (approximate)", &run_sampling,
     /*exact=*/false, /*parallel=*/false, /*comparison=*/false,
     /*test_only=*/false},
}};

static_assert(static_cast<std::size_t>(Algorithm::kSampling) ==
                  kNumAlgorithms - 1,
              "registry must have one row per Algorithm value, in enum order");

}  // namespace

std::span<const AlgorithmInfo> algorithm_registry() { return kRegistry; }

const AlgorithmInfo& algorithm_info(Algorithm algorithm) {
  const auto index = static_cast<std::size_t>(algorithm);
  if (index >= kRegistry.size() || kRegistry[index].algorithm != algorithm) {
    throw OptionError("algorithm value " + std::to_string(index) +
                      " is not in the registry");
  }
  return kRegistry[index];
}

Algorithm algorithm_from_name(const std::string& name) {
  std::string known;
  for (const AlgorithmInfo& info : kRegistry) {
    if (name == info.name || (info.alias != nullptr && name == info.alias)) {
      return info.algorithm;
    }
    if (!known.empty()) known += " | ";
    known += info.name;
  }
  throw OptionError("unknown BC algorithm: " + name + " (expected " + known +
                    ")");
}

std::string algorithm_name(Algorithm algorithm) {
  return algorithm_info(algorithm).name;
}

Status validate_options(const BcOptions& opts) {
  const auto index = static_cast<std::size_t>(opts.algorithm);
  if (index >= kRegistry.size()) {
    return Status::invalid_option("algorithm value " + std::to_string(index) +
                                  " is not in the registry");
  }
  if (opts.threads < 0) {
    return Status::invalid_option("threads must be >= 0, got " +
                                  std::to_string(opts.threads));
  }
  const ApgreOptions& a = opts.apgre;
  if (!(a.fine_grain_fraction >= 0.0 && a.fine_grain_fraction <= 1.0)) {
    return Status::invalid_option(
        "apgre.fine_grain_fraction must be in [0, 1], got " +
        std::to_string(a.fine_grain_fraction));
  }
  const SchedulerOptions& s = opts.scheduler;
  if (s.threads < 0) {
    return Status::invalid_option("scheduler.threads must be >= 0, got " +
                                  std::to_string(s.threads));
  }
  if (s.grain < 0) {
    return Status::invalid_option("scheduler.grain must be >= 0, got " +
                                  std::to_string(s.grain));
  }
  if (s.steal_policy != StealPolicy::kRandom &&
      s.steal_policy != StealPolicy::kSequential) {
    return Status::invalid_option("scheduler.steal_policy is not a known policy");
  }
  return Status::Ok();
}

BcResult Solver::solve(const BcOptions& opts) {
  BcResult result;
  result.status = validate_options(opts);
  if (!result.status.ok()) return result;

  const CsrGraph& g = *g_;
  ThreadBudget budget(opts.threads > 0 ? opts.threads : num_threads());
  const AlgorithmInfo& info = algorithm_info(opts.algorithm);
  TraceSpan span(std::string("bc/") + info.name);

  Timer timer;
  if (opts.algorithm == Algorithm::kApgre) {
    // Session fast path: decompose + count reach once, score per solve.
    PartitionOptions key = opts.apgre.partition;
    key.compute_reach = false;
    const bool want_peel = key.peel_two_core && !g.directed();
    ApgreStats stats;  // partition/reach seconds stay zero on a cache hit
    if (dec_ == nullptr || !(dec_key_ == key)) {
      dec_ = std::make_unique<Decomposition>();
      store_valid_ = false;
      reduced_.reset();
      if (want_peel) {
        // Peel once per snapshot; an adopted peel (service) is reused.
        ScopedTimer t(stats.peel_seconds);
        if (peel_ == nullptr || peel_->num_vertices != g.num_vertices()) {
          peel_ = std::make_shared<const PeelResult>(two_core_peel(g));
        }
        if (peel_->num_peeled > 0) {
          reduced_ =
              std::make_unique<CsrGraph>(peeled_core_reduction(g, *peel_));
        }
      }
      const CsrGraph& base = reduced_ != nullptr ? *reduced_ : g;
      {
        APGRE_TRACE_SPAN("apgre/decompose");
        ScopedTimer t(stats.partition_seconds);
        *dec_ = decompose(base, key);
        // Weighted core solve: anchors absorb their peeled subtrees as
        // derived pendant multiplicities (gamma + weighted reach), so the
        // kernels never traverse the fringe.
        if (reduced_ != nullptr) {
          inject_pendant_weights(*dec_, peel_->anchor_weight);
        }
      }
      {
        APGRE_TRACE_SPAN("apgre/reach");
        ScopedTimer t(stats.reach_seconds);
        compute_reach_counts(base, *dec_, key.reach,
                             reduced_ != nullptr ? &peel_->anchor_weight
                                                 : nullptr);
      }
      dec_key_ = key;
    }
    if (want_peel && peel_ != nullptr) {
      stats.peeled_vertices = peel_->num_peeled;
      stats.core_fraction = peel_->core_fraction();
    }
    if (track_) {
      if (store_valid_) {
        metrics().counter("bc.solver.score_reuses").add();
      } else {
        APGRE_TRACE_SPAN("apgre/build_store");
        ScopedTimer t(stats.rest_bc_seconds);
        build_store();
      }
      result.scores = tracked_scores_;
      stats.num_subgraphs = dec_->subgraphs.size();
    } else {
      const CsrGraph& base = reduced_ != nullptr ? *reduced_ : g;
      result.scores = apgre_bc_with_decomposition(base, *dec_, opts.apgre,
                                                  &stats, opts.scheduler);
      if (reduced_ != nullptr) expand_peeled_scores(*peel_, result.scores);
    }
    result.apgre_stats = stats;
  } else {
    result.scores = info.kernel(g, opts, result);
  }
  result.seconds = timer.seconds();

  if (opts.undirected_halving && !g.directed()) {
    for (double& score : result.scores) score *= 0.5;
  }

  // Paper §5.1: TEPS_BC = n * m / t, reported in millions.
  if (result.seconds > 0.0) {
    result.mteps = static_cast<double>(g.num_vertices()) *
                   static_cast<double>(g.num_arcs()) / result.seconds / 1e6;
  }
  return result;
}

void Solver::rebind(const CsrGraph& g) {
  g_ = &g;
  dec_.reset();
  dec_key_ = PartitionOptions{};
  peel_.reset();
  reduced_.reset();
  store_valid_ = false;
  contrib_.clear();
  tracked_scores_.clear();
}

void Solver::adopt_peel(std::shared_ptr<const PeelResult> peel) {
  if (peel == peel_) return;
  peel_ = std::move(peel);
  // The cached decomposition (if any) was built on a different reduction.
  dec_.reset();
  dec_key_ = PartitionOptions{};
  reduced_.reset();
  store_valid_ = false;
}

void Solver::enable_contribution_tracking() {
  track_ = true;
  // Any scores computed before opting in have no per-sub-graph breakdown;
  // the next APGRE solve builds the store from scratch.
  store_valid_ = false;
}

void Solver::build_store() {
  const Decomposition& dec = *dec_;
  contrib_.assign(dec.subgraphs.size(), {});
  tracked_scores_.assign(g_->num_vertices(), 0.0);
  for (std::size_t sgi = 0; sgi < dec.subgraphs.size(); ++sgi) {
    const Subgraph& sg = dec.subgraphs[sgi];
    contrib_[sgi] = apgre_subgraph_bc(sg, /*parallel_inner=*/false);
    for (Vertex local = 0; local < sg.num_vertices(); ++local) {
      tracked_scores_[sg.to_global[local]] += contrib_[sgi][local];
    }
  }
  // Peeled sessions keep the store expanded (see the tracked_scores_
  // invariant in the header): the expansion commutes with the per-block
  // subtract/re-add arithmetic of apply_local_update.
  if (reduced_ != nullptr) expand_peeled_scores(*peel_, tracked_scores_);
  store_valid_ = true;
}

void Solver::refresh_top_subgraph() {
  // Same criterion as decompose() (arcs, then vertices, first maximum);
  // a full rescan because a deletion can demote the current top.
  std::size_t best = 0;
  for (std::size_t i = 1; i < dec_->subgraphs.size(); ++i) {
    const Subgraph& sg = dec_->subgraphs[i];
    const Subgraph& cur = dec_->subgraphs[best];
    if (sg.num_arcs() > cur.num_arcs() ||
        (sg.num_arcs() == cur.num_arcs() &&
         sg.num_vertices() > cur.num_vertices())) {
      best = i;
    }
  }
  dec_->top_subgraph = best;
}

bool Solver::apply_local_update(const CsrGraph& g, Vertex u, Vertex v,
                                bool inserting) {
  // A single update is a batch of one: exactly one sub-graph re-scores on
  // the localized path, so the boolean maps onto the resolved count.
  return apply_local_batch(g, {EdgeOp{u, v, inserting}}) > 0;
}

std::size_t Solver::apply_local_batch(const CsrGraph& g,
                                      const std::vector<EdgeOp>& ops) {
  if (dec_ == nullptr || !track_ || !store_valid_ || ops.empty()) {
    rebind(g);
    return 0;
  }
  APGRE_ASSERT(!g.directed() && g.num_vertices() == dec_->num_vertices);
  if (reduced_ != nullptr) {
    for (const EdgeOp& op : ops) {
      if (!peel_->in_core[op.u] || !peel_->in_core[op.v]) {
        // An update incident to the peeled forest invalidates the peel
        // analysis (classify_update routes these kStructural; this is
        // defence in depth).
        rebind(g);
        return 0;
      }
    }
  }

  // Route every op to the sub-graph storing its edge *before* mutating
  // anything, so a routing miss falls back with the store still intact.
  std::vector<std::vector<std::size_t>> per_sg(dec_->subgraphs.size());
  std::vector<std::pair<Vertex, Vertex>> local_ids(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const EdgeOp& op = ops[i];
    bool routed = false;
    for (std::size_t sgi = 0; sgi < dec_->subgraphs.size() && !routed; ++sgi) {
      const Subgraph& sg = dec_->subgraphs[sgi];
      Vertex lu = kInvalidVertex;
      Vertex lv = kInvalidVertex;
      for (Vertex local = 0; local < sg.num_vertices(); ++local) {
        if (sg.to_global[local] == op.u) lu = local;
        if (sg.to_global[local] == op.v) lv = local;
      }
      if (lu == kInvalidVertex || lv == kInvalidVertex) continue;
      // Articulation endpoints belong to several sub-graph groups, but every
      // block's edges materialise in exactly one of them — a deletion must
      // patch the group that actually stores the arc. (Insert endpoints are
      // non-APs by the classify contract, so the first group wins.)
      if (!op.insert && !has_arc(sg.graph, lu, lv)) continue;
      per_sg[sgi].push_back(i);
      local_ids[i] = {lu, lv};
      routed = true;
    }
    if (!routed) {
      // Endpoints outside every cached sub-graph contradict the locality
      // precondition; re-decompose rather than score a stale cache.
      rebind(g);
      return 0;
    }
  }

  // One contribution subtract / splice-all / re-score / add-back cycle per
  // affected sub-graph — the per-block cost is paid once for the whole
  // batch, not once per edge.
  std::size_t resolved = 0;
  for (std::size_t sgi = 0; sgi < dec_->subgraphs.size(); ++sgi) {
    if (per_sg[sgi].empty()) continue;
    Subgraph& sg = dec_->subgraphs[sgi];
    for (Vertex local = 0; local < sg.num_vertices(); ++local) {
      tracked_scores_[sg.to_global[local]] -= contrib_[sgi][local];
    }
    EdgeList arcs = sg.graph.arcs();
    for (const std::size_t i : per_sg[sgi]) {
      const auto [lu, lv] = local_ids[i];
      if (ops[i].insert) {
        arcs.push_back(Edge{lu, lv});
        arcs.push_back(Edge{lv, lu});
      } else {
        std::erase_if(arcs, [lu, lv](const Edge& e) {
          return (e.src == lu && e.dst == lv) || (e.src == lv && e.dst == lu);
        });
      }
    }
    sg.graph = CsrGraph::from_edges(sg.num_vertices(), std::move(arcs),
                                    /*directed=*/false);
    contrib_[sgi] = apgre_subgraph_bc(sg, /*parallel_inner=*/false);
    for (Vertex local = 0; local < sg.num_vertices(); ++local) {
      double& score = tracked_scores_[sg.to_global[local]];
      score += contrib_[sgi][local];
      // Clamp subtract/re-add cancellation noise on exact zeros.
      if (std::abs(score) < 1e-9) score = std::max(score, 0.0);
    }
    ++resolved;
    metrics().counter("bc.solver.local_recomputes").add();
  }
  if (reduced_ != nullptr) {
    // Every endpoint is 2-core (guard above) and local batches leave the
    // peel cascade untouched, so the reduction tracks g by the same splices.
    for (const EdgeOp& op : ops) {
      *reduced_ = op.insert ? with_edge_inserted(*reduced_, op.u, op.v)
                            : with_edge_removed(*reduced_, op.u, op.v);
    }
  }
  refresh_top_subgraph();
  g_ = &g;
  return resolved;
}

void Solver::rebind_local_insert(const CsrGraph& g, Vertex u, Vertex v) {
  if (track_ && store_valid_) {
    // A plain patch would leave the contribution store stale; route through
    // the store-maintaining path instead.
    apply_local_update(g, u, v, /*inserting=*/true);
    return;
  }
  if (dec_ == nullptr) {
    rebind(g);
    return;
  }
  APGRE_ASSERT(!g.directed() && g.num_vertices() == dec_->num_vertices);
  if (reduced_ != nullptr &&
      (!peel_->in_core[u] || !peel_->in_core[v])) {
    rebind(g);
    return;
  }
  g_ = &g;

  // A non-articulation vertex lives in exactly one sub-graph; find u's and
  // patch only that sub-graph's induced arc set. The decomposition counters
  // and every reach count survive (see the header contract).
  for (std::size_t sgi = 0; sgi < dec_->subgraphs.size(); ++sgi) {
    Subgraph& sg = dec_->subgraphs[sgi];
    Vertex lu = kInvalidVertex;
    Vertex lv = kInvalidVertex;
    for (Vertex local = 0; local < sg.num_vertices(); ++local) {
      if (sg.to_global[local] == u) lu = local;
      if (sg.to_global[local] == v) lv = local;
    }
    if (lu == kInvalidVertex) continue;
    APGRE_ASSERT(lv != kInvalidVertex);
    EdgeList arcs(sg.graph.arcs());
    arcs.push_back(Edge{lu, lv});
    arcs.push_back(Edge{lv, lu});
    sg.graph = CsrGraph::from_edges(sg.num_vertices(), std::move(arcs),
                                    /*directed=*/false);
    // The chord may promote this sub-graph to top (same tie-break as
    // decompose(): arcs, then vertices).
    const Subgraph& best = dec_->subgraphs[dec_->top_subgraph];
    if (sg.num_arcs() > best.num_arcs() ||
        (sg.num_arcs() == best.num_arcs() &&
         sg.num_vertices() > best.num_vertices())) {
      dec_->top_subgraph = sgi;
    }
    if (reduced_ != nullptr) *reduced_ = with_edge_inserted(*reduced_, u, v);
    metrics().counter("bc.solver.local_rebinds").add();
    return;
  }
  // u in no sub-graph (isolated before the insert) contradicts the kLocal
  // precondition; re-decompose rather than score a stale cache.
  rebind(g);
}

BcResult betweenness(const CsrGraph& g, const BcOptions& opts) {
  Solver solver(g);
  return solver.solve(opts);
}

}  // namespace apgre
