#include "bc/brandes.hpp"

#include <numeric>

#include "bc/brandes_kernel.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"

namespace apgre {

std::vector<double> brandes_bc(const CsrGraph& g) {
  std::vector<Vertex> sources(g.num_vertices());
  std::iota(sources.begin(), sources.end(), 0);
  return brandes_bc_from_sources(g, sources, 1.0);
}

std::vector<double> brandes_bc_from_sources(const CsrGraph& g,
                                            const std::vector<Vertex>& sources,
                                            double source_weight) {
  std::vector<double> bc(g.num_vertices(), 0.0);
  detail::BrandesScratch scratch(g.num_vertices());
  for (Vertex s : sources) {
    APGRE_ASSERT(s < g.num_vertices());
    detail::brandes_iteration(g, s, source_weight, scratch, bc);
  }
  MetricsRegistry& m = metrics();
  m.counter("bc.serial.sources").add(scratch.sources);
  m.counter("bc.serial.traversed_arcs").add(scratch.traversed_arcs);
  m.gauge("bc.serial.forward_seconds").set(scratch.forward_seconds);
  m.gauge("bc.serial.backward_seconds").set(scratch.backward_seconds);
  return bc;
}

std::vector<double> brandes_preds_serial_bc(const CsrGraph& g) {
  const Vertex n = g.num_vertices();
  std::vector<double> bc(n, 0.0);
  detail::BrandesScratch scratch(n);
  // Predecessor lists in slots parallel to the in-adjacency (a vertex's
  // predecessors are a subset of its in-neighbours).
  std::vector<Vertex> pred_slots(g.num_arcs());
  std::vector<std::uint32_t> pred_count(n, 0);

  for (Vertex s = 0; s < n; ++s) {
    auto& dist = scratch.dist;
    auto& sigma = scratch.sigma;
    auto& delta = scratch.delta;
    auto& levels = scratch.levels;

    dist[s] = 0;
    sigma[s] = 1.0;
    levels.push(s);
    levels.finish_level();
    for (std::size_t current = 0; !levels.level(current).empty(); ++current) {
      const auto [begin, end] = levels.level_range(current);
      for (std::size_t idx = begin; idx < end; ++idx) {
        const Vertex v = levels.vertex(idx);
        for (Vertex w : g.out_neighbors(v)) {
          if (dist[w] == detail::kUnvisited) {
            dist[w] = dist[v] + 1;
            levels.push(w);
          }
          if (dist[w] == dist[v] + 1) {
            sigma[w] += sigma[v];
            pred_slots[g.in_offset(w) + pred_count[w]++] = v;
          }
        }
      }
      levels.finish_level();
      if (levels.level(current + 1).empty()) break;
    }

    // Backward: scatter through the recorded predecessor lists.
    for (std::size_t lvl = levels.num_levels(); lvl-- > 1;) {
      for (Vertex w : levels.level(lvl)) {
        const double coef = (1.0 + delta[w]) / sigma[w];
        for (std::uint32_t p = 0; p < pred_count[w]; ++p) {
          const Vertex v = pred_slots[g.in_offset(w) + p];
          delta[v] += sigma[v] * coef;
        }
        bc[w] += delta[w];
      }
    }
    for (Vertex v : levels.touched()) pred_count[v] = 0;
    scratch.reset_touched();
  }
  return bc;
}

}  // namespace apgre
