#include "bc/stress.hpp"

#include <limits>

#include "bc/brandes_kernel.hpp"
#include "support/error.hpp"

namespace apgre {

std::vector<double> stress_centrality(const CsrGraph& g) {
  const Vertex n = g.num_vertices();
  std::vector<double> stress(n, 0.0);
  detail::BrandesScratch scratch(n);

  for (Vertex s = 0; s < n; ++s) {
    auto& dist = scratch.dist;
    auto& sigma = scratch.sigma;
    auto& delta = scratch.delta;  // here: accumulated path *counts*
    auto& levels = scratch.levels;

    dist[s] = 0;
    sigma[s] = 1.0;
    levels.push(s);
    levels.finish_level();
    for (std::size_t current = 0; !levels.level(current).empty(); ++current) {
      const auto [begin, end] = levels.level_range(current);
      for (std::size_t idx = begin; idx < end; ++idx) {
        const Vertex v = levels.vertex(idx);
        for (Vertex w : g.out_neighbors(v)) {
          if (dist[w] == detail::kUnvisited) {
            dist[w] = dist[v] + 1;
            levels.push(w);
          }
          if (dist[w] == dist[v] + 1) sigma[w] += sigma[v];
        }
      }
      levels.finish_level();
      if (levels.level(current + 1).empty()) break;
    }

    // Backward: S_s(v) = sum over successors w of
    //   sigma_sv * (1 + S_s(w) / sigma_sw)
    // (each of sigma_sv paths to v extends to w, carrying w's own pair
    // plus its share of deeper path counts).
    for (std::size_t lvl = levels.num_levels(); lvl-- > 0;) {
      for (Vertex v : levels.level(lvl)) {
        double acc = 0.0;
        for (Vertex w : g.out_neighbors(v)) {
          if (dist[w] == dist[v] + 1) {
            acc += sigma[v] * (1.0 + delta[w] / sigma[w]);
          }
        }
        delta[v] = acc;
        if (v != s) stress[v] += acc;
      }
    }
    scratch.reset_touched();
  }
  return stress;
}

std::vector<double> stress_centrality_naive(const CsrGraph& g) {
  const Vertex n = g.num_vertices();
  APGRE_REQUIRE(n <= 4096, "stress oracle is O(V^3); graph too large");
  constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();

  std::vector<std::vector<std::uint32_t>> dist(n, std::vector<std::uint32_t>(n, kInf));
  std::vector<std::vector<double>> sigma(n, std::vector<double>(n, 0.0));
  std::vector<Vertex> queue;
  for (Vertex s = 0; s < n; ++s) {
    dist[s][s] = 0;
    sigma[s][s] = 1.0;
    queue.assign(1, s);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const Vertex v = queue[head];
      for (Vertex w : g.out_neighbors(v)) {
        if (dist[s][w] == kInf) {
          dist[s][w] = dist[s][v] + 1;
          queue.push_back(w);
        }
        if (dist[s][w] == dist[s][v] + 1) sigma[s][w] += sigma[s][v];
      }
    }
  }

  std::vector<double> stress(n, 0.0);
  for (Vertex s = 0; s < n; ++s) {
    for (Vertex t = 0; t < n; ++t) {
      if (s == t || dist[s][t] == kInf) continue;
      for (Vertex v = 0; v < n; ++v) {
        if (v == s || v == t) continue;
        if (dist[s][v] == kInf || dist[v][t] == kInf) continue;
        if (dist[s][v] + dist[v][t] != dist[s][t]) continue;
        stress[v] += sigma[s][v] * sigma[v][t];
      }
    }
  }
  return stress;
}

}  // namespace apgre
