#include "bc/sampling.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "bc/brandes.hpp"
#include "support/prng.hpp"

namespace apgre {

std::vector<double> sampled_bc(const CsrGraph& g, Vertex num_samples,
                               std::uint64_t seed) {
  const Vertex n = g.num_vertices();
  if (n == 0) return {};
  if (num_samples == 0) {
    num_samples = static_cast<Vertex>(std::ceil(std::sqrt(static_cast<double>(n))));
  }
  num_samples = std::min(num_samples, n);

  // Partial Fisher-Yates: the first `num_samples` entries are a uniform
  // sample without replacement.
  std::vector<Vertex> pool(n);
  std::iota(pool.begin(), pool.end(), 0);
  Xoshiro256 rng(seed);
  for (Vertex i = 0; i < num_samples; ++i) {
    const auto j = static_cast<Vertex>(i + rng.bounded(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(num_samples);

  const double weight = static_cast<double>(n) / static_cast<double>(num_samples);
  return brandes_bc_from_sources(g, pool, weight);
}

}  // namespace apgre
