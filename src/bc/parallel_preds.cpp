#include "bc/parallel_preds.hpp"

#include <atomic>
#include <cstdint>
#include <span>

#include "bc/frontier.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/timer.hpp"

namespace apgre {

namespace {

constexpr std::int32_t kUnvisited = -1;

/// Shared per-source state. Predecessor lists live in slots parallel to the
/// in-adjacency array: the predecessors of w are a prefix-compacted subset
/// of its in-neighbours, claimed with an atomic cursor.
struct PredsState {
  std::vector<std::atomic<std::int32_t>> dist;
  std::vector<std::atomic<double>> sigma;
  std::vector<std::atomic<double>> delta;
  std::vector<Vertex> pred_slots;                  // |arcs| entries
  std::vector<std::atomic<std::uint32_t>> pred_count;  // per vertex
  LevelBuckets levels;
  ThreadLocalFrontier next;

  explicit PredsState(const CsrGraph& g)
      : dist(g.num_vertices()),
        sigma(g.num_vertices()),
        delta(g.num_vertices()),
        pred_slots(g.num_arcs()),
        pred_count(g.num_vertices()) {
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      dist[v].store(kUnvisited, std::memory_order_relaxed);
      sigma[v].store(0.0, std::memory_order_relaxed);
      delta[v].store(0.0, std::memory_order_relaxed);
      pred_count[v].store(0, std::memory_order_relaxed);
    }
  }

  void reset_touched() {
    for (Vertex v : levels.touched()) {
      dist[v].store(kUnvisited, std::memory_order_relaxed);
      sigma[v].store(0.0, std::memory_order_relaxed);
      delta[v].store(0.0, std::memory_order_relaxed);
      pred_count[v].store(0, std::memory_order_relaxed);
    }
    levels.clear();
  }
};

/// Published through `region_ctx` so the parallel regions capture no
/// enclosing locals (region-context idiom, support/parallel.hpp).
struct RegionCtx {
  const CsrGraph* g = nullptr;
  PredsState* st = nullptr;
  double* bc = nullptr;
  std::atomic<std::uint64_t>* cas_retries = nullptr;
  std::span<const Vertex> level;
  std::int32_t depth = 0;
};

RegionCtx* region_ctx = nullptr;

}  // namespace

std::vector<double> parallel_preds_bc(const CsrGraph& g) {
  // Region-context OpenMP kernel (support/parallel.hpp): not reentrant,
  // serialize whole invocations against concurrent caller threads.
  std::lock_guard<std::recursive_mutex> lock(legacy_omp_kernel_mutex());
  const Vertex n = g.num_vertices();
  std::vector<double> bc(n, 0.0);
  PredsState st(g);

  std::uint64_t traversed_arcs = 0;
  std::atomic<std::uint64_t> cas_retries{0};
  double forward_seconds = 0.0;
  double backward_seconds = 0.0;
  Timer phase_timer;

  RegionCtx ctx;
  ctx.g = &g;
  ctx.st = &st;
  ctx.bc = bc.data();
  ctx.cas_retries = &cas_retries;
  region_ctx = &ctx;

  for (Vertex s = 0; s < n; ++s) {
    st.dist[s].store(0, std::memory_order_relaxed);
    st.sigma[s].store(1.0, std::memory_order_relaxed);
    st.levels.push(s);
    st.levels.finish_level();

    // Forward: expand each level in parallel; claim vertices with CAS on
    // dist, accumulate sigma atomically, record predecessors.
    phase_timer.reset();
    for (std::size_t current = 0; !st.levels.level(current).empty(); ++current) {
      ctx.level = st.levels.level(current);
      ctx.depth = static_cast<std::int32_t>(current);
      omp_fork_fence();
#pragma omp parallel
      {
        omp_worker_entry_fence();
        const RegionCtx& C = *region_ctx;
        PredsState& ps = *C.st;
        std::uint64_t lost_claims = 0;
#pragma omp for schedule(dynamic, 64) nowait
        for (std::int64_t i = 0; i < static_cast<std::int64_t>(C.level.size()); ++i) {
          const Vertex v = C.level[static_cast<std::size_t>(i)];
          for (Vertex w : C.g->out_neighbors(v)) {
            std::int32_t expected = kUnvisited;
            if (ps.dist[w].compare_exchange_strong(expected, C.depth + 1,
                                                   std::memory_order_relaxed)) {
              ps.next.local().push_back(w);
              expected = C.depth + 1;
            } else if (expected == C.depth + 1) {
              ++lost_claims;
            }
            if (expected == C.depth + 1) {
              ps.sigma[w].fetch_add(ps.sigma[v].load(std::memory_order_relaxed),
                                    std::memory_order_relaxed);
              const std::uint32_t slot =
                  ps.pred_count[w].fetch_add(1, std::memory_order_relaxed);
              ps.pred_slots[C.g->in_offset(w) + slot] = v;
            }
          }
        }
        if (lost_claims != 0) {
          C.cas_retries->fetch_add(lost_claims, std::memory_order_relaxed);
        }
        omp_worker_exit_fence();
      }
      omp_join_fence();
      st.next.drain_into(st.levels);
      st.levels.finish_level();
      if (st.levels.level(current + 1).empty()) break;
    }
    forward_seconds += phase_timer.seconds();

    // Backward: per level, scatter dependencies to predecessors. Multiple
    // successors update the same predecessor concurrently -> atomic adds
    // (this contention is exactly what `succs` eliminates).
    phase_timer.reset();
    for (std::size_t lvl = st.levels.num_levels(); lvl-- > 1;) {
      ctx.level = st.levels.level(lvl);
      omp_fork_fence();
#pragma omp parallel
      {
        omp_worker_entry_fence();
        const RegionCtx& C = *region_ctx;
        PredsState& ps = *C.st;
#pragma omp for schedule(dynamic, 64) nowait
        for (std::int64_t i = 0; i < static_cast<std::int64_t>(C.level.size()); ++i) {
          const Vertex w = C.level[static_cast<std::size_t>(i)];
          const double coef =
              (1.0 + ps.delta[w].load(std::memory_order_relaxed)) /
              ps.sigma[w].load(std::memory_order_relaxed);
          const std::uint32_t count = ps.pred_count[w].load(std::memory_order_relaxed);
          for (std::uint32_t p = 0; p < count; ++p) {
            const Vertex v = ps.pred_slots[C.g->in_offset(w) + p];
            ps.delta[v].fetch_add(ps.sigma[v].load(std::memory_order_relaxed) * coef,
                                  std::memory_order_relaxed);
          }
          C.bc[w] += ps.delta[w].load(std::memory_order_relaxed);
        }
        omp_worker_exit_fence();
      }
      omp_join_fence();
    }
    backward_seconds += phase_timer.seconds();

    for (Vertex v : st.levels.touched()) traversed_arcs += g.out_degree(v);
    st.reset_touched();
  }
  region_ctx = nullptr;

  MetricsRegistry& m = metrics();
  m.counter("bc.preds.sources").add(n);
  m.counter("bc.preds.traversed_arcs").add(traversed_arcs);
  m.counter("bc.preds.cas_retries").add(cas_retries.load(std::memory_order_relaxed));
  m.gauge("bc.preds.forward_seconds").set(forward_seconds);
  m.gauge("bc.preds.backward_seconds").set(backward_seconds);
  return bc;
}

}  // namespace apgre
