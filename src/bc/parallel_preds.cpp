#include "bc/parallel_preds.hpp"

#include <atomic>
#include <cstdint>

#include "bc/frontier.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"

namespace apgre {

namespace {

constexpr std::int32_t kUnvisited = -1;

/// Shared per-source state. Predecessor lists live in slots parallel to the
/// in-adjacency array: the predecessors of w are a prefix-compacted subset
/// of its in-neighbours, claimed with an atomic cursor.
struct PredsState {
  std::vector<std::atomic<std::int32_t>> dist;
  std::vector<std::atomic<double>> sigma;
  std::vector<std::atomic<double>> delta;
  std::vector<Vertex> pred_slots;                  // |arcs| entries
  std::vector<std::atomic<std::uint32_t>> pred_count;  // per vertex
  LevelBuckets levels;
  ThreadLocalFrontier next;

  explicit PredsState(const CsrGraph& g)
      : dist(g.num_vertices()),
        sigma(g.num_vertices()),
        delta(g.num_vertices()),
        pred_slots(g.num_arcs()),
        pred_count(g.num_vertices()) {
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      dist[v].store(kUnvisited, std::memory_order_relaxed);
      sigma[v].store(0.0, std::memory_order_relaxed);
      delta[v].store(0.0, std::memory_order_relaxed);
      pred_count[v].store(0, std::memory_order_relaxed);
    }
  }

  void reset_touched() {
    for (Vertex v : levels.touched()) {
      dist[v].store(kUnvisited, std::memory_order_relaxed);
      sigma[v].store(0.0, std::memory_order_relaxed);
      delta[v].store(0.0, std::memory_order_relaxed);
      pred_count[v].store(0, std::memory_order_relaxed);
    }
    levels.clear();
  }
};

}  // namespace

std::vector<double> parallel_preds_bc(const CsrGraph& g) {
  const Vertex n = g.num_vertices();
  std::vector<double> bc(n, 0.0);
  PredsState st(g);

  for (Vertex s = 0; s < n; ++s) {
    st.dist[s].store(0, std::memory_order_relaxed);
    st.sigma[s].store(1.0, std::memory_order_relaxed);
    st.levels.push(s);
    st.levels.finish_level();

    // Forward: expand each level in parallel; claim vertices with CAS on
    // dist, accumulate sigma atomically, record predecessors.
    for (std::size_t current = 0; !st.levels.level(current).empty(); ++current) {
      const auto frontier = st.levels.level(current);
      const auto depth = static_cast<std::int32_t>(current);
#pragma omp parallel for schedule(dynamic, 64)
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(frontier.size()); ++i) {
        const Vertex v = frontier[static_cast<std::size_t>(i)];
        for (Vertex w : g.out_neighbors(v)) {
          std::int32_t expected = kUnvisited;
          if (st.dist[w].compare_exchange_strong(expected, depth + 1,
                                                 std::memory_order_relaxed)) {
            st.next.local().push_back(w);
            expected = depth + 1;
          }
          if (expected == depth + 1) {
            st.sigma[w].fetch_add(st.sigma[v].load(std::memory_order_relaxed),
                                  std::memory_order_relaxed);
            const std::uint32_t slot =
                st.pred_count[w].fetch_add(1, std::memory_order_relaxed);
            st.pred_slots[g.in_offset(w) + slot] = v;
          }
        }
      }
      st.next.drain_into(st.levels);
      st.levels.finish_level();
      if (st.levels.level(current + 1).empty()) break;
    }

    // Backward: per level, scatter dependencies to predecessors. Multiple
    // successors update the same predecessor concurrently -> atomic adds
    // (this contention is exactly what `succs` eliminates).
    for (std::size_t lvl = st.levels.num_levels(); lvl-- > 1;) {
      const auto level = st.levels.level(lvl);
#pragma omp parallel for schedule(dynamic, 64)
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(level.size()); ++i) {
        const Vertex w = level[static_cast<std::size_t>(i)];
        const double coef =
            (1.0 + st.delta[w].load(std::memory_order_relaxed)) /
            st.sigma[w].load(std::memory_order_relaxed);
        const std::uint32_t count = st.pred_count[w].load(std::memory_order_relaxed);
        for (std::uint32_t p = 0; p < count; ++p) {
          const Vertex v = st.pred_slots[g.in_offset(w) + p];
          st.delta[v].fetch_add(st.sigma[v].load(std::memory_order_relaxed) * coef,
                                std::memory_order_relaxed);
        }
        bc[w] += st.delta[w].load(std::memory_order_relaxed);
      }
    }
    st.reset_touched();
  }
  return bc;
}

}  // namespace apgre
