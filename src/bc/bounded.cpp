#include "bc/bounded.hpp"

#include "bc/brandes_kernel.hpp"

namespace apgre {

std::vector<double> bounded_bc(const CsrGraph& g, std::uint32_t radius) {
  const Vertex n = g.num_vertices();
  std::vector<double> bc(n, 0.0);
  detail::BrandesScratch scratch(n);

  for (Vertex s = 0; s < n; ++s) {
    auto& dist = scratch.dist;
    auto& sigma = scratch.sigma;
    auto& delta = scratch.delta;
    auto& levels = scratch.levels;

    dist[s] = 0;
    sigma[s] = 1.0;
    levels.push(s);
    levels.finish_level();
    for (std::size_t current = 0;
         current < radius && !levels.level(current).empty(); ++current) {
      const auto [begin, end] = levels.level_range(current);
      for (std::size_t idx = begin; idx < end; ++idx) {
        const Vertex v = levels.vertex(idx);
        for (Vertex w : g.out_neighbors(v)) {
          if (dist[w] == detail::kUnvisited) {
            dist[w] = dist[v] + 1;
            levels.push(w);
          }
          if (dist[w] == dist[v] + 1) sigma[w] += sigma[v];
        }
      }
      levels.finish_level();
      if (levels.level(current + 1).empty()) break;
    }
    // The last opened level may be unfinished when the radius cut in; close
    // it so the backward sweep sees a consistent bucket structure.
    if (levels.current_level_size() > 0) levels.finish_level();

    for (std::size_t lvl = levels.num_levels(); lvl-- > 0;) {
      for (Vertex v : levels.level(lvl)) {
        double acc = 0.0;
        for (Vertex w : g.out_neighbors(v)) {
          // Successors beyond the radius were never labelled; the dist
          // check excludes them automatically.
          if (dist[w] == dist[v] + 1) acc += sigma[v] / sigma[w] * (1.0 + delta[w]);
        }
        delta[v] = acc;
        if (v != s) bc[v] += acc;
      }
    }
    scratch.reset_touched();
  }
  return bc;
}

}  // namespace apgre
