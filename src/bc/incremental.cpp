#include "bc/incremental.hpp"

#include <cmath>
#include <utility>

#include "bc/brandes.hpp"
#include "graph/bfs.hpp"
#include "graph/mutate.hpp"
#include "support/error.hpp"

namespace apgre {

namespace {

/// Clamp subtract/re-add cancellation noise on exact zeros (the DynamicBc
/// idiom): closed-form deltas cancel to ~1e-13 where the true score is 0.
void clamp_zeros(std::vector<double>& scores) {
  for (double& score : scores) {
    if (std::abs(score) < 1e-9) score = std::max(score, 0.0);
  }
}

}  // namespace

IncrementalBc::IncrementalBc(CsrGraph graph, BcOptions opts)
    : graph_(std::move(graph)), opts_(std::move(opts)), solver_(graph_) {
  opts_.algorithm = Algorithm::kApgre;
  opts_.undirected_halving = false;
  solver_.enable_contribution_tracking();
  BcResult result = solver_.solve(opts_);
  APGRE_REQUIRE(result.status.ok(), result.status.message);
  scores_ = std::move(result.scores);
}

void IncrementalBc::ensure_queries() {
  if (queries_ == nullptr) {
    queries_ = std::make_unique<BlockCutQueries>(
        graph_, opts_.apgre.partition.parallel_decomposition);
  }
}

void IncrementalBc::resolve_full() {
  solver_.rebind(graph_);
  queries_.reset();
  BcResult result = solver_.solve(opts_);
  APGRE_ASSERT(result.status.ok());
  scores_ = std::move(result.scores);
  ++stats_.structural_resolves;
}

UpdateLocality IncrementalBc::apply_edge(CsrGraph next, Vertex u, Vertex v,
                                         bool inserting) {
  ensure_queries();
  const UpdateLocality grade = queries_->classify_update(u, v, inserting);
  graph_ = std::move(next);
  if (grade == UpdateLocality::kStructural) {
    resolve_full();
    return grade;
  }
  // The block-cut tree survives; keep the classifier exact by patching the
  // affected block's edge multiset instead of rebuilding.
  queries_->apply_local_update(u, v, inserting);
  if (solver_.apply_local_update(graph_, u, v, inserting)) {
    scores_ = *solver_.tracked_scores();
    (inserting ? stats_.local_inserts : stats_.local_deletes) += 1;
  } else {
    // No valid contribution store to patch — cannot happen after the
    // constructor's tracked solve, but re-solve rather than trust it.
    resolve_full();
  }
  return grade;
}

BatchStats IncrementalBc::apply_batch(const UpdateRequest& batch) {
  BatchStats out;
  out.batch_edges = batch.ops.size();
  // Coalesce + validate against the current graph; a rejected batch throws
  // here, before any member changes (atomicity matches the per-edge path).
  CoalesceResult coalesced = coalesce_batch(graph_, batch.ops);
  APGRE_REQUIRE(coalesced.status.ok(), coalesced.status.message);
  out.coalesced_away = coalesced.coalesced_away;
  if (coalesced.survivors.empty()) {
    // The batch cancelled itself out — a legal no-op.
    stats_.batches += 1;
    stats_.batch_edges += out.batch_edges;
    stats_.coalesced_away += out.coalesced_away;
    return out;
  }

  ensure_queries();
  const BatchClassification verdict =
      queries_->classify_batch(coalesced.survivors);
  // Survivors are legal by construction, so this cannot throw mid-chain.
  graph_ = apply_edge_ops(graph_, coalesced.survivors);

  if (verdict.structural) {
    // One re-decomposition for the whole batch, however many ops survived.
    out.batch_downgrades = 1;
    resolve_full();
  } else {
    // The tree survives the whole batch: patch the classifier's edge
    // multisets per op, then re-score each affected block exactly once.
    for (const EdgeOp& op : coalesced.survivors) {
      queries_->apply_local_update(op.u, op.v, op.insert);
    }
    const std::size_t resolved =
        solver_.apply_local_batch(graph_, coalesced.survivors);
    if (resolved == 0) {
      // No valid contribution store to patch — cannot happen after the
      // constructor's tracked solve, but re-solve rather than trust it.
      out.batch_downgrades = 1;
      resolve_full();
    } else {
      scores_ = *solver_.tracked_scores();
      out.blocks_resolved = resolved;
      for (const EdgeOp& op : coalesced.survivors) {
        (op.insert ? stats_.local_inserts : stats_.local_deletes) += 1;
      }
    }
  }

  stats_.batches += 1;
  stats_.batch_edges += out.batch_edges;
  stats_.coalesced_away += out.coalesced_away;
  stats_.blocks_resolved += out.blocks_resolved;
  stats_.batch_downgrades += out.batch_downgrades;
  return out;
}

UpdateLocality IncrementalBc::insert_edge(Vertex u, Vertex v) {
  // Validates (and throws) before any member changes.
  return apply_edge(with_edge_inserted(graph_, u, v), u, v,
                    /*inserting=*/true);
}

UpdateLocality IncrementalBc::remove_edge(Vertex u, Vertex v) {
  return apply_edge(with_edge_removed(graph_, u, v), u, v,
                    /*inserting=*/false);
}

Vertex IncrementalBc::attach_pendant(Vertex host) {
  APGRE_ASSERT(host < graph_.num_vertices());
  const Vertex pendant = graph_.num_vertices();
  // Closed form (the static pendant metamorphic rule as a delta, evaluated
  // on the pre-attach graph): every vertex gains sides * delta_host(v), the
  // host additionally gains sides * reach(host), the pendant scores 0 —
  // `sides` counting source- and target-side ordered pairs for undirected
  // graphs, source-side only for directed (the arc is pendant -> host).
  const double sides = graph_.directed() ? 1.0 : 2.0;
  const std::vector<double> dependency =
      brandes_bc_from_sources(graph_, {host}, sides);
  const auto host_reach = static_cast<double>(reachable_count(graph_, host));
  for (Vertex v = 0; v < graph_.num_vertices(); ++v) {
    scores_[v] += dependency[v];
  }
  scores_[host] += sides * host_reach;
  scores_.push_back(0.0);
  graph_ = with_pendant_attached(graph_, host);
  // The tree gained a vertex and a bridge block — caches are stale even
  // though the scores are already exact.
  solver_.rebind(graph_);
  queries_.reset();
  ++stats_.pendant_attaches;
  return pendant;
}

void IncrementalBc::detach_vertex(Vertex v) {
  APGRE_ASSERT(v < graph_.num_vertices());
  const auto out = graph_.out_neighbors(v);
  const bool isolated =
      out.empty() && (!graph_.directed() || graph_.in_neighbors(v).empty());
  if (isolated) return;
  if (!graph_.directed() && out.size() == 1) {
    // Undirected pendant: the exact inverse of attach_pendant, evaluated on
    // the post-detach graph (the isolated id contributes nothing there).
    const Vertex host = out[0];
    graph_ = with_vertex_isolated(graph_, v);
    const std::vector<double> dependency =
        brandes_bc_from_sources(graph_, {host}, -2.0);
    const auto host_reach = static_cast<double>(reachable_count(graph_, host));
    for (Vertex w = 0; w < graph_.num_vertices(); ++w) {
      scores_[w] += dependency[w];
    }
    scores_[host] -= 2.0 * host_reach;
    scores_[v] = 0.0;
    clamp_zeros(scores_);
    solver_.rebind(graph_);
    queries_.reset();
    ++stats_.pendant_detaches;
    return;
  }
  // Interior (or directed) vertex: removing its arcs can reshape shortest
  // paths arbitrarily far away — full re-solve.
  graph_ = with_vertex_isolated(graph_, v);
  resolve_full();
}

}  // namespace apgre
