#include "bc/approx.hpp"

#include <algorithm>
#include <numeric>

#include "bc/brandes.hpp"
#include "bc/brandes_kernel.hpp"
#include "graph/bfs.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"

namespace apgre {

namespace {

std::vector<Vertex> uniform_pivots(Vertex n, Vertex k, Xoshiro256& rng) {
  std::vector<Vertex> pool(n);
  std::iota(pool.begin(), pool.end(), 0);
  for (Vertex i = 0; i < k; ++i) {
    const auto j = static_cast<Vertex>(i + rng.bounded(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

std::vector<Vertex> degree_pivots(const CsrGraph& g, Vertex k, Xoshiro256& rng) {
  // Sample without replacement, probability proportional to out-degree + 1
  // (the +1 keeps isolated vertices samplable, as uniform does).
  const Vertex n = g.num_vertices();
  std::vector<double> weight(n);
  for (Vertex v = 0; v < n; ++v) weight[v] = static_cast<double>(g.out_degree(v)) + 1.0;
  std::vector<Vertex> pivots;
  pivots.reserve(k);
  std::vector<bool> taken(n, false);
  double total = std::accumulate(weight.begin(), weight.end(), 0.0);
  for (Vertex i = 0; i < k; ++i) {
    double target = rng.uniform() * total;
    Vertex chosen = kInvalidVertex;
    for (Vertex v = 0; v < n; ++v) {
      if (taken[v]) continue;
      target -= weight[v];
      if (target <= 0.0) {
        chosen = v;
        break;
      }
    }
    if (chosen == kInvalidVertex) {  // numeric tail: take the last free vertex
      for (Vertex v = n; v-- > 0;) {
        if (!taken[v]) {
          chosen = v;
          break;
        }
      }
    }
    taken[chosen] = true;
    total -= weight[chosen];
    pivots.push_back(chosen);
  }
  return pivots;
}

std::vector<Vertex> maxmin_pivots(const CsrGraph& g, Vertex k, Xoshiro256& rng) {
  // Farthest-first traversal: start from a random vertex, then repeatedly
  // add the vertex farthest from the current pivot set (multi-source BFS).
  const Vertex n = g.num_vertices();
  std::vector<Vertex> pivots{static_cast<Vertex>(rng.bounded(n))};
  while (pivots.size() < k) {
    const auto dist = bfs_distances(g, pivots);
    Vertex best = kInvalidVertex;
    std::uint32_t best_dist = 0;
    for (Vertex v = 0; v < n; ++v) {
      const std::uint32_t d = dist[v] == kUnreachable ? 0 : dist[v];
      if (best == kInvalidVertex || d > best_dist) {
        // Unreachable vertices tie at 0; prefer any unvisited reachable
        // vertex, falling back to unpicked ones for disconnected graphs.
        if (std::find(pivots.begin(), pivots.end(), v) == pivots.end()) {
          best = v;
          best_dist = d;
        }
      }
    }
    if (best == kInvalidVertex) break;  // all vertices picked
    pivots.push_back(best);
  }
  return pivots;
}

}  // namespace

std::vector<Vertex> select_pivots(const CsrGraph& g, Vertex k,
                                  PivotStrategy strategy, std::uint64_t seed) {
  const Vertex n = g.num_vertices();
  if (n == 0) return {};
  k = std::min(k, n);
  APGRE_REQUIRE(k > 0, "need at least one pivot");
  Xoshiro256 rng(seed);
  switch (strategy) {
    case PivotStrategy::kUniform: return uniform_pivots(n, k, rng);
    case PivotStrategy::kDegreeProportional: return degree_pivots(g, k, rng);
    case PivotStrategy::kMaxMin: return maxmin_pivots(g, k, rng);
  }
  return {};
}

std::vector<double> estimate_bc(const CsrGraph& g,
                                const std::vector<Vertex>& pivots) {
  APGRE_REQUIRE(!pivots.empty(), "need at least one pivot");
  const double weight =
      static_cast<double>(g.num_vertices()) / static_cast<double>(pivots.size());
  return brandes_bc_from_sources(g, pivots, weight);
}

std::vector<double> estimate_bc_linear_scaled(const CsrGraph& g,
                                              const std::vector<Vertex>& pivots) {
  APGRE_REQUIRE(!pivots.empty(), "need at least one pivot");
  const Vertex n = g.num_vertices();
  const double weight =
      static_cast<double>(n) / static_cast<double>(pivots.size());
  std::vector<double> bc(n, 0.0);
  detail::BrandesScratch scratch(n);

  for (Vertex s : pivots) {
    auto& dist = scratch.dist;
    auto& sigma = scratch.sigma;
    auto& delta = scratch.delta;
    auto& levels = scratch.levels;

    dist[s] = 0;
    sigma[s] = 1.0;
    levels.push(s);
    levels.finish_level();
    for (std::size_t current = 0; !levels.level(current).empty(); ++current) {
      const auto [begin, end] = levels.level_range(current);
      for (std::size_t idx = begin; idx < end; ++idx) {
        const Vertex v = levels.vertex(idx);
        for (Vertex w : g.out_neighbors(v)) {
          if (dist[w] == detail::kUnvisited) {
            dist[w] = dist[v] + 1;
            levels.push(w);
          }
          if (dist[w] == dist[v] + 1) sigma[w] += sigma[v];
        }
      }
      levels.finish_level();
      if (levels.level(current + 1).empty()) break;
    }

    // Scaled backward sweep: delta'(v) = sum_w (sv/sw)*(dv/dw)*(1+delta'(w)).
    for (std::size_t lvl = levels.num_levels(); lvl-- > 1;) {
      for (Vertex v : levels.level(lvl)) {
        double acc = 0.0;
        const double dv = static_cast<double>(dist[v]);
        for (Vertex w : g.out_neighbors(v)) {
          if (dist[w] != dist[v] + 1) continue;
          acc += sigma[v] / sigma[w] * dv / static_cast<double>(dist[w]) *
                 (1.0 + delta[w]);
        }
        delta[v] = acc;
        bc[v] += weight * acc;
      }
    }
    scratch.reset_touched();
  }
  return bc;
}

AdaptiveEstimate adaptive_estimate_bc(const CsrGraph& g, Vertex v, double c,
                                      std::uint64_t seed) {
  APGRE_ASSERT(v < g.num_vertices());
  APGRE_REQUIRE(c > 0.0, "adaptive sampling needs a positive threshold factor");
  const Vertex n = g.num_vertices();
  Xoshiro256 rng(seed);
  std::vector<Vertex> order = uniform_pivots(n, n, rng);  // random permutation

  const double stop = c * static_cast<double>(n);
  double accumulated = 0.0;
  AdaptiveEstimate out;
  detail::BrandesScratch scratch(n);
  std::vector<double> bc(n, 0.0);
  for (Vertex s : order) {
    // One Brandes iteration; the dependency of s on v lands in bc[v].
    detail::brandes_iteration(g, s, 1.0, scratch, bc);
    ++out.samples_used;
    accumulated = bc[v];
    if (accumulated >= stop) break;
  }
  out.score = static_cast<double>(n) / static_cast<double>(out.samples_used) *
              accumulated;
  return out;
}

}  // namespace apgre
