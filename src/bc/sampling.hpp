// Approximate BC by uniform source sampling — Brandes & Pich 2007 (paper
// §6 "approximation algorithms"; §5.2 compares APGRE's exact rates against
// GPU sampling rates). Runs Brandes from k sampled sources and scales every
// dependency by n/k, an unbiased estimator of the exact scores.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace apgre {

/// `num_samples == 0` picks ceil(sqrt(n)). Sampling without replacement.
std::vector<double> sampled_bc(const CsrGraph& g, Vertex num_samples,
                               std::uint64_t seed);

}  // namespace apgre
