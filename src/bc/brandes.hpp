// Brandes' sequential algorithm (Brandes 2001), the paper's `serial`
// baseline: one BFS per source building the shortest-path DAG implicitly
// (distance labels), then a backward sweep accumulating dependencies via
// successor scans. O(|V||E|) time, O(|V|+|E|) space.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace apgre {

std::vector<double> brandes_bc(const CsrGraph& g);

/// Brandes restricted to a subset of sources, each weighted by
/// `source_weight` (shared by the sampling estimator and tests).
std::vector<double> brandes_bc_from_sources(const CsrGraph& g,
                                            const std::vector<Vertex>& sources,
                                            double source_weight);

/// Serial Brandes with explicit predecessor lists, as in the SSCA#2
/// benchmark code the paper uses for its `preds-serial` baseline. Same
/// results as brandes_bc; kept separately because the two variants have
/// different memory behaviour (stored predecessor lists vs successor
/// rescans), which the kernel bench contrasts.
std::vector<double> brandes_preds_serial_bc(const CsrGraph& g);

}  // namespace apgre
