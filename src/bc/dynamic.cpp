#include "bc/dynamic.hpp"

#include <algorithm>
#include <limits>

#include "bc/brandes.hpp"
#include "bc/brandes_kernel.hpp"
#include "support/error.hpp"

namespace apgre {

namespace {

/// Distances *to* `target` from every vertex (reverse BFS over in-arcs).
std::vector<std::uint32_t> distances_to(const CsrGraph& g, Vertex target) {
  constexpr auto kInf = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(g.num_vertices(), kInf);
  std::vector<Vertex> queue{target};
  dist[target] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Vertex v = queue[head];
    for (Vertex w : g.in_neighbors(v)) {
      if (dist[w] == kInf) {
        dist[w] = dist[v] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

bool has_arc(const CsrGraph& g, Vertex u, Vertex v) {
  const auto neighbors = g.out_neighbors(u);
  return std::binary_search(neighbors.begin(), neighbors.end(), v);
}

}  // namespace

DynamicBc::DynamicBc(CsrGraph graph)
    : graph_(std::move(graph)), bc_(brandes_bc(graph_)) {}

std::vector<Vertex> DynamicBc::affected_sources(const CsrGraph& reference,
                                                Vertex u, Vertex v,
                                                bool inserting) const {
  constexpr auto kInf = std::numeric_limits<std::uint32_t>::max();
  const auto to_u = distances_to(reference, u);
  const auto to_v = distances_to(reference, v);
  // For undirected graphs the reverse arc changes the complementary
  // condition, so both directions are merged.
  const bool symmetric = !reference.directed();

  std::vector<Vertex> affected;
  for (Vertex s = 0; s < reference.num_vertices(); ++s) {
    bool hit = false;
    if (to_u[s] != kInf) {
      if (inserting) {
        // New arc creates or shortens s -> u -> v paths.
        hit = to_v[s] == kInf || to_u[s] + 1 <= to_v[s];
      } else {
        // Removed arc lay on a shortest path iff it was tight.
        hit = to_v[s] != kInf && to_u[s] + 1 == to_v[s];
      }
    }
    if (!hit && symmetric && to_v[s] != kInf) {
      if (inserting) {
        hit = to_u[s] == kInf || to_v[s] + 1 <= to_u[s];
      } else {
        hit = to_u[s] != kInf && to_v[s] + 1 == to_u[s];
      }
    }
    if (hit) affected.push_back(s);
  }
  return affected;
}

Vertex DynamicBc::apply_update(Vertex u, Vertex v, bool inserting) {
  APGRE_ASSERT(u < graph_.num_vertices() && v < graph_.num_vertices());
  APGRE_REQUIRE(u != v, "self-loops do not affect betweenness");
  if (inserting) {
    APGRE_REQUIRE(!has_arc(graph_, u, v), "arc already present");
  } else {
    APGRE_REQUIRE(has_arc(graph_, u, v), "arc not present");
    if (!graph_.directed()) {
      APGRE_REQUIRE(has_arc(graph_, v, u), "symmetric arc missing");
    }
  }

  // The affected set is evaluated on the graph that *contains* the arc's
  // shortest-path structure change potential: the old graph works for both
  // directions of the update because the conditions are mirrored.
  const auto affected = affected_sources(graph_, u, v, inserting);

  detail::BrandesScratch scratch(graph_.num_vertices());
  for (Vertex s : affected) {
    detail::brandes_iteration(graph_, s, -1.0, scratch, bc_);
  }

  EdgeList arcs = graph_.arcs();
  if (inserting) {
    arcs.push_back(Edge{u, v});
    if (!graph_.directed()) arcs.push_back(Edge{v, u});
  } else {
    std::erase_if(arcs, [&](const Edge& e) {
      return (e.src == u && e.dst == v) ||
             (!graph_.directed() && e.src == v && e.dst == u);
    });
  }
  graph_ = CsrGraph::from_edges(graph_.num_vertices(), std::move(arcs),
                                graph_.directed());

  for (Vertex s : affected) {
    detail::brandes_iteration(graph_, s, 1.0, scratch, bc_);
  }
  // Clamp accumulated cancellation noise on exact zeros.
  for (double& score : bc_) {
    if (std::abs(score) < 1e-9) score = std::max(score, 0.0);
  }
  return static_cast<Vertex>(affected.size());
}

Vertex DynamicBc::insert_edge(Vertex u, Vertex v) {
  return apply_update(u, v, /*inserting=*/true);
}

Vertex DynamicBc::remove_edge(Vertex u, Vertex v) {
  return apply_update(u, v, /*inserting=*/false);
}

}  // namespace apgre
