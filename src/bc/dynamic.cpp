#include "bc/dynamic.hpp"

#include <algorithm>
#include <limits>

#include "bc/brandes.hpp"
#include "bc/brandes_kernel.hpp"
#include "graph/mutate.hpp"
#include "support/error.hpp"

namespace apgre {

namespace {

/// Distances *to* `target` from every vertex (reverse BFS over in-arcs).
std::vector<std::uint32_t> distances_to(const CsrGraph& g, Vertex target) {
  constexpr auto kInf = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(g.num_vertices(), kInf);
  std::vector<Vertex> queue{target};
  dist[target] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Vertex v = queue[head];
    for (Vertex w : g.in_neighbors(v)) {
      if (dist[w] == kInf) {
        dist[w] = dist[v] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

}  // namespace

DynamicBc::DynamicBc(CsrGraph graph)
    : graph_(std::move(graph)), bc_(brandes_bc(graph_)) {}

std::vector<Vertex> DynamicBc::affected_sources(const CsrGraph& reference,
                                                Vertex u, Vertex v,
                                                bool inserting) const {
  constexpr auto kInf = std::numeric_limits<std::uint32_t>::max();
  const auto to_u = distances_to(reference, u);
  const auto to_v = distances_to(reference, v);
  // For undirected graphs the reverse arc changes the complementary
  // condition, so both directions are merged.
  const bool symmetric = !reference.directed();

  std::vector<Vertex> affected;
  for (Vertex s = 0; s < reference.num_vertices(); ++s) {
    bool hit = false;
    if (to_u[s] != kInf) {
      if (inserting) {
        // New arc creates or shortens s -> u -> v paths.
        hit = to_v[s] == kInf || to_u[s] + 1 <= to_v[s];
      } else {
        // Removed arc lay on a shortest path iff it was tight.
        hit = to_v[s] != kInf && to_u[s] + 1 == to_v[s];
      }
    }
    if (!hit && symmetric && to_v[s] != kInf) {
      if (inserting) {
        hit = to_u[s] == kInf || to_v[s] + 1 <= to_u[s];
      } else {
        hit = to_u[s] != kInf && to_v[s] + 1 == to_u[s];
      }
    }
    if (hit) affected.push_back(s);
  }
  return affected;
}

Vertex DynamicBc::apply_update(Vertex u, Vertex v, bool inserting) {
  APGRE_ASSERT(u < graph_.num_vertices() && v < graph_.num_vertices());
  // The mutate helper validates (and throws) before constructing the
  // successor, so nothing here changes on an illegal update.
  CsrGraph next = inserting ? with_edge_inserted(graph_, u, v)
                            : with_edge_removed(graph_, u, v);

  // The affected set is evaluated on the graph that *contains* the arc's
  // shortest-path structure change potential: the old graph works for both
  // directions of the update because the conditions are mirrored.
  const auto affected = affected_sources(graph_, u, v, inserting);

  detail::BrandesScratch scratch(graph_.num_vertices());
  for (Vertex s : affected) {
    detail::brandes_iteration(graph_, s, -1.0, scratch, bc_);
  }

  graph_ = std::move(next);

  for (Vertex s : affected) {
    detail::brandes_iteration(graph_, s, 1.0, scratch, bc_);
  }
  // Clamp accumulated cancellation noise on exact zeros.
  for (double& score : bc_) {
    if (std::abs(score) < 1e-9) score = std::max(score, 0.0);
  }
  return static_cast<Vertex>(affected.size());
}

Vertex DynamicBc::insert_edge(Vertex u, Vertex v) {
  return apply_update(u, v, /*inserting=*/true);
}

Vertex DynamicBc::remove_edge(Vertex u, Vertex v) {
  return apply_update(u, v, /*inserting=*/false);
}

}  // namespace apgre
