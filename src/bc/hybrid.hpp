// BC over a direction-optimising ("hybrid") BFS — Beamer, Asanovic &
// Patterson, SC 2012, as used by Ligra's BC application (Shun & Blelloch,
// PPoPP 2013; the paper's `hybrid` baseline). Each BFS level is expanded
// either top-down (frontier pushes) or bottom-up (unvisited vertices pull
// from in-neighbours), switching when the frontier's outgoing-edge volume
// crosses the Beamer thresholds. The backward dependency sweep is the
// successor pull of `succs`.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace apgre {

struct HybridOptions {
  /// Switch to bottom-up when frontier out-edges exceed remaining-edges/alpha.
  double alpha = 15.0;
  /// Switch back to top-down when the frontier shrinks below |V|/beta.
  double beta = 20.0;
};

std::vector<double> hybrid_bc(const CsrGraph& g, const HybridOptions& opts = {});

}  // namespace apgre
