// Distance-bounded ("k-hop") betweenness centrality:
//
//   BC_k(v) = sum over ordered pairs (s, t) with dist(s, t) <= k of
//             sigma_st(v) / sigma_st
//
// the local-centrality variant used when only short-range brokerage
// matters (Madduri et al., IPDPS 2009, motivate bounded variants for
// massive graphs). Computed by truncating every Brandes BFS at depth k;
// with k >= diameter it equals exact BC.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace apgre {

std::vector<double> bounded_bc(const CsrGraph& g, std::uint32_t radius);

}  // namespace apgre
