// Stress centrality (Shimbel 1953; surveyed alongside BC in Freeman
// 1977, the paper's reference [1]): the *count* of shortest paths through
// a vertex instead of BC's fractional weight,
//
//   stress(v) = sum over ordered pairs (s, t), s != v != t, of sigma_st(v).
//
// Same Brandes-style accumulation with the recursion
//   delta(v) = sum_w sigma_sv * (1 + delta(w) / sigma_sw)  ... rearranged:
//   S(v) = sum_{w : v in P_s(w)} (sigma_sv / sigma_sw) * (sigma_sw + S(w))
// so the whole algorithm family's machinery carries over.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace apgre {

std::vector<double> stress_centrality(const CsrGraph& g);

/// O(V^3) oracle used by tests.
std::vector<double> stress_centrality_naive(const CsrGraph& g);

}  // namespace apgre
