#include "bc/weighted.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "bcc/partition.hpp"
#include "bcc/reach.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/timer.hpp"

namespace apgre {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void require_positive_weights(const WeightedCsrGraph& g) {
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (double w : g.out_weights(v)) {
      APGRE_REQUIRE(w > 0.0, "weighted BC requires strictly positive weights");
    }
  }
}

/// Lazy-deletion Dijkstra recording the settled order (monotone distance),
/// which the backward dependency sweep walks in reverse.
struct DijkstraScratch {
  std::vector<double> dist;
  std::vector<double> sigma;
  std::vector<double> d_i2i;
  std::vector<double> d_i2o;
  std::vector<double> d_o2o;
  std::vector<Vertex> settled;

  void ensure(Vertex n) {
    if (dist.size() < n) {
      dist.assign(n, kInf);
      sigma.assign(n, 0.0);
      d_i2i.assign(n, 0.0);
      d_i2o.assign(n, 0.0);
      d_o2o.assign(n, 0.0);
    }
  }

  void reset_touched() {
    for (Vertex v : settled) {
      dist[v] = kInf;
      sigma[v] = 0.0;
      d_i2i[v] = 0.0;
      d_i2o[v] = 0.0;
      d_o2o[v] = 0.0;
    }
    settled.clear();
  }
};

/// Forward phase: fills dist/sigma/settled for source s.
void dijkstra_forward(const WeightedCsrGraph& g, Vertex s, DijkstraScratch& scratch) {
  using Entry = std::pair<double, Vertex>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  scratch.dist[s] = 0.0;
  scratch.sigma[s] = 1.0;
  queue.emplace(0.0, s);
  while (!queue.empty()) {
    const auto [d, v] = queue.top();
    queue.pop();
    if (d > scratch.dist[v]) continue;  // stale entry
    scratch.settled.push_back(v);
    const auto neighbors = g.out_neighbors(v);
    const auto weights = g.out_weights(v);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const Vertex w = neighbors[i];
      const double nd = d + weights[i];
      if (nd < scratch.dist[w]) {
        scratch.dist[w] = nd;
        scratch.sigma[w] = scratch.sigma[v];
        queue.emplace(nd, w);
      } else if (nd == scratch.dist[w]) {
        scratch.sigma[w] += scratch.sigma[v];
      }
    }
  }
}

/// Plain weighted Brandes iteration (used by weighted_brandes_bc).
void weighted_brandes_iteration(const WeightedCsrGraph& g, Vertex s,
                                DijkstraScratch& scratch, std::vector<double>& bc) {
  dijkstra_forward(g, s, scratch);
  for (std::size_t i = scratch.settled.size(); i-- > 0;) {
    const Vertex v = scratch.settled[i];
    const auto neighbors = g.out_neighbors(v);
    const auto weights = g.out_weights(v);
    double acc = 0.0;
    for (std::size_t j = 0; j < neighbors.size(); ++j) {
      const Vertex w = neighbors[j];
      if (scratch.dist[w] == scratch.dist[v] + weights[j]) {
        acc += scratch.sigma[v] / scratch.sigma[w] * (1.0 + scratch.d_i2i[w]);
      }
    }
    scratch.d_i2i[v] = acc;
    if (v != s) bc[v] += acc;
  }
  scratch.reset_touched();
}

/// APGRE sub-graph kernel with a Dijkstra traversal: identical dependency
/// algebra to the unweighted kernel in apgre.cpp, different order.
void weighted_subgraph_source(const WeightedCsrGraph& g, const Subgraph& sg,
                              Vertex s, DijkstraScratch& scratch,
                              std::vector<double>& bc) {
  const bool s_is_ap = sg.is_boundary_ap[s] != 0;
  const double size_o2i = s_is_ap ? static_cast<double>(sg.beta[s]) : 0.0;
  const double gamma_s = static_cast<double>(sg.gamma[s]);

  for (Vertex a : sg.boundary_aps) {
    if (a == s) continue;
    scratch.d_i2o[a] = static_cast<double>(sg.alpha[a]);
    if (s_is_ap) scratch.d_o2o[a] = size_o2i * static_cast<double>(sg.alpha[a]);
  }

  dijkstra_forward(g, s, scratch);

  for (std::size_t i = scratch.settled.size(); i-- > 0;) {
    const Vertex v = scratch.settled[i];
    const auto neighbors = g.out_neighbors(v);
    const auto weights = g.out_weights(v);
    double acc_i2i = 0.0;
    double acc_i2o = scratch.d_i2o[v];
    double acc_o2o = scratch.d_o2o[v];
    for (std::size_t j = 0; j < neighbors.size(); ++j) {
      const Vertex w = neighbors[j];
      if (scratch.dist[w] != scratch.dist[v] + weights[j]) continue;
      const double coef = scratch.sigma[v] / scratch.sigma[w];
      acc_i2i += coef * (1.0 + scratch.d_i2i[w]);
      acc_i2o += coef * scratch.d_i2o[w];
      if (s_is_ap) acc_o2o += coef * scratch.d_o2o[w];
    }
    scratch.d_i2i[v] = acc_i2i;
    scratch.d_i2o[v] = acc_i2o;
    scratch.d_o2o[v] = acc_o2o;
    if (v != s) {
      bc[v] += (1.0 + gamma_s) * (acc_i2i + acc_i2o) + size_o2i * acc_i2i + acc_o2o;
    } else if (gamma_s > 0.0) {
      double self = acc_i2i + acc_i2o;
      if (!g.directed()) self -= 1.0;
      if (s_is_ap) self += static_cast<double>(sg.alpha[s]);
      bc[s] += gamma_s * self;
    }
  }
  scratch.reset_touched();
  for (Vertex a : sg.boundary_aps) {
    scratch.d_i2o[a] = 0.0;
    scratch.d_o2o[a] = 0.0;
  }
}

/// Local weighted view of a decomposition sub-graph.
WeightedCsrGraph weighted_subgraph(const WeightedCsrGraph& g, const Subgraph& sg) {
  std::vector<WeightedEdge> edges;
  edges.reserve(sg.num_arcs());
  for (const Edge& local : sg.graph.arcs()) {
    edges.push_back(WeightedEdge{
        local.src, local.dst,
        g.arc_weight(sg.to_global[local.src], sg.to_global[local.dst])});
  }
  return WeightedCsrGraph::from_edges(sg.num_vertices(), std::move(edges),
                                      g.directed());
}

/// Published through `weighted_region_ctx` so the parallel region captures
/// no enclosing locals (region-context idiom, support/parallel.hpp).
struct WeightedRegionCtx {
  const WeightedCsrGraph* g = nullptr;
  const Decomposition* dec = nullptr;
  double* bc = nullptr;
};

WeightedRegionCtx* weighted_region_ctx = nullptr;

}  // namespace

std::vector<double> weighted_naive_bc(const WeightedCsrGraph& g) {
  const Vertex n = g.num_vertices();
  APGRE_REQUIRE(n <= 512, "weighted_naive_bc is an O(V^3) oracle; graph too large");
  require_positive_weights(g);

  // Floyd-Warshall with path counting.
  std::vector<std::vector<double>> dist(n, std::vector<double>(n, kInf));
  std::vector<std::vector<double>> sigma(n, std::vector<double>(n, 0.0));
  for (Vertex v = 0; v < n; ++v) {
    dist[v][v] = 0.0;
    sigma[v][v] = 1.0;
  }
  for (const WeightedEdge& e : g.arcs()) {
    if (e.weight < dist[e.src][e.dst]) {
      dist[e.src][e.dst] = e.weight;
      sigma[e.src][e.dst] = 1.0;
    }
  }
  for (Vertex k = 0; k < n; ++k) {
    for (Vertex i = 0; i < n; ++i) {
      if (i == k || dist[i][k] == kInf) continue;
      for (Vertex j = 0; j < n; ++j) {
        if (j == k || j == i || dist[k][j] == kInf) continue;
        const double through = dist[i][k] + dist[k][j];
        if (through < dist[i][j]) {
          dist[i][j] = through;
          sigma[i][j] = sigma[i][k] * sigma[k][j];
        } else if (through == dist[i][j]) {
          sigma[i][j] += sigma[i][k] * sigma[k][j];
        }
      }
    }
  }

  std::vector<double> bc(n, 0.0);
  for (Vertex s = 0; s < n; ++s) {
    for (Vertex t = 0; t < n; ++t) {
      if (s == t || dist[s][t] == kInf) continue;
      for (Vertex v = 0; v < n; ++v) {
        if (v == s || v == t) continue;
        if (dist[s][v] == kInf || dist[v][t] == kInf) continue;
        if (dist[s][v] + dist[v][t] != dist[s][t]) continue;
        bc[v] += sigma[s][v] * sigma[v][t] / sigma[s][t];
      }
    }
  }
  return bc;
}

std::vector<double> weighted_brandes_bc(const WeightedCsrGraph& g) {
  require_positive_weights(g);
  std::vector<double> bc(g.num_vertices(), 0.0);
  DijkstraScratch scratch;
  scratch.ensure(g.num_vertices());
  for (Vertex s = 0; s < g.num_vertices(); ++s) {
    weighted_brandes_iteration(g, s, scratch, bc);
  }
  return bc;
}

std::vector<double> weighted_apgre_bc(const WeightedCsrGraph& g,
                                      const ApgreOptions& opts, ApgreStats* stats) {
  require_positive_weights(g);
  Timer total_timer;
  ApgreStats local_stats;

  PartitionOptions popts = opts.partition;
  popts.compute_reach = false;
  Decomposition dec;
  {
    ScopedTimer t(local_stats.partition_seconds);
    dec = decompose(g.structure(), popts);
  }
  {
    ScopedTimer t(local_stats.reach_seconds);
    compute_reach_counts(g.structure(), dec, opts.partition.reach);
  }

  std::vector<double> bc(g.num_vertices(), 0.0);
  {
    ScopedTimer t(local_stats.rest_bc_seconds);
    // Region-context OpenMP kernel (support/parallel.hpp): not reentrant,
    // serialize whole invocations against concurrent caller threads.
    std::lock_guard<std::recursive_mutex> lock(legacy_omp_kernel_mutex());
    WeightedRegionCtx ctx;
    ctx.g = &g;
    ctx.dec = &dec;
    ctx.bc = bc.data();
    weighted_region_ctx = &ctx;
    omp_fork_fence();
#pragma omp parallel
    {
      omp_worker_entry_fence();
      const WeightedRegionCtx& C = *weighted_region_ctx;
      const Vertex num_global = C.g->num_vertices();
      std::vector<double> thread_bc(num_global, 0.0);
      DijkstraScratch scratch;
      std::vector<double> local;
#pragma omp for schedule(dynamic, 8) nowait
      for (std::int64_t i = 0;
           i < static_cast<std::int64_t>(C.dec->subgraphs.size()); ++i) {
        const Subgraph& sg = C.dec->subgraphs[static_cast<std::size_t>(i)];
        const WeightedCsrGraph wsg = weighted_subgraph(*C.g, sg);
        scratch.ensure(sg.num_vertices());
        local.assign(sg.num_vertices(), 0.0);
        for (Vertex s : sg.roots) {
          weighted_subgraph_source(wsg, sg, s, scratch, local);
        }
        for (Vertex v = 0; v < sg.num_vertices(); ++v) {
          thread_bc[sg.to_global[v]] += local[v];
        }
      }
#pragma omp critical(apgre_weighted_merge)
      {
        omp_critical_entry_fence();
        for (Vertex v = 0; v < num_global; ++v) C.bc[v] += thread_bc[v];
        omp_critical_exit_fence();
      }
      omp_worker_exit_fence();
    }
    omp_join_fence();
    weighted_region_ctx = nullptr;
  }

  local_stats.total_seconds = total_timer.seconds();
  local_stats.num_subgraphs = dec.subgraphs.size();
  local_stats.num_articulation_points = dec.num_articulation_points;
  local_stats.num_pendants_removed = dec.num_pendants_removed;
  if (!dec.subgraphs.empty()) {
    const Subgraph& top = dec.subgraphs[dec.top_subgraph];
    local_stats.top_vertices = top.num_vertices();
    local_stats.top_arcs = top.num_arcs();
  }
  const auto work = dec.work_model(g.num_arcs());
  local_stats.partial_redundancy = work.partial_redundancy;
  local_stats.total_redundancy = work.total_redundancy;
  if (stats != nullptr) *stats = local_stats;
  return bc;
}

}  // namespace apgre
