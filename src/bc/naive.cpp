#include "bc/naive.hpp"

#include <cstdint>
#include <limits>

#include "support/error.hpp"

namespace apgre {

std::vector<double> naive_bc(const CsrGraph& g) {
  const Vertex n = g.num_vertices();
  APGRE_REQUIRE(n <= 4096, "naive_bc is an O(V^3) oracle; graph too large");
  constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();

  // All-pairs BFS: dist[s][t] and path counts sigma[s][t].
  std::vector<std::vector<std::uint32_t>> dist(n, std::vector<std::uint32_t>(n, kInf));
  std::vector<std::vector<double>> sigma(n, std::vector<double>(n, 0.0));
  std::vector<Vertex> queue;

  for (Vertex s = 0; s < n; ++s) {
    dist[s][s] = 0;
    sigma[s][s] = 1.0;
    queue.assign(1, s);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const Vertex v = queue[head];
      for (Vertex w : g.out_neighbors(v)) {
        if (dist[s][w] == kInf) {
          dist[s][w] = dist[s][v] + 1;
          queue.push_back(w);
        }
        if (dist[s][w] == dist[s][v] + 1) sigma[s][w] += sigma[s][v];
      }
    }
  }

  std::vector<double> bc(n, 0.0);
  for (Vertex s = 0; s < n; ++s) {
    for (Vertex t = 0; t < n; ++t) {
      if (s == t || dist[s][t] == kInf) continue;
      for (Vertex v = 0; v < n; ++v) {
        if (v == s || v == t) continue;
        if (dist[s][v] == kInf || dist[v][t] == kInf) continue;
        if (dist[s][v] + dist[v][t] != dist[s][t]) continue;
        bc[v] += sigma[s][v] * sigma[v][t] / sigma[s][t];
      }
    }
  }
  return bc;
}

}  // namespace apgre
