#include "bc/parallel_succs.hpp"

#include <atomic>
#include <cstdint>

#include "bc/frontier.hpp"
#include "support/parallel.hpp"

namespace apgre {

namespace {
constexpr std::int32_t kUnvisited = -1;
}  // namespace

std::vector<double> parallel_succs_bc(const CsrGraph& g) {
  const Vertex n = g.num_vertices();
  std::vector<double> bc(n, 0.0);

  std::vector<std::atomic<std::int32_t>> dist(n);
  std::vector<std::atomic<double>> sigma(n);
  std::vector<double> delta(n, 0.0);
  for (Vertex v = 0; v < n; ++v) {
    dist[v].store(kUnvisited, std::memory_order_relaxed);
    sigma[v].store(0.0, std::memory_order_relaxed);
  }
  LevelBuckets levels;
  ThreadLocalFrontier next;

  for (Vertex s = 0; s < n; ++s) {
    dist[s].store(0, std::memory_order_relaxed);
    sigma[s].store(1.0, std::memory_order_relaxed);
    levels.push(s);
    levels.finish_level();

    // Forward: identical claim-and-count expansion to `preds`, but no
    // predecessor recording.
    for (std::size_t current = 0; !levels.level(current).empty(); ++current) {
      const auto frontier = levels.level(current);
      const auto depth = static_cast<std::int32_t>(current);
#pragma omp parallel for schedule(dynamic, 64)
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(frontier.size()); ++i) {
        const Vertex v = frontier[static_cast<std::size_t>(i)];
        for (Vertex w : g.out_neighbors(v)) {
          std::int32_t expected = kUnvisited;
          if (dist[w].compare_exchange_strong(expected, depth + 1,
                                              std::memory_order_relaxed)) {
            next.local().push_back(w);
            expected = depth + 1;
          }
          if (expected == depth + 1) {
            sigma[w].fetch_add(sigma[v].load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
          }
        }
      }
      next.drain_into(levels);
      levels.finish_level();
      if (levels.level(current + 1).empty()) break;
    }

    // Backward: each vertex pulls from its successors; delta[v] has a
    // single writer, no synchronisation needed.
    for (std::size_t lvl = levels.num_levels(); lvl-- > 0;) {
      const auto level = levels.level(lvl);
#pragma omp parallel for schedule(dynamic, 64)
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(level.size()); ++i) {
        const Vertex v = level[static_cast<std::size_t>(i)];
        const auto dv = dist[v].load(std::memory_order_relaxed);
        const double sv = sigma[v].load(std::memory_order_relaxed);
        double acc = 0.0;
        for (Vertex w : g.out_neighbors(v)) {
          if (dist[w].load(std::memory_order_relaxed) == dv + 1) {
            acc += sv / sigma[w].load(std::memory_order_relaxed) * (1.0 + delta[w]);
          }
        }
        delta[v] = acc;
        if (v != s) bc[v] += acc;
      }
    }

    for (Vertex v : levels.touched()) {
      dist[v].store(kUnvisited, std::memory_order_relaxed);
      sigma[v].store(0.0, std::memory_order_relaxed);
      delta[v] = 0.0;
    }
    levels.clear();
  }
  return bc;
}

}  // namespace apgre
