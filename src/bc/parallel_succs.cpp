#include "bc/parallel_succs.hpp"

#include <atomic>
#include <cstdint>
#include <span>

#include "bc/frontier.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/timer.hpp"

namespace apgre {

namespace {

constexpr std::int32_t kUnvisited = -1;

/// Published through `region_ctx` so the parallel regions capture no
/// enclosing locals (region-context idiom, support/parallel.hpp).
struct RegionCtx {
  const CsrGraph* g = nullptr;
  std::atomic<std::int32_t>* dist = nullptr;
  std::atomic<double>* sigma = nullptr;
  double* delta = nullptr;
  double* bc = nullptr;
  ThreadLocalFrontier* next = nullptr;
  std::atomic<std::uint64_t>* cas_retries = nullptr;
  std::span<const Vertex> level;
  std::int32_t depth = 0;
  Vertex source = 0;
};

RegionCtx* region_ctx = nullptr;

}  // namespace

std::vector<double> parallel_succs_bc(const CsrGraph& g) {
  // Region-context OpenMP kernel (support/parallel.hpp): not reentrant,
  // serialize whole invocations against concurrent caller threads.
  std::lock_guard<std::recursive_mutex> lock(legacy_omp_kernel_mutex());
  const Vertex n = g.num_vertices();
  std::vector<double> bc(n, 0.0);

  std::vector<std::atomic<std::int32_t>> dist(n);
  std::vector<std::atomic<double>> sigma(n);
  std::vector<double> delta(n, 0.0);
  for (Vertex v = 0; v < n; ++v) {
    dist[v].store(kUnvisited, std::memory_order_relaxed);
    sigma[v].store(0.0, std::memory_order_relaxed);
  }
  LevelBuckets levels;
  ThreadLocalFrontier next;

  std::uint64_t traversed_arcs = 0;
  std::atomic<std::uint64_t> cas_retries{0};
  double forward_seconds = 0.0;
  double backward_seconds = 0.0;
  Timer phase_timer;

  RegionCtx ctx;
  ctx.g = &g;
  ctx.dist = dist.data();
  ctx.sigma = sigma.data();
  ctx.delta = delta.data();
  ctx.bc = bc.data();
  ctx.next = &next;
  ctx.cas_retries = &cas_retries;
  region_ctx = &ctx;

  for (Vertex s = 0; s < n; ++s) {
    dist[s].store(0, std::memory_order_relaxed);
    sigma[s].store(1.0, std::memory_order_relaxed);
    levels.push(s);
    levels.finish_level();
    ctx.source = s;

    // Forward: identical claim-and-count expansion to `preds`, but no
    // predecessor recording.
    phase_timer.reset();
    for (std::size_t current = 0; !levels.level(current).empty(); ++current) {
      ctx.level = levels.level(current);
      ctx.depth = static_cast<std::int32_t>(current);
      omp_fork_fence();
#pragma omp parallel
      {
        omp_worker_entry_fence();
        const RegionCtx& C = *region_ctx;
        std::uint64_t lost_claims = 0;
#pragma omp for schedule(dynamic, 64) nowait
        for (std::int64_t i = 0; i < static_cast<std::int64_t>(C.level.size()); ++i) {
          const Vertex v = C.level[static_cast<std::size_t>(i)];
          for (Vertex w : C.g->out_neighbors(v)) {
            std::int32_t expected = kUnvisited;
            if (C.dist[w].compare_exchange_strong(expected, C.depth + 1,
                                                  std::memory_order_relaxed)) {
              C.next->local().push_back(w);
              expected = C.depth + 1;
            } else if (expected == C.depth + 1) {
              ++lost_claims;
            }
            if (expected == C.depth + 1) {
              C.sigma[w].fetch_add(C.sigma[v].load(std::memory_order_relaxed),
                                   std::memory_order_relaxed);
            }
          }
        }
        if (lost_claims != 0) {
          C.cas_retries->fetch_add(lost_claims, std::memory_order_relaxed);
        }
        omp_worker_exit_fence();
      }
      omp_join_fence();
      next.drain_into(levels);
      levels.finish_level();
      if (levels.level(current + 1).empty()) break;
    }
    forward_seconds += phase_timer.seconds();

    // Backward: each vertex pulls from its successors; delta[v] has a
    // single writer, no synchronisation needed.
    phase_timer.reset();
    for (std::size_t lvl = levels.num_levels(); lvl-- > 0;) {
      ctx.level = levels.level(lvl);
      omp_fork_fence();
#pragma omp parallel
      {
        omp_worker_entry_fence();
        const RegionCtx& C = *region_ctx;
#pragma omp for schedule(dynamic, 64) nowait
        for (std::int64_t i = 0; i < static_cast<std::int64_t>(C.level.size()); ++i) {
          const Vertex v = C.level[static_cast<std::size_t>(i)];
          const auto dv = C.dist[v].load(std::memory_order_relaxed);
          const double sv = C.sigma[v].load(std::memory_order_relaxed);
          double acc = 0.0;
          for (Vertex w : C.g->out_neighbors(v)) {
            if (C.dist[w].load(std::memory_order_relaxed) == dv + 1) {
              acc += sv / C.sigma[w].load(std::memory_order_relaxed) *
                     (1.0 + C.delta[w]);
            }
          }
          C.delta[v] = acc;
          if (v != C.source) C.bc[v] += acc;
        }
        omp_worker_exit_fence();
      }
      omp_join_fence();
    }
    backward_seconds += phase_timer.seconds();

    for (Vertex v : levels.touched()) {
      traversed_arcs += g.out_degree(v);
      dist[v].store(kUnvisited, std::memory_order_relaxed);
      sigma[v].store(0.0, std::memory_order_relaxed);
      delta[v] = 0.0;
    }
    levels.clear();
  }
  region_ctx = nullptr;

  MetricsRegistry& m = metrics();
  m.counter("bc.succs.sources").add(n);
  m.counter("bc.succs.traversed_arcs").add(traversed_arcs);
  m.counter("bc.succs.cas_retries").add(cas_retries.load(std::memory_order_relaxed));
  m.gauge("bc.succs.forward_seconds").set(forward_seconds);
  m.gauge("bc.succs.backward_seconds").set(backward_seconds);
  return bc;
}

}  // namespace apgre
