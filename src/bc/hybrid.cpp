#include "bc/hybrid.hpp"

#include <atomic>
#include <cstdint>
#include <numeric>

#include "bc/frontier.hpp"
#include "support/parallel.hpp"

namespace apgre {

namespace {

constexpr std::int32_t kUnvisited = -1;

struct alignas(64) LocalLists {
  std::vector<Vertex> discovered;
  std::vector<Vertex> remaining;
  std::uint64_t out_edges = 0;
};

}  // namespace

std::vector<double> hybrid_bc(const CsrGraph& g, const HybridOptions& opts) {
  const Vertex n = g.num_vertices();
  std::vector<double> bc(n, 0.0);

  std::vector<std::atomic<std::int32_t>> dist(n);
  std::vector<std::atomic<double>> sigma(n);
  std::vector<double> delta(n, 0.0);
  for (Vertex v = 0; v < n; ++v) {
    dist[v].store(kUnvisited, std::memory_order_relaxed);
    sigma[v].store(0.0, std::memory_order_relaxed);
  }
  LevelBuckets levels;
  std::vector<LocalLists> locals(static_cast<std::size_t>(num_threads()));
  std::vector<Vertex> candidates;  // unvisited vertices (bottom-up scan list)
  bool candidates_valid = false;

  const auto total_arcs = static_cast<double>(g.num_arcs());

  for (Vertex s = 0; s < n; ++s) {
    dist[s].store(0, std::memory_order_relaxed);
    sigma[s].store(1.0, std::memory_order_relaxed);
    levels.push(s);
    levels.finish_level();
    candidates_valid = false;
    std::uint64_t frontier_out_edges = g.out_degree(s);
    double explored_arcs = 0.0;

    for (std::int32_t depth = 0;
         !levels.level(static_cast<std::size_t>(depth)).empty(); ++depth) {
      const auto frontier = levels.level(static_cast<std::size_t>(depth));
      explored_arcs += static_cast<double>(frontier_out_edges);
      const bool bottom_up =
          static_cast<double>(frontier_out_edges) >
              (total_arcs - explored_arcs) / opts.alpha &&
          static_cast<double>(frontier.size()) > static_cast<double>(n) / opts.beta;

      if (bottom_up) {
        if (!candidates_valid) {
          // First bottom-up level of this source: materialise the
          // unvisited list.
          candidates.clear();
          for (Vertex v = 0; v < n; ++v) {
            if (dist[v].load(std::memory_order_relaxed) == kUnvisited) {
              candidates.push_back(v);
            }
          }
          candidates_valid = true;
        }
#pragma omp parallel for schedule(static)
        for (std::int64_t i = 0; i < static_cast<std::int64_t>(candidates.size()); ++i) {
          const Vertex v = candidates[static_cast<std::size_t>(i)];
          double paths = 0.0;
          for (Vertex u : g.in_neighbors(v)) {
            if (dist[u].load(std::memory_order_relaxed) == depth) {
              paths += sigma[u].load(std::memory_order_relaxed);
            }
          }
          auto& local = locals[static_cast<std::size_t>(thread_id())];
          if (paths > 0.0) {
            dist[v].store(depth + 1, std::memory_order_relaxed);
            sigma[v].store(paths, std::memory_order_relaxed);
            local.discovered.push_back(v);
            local.out_edges += g.out_degree(v);
          } else {
            local.remaining.push_back(v);
          }
        }
        candidates.clear();
        frontier_out_edges = 0;
        for (auto& local : locals) {
          levels.push_batch(local.discovered);
          candidates.insert(candidates.end(), local.remaining.begin(),
                            local.remaining.end());
          frontier_out_edges += local.out_edges;
          local.discovered.clear();
          local.remaining.clear();
          local.out_edges = 0;
        }
      } else {
        // Top-down push with CAS claims and atomic sigma, as in `preds`.
#pragma omp parallel for schedule(dynamic, 64)
        for (std::int64_t i = 0; i < static_cast<std::int64_t>(frontier.size()); ++i) {
          const Vertex v = frontier[static_cast<std::size_t>(i)];
          auto& local = locals[static_cast<std::size_t>(thread_id())];
          for (Vertex w : g.out_neighbors(v)) {
            std::int32_t expected = kUnvisited;
            if (dist[w].compare_exchange_strong(expected, depth + 1,
                                                std::memory_order_relaxed)) {
              local.discovered.push_back(w);
              local.out_edges += g.out_degree(w);
              expected = depth + 1;
            }
            if (expected == depth + 1) {
              sigma[w].fetch_add(sigma[v].load(std::memory_order_relaxed),
                                 std::memory_order_relaxed);
            }
          }
        }
        frontier_out_edges = 0;
        for (auto& local : locals) {
          levels.push_batch(local.discovered);
          frontier_out_edges += local.out_edges;
          local.discovered.clear();
          local.out_edges = 0;
        }
        candidates_valid = false;  // the unvisited list is now stale
      }
      levels.finish_level();
      if (levels.level(static_cast<std::size_t>(depth) + 1).empty()) break;
    }

    // Backward successor pull.
    for (std::size_t lvl = levels.num_levels(); lvl-- > 0;) {
      const auto level = levels.level(lvl);
#pragma omp parallel for schedule(dynamic, 64)
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(level.size()); ++i) {
        const Vertex v = level[static_cast<std::size_t>(i)];
        const auto dv = dist[v].load(std::memory_order_relaxed);
        const double sv = sigma[v].load(std::memory_order_relaxed);
        double acc = 0.0;
        for (Vertex w : g.out_neighbors(v)) {
          if (dist[w].load(std::memory_order_relaxed) == dv + 1) {
            acc += sv / sigma[w].load(std::memory_order_relaxed) * (1.0 + delta[w]);
          }
        }
        delta[v] = acc;
        if (v != s) bc[v] += acc;
      }
    }

    for (Vertex v : levels.touched()) {
      dist[v].store(kUnvisited, std::memory_order_relaxed);
      sigma[v].store(0.0, std::memory_order_relaxed);
      delta[v] = 0.0;
    }
    levels.clear();
  }
  return bc;
}

}  // namespace apgre
