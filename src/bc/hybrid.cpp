#include "bc/hybrid.hpp"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <span>

#include "bc/frontier.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/timer.hpp"

namespace apgre {

namespace {

constexpr std::int32_t kUnvisited = -1;

struct alignas(64) LocalLists {
  std::vector<Vertex> discovered;
  std::vector<Vertex> remaining;
  std::uint64_t out_edges = 0;
};

/// Published through `region_ctx` so the parallel regions capture no
/// enclosing locals (region-context idiom, support/parallel.hpp).
struct RegionCtx {
  const CsrGraph* g = nullptr;
  std::atomic<std::int32_t>* dist = nullptr;
  std::atomic<double>* sigma = nullptr;
  double* delta = nullptr;
  double* bc = nullptr;
  LocalLists* locals = nullptr;
  std::atomic<std::uint64_t>* cas_retries = nullptr;
  std::span<const Vertex> candidates;
  std::span<const Vertex> level;
  std::int32_t depth = 0;
  Vertex source = 0;
};

RegionCtx* region_ctx = nullptr;

}  // namespace

std::vector<double> hybrid_bc(const CsrGraph& g, const HybridOptions& opts) {
  // Region-context OpenMP kernel (support/parallel.hpp): not reentrant,
  // serialize whole invocations against concurrent caller threads.
  std::lock_guard<std::recursive_mutex> lock(legacy_omp_kernel_mutex());
  const Vertex n = g.num_vertices();
  std::vector<double> bc(n, 0.0);

  std::vector<std::atomic<std::int32_t>> dist(n);
  std::vector<std::atomic<double>> sigma(n);
  std::vector<double> delta(n, 0.0);
  for (Vertex v = 0; v < n; ++v) {
    dist[v].store(kUnvisited, std::memory_order_relaxed);
    sigma[v].store(0.0, std::memory_order_relaxed);
  }
  LevelBuckets levels;
  std::vector<LocalLists> locals(static_cast<std::size_t>(num_threads()));
  std::vector<Vertex> candidates;  // unvisited vertices (bottom-up scan list)
  bool candidates_valid = false;

  const auto total_arcs = static_cast<double>(g.num_arcs());

  std::uint64_t traversed_arcs = 0;
  std::uint64_t bottom_up_levels = 0;
  std::atomic<std::uint64_t> cas_retries{0};
  double forward_seconds = 0.0;
  double backward_seconds = 0.0;
  Timer phase_timer;

  RegionCtx ctx;
  ctx.g = &g;
  ctx.dist = dist.data();
  ctx.sigma = sigma.data();
  ctx.delta = delta.data();
  ctx.bc = bc.data();
  ctx.locals = locals.data();
  ctx.cas_retries = &cas_retries;
  region_ctx = &ctx;

  for (Vertex s = 0; s < n; ++s) {
    dist[s].store(0, std::memory_order_relaxed);
    sigma[s].store(1.0, std::memory_order_relaxed);
    levels.push(s);
    levels.finish_level();
    ctx.source = s;
    candidates_valid = false;
    std::uint64_t frontier_out_edges = g.out_degree(s);
    double explored_arcs = 0.0;

    phase_timer.reset();
    for (std::int32_t depth = 0;
         !levels.level(static_cast<std::size_t>(depth)).empty(); ++depth) {
      const auto frontier = levels.level(static_cast<std::size_t>(depth));
      explored_arcs += static_cast<double>(frontier_out_edges);
      const bool bottom_up =
          static_cast<double>(frontier_out_edges) >
              (total_arcs - explored_arcs) / opts.alpha &&
          static_cast<double>(frontier.size()) > static_cast<double>(n) / opts.beta;

      if (bottom_up) {
        ++bottom_up_levels;
        if (!candidates_valid) {
          // First bottom-up level of this source: materialise the
          // unvisited list.
          candidates.clear();
          for (Vertex v = 0; v < n; ++v) {
            if (dist[v].load(std::memory_order_relaxed) == kUnvisited) {
              candidates.push_back(v);
            }
          }
          candidates_valid = true;
        }
        ctx.candidates = candidates;
        ctx.depth = depth;
        omp_fork_fence();
#pragma omp parallel
        {
          omp_worker_entry_fence();
          const RegionCtx& C = *region_ctx;
#pragma omp for schedule(static) nowait
          for (std::int64_t i = 0; i < static_cast<std::int64_t>(C.candidates.size()); ++i) {
            const Vertex v = C.candidates[static_cast<std::size_t>(i)];
            double paths = 0.0;
            for (Vertex u : C.g->in_neighbors(v)) {
              if (C.dist[u].load(std::memory_order_relaxed) == C.depth) {
                paths += C.sigma[u].load(std::memory_order_relaxed);
              }
            }
            auto& local = C.locals[static_cast<std::size_t>(thread_id())];
            if (paths > 0.0) {
              C.dist[v].store(C.depth + 1, std::memory_order_relaxed);
              C.sigma[v].store(paths, std::memory_order_relaxed);
              local.discovered.push_back(v);
              local.out_edges += C.g->out_degree(v);
            } else {
              local.remaining.push_back(v);
            }
          }
          omp_worker_exit_fence();
        }
        omp_join_fence();
        candidates.clear();
        frontier_out_edges = 0;
        for (auto& local : locals) {
          levels.push_batch(local.discovered);
          candidates.insert(candidates.end(), local.remaining.begin(),
                            local.remaining.end());
          frontier_out_edges += local.out_edges;
          local.discovered.clear();
          local.remaining.clear();
          local.out_edges = 0;
        }
      } else {
        // Top-down push with CAS claims and atomic sigma, as in `preds`.
        ctx.level = frontier;
        ctx.depth = depth;
        omp_fork_fence();
#pragma omp parallel
        {
          omp_worker_entry_fence();
          const RegionCtx& C = *region_ctx;
          std::uint64_t lost_claims = 0;
#pragma omp for schedule(dynamic, 64) nowait
          for (std::int64_t i = 0; i < static_cast<std::int64_t>(C.level.size()); ++i) {
            const Vertex v = C.level[static_cast<std::size_t>(i)];
            auto& local = C.locals[static_cast<std::size_t>(thread_id())];
            for (Vertex w : C.g->out_neighbors(v)) {
              std::int32_t expected = kUnvisited;
              if (C.dist[w].compare_exchange_strong(expected, C.depth + 1,
                                                    std::memory_order_relaxed)) {
                local.discovered.push_back(w);
                local.out_edges += C.g->out_degree(w);
                expected = C.depth + 1;
              } else if (expected == C.depth + 1) {
                ++lost_claims;
              }
              if (expected == C.depth + 1) {
                C.sigma[w].fetch_add(C.sigma[v].load(std::memory_order_relaxed),
                                     std::memory_order_relaxed);
              }
            }
          }
          if (lost_claims != 0) {
            C.cas_retries->fetch_add(lost_claims, std::memory_order_relaxed);
          }
          omp_worker_exit_fence();
        }
        omp_join_fence();
        frontier_out_edges = 0;
        for (auto& local : locals) {
          levels.push_batch(local.discovered);
          frontier_out_edges += local.out_edges;
          local.discovered.clear();
          local.out_edges = 0;
        }
        candidates_valid = false;  // the unvisited list is now stale
      }
      levels.finish_level();
      if (levels.level(static_cast<std::size_t>(depth) + 1).empty()) break;
    }
    forward_seconds += phase_timer.seconds();

    // Backward successor pull.
    phase_timer.reset();
    for (std::size_t lvl = levels.num_levels(); lvl-- > 0;) {
      ctx.level = levels.level(lvl);
      omp_fork_fence();
#pragma omp parallel
      {
        omp_worker_entry_fence();
        const RegionCtx& C = *region_ctx;
#pragma omp for schedule(dynamic, 64) nowait
        for (std::int64_t i = 0; i < static_cast<std::int64_t>(C.level.size()); ++i) {
          const Vertex v = C.level[static_cast<std::size_t>(i)];
          const auto dv = C.dist[v].load(std::memory_order_relaxed);
          const double sv = C.sigma[v].load(std::memory_order_relaxed);
          double acc = 0.0;
          for (Vertex w : C.g->out_neighbors(v)) {
            if (C.dist[w].load(std::memory_order_relaxed) == dv + 1) {
              acc += sv / C.sigma[w].load(std::memory_order_relaxed) *
                     (1.0 + C.delta[w]);
            }
          }
          C.delta[v] = acc;
          if (v != C.source) C.bc[v] += acc;
        }
        omp_worker_exit_fence();
      }
      omp_join_fence();
    }
    backward_seconds += phase_timer.seconds();

    for (Vertex v : levels.touched()) {
      traversed_arcs += g.out_degree(v);
      dist[v].store(kUnvisited, std::memory_order_relaxed);
      sigma[v].store(0.0, std::memory_order_relaxed);
      delta[v] = 0.0;
    }
    levels.clear();
  }
  region_ctx = nullptr;

  MetricsRegistry& m = metrics();
  m.counter("bc.hybrid.sources").add(n);
  m.counter("bc.hybrid.traversed_arcs").add(traversed_arcs);
  m.counter("bc.hybrid.bottom_up_levels").add(bottom_up_levels);
  m.counter("bc.hybrid.cas_retries").add(cas_retries.load(std::memory_order_relaxed));
  m.gauge("bc.hybrid.forward_seconds").set(forward_seconds);
  m.gauge("bc.hybrid.backward_seconds").set(backward_seconds);
  return bc;
}

}  // namespace apgre
