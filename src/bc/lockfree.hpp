// Level-synchronous parallel BC without any lock or atomic synchronisation
// — the pull-based approach of Tan, Tu & Sun, ICPP 2009 (the paper's
// `lockSyncFree` baseline). The forward phase discovers level d+1 by having
// every still-unvisited vertex scan its in-neighbours for level-d vertices,
// so each dist/sigma cell has exactly one writer; the backward phase is the
// successor pull of `succs`. Trades synchronisation for extra edge scans.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace apgre {

std::vector<double> lockfree_bc(const CsrGraph& g);

}  // namespace apgre
