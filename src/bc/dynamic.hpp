// Dynamic betweenness centrality: maintain exact BC scores across edge
// insertions and deletions without full recomputation.
//
// The classic observation (Green, McColl & Bader 2012; also the basis of
// iCentral): inserting arc (u, v) changes the shortest-path DAG of source
// s only when d(s,u) + 1 <= d(s,v) — otherwise neither distances nor path
// counts through the new arc change. The affected source set is found with
// two reverse BFS passes; each affected source's old dependency
// contribution is subtracted (one Brandes iteration on the old graph with
// weight -1) and its new contribution added back on the updated graph.
// Cost per update: 2 BFS + O(|affected| * |E|), against O(|V||E|) from
// scratch — on real graphs most sources are unaffected.
//
// This addresses the dynamic-graph setting the paper leaves open (its
// evaluation is static); it reuses the same Brandes kernel, so scores stay
// bit-consistent with the static algorithms up to FP accumulation order.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace apgre {

class DynamicBc {
 public:
  /// Computes the initial scores with serial Brandes.
  explicit DynamicBc(CsrGraph graph);

  const CsrGraph& graph() const { return graph_; }
  const std::vector<double>& scores() const { return bc_; }

  /// Insert arc u -> v (plus v -> u for undirected graphs). Throws if the
  /// arc already exists or is a self-loop.
  /// Returns the number of sources whose contributions were recomputed.
  Vertex insert_edge(Vertex u, Vertex v);

  /// Remove arc u -> v (plus v -> u for undirected graphs). Throws if the
  /// arc does not exist.
  Vertex remove_edge(Vertex u, Vertex v);

 private:
  /// Sources whose DAG can change when arc (u, v) appears/disappears,
  /// evaluated on `reference` (the graph that contains the arc for
  /// removals, the pre-insertion graph for insertions).
  std::vector<Vertex> affected_sources(const CsrGraph& reference, Vertex u,
                                       Vertex v, bool inserting) const;

  Vertex apply_update(Vertex u, Vertex v, bool inserting);

  CsrGraph graph_;
  std::vector<double> bc_;
};

}  // namespace apgre
